// Ablation benchmarks for the design choices DESIGN.md calls out: each
// pair runs the same workload with one mechanism enabled and disabled and
// reports the headline quantity it moves. They complement the per-figure
// benchmarks in bench_test.go.
package preemptsched_test

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
	"preemptsched/internal/trace"
)

func ablationJobs(b *testing.B) []cluster.JobSpec {
	b.Helper()
	jobs, err := trace.GenerateJobs(trace.JobsConfig{Seed: 13, Jobs: 250, MeanTasksPerJob: 5, Span: 4 * time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	return jobs
}

func ablationRun(b *testing.B, mutate func(*sched.Config)) *sched.Result {
	b.Helper()
	jobs := ablationJobs(b)
	cfg := sched.DefaultConfig(core.PolicyAdaptive, storage.HDD)
	cfg.Nodes = 10
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := sched.Run(cfg, jobs)
	if err != nil {
		b.Fatal(err)
	}
	if r.Preemptions == 0 {
		b.Fatal("ablation workload produced no preemptions")
	}
	return r
}

// BenchmarkAblationIncremental quantifies incremental checkpointing
// (Section 4.1 item 3): disabling it forces full dumps on every
// re-preemption.
func BenchmarkAblationIncremental(b *testing.B) {
	var on, off *sched.Result
	for i := 0; i < b.N; i++ {
		on = ablationRun(b, nil)
		off = ablationRun(b, func(c *sched.Config) { c.DisableIncremental = true })
	}
	b.ReportMetric(on.IOBusyHours, "io_hours_incremental")
	b.ReportMetric(off.IOBusyHours, "io_hours_full_dumps")
	b.ReportMetric(on.MeanResponse(cluster.BandFree), "low_resp_s_incremental")
	b.ReportMetric(off.MeanResponse(cluster.BandFree), "low_resp_s_full_dumps")
}

// BenchmarkAblationCostAwareEviction quantifies cost-aware victim
// selection (Section 5.2.2) against naive priority-order eviction.
func BenchmarkAblationCostAwareEviction(b *testing.B) {
	var smart, naive *sched.Result
	for i := 0; i < b.N; i++ {
		smart = ablationRun(b, nil)
		naive = ablationRun(b, func(c *sched.Config) { c.NaiveVictimSelection = true })
	}
	b.ReportMetric(smart.OverheadCPUHours, "overhead_core_h_cost_aware")
	b.ReportMetric(naive.OverheadCPUHours, "overhead_core_h_naive")
}

// BenchmarkAblationRestorePlacement quantifies Algorithm 2 (local vs
// remote restore choice) against first-fit placement.
func BenchmarkAblationRestorePlacement(b *testing.B) {
	var alg2, firstFit *sched.Result
	for i := 0; i < b.N; i++ {
		alg2 = ablationRun(b, nil)
		firstFit = ablationRun(b, func(c *sched.Config) { c.DisableRestorePlacement = true })
	}
	b.ReportMetric(float64(alg2.RemoteRestores), "remote_restores_alg2")
	b.ReportMetric(float64(firstFit.RemoteRestores), "remote_restores_first_fit")
	b.ReportMetric(alg2.MeanResponse(cluster.BandFree), "low_resp_s_alg2")
	b.ReportMetric(firstFit.MeanResponse(cluster.BandFree), "low_resp_s_first_fit")
}

// BenchmarkAblationEvictionThreshold runs the Cavdar-style capped-eviction
// baseline against unlimited preemption under the kill policy.
func BenchmarkAblationEvictionThreshold(b *testing.B) {
	var unlimited, capped *sched.Result
	for i := 0; i < b.N; i++ {
		jobs := ablationJobs(b)
		cfg := sched.DefaultConfig(core.PolicyKill, storage.SSD)
		cfg.Nodes = 10
		var err error
		unlimited, err = sched.Run(cfg, jobs)
		if err != nil {
			b.Fatal(err)
		}
		cfg.MaxEvictionsPerTask = 2
		capped, err = sched.Run(cfg, jobs)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(unlimited.WastedCPUHours, "waste_core_h_unlimited")
	b.ReportMetric(capped.WastedCPUHours, "waste_core_h_capped")
}

// BenchmarkAblationNVRAM compares NVM-as-file-system (PMFS) against the
// paper's future-work NVM-as-virtual-memory mode.
func BenchmarkAblationNVRAM(b *testing.B) {
	var pmfs, nvram *sched.Result
	for i := 0; i < b.N; i++ {
		pmfs = ablationRun(b, func(c *sched.Config) { c.StorageKind = storage.NVM })
		nvram = ablationRun(b, func(c *sched.Config) { c.StorageKind = storage.NVRAM })
	}
	b.ReportMetric(pmfs.MeanResponse(cluster.BandFree), "low_resp_s_pmfs")
	b.ReportMetric(nvram.MeanResponse(cluster.BandFree), "low_resp_s_nvram")
	b.ReportMetric(pmfs.IOBusyHours, "io_hours_pmfs")
	b.ReportMetric(nvram.IOBusyHours, "io_hours_nvram")
}

// BenchmarkAblationPreCopy compares stop-and-copy checkpointing against
// the pre-copy (CRIU pre-dump) optimization.
func BenchmarkAblationPreCopy(b *testing.B) {
	var stop, pre *sched.Result
	for i := 0; i < b.N; i++ {
		stop = ablationRun(b, func(c *sched.Config) { c.Policy = core.PolicyCheckpoint })
		pre = ablationRun(b, func(c *sched.Config) {
			c.Policy = core.PolicyCheckpoint
			c.PreCopy = true
		})
	}
	b.ReportMetric(stop.OverheadCPUHours, "overhead_core_h_stop_copy")
	b.ReportMetric(pre.OverheadCPUHours, "overhead_core_h_precopy")
	b.ReportMetric(stop.MeanResponse(cluster.BandFree), "low_resp_s_stop_copy")
	b.ReportMetric(pre.MeanResponse(cluster.BandFree), "low_resp_s_precopy")
}

// BenchmarkAblationDisciplines compares the three scheduling disciplines
// on an identical workload under adaptive checkpoint-based preemption.
func BenchmarkAblationDisciplines(b *testing.B) {
	results := map[sched.Discipline]*sched.Result{}
	for i := 0; i < b.N; i++ {
		for _, d := range []sched.Discipline{sched.DisciplinePriority, sched.DisciplineFairShare, sched.DisciplineCapacity} {
			r := ablationRun(b, func(c *sched.Config) { c.Discipline = d })
			results[d] = r
		}
	}
	b.ReportMetric(results[sched.DisciplinePriority].MeanResponse(cluster.BandProduction), "high_resp_s_priority")
	b.ReportMetric(results[sched.DisciplineFairShare].MeanResponse(cluster.BandProduction), "high_resp_s_fairshare")
	b.ReportMetric(results[sched.DisciplineCapacity].MeanResponse(cluster.BandProduction), "high_resp_s_capacity")
}
