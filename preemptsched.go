// Package preemptsched is a library for checkpoint-based preemptive
// scheduling in shared clusters, reproducing "Improving Preemptive
// Scheduling with Application-Transparent Checkpointing in Shared
// Clusters" (Middleware 2015).
//
// Instead of killing preempted tasks, a scheduler built on this library
// suspends them with an application-transparent checkpoint engine and
// resumes them later — locally or on another node via a distributed file
// system — choosing between kill and checkpoint adaptively from a cost
// model (the paper's Algorithms 1 and 2).
//
// The package is a facade over the implementation in internal/:
//
//   - a deterministic trace-driven cluster scheduling simulator
//     (Simulate), used for the paper's Google-trace experiments;
//   - a miniature YARN-like resource-management framework (RunFramework)
//     that executes real checkpointable processes (k-means by default)
//     and takes real CRIU-style dumps into a mini-HDFS;
//   - a calibrated synthetic Google-cluster trace generator and analyzer
//     (GenerateTrace / AnalyzeTrace / GenerateSimJobs);
//   - the experiment harness that regenerates every table and figure of
//     the paper (Experiments*, RunAllExperiments).
//
// See examples/ for runnable entry points and DESIGN.md for the system
// inventory.
package preemptsched

import (
	"io"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/experiments"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
	"preemptsched/internal/trace"
	"preemptsched/internal/workload"
	"preemptsched/internal/yarn"
)

// Re-exported domain types.
type (
	// Resources is a CPU/memory resource vector.
	Resources = cluster.Resources
	// JobSpec describes a job submitted to a scheduler.
	JobSpec = cluster.JobSpec
	// TaskSpec describes one task of a job.
	TaskSpec = cluster.TaskSpec
	// TaskID identifies a task.
	TaskID = cluster.TaskID
	// JobID identifies a job.
	JobID = cluster.JobID
	// Priority is a 0-11 scheduling priority.
	Priority = cluster.Priority
	// Band groups priorities into low/medium/high.
	Band = cluster.Band
)

// Priority bands.
const (
	BandLow    = cluster.BandFree
	BandMedium = cluster.BandMiddle
	BandHigh   = cluster.BandProduction
)

// Policy selects how preemption is performed.
type Policy = core.Policy

// The four policies the paper evaluates.
const (
	PolicyWait       = core.PolicyWait
	PolicyKill       = core.PolicyKill
	PolicyCheckpoint = core.PolicyCheckpoint
	PolicyAdaptive   = core.PolicyAdaptive
)

// ParsePolicy converts "wait"/"kill"/"checkpoint"/"adaptive" to a Policy.
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// StorageKind selects the checkpoint storage medium.
type StorageKind = storage.Kind

// Storage media with bandwidths calibrated from the paper's measurements.
// StorageNVRAM is the paper's future-work NVM-as-virtual-memory mode:
// serialization-free dumps at memcpy speed and free local resumes.
const (
	StorageHDD   = storage.HDD
	StorageSSD   = storage.SSD
	StorageNVM   = storage.NVM
	StorageNVRAM = storage.NVRAM
)

// Discipline selects how the simulator arbitrates contention.
type Discipline = sched.Discipline

// The three scheduling disciplines of the paper's system model (Section
// 3.1): priority (used by its experiments), fair share, and capacity.
const (
	DisciplinePriority  = sched.DisciplinePriority
	DisciplineFairShare = sched.DisciplineFairShare
	DisciplineCapacity  = sched.DisciplineCapacity
)

// Unit helpers.
var (
	// Cores converts whole cores to millicores.
	Cores = cluster.Cores
	// GiB converts gibibytes to bytes.
	GiB = cluster.GiB
	// MiB converts mebibytes to bytes.
	MiB = cluster.MiB
)

// SimConfig configures the trace-driven simulator.
type SimConfig = sched.Config

// SimResult aggregates a simulation run.
type SimResult = sched.Result

// DefaultSimConfig returns a mid-size simulated cluster.
func DefaultSimConfig(policy Policy, kind StorageKind) SimConfig {
	return sched.DefaultConfig(policy, kind)
}

// Simulate runs jobs through the trace-driven cluster scheduling
// simulator and returns aggregate wastage, energy, and response-time
// results.
func Simulate(cfg SimConfig, jobs []JobSpec) (*SimResult, error) {
	return sched.Run(cfg, jobs)
}

// FrameworkConfig configures the mini-YARN framework.
type FrameworkConfig = yarn.Config

// FrameworkResult aggregates a framework run.
type FrameworkResult = yarn.Result

// DefaultFrameworkConfig returns the paper's 8-node, 24-container
// framework shape.
func DefaultFrameworkConfig(policy Policy, kind StorageKind) FrameworkConfig {
	return yarn.DefaultConfig(policy, kind)
}

// RunFramework executes jobs on the mini-YARN framework: real
// checkpointable processes, real dumps into a mini-HDFS, device-modelled
// time.
func RunFramework(cfg FrameworkConfig, jobs []JobSpec) (*FrameworkResult, error) {
	return yarn.Run(cfg, jobs)
}

// TraceConfig configures the synthetic Google-cluster event trace.
type TraceConfig = trace.GenConfig

// TraceEvent is one scheduler event.
type TraceEvent = trace.Event

// TraceAnalysis holds the Section 2 statistics of a trace.
type TraceAnalysis = trace.Analysis

// DefaultTraceConfig returns a laptop-scale 29-day trace shape.
func DefaultTraceConfig() TraceConfig { return trace.DefaultGenConfig() }

// GenerateTrace produces a synthetic event trace calibrated to the
// published statistics of the Google 2011 cluster trace.
func GenerateTrace(cfg TraceConfig) ([]TraceEvent, error) { return trace.Generate(cfg) }

// AnalyzeTrace recomputes the paper's Section 2 statistics from events.
func AnalyzeTrace(events []TraceEvent) *TraceAnalysis { return trace.Analyze(events) }

// SimJobsConfig configures the simulator's job-level workload.
type SimJobsConfig = trace.JobsConfig

// DefaultSimJobsConfig returns the paper's one-day-slice shape.
func DefaultSimJobsConfig() SimJobsConfig { return trace.DefaultJobsConfig() }

// GenerateSimJobs produces jobs for Simulate with the calibrated
// priority/latency mix.
func GenerateSimJobs(cfg SimJobsConfig) ([]JobSpec, error) { return trace.GenerateJobs(cfg) }

// FacebookConfig configures the framework's Facebook-derived workload.
type FacebookConfig = workload.FacebookConfig

// DefaultFacebookConfig returns the paper's 40-job / 7,000-task shape.
func DefaultFacebookConfig() FacebookConfig { return workload.DefaultFacebookConfig() }

// FacebookWorkload generates the Facebook-derived job mix of Section 5.3.
func FacebookWorkload(cfg FacebookConfig) ([]JobSpec, error) { return workload.Facebook(cfg) }

// SensitivityScenario builds the paper's two-job contention scenario.
var SensitivityScenario = workload.SensitivityScenario

// ExperimentOptions sizes the experiment harness inputs.
type ExperimentOptions = experiments.Options

// DefaultExperiments returns laptop-quick experiment sizes;
// PaperScaleExperiments the paper's sizes.
func DefaultExperiments() ExperimentOptions    { return experiments.Default() }
func PaperScaleExperiments() ExperimentOptions { return experiments.PaperScale() }

// RunAllExperiments regenerates every table and figure of the paper's
// evaluation, writing rendered tables to w.
func RunAllExperiments(o ExperimentOptions, w io.Writer) error {
	return experiments.RunAll(o, w)
}
