// Dfscheckpoint demonstrates the distributed substrate with real sockets:
// it boots a namenode and three datanodes on localhost TCP ports, runs a
// k-means computation as a checkpointable virtual process, suspends it
// halfway, dumps the image into the DFS through one node's client, then
// restores it through a different node's client — the paper's remote
// resumption — and runs it to completion, verifying the result matches an
// uninterrupted run.
package main

import (
	"fmt"
	"log"
	"net"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/dfs"
	"preemptsched/internal/kmeans"
	"preemptsched/internal/proc"
)

const (
	points, dims, k, iters = 400, 4, 4, 12
	seed                   = 7
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot the DFS on real TCP listeners.
	nnListener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go dfs.Serve(nnListener, dfs.NewNameNode(2), nil)
	transport := dfs.NewTCPTransport(nnListener.Addr().String())
	defer transport.Close()

	for i := 0; i < 3; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: l.Addr().String()}
		go dfs.Serve(l, nil, dfs.NewDataNode(info, transport))
		nn, err := transport.NameNode()
		if err != nil {
			return err
		}
		if err := nn.Register(info); err != nil {
			return err
		}
		fmt.Printf("datanode %s at %s\n", info.ID, info.Addr)
	}

	registry := proc.NewRegistry()
	kmeans.RegisterWith(registry)
	engine := checkpoint.NewEngine(registry)

	// Reference: run k-means undisturbed.
	ref, err := kmeans.NewProcess("ref", points, dims, k, iters, seed)
	if err != nil {
		return err
	}
	for {
		done, err := ref.Step()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	want, err := kmeans.Centroids(ref)
	if err != nil {
		return err
	}

	// The "task": run half the iterations on node A, then suspend.
	task, err := kmeans.NewProcess("task", points, dims, k, iters, seed)
	if err != nil {
		return err
	}
	for i := 0; i < iters/2; i++ {
		if _, err := task.Step(); err != nil {
			return err
		}
	}
	if err := task.Suspend(); err != nil {
		return err
	}
	nodeA := dfs.NewClient(transport, dfs.WithLocalNode("dn-0"), dfs.WithBlockSize(4096))
	info, err := engine.Dump(task, nodeA, "/ckpt/task", checkpoint.DumpOpts{})
	if err != nil {
		return err
	}
	fmt.Printf("\nsuspended at iteration %d/%d; dumped %d pages (%d bytes) into the DFS via dn-0\n",
		iters/2, iters, info.DumpedPages, info.StoredBytes)

	// Resume on node B (remote restore: blocks fetched over TCP).
	nodeB := dfs.NewClient(transport, dfs.WithLocalNode("dn-2"), dfs.WithBlockSize(4096))
	restored, rinfo, err := engine.Restore(nodeB, "/ckpt/task")
	if err != nil {
		return err
	}
	fmt.Printf("restored on dn-2 at step %d; resuming\n", rinfo.Steps)
	for {
		done, err := restored.Step()
		if err != nil {
			return err
		}
		if done {
			break
		}
	}
	got, err := kmeans.Centroids(restored)
	if err != nil {
		return err
	}
	for c := range want {
		for d := range want[c] {
			if got[c][d] != want[c][d] {
				return fmt.Errorf("centroid[%d][%d] diverged: %v != %v", c, d, got[c][d], want[c][d])
			}
		}
	}
	fmt.Printf("\nresumed computation finished with centroids identical to the uninterrupted run ✓\n")
	if err := checkpoint.RemoveChain(nodeB, "/ckpt/task"); err != nil {
		return err
	}
	fmt.Println("checkpoint images garbage-collected from the DFS")
	return nil
}
