// Mapreduce runs the word-count MapReduce job — the paper's future-work
// workload — through the mini-YARN framework under adaptive preemption,
// then proves application transparency: every job's final digest matches
// an undisturbed reference run, even for tasks that were checkpointed
// mid-map or mid-reduce and resumed on another node.
package main

import (
	"fmt"
	"log"
	"time"

	"preemptsched"
)

func main() {
	// A contended cluster: long low-priority word-count jobs saturate six
	// containers, periodic high-priority bursts preempt them.
	wc := preemptsched.DefaultFacebookConfig()
	wc.Jobs = 10
	wc.TotalTasks = 90
	wc.TaskDuration = 2 * time.Minute
	jobs, err := preemptsched.FacebookWorkload(wc)
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy preemptsched.Policy) *preemptsched.FrameworkResult {
		cfg := preemptsched.DefaultFrameworkConfig(policy, preemptsched.StorageNVM)
		cfg.Nodes = 2
		cfg.ContainersPerNode = 3
		cfg.Program = "wordcount"
		cfg.WordCountInput = 16 << 10
		cfg.WordCountChunk = 1 << 10
		r, err := preemptsched.RunFramework(cfg, jobs)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	ref := run(preemptsched.PolicyWait)
	adaptive := run(preemptsched.PolicyAdaptive)

	fmt.Printf("word-count workload: %d jobs, %d tasks, 16 KiB corpus per task\n\n", len(jobs), adaptive.TasksCompleted)
	fmt.Printf("adaptive: %d preemptions (%d checkpoints, %d incremental), %d restores (%d remote)\n",
		adaptive.Preemptions, adaptive.Checkpoints, adaptive.IncrementalCheckpoints,
		adaptive.Restores, adaptive.RemoteRestores)
	fmt.Printf("response: low %.0fs high %.0fs (undisturbed: low %.0fs high %.0fs)\n",
		adaptive.MeanResponse(preemptsched.BandLow), adaptive.MeanResponse(preemptsched.BandHigh),
		ref.MeanResponse(preemptsched.BandLow), ref.MeanResponse(preemptsched.BandHigh))

	mismatch := 0
	for id, want := range ref.TaskChecksums {
		if adaptive.TaskChecksums[id] != want {
			mismatch++
		}
	}
	if mismatch > 0 {
		log.Fatalf("TRANSPARENCY VIOLATED: %d of %d word-count digests differ", mismatch, len(ref.TaskChecksums))
	}
	fmt.Printf("\nall %d word-count digests identical to the undisturbed run ✓\n", len(ref.TaskChecksums))
	fmt.Println("(a MapReduce job suspended mid-shuffle resumes without recomputing its hash table)")
}
