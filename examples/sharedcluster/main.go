// Sharedcluster runs the paper's Section 5 scenario end to end: a
// mini-YARN cluster where low-priority k-means jobs share containers with
// periodic high-priority production bursts. Preempted tasks are
// checkpointed into the distributed file system and resumed — sometimes on
// a different node — and the example proves transparency by comparing
// every task's final state against an undisturbed reference run.
package main

import (
	"fmt"
	"log"

	"preemptsched"
)

func main() {
	wc := preemptsched.DefaultFacebookConfig()
	wc.Jobs = 12
	wc.TotalTasks = 150
	jobs, err := preemptsched.FacebookWorkload(wc)
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy preemptsched.Policy, kind preemptsched.StorageKind) *preemptsched.FrameworkResult {
		cfg := preemptsched.DefaultFrameworkConfig(policy, kind)
		cfg.Nodes = 2
		cfg.ContainersPerNode = 4
		r, err := preemptsched.RunFramework(cfg, jobs)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	// Reference: nothing is ever preempted.
	ref := run(preemptsched.PolicyWait, preemptsched.StorageNVM)
	// Under test: adaptive checkpoint-based preemption on NVM.
	adaptive := run(preemptsched.PolicyAdaptive, preemptsched.StorageNVM)

	fmt.Printf("workload: %d jobs, %d tasks on 2 nodes x 4 containers\n\n", len(jobs), adaptive.TasksCompleted)
	fmt.Printf("adaptive run: %d preemptions (%d kills, %d checkpoints, %d incremental), %d restores (%d remote)\n",
		adaptive.Preemptions, adaptive.Kills, adaptive.Checkpoints,
		adaptive.IncrementalCheckpoints, adaptive.Restores, adaptive.RemoteRestores)
	fmt.Printf("response times: low %.0fs high %.0fs (reference wait-run: low %.0fs high %.0fs)\n",
		adaptive.MeanResponse(preemptsched.BandLow), adaptive.MeanResponse(preemptsched.BandHigh),
		ref.MeanResponse(preemptsched.BandLow), ref.MeanResponse(preemptsched.BandHigh))

	// Application-transparent means the computation cannot tell it was
	// suspended: every task's final memory state must be bit-identical.
	mismatches := 0
	for id, want := range ref.TaskChecksums {
		if adaptive.TaskChecksums[id] != want {
			mismatches++
		}
	}
	if mismatches > 0 {
		log.Fatalf("TRANSPARENCY VIOLATED: %d of %d tasks diverged", mismatches, len(ref.TaskChecksums))
	}
	fmt.Printf("\ntransparency check: all %d task results identical to the undisturbed run ✓\n", len(ref.TaskChecksums))
}
