// Sensitivity reproduces the paper's Section 3.3.3/4.2.2 experiment: two
// k-means jobs contend for one machine — the low-priority job runs for
// 30 s before a high-priority job arrives — while checkpoint bandwidth
// sweeps from slow disk to NVM speeds. It prints where the kill/checkpoint
// crossover falls and shows the adaptive policy tracking the best choice
// at every point.
package main

import (
	"fmt"
	"log"
	"time"

	"preemptsched"
)

func main() {
	scenario := preemptsched.SensitivityScenario(time.Minute, 30*time.Second, preemptsched.GiB(5))

	run := func(policy preemptsched.Policy, bwGBs float64) *preemptsched.SimResult {
		cfg := preemptsched.DefaultSimConfig(policy, preemptsched.StorageSSD)
		cfg.Nodes = 1
		cfg.NodeCapacity = preemptsched.Resources{CPUMillis: preemptsched.Cores(1), MemBytes: preemptsched.GiB(8)}
		cfg.CustomBandwidth = bwGBs * 1e9
		r, err := preemptsched.Simulate(cfg, scenario)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	fmt.Println("high-priority job response time (s) by checkpoint bandwidth:")
	fmt.Println("bw GB/s     wait     kill   checkpoint   adaptive   adaptive-chose")
	for _, bw := range []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5} {
		wait := run(preemptsched.PolicyWait, bw)
		kill := run(preemptsched.PolicyKill, bw)
		chk := run(preemptsched.PolicyCheckpoint, bw)
		ad := run(preemptsched.PolicyAdaptive, bw)
		choice := "kill"
		if ad.Checkpoints > 0 {
			choice = "checkpoint"
		}
		fmt.Printf("%7.2f %8.1f %8.1f %12.1f %10.1f   %s\n",
			bw,
			wait.MeanResponse(preemptsched.BandHigh),
			kill.MeanResponse(preemptsched.BandHigh),
			chk.MeanResponse(preemptsched.BandHigh),
			ad.MeanResponse(preemptsched.BandHigh),
			choice)
	}

	fmt.Println("\nlow-priority job response time (s):")
	fmt.Println("bw GB/s     wait     kill   checkpoint   adaptive")
	for _, bw := range []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5} {
		wait := run(preemptsched.PolicyWait, bw)
		kill := run(preemptsched.PolicyKill, bw)
		chk := run(preemptsched.PolicyCheckpoint, bw)
		ad := run(preemptsched.PolicyAdaptive, bw)
		fmt.Printf("%7.2f %8.1f %8.1f %12.1f %10.1f\n",
			bw,
			wait.MeanResponse(preemptsched.BandLow),
			kill.MeanResponse(preemptsched.BandLow),
			chk.MeanResponse(preemptsched.BandLow),
			ad.MeanResponse(preemptsched.BandLow))
	}
	fmt.Println("\nbelow the crossover the adaptive policy kills (checkpointing would cost more")
	fmt.Println("than the 30s of saved progress); above it, it checkpoints — Algorithm 1 in action.")
}
