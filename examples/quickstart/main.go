// Quickstart: simulate a contended shared cluster under kill-based and
// adaptive checkpoint-based preemption and compare wastage, energy, and
// response times — the library's headline result in ~40 lines.
package main

import (
	"fmt"
	"log"

	"preemptsched"
)

func main() {
	// A one-day-like job mix: mostly low-priority batch work with
	// higher-priority jobs arriving throughout.
	jc := preemptsched.DefaultSimJobsConfig()
	jc.Jobs = 600
	jc.MeanTasksPerJob = 6
	jobs, err := preemptsched.GenerateSimJobs(jc)
	if err != nil {
		log.Fatal(err)
	}

	run := func(policy preemptsched.Policy) *preemptsched.SimResult {
		cfg := preemptsched.DefaultSimConfig(policy, preemptsched.StorageNVM)
		cfg.Nodes = 12 // deliberately tight: peak demand exceeds capacity
		r, err := preemptsched.Simulate(cfg, jobs)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	kill := run(preemptsched.PolicyKill)
	adaptive := run(preemptsched.PolicyAdaptive)

	fmt.Println("policy    wasted-core-h   energy-kWh   low-prio-resp   high-prio-resp")
	for _, r := range []*preemptsched.SimResult{kill, adaptive} {
		fmt.Printf("%-9s %12.1f %12.1f %14.0fs %15.0fs\n",
			r.Policy, r.WastedCPUHours, r.EnergyKWh,
			r.MeanResponse(preemptsched.BandLow), r.MeanResponse(preemptsched.BandHigh))
	}
	fmt.Printf("\nadaptive checkpointing cut wasted CPU by %.0f%% and low-priority response by %.0f%%\n",
		100*(1-adaptive.WastedCPUHours/kill.WastedCPUHours),
		100*(1-adaptive.MeanResponse(preemptsched.BandLow)/kill.MeanResponse(preemptsched.BandLow)))
	fmt.Printf("(%d preemptions: %d kills, %d checkpoints, %d incremental)\n",
		adaptive.Preemptions, adaptive.Kills, adaptive.Checkpoints, adaptive.IncrementalCheckpoints)
}
