// Package experiments regenerates every table and figure of the paper's
// evaluation. Each Fig*/Table* function runs the corresponding experiment
// on this repository's substrates and returns the same rows/series the
// paper reports; RunAll executes the whole evaluation and renders it.
//
// Scale: the paper's one-day Google-trace slice has ~15,000 jobs
// (600,000+ tasks) and its YARN workload 7,000 tasks. Options.PaperScale
// reproduces those sizes; Options.Default shrinks the inputs (keeping
// cluster load factors constant) so the full suite runs in seconds for
// tests and benchmarks. Shapes, not absolute magnitudes, are the
// reproduction target — see EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sched"
	"preemptsched/internal/trace"
	"preemptsched/internal/workload"
	"preemptsched/internal/yarn"
)

// Options sizes the experiment inputs.
type Options struct {
	Seed int64
	// TraceTasks is the event count for the Section 2 analysis.
	TraceTasks int
	// SimJobs is the job count for the trace-driven simulations
	// (Fig. 3/5); the paper uses ~15,000 (≈600k tasks).
	SimJobs int
	// SimTasksPerJob is the mean tasks per job (paper: ~40).
	SimTasksPerJob int
	// SimLoadFactor is the target mean utilization of the simulated
	// cluster: capacity = mean offered load / SimLoadFactor. Values above
	// 1 overload the cluster at diurnal peaks, producing the preemption
	// pressure the paper's cluster experienced.
	SimLoadFactor float64
	// YarnJobs / YarnTasks size the framework workload (paper: 40 / 7,000).
	YarnJobs  int
	YarnTasks int
	// YarnLoadFactor is the framework's mean offered load over slot
	// capacity. 1.8 reproduces the paper's setup, where 7,000 one-minute
	// tasks over a twenty-minute window contend for 192 containers.
	YarnLoadFactor float64
	// Parallel bounds the harness worker pool that fans out independent
	// (figure, policy, storage, scale) runs: 0 uses one worker per
	// available CPU, 1 runs strictly sequentially. Each individual
	// simulation stays single-threaded on its own virtual clock, and the
	// rendered output is byte-identical at every level — see DESIGN.md
	// §11 for the determinism contract.
	Parallel int
}

// Default returns a laptop-quick configuration (seconds per experiment).
func Default() Options {
	return Options{
		Seed:           1,
		TraceTasks:     40_000,
		SimJobs:        700,
		SimTasksPerJob: 6,
		SimLoadFactor:  1.15,
		YarnJobs:       10,
		YarnTasks:      120,
		YarnLoadFactor: 1.8,
	}
}

// PaperScale returns the paper's experiment sizes. The full suite at this
// scale runs in minutes.
func PaperScale() Options {
	o := Default()
	o.TraceTasks = 200_000
	o.SimJobs = 15_000
	o.SimTasksPerJob = 40
	o.YarnJobs = 40
	o.YarnTasks = 7_000
	return o
}

// Validate checks the options.
func (o Options) Validate() error {
	if o.TraceTasks <= 0 || o.SimJobs <= 0 || o.SimTasksPerJob <= 0 ||
		o.YarnJobs <= 0 || o.YarnTasks < o.YarnJobs {
		return fmt.Errorf("experiments: non-positive sizes in %+v", o)
	}
	if o.SimLoadFactor <= 0 || o.SimLoadFactor > 2 {
		return fmt.Errorf("experiments: SimLoadFactor=%v outside (0,2]", o.SimLoadFactor)
	}
	if o.YarnLoadFactor <= 0 || o.YarnLoadFactor > 4 {
		return fmt.Errorf("experiments: YarnLoadFactor=%v outside (0,4]", o.YarnLoadFactor)
	}
	if o.Parallel < 0 {
		return fmt.Errorf("experiments: Parallel=%d negative", o.Parallel)
	}
	return nil
}

// traceEvents generates (and caches per-call) the Section 2 event trace.
func (o Options) traceEvents() ([]trace.Event, error) {
	cfg := trace.DefaultGenConfig()
	cfg.Seed = o.Seed
	cfg.Tasks = o.TraceTasks
	return trace.Generate(cfg)
}

// simJobs generates the one-day job slice for the simulator.
func (o Options) simJobs() ([]cluster.JobSpec, error) {
	cfg := trace.DefaultJobsConfig()
	cfg.Seed = o.Seed + 1
	cfg.Jobs = o.SimJobs
	cfg.MeanTasksPerJob = o.SimTasksPerJob
	return trace.GenerateJobs(cfg)
}

// simCluster sizes the simulated cluster from the workload: capacity is a
// SimLoadFactor fraction of the peak-hour aggregate demand, which is what
// creates the contention the paper's cluster experienced.
func (o Options) simCluster(jobs []cluster.JobSpec, cfg *sched.Config) {
	// Peak-hour demand: total core-seconds / span, inflated because
	// arrivals cluster diurnally.
	var coreSeconds float64
	for i := range jobs {
		for j := range jobs[i].Tasks {
			t := &jobs[i].Tasks[j]
			coreSeconds += float64(t.Demand.CPUMillis) / 1000 * t.Duration.Seconds()
		}
	}
	meanCores := coreSeconds / (24 * time.Hour).Seconds()
	perNode := float64(cfg.NodeCapacity.CPUMillis) / 1000
	// Capacity such that mean utilization is SimLoadFactor: diurnal peaks
	// then exceed capacity and force preemption.
	nodes := int(meanCores / o.SimLoadFactor / perNode)
	if nodes < 2 {
		nodes = 2
	}
	cfg.Nodes = nodes
}

// yarnJobs generates the Facebook-derived framework workload.
func (o Options) yarnJobs() ([]cluster.JobSpec, error) {
	cfg := workload.DefaultFacebookConfig()
	cfg.Seed = o.Seed + 2
	cfg.Jobs = o.YarnJobs
	cfg.TotalTasks = o.YarnTasks
	return workload.Facebook(cfg)
}

// yarnCluster sizes the framework to the workload: total slots = mean
// concurrent demand / YarnLoadFactor, spread over up to the paper's eight
// nodes. At PaperScale this lands on the paper's 8×24 = 192 containers.
func (o Options) yarnCluster(jobs []cluster.JobSpec, cfg *yarn.Config) {
	var taskSeconds float64
	var span time.Duration
	for i := range jobs {
		for j := range jobs[i].Tasks {
			taskSeconds += jobs[i].Tasks[j].Duration.Seconds()
		}
		if jobs[i].Submit > span {
			span = jobs[i].Submit
		}
	}
	if span <= 0 {
		span = time.Minute
	}
	meanConcurrent := taskSeconds / span.Seconds()
	slots := int(meanConcurrent / o.YarnLoadFactor)
	if slots < 2 {
		slots = 2
	}
	nodes := 8
	if slots < 16 {
		nodes = 2
	}
	perNode := (slots + nodes - 1) / nodes
	if perNode < 1 {
		perNode = 1
	}
	cfg.Nodes = nodes
	cfg.ContainersPerNode = perNode
}
