package experiments

import (
	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/metrics"
	"preemptsched/internal/storage"
	"preemptsched/internal/yarn"
)

// yarnRun executes (or returns the memoized result of) the
// Facebook-derived workload on the mini-YARN framework under one
// policy/storage.
func yarnRun(o Options, policy core.Policy, kind storage.Kind) (*yarn.Result, error) {
	return cachedYarnRun(o, policy, kind)
}

func yarnRunUncached(o Options, policy core.Policy, kind storage.Kind) (*yarn.Result, error) {
	jobs, err := o.yarnJobs()
	if err != nil {
		return nil, err
	}
	cfg := yarn.DefaultConfig(policy, kind)
	o.yarnCluster(jobs, &cfg)
	return yarn.Run(cfg, jobs)
}

// Fig8a regenerates framework CPU wastage: kill vs checkpointing on each
// storage medium.
func Fig8a(o Options) (*metrics.Table, error) {
	warmYarn(o, killChkPairs())
	tb := metrics.NewTable("Fig 8a — Resource wastage (framework)",
		"policy", "wasted_core_hours", "waste_pct_of_usage")
	kill, err := yarnRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Kill", kill.WastedCPUHours, 100*kill.WasteFraction())
	for _, kind := range storageKinds {
		r, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow("Chk-"+kind.String(), r.WastedCPUHours, 100*r.WasteFraction())
	}
	return tb, nil
}

// Fig8b regenerates framework energy consumption.
func Fig8b(o Options) (*metrics.Table, error) {
	warmYarn(o, killChkPairs())
	tb := metrics.NewTable("Fig 8b — Energy consumption (framework)", "policy", "energy_kwh")
	kill, err := yarnRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Kill", kill.EnergyKWh)
	for _, kind := range storageKinds {
		r, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow("Chk-"+kind.String(), r.EnergyKWh)
	}
	return tb, nil
}

// Fig8c regenerates per-class mean job response times on the framework.
func Fig8c(o Options) (*metrics.Table, error) {
	warmYarn(o, killChkPairs())
	tb := metrics.NewTable("Fig 8c — Job response time (framework, seconds)",
		"policy", "low_priority", "high_priority")
	kill, err := yarnRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Kill", kill.MeanResponse(cluster.BandFree), kill.MeanResponse(cluster.BandProduction))
	for _, kind := range storageKinds {
		r, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow("Chk-"+kind.String(), r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandProduction))
	}
	return tb, nil
}

// cdfTable renders response-time CDFs (seconds at each decile) for a set
// of labelled results.
func cdfTable(title string, labels []string, results []*yarn.Result) *metrics.Table {
	cols := append([]string{"cum_fraction"}, labels...)
	tb := metrics.NewTable(title, cols...)
	const k = 10
	curves := make([][]metrics.CDFPoint, len(results))
	for i, r := range results {
		curves[i] = r.JobResponseAllSec.CDF(k)
	}
	for i := 0; i < k; i++ {
		row := []any{float64(i+1) / k}
		for _, c := range curves {
			if i < len(c) {
				row = append(row, c[i].X)
			} else {
				row = append(row, 0.0)
			}
		}
		tb.AddRow(row...)
	}
	return tb
}

// Fig9 regenerates the response-time CDF of kill vs checkpoint-based
// preemption on the three media.
func Fig9(o Options) (*metrics.Table, error) {
	warmYarn(o, killChkPairs())
	kill, err := yarnRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	labels := []string{"Kill"}
	results := []*yarn.Result{kill}
	for _, kind := range storageKinds {
		r, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		labels = append(labels, "Chk-"+kind.String())
		results = append(results, r)
	}
	return cdfTable("Fig 9 — Job response time CDF (framework, seconds)", labels, results), nil
}

// Fig10 regenerates basic vs adaptive mean response times per storage
// medium on the framework.
func Fig10(o Options) (*metrics.Table, error) {
	warmYarn(o, basicAdaptivePairs())
	tb := metrics.NewTable("Fig 10 — Basic vs adaptive preemption (framework, seconds)",
		"storage", "policy", "low_priority", "high_priority")
	for _, kind := range storageKinds {
		basic, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		adaptive, err := yarnRun(o, core.PolicyAdaptive, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow(kind.String(), "basic", basic.MeanResponse(cluster.BandFree), basic.MeanResponse(cluster.BandProduction))
		tb.AddRow(kind.String(), "adaptive", adaptive.MeanResponse(cluster.BandFree), adaptive.MeanResponse(cluster.BandProduction))
	}
	return tb, nil
}

// Fig11 regenerates the kill/basic/adaptive response-time CDFs per
// storage medium.
func Fig11(o Options) ([]*metrics.Table, error) {
	warmYarn(o, paperMatrix())
	kill, err := yarnRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, kind := range storageKinds {
		basic, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		adaptive, err := yarnRun(o, core.PolicyAdaptive, kind)
		if err != nil {
			return nil, err
		}
		tables = append(tables, cdfTable(
			"Fig 11 ("+kind.String()+") — Response time CDF kill/basic/adaptive (seconds)",
			[]string{"Kill", "Basic", "Adaptive"},
			[]*yarn.Result{kill, basic, adaptive}))
	}
	return tables, nil
}

// Fig12 regenerates the checkpointing overhead panels: CPU overhead
// (12a) and I/O overhead (12b) for basic vs adaptive on each medium.
func Fig12(o Options) (cpuT, ioT *metrics.Table, err error) {
	warmYarn(o, basicAdaptivePairs())
	cpuT = metrics.NewTable("Fig 12a — CPU overhead of checkpointing (%)",
		"storage", "basic", "adaptive")
	ioT = metrics.NewTable("Fig 12b — I/O overhead of checkpointing (%)",
		"storage", "basic", "adaptive")
	jobs, err := o.yarnJobs()
	if err != nil {
		return nil, nil, err
	}
	sized := yarn.DefaultConfig(core.PolicyCheckpoint, storage.SSD)
	o.yarnCluster(jobs, &sized)
	for _, kind := range storageKinds {
		basic, err := yarnRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, nil, err
		}
		adaptive, err := yarnRun(o, core.PolicyAdaptive, kind)
		if err != nil {
			return nil, nil, err
		}
		cpuT.AddRow(kind.String(), 100*basic.CPUOverheadFraction(), 100*adaptive.CPUOverheadFraction())
		ioT.AddRow(kind.String(), 100*basic.IOOverheadFraction(sized.Nodes), 100*adaptive.IOOverheadFraction(sized.Nodes))
	}
	return cpuT, ioT, nil
}

// YarnSummary reports the absolute framework outcomes backing Figures
// 8-12, for EXPERIMENTS.md.
func YarnSummary(o Options) (*metrics.Table, error) {
	warmYarn(o, paperMatrix())
	tb := metrics.NewTable("Framework run summary",
		"policy", "storage", "wasted_core_hours", "energy_kwh",
		"resp_low_s", "resp_high_s", "preemptions", "kills", "checkpoints",
		"incremental", "restores", "remote_restores", "peak_image_gib")
	add := func(policy core.Policy, kind storage.Kind) error {
		r, err := yarnRun(o, policy, kind)
		if err != nil {
			return err
		}
		tb.AddRow(policy.String(), kind.String(), r.WastedCPUHours, r.EnergyKWh,
			r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandProduction),
			r.Preemptions, r.Kills, r.Checkpoints, r.IncrementalCheckpoints,
			r.Restores, r.RemoteRestores, float64(r.PeakImageBytes)/float64(cluster.GiB(1)))
		return nil
	}
	if err := add(core.PolicyKill, storage.SSD); err != nil {
		return nil, err
	}
	for _, kind := range storageKinds {
		if err := add(core.PolicyCheckpoint, kind); err != nil {
			return nil, err
		}
		if err := add(core.PolicyAdaptive, kind); err != nil {
			return nil, err
		}
	}
	return tb, nil
}
