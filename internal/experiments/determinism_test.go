package experiments

import (
	"strings"
	"testing"

	"preemptsched/internal/metrics"
)

// The parallel harness's contract (DESIGN.md §11): the same seed produces
// byte-identical rendered tables at every -parallel level. These tests
// are the proof the pool is allowed to exist — each generator (and the
// full RunAll report) is rendered from a cold cache strictly
// sequentially and again with an eight-worker pool, and the outputs must
// match byte for byte. Run with -race to also catch unsynchronized
// access the equality check can't see.

// tinyOptions shrinks inputs below testOptions: determinism only needs
// equality, not statistically meaningful shapes, and the suite pays for
// two full cold evaluations.
func tinyOptions() Options {
	o := Default()
	o.TraceTasks = 4_000
	o.SimJobs = 120
	o.SimTasksPerJob = 3
	o.YarnJobs = 6
	o.YarnTasks = 60
	return o
}

func renderTables(tbs ...*metrics.Table) string {
	var sb strings.Builder
	for _, tb := range tbs {
		sb.WriteString(tb.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// oneTable adapts the common generator signature.
func oneTable(f func(Options) (*metrics.Table, error)) func(Options) (string, error) {
	return func(o Options) (string, error) {
		tb, err := f(o)
		if err != nil {
			return "", err
		}
		return renderTables(tb), nil
	}
}

// generators is every Fig*/Ext*/Table* entry point plus the full report.
var generators = []struct {
	name   string
	render func(Options) (string, error)
}{
	{"Fig1a", oneTable(Fig1a)},
	{"Fig1b", oneTable(Fig1b)},
	{"Fig1c", oneTable(Fig1c)},
	{"Table1", oneTable(Table1)},
	{"Table2", oneTable(Table2)},
	{"Fig2a", oneTable(Fig2a)},
	{"Fig2b", oneTable(Fig2b)},
	{"Table3", oneTable(Table3)},
	{"Fig3a", oneTable(Fig3a)},
	{"Fig3b", oneTable(Fig3b)},
	{"Fig3c", oneTable(Fig3c)},
	{"Fig4", func(o Options) (string, error) {
		h, l, e, err := Fig4(o)
		if err != nil {
			return "", err
		}
		return renderTables(h, l, e), nil
	}},
	{"Fig5", oneTable(Fig5)},
	{"Fig6", func(o Options) (string, error) {
		h, l, e, err := Fig6(o)
		if err != nil {
			return "", err
		}
		return renderTables(h, l, e), nil
	}},
	{"Fig8a", oneTable(Fig8a)},
	{"Fig8b", oneTable(Fig8b)},
	{"Fig8c", oneTable(Fig8c)},
	{"Fig9", oneTable(Fig9)},
	{"Fig10", oneTable(Fig10)},
	{"Fig11", func(o Options) (string, error) {
		tbs, err := Fig11(o)
		if err != nil {
			return "", err
		}
		return renderTables(tbs...), nil
	}},
	{"Fig12", func(o Options) (string, error) {
		cpuT, ioT, err := Fig12(o)
		if err != nil {
			return "", err
		}
		return renderTables(cpuT, ioT), nil
	}},
	{"ExtDisciplines", oneTable(ExtDisciplines)},
	{"ExtPreCopy", oneTable(ExtPreCopy)},
	{"ExtNVRAM", oneTable(ExtNVRAM)},
	{"ExtEvictionThreshold", oneTable(ExtEvictionThreshold)},
	{"ExtNodeChurn", oneTable(ExtNodeChurn)},
	{"SimSummary", oneTable(SimSummary)},
	{"YarnSummary", oneTable(YarnSummary)},
	{"RunAll", func(o Options) (string, error) {
		var sb strings.Builder
		if err := RunAll(o, &sb); err != nil {
			return "", err
		}
		return sb.String(), nil
	}},
}

// renderAllAt renders every generator starting from a cold cache at the
// given parallelism. Within the pass the memo cache warms progressively,
// exactly as one harness invocation would experience it.
func renderAllAt(t *testing.T, o Options, parallel int) map[string]string {
	t.Helper()
	ResetRunCache()
	o.Parallel = parallel
	out := make(map[string]string, len(generators))
	for _, g := range generators {
		s, err := g.render(o)
		if err != nil {
			t.Fatalf("parallel=%d %s: %v", parallel, g.name, err)
		}
		if s == "" {
			t.Fatalf("parallel=%d %s rendered empty", parallel, g.name)
		}
		out[g.name] = s
	}
	return out
}

func TestDeterminismAcrossParallelism(t *testing.T) {
	o := tinyOptions()
	seq := renderAllAt(t, o, 1)
	par := renderAllAt(t, o, 8)
	for _, g := range generators {
		if seq[g.name] != par[g.name] {
			t.Errorf("%s: output differs between -parallel=1 and -parallel=8\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s",
				g.name, seq[g.name], par[g.name])
		}
	}
}

// TestDeterminismReplay pins the replay half of the contract: the same
// seed and parallelism rerun from a cold cache reproduces the full
// report byte for byte.
func TestDeterminismReplay(t *testing.T) {
	o := tinyOptions()
	render := func() string {
		ResetRunCache()
		o.Parallel = 8
		var sb strings.Builder
		if err := RunAll(o, &sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("two cold RunAll passes with the same seed differ")
	}
}

// TestDeterminismSeedSensitivity guards against the trivial way the
// determinism tests could pass: output that doesn't depend on the inputs
// at all.
func TestDeterminismSeedSensitivity(t *testing.T) {
	o := tinyOptions()
	ResetRunCache()
	a, err := oneTable(Fig3a)(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Seed += 1
	ResetRunCache()
	b, err := oneTable(Fig3a)(o)
	if err != nil {
		t.Fatal(err)
	}
	ResetRunCache()
	if a == b {
		t.Error("Fig3a identical under different seeds — determinism test is vacuous")
	}
}
