package experiments

import (
	"fmt"

	"preemptsched/internal/cluster"
	"preemptsched/internal/metrics"
)

// Fig1a regenerates the preemption-rate timeline: per-day fraction of
// scheduled tasks later preempted, per priority band.
func Fig1a(o Options) (*metrics.Table, error) {
	a, err := o.traceAnalysis()
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Fig 1a — Preemption rate timeline (per day)",
		"day", "low_priority", "medium_priority", "high_priority")
	for _, pt := range a.Timeline {
		tb.AddRow(pt.Day,
			pt.Rate[cluster.BandFree],
			pt.Rate[cluster.BandMiddle],
			pt.Rate[cluster.BandProduction])
	}
	return tb, nil
}

// Fig1b regenerates the share of all preemptions by raw priority 0-11.
func Fig1b(o Options) (*metrics.Table, error) {
	a, err := o.traceAnalysis()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, n := range a.PreemptionsByPriority {
		total += n
	}
	tb := metrics.NewTable("Fig 1b — Preemptions per priority", "priority", "pct_of_all_preemptions")
	for p, n := range a.PreemptionsByPriority {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(n) / float64(total)
		}
		tb.AddRow(p, pct)
	}
	return tb, nil
}

// Fig1c regenerates the re-preemption frequency distribution: distinct
// tasks per eviction count (1..9, >=10).
func Fig1c(o Options) (*metrics.Table, error) {
	a, err := o.traceAnalysis()
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Fig 1c — Preemption frequency distribution", "num_preemptions", "distinct_tasks")
	for k, n := range a.EvictionFrequency {
		label := fmt.Sprintf("%d", k+1)
		if k == len(a.EvictionFrequency)-1 {
			label = ">=10"
		}
		tb.AddRow(label, n)
	}
	return tb, nil
}

// Table1 regenerates preempted-task rates per priority band.
func Table1(o Options) (*metrics.Table, error) {
	a, err := o.traceAnalysis()
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Table 1 — Preempted tasks per priority band",
		"priority_band", "num_tasks", "percent_preempted", "paper_pct")
	paper := map[cluster.Band]float64{
		cluster.BandFree:       20.26,
		cluster.BandMiddle:     0.55,
		cluster.BandProduction: 1.02,
	}
	names := map[cluster.Band]string{
		cluster.BandFree:       "Free (0-1)",
		cluster.BandMiddle:     "Middle (2-8)",
		cluster.BandProduction: "Production (9-11)",
	}
	for b := 0; b < cluster.NumBands; b++ {
		band := cluster.Band(b)
		s := a.Bands[band]
		tb.AddRow(names[band], s.Tasks, 100*s.Rate(), paper[band])
	}
	tb.AddRow("overall", a.Tasks, 100*a.OverallRate(), 12.4)
	return tb, nil
}

// Table2 regenerates preempted-task rates per latency-sensitivity class.
func Table2(o Options) (*metrics.Table, error) {
	a, err := o.traceAnalysis()
	if err != nil {
		return nil, err
	}
	paper := []float64{11.76, 18.87, 8.14, 14.80}
	tb := metrics.NewTable("Table 2 — Preempted tasks per latency sensitivity",
		"latency_class", "num_tasks", "percent_preempted", "paper_pct")
	for l := 0; l < cluster.NumLatencyClasses; l++ {
		s := a.Latencies[l]
		tb.AddRow(l, s.Tasks, 100*s.Rate(), paper[l])
	}
	return tb, nil
}
