package experiments

import (
	"strconv"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/metrics"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
)

// The extension experiments have no paper counterpart (DESIGN.md §6);
// they quantify the repository's additions on the same one-day workload
// the Fig. 3/5 simulations use.

// simRunWith runs the trace workload with an arbitrary config mutation
// applied on top of the standard sizing.
func simRunWith(o Options, policy core.Policy, kind storage.Kind, mutate func(*sched.Config)) (*sched.Result, error) {
	jobs, err := o.simJobs()
	if err != nil {
		return nil, err
	}
	cfg := sched.DefaultConfig(policy, kind)
	o.simCluster(jobs, &cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	return sched.Run(cfg, jobs)
}

// ExtDisciplines compares priority, fair-share, and capacity scheduling
// under adaptive checkpoint-based preemption, including Jain's fairness
// index over per-tenant response times.
func ExtDisciplines(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Scheduling disciplines (adaptive, SSD)",
		"discipline", "resp_low_s", "resp_med_s", "resp_high_s", "fairness_index", "preemptions")
	for _, d := range []sched.Discipline{sched.DisciplinePriority, sched.DisciplineFairShare, sched.DisciplineCapacity} {
		r, err := simRunWith(o, core.PolicyAdaptive, storage.SSD, func(c *sched.Config) { c.Discipline = d })
		if err != nil {
			return nil, err
		}
		tb.AddRow(d.String(),
			r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandMiddle), r.MeanResponse(cluster.BandProduction),
			r.FairnessIndex(), r.Preemptions)
	}
	return tb, nil
}

// ExtPreCopy compares stop-and-copy against pre-copy checkpointing per
// storage medium.
func ExtPreCopy(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Pre-copy checkpointing (basic policy)",
		"storage", "mode", "resp_low_s", "overhead_core_h", "io_device_h")
	for _, kind := range storageKinds {
		stop, err := simRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		pre, err := simRunWith(o, core.PolicyCheckpoint, kind, func(c *sched.Config) { c.PreCopy = true })
		if err != nil {
			return nil, err
		}
		tb.AddRow(kind.String(), "stop-and-copy", stop.MeanResponse(cluster.BandFree), stop.OverheadCPUHours, stop.IOBusyHours)
		tb.AddRow(kind.String(), "pre-copy", pre.MeanResponse(cluster.BandFree), pre.OverheadCPUHours, pre.IOBusyHours)
	}
	return tb, nil
}

// ExtNVRAM compares NVM-as-file-system (PMFS) with NVM-as-virtual-memory.
func ExtNVRAM(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — PMFS vs NVM-as-virtual-memory (basic policy)",
		"mode", "resp_low_s", "resp_high_s", "io_device_h", "wasted_core_h")
	pmfs, err := simRun(o, core.PolicyCheckpoint, storage.NVM)
	if err != nil {
		return nil, err
	}
	nvram, err := simRunWith(o, core.PolicyCheckpoint, storage.NVRAM, nil)
	if err != nil {
		return nil, err
	}
	tb.AddRow("PMFS", pmfs.MeanResponse(cluster.BandFree), pmfs.MeanResponse(cluster.BandProduction), pmfs.IOBusyHours, pmfs.WastedCPUHours)
	tb.AddRow("NVRAM", nvram.MeanResponse(cluster.BandFree), nvram.MeanResponse(cluster.BandProduction), nvram.IOBusyHours, nvram.WastedCPUHours)
	return tb, nil
}

// ExtEvictionThreshold compares unlimited kill-based preemption with the
// Cavdar-style per-task eviction cap.
func ExtEvictionThreshold(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Eviction threshold (kill policy, SSD)",
		"max_evictions", "wasted_core_h", "resp_low_s", "resp_high_s", "preemptions")
	for _, cap := range []int{0, 1, 2, 4} {
		capv := cap
		r, err := simRunWith(o, core.PolicyKill, storage.SSD, func(c *sched.Config) { c.MaxEvictionsPerTask = capv })
		if err != nil {
			return nil, err
		}
		label := "unlimited"
		if capv > 0 {
			label = strconv.Itoa(capv)
		}
		tb.AddRow(label, r.WastedCPUHours, r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandProduction), r.Preemptions)
	}
	return tb, nil
}
