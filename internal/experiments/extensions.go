package experiments

import (
	"strconv"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/metrics"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
)

// The extension experiments have no paper counterpart (DESIGN.md §6);
// they quantify the repository's additions on the same one-day workload
// the Fig. 3/5 simulations use.

// simSpecWith describes a trace-workload run with an arbitrary config
// mutation applied on top of the standard sizing. Each spec regenerates
// its own Jobs slice (the simulator writes through pointers into it), so
// specs are safe to execute concurrently via sched.RunMany.
func simSpecWith(o Options, policy core.Policy, kind storage.Kind, mutate func(*sched.Config)) (sched.RunSpec, error) {
	jobs, err := o.simJobs()
	if err != nil {
		return sched.RunSpec{}, err
	}
	cfg := sched.DefaultConfig(policy, kind)
	o.simCluster(jobs, &cfg)
	if mutate != nil {
		mutate(&cfg)
	}
	return sched.RunSpec{Config: cfg, Jobs: jobs}, nil
}

// simRunWith runs one such mutated configuration synchronously.
func simRunWith(o Options, policy core.Policy, kind storage.Kind, mutate func(*sched.Config)) (*sched.Result, error) {
	spec, err := simSpecWith(o, policy, kind, mutate)
	if err != nil {
		return nil, err
	}
	return sched.Run(spec.Config, spec.Jobs)
}

// extSweep builds and executes one spec per mutation through the sharded
// sweep, returning spec-ordered results.
func extSweep(o Options, policy core.Policy, kind storage.Kind, mutations []func(*sched.Config)) ([]*sched.Result, error) {
	specs := make([]sched.RunSpec, len(mutations))
	for i, mutate := range mutations {
		spec, err := simSpecWith(o, policy, kind, mutate)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	return sched.RunMany(specs, o.workers())
}

// ExtDisciplines compares priority, fair-share, and capacity scheduling
// under adaptive checkpoint-based preemption, including Jain's fairness
// index over per-tenant response times.
func ExtDisciplines(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Scheduling disciplines (adaptive, SSD)",
		"discipline", "resp_low_s", "resp_med_s", "resp_high_s", "fairness_index", "preemptions")
	disciplines := []sched.Discipline{sched.DisciplinePriority, sched.DisciplineFairShare, sched.DisciplineCapacity}
	mutations := make([]func(*sched.Config), len(disciplines))
	for i, d := range disciplines {
		d := d
		mutations[i] = func(c *sched.Config) { c.Discipline = d }
	}
	results, err := extSweep(o, core.PolicyAdaptive, storage.SSD, mutations)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		tb.AddRow(disciplines[i].String(),
			r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandMiddle), r.MeanResponse(cluster.BandProduction),
			r.FairnessIndex(), r.Preemptions)
	}
	return tb, nil
}

// ExtPreCopy compares stop-and-copy against pre-copy checkpointing per
// storage medium.
func ExtPreCopy(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Pre-copy checkpointing (basic policy)",
		"storage", "mode", "resp_low_s", "overhead_core_h", "io_device_h")
	// Stop-and-copy rows reuse the shared Fig. 3/5 runs; the pre-copy rows
	// are a three-spec sharded sweep of their own.
	var chkPairs []policyKind
	for _, kind := range storageKinds {
		chkPairs = append(chkPairs, policyKind{core.PolicyCheckpoint, kind})
	}
	warmSim(o, chkPairs)
	specs := make([]sched.RunSpec, len(storageKinds))
	for i, kind := range storageKinds {
		spec, err := simSpecWith(o, core.PolicyCheckpoint, kind, func(c *sched.Config) { c.PreCopy = true })
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	pres, err := sched.RunMany(specs, o.workers())
	if err != nil {
		return nil, err
	}
	for i, kind := range storageKinds {
		stop, err := simRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		pre := pres[i]
		tb.AddRow(kind.String(), "stop-and-copy", stop.MeanResponse(cluster.BandFree), stop.OverheadCPUHours, stop.IOBusyHours)
		tb.AddRow(kind.String(), "pre-copy", pre.MeanResponse(cluster.BandFree), pre.OverheadCPUHours, pre.IOBusyHours)
	}
	return tb, nil
}

// ExtNVRAM compares NVM-as-file-system (PMFS) with NVM-as-virtual-memory.
func ExtNVRAM(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — PMFS vs NVM-as-virtual-memory (basic policy)",
		"mode", "resp_low_s", "resp_high_s", "io_device_h", "wasted_core_h")
	pmfs, err := simRun(o, core.PolicyCheckpoint, storage.NVM)
	if err != nil {
		return nil, err
	}
	nvram, err := simRunWith(o, core.PolicyCheckpoint, storage.NVRAM, nil)
	if err != nil {
		return nil, err
	}
	tb.AddRow("PMFS", pmfs.MeanResponse(cluster.BandFree), pmfs.MeanResponse(cluster.BandProduction), pmfs.IOBusyHours, pmfs.WastedCPUHours)
	tb.AddRow("NVRAM", nvram.MeanResponse(cluster.BandFree), nvram.MeanResponse(cluster.BandProduction), nvram.IOBusyHours, nvram.WastedCPUHours)
	return tb, nil
}

// ExtNodeChurn replays the same pair of seeded machine outages — node 0
// down at hour 6 for one hour, node 1 lost for good at hour 14 — under
// each preemption policy (DESIGN.md §14). Displaced tasks that left a
// checkpoint image behind resume from it; under kill they restart from
// scratch, so the failure-attributed waste column is the recovery
// dividend the fault domain exists to measure.
func ExtNodeChurn(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Node churn (seeded outages, SSD)",
		"policy", "node_failures", "tasks_rescheduled", "failure_restores",
		"failure_restarts", "failure_waste_core_h", "wasted_core_h", "resp_low_s")
	policies := []core.Policy{core.PolicyKill, core.PolicyCheckpoint, core.PolicyAdaptive}
	churn := func(c *sched.Config) {
		c.NodeFailures = []sched.NodeFailure{
			{Node: 0, At: 6 * time.Hour, RecoverAfter: time.Hour},
			{Node: 1, At: 14 * time.Hour},
		}
	}
	specs := make([]sched.RunSpec, len(policies))
	for i, p := range policies {
		spec, err := simSpecWith(o, p, storage.SSD, churn)
		if err != nil {
			return nil, err
		}
		specs[i] = spec
	}
	results, err := sched.RunMany(specs, o.workers())
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		tb.AddRow(policies[i].String(), r.NodeFailures, r.TasksRescheduled,
			r.FailureRestores, r.FailureRestarts, r.FailureWasteHours,
			r.WastedCPUHours, r.MeanResponse(cluster.BandFree))
	}
	return tb, nil
}

// ExtEvictionThreshold compares unlimited kill-based preemption with the
// Cavdar-style per-task eviction cap.
func ExtEvictionThreshold(o Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Ext — Eviction threshold (kill policy, SSD)",
		"max_evictions", "wasted_core_h", "resp_low_s", "resp_high_s", "preemptions")
	caps := []int{0, 1, 2, 4}
	mutations := make([]func(*sched.Config), len(caps))
	for i, capv := range caps {
		capv := capv
		mutations[i] = func(c *sched.Config) { c.MaxEvictionsPerTask = capv }
	}
	results, err := extSweep(o, core.PolicyKill, storage.SSD, mutations)
	if err != nil {
		return nil, err
	}
	for i, r := range results {
		label := "unlimited"
		if caps[i] > 0 {
			label = strconv.Itoa(caps[i])
		}
		tb.AddRow(label, r.WastedCPUHours, r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandProduction), r.Preemptions)
	}
	return tb, nil
}
