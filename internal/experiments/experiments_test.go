package experiments

import (
	"strconv"
	"strings"
	"testing"

	"preemptsched/internal/metrics"
)

// testOptions shrinks inputs further than Default so the whole suite stays
// fast under `go test`.
func testOptions() Options {
	o := Default()
	o.TraceTasks = 8_000
	o.SimJobs = 250
	o.SimTasksPerJob = 4
	o.YarnJobs = 9
	o.YarnTasks = 90
	return o
}

// cell parses table cell (r, c) as a float.
func cell(t *testing.T, tb *metrics.Table, r, c int) float64 {
	t.Helper()
	if r >= len(tb.Rows) || c >= len(tb.Rows[r]) {
		t.Fatalf("table %q has no cell (%d,%d)", tb.Title, r, c)
	}
	v, err := strconv.ParseFloat(tb.Rows[r][c], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", r, c, tb.Rows[r][c], err)
	}
	return v
}

func TestOptionsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default options invalid: %v", err)
	}
	if err := PaperScale().Validate(); err != nil {
		t.Errorf("paper-scale options invalid: %v", err)
	}
	bad := Default()
	bad.SimJobs = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid options accepted")
	}
	bad = Default()
	bad.YarnLoadFactor = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero load factor accepted")
	}
}

func TestSection2Tables(t *testing.T) {
	o := testOptions()
	tb, err := Table1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table1 rows = %d", len(tb.Rows))
	}
	// Free band preempted far more than middle band.
	if cell(t, tb, 0, 2) < 10*cell(t, tb, 1, 2) {
		t.Errorf("free-band rate %v not >> middle %v", tb.Rows[0][2], tb.Rows[1][2])
	}
	tb, err = Table2(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("Table2 rows = %d", len(tb.Rows))
	}

	f1a, err := Fig1a(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1a.Rows) < 28 {
		t.Errorf("Fig1a has %d days", len(f1a.Rows))
	}
	f1b, err := Fig1b(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1b.Rows) != 12 {
		t.Errorf("Fig1b rows = %d", len(f1b.Rows))
	}
	if cell(t, f1b, 0, 1)+cell(t, f1b, 1, 1) < 90 {
		t.Error("priorities 0-1 should hold >90% of preemptions")
	}
	f1c, err := Fig1c(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1c.Rows) != 10 {
		t.Errorf("Fig1c rows = %d", len(f1c.Rows))
	}
	// Single eviction dominates.
	if cell(t, f1c, 0, 1) <= cell(t, f1c, 1, 1) {
		t.Error("one-eviction bucket should dominate")
	}
}

func TestFig2Shapes(t *testing.T) {
	o := testOptions()
	local, err := Fig2a(o)
	if err != nil {
		t.Fatal(err)
	}
	last := len(local.Rows) - 1
	hdd, ssd, nvm := cell(t, local, last, 1), cell(t, local, last, 2), cell(t, local, last, 3)
	if !(hdd > ssd && ssd > nvm) {
		t.Errorf("Fig2a ordering broken: %v %v %v", hdd, ssd, nvm)
	}
	if r := hdd / ssd; r < 2.5 || r > 5 {
		t.Errorf("HDD/SSD ratio %v, want 3-4x", r)
	}
	if r := ssd / nvm; r < 8 || r > 20 {
		t.Errorf("SSD/NVM ratio %v, want 10-15x", r)
	}
	// Time grows monotonically with size.
	for c := 1; c <= 3; c++ {
		for r := 1; r < len(local.Rows); r++ {
			if cell(t, local, r, c) < cell(t, local, r-1, c) {
				t.Fatalf("Fig2a column %d not monotone", c)
			}
		}
	}
	dfs, err := Fig2b(o)
	if err != nil {
		t.Fatal(err)
	}
	// DFS is slower than local for every device and size.
	for r := 1; r < len(dfs.Rows); r++ {
		for c := 1; c <= 3; c++ {
			if cell(t, dfs, r, c) <= cell(t, local, r, c) {
				t.Errorf("DFS faster than local at row %d col %d", r, c)
			}
		}
	}
}

func TestTable3Shape(t *testing.T) {
	tb, err := Table3(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for r := 0; r < 3; r++ {
		first, second := cell(t, tb, r, 1), cell(t, tb, r, 2)
		if first < 8*second {
			t.Errorf("%s: incremental dump %.2fs not ~10x faster than full %.2fs", tb.Rows[r][0], second, first)
		}
		// Within 25% of the paper's measured numbers.
		paperFirst := cell(t, tb, r, 3)
		if first < paperFirst*0.75 || first > paperFirst*1.25 {
			t.Errorf("%s: first dump %.2fs vs paper %.2fs", tb.Rows[r][0], first, paperFirst)
		}
	}
}

func TestFig3Shapes(t *testing.T) {
	o := testOptions()
	tb, err := Fig3a(o)
	if err != nil {
		t.Fatal(err)
	}
	kill := cell(t, tb, 0, 1)
	chkSSD := cell(t, tb, 2, 1)
	chkNVM := cell(t, tb, 3, 1)
	if !(kill > chkSSD && chkSSD > chkNVM) {
		t.Errorf("wastage ordering broken: kill=%v ssd=%v nvm=%v", kill, chkSSD, chkNVM)
	}
	f3c, err := Fig3c(o)
	if err != nil {
		t.Fatal(err)
	}
	// Low-priority jobs improve under checkpointing on every medium.
	for r := 1; r < len(f3c.Rows); r++ {
		if cell(t, f3c, r, 1) >= 1.0 {
			t.Errorf("%s: low-priority normalized response %v >= 1", f3c.Rows[r][0], f3c.Rows[r][1])
		}
	}
	// High-priority jobs on NVM stay comparable to kill (within 10%).
	if v := cell(t, f3c, 3, 3); v > 1.1 {
		t.Errorf("NVM high-priority normalized response %v > 1.1", v)
	}
}

func TestFig4And6Shapes(t *testing.T) {
	o := testOptions()
	high, low, energyT, err := Fig4(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(high.Rows) != len(sensitivityBandwidths) {
		t.Fatalf("rows = %d", len(high.Rows))
	}
	// Kill is always best for the high-priority job (column 2 == 1.0) and
	// wait always worst.
	for r := range high.Rows {
		wait, kill, chk := cell(t, high, r, 1), cell(t, high, r, 2), cell(t, high, r, 3)
		if kill != 1.0 {
			t.Errorf("row %d: kill normalization %v != 1", r, kill)
		}
		if wait < kill {
			t.Errorf("row %d: wait %v better than kill for high job", r, wait)
		}
		_ = chk
	}
	// Checkpointing approaches kill as bandwidth grows (monotone
	// improvement for the high job).
	for r := 1; r < len(high.Rows); r++ {
		if cell(t, high, r, 3) > cell(t, high, r-1, 3)+1e-9 {
			t.Errorf("checkpoint high-priority response not improving with bandwidth")
		}
	}
	// Low-priority job: checkpoint beats kill at every bandwidth.
	for r := range low.Rows {
		if cell(t, low, r, 3) >= cell(t, low, r, 2) {
			t.Errorf("row %d: checkpoint low %v not better than kill", r, cell(t, low, r, 3))
		}
	}

	high6, _, energy6, err := Fig6(o)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive (col 4) never worse than basic checkpoint (col 3) for the
	// high-priority job, and never worse than the worse of kill/wait.
	for r := range high6.Rows {
		if cell(t, high6, r, 4) > cell(t, high6, r, 3)+1e-9 {
			t.Errorf("row %d: adaptive %v worse than basic %v", r, cell(t, high6, r, 4), cell(t, high6, r, 3))
		}
	}
	// Adaptive energy never worse than kill.
	for r := range energy6.Rows {
		if cell(t, energy6, r, 4) > cell(t, energy6, r, 2)+1e-9 {
			t.Errorf("row %d: adaptive energy %v worse than kill %v", r, cell(t, energy6, r, 4), cell(t, energy6, r, 2))
		}
	}
	_ = energyT
}

func TestFig5Shape(t *testing.T) {
	tb, err := Fig5(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Adaptive rows: every band at most ~1.05x basic.
	for r := 1; r < len(tb.Rows); r += 2 {
		for c := 2; c <= 4; c++ {
			if cell(t, tb, r, c) > 1.05 {
				t.Errorf("adaptive %s col %d = %v worse than basic", tb.Rows[r][0], c, cell(t, tb, r, c))
			}
		}
	}
}

func TestFig8ToFig12Shapes(t *testing.T) {
	o := testOptions()
	f8a, err := Fig8a(o)
	if err != nil {
		t.Fatal(err)
	}
	kill := cell(t, f8a, 0, 1)
	nvm := cell(t, f8a, 3, 1)
	if kill <= nvm {
		t.Errorf("kill wastage %v <= checkpoint-NVM %v", kill, nvm)
	}
	if kill == 0 {
		t.Error("no contention in framework experiment")
	}

	f8c, err := Fig8c(o)
	if err != nil {
		t.Fatal(err)
	}
	// NVM low-priority response beats kill.
	if cell(t, f8c, 3, 1) >= cell(t, f8c, 0, 1) {
		t.Errorf("NVM low response %v not better than kill %v", cell(t, f8c, 3, 1), cell(t, f8c, 0, 1))
	}

	f10, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive never meaningfully worse than basic (rows alternate
	// basic/adaptive per storage). High-priority is strict; low-priority
	// gets 10% slack because at test scale a single extra kill shifts the
	// small-sample mean.
	for r := 0; r < len(f10.Rows); r += 2 {
		if cell(t, f10, r+1, 2) > cell(t, f10, r, 2)*1.10+1e-9 {
			t.Errorf("storage %s: adaptive low %v far worse than basic %v",
				f10.Rows[r][0], cell(t, f10, r+1, 2), cell(t, f10, r, 2))
		}
		if cell(t, f10, r+1, 3) > cell(t, f10, r, 3)*1.02+1e-9 {
			t.Errorf("storage %s: adaptive high %v worse than basic %v",
				f10.Rows[r][0], cell(t, f10, r+1, 3), cell(t, f10, r, 3))
		}
	}

	cpuT, ioT, err := Fig12(o)
	if err != nil {
		t.Fatal(err)
	}
	// Overheads shrink with faster storage and adaptive never exceeds
	// basic meaningfully.
	if cell(t, cpuT, 0, 1) <= cell(t, cpuT, 2, 1) {
		t.Errorf("HDD CPU overhead %v not above NVM %v", cell(t, cpuT, 0, 1), cell(t, cpuT, 2, 1))
	}
	for r := 0; r < 3; r++ {
		if cell(t, ioT, r, 2) > cell(t, ioT, r, 1)+0.5 {
			t.Errorf("%s: adaptive I/O overhead above basic", ioT.Rows[r][0])
		}
	}

	f9, err := Fig9(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Rows) != 10 || len(f9.Columns) != 5 {
		t.Errorf("Fig9 shape %dx%d", len(f9.Rows), len(f9.Columns))
	}
	f11, err := Fig11(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(f11) != 3 {
		t.Errorf("Fig11 panels = %d", len(f11))
	}
}

func TestExtensionTables(t *testing.T) {
	o := testOptions()
	disc, err := ExtDisciplines(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Rows) != 3 {
		t.Fatalf("disciplines rows = %d", len(disc.Rows))
	}
	// Fairness index must be in (0, 1].
	for r := range disc.Rows {
		if f := cell(t, disc, r, 4); f <= 0 || f > 1 {
			t.Errorf("%s fairness index %v out of range", disc.Rows[r][0], f)
		}
	}
	pre, err := ExtPreCopy(o)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-copy overhead is decisively lower where dumps are slow (HDD, the
	// first row pair); on fast media the absolute numbers are tiny and
	// scheduling noise dominates, so no ordering is asserted there.
	if cell(t, pre, 1, 3) >= cell(t, pre, 0, 3) {
		t.Errorf("HDD: pre-copy overhead %v not below stop-and-copy %v",
			cell(t, pre, 1, 3), cell(t, pre, 0, 3))
	}
	nv, err := ExtNVRAM(o)
	if err != nil {
		t.Fatal(err)
	}
	if cell(t, nv, 1, 3) >= cell(t, nv, 0, 3) {
		t.Errorf("NVRAM device hours %v not below PMFS %v", cell(t, nv, 1, 3), cell(t, nv, 0, 3))
	}
	ev, err := ExtEvictionThreshold(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Rows) != 4 {
		t.Fatalf("eviction rows = %d", len(ev.Rows))
	}
	// Capping evictions can only reduce preemption count.
	if cell(t, ev, 1, 4) > cell(t, ev, 0, 4) {
		t.Errorf("cap 1 preemptions %v above unlimited %v", cell(t, ev, 1, 4), cell(t, ev, 0, 4))
	}
	churn, err := ExtNodeChurn(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(churn.Rows) != 3 {
		t.Fatalf("node churn rows = %d", len(churn.Rows))
	}
	for r := range churn.Rows {
		policy := churn.Rows[r][0]
		if f := cell(t, churn, r, 1); f != 2 {
			t.Errorf("%s: node failures %v, want the 2 seeded outages", policy, f)
		}
		// Every displaced task is accounted once: it either resumed from a
		// checkpoint image or restarted from scratch.
		if resched, acc := cell(t, churn, r, 2), cell(t, churn, r, 3)+cell(t, churn, r, 4); resched != acc {
			t.Errorf("%s: rescheduled %v != restores+restarts %v", policy, resched, acc)
		}
		if fw, w := cell(t, churn, r, 5), cell(t, churn, r, 6); fw > w+1e-9 {
			t.Errorf("%s: failure waste %v exceeds total waste %v", policy, fw, w)
		}
	}
	// Kill discards checkpointing entirely, so nothing can resume from an
	// image after an outage.
	if f := cell(t, churn, 0, 3); f != 0 {
		t.Errorf("kill policy reported %v failure restores", f)
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	var sb strings.Builder
	if err := RunAll(testOptions(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Fig 1a", "Fig 1b", "Fig 1c", "Table 1", "Table 2",
		"Fig 2a", "Fig 2b", "Fig 3a", "Fig 3b", "Fig 3c",
		"Fig 4a", "Fig 6a", "Table 3", "Fig 5",
		"Fig 8a", "Fig 8b", "Fig 8c", "Fig 9", "Fig 10", "Fig 11", "Fig 12a", "Fig 12b",
		"Ext — Node churn",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}
