package experiments

import (
	"sync"

	"preemptsched/internal/core"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
	"preemptsched/internal/trace"
	"preemptsched/internal/yarn"
)

// Several figures share underlying runs (Fig. 3a/3b/3c all need the same
// four simulations; Fig. 8-12 reuse framework runs; all five Section 2
// tables read one trace analysis). Runs are pure functions of
// (Options, policy, kind), so they are memoized here. The caches are
// package-level by design: they hold immutable results keyed by
// value-comparable inputs.
//
// Under the parallel harness several figures request the same run at
// once, so the memoization is singleflight-shaped: the first requester
// of a key executes the run, later requesters block on its completion
// channel and share the result. Shared runs therefore execute exactly
// once at any -parallel level. Failed flights are evicted before their
// channel closes, so waiters see the error but later callers retry —
// runs are deterministic, which keeps the retry's error identical.
type runKey struct {
	opts   Options
	policy core.Policy
	kind   storage.Kind
}

// analysisKey identifies one Section 2 trace analysis.
type analysisKey struct {
	seed  int64
	tasks int
}

// flight is one in-progress or completed run. val/err are written once,
// before done is closed, and only read after <-done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// memo is a singleflight map from a comparable key to a result.
type memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*flight[V]
}

func (c *memo[K, V]) do(key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*flight[V])
	}
	if f, ok := c.m[key]; ok {
		c.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()
	if f.err != nil {
		c.mu.Lock()
		delete(c.m, key)
		c.mu.Unlock()
	}
	close(f.done)
	return f.val, f.err
}

func (c *memo[K, V]) reset() {
	c.mu.Lock()
	c.m = nil
	c.mu.Unlock()
}

var (
	simCache      memo[runKey, *sched.Result]
	yarnCache     memo[runKey, *yarn.Result]
	analysisCache memo[analysisKey, *trace.Analysis]
)

// cacheKey normalizes harness-only fields out of the memo key: Parallel
// changes scheduling, never results, so every parallelism level shares
// one memoized run.
func (o Options) cacheKey() Options {
	o.Parallel = 0
	return o
}

func cachedSimRun(o Options, policy core.Policy, kind storage.Kind) (*sched.Result, error) {
	return simCache.do(runKey{opts: o.cacheKey(), policy: policy, kind: kind}, func() (*sched.Result, error) {
		return simRunUncached(o, policy, kind)
	})
}

func cachedYarnRun(o Options, policy core.Policy, kind storage.Kind) (*yarn.Result, error) {
	return yarnCache.do(runKey{opts: o.cacheKey(), policy: policy, kind: kind}, func() (*yarn.Result, error) {
		return yarnRunUncached(o, policy, kind)
	})
}

// traceAnalysis returns the memoized Section 2 analysis for the options'
// trace. The key deliberately carries only the fields the trace depends
// on, so options that differ elsewhere (e.g. Parallel) share the result.
func (o Options) traceAnalysis() (*trace.Analysis, error) {
	return analysisCache.do(analysisKey{seed: o.Seed, tasks: o.TraceTasks}, func() (*trace.Analysis, error) {
		events, err := o.traceEvents()
		if err != nil {
			return nil, err
		}
		return trace.Analyze(events), nil
	})
}

// ResetRunCache drops every memoized run. Benchmarks and determinism
// tests call it so each measured pass pays the full cost of the
// evaluation rather than reading a warm cache; it must not be called
// concurrently with figure generation.
func ResetRunCache() {
	simCache.reset()
	yarnCache.reset()
	analysisCache.reset()
}
