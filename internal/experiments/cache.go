package experiments

import (
	"sync"

	"preemptsched/internal/core"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
	"preemptsched/internal/yarn"
)

// Several figures share underlying runs (Fig. 3a/3b/3c all need the same
// four simulations; Fig. 8-12 reuse framework runs). Runs are pure
// functions of (Options, policy, kind), so they are memoized here. The
// caches are package-level by design: they hold immutable results keyed by
// value-comparable inputs and are guarded by a mutex.
type runKey struct {
	opts   Options
	policy core.Policy
	kind   storage.Kind
}

var (
	cacheMu   sync.Mutex
	simCache  = make(map[runKey]*sched.Result)
	yarnCache = make(map[runKey]*yarn.Result)
)

func cachedSimRun(o Options, policy core.Policy, kind storage.Kind) (*sched.Result, error) {
	key := runKey{opts: o, policy: policy, kind: kind}
	cacheMu.Lock()
	if r, ok := simCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	r, err := simRunUncached(o, policy, kind)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	simCache[key] = r
	cacheMu.Unlock()
	return r, nil
}

func cachedYarnRun(o Options, policy core.Policy, kind storage.Kind) (*yarn.Result, error) {
	key := runKey{opts: o, policy: policy, kind: kind}
	cacheMu.Lock()
	if r, ok := yarnCache[key]; ok {
		cacheMu.Unlock()
		return r, nil
	}
	cacheMu.Unlock()
	r, err := yarnRunUncached(o, policy, kind)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	yarnCache[key] = r
	cacheMu.Unlock()
	return r, nil
}
