package experiments

import (
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/metrics"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
	"preemptsched/internal/workload"
)

// simRun executes (or returns the memoized result of) the one-day trace
// simulation under one policy/storage.
func simRun(o Options, policy core.Policy, kind storage.Kind) (*sched.Result, error) {
	return cachedSimRun(o, policy, kind)
}

func simRunUncached(o Options, policy core.Policy, kind storage.Kind) (*sched.Result, error) {
	jobs, err := o.simJobs()
	if err != nil {
		return nil, err
	}
	cfg := sched.DefaultConfig(policy, kind)
	o.simCluster(jobs, &cfg)
	return sched.Run(cfg, jobs)
}

// storageKinds is the paper's device sweep order.
var storageKinds = []storage.Kind{storage.HDD, storage.SSD, storage.NVM}

// Fig3a regenerates wasted CPU capacity under kill vs checkpoint-based
// preemption on each storage medium.
func Fig3a(o Options) (*metrics.Table, error) {
	warmSim(o, killChkPairs())
	tb := metrics.NewTable("Fig 3a — Resource wastage (trace-driven sim)",
		"policy", "wasted_core_hours", "waste_pct_of_usage")
	kill, err := simRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Kill", kill.WastedCPUHours, 100*kill.WasteFraction())
	for _, kind := range storageKinds {
		r, err := simRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow("Chk-"+kind.String(), r.WastedCPUHours, 100*r.WasteFraction())
	}
	return tb, nil
}

// Fig3b regenerates total energy consumption for the same four policies.
func Fig3b(o Options) (*metrics.Table, error) {
	warmSim(o, killChkPairs())
	tb := metrics.NewTable("Fig 3b — Energy consumption (trace-driven sim)",
		"policy", "energy_kwh")
	kill, err := simRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	tb.AddRow("Kill", kill.EnergyKWh)
	for _, kind := range storageKinds {
		r, err := simRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow("Chk-"+kind.String(), r.EnergyKWh)
	}
	return tb, nil
}

// Fig3c regenerates per-band job response times normalized to the
// kill-based policy.
func Fig3c(o Options) (*metrics.Table, error) {
	warmSim(o, killChkPairs())
	kill, err := simRun(o, core.PolicyKill, storage.SSD)
	if err != nil {
		return nil, err
	}
	tb := metrics.NewTable("Fig 3c — Normalized response time vs kill (trace-driven sim)",
		"policy", "low_priority", "medium_priority", "high_priority")
	tb.AddRow("Kill", 1.0, 1.0, 1.0)
	for _, kind := range storageKinds {
		r, err := simRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow("Chk-"+kind.String(),
			norm(r.MeanResponse(cluster.BandFree), kill.MeanResponse(cluster.BandFree)),
			norm(r.MeanResponse(cluster.BandMiddle), kill.MeanResponse(cluster.BandMiddle)),
			norm(r.MeanResponse(cluster.BandProduction), kill.MeanResponse(cluster.BandProduction)))
	}
	return tb, nil
}

func norm(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return x / base
}

// sensitivityBandwidths is the paper's 1-5 GB/s sweep.
var sensitivityBandwidths = []float64{1e9, 2e9, 3e9, 4e9, 5e9}

// sensitivitySpec describes the two-job k-means scenario of Section
// 3.3.3 on a single-slot machine with the given policy and checkpoint
// bandwidth. Each spec generates its own Jobs slice: the simulator takes
// pointers into the slice it is handed, so specs sharing one would
// couple otherwise-independent runs.
func sensitivitySpec(policy core.Policy, bw float64) sched.RunSpec {
	cfg := sched.DefaultConfig(policy, storage.SSD)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	cfg.CustomBandwidth = bw
	return sched.RunSpec{
		Config: cfg,
		Jobs:   workload.SensitivityScenario(time.Minute, 30*time.Second, cluster.GiB(5)),
	}
}

// figSensitivity produces the three panels of Fig. 4 (policies wait, kill,
// checkpoint) or Fig. 6 (plus adaptive): normalized high- and low-priority
// response times and energy across checkpoint bandwidths. The bandwidth ×
// policy sweep is a grid of independent single-machine simulations, so it
// is sharded through sched.RunMany; rows are assembled from the
// spec-ordered results, which RunMany guarantees are identical at every
// parallelism level.
func figSensitivity(o Options, includeAdaptive bool) (high, low, energyT *metrics.Table, err error) {
	policies := []core.Policy{core.PolicyWait, core.PolicyKill, core.PolicyCheckpoint}
	figure := "Fig 4"
	if includeAdaptive {
		policies = append(policies, core.PolicyAdaptive)
		figure = "Fig 6"
	}
	cols := []string{"bandwidth_gbs"}
	for _, p := range policies {
		cols = append(cols, p.String())
	}
	high = metrics.NewTable(figure+"a — High-priority normalized response vs bandwidth", cols...)
	low = metrics.NewTable(figure+"b — Low-priority normalized response vs bandwidth", cols...)
	energyT = metrics.NewTable(figure+"c — Normalized energy vs bandwidth", cols...)

	specs := make([]sched.RunSpec, 0, len(sensitivityBandwidths)*len(policies))
	for _, bw := range sensitivityBandwidths {
		for _, p := range policies {
			specs = append(specs, sensitivitySpec(p, bw))
		}
	}
	results, err := sched.RunMany(specs, o.workers())
	if err != nil {
		return nil, nil, nil, err
	}

	for i, bw := range sensitivityBandwidths {
		row := results[i*len(policies) : (i+1)*len(policies)]
		wait, kill := row[0], row[1]
		baseHigh := kill.MeanResponse(cluster.BandProduction)
		baseLow := kill.MeanResponse(cluster.BandFree)
		baseEnergy := wait.EnergyKWh

		rowH := []any{bw / 1e9}
		rowL := []any{bw / 1e9}
		rowE := []any{bw / 1e9}
		for _, r := range row {
			rowH = append(rowH, norm(r.MeanResponse(cluster.BandProduction), baseHigh))
			rowL = append(rowL, norm(r.MeanResponse(cluster.BandFree), baseLow))
			rowE = append(rowE, norm(r.EnergyKWh, baseEnergy))
		}
		high.AddRow(rowH...)
		low.AddRow(rowL...)
		energyT.AddRow(rowE...)
	}
	return high, low, energyT, nil
}

// Fig4 regenerates the wait/kill/checkpoint sensitivity sweep.
func Fig4(o Options) (highT, lowT, energyT *metrics.Table, err error) {
	return figSensitivity(o, false)
}

// Fig6 regenerates the sweep including the adaptive policy.
func Fig6(o Options) (highT, lowT, energyT *metrics.Table, err error) {
	return figSensitivity(o, true)
}

// Fig5 regenerates the adaptive-vs-basic comparison in the trace-driven
// simulator: per-band response times of the adaptive policy normalized to
// basic checkpoint-based preemption, one panel per storage medium.
func Fig5(o Options) (*metrics.Table, error) {
	warmSim(o, basicAdaptivePairs())
	tb := metrics.NewTable("Fig 5 — Adaptive vs basic checkpointing (sim), response normalized to basic",
		"storage", "policy", "low_priority", "medium_priority", "high_priority")
	for _, kind := range storageKinds {
		basic, err := simRun(o, core.PolicyCheckpoint, kind)
		if err != nil {
			return nil, err
		}
		adaptive, err := simRun(o, core.PolicyAdaptive, kind)
		if err != nil {
			return nil, err
		}
		tb.AddRow(kind.String(), "basic", 1.0, 1.0, 1.0)
		tb.AddRow(kind.String(), "adaptive",
			norm(adaptive.MeanResponse(cluster.BandFree), basic.MeanResponse(cluster.BandFree)),
			norm(adaptive.MeanResponse(cluster.BandMiddle), basic.MeanResponse(cluster.BandMiddle)),
			norm(adaptive.MeanResponse(cluster.BandProduction), basic.MeanResponse(cluster.BandProduction)))
	}
	return tb, nil
}

// SimSummary reports the absolute per-policy outcomes backing Figures 3
// and 5, for EXPERIMENTS.md.
func SimSummary(o Options) (*metrics.Table, error) {
	warmSim(o, paperMatrix())
	tb := metrics.NewTable("Trace-driven simulation summary",
		"policy", "storage", "wasted_core_hours", "energy_kwh",
		"resp_low_s", "resp_med_s", "resp_high_s", "preemptions", "kills", "checkpoints", "restores")
	add := func(policy core.Policy, kind storage.Kind) error {
		r, err := simRun(o, policy, kind)
		if err != nil {
			return err
		}
		tb.AddRow(policy.String(), kind.String(), r.WastedCPUHours, r.EnergyKWh,
			r.MeanResponse(cluster.BandFree), r.MeanResponse(cluster.BandMiddle), r.MeanResponse(cluster.BandProduction),
			r.Preemptions, r.Kills, r.Checkpoints, r.Restores)
		return nil
	}
	if err := add(core.PolicyKill, storage.SSD); err != nil {
		return nil, err
	}
	for _, kind := range storageKinds {
		if err := add(core.PolicyCheckpoint, kind); err != nil {
			return nil, err
		}
		if err := add(core.PolicyAdaptive, kind); err != nil {
			return nil, err
		}
	}
	return tb, nil
}
