package experiments

import (
	"fmt"
	"time"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/metrics"
	"preemptsched/internal/proc"
	"preemptsched/internal/storage"
)

// dfsWriteFactor models the overhead HDFS adds over the raw device for
// checkpoint writes (replication pipeline, protocol): Fig. 2b shows
// dumps through HDFS taking moderately longer than the local file system.
const dfsWriteFactor = 1.35

// dfsTransferTime is the network leg of a DFS read/write.
func dfsTransferTime(size int64) time.Duration {
	return time.Duration(float64(size) / core.DefaultNetBandwidth * float64(time.Second))
}

// microDumpRestore performs a real dump+restore of a FillProgram process
// with the given logical size and returns the image info, verifying the
// engine round-trips at this size.
func microDumpRestore(logical int64) (*checkpoint.ImageInfo, error) {
	reg := proc.NewRegistry()
	reg.Register(proc.FillProgramName, func() proc.Program { return proc.FillProgram{} })
	eng := checkpoint.NewEngine(reg)
	store := storage.NewMemStore()

	real := int64(64 * proc.PageSize)
	if logical < real {
		logical = real
	}
	p, err := proc.New("micro", proc.FillProgram{}, real, logical)
	if err != nil {
		return nil, err
	}
	proc.ConfigureFill(p, 1000, 2)
	for i := 0; i < 5; i++ {
		if _, err := p.Step(); err != nil {
			return nil, err
		}
	}
	if err := p.Suspend(); err != nil {
		return nil, err
	}
	info, err := eng.Dump(p, store, "img", checkpoint.DumpOpts{})
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.Restore(store, "img"); err != nil {
		return nil, err
	}
	return info, nil
}

// fig2Sizes is the paper's x-axis: checkpoint sizes in GB.
var fig2Sizes = []float64{0, 1.0, 2.5, 5.0, 7.5, 10.0}

// Fig2a regenerates total dump+restore time against checkpoint size on the
// local file system for HDD, SSD and NVM. Each point performs a real
// (logically scaled) dump+restore; the reported duration is the
// calibrated device model's.
func Fig2a(Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Fig 2a — Suspend+restore time vs size, local FS (seconds)",
		"size_gb", "HDD", "SSD", "NVM")
	devices := []*storage.Device{
		storage.NewDevice(storage.HDD),
		storage.NewDevice(storage.SSD),
		storage.NewDevice(storage.NVM),
	}
	for _, gb := range fig2Sizes {
		size := cluster.GiB(gb)
		if _, err := microDumpRestore(size); err != nil {
			return nil, fmt.Errorf("experiments: fig2a at %v GB: %w", gb, err)
		}
		row := []any{gb}
		for _, dev := range devices {
			total := dev.WriteTime(size) + dev.ReadTime(size)
			row = append(row, total.Seconds())
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// Fig2b regenerates the same sweep through the DFS: every byte also pays
// the network leg and the replication-pipeline factor.
func Fig2b(Options) (*metrics.Table, error) {
	tb := metrics.NewTable("Fig 2b — Suspend+restore time vs size, DFS (seconds)",
		"size_gb", "HDD", "SSD", "PMFS")
	devices := []*storage.Device{
		storage.NewDevice(storage.HDD),
		storage.NewDevice(storage.SSD),
		storage.NewDevice(storage.NVM),
	}
	for _, gb := range fig2Sizes {
		size := cluster.GiB(gb)
		row := []any{gb}
		for _, dev := range devices {
			dump := time.Duration(dfsWriteFactor*float64(dev.WriteTime(size))) + dfsTransferTime(size)
			restore := dev.ReadTime(size) + dfsTransferTime(size)
			row = append(row, (dump + restore).Seconds())
		}
		tb.AddRow(row...)
	}
	return tb, nil
}

// Table3 regenerates the incremental-checkpointing benefit: a 5 GB
// process is dumped, ~10% of its memory is modified, and it is dumped
// again incrementally. Both dumps are performed for real; times come from
// the device models applied to each dump's logical size.
func Table3(Options) (*metrics.Table, error) {
	reg := proc.NewRegistry()
	reg.Register(proc.FillProgramName, func() proc.Program { return proc.FillProgram{} })
	eng := checkpoint.NewEngine(reg)
	store := storage.NewMemStore()

	const logical = int64(5) << 30
	const realPages = 200
	p, err := proc.New("t3", proc.FillProgram{}, realPages*proc.PageSize, logical)
	if err != nil {
		return nil, err
	}
	// Each step touches one data page; after the full dump, 20 steps dirty
	// ~10% of the 200 pages.
	proc.ConfigureFill(p, 1_000_000, 1)
	if err := p.Suspend(); err != nil {
		return nil, err
	}
	full, err := eng.Dump(p, store, "t3/0", checkpoint.DumpOpts{})
	if err != nil {
		return nil, err
	}
	if err := p.ResumeInPlace(); err != nil {
		return nil, err
	}
	for i := 0; i < 19; i++ {
		if _, err := p.Step(); err != nil {
			return nil, err
		}
	}
	if err := p.Suspend(); err != nil {
		return nil, err
	}
	incr, err := eng.Dump(p, store, "t3/1", checkpoint.DumpOpts{Incremental: true, Parent: "t3/0"})
	if err != nil {
		return nil, err
	}
	if _, _, err := eng.Restore(store, "t3/1"); err != nil {
		return nil, fmt.Errorf("experiments: table3 chain restore: %w", err)
	}

	paper := map[storage.Kind][2]float64{
		storage.HDD: {169.18, 15.34},
		storage.SSD: {43.73, 4.08},
		storage.NVM: {2.92, 0.28},
	}
	tb := metrics.NewTable("Table 3 — Incremental checkpointing (seconds)",
		"storage", "first_checkpoint", "second_checkpoint", "paper_first", "paper_second")
	for _, kind := range []storage.Kind{storage.HDD, storage.SSD, storage.NVM} {
		dev := storage.NewDevice(kind)
		first := dev.WriteTime(full.LogicalBytes).Seconds()
		second := dev.WriteTime(incr.LogicalBytes).Seconds()
		tb.AddRow(kind.String(), first, second, paper[kind][0], paper[kind][1])
	}
	return tb, nil
}
