package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestRunParallelRunsEveryTask(t *testing.T) {
	for _, workers := range []int{1, 4, 100} {
		const n = 37
		var ran [n]atomic.Int32
		tasks := make([]func() error, n)
		for i := range tasks {
			i := i
			tasks[i] = func() error { ran[i].Add(1); return nil }
		}
		if err := runParallel(workers, tasks); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if got := ran[i].Load(); got != 1 {
				t.Errorf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunParallelReturnsLowestIndexedError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		var completed atomic.Int32
		tasks := make([]func() error, 20)
		for i := range tasks {
			i := i
			tasks[i] = func() error {
				completed.Add(1)
				if i == 3 || i == 11 {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			}
		}
		err := runParallel(workers, tasks)
		if err == nil || err.Error() != "task 3 failed" {
			t.Errorf("workers=%d: got %v, want the lowest-indexed failure", workers, err)
		}
		// Failures must not short-circuit the fan-out: a partial warm pass
		// would leave the memo cache populated for a schedule-dependent
		// prefix.
		if got := completed.Load(); got != 20 {
			t.Errorf("workers=%d: %d/20 tasks ran after failure", workers, got)
		}
	}
}

func TestRunParallelEmpty(t *testing.T) {
	if err := runParallel(4, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := (Options{Parallel: 1}).workers(); got != 1 {
		t.Errorf("Parallel=1 resolved to %d workers", got)
	}
	if got := (Options{Parallel: 6}).workers(); got != 6 {
		t.Errorf("Parallel=6 resolved to %d workers", got)
	}
	if got := (Options{}).workers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Parallel=0 resolved to %d workers, want GOMAXPROCS=%d", got, runtime.GOMAXPROCS(0))
	}
}

func TestValidateRejectsNegativeParallel(t *testing.T) {
	o := Default()
	o.Parallel = -1
	if err := o.Validate(); err == nil {
		t.Error("Parallel=-1 validated")
	}
}

// TestMemoSingleflight pins the cache contract the pool depends on: one
// execution per key under concurrency, errors propagated to every waiter
// but never cached.
func TestMemoSingleflight(t *testing.T) {
	var c memo[int, int]
	var calls atomic.Int32
	tasks := make([]func() error, 50)
	for i := range tasks {
		tasks[i] = func() error {
			v, err := c.do(7, func() (int, error) {
				calls.Add(1)
				return 42, nil
			})
			if err != nil || v != 42 {
				return fmt.Errorf("do = %d, %v", v, err)
			}
			return nil
		}
	}
	if err := runParallel(8, tasks); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("function ran %d times for one key, want 1", got)
	}
}

func TestMemoErrorNotCached(t *testing.T) {
	var c memo[string, int]
	boom := errors.New("boom")
	fail := true
	fn := func() (int, error) {
		if fail {
			return 0, boom
		}
		return 9, nil
	}
	if _, err := c.do("k", fn); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want boom", err)
	}
	fail = false
	v, err := c.do("k", fn)
	if err != nil || v != 9 {
		t.Fatalf("retry after failure = %d, %v; want 9, nil (errors must not stick)", v, err)
	}
}
