package experiments

import (
	"fmt"
	"io"

	"preemptsched/internal/metrics"
)

// RunAll executes every experiment and writes the rendered tables to w.
// It is the engine behind cmd/experiments and the source of
// EXPERIMENTS.md's measured columns.
func RunAll(o Options, w io.Writer) error {
	if err := o.Validate(); err != nil {
		return err
	}
	// Fan the whole shared-run matrix across the pool up front; the
	// sequential rendering below then assembles tables from the memo
	// cache in canonical order, so the report is byte-identical at every
	// parallelism level (warm errors are dropped — failed runs are not
	// cached, and the rendering pass re-encounters the same deterministic
	// error under its canonical figure label).
	warmAll(o)
	emit := func(tb *metrics.Table, err error) error {
		if err != nil {
			return err
		}
		_, werr := fmt.Fprintln(w, tb.String())
		return werr
	}

	fmt.Fprintln(w, "# Section 2 — Google-trace analysis (calibrated synthetic trace)")
	if err := emit(Fig1a(o)); err != nil {
		return fmt.Errorf("fig1a: %w", err)
	}
	if err := emit(Fig1b(o)); err != nil {
		return fmt.Errorf("fig1b: %w", err)
	}
	if err := emit(Fig1c(o)); err != nil {
		return fmt.Errorf("fig1c: %w", err)
	}
	if err := emit(Table1(o)); err != nil {
		return fmt.Errorf("table1: %w", err)
	}
	if err := emit(Table2(o)); err != nil {
		return fmt.Errorf("table2: %w", err)
	}

	fmt.Fprintln(w, "# Section 3.3.1 — Checkpoint microbenchmarks")
	if err := emit(Fig2a(o)); err != nil {
		return fmt.Errorf("fig2a: %w", err)
	}
	if err := emit(Fig2b(o)); err != nil {
		return fmt.Errorf("fig2b: %w", err)
	}

	fmt.Fprintln(w, "# Section 3.3.2 — Trace-driven simulation")
	if err := emit(Fig3a(o)); err != nil {
		return fmt.Errorf("fig3a: %w", err)
	}
	if err := emit(Fig3b(o)); err != nil {
		return fmt.Errorf("fig3b: %w", err)
	}
	if err := emit(Fig3c(o)); err != nil {
		return fmt.Errorf("fig3c: %w", err)
	}

	fmt.Fprintln(w, "# Section 3.3.3 / 4.2.2 — Sensitivity analysis")
	h4, l4, e4, err := Fig4(o)
	if err != nil {
		return fmt.Errorf("fig4: %w", err)
	}
	for _, tb := range []*metrics.Table{h4, l4, e4} {
		fmt.Fprintln(w, tb.String())
	}
	h6, l6, e6, err := Fig6(o)
	if err != nil {
		return fmt.Errorf("fig6: %w", err)
	}
	for _, tb := range []*metrics.Table{h6, l6, e6} {
		fmt.Fprintln(w, tb.String())
	}

	fmt.Fprintln(w, "# Section 4 — Adaptive policies")
	if err := emit(Table3(o)); err != nil {
		return fmt.Errorf("table3: %w", err)
	}
	if err := emit(Fig5(o)); err != nil {
		return fmt.Errorf("fig5: %w", err)
	}

	fmt.Fprintln(w, "# Section 5.3 — Framework experiments")
	if err := emit(Fig8a(o)); err != nil {
		return fmt.Errorf("fig8a: %w", err)
	}
	if err := emit(Fig8b(o)); err != nil {
		return fmt.Errorf("fig8b: %w", err)
	}
	if err := emit(Fig8c(o)); err != nil {
		return fmt.Errorf("fig8c: %w", err)
	}
	if err := emit(Fig9(o)); err != nil {
		return fmt.Errorf("fig9: %w", err)
	}
	if err := emit(Fig10(o)); err != nil {
		return fmt.Errorf("fig10: %w", err)
	}
	f11, err := Fig11(o)
	if err != nil {
		return fmt.Errorf("fig11: %w", err)
	}
	for _, tb := range f11 {
		fmt.Fprintln(w, tb.String())
	}
	cpuT, ioT, err := Fig12(o)
	if err != nil {
		return fmt.Errorf("fig12: %w", err)
	}
	fmt.Fprintln(w, cpuT.String())
	fmt.Fprintln(w, ioT.String())

	fmt.Fprintln(w, "# Extensions (no paper counterpart; DESIGN.md §6)")
	if err := emit(ExtDisciplines(o)); err != nil {
		return fmt.Errorf("ext disciplines: %w", err)
	}
	if err := emit(ExtPreCopy(o)); err != nil {
		return fmt.Errorf("ext precopy: %w", err)
	}
	if err := emit(ExtNVRAM(o)); err != nil {
		return fmt.Errorf("ext nvram: %w", err)
	}
	if err := emit(ExtEvictionThreshold(o)); err != nil {
		return fmt.Errorf("ext eviction threshold: %w", err)
	}
	if err := emit(ExtNodeChurn(o)); err != nil {
		return fmt.Errorf("ext node churn: %w", err)
	}

	fmt.Fprintln(w, "# Raw summaries")
	if err := emit(SimSummary(o)); err != nil {
		return fmt.Errorf("sim summary: %w", err)
	}
	if err := emit(YarnSummary(o)); err != nil {
		return fmt.Errorf("yarn summary: %w", err)
	}
	return nil
}
