package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

// The evaluation is a matrix of independent runs — (figure, policy,
// storage kind, scale) tuples that share nothing but the memoization
// layer. runParallel is the bounded worker pool that fans them out.
// Determinism is preserved by construction: workers claim task indices
// from an atomic counter (so scheduling order is arbitrary), but every
// task writes only its own result slot and all rendering happens
// sequentially in canonical index order afterwards. The only
// schedule-dependent quantity is wall time.

// runParallel executes tasks on up to workers goroutines. It returns the
// error of the lowest-indexed failing task, so the reported failure is
// the same one a sequential pass would have hit first, regardless of how
// the goroutines interleave. All tasks run to completion even when some
// fail — partial fan-outs would leave the memo cache warm for an
// unpredictable prefix, and cheap tasks are cheaper than schedule-shaped
// state.
func runParallel(workers int, tasks []func() error) error {
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		var first error
		for _, task := range tasks {
			if err := task(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				errs[i] = tasks[i]()
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workers resolves Options.Parallel: 0 means one worker per available
// CPU, 1 disables the pool, larger values cap the fan-out explicitly.
func (o Options) workers() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// policyKind names one underlying run of the shared matrix.
type policyKind struct {
	policy core.Policy
	kind   storage.Kind
}

// paperMatrix is the (policy, storage) set behind Figures 3/5 and 8-12:
// the kill baseline plus basic and adaptive checkpointing on each medium.
func paperMatrix() []policyKind {
	pairs := []policyKind{{core.PolicyKill, storage.SSD}}
	for _, kind := range storageKinds {
		pairs = append(pairs,
			policyKind{core.PolicyCheckpoint, kind},
			policyKind{core.PolicyAdaptive, kind})
	}
	return pairs
}

// killChkPairs is the kill-vs-basic-checkpointing subset (Fig. 3, 8, 9).
func killChkPairs() []policyKind {
	pairs := []policyKind{{core.PolicyKill, storage.SSD}}
	for _, kind := range storageKinds {
		pairs = append(pairs, policyKind{core.PolicyCheckpoint, kind})
	}
	return pairs
}

// basicAdaptivePairs is the basic-vs-adaptive subset (Fig. 5, 10, 12).
func basicAdaptivePairs() []policyKind {
	var pairs []policyKind
	for _, kind := range storageKinds {
		pairs = append(pairs,
			policyKind{core.PolicyCheckpoint, kind},
			policyKind{core.PolicyAdaptive, kind})
	}
	return pairs
}

// warmSim executes the given simulator runs through the pool so the
// sequential table assembly that follows hits the memo cache. Errors are
// deliberately dropped here: failed runs are not cached, so the
// sequential pass re-encounters the same deterministic error and reports
// it with its canonical figure label.
func warmSim(o Options, pairs []policyKind) {
	tasks := make([]func() error, len(pairs))
	for i, pk := range pairs {
		pk := pk
		tasks[i] = func() error {
			_, err := simRun(o, pk.policy, pk.kind)
			return err
		}
	}
	_ = runParallel(o.workers(), tasks)
}

// warmYarn is warmSim for the mini-YARN framework runs.
func warmYarn(o Options, pairs []policyKind) {
	tasks := make([]func() error, len(pairs))
	for i, pk := range pairs {
		pk := pk
		tasks[i] = func() error {
			_, err := yarnRun(o, pk.policy, pk.kind)
			return err
		}
	}
	_ = runParallel(o.workers(), tasks)
}

// warmAll fans the entire shared-run matrix — the Section 2 trace
// analysis plus every simulator and framework run the figures reuse —
// across one pool so RunAll's sequential rendering phase only ever reads
// the memo cache. One flat task list (rather than warmSim then warmYarn)
// keeps every worker busy until the global tail: the slowest run overlaps
// cheap ones instead of gating a phase barrier.
func warmAll(o Options) {
	var tasks []func() error
	tasks = append(tasks, func() error {
		_, err := o.traceAnalysis()
		return err
	})
	for _, pk := range paperMatrix() {
		pk := pk
		tasks = append(tasks, func() error {
			_, err := simRun(o, pk.policy, pk.kind)
			return err
		})
	}
	for _, pk := range paperMatrix() {
		pk := pk
		tasks = append(tasks, func() error {
			_, err := yarnRun(o, pk.policy, pk.kind)
			return err
		})
	}
	_ = runParallel(o.workers(), tasks)
}
