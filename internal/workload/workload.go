// Package workload builds the job mixes of the paper's framework
// experiments: the Facebook-derived mix of Section 5.3 (40 jobs totalling
// ~7,000 tasks, split into low- and high-priority classes, each task a
// k-means run with a ~1.8 GB footprint) and the two-job sensitivity
// scenario of Sections 3.3.3/4.2.2.
package workload

import (
	"fmt"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
)

// FacebookConfig parameterizes the derived workload. Zero values take the
// paper's numbers.
type FacebookConfig struct {
	Seed int64
	// Jobs is the job count (paper: 40).
	Jobs int
	// TotalTasks approximates the task total (paper: ~7,000); per-job task
	// counts follow the heavy-tailed small-jobs-dominate shape of the
	// Facebook trace, where a few large jobs hold most tasks.
	TotalTasks int
	// TaskDuration is the mean compute time of background (low-priority)
	// tasks. Production-burst tasks are latency-sensitive and run a
	// quarter of it.
	TaskDuration time.Duration
	// TaskFootprint is each task's checkpointable memory (paper: ~1.8 GB).
	TaskFootprint int64
	// Span is the submission window.
	Span time.Duration
	// HighPriorityShare is the fraction of total work (tasks) carried by
	// high-priority production bursts.
	HighPriorityShare float64
}

// DefaultFacebookConfig returns the paper's Section 5.3 shape.
func DefaultFacebookConfig() FacebookConfig {
	return FacebookConfig{
		Seed:              21,
		Jobs:              40,
		TotalTasks:        7000,
		TaskDuration:      3 * time.Minute,
		TaskFootprint:     int64(1.8 * float64(cluster.GiB(1))),
		Span:              30 * time.Minute,
		HighPriorityShare: 0.3,
	}
}

// Validate checks the configuration.
func (c FacebookConfig) Validate() error {
	if c.Jobs <= 0 || c.TotalTasks < c.Jobs {
		return fmt.Errorf("workload: need Jobs>0 and TotalTasks>=Jobs, got %d/%d", c.Jobs, c.TotalTasks)
	}
	if c.TaskDuration <= 0 || c.Span <= 0 {
		return fmt.Errorf("workload: non-positive duration or span")
	}
	if c.TaskFootprint <= 0 {
		return fmt.Errorf("workload: non-positive footprint")
	}
	if c.HighPriorityShare < 0 || c.HighPriorityShare > 1 {
		return fmt.Errorf("workload: HighPriorityShare=%v outside [0,1]", c.HighPriorityShare)
	}
	return nil
}

// Facebook generates the derived job mix, reproducing the dynamics the
// paper cites from Facebook's cluster: a standing backlog of low-priority
// jobs (Zipf-distributed sizes — a few jobs hold most tasks) punctuated by
// periodic high-priority production bursts, after the observation that "a
// large production job would arrive every 500 seconds and kill all low
// priority map tasks". The bursts carry HighPriorityShare of the total
// work, split evenly across Jobs/4 bursts spread over the span.
func Facebook(cfg FacebookConfig) ([]cluster.JobSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)

	numHigh := cfg.Jobs / 3
	if numHigh < 1 {
		numHigh = 1
	}
	numLow := cfg.Jobs - numHigh
	highTasks := int(cfg.HighPriorityShare * float64(cfg.TotalTasks))
	if highTasks < numHigh {
		highTasks = numHigh
	}
	lowTasks := cfg.TotalTasks - highTasks
	if numLow > 0 && lowTasks < numLow {
		lowTasks = numLow
	}

	counts := make([]int, cfg.Jobs)
	// Bursts split the production work evenly.
	for k := 0; k < numHigh; k++ {
		counts[k] = highTasks / numHigh
		if k < highTasks%numHigh {
			counts[k]++
		}
	}
	// Low-priority jobs follow a Zipf split of the background work.
	if numLow > 0 {
		var sum float64
		weights := make([]float64, numLow)
		for k := range weights {
			weights[k] = 1 / float64(k+1)
			sum += weights[k]
		}
		assigned := 0
		for k := range weights {
			counts[numHigh+k] = 1 + int(float64(lowTasks)*weights[k]/sum)
			assigned += counts[numHigh+k]
		}
		if assigned < lowTasks {
			counts[numHigh] += lowTasks - assigned
		}
	}

	burstGap := cfg.Span / time.Duration(numHigh)
	jobs := make([]cluster.JobSpec, 0, cfg.Jobs)
	for k := 0; k < cfg.Jobs; k++ {
		var (
			prio   cluster.Priority
			submit time.Duration
		)
		if k < numHigh {
			prio = 10
			submit = burstGap/2 + time.Duration(k)*burstGap
		} else {
			prio = 0
			submit = time.Duration(rng.Bounded(0, 0.5) * float64(cfg.Span))
		}
		user := "production"
		if prio == 0 {
			user = fmt.Sprintf("tenant-%d", k%5)
		}
		job := cluster.JobSpec{
			ID:       cluster.JobID(k),
			Priority: prio,
			User:     user,
			Submit:   submit,
		}
		base := cfg.TaskDuration
		if prio > 0 {
			base = cfg.TaskDuration / 4
		}
		for i := 0; i < counts[k]; i++ {
			dur := time.Duration(float64(base) * rng.Bounded(0.7, 1.3))
			job.Tasks = append(job.Tasks, cluster.TaskSpec{
				ID:           cluster.TaskID{Job: job.ID, Index: int32(i)},
				Priority:     prio,
				User:         user,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cfg.TaskFootprint,
				Duration:     dur,
				Submit:       submit,
			})
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// SensitivityScenario builds the two-job contention scenario of Section
// 3.3.3: a low-priority job starts at t=0; a high-priority job of the same
// shape arrives at preemptAt. Both need duration of compute and carry
// footprint bytes of state.
func SensitivityScenario(duration, preemptAt time.Duration, footprint int64) []cluster.JobSpec {
	mk := func(id cluster.JobID, prio cluster.Priority, submit time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID:       id,
			Priority: prio,
			Submit:   submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: id},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: footprint + cluster.GiB(1)},
				MemFootprint: footprint,
				Duration:     duration,
				Submit:       submit,
			}},
		}
	}
	return []cluster.JobSpec{mk(0, 0, 0), mk(1, 10, preemptAt)}
}
