package workload

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
)

func TestFacebookDefaults(t *testing.T) {
	jobs, err := Facebook(DefaultFacebookConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 40 {
		t.Fatalf("jobs = %d, want 40", len(jobs))
	}
	tasks, highJobs, highTasks := 0, 0, 0
	for i := range jobs {
		if err := jobs[i].Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		tasks += len(jobs[i].Tasks)
		if jobs[i].Priority == 10 {
			highJobs++
			highTasks += len(jobs[i].Tasks)
		}
	}
	if tasks < 7000 || tasks > 7100 {
		t.Errorf("tasks = %d, want ~7000", tasks)
	}
	// Jobs/3 periodic production bursts carrying ~HighPriorityShare of the
	// work.
	if highJobs != 13 {
		t.Errorf("high-priority jobs = %d, want 13", highJobs)
	}
	if share := float64(highTasks) / float64(tasks); share < 0.25 || share > 0.35 {
		t.Errorf("high-priority work share = %.2f, want ~0.3", share)
	}
	// Bursts are periodic: evenly spaced submits.
	gap := jobs[1].Submit - jobs[0].Submit
	for k := 2; k < highJobs; k++ {
		if jobs[k].Submit-jobs[k-1].Submit != gap {
			t.Errorf("burst %d not periodic", k)
		}
	}
	// Zipf shape among the low-priority background: the largest low job
	// dominates the smallest.
	if len(jobs[13].Tasks) < 5*len(jobs[39].Tasks) {
		t.Errorf("low-priority sizes not heavy-tailed: first=%d last=%d", len(jobs[13].Tasks), len(jobs[39].Tasks))
	}
	// Production tasks are latency-sensitive: far shorter than background.
	if jobs[0].Tasks[0].Duration >= jobs[13].Tasks[0].Duration {
		t.Error("burst tasks should be shorter than background tasks")
	}
	// Footprint matches the paper's ~1.8 GB k-means tasks.
	if f := jobs[0].Tasks[0].MemFootprint; f != int64(1.8*float64(cluster.GiB(1))) {
		t.Errorf("footprint = %d", f)
	}
}

func TestFacebookDeterministic(t *testing.T) {
	a, _ := Facebook(DefaultFacebookConfig())
	b, _ := Facebook(DefaultFacebookConfig())
	for i := range a {
		if a[i].Priority != b[i].Priority || a[i].Submit != b[i].Submit || len(a[i].Tasks) != len(b[i].Tasks) {
			t.Fatalf("job %d differs between runs", i)
		}
	}
}

func TestFacebookValidation(t *testing.T) {
	bad := []FacebookConfig{
		{Jobs: 0, TotalTasks: 10, TaskDuration: time.Minute, TaskFootprint: 1, Span: time.Minute},
		{Jobs: 10, TotalTasks: 5, TaskDuration: time.Minute, TaskFootprint: 1, Span: time.Minute},
		{Jobs: 2, TotalTasks: 10, TaskDuration: 0, TaskFootprint: 1, Span: time.Minute},
		{Jobs: 2, TotalTasks: 10, TaskDuration: time.Minute, TaskFootprint: 0, Span: time.Minute},
		{Jobs: 2, TotalTasks: 10, TaskDuration: time.Minute, TaskFootprint: 1, Span: 0},
		{Jobs: 2, TotalTasks: 10, TaskDuration: time.Minute, TaskFootprint: 1, Span: time.Minute, HighPriorityShare: 1.5},
	}
	for i, cfg := range bad {
		if _, err := Facebook(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestSensitivityScenario(t *testing.T) {
	jobs := SensitivityScenario(time.Minute, 30*time.Second, cluster.GiB(5))
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	low, high := jobs[0], jobs[1]
	if low.Priority >= high.Priority {
		t.Error("first job should be low priority")
	}
	if low.Submit != 0 || high.Submit != 30*time.Second {
		t.Errorf("submits: %v / %v", low.Submit, high.Submit)
	}
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			t.Errorf("job %d invalid: %v", j.ID, err)
		}
		if j.Tasks[0].MemFootprint != cluster.GiB(5) {
			t.Errorf("footprint = %d", j.Tasks[0].MemFootprint)
		}
		if j.Tasks[0].Duration != time.Minute {
			t.Errorf("duration = %v", j.Tasks[0].Duration)
		}
	}
}
