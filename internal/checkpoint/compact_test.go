package checkpoint

import (
	"testing"

	"preemptsched/internal/storage"
)

func TestCompactChain(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()

	ref := newFillProc(t, 24, 80, 2)
	want := runToCompletion(t, ref)

	// Build a 4-link chain.
	p := newFillProc(t, 24, 80, 2)
	var last string
	for i := 0; i < 4; i++ {
		stepN(t, p, 6)
		p.Suspend()
		name := chainName(i)
		opts := DumpOpts{}
		if i > 0 {
			opts = DumpOpts{Incremental: true, Parent: last}
		}
		if _, err := e.Dump(p, store, name, opts); err != nil {
			t.Fatal(err)
		}
		last = name
		p.ResumeInPlace()
	}

	info, err := Compact(store, last, "cc/flat")
	if err != nil {
		t.Fatal(err)
	}
	if info.DumpedPages != 24 {
		t.Errorf("compact pages = %d, want full 24", info.DumpedPages)
	}
	if info.Steps != 24 {
		t.Errorf("compact steps = %d, want 24", info.Steps)
	}
	// A restore from the compact image must be a single-link chain
	// producing the identical continuation.
	chain, err := Chain(store, "cc/flat")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 {
		t.Errorf("compact chain length = %d", len(chain))
	}
	restored, _, err := e.Restore(store, "cc/flat")
	if err != nil {
		t.Fatal(err)
	}
	if got := runToCompletion(t, restored); got != want {
		t.Errorf("compact restore checksum %x != uninterrupted %x", got, want)
	}
	// The old chain is untouched and still restorable.
	if _, _, err := e.Restore(store, last); err != nil {
		t.Errorf("source chain broken by compaction: %v", err)
	}
}

func chainName(i int) string {
	return string(rune('a'+i)) + "/img"
}

func TestCompactMissingChain(t *testing.T) {
	store := storage.NewMemStore()
	if _, err := Compact(store, "absent", "dst"); err == nil {
		t.Error("compact of missing chain succeeded")
	}
}

func TestCompactEquivalentToTipForFullImage(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 10, 1)
	stepN(t, p, 3)
	p.Suspend()
	if _, err := e.Dump(p, store, "one", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	info, err := Compact(store, "one", "one/flat")
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps != 3 || info.DumpedPages != 8 {
		t.Errorf("compact of single full image: %+v", info)
	}
}
