package checkpoint

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"preemptsched/internal/proc"
	"preemptsched/internal/storage"
)

// validImageBytes produces one real dumped image for the fuzz seed corpus.
// It takes the Fatal-only interface so both *testing.T and *testing.F work.
func validImageBytes(t interface{ Fatal(...any) }) []byte {
	reg := proc.NewRegistry()
	reg.Register(proc.FillProgramName, func() proc.Program { return proc.FillProgram{} })
	e := NewEngine(reg)
	store := storage.NewMemStore()
	p, err := proc.New("fuzz-seed", proc.FillProgram{}, 4*proc.PageSize, 4*proc.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	proc.ConfigureFill(p, 10, 1)
	for i := 0; i < 3; i++ {
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dump(p, store, "seed", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	r, err := store.Open("seed")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// FuzzReadImage throws arbitrary bytes at the image decoder. The contract
// under test: readImage never panics, never over-allocates on nonsense
// length fields, and either returns a decoded image or an error — and on
// success the header invariants hold.
func FuzzReadImage(f *testing.F) {
	seed := validImageBytes(f)
	f.Add(seed)                                // a fully valid image
	f.Add(seed[:len(seed)-1])                  // CRC trailer cut short
	f.Add(seed[:len(seed)/2])                  // truncated mid-pages
	f.Add(seed[:20])                           // truncated mid-header
	f.Add([]byte{})                            // empty object
	f.Add([]byte("CRGO"))                      // magic only
	f.Add([]byte("not an image at all, ever")) // wrong magic

	flipped := append([]byte(nil), seed...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped) // bit rot in the page data

	// A header declaring absurd page geometry: the sanity bounds must
	// reject it before any allocation happens.
	var absurd bytes.Buffer
	absurd.Write(Magic[:])
	binary.Write(&absurd, binary.BigEndian, Version)
	binary.Write(&absurd, binary.BigEndian, uint16(0))  // flags
	for i := 0; i < 3; i++ {                            // three empty strings
		binary.Write(&absurd, binary.BigEndian, uint16(0))
	}
	binary.Write(&absurd, binary.BigEndian, uint64(0))      // PC
	absurd.Write(make([]byte, 16*8))                        // Regs
	binary.Write(&absurd, binary.BigEndian, uint64(0))      // Steps
	binary.Write(&absurd, binary.BigEndian, int64(-5))      // LogicalBytes < 0
	binary.Write(&absurd, binary.BigEndian, ^uint32(0))     // RealPages huge
	binary.Write(&absurd, binary.BigEndian, ^uint32(0))     // PageSize huge
	binary.Write(&absurd, binary.BigEndian, ^uint32(0))     // DumpedPages huge
	f.Add(absurd.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		store := storage.NewMemStore()
		w, err := store.Create("img")
		if err != nil {
			t.Fatal(err)
		}
		w.Write(data)
		w.Close()
		h, pages, err := readImage(store, "img")
		if err != nil {
			if h != nil || pages != nil {
				t.Error("readImage returned data alongside an error")
			}
			return
		}
		if h.PageSize == 0 || h.PageSize > maxSanePageSize {
			t.Errorf("accepted nonsense page size %d", h.PageSize)
		}
		if h.RealPages > maxSanePages {
			t.Errorf("accepted nonsense page count %d", h.RealPages)
		}
		if h.LogicalBytes < 0 {
			t.Errorf("accepted negative logical size %d", h.LogicalBytes)
		}
		if uint32(len(pages)) > h.DumpedPages {
			t.Errorf("decoded %d pages, header declared %d", len(pages), h.DumpedPages)
		}
		for idx, pg := range pages {
			if idx < 0 || uint32(idx) >= h.RealPages {
				t.Errorf("page index %d outside address space of %d pages", idx, h.RealPages)
			}
			if uint32(len(pg)) != h.PageSize {
				t.Errorf("page %d has %d bytes, want %d", idx, len(pg), h.PageSize)
			}
		}
	})
}

// TestFuzzSeedsBehave pins the expected classification of each seed so the
// corpus stays meaningful even when fuzzing is not running: the valid seed
// decodes, every damaged variant errors with ErrCorrupt identity.
func TestFuzzSeedsBehave(t *testing.T) {
	seed := validImageBytes(t)
	put := func(data []byte) storage.Store {
		store := storage.NewMemStore()
		w, _ := store.Create("img")
		w.Write(data)
		w.Close()
		return store
	}
	if _, _, err := readImage(put(seed), "img"); err != nil {
		t.Fatalf("valid seed rejected: %v", err)
	}
	damaged := map[string][]byte{
		"truncated-crc":    seed[:len(seed)-1],
		"truncated-pages":  seed[:len(seed)/2],
		"truncated-header": seed[:20],
		"empty":            {},
		"magic-only":       []byte("CRGO"),
		"wrong-magic":      []byte("not an image at all, ever"),
	}
	for name, data := range damaged {
		if _, _, err := readImage(put(data), "img"); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
