// Package checkpoint implements the application-transparent
// checkpoint/restore engine — the repository's CRIU analogue.
//
// Dump freezes a virtual process and serializes its identity, register
// file, and memory pages into a self-describing binary image written to
// any storage.Store (node-local memory store or the distributed file
// system, which is what enables remote restore exactly as the paper's
// CRIU+HDFS extension does). Incremental dumps write only pages whose
// soft-dirty bit is set and record a parent link; Restore replays the
// parent chain and overlays dirty pages, then re-instantiates the
// program from a registry and rebuilds a runnable process.
//
// Every image carries a CRC32 so that corrupted or truncated images are
// detected at restore time rather than silently resuming wrong state.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Magic identifies checkpoint images ("CRGO" = checkpoint/restore in Go).
var Magic = [4]byte{'C', 'R', 'G', 'O'}

// Version is the image format version.
const Version uint16 = 1

const flagIncremental uint16 = 1 << 0

// maxSaneStringLen bounds decoded string fields to keep a corrupted length
// prefix from driving huge allocations.
const maxSaneStringLen = 1 << 16

// maxSanePageSize bounds the page-size field: a corrupted header must not
// be able to drive a multi-gigabyte page allocation. Real images use
// proc.PageSize, far below this.
const maxSanePageSize = 1 << 20

// maxSanePages bounds the page-count fields the same way (2^22 pages of
// 4 KiB is already a 16 GiB address space, far beyond any virtual
// process here).
const maxSanePages = 1 << 22

// ErrCorrupt is wrapped by all integrity failures (bad magic, CRC mismatch,
// truncated stream, nonsense lengths).
var ErrCorrupt = errors.New("checkpoint: corrupt image")

// Header is the metadata section of an image.
type Header struct {
	ProcID      string
	ProgramName string
	// Parent is the name of the image this incremental dump builds on;
	// empty for full dumps.
	Parent      string
	Incremental bool
	PC          uint64
	Regs        [16]uint64
	Steps       uint64
	// LogicalBytes is the declared process footprint.
	LogicalBytes int64
	// RealPages is the total page count of the address space.
	RealPages uint32
	// PageSize is the page granularity the image was taken at.
	PageSize uint32
	// DumpedPages is the number of page records following the header.
	DumpedPages uint32
}

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func writeString(w io.Writer, s string) error {
	if len(s) > maxSaneStringLen {
		return fmt.Errorf("checkpoint: string field of %d bytes too long", len(s))
	}
	if err := binary.Write(w, binary.BigEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := w.Write([]byte(s))
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.BigEndian, &n); err != nil {
		return "", fmt.Errorf("%w: truncated string length: %v", ErrCorrupt, err)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("%w: truncated string field: %v", ErrCorrupt, err)
	}
	return string(buf), nil
}

func encodeHeader(w io.Writer, h *Header) error {
	if _, err := w.Write(Magic[:]); err != nil {
		return err
	}
	flags := uint16(0)
	if h.Incremental {
		flags |= flagIncremental
	}
	for _, v := range []any{Version, flags} {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	for _, s := range []string{h.ProcID, h.ProgramName, h.Parent} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	fixed := []any{h.PC, h.Regs, h.Steps, h.LogicalBytes, h.RealPages, h.PageSize, h.DumpedPages}
	for _, v := range fixed {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func decodeHeader(r io.Reader) (*Header, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic[:])
	}
	var version, flags uint16
	if err := binary.Read(r, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrCorrupt, err)
	}
	if version != Version {
		return nil, fmt.Errorf("checkpoint: unsupported image version %d", version)
	}
	if err := binary.Read(r, binary.BigEndian, &flags); err != nil {
		return nil, fmt.Errorf("%w: reading flags: %v", ErrCorrupt, err)
	}
	h := &Header{Incremental: flags&flagIncremental != 0}
	var err error
	if h.ProcID, err = readString(r); err != nil {
		return nil, err
	}
	if h.ProgramName, err = readString(r); err != nil {
		return nil, err
	}
	if h.Parent, err = readString(r); err != nil {
		return nil, err
	}
	fixed := []any{&h.PC, &h.Regs, &h.Steps, &h.LogicalBytes, &h.RealPages, &h.PageSize, &h.DumpedPages}
	for _, v := range fixed {
		if err := binary.Read(r, binary.BigEndian, v); err != nil {
			return nil, fmt.Errorf("%w: reading fixed header: %v", ErrCorrupt, err)
		}
	}
	if h.DumpedPages > h.RealPages {
		return nil, fmt.Errorf("%w: %d dumped pages exceed %d real pages", ErrCorrupt, h.DumpedPages, h.RealPages)
	}
	if h.PageSize == 0 || h.PageSize > maxSanePageSize {
		return nil, fmt.Errorf("%w: nonsense page size %d", ErrCorrupt, h.PageSize)
	}
	if h.RealPages > maxSanePages {
		return nil, fmt.Errorf("%w: nonsense page count %d", ErrCorrupt, h.RealPages)
	}
	if h.LogicalBytes < 0 {
		return nil, fmt.Errorf("%w: negative logical size %d", ErrCorrupt, h.LogicalBytes)
	}
	return h, nil
}
