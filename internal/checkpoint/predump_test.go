package checkpoint

import (
	"testing"

	"preemptsched/internal/proc"
	"preemptsched/internal/storage"
)

// TestPreDumpChainTransparency exercises the CRIU pre-copy pattern: a
// pre-dump taken while the process runs, more execution, then a frozen
// delta dump chained on the pre-dump. The restored process must continue
// exactly.
func TestPreDumpChainTransparency(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()

	ref := newFillProc(t, 32, 60, 2)
	want := runToCompletion(t, ref)

	p := newFillProc(t, 32, 60, 2)
	stepN(t, p, 20)

	// Pre-dump while running: full image, dirty bits cleared, process
	// keeps going.
	pre, err := e.PreDump(p, store, "pc/pre", DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if p.State() != proc.Running {
		t.Fatalf("pre-dump changed process state to %v", p.State())
	}
	if pre.DumpedPages != 32 {
		t.Errorf("pre-dump pages = %d, want full 32", pre.DumpedPages)
	}

	// The process keeps executing during the (virtual) write window.
	stepN(t, p, 5)

	// Freeze and dump only the delta.
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	delta, err := e.Dump(p, store, "pc/delta", DumpOpts{Incremental: true, Parent: "pc/pre"})
	if err != nil {
		t.Fatal(err)
	}
	if delta.DumpedPages >= pre.DumpedPages/2 {
		t.Errorf("delta dumped %d pages; expected far fewer than %d", delta.DumpedPages, pre.DumpedPages)
	}

	restored, info, err := e.Restore(store, "pc/delta")
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps != 25 || restored.Steps() != 25 {
		t.Errorf("restored at step %d, want 25", restored.Steps())
	}
	if got := runToCompletion(t, restored); got != want {
		t.Errorf("pre-copy restore checksum %x != uninterrupted %x", got, want)
	}
}

func TestPreDumpRequiresRunning(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 4, 10, 1)
	p.Suspend()
	if _, err := e.PreDump(p, store, "x", DumpOpts{}); err == nil {
		t.Error("pre-dump of suspended process accepted")
	}
	q := newFillProc(t, 4, 10, 1)
	if _, err := e.Dump(q, store, "y", DumpOpts{}); err == nil {
		t.Error("frozen dump of running process accepted")
	}
}

func TestPreDumpIncrementalAgainstExistingChain(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 16, 100, 1)
	stepN(t, p, 4)
	p.Suspend()
	if _, err := e.Dump(p, store, "c/0", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	p.ResumeInPlace()
	stepN(t, p, 3)
	// Pre-dump chained on the existing image.
	pre, err := e.PreDump(p, store, "c/1", DumpOpts{Incremental: true, Parent: "c/0"})
	if err != nil {
		t.Fatal(err)
	}
	if pre.DumpedPages >= 16 {
		t.Errorf("incremental pre-dump wrote %d pages", pre.DumpedPages)
	}
	stepN(t, p, 2)
	p.Suspend()
	if _, err := e.Dump(p, store, "c/2", DumpOpts{Incremental: true, Parent: "c/1"}); err != nil {
		t.Fatal(err)
	}
	restored, _, err := e.Restore(store, "c/2")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 9 {
		t.Errorf("restored steps = %d, want 9", restored.Steps())
	}
}
