package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"preemptsched/internal/obs"
	"preemptsched/internal/proc"
	"preemptsched/internal/storage"
)

// Engine dumps and restores virtual processes. It is stateless apart from
// the program registry used to re-instantiate programs on restore and an
// optional metrics sink.
type Engine struct {
	registry *proc.Registry
	obs      *obs.Registry
}

// NewEngine returns an engine resolving programs from registry.
func NewEngine(registry *proc.Registry) *Engine {
	if registry == nil {
		panic("checkpoint: nil registry")
	}
	return &Engine{registry: registry}
}

// Instrument directs the engine's wall-clock dump/restore metrics
// (checkpoint.dump.seconds, checkpoint.restore.seconds, byte and error
// counters) into reg. A nil reg turns instrumentation off.
func (e *Engine) Instrument(reg *obs.Registry) { e.obs = reg }

// DumpOpts controls a dump.
type DumpOpts struct {
	// Incremental dumps only soft-dirty pages and records Parent as the
	// base image. Parent must name an existing image of the same process.
	Incremental bool
	Parent      string
}

// ImageInfo summarizes a written or inspected image.
type ImageInfo struct {
	Name        string
	ProcID      string
	ProgramName string
	Parent      string
	Incremental bool
	Steps       uint64
	// DumpedPages is the number of page records in this image alone.
	DumpedPages int
	// StoredBytes is the on-store byte size of this image alone.
	StoredBytes int64
	// LogicalBytes is the footprint this image represents for *time*
	// accounting: the full logical footprint for a full dump, or the dirty
	// fraction of it for an incremental dump. This is the "size" term of
	// Algorithm 1 in the paper.
	LogicalBytes int64
	// TotalLogicalBytes is the full logical footprint of the process,
	// i.e. the size term for restoring the whole chain.
	TotalLogicalBytes int64
}

// maxChainDepth bounds incremental parent chains; deeper chains indicate a
// cycle or a corrupted parent pointer.
const maxChainDepth = 1024

// Dump serializes a suspended process into store under name. The process
// must be in the Suspended state (the caller owns the freeze, as the
// cluster scheduler does with SIGSTOP before invoking CRIU). On success
// the soft-dirty bits are cleared so the next incremental dump captures
// only subsequent writes.
func (e *Engine) Dump(p *proc.Process, store storage.Store, name string, opts DumpOpts) (*ImageInfo, error) {
	if p.State() != proc.Suspended {
		return nil, fmt.Errorf("checkpoint: dump of process %q in state %v (must be suspended)", p.ID(), p.State())
	}
	return e.dump(p, store, name, opts)
}

// PreDump serializes a *running* process — CRIU's pre-copy phase: the
// image captures the current pages and clears soft-dirty bits while the
// process keeps executing, so the eventual freeze needs to dump only the
// pages written after this point. The resulting image is a valid chain
// link; the final frozen dump should name it as parent.
func (e *Engine) PreDump(p *proc.Process, store storage.Store, name string, opts DumpOpts) (*ImageInfo, error) {
	if p.State() != proc.Running {
		return nil, fmt.Errorf("checkpoint: pre-dump of process %q in state %v (must be running)", p.ID(), p.State())
	}
	return e.dump(p, store, name, opts)
}

func (e *Engine) dump(p *proc.Process, store storage.Store, name string, opts DumpOpts) (info *ImageInfo, err error) {
	if e.obs != nil {
		begin := time.Now()
		defer func() {
			if err != nil {
				e.obs.Inc("checkpoint.dump.errors")
				return
			}
			e.obs.ObserveDuration("checkpoint.dump.seconds", time.Since(begin))
			if opts.Incremental {
				e.obs.Inc("checkpoint.dumps.incremental")
			} else {
				e.obs.Inc("checkpoint.dumps.full")
			}
			e.obs.Add("checkpoint.dump.bytes", info.StoredBytes)
		}()
	}
	if opts.Incremental && opts.Parent == "" {
		return nil, fmt.Errorf("checkpoint: incremental dump of %q without parent image", p.ID())
	}
	if !opts.Incremental && opts.Parent != "" {
		return nil, fmt.Errorf("checkpoint: full dump of %q must not set parent", p.ID())
	}
	mem := p.Memory()

	var pages []int
	if opts.Incremental {
		pages = mem.DirtyPages()
	} else {
		pages = make([]int, mem.NumPages())
		for i := range pages {
			pages[i] = i
		}
	}

	regs := p.Registers()
	h := &Header{
		ProcID:       p.ID(),
		ProgramName:  p.Program().Name(),
		Parent:       opts.Parent,
		Incremental:  opts.Incremental,
		PC:           regs.PC,
		Regs:         regs.R,
		Steps:        p.Steps(),
		LogicalBytes: mem.LogicalBytes(),
		RealPages:    uint32(mem.NumPages()),
		PageSize:     proc.PageSize,
		DumpedPages:  uint32(len(pages)),
	}

	w, err := store.Create(name)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: create image %q: %w", name, err)
	}
	// A dump that dies mid-write (torn write, lost DataNode) must not
	// leave a half-image squatting on the name: remove it (and any
	// manifest) best-effort so the namespace stays clean and a later dump
	// can reuse the path.
	abort := func(err error) (*ImageInfo, error) {
		_ = store.Remove(name)
		_ = store.Remove(ManifestName(name))
		return nil, err
	}
	// The hash writer sees every byte of the object, including the CRC
	// trailer, so the manifest attests the exact stored representation.
	hw := newHashWriter(w)
	cw := &crcWriter{w: hw}
	if err := encodeHeader(cw, h); err != nil {
		return abort(fmt.Errorf("checkpoint: write header of %q: %w", name, err))
	}
	for _, idx := range pages {
		if err := binary.Write(cw, binary.BigEndian, uint32(idx)); err != nil {
			return abort(fmt.Errorf("checkpoint: write page index of %q: %w", name, err))
		}
		if _, err := cw.Write(mem.Page(idx)); err != nil {
			return abort(fmt.Errorf("checkpoint: write page %d of %q: %w", idx, name, err))
		}
	}
	if err := binary.Write(hw, binary.BigEndian, cw.crc); err != nil {
		return abort(fmt.Errorf("checkpoint: write crc of %q: %w", name, err))
	}
	if err := w.Close(); err != nil {
		return abort(fmt.Errorf("checkpoint: close image %q: %w", name, err))
	}
	if err := writeManifest(store, name, hw.sum(), hw.n); err != nil {
		return abort(fmt.Errorf("checkpoint: write manifest of %q: %w", name, err))
	}

	logical := mem.LogicalBytes()
	if opts.Incremental {
		logical = mem.LogicalDirtyBytes()
	}
	mem.ClearSoftDirty()

	return &ImageInfo{
		Name:              name,
		ProcID:            h.ProcID,
		ProgramName:       h.ProgramName,
		Parent:            h.Parent,
		Incremental:       h.Incremental,
		Steps:             h.Steps,
		DumpedPages:       len(pages),
		StoredBytes:       cw.n + 4,
		LogicalBytes:      logical,
		TotalLogicalBytes: mem.LogicalBytes(),
	}, nil
}

// readImage loads one image, verifying its CRC, and returns its header and
// page records.
func readImage(store storage.Store, name string) (*Header, map[int][]byte, error) {
	r, err := store.Open(name)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: open image %q: %w", name, err)
	}
	defer r.Close()
	cr := &crcReader{r: r}
	h, err := decodeHeader(cr)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: image %q: %w", name, err)
	}
	// Cap the map pre-size: DumpedPages is attacker-controlled in a corrupt
	// image, and a huge hint would allocate buckets before any page is read.
	hint := h.DumpedPages
	if hint > 1024 {
		hint = 1024
	}
	pages := make(map[int][]byte, hint)
	for i := uint32(0); i < h.DumpedPages; i++ {
		var idx uint32
		if err := binary.Read(cr, binary.BigEndian, &idx); err != nil {
			return nil, nil, fmt.Errorf("%w: image %q: truncated page index: %v", ErrCorrupt, name, err)
		}
		if idx >= h.RealPages {
			return nil, nil, fmt.Errorf("%w: image %q: page index %d out of range", ErrCorrupt, name, idx)
		}
		data := make([]byte, h.PageSize)
		if _, err := io.ReadFull(cr, data); err != nil {
			return nil, nil, fmt.Errorf("%w: image %q: truncated page %d: %v", ErrCorrupt, name, idx, err)
		}
		pages[int(idx)] = data
	}
	sum := cr.crc
	var want uint32
	if err := binary.Read(r, binary.BigEndian, &want); err != nil {
		return nil, nil, fmt.Errorf("%w: image %q: missing crc: %v", ErrCorrupt, name, err)
	}
	if sum != want {
		return nil, nil, fmt.Errorf("%w: image %q: crc mismatch (got %08x, want %08x)", ErrCorrupt, name, sum, want)
	}
	return h, pages, nil
}

// ReadInfo inspects an image without restoring it.
func ReadInfo(store storage.Store, name string) (*ImageInfo, error) {
	h, pages, err := readImage(store, name)
	if err != nil {
		return nil, err
	}
	size, err := store.Size(name)
	if err != nil {
		return nil, err
	}
	logical := h.LogicalBytes
	if h.Incremental && h.RealPages > 0 {
		logical = int64(float64(h.DumpedPages) / float64(h.RealPages) * float64(h.LogicalBytes))
	}
	return &ImageInfo{
		Name:              name,
		ProcID:            h.ProcID,
		ProgramName:       h.ProgramName,
		Parent:            h.Parent,
		Incremental:       h.Incremental,
		Steps:             h.Steps,
		DumpedPages:       len(pages),
		StoredBytes:       size,
		LogicalBytes:      logical,
		TotalLogicalBytes: h.LogicalBytes,
	}, nil
}

// Chain returns the image names from the full base dump to name inclusive,
// in application order.
func Chain(store storage.Store, name string) ([]string, error) {
	var rev []string
	cur := name
	for depth := 0; ; depth++ {
		if depth >= maxChainDepth {
			return nil, fmt.Errorf("%w: image chain from %q exceeds depth %d (cycle?)", ErrCorrupt, name, maxChainDepth)
		}
		h, _, err := readImage(store, cur)
		if err != nil {
			return nil, err
		}
		rev = append(rev, cur)
		if h.Parent == "" {
			break
		}
		cur = h.Parent
	}
	// Reverse to base-first order.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// Restore rebuilds a runnable process from the image chain ending at name.
// The returned process is in the Running state with clean soft-dirty bits,
// so a subsequent dump may be incremental against this image.
func (e *Engine) Restore(store storage.Store, name string) (p *proc.Process, info *ImageInfo, err error) {
	if e.obs != nil {
		begin := time.Now()
		defer func() {
			if err != nil {
				e.obs.Inc("checkpoint.restore.errors")
				return
			}
			e.obs.ObserveDuration("checkpoint.restore.seconds", time.Since(begin))
			e.obs.Inc("checkpoint.restores")
		}()
	}
	chain, err := Chain(store, name)
	if err != nil {
		return nil, nil, err
	}
	var (
		mem  *proc.Memory
		tip  *Header
		seen = make(map[int]bool)
	)
	for i, imgName := range chain {
		// Verified restore: the stored bytes must match the manifest the
		// dump published before any of them become process state. Images
		// without manifests (older dumps) still get the CRC check below.
		if verr := VerifyImage(store, imgName); verr != nil && !errors.Is(verr, ErrNoManifest) {
			if e.obs != nil {
				e.obs.Inc("checkpoint.verify.failures")
			}
			return nil, nil, verr
		}
		h, pages, err := readImage(store, imgName)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			if h.Incremental {
				return nil, nil, fmt.Errorf("%w: chain base %q is incremental", ErrCorrupt, imgName)
			}
			if h.PageSize != proc.PageSize {
				return nil, nil, fmt.Errorf("checkpoint: image %q page size %d unsupported", imgName, h.PageSize)
			}
			mem, err = proc.NewMemory(int64(h.RealPages)*proc.PageSize, h.LogicalBytes)
			if err != nil {
				return nil, nil, fmt.Errorf("checkpoint: rebuild memory for %q: %w", imgName, err)
			}
		} else {
			if h.ProcID != tip.ProcID {
				return nil, nil, fmt.Errorf("%w: image %q is for process %q, chain is for %q", ErrCorrupt, imgName, h.ProcID, tip.ProcID)
			}
			if h.RealPages != tip.RealPages {
				return nil, nil, fmt.Errorf("%w: image %q page count %d != base %d", ErrCorrupt, imgName, h.RealPages, tip.RealPages)
			}
		}
		for idx, data := range pages {
			if err := mem.SetPage(idx, data); err != nil {
				return nil, nil, fmt.Errorf("checkpoint: apply page %d of %q: %w", idx, imgName, err)
			}
			seen[idx] = true
		}
		tip = h
	}
	if len(seen) < int(tip.RealPages) {
		// The base dump is always full, so every page must have been seen.
		return nil, nil, fmt.Errorf("%w: restored only %d of %d pages", ErrCorrupt, len(seen), tip.RealPages)
	}
	program, err := e.registry.New(tip.ProgramName)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: restore %q: %w", name, err)
	}
	mem.ClearSoftDirty()
	regs := proc.Registers{PC: tip.PC, R: tip.Regs}
	p = proc.Rebuild(tip.ProcID, program, mem, regs, tip.Steps)
	info, err = ReadInfo(store, name)
	if err != nil {
		return nil, nil, err
	}
	return p, info, nil
}

// Compact merges the incremental chain ending at name into a single full
// image written to dst. Long chains make restores read every link;
// compaction bounds that cost (the analogue of merging CRIU pre-dump
// directories). The source chain is left in place; callers typically
// RemoveChain it after a successful compact.
func Compact(store storage.Store, name, dst string) (*ImageInfo, error) {
	chain, err := Chain(store, name)
	if err != nil {
		return nil, err
	}
	var (
		tip    *Header
		merged map[int][]byte
	)
	for i, imgName := range chain {
		h, pages, err := readImage(store, imgName)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			merged = make(map[int][]byte, h.RealPages)
		}
		for idx, data := range pages {
			merged[idx] = data
		}
		tip = h
	}
	if len(merged) != int(tip.RealPages) {
		return nil, fmt.Errorf("%w: compact covers %d of %d pages", ErrCorrupt, len(merged), tip.RealPages)
	}

	out := &Header{
		ProcID:       tip.ProcID,
		ProgramName:  tip.ProgramName,
		PC:           tip.PC,
		Regs:         tip.Regs,
		Steps:        tip.Steps,
		LogicalBytes: tip.LogicalBytes,
		RealPages:    tip.RealPages,
		PageSize:     tip.PageSize,
		DumpedPages:  tip.RealPages,
	}
	w, err := store.Create(dst)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: create compact image %q: %w", dst, err)
	}
	abort := func(err error) (*ImageInfo, error) {
		_ = store.Remove(dst)
		_ = store.Remove(ManifestName(dst))
		return nil, err
	}
	hw := newHashWriter(w)
	cw := &crcWriter{w: hw}
	if err := encodeHeader(cw, out); err != nil {
		return abort(fmt.Errorf("checkpoint: write compact header: %w", err))
	}
	for idx := 0; idx < int(out.RealPages); idx++ {
		if err := binary.Write(cw, binary.BigEndian, uint32(idx)); err != nil {
			return abort(err)
		}
		if _, err := cw.Write(merged[idx]); err != nil {
			return abort(err)
		}
	}
	if err := binary.Write(hw, binary.BigEndian, cw.crc); err != nil {
		return abort(err)
	}
	if err := w.Close(); err != nil {
		return abort(fmt.Errorf("checkpoint: close compact image %q: %w", dst, err))
	}
	if err := writeManifest(store, dst, hw.sum(), hw.n); err != nil {
		return abort(fmt.Errorf("checkpoint: write manifest of %q: %w", dst, err))
	}
	return &ImageInfo{
		Name:              dst,
		ProcID:            out.ProcID,
		ProgramName:       out.ProgramName,
		Steps:             out.Steps,
		DumpedPages:       int(out.DumpedPages),
		StoredBytes:       cw.n + 4,
		LogicalBytes:      out.LogicalBytes,
		TotalLogicalBytes: out.LogicalBytes,
	}, nil
}

// RemoveChain deletes the image chain ending at name. Garbage collection
// after a task finishes or is killed keeps the storage-overhead accounting
// of Section 5.3.3 honest.
func RemoveChain(store storage.Store, name string) error {
	chain, err := Chain(store, name)
	if err != nil {
		return err
	}
	for _, img := range chain {
		if err := store.Remove(img); err != nil {
			return fmt.Errorf("checkpoint: remove image %q: %w", img, err)
		}
		// Manifests are sidecars; older images may not have one.
		_ = store.Remove(ManifestName(img))
	}
	return nil
}
