package checkpoint

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"preemptsched/internal/proc"
	"preemptsched/internal/storage"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	reg := proc.NewRegistry()
	reg.Register(proc.FillProgramName, func() proc.Program { return proc.FillProgram{} })
	return NewEngine(reg)
}

func newFillProc(t *testing.T, pages int, steps, perStep uint64) *proc.Process {
	t.Helper()
	p, err := proc.New(fmt.Sprintf("task-%d", pages), proc.FillProgram{}, int64(pages)*proc.PageSize, int64(pages)*proc.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	proc.ConfigureFill(p, steps, perStep)
	return p
}

func stepN(t *testing.T, p *proc.Process, n int) bool {
	t.Helper()
	for i := 0; i < n; i++ {
		done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			return true
		}
	}
	return false
}

func runToCompletion(t *testing.T, p *proc.Process) uint64 {
	t.Helper()
	for {
		done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			sum, err := proc.FillChecksum(p)
			if err != nil {
				t.Fatal(err)
			}
			return sum
		}
	}
}

// The headline transparency property: suspend mid-run, dump, restore, run
// to completion — the result is identical to an uninterrupted run.
func TestDumpRestoreTransparency(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()

	ref := newFillProc(t, 16, 40, 3)
	want := runToCompletion(t, ref)

	p := newFillProc(t, 16, 40, 3)
	stepN(t, p, 17)
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	info, err := e.Dump(p, store, "img/full", DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if info.DumpedPages != 16 || info.Incremental {
		t.Errorf("full dump info: %+v", info)
	}
	restored, rinfo, err := e.Restore(store, "img/full")
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Steps != 17 || restored.Steps() != 17 {
		t.Errorf("restored steps = %d/%d, want 17", rinfo.Steps, restored.Steps())
	}
	if got := runToCompletion(t, restored); got != want {
		t.Errorf("restored run checksum %x != uninterrupted %x", got, want)
	}
}

func TestIncrementalChainTransparency(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()

	ref := newFillProc(t, 32, 60, 2)
	want := runToCompletion(t, ref)

	p := newFillProc(t, 32, 60, 2)
	names := []string{"c/0"}
	stepN(t, p, 10)
	p.Suspend()
	if _, err := e.Dump(p, store, "c/0", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	p.ResumeInPlace()

	// Two incremental rounds: run, dump dirty pages only, resume.
	for i := 1; i <= 2; i++ {
		stepN(t, p, 10)
		p.Suspend()
		name := fmt.Sprintf("c/%d", i)
		info, err := e.Dump(p, store, name, DumpOpts{Incremental: true, Parent: names[i-1]})
		if err != nil {
			t.Fatal(err)
		}
		if !info.Incremental {
			t.Fatal("dump not marked incremental")
		}
		if info.DumpedPages >= 32 {
			t.Errorf("incremental dump wrote %d pages, want fewer than full 32", info.DumpedPages)
		}
		names = append(names, name)
		p.ResumeInPlace()
	}

	chain, err := Chain(store, "c/2")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0] != "c/0" || chain[2] != "c/2" {
		t.Errorf("chain = %v", chain)
	}

	restored, _, err := e.Restore(store, "c/2")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Steps() != 30 {
		t.Errorf("restored steps = %d, want 30", restored.Steps())
	}
	if got := runToCompletion(t, restored); got != want {
		t.Errorf("incremental restore checksum %x != uninterrupted %x", got, want)
	}
}

func TestIncrementalDumpIsSmaller(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	// Table 3 scenario: big memory, small fraction modified between dumps.
	p := newFillProc(t, 100, 1000, 1)
	stepN(t, p, 5)
	p.Suspend()
	full, err := e.Dump(p, store, "i/full", DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	p.ResumeInPlace()
	stepN(t, p, 5) // touches ~5 data pages + header
	p.Suspend()
	incr, err := e.Dump(p, store, "i/incr", DumpOpts{Incremental: true, Parent: "i/full"})
	if err != nil {
		t.Fatal(err)
	}
	if incr.StoredBytes*10 > full.StoredBytes {
		t.Errorf("incremental %d bytes not ~10x smaller than full %d", incr.StoredBytes, full.StoredBytes)
	}
	if incr.LogicalBytes >= full.LogicalBytes {
		t.Errorf("incremental logical %d >= full logical %d", incr.LogicalBytes, full.LogicalBytes)
	}
}

func TestDumpValidation(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 4, 10, 1)
	if _, err := e.Dump(p, store, "x", DumpOpts{}); err == nil {
		t.Error("dump of running process accepted")
	}
	p.Suspend()
	if _, err := e.Dump(p, store, "x", DumpOpts{Incremental: true}); err == nil {
		t.Error("incremental dump without parent accepted")
	}
	if _, err := e.Dump(p, store, "x", DumpOpts{Parent: "y"}); err == nil {
		t.Error("full dump with parent accepted")
	}
}

func TestRestoreMissingImage(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	if _, _, err := e.Restore(store, "absent"); err == nil {
		t.Error("restore of missing image succeeded")
	}
}

func TestRestoreUnregisteredProgram(t *testing.T) {
	store := storage.NewMemStore()
	full := newTestEngine(t)
	p := newFillProc(t, 4, 10, 1)
	p.Suspend()
	if _, err := full.Dump(p, store, "img", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	empty := NewEngine(proc.NewRegistry())
	if _, _, err := empty.Restore(store, "img"); err == nil {
		t.Error("restore without registered program succeeded")
	}
}

func corrupt(t *testing.T, store *storage.MemStore, name string, at int) {
	t.Helper()
	r, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		at = len(data) + at
	}
	data[at] ^= 0xFF
	w, _ := store.Create(name)
	w.Write(data)
	w.Close()
}

func TestRestoreDetectsCorruption(t *testing.T) {
	e := newTestEngine(t)
	p := newFillProc(t, 8, 10, 1)
	stepN(t, p, 3)
	p.Suspend()

	tests := []struct {
		name string
		at   int
	}{
		{"flip page byte", 600},
		{"flip header byte", 9},
		{"flip crc", -1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			store := storage.NewMemStore()
			if _, err := e.Dump(p, store, "img", DumpOpts{}); err != nil {
				t.Fatal(err)
			}
			corrupt(t, store, "img", tt.at)
			_, _, err := e.Restore(store, "img")
			if err == nil {
				t.Fatal("corrupted image restored")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("error not ErrCorrupt: %v", err)
			}
			p.Memory().MarkAllDirty() // re-arm for next subtest dump
		})
	}
}

func TestRestoreDetectsTruncation(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 10, 1)
	p.Suspend()
	if _, err := e.Dump(p, store, "img", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	r, _ := store.Open("img")
	data, _ := io.ReadAll(r)
	w, _ := store.Create("img")
	w.Write(data[:len(data)/2])
	w.Close()
	if _, _, err := e.Restore(store, "img"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated image: %v", err)
	}
}

func TestReadInfo(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 10, 1)
	stepN(t, p, 4)
	p.Suspend()
	if _, err := e.Dump(p, store, "img", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	info, err := ReadInfo(store, "img")
	if err != nil {
		t.Fatal(err)
	}
	if info.ProcID != p.ID() || info.ProgramName != proc.FillProgramName {
		t.Errorf("info identity: %+v", info)
	}
	if info.Steps != 4 || info.DumpedPages != 8 {
		t.Errorf("info contents: %+v", info)
	}
	size, _ := store.Size("img")
	if info.StoredBytes != size {
		t.Errorf("StoredBytes = %d, store says %d", info.StoredBytes, size)
	}
}

func TestRemoveChain(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 100, 1)
	stepN(t, p, 2)
	p.Suspend()
	e.Dump(p, store, "r/0", DumpOpts{})
	p.ResumeInPlace()
	stepN(t, p, 2)
	p.Suspend()
	e.Dump(p, store, "r/1", DumpOpts{Incremental: true, Parent: "r/0"})
	if err := RemoveChain(store, "r/1"); err != nil {
		t.Fatal(err)
	}
	names, _ := store.List("")
	if len(names) != 0 {
		t.Errorf("images left after RemoveChain: %v", names)
	}
}

func TestRestoredProcessSupportsIncrementalNext(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 16, 100, 1)
	stepN(t, p, 4)
	p.Suspend()
	e.Dump(p, store, "n/0", DumpOpts{})
	restored, _, err := e.Restore(store, "n/0")
	if err != nil {
		t.Fatal(err)
	}
	// Restore clears soft-dirty, so the next dump after a short run must be
	// small even though the process was just rebuilt from scratch.
	stepN(t, restored, 2)
	restored.Suspend()
	info, err := e.Dump(restored, store, "n/1", DumpOpts{Incremental: true, Parent: "n/0"})
	if err != nil {
		t.Fatal(err)
	}
	if info.DumpedPages > 4 {
		t.Errorf("post-restore incremental dumped %d pages, want <= 4", info.DumpedPages)
	}
	if _, _, err := e.Restore(store, "n/1"); err != nil {
		t.Errorf("restore of post-restore incremental failed: %v", err)
	}
}

func TestChainCycleDetected(t *testing.T) {
	// Hand-craft two images pointing at each other by dumping with forged
	// parents.
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 4, 100, 1)
	p.Suspend()
	e.Dump(p, store, "a", DumpOpts{})
	p.Memory().MarkAllDirty()
	// Forge: write image "b" with parent "c" and "c" with parent "b".
	e.Dump(p, store, "b", DumpOpts{Incremental: true, Parent: "c"})
	p.Memory().MarkAllDirty()
	e.Dump(p, store, "c", DumpOpts{Incremental: true, Parent: "b"})
	if _, err := Chain(store, "b"); !errors.Is(err, ErrCorrupt) {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestLogicalScaling(t *testing.T) {
	// A process declaring 5 GB logical footprint over small real backing:
	// the dump must report 5 GB logical while storing only real bytes.
	reg := proc.NewRegistry()
	reg.Register(proc.FillProgramName, func() proc.Program { return proc.FillProgram{} })
	e := NewEngine(reg)
	store := storage.NewMemStore()
	const logical = int64(5) << 30
	p, err := proc.New("big", proc.FillProgram{}, 64*proc.PageSize, logical)
	if err != nil {
		t.Fatal(err)
	}
	proc.ConfigureFill(p, 100, 1)
	p.Suspend()
	info, err := e.Dump(p, store, "big/0", DumpOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if info.LogicalBytes != logical || info.TotalLogicalBytes != logical {
		t.Errorf("logical bytes = %d, want %d", info.LogicalBytes, logical)
	}
	if info.StoredBytes > 70*proc.PageSize {
		t.Errorf("stored %d bytes, expected ~64 pages", info.StoredBytes)
	}
	restored, rinfo, err := e.Restore(store, "big/0")
	if err != nil {
		t.Fatal(err)
	}
	if restored.Memory().LogicalBytes() != logical {
		t.Error("restored process lost logical footprint")
	}
	if rinfo.TotalLogicalBytes != logical {
		t.Error("restore info lost logical footprint")
	}
}
