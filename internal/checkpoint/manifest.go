package checkpoint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"strconv"
	"strings"

	"preemptsched/internal/storage"
)

// Every image gets a sidecar manifest ("<name>.sum") recording the
// SHA-256 and byte size of the exact object the dump published. Restore
// verifies the stored bytes against the manifest BEFORE reviving a
// process, closing the gap the per-image CRC leaves: a CRC lives inside
// the object it protects, so a store that silently replays an old object
// or truncates past the trailer can still present a self-consistent
// image. The manifest is an independent witness written through a
// separate Create, in the spirit of CRIU's stats/inventory sidecars.

// ManifestSuffix is appended to an image name to form its manifest name.
const ManifestSuffix = ".sum"

// ErrVerifyFailed is wrapped by every manifest-verification failure: the
// stored image bytes do not match what the dump recorded.
var ErrVerifyFailed = errors.New("checkpoint: image failed manifest verification")

// ErrNoManifest denotes an image without a sidecar manifest (e.g. written
// by an older build). Callers decide whether that is acceptable.
var ErrNoManifest = errors.New("checkpoint: image has no manifest")

// ManifestName returns the manifest object name for an image name.
func ManifestName(image string) string { return image + ManifestSuffix }

// IsManifestName reports whether an object name is an image manifest —
// lets image listings skip the sidecars.
func IsManifestName(name string) bool { return strings.HasSuffix(name, ManifestSuffix) }

// hashWriter tees writes into a running SHA-256.
type hashWriter struct {
	w io.Writer
	h hash.Hash
	n int64
}

func newHashWriter(w io.Writer) *hashWriter {
	return &hashWriter{w: w, h: sha256.New()}
}

func (hw *hashWriter) Write(p []byte) (int, error) {
	n, err := hw.w.Write(p)
	hw.h.Write(p[:n])
	hw.n += int64(n)
	return n, err
}

func (hw *hashWriter) sum() string { return hex.EncodeToString(hw.h.Sum(nil)) }

// writeManifest publishes the manifest for an image whose bytes hashed to
// sum256 over size bytes.
func writeManifest(store storage.Store, image, sum256 string, size int64) error {
	w, err := store.Create(ManifestName(image))
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "crgo-sum v1\nsha256=%s\nsize=%d\n", sum256, size); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// readManifest loads and parses an image's manifest.
func readManifest(store storage.Store, image string) (sum256 string, size int64, err error) {
	r, err := store.Open(ManifestName(image))
	if err != nil {
		if errors.Is(err, storage.ErrNotExist) {
			return "", 0, fmt.Errorf("%w: %q", ErrNoManifest, image)
		}
		return "", 0, err
	}
	defer r.Close()
	size = -1
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "sha256="):
			sum256 = strings.TrimPrefix(line, "sha256=")
		case strings.HasPrefix(line, "size="):
			size, err = strconv.ParseInt(strings.TrimPrefix(line, "size="), 10, 64)
			if err != nil {
				return "", 0, fmt.Errorf("%w: image %q: bad manifest size: %v", ErrVerifyFailed, image, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return "", 0, err
	}
	if len(sum256) != sha256.Size*2 || size < 0 {
		return "", 0, fmt.Errorf("%w: image %q: malformed manifest", ErrVerifyFailed, image)
	}
	return sum256, size, nil
}

// VerifyImage checks an image's stored bytes against its manifest:
// nil when the bytes are exactly what the dump published, ErrNoManifest
// when no manifest exists, ErrVerifyFailed (wrapped) on any mismatch.
func VerifyImage(store storage.Store, image string) error {
	wantSum, wantSize, err := readManifest(store, image)
	if err != nil {
		return err
	}
	r, err := store.Open(image)
	if err != nil {
		return fmt.Errorf("%w: image %q: %v", ErrVerifyFailed, image, err)
	}
	defer r.Close()
	h := sha256.New()
	n, err := io.Copy(h, r)
	if err != nil {
		return fmt.Errorf("%w: image %q: reading: %v", ErrVerifyFailed, image, err)
	}
	if n != wantSize {
		return fmt.Errorf("%w: image %q: %d bytes stored, manifest says %d", ErrVerifyFailed, image, n, wantSize)
	}
	if got := hex.EncodeToString(h.Sum(nil)); got != wantSum {
		return fmt.Errorf("%w: image %q: sha256 %s, manifest says %s", ErrVerifyFailed, image, got, wantSum)
	}
	return nil
}

// VerifyChain verifies every image of the chain ending at name. Images
// without manifests pass (legacy dumps); any byte mismatch fails.
func VerifyChain(store storage.Store, name string) error {
	chain, err := Chain(store, name)
	if err != nil {
		return err
	}
	for _, img := range chain {
		if err := VerifyImage(store, img); err != nil && !errors.Is(err, ErrNoManifest) {
			return err
		}
	}
	return nil
}
