package checkpoint

import (
	"errors"
	"io"
	"testing"

	"preemptsched/internal/storage"
)

// mutateObject rewrites one stored object through fn, bypassing the dump
// path — the test's stand-in for silent storage-layer damage.
func mutateObject(t *testing.T, store storage.Store, name string, fn func([]byte) []byte) {
	t.Helper()
	r, err := store.Open(name)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(fn(data)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDumpWritesManifest: every dump publishes a sidecar manifest and the
// freshly written image verifies against it.
func TestDumpWritesManifest(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 20, 2)
	stepN(t, p, 5)
	p.Suspend()
	if _, err := e.Dump(p, store, "img", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Size(ManifestName("img")); err != nil {
		t.Fatalf("no manifest published: %v", err)
	}
	if err := VerifyImage(store, "img"); err != nil {
		t.Fatalf("fresh image fails verification: %v", err)
	}
	if err := VerifyChain(store, "img"); err != nil {
		t.Fatalf("fresh chain fails verification: %v", err)
	}
	if !IsManifestName(ManifestName("img")) || IsManifestName("img") {
		t.Error("IsManifestName misclassifies")
	}
}

// TestVerifyImageCatchesSameLengthSwap: the case the internal CRC cannot
// catch — the stored object is replaced wholesale by different but
// self-consistent bytes of the same length.
func TestVerifyImageCatchesSameLengthSwap(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()

	// Two different dumps of the same process shape.
	p := newFillProc(t, 8, 20, 2)
	stepN(t, p, 3)
	p.Suspend()
	if _, err := e.Dump(p, store, "a", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := p.ResumeInPlace(); err != nil {
		t.Fatal(err)
	}
	stepN(t, p, 3)
	p.Suspend()
	if _, err := e.Dump(p, store, "b", DumpOpts{}); err != nil {
		t.Fatal(err)
	}

	// Replay image b's bytes under image a's name: internally consistent
	// (valid header, valid CRC), so only the manifest can notice.
	r, err := store.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	stolen, _ := io.ReadAll(r)
	r.Close()
	mutateObject(t, store, "a", func([]byte) []byte { return stolen })

	if _, _, err := readImage(store, "a"); err != nil {
		t.Fatalf("replayed object is not self-consistent, test premise broken: %v", err)
	}
	if err := VerifyImage(store, "a"); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("VerifyImage = %v, want ErrVerifyFailed on silent replacement", err)
	}
}

// TestVerifyImageCatchesTruncation: silent truncation (size mismatch) and
// bit rot (hash mismatch) both fail verification.
func TestVerifyImageCatchesTruncation(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 20, 2)
	stepN(t, p, 5)
	p.Suspend()
	if _, err := e.Dump(p, store, "img", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	mutateObject(t, store, "img", func(b []byte) []byte { return b[:len(b)-9] })
	if err := VerifyImage(store, "img"); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("truncated image: VerifyImage = %v, want ErrVerifyFailed", err)
	}
}

// TestRestoreRefusesUnverifiableImage: an image silently replaced by a
// different self-consistent one (valid CRC, so only the manifest can
// notice) must fail Restore with ErrVerifyFailed — the signal the AM's
// degradation ladder keys on. Plain bit rot is caught earlier by the
// in-image CRC as ErrCorrupt; that path is covered elsewhere.
func TestRestoreRefusesUnverifiableImage(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 20, 2)
	stepN(t, p, 3)
	p.Suspend()
	if _, err := e.Dump(p, store, "a", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := p.ResumeInPlace(); err != nil {
		t.Fatal(err)
	}
	stepN(t, p, 3)
	p.Suspend()
	if _, err := e.Dump(p, store, "b", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	r, err := store.Open("b")
	if err != nil {
		t.Fatal(err)
	}
	stolen, _ := io.ReadAll(r)
	r.Close()
	mutateObject(t, store, "a", func([]byte) []byte { return stolen })
	if _, _, err := e.Restore(store, "a"); !errors.Is(err, ErrVerifyFailed) {
		t.Fatalf("Restore of silently replaced image = %v, want ErrVerifyFailed", err)
	}
}

// TestRestoreWithoutManifestStillWorks: images from before the manifest
// era (or whose sidecar was lost) restore on the strength of the internal
// CRC alone.
func TestRestoreWithoutManifestStillWorks(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 20, 2)
	stepN(t, p, 5)
	p.Suspend()
	if _, err := e.Dump(p, store, "img", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := store.Remove(ManifestName("img")); err != nil {
		t.Fatal(err)
	}
	if err := VerifyImage(store, "img"); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("VerifyImage = %v, want ErrNoManifest", err)
	}
	restored, info, err := e.Restore(store, "img")
	if err != nil {
		t.Fatalf("restore without manifest: %v", err)
	}
	if restored == nil || info.Steps != 5 {
		t.Errorf("restored at step %d, want 5", info.Steps)
	}
}

// TestRemoveChainRemovesManifests: deleting a chain leaves no orphan
// sidecars behind.
func TestRemoveChainRemovesManifests(t *testing.T) {
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 8, 20, 2)
	stepN(t, p, 4)
	p.Suspend()
	if _, err := e.Dump(p, store, "base", DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := p.ResumeInPlace(); err != nil {
		t.Fatal(err)
	}
	stepN(t, p, 4)
	p.Suspend()
	if _, err := e.Dump(p, store, "incr", DumpOpts{Incremental: true, Parent: "base"}); err != nil {
		t.Fatal(err)
	}
	if err := RemoveChain(store, "incr"); err != nil {
		t.Fatal(err)
	}
	left, err := store.List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Errorf("chain removal left objects behind: %v", left)
	}
}
