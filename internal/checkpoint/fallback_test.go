package checkpoint

import (
	"errors"
	"testing"

	"preemptsched/internal/faults"
	"preemptsched/internal/storage"
)

// buildChain dumps a base image and two incrementals of one process,
// returning the engine, the store, and the three image names (oldest
// first).
func buildChain(t *testing.T) (*Engine, *storage.MemStore, [3]string) {
	t.Helper()
	e := newTestEngine(t)
	store := storage.NewMemStore()
	p := newFillProc(t, 16, 40, 2)

	names := [3]string{"base", "inc1", "inc2"}
	stepN(t, p, 10)
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dump(p, store, names[0], DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	for i, parent := 1, names[0]; i < 3; i++ {
		if err := p.ResumeInPlace(); err != nil {
			t.Fatal(err)
		}
		stepN(t, p, 10)
		if err := p.Suspend(); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Dump(p, store, names[i], DumpOpts{Incremental: true, Parent: parent}); err != nil {
			t.Fatal(err)
		}
		parent = names[i]
	}
	return e, store, names
}

// TestRestoreWithMissingParent: restoring the tip of a chain whose middle
// image was deleted must fail, while the intact prefix of the chain
// remains restorable — the older-image fallback the AM ladder relies on.
func TestRestoreWithMissingParent(t *testing.T) {
	e, store, names := buildChain(t)
	if err := store.Remove(names[1]); err != nil {
		t.Fatal(err)
	}

	if _, _, err := e.Restore(store, names[2]); err == nil {
		t.Fatal("restore through a missing parent succeeded")
	}
	p, info, err := e.Restore(store, names[0])
	if err != nil {
		t.Fatalf("base image should remain restorable: %v", err)
	}
	if info.Steps != 10 || p.Steps() != 10 {
		t.Fatalf("base restored at step %d/%d, want 10", info.Steps, p.Steps())
	}
}

// TestRestoreWithCorruptParent: a corrupt middle link fails tip restores
// with ErrCorrupt but leaves the older prefix restorable.
func TestRestoreWithCorruptParent(t *testing.T) {
	e, store, names := buildChain(t)
	corrupt(t, store, names[1], 40)

	if _, _, err := e.Restore(store, names[2]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("restore through corrupt parent = %v, want ErrCorrupt", err)
	}
	// The corrupt link itself also fails as a restore target.
	if _, _, err := e.Restore(store, names[1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("restore of corrupt link = %v, want ErrCorrupt", err)
	}
	p, info, err := e.Restore(store, names[0])
	if err != nil {
		t.Fatalf("base image should remain restorable: %v", err)
	}
	if info.Steps != 10 || p.Steps() != 10 {
		t.Fatalf("base restored at step %d/%d, want 10", info.Steps, p.Steps())
	}
}

// TestTornDumpLeavesNoHalfImage: a dump through a tearing store must
// report failure and must not leave a half-written object squatting on
// the image name.
func TestTornDumpLeavesNoHalfImage(t *testing.T) {
	e := newTestEngine(t)
	mem := storage.NewMemStore()
	in := faults.NewInjector(faults.Plan{Seed: 11, TornWriteRate: 1, TornWriteBytes: 32})
	store := faults.WrapStore(mem, in)

	p := newFillProc(t, 16, 30, 2)
	stepN(t, p, 10)
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dump(p, store, "torn", DumpOpts{}); err == nil {
		t.Fatal("dump through a torn writer succeeded")
	}
	if _, err := mem.Size("torn"); !errors.Is(err, storage.ErrNotExist) {
		t.Fatalf("torn image left behind: %v", err)
	}
	// The process itself is unharmed: resume and dump to a clean store.
	if err := p.ResumeInPlace(); err != nil {
		t.Fatal(err)
	}
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Dump(p, mem, "clean", DumpOpts{}); err != nil {
		t.Fatalf("dump after torn attempt: %v", err)
	}
	if _, _, err := e.Restore(mem, "clean"); err != nil {
		t.Fatalf("restore after torn attempt: %v", err)
	}
}
