package sched

import (
	"fmt"
	"testing"
)

// TestFairnessIndexDeterministic guards the sorted reduction from the
// mapiter sweep: per-user means of very different magnitudes summed in
// map-range order would make the reported index vary bit-for-bit
// between calls on the same Result.
func TestFairnessIndexDeterministic(t *testing.T) {
	r := &Result{JobResponseByUser: map[string]*Dist{}}
	vals := []float64{1e16, 1, 1e-8, 3.1415, 2.718e7, 42, 1e12, 7e-3, 9.99e3, 0.125}
	for i, v := range vals {
		d := &Dist{}
		d.Add(v)
		r.JobResponseByUser[fmt.Sprintf("user-%d", i)] = d
	}
	first := r.FairnessIndex()
	if first <= 0 || first > 1 {
		t.Fatalf("FairnessIndex = %v, want a value in (0, 1]", first)
	}
	for i := 0; i < 100; i++ {
		if got := r.FairnessIndex(); got != first {
			t.Fatalf("FairnessIndex unstable on identical input: call %d returned %v, first returned %v", i, got, first)
		}
	}
}
