package sched

import (
	"fmt"
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
	"preemptsched/internal/trace"
)

// userJob builds a single-task job for a tenant.
func userJob(id cluster.JobID, user string, prio cluster.Priority, submit, dur time.Duration, cpuCores float64) cluster.JobSpec {
	return cluster.JobSpec{
		ID: id, Priority: prio, User: user, Submit: submit,
		Tasks: []cluster.TaskSpec{{
			ID:           cluster.TaskID{Job: id},
			Priority:     prio,
			User:         user,
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(cpuCores), MemBytes: cluster.GiB(2)},
			MemFootprint: cluster.GiB(1),
			Duration:     dur,
			Submit:       submit,
		}},
	}
}

func TestFairSharepreemptsOverServedUser(t *testing.T) {
	// User A fills the whole 4-core node with 4 tasks; user B arrives
	// later at the same priority. Priority scheduling would make B wait;
	// fair share must preempt A down toward a 50/50 split.
	var jobs []cluster.JobSpec
	for i := 0; i < 4; i++ {
		jobs = append(jobs, userJob(cluster.JobID(i), "alice", 5, 0, 10*time.Minute, 1))
	}
	jobs = append(jobs, userJob(10, "bob", 5, time.Minute, 2*time.Minute, 1))

	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(4), MemBytes: cluster.GiB(32)}

	// Under priority scheduling nothing is preemptable (equal priority).
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 0 {
		t.Fatalf("priority discipline preempted equals: %d", r.Preemptions)
	}

	cfg.Discipline = DisciplineFairShare
	r, err = Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions == 0 {
		t.Fatal("fair share did not preempt the over-served user")
	}
	if r.TasksCompleted != 5 {
		t.Errorf("completed %d tasks", r.TasksCompleted)
	}
	// Bob's job should finish long before Alice's 10-minute tasks would
	// have drained a priority-run queue (waits ~10min, total ~12min).
	bobResp := r.JobResponseSec[cluster.BandMiddle]
	if bobResp.N() != 5 {
		t.Fatalf("response samples = %d", bobResp.N())
	}
	// Bob's is the fastest-finishing job: ~2 minutes of work plus one
	// checkpoint round trip, far below the 9+ minutes a wait would cost.
	if min := bobResp.Quantile(0); min > 300 {
		t.Errorf("fastest job response %v s; fair share should run bob promptly", min)
	}
}

func TestFairShareDoesNotPreemptUnderServedUser(t *testing.T) {
	// Bob holds one core of four; Alice requests her first task. Bob is
	// not above his equal share, so nothing may be preempted even though
	// alice is below hers; she takes free capacity instead.
	jobs := []cluster.JobSpec{
		userJob(0, "bob", 5, 0, 5*time.Minute, 1),
		userJob(1, "alice", 5, time.Minute, time.Minute, 1),
	}
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(4), MemBytes: cluster.GiB(32)}
	cfg.Discipline = DisciplineFairShare
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 0 {
		t.Errorf("preempted a user within his share: %d", r.Preemptions)
	}
}

func TestCapacityDisciplineReclaimsGuarantee(t *testing.T) {
	// Low-priority batch overruns the cluster; production arrives and is
	// entitled to its guaranteed 20% despite equal... lower priority would
	// also work, but capacity reclaims by band guarantee, not priority.
	var jobs []cluster.JobSpec
	for i := 0; i < 4; i++ {
		jobs = append(jobs, userJob(cluster.JobID(i), "batch", 0, 0, 10*time.Minute, 1))
	}
	jobs = append(jobs, userJob(10, "prod", 10, time.Minute, time.Minute, 1))

	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(4), MemBytes: cluster.GiB(32)}
	cfg.Discipline = DisciplineCapacity
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions == 0 {
		t.Fatal("capacity discipline did not reclaim the production guarantee")
	}
	if r.TasksCompleted != 5 {
		t.Errorf("completed %d tasks", r.TasksCompleted)
	}
}

func TestCapacityDisciplineRespectsGuarantee(t *testing.T) {
	// Batch uses only 25% (its guarantee is 45%): production demanding
	// more than free capacity cannot evict it.
	jobs := []cluster.JobSpec{
		userJob(0, "batch", 0, 0, 5*time.Minute, 1),
		userJob(1, "prod", 10, time.Minute, time.Minute, 4),
	}
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(4), MemBytes: cluster.GiB(32)}
	cfg.Discipline = DisciplineCapacity
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 0 {
		t.Errorf("evicted a band inside its guarantee: %d preemptions", r.Preemptions)
	}
}

func TestEvictionThresholdCapsPreemptions(t *testing.T) {
	// One low job, repeatedly preemptable by a stream of high jobs. With
	// MaxEvictionsPerTask=1 it may be evicted once; later high arrivals
	// must wait instead.
	low := userJob(0, "", 0, 0, 4*time.Minute, 1)
	var jobs []cluster.JobSpec
	jobs = append(jobs, low)
	for i := 1; i <= 4; i++ {
		jobs = append(jobs, userJob(cluster.JobID(i), "", 10, time.Duration(i)*time.Minute, 30*time.Second, 1))
	}
	cfg := DefaultConfig(core.PolicyKill, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}

	uncapped, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if uncapped.Preemptions < 2 {
		t.Fatalf("scenario too mild: %d preemptions uncapped", uncapped.Preemptions)
	}
	cfg.MaxEvictionsPerTask = 1
	capped, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if capped.Preemptions != 1 {
		t.Errorf("capped run preempted %d times, want 1", capped.Preemptions)
	}
	if capped.TasksCompleted != 5 {
		t.Errorf("completed %d tasks", capped.TasksCompleted)
	}
}

func TestDisableIncrementalAblation(t *testing.T) {
	jobs := []cluster.JobSpec{
		userJob(0, "", 0, 0, 5*time.Minute, 1),
		userJob(1, "", 10, time.Minute, 30*time.Second, 1),
		userJob(2, "", 10, 3*time.Minute, 30*time.Second, 1),
	}
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	base, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if base.IncrementalCheckpoints == 0 {
		t.Fatal("baseline produced no incremental checkpoints")
	}
	cfg.DisableIncremental = true
	ablated, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ablated.IncrementalCheckpoints != 0 {
		t.Errorf("ablated run still took %d incremental dumps", ablated.IncrementalCheckpoints)
	}
	if ablated.IOBusyHours <= base.IOBusyHours {
		t.Errorf("full dumps should cost more I/O: %v <= %v", ablated.IOBusyHours, base.IOBusyHours)
	}
}

func TestNaiveVictimSelectionAblation(t *testing.T) {
	jobs, err := trace.GenerateJobs(trace.JobsConfig{Seed: 9, Jobs: 80, MeanTasksPerJob: 4, Span: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(core.PolicyAdaptive, storage.HDD)
	cfg.Nodes = 5
	smart, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NaiveVictimSelection = true
	naive, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if smart.TasksCompleted != naive.TasksCompleted {
		t.Errorf("completion mismatch: %d vs %d", smart.TasksCompleted, naive.TasksCompleted)
	}
	// Both must finish; the ablation exists so benches can quantify the
	// cost difference, so just ensure the flag changes *something* when
	// preemption happened at all.
	if smart.Preemptions == 0 {
		t.Skip("no contention; ablation not exercised")
	}
}

func TestNVRAMLocalRestoreIsFree(t *testing.T) {
	jobs := []cluster.JobSpec{
		userJob(0, "", 0, 0, 5*time.Minute, 1),
		userJob(1, "", 10, time.Minute, 30*time.Second, 1),
	}
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	nvm, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StorageKind = storage.NVRAM
	nvram, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if nvram.Restores == 0 || nvram.RemoteRestores != 0 {
		t.Fatalf("scenario should produce one local restore: %+v", nvram)
	}
	// NVRAM's serialization-free path must beat the NVM file system on
	// low-priority response.
	if nvram.MeanResponse(cluster.BandFree) >= nvm.MeanResponse(cluster.BandFree) {
		t.Errorf("NVRAM low response %.2f not below NVM %.2f",
			nvram.MeanResponse(cluster.BandFree), nvm.MeanResponse(cluster.BandFree))
	}
}

func TestDisableRestorePlacementAblation(t *testing.T) {
	// Same scenario as the remote-restore test: with Algorithm 2 disabled
	// the run must still complete.
	mkTask := func(job cluster.JobID, prio cluster.Priority, submit, dur time.Duration) cluster.JobSpec {
		return userJob(job, "", prio, submit, dur, 1)
	}
	jobs := []cluster.JobSpec{
		mkTask(0, 0, 0, 2*time.Minute),
		mkTask(1, 0, 0, 10*time.Minute),
		mkTask(2, 10, 30*time.Second, 10*time.Minute),
	}
	cfg := DefaultConfig(core.PolicyAdaptive, storage.NVM)
	cfg.Nodes = 2
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	cfg.DisableRestorePlacement = true
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.TasksCompleted != 3 {
		t.Errorf("completed %d of 3", r.TasksCompleted)
	}
}

func TestDisciplineString(t *testing.T) {
	for d, want := range map[Discipline]string{
		DisciplinePriority: "priority", DisciplineFairShare: "fair-share", DisciplineCapacity: "capacity",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", int(d), d.String())
		}
	}
	if got := fmt.Sprint(Discipline(9)); got != "Discipline(9)" {
		t.Errorf("unknown discipline prints %q", got)
	}
}

func TestConfigValidatesDiscipline(t *testing.T) {
	cfg := DefaultConfig(core.PolicyKill, storage.SSD)
	cfg.Discipline = 99
	if err := cfg.Validate(); err == nil {
		t.Error("invalid discipline accepted")
	}
	cfg = DefaultConfig(core.PolicyKill, storage.SSD)
	cfg.MaxEvictionsPerTask = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative eviction cap accepted")
	}
}
