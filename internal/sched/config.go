// Package sched implements the paper's trace-driven cluster scheduling
// simulator (Section 3.3.2): a cluster of nodes executing prioritized jobs
// under one of four preemption policies (wait, kill, basic checkpoint,
// adaptive), with checkpoint and restore costs charged to per-node storage
// devices, restore placement per Algorithm 2, per-node sequential
// checkpoint queues, and energy metered from node utilization.
//
// The simulator runs on the deterministic discrete-event engine; a given
// (config, job list) pair always produces identical results.
package sched

import (
	"fmt"
	"sort"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/energy"
	"preemptsched/internal/obs"
	"preemptsched/internal/storage"
)

// Discipline selects how the scheduler arbitrates contention — which
// queued task goes first and which running tasks are legitimate preemption
// victims. The paper's system model (Section 3.1) names all three;
// priority scheduling is what its experiments use.
type Discipline int

const (
	// DisciplinePriority orders by task priority; higher priorities
	// preempt strictly lower ones.
	DisciplinePriority Discipline = iota + 1
	// DisciplineFairShare balances dominant resource shares across users:
	// under-served users schedule first and may preempt tasks of users
	// running beyond their equal share.
	DisciplineFairShare
	// DisciplineCapacity guarantees each priority band a capacity
	// fraction; a band below its guarantee may reclaim resources from
	// bands above theirs.
	DisciplineCapacity
)

func (d Discipline) String() string {
	switch d {
	case DisciplinePriority:
		return "priority"
	case DisciplineFairShare:
		return "fair-share"
	case DisciplineCapacity:
		return "capacity"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// DefaultCapacityGuarantees is the per-band capacity split used by
// DisciplineCapacity when Config.CapacityGuarantees is unset: low-priority
// batch gets the largest guaranteed pool, production the smallest —
// production bursts above their guarantee are what preemption reclaims.
var DefaultCapacityGuarantees = [cluster.NumBands]float64{0.45, 0.35, 0.20}

// Config parameterizes a simulation run.
type Config struct {
	// Nodes is the machine count; NodeCapacity the per-machine resources.
	Nodes        int
	NodeCapacity cluster.Resources
	// Policy selects the preemption policy under test.
	Policy core.Policy
	// Discipline selects the contention arbitration rule. Zero means
	// DisciplinePriority.
	Discipline Discipline
	// CapacityGuarantees sets per-band guaranteed capacity fractions for
	// DisciplineCapacity; zero value takes DefaultCapacityGuarantees.
	CapacityGuarantees [cluster.NumBands]float64
	// MaxEvictionsPerTask caps how many times one task may be preempted
	// (the eviction-threshold policy of Cavdar et al.); 0 means no cap.
	MaxEvictionsPerTask int
	// DisableIncremental forces every checkpoint to be a full dump
	// (ablation of the incremental-checkpointing optimization).
	DisableIncremental bool
	// NaiveVictimSelection disables cost-aware eviction under the
	// adaptive policy (ablation): victims are picked by priority and age
	// only.
	NaiveVictimSelection bool
	// DisableRestorePlacement disables Algorithm 2 (ablation): restores
	// take the first node with capacity regardless of image locality.
	DisableRestorePlacement bool
	// PreCopy enables pre-copy checkpointing (CRIU pre-dump): the bulk of
	// a victim's state is dumped while it keeps running, and only the
	// pages dirtied during that window are written during the freeze.
	// This shortens the victim's non-progress window at the cost of a
	// slightly later resource handover.
	PreCopy bool
	// StorageKind selects the per-node checkpoint device. Ignored when
	// CustomBandwidth is positive, in which case every node gets a
	// symmetric device of that many bytes/second (the paper's sensitivity
	// sweeps).
	StorageKind     storage.Kind
	CustomBandwidth float64
	// NetBandwidth is the bytes/second available for shipping images to
	// remote restore targets. Defaults to core.DefaultNetBandwidth.
	NetBandwidth float64
	// DirtyFloor is the minimum fraction of a task's footprint considered
	// dirty right after a restore; dirtiness then grows linearly with run
	// time. Table 3's experiment modifies 10% between dumps; 0.12 is the
	// default.
	DirtyFloor float64
	// EnergyModel maps node utilization to watts.
	EnergyModel energy.Model
	// ScanLimit bounds how many queued tasks each scheduling pass
	// examines; it trades head-of-line fidelity for simulation speed.
	ScanLimit int
	// NodeFailures lists seeded compute-node outages. Unlike the yarn
	// model — where the RM discovers death through missed heartbeats —
	// the trace simulator applies each outage instantly at its configured
	// time: running tasks are fenced, their unsaved progress is charged as
	// failure waste, and they requeue through the normal placement path
	// (restoring from a surviving checkpoint image when one exists). The
	// detection delay is a deliberate simplification; the yarn layer
	// models it.
	NodeFailures []NodeFailure
	// Metrics, when non-nil, receives sched.* policy-decision counters
	// and dump/restore latency histograms (virtual time). Nil — the
	// default — keeps the hot loop free of instrumentation.
	Metrics *obs.Registry
	// Recorder, when non-nil, receives the decision-provenance journal:
	// one record per victim selection, Algorithm 1 verdict, dump,
	// restore, and task completion. Nil keeps the hot loop journal-free.
	Recorder *obs.Recorder
	// Probe, when non-nil, receives one callback per scheduling decision
	// and task lifecycle edge (probe.go). The density suite installs it
	// to count sustained decisions/sec and to shadow-check invariants;
	// nil — the default — costs one pointer test per event.
	Probe func(ProbeEvent)
	// SampleEvery, when positive together with OnSample, arms a periodic
	// sampler on the virtual clock reporting queue depth, tasks in
	// flight, and cumulative decision counts. The sampler re-arms only
	// while other events remain, so it never extends a run.
	SampleEvery time.Duration
	OnSample    func(Sample)
}

// NodeFailure is one seeded outage of a simulated machine.
type NodeFailure struct {
	// Node is the index of the machine that fails.
	Node int
	// At is the virtual time the machine dies.
	At time.Duration
	// RecoverAfter, when positive, brings the machine back that long
	// after At (a rebooted or healed node); zero keeps it dead for the
	// rest of the run.
	RecoverAfter time.Duration
}

// DefaultConfig returns a mid-size cluster on the given storage with the
// given policy.
func DefaultConfig(policy core.Policy, kind storage.Kind) Config {
	return Config{
		Nodes:        64,
		NodeCapacity: cluster.Resources{CPUMillis: cluster.Cores(16), MemBytes: cluster.GiB(64)},
		Policy:       policy,
		StorageKind:  kind,
		NetBandwidth: core.DefaultNetBandwidth,
		DirtyFloor:   0.12,
		EnergyModel:  energy.DefaultModel(),
		ScanLimit:    64,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("sched: Nodes=%d must be positive", c.Nodes)
	}
	if c.NodeCapacity.CPUMillis <= 0 || c.NodeCapacity.MemBytes <= 0 {
		return fmt.Errorf("sched: non-positive node capacity %v", c.NodeCapacity)
	}
	switch c.Policy {
	case core.PolicyWait, core.PolicyKill, core.PolicyCheckpoint, core.PolicyAdaptive:
	default:
		return fmt.Errorf("sched: invalid policy %v", c.Policy)
	}
	switch c.Discipline {
	case 0, DisciplinePriority, DisciplineFairShare, DisciplineCapacity:
	default:
		return fmt.Errorf("sched: invalid discipline %v", c.Discipline)
	}
	if c.MaxEvictionsPerTask < 0 {
		return fmt.Errorf("sched: negative eviction cap")
	}
	if c.CustomBandwidth < 0 {
		return fmt.Errorf("sched: negative custom bandwidth")
	}
	if c.DirtyFloor < 0 || c.DirtyFloor > 1 {
		return fmt.Errorf("sched: DirtyFloor=%v outside [0,1]", c.DirtyFloor)
	}
	for i, f := range c.NodeFailures {
		if f.Node < 0 || f.Node >= c.Nodes {
			return fmt.Errorf("sched: NodeFailures[%d].Node=%d outside [0,%d)", i, f.Node, c.Nodes)
		}
		if f.At < 0 {
			return fmt.Errorf("sched: NodeFailures[%d].At=%v is negative", i, f.At)
		}
		if f.RecoverAfter < 0 {
			return fmt.Errorf("sched: NodeFailures[%d].RecoverAfter=%v is negative", i, f.RecoverAfter)
		}
	}
	return nil
}

// withDefaults fills zero-valued optional fields.
func (c Config) withDefaults() Config {
	if c.NetBandwidth == 0 {
		c.NetBandwidth = core.DefaultNetBandwidth
	}
	if c.Discipline == 0 {
		c.Discipline = DisciplinePriority
	}
	if c.CapacityGuarantees == ([cluster.NumBands]float64{}) {
		c.CapacityGuarantees = DefaultCapacityGuarantees
	}
	if c.DirtyFloor == 0 {
		c.DirtyFloor = 0.12
	}
	if c.EnergyModel == (energy.Model{}) {
		c.EnergyModel = energy.DefaultModel()
	}
	if c.ScanLimit == 0 {
		c.ScanLimit = 64
	}
	return c
}

// Result aggregates a simulation run's outcomes; its fields are the
// quantities the paper's figures report.
type Result struct {
	Policy   core.Policy
	Storage  string
	Makespan time.Duration

	// WastedCPUHours is core-hours consumed without producing retained
	// progress: killed partial runs plus checkpoint/restore overhead.
	WastedCPUHours float64
	// UsefulCPUHours is core-hours of retained compute.
	UsefulCPUHours float64
	// OverheadCPUHours is the checkpoint/restore share of waste (Fig. 12a).
	OverheadCPUHours float64
	// EnergyKWh is total cluster energy (Fig. 3b / 8b).
	EnergyKWh float64

	// JobResponseSec holds per-band job response times in seconds
	// (queueing + execution, Fig. 3c / 8c) plus an all-jobs distribution
	// for CDFs (Fig. 9 / 11).
	JobResponseSec    map[cluster.Band]*Dist
	JobResponseAllSec *Dist
	// JobResponseByUser holds per-tenant response times, the input to
	// fairness comparisons across scheduling disciplines.
	JobResponseByUser map[string]*Dist

	Preemptions            int
	Kills                  int
	Checkpoints            int
	IncrementalCheckpoints int
	// PreCopies counts checkpoints taken with the pre-copy optimization.
	PreCopies      int
	Restores       int
	RemoteRestores int
	TasksCompleted int

	// NodeFailures counts seeded machine outages applied; NodeRecoveries
	// counts machines that came back.
	NodeFailures   int
	NodeRecoveries int
	// TasksRescheduled counts tasks displaced by a node failure and
	// requeued; each is later accounted as a FailureRestore (resumed from
	// a surviving checkpoint image) or a FailureRestart (from scratch).
	TasksRescheduled int
	FailureRestores  int
	FailureRestarts  int
	// FailureWasteHours is the share of WastedCPUHours attributable to
	// node failures: progress that died with the machine.
	FailureWasteHours float64

	// Decisions counts scheduling decisions: successful placements plus
	// preemption verdicts. EventsFired is the total number of
	// discrete-event callbacks the engine executed. Together they are
	// the numerators of the density suite's sustained-rate metrics.
	Decisions   uint64
	EventsFired uint64

	// IOBusyHours is device-hours spent on checkpoint I/O (Fig. 12b).
	IOBusyHours float64
	// PeakImageBytes is the high-water mark of stored checkpoint state
	// (Section 5.3.3 storage overhead).
	PeakImageBytes int64
}

// WasteFraction returns waste over total consumed CPU.
func (r *Result) WasteFraction() float64 {
	total := r.WastedCPUHours + r.UsefulCPUHours
	if total == 0 {
		return 0
	}
	return r.WastedCPUHours / total
}

// CPUOverheadFraction is checkpoint/restore core-hours over all consumed
// core-hours (Fig. 12a's y-axis).
func (r *Result) CPUOverheadFraction() float64 {
	total := r.WastedCPUHours + r.UsefulCPUHours
	if total == 0 {
		return 0
	}
	return r.OverheadCPUHours / total
}

// IOOverheadFraction is checkpoint-device busy time over total
// device-time (Fig. 12b's y-axis).
func (r *Result) IOOverheadFraction(nodes int) float64 {
	if r.Makespan <= 0 || nodes <= 0 {
		return 0
	}
	return r.IOBusyHours / (r.Makespan.Hours() * float64(nodes))
}

// MeanResponse returns the mean job response time for a band, in seconds.
func (r *Result) MeanResponse(b cluster.Band) float64 {
	d := r.JobResponseSec[b]
	if d == nil {
		return 0
	}
	return d.Mean()
}

// FairnessIndex returns Jain's fairness index over per-user mean response
// times (1 = perfectly equal, 1/n = maximally skewed). It compares how
// evenly the scheduling disciplines treat tenants.
func (r *Result) FairnessIndex() float64 {
	var xs []float64
	for _, d := range r.JobResponseByUser {
		if d.N() > 0 {
			xs = append(xs, d.Mean())
		}
	}
	if len(xs) == 0 {
		return 0
	}
	// Fix the addend order: float addition is non-associative, and map
	// range would make the reported index vary bit-for-bit run to run.
	sort.Float64s(xs)
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
