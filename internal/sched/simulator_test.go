package sched

import (
	"testing"
	"testing/quick"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
	"preemptsched/internal/trace"
)

// oneCoreConfig is a single-node, single-core cluster so scenarios are
// hand-checkable.
func oneCoreConfig(policy core.Policy, kind storage.Kind) Config {
	cfg := DefaultConfig(policy, kind)
	cfg.Nodes = 1
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	return cfg
}

// twoJobScenario reproduces the paper's sensitivity setup (Section 3.3.3):
// a low-priority job runs for 30 s, then a high-priority job of the same
// size arrives and contends for the single core. Both need 60 s of
// compute and have a 5 GB footprint.
func twoJobScenario() []cluster.JobSpec {
	mk := func(id cluster.JobID, prio cluster.Priority, submit time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID:       id,
			Priority: prio,
			Submit:   submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: id},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(6)},
				MemFootprint: cluster.GiB(5),
				Duration:     time.Minute,
				Submit:       submit,
			}},
		}
	}
	return []cluster.JobSpec{
		mk(0, 0, 0),
		mk(1, 10, 30*time.Second),
	}
}

func respOf(t *testing.T, r *Result, band cluster.Band) float64 {
	t.Helper()
	d := r.JobResponseSec[band]
	if d == nil || d.N() != 1 {
		t.Fatalf("band %v has %v samples", band, d)
	}
	return d.Mean()
}

func TestWaitPolicy(t *testing.T) {
	r, err := Run(oneCoreConfig(core.PolicyWait, storage.SSD), twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	// Low job: 0..60 s. High job: submitted at 30 s, waits 30 s, runs
	// 60 s -> response 90 s.
	if got := respOf(t, r, cluster.BandFree); got != 60 {
		t.Errorf("low response = %v, want 60", got)
	}
	if got := respOf(t, r, cluster.BandProduction); got != 90 {
		t.Errorf("high response = %v, want 90", got)
	}
	if r.Preemptions != 0 || r.Kills != 0 || r.Checkpoints != 0 {
		t.Errorf("wait policy preempted: %+v", r)
	}
	if r.WastedCPUHours != 0 {
		t.Errorf("wait policy wasted %v CPU-hours", r.WastedCPUHours)
	}
}

func TestKillPolicy(t *testing.T) {
	r, err := Run(oneCoreConfig(core.PolicyKill, storage.SSD), twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	// High job preempts instantly: response 60 s. Low job restarts from
	// scratch at 90 s: finishes 150 s -> response 150 s.
	if got := respOf(t, r, cluster.BandProduction); got != 60 {
		t.Errorf("high response = %v, want 60", got)
	}
	if got := respOf(t, r, cluster.BandFree); got != 150 {
		t.Errorf("low response = %v, want 150", got)
	}
	if r.Kills != 1 || r.Checkpoints != 0 {
		t.Errorf("kill counts: %+v", r)
	}
	// 30 s of one core wasted.
	if got := r.WastedCPUHours; got < 29.0/3600 || got > 31.0/3600 {
		t.Errorf("wasted = %v core-hours, want ~30s", got)
	}
}

func TestCheckpointPolicy(t *testing.T) {
	// 1 GB/s symmetric storage: dump 5 GB ~ 5.37 s, restore the same.
	cfg := oneCoreConfig(core.PolicyCheckpoint, storage.SSD)
	cfg.CustomBandwidth = 1e9
	r, err := Run(cfg, twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	dump := 5 * 1.0737 // 5 GiB at 1 GB/s, in seconds
	// High job waits for the dump: response ~ 60 + dump.
	if got := respOf(t, r, cluster.BandProduction); got < 60+dump-1 || got > 60+dump+1 {
		t.Errorf("high response = %v, want ~%v", got, 60+dump)
	}
	// Low job: progress banked; finishes ~ 30(run) + dump + 60(high) +
	// restore + 30(rest) ~ 130.7.
	wantLow := 30 + dump + 60 + dump + 30
	if got := respOf(t, r, cluster.BandFree); got < wantLow-2 || got > wantLow+2 {
		t.Errorf("low response = %v, want ~%v", got, wantLow)
	}
	if r.Checkpoints != 1 || r.Kills != 0 || r.Restores != 1 {
		t.Errorf("counts: %+v", r)
	}
	// Waste is only the checkpoint+restore overhead (~2*dump), well below
	// the kill policy's 30 s.
	if got := r.WastedCPUHours * 3600; got < 2*dump-1 || got > 2*dump+1 {
		t.Errorf("wasted = %vs, want ~%v", got, 2*dump)
	}
	if r.PeakImageBytes != cluster.GiB(5) {
		t.Errorf("peak image bytes = %d, want 5 GiB", r.PeakImageBytes)
	}
}

func TestAdaptivePolicyKillsYoungCheckpointsOld(t *testing.T) {
	// Slow storage (50 MB/s): overhead for 5 GB is ~200 s, far above the
	// 30 s progress -> adaptive kills, like the paper's low-bandwidth
	// regime.
	cfg := oneCoreConfig(core.PolicyAdaptive, storage.SSD)
	cfg.CustomBandwidth = 50e6
	r, err := Run(cfg, twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r.Kills != 1 || r.Checkpoints != 0 {
		t.Errorf("slow storage: kills=%d checkpoints=%d, want 1/0", r.Kills, r.Checkpoints)
	}
	// Fast storage (5 GB/s): overhead ~2 s < 30 s progress -> checkpoint.
	cfg.CustomBandwidth = 5e9
	r, err = Run(cfg, twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != 1 || r.Kills != 0 {
		t.Errorf("fast storage: kills=%d checkpoints=%d, want 0/1", r.Kills, r.Checkpoints)
	}
}

func TestAdaptiveNeverWorseThanBasicOnScenario(t *testing.T) {
	// Fig. 6 property: at every bandwidth the adaptive policy's high-
	// priority response is <= basic checkpoint's (within epsilon).
	for _, bw := range []float64{0.2e9, 0.5e9, 1e9, 2e9, 5e9} {
		basicCfg := oneCoreConfig(core.PolicyCheckpoint, storage.SSD)
		basicCfg.CustomBandwidth = bw
		adaptCfg := oneCoreConfig(core.PolicyAdaptive, storage.SSD)
		adaptCfg.CustomBandwidth = bw
		basic, err := Run(basicCfg, twoJobScenario())
		if err != nil {
			t.Fatal(err)
		}
		adapt, err := Run(adaptCfg, twoJobScenario())
		if err != nil {
			t.Fatal(err)
		}
		if adapt.MeanResponse(cluster.BandProduction) > basic.MeanResponse(cluster.BandProduction)+0.5 {
			t.Errorf("bw %.1f GB/s: adaptive high %.1fs > basic %.1fs",
				bw/1e9, adapt.MeanResponse(cluster.BandProduction), basic.MeanResponse(cluster.BandProduction))
		}
	}
}

func TestIncrementalCheckpointOnSecondPreemption(t *testing.T) {
	// Three waves: low job runs, is checkpointed, resumes, is checkpointed
	// again -> second dump must be incremental.
	low := cluster.JobSpec{
		ID: 0, Priority: 0,
		Tasks: []cluster.TaskSpec{{
			ID:           cluster.TaskID{Job: 0},
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(6)},
			MemFootprint: cluster.GiB(5),
			Duration:     5 * time.Minute,
		}},
	}
	mkHigh := func(id cluster.JobID, submit time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: 10, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:       cluster.TaskID{Job: id},
				Priority: 10,
				Demand:   cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				Duration: 30 * time.Second,
				Submit:   submit,
			}},
		}
	}
	jobs := []cluster.JobSpec{low, mkHigh(1, time.Minute), mkHigh(2, 3*time.Minute)}
	cfg := oneCoreConfig(core.PolicyCheckpoint, storage.NVM)
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d, want 2", r.Checkpoints)
	}
	if r.IncrementalCheckpoints != 1 {
		t.Errorf("incremental checkpoints = %d, want 1", r.IncrementalCheckpoints)
	}
	if r.Restores != 2 {
		t.Errorf("restores = %d, want 2", r.Restores)
	}
}

func TestUsefulCPUConservation(t *testing.T) {
	// Under any policy, useful CPU-hours must equal the sum of task
	// durations times cores: checkpointing banks progress, killing redoes
	// it, but completed work is completed work.
	jobs, err := trace.GenerateJobs(trace.JobsConfig{Seed: 3, Jobs: 60, MeanTasksPerJob: 3, Span: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := range jobs {
		for j := range jobs[i].Tasks {
			ts := &jobs[i].Tasks[j]
			want += float64(ts.Demand.CPUMillis) / 1000 * ts.Duration.Hours()
		}
	}
	for _, policy := range []core.Policy{core.PolicyWait, core.PolicyKill, core.PolicyCheckpoint, core.PolicyAdaptive} {
		cfg := DefaultConfig(policy, storage.SSD)
		cfg.Nodes = 8
		r, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if r.TasksCompleted != trace.CountTasks(jobs) {
			t.Errorf("%v: completed %d of %d tasks", policy, r.TasksCompleted, trace.CountTasks(jobs))
		}
		if diff := r.UsefulCPUHours - want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("%v: useful = %v, want %v", policy, r.UsefulCPUHours, want)
		}
	}
}

func TestDeterminism(t *testing.T) {
	jobs, _ := trace.GenerateJobs(trace.JobsConfig{Seed: 5, Jobs: 40, MeanTasksPerJob: 4, Span: time.Hour})
	cfg := DefaultConfig(core.PolicyAdaptive, storage.HDD)
	cfg.Nodes = 6
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	jobs2, _ := trace.GenerateJobs(trace.JobsConfig{Seed: 5, Jobs: 40, MeanTasksPerJob: 4, Span: time.Hour})
	b, err := Run(cfg, jobs2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.WastedCPUHours != b.WastedCPUHours ||
		a.Preemptions != b.Preemptions || a.EnergyKWh != b.EnergyKWh {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestKillWastesMoreThanCheckpoint(t *testing.T) {
	// The headline Fig. 3a relation on a contended cluster.
	jobs, _ := trace.GenerateJobs(trace.JobsConfig{Seed: 11, Jobs: 120, MeanTasksPerJob: 4, Span: 2 * time.Hour})
	run := func(policy core.Policy, kind storage.Kind) *Result {
		cfg := DefaultConfig(policy, kind)
		cfg.Nodes = 6 // tight cluster to force contention
		r, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	kill := run(core.PolicyKill, storage.SSD)
	if kill.Preemptions == 0 {
		t.Fatal("scenario produced no preemptions; tighten the cluster")
	}
	chkSSD := run(core.PolicyCheckpoint, storage.SSD)
	chkNVM := run(core.PolicyCheckpoint, storage.NVM)
	if kill.WastedCPUHours <= chkSSD.WastedCPUHours {
		t.Errorf("kill waste %.2f <= checkpoint-SSD waste %.2f", kill.WastedCPUHours, chkSSD.WastedCPUHours)
	}
	if chkSSD.WastedCPUHours <= chkNVM.WastedCPUHours {
		t.Errorf("SSD waste %.2f <= NVM waste %.2f", chkSSD.WastedCPUHours, chkNVM.WastedCPUHours)
	}
}

func TestConfigValidation(t *testing.T) {
	jobs := twoJobScenario()
	bad := []Config{
		{Nodes: 0, NodeCapacity: cluster.Resources{CPUMillis: 1, MemBytes: 1}, Policy: core.PolicyKill},
		{Nodes: 1, NodeCapacity: cluster.Resources{}, Policy: core.PolicyKill},
		{Nodes: 1, NodeCapacity: cluster.Resources{CPUMillis: 1, MemBytes: 1}, Policy: 0},
		{Nodes: 1, NodeCapacity: cluster.Resources{CPUMillis: 1, MemBytes: 1}, Policy: core.PolicyKill, CustomBandwidth: -1},
		{Nodes: 1, NodeCapacity: cluster.Resources{CPUMillis: 1, MemBytes: 1}, Policy: core.PolicyKill, DirtyFloor: 2},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, jobs); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Oversized task demand must be rejected.
	cfg := oneCoreConfig(core.PolicyKill, storage.SSD)
	big := twoJobScenario()
	big[0].Tasks[0].Demand.CPUMillis = cluster.Cores(99)
	if _, err := Run(cfg, big); err == nil {
		t.Error("oversized task accepted")
	}
}

func TestRemoteRestoreHappensUnderContention(t *testing.T) {
	// Two nodes; the checkpointed task's home node is kept busy by a
	// high-priority task, so the restore must go remote.
	mkTask := func(job cluster.JobID, prio cluster.Priority, submit, dur time.Duration, cpu float64) cluster.JobSpec {
		return cluster.JobSpec{
			ID: job, Priority: prio, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: job},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(cpu), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     dur,
				Submit:       submit,
			}},
		}
	}
	jobs := []cluster.JobSpec{
		mkTask(0, 0, 0, 2*time.Minute, 1),                // low on node 0
		mkTask(1, 0, 0, 10*time.Minute, 1),               // low on node 1
		mkTask(2, 10, 30*time.Second, 10*time.Minute, 1), // high: preempts job 0 on node 0 and occupies it
	}
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 2
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	_ = r
	if r.Checkpoints == 0 {
		t.Fatal("no checkpoint happened")
	}
	// Job 0 cannot restore on node 0 (high job holds it 10 min) nor node 1
	// (job 1 holds it 10 min)... it waits for the first of them. This
	// scenario asserts the run completes and restore occurred.
	if r.Restores == 0 {
		t.Error("checkpointed task never restored")
	}
	if r.TasksCompleted != 3 {
		t.Errorf("completed %d tasks, want 3", r.TasksCompleted)
	}
}

// Property: random small workloads complete under every policy with
// non-negative accounting and policy-consistent counters.
func TestPolicyInvariantsProperty(t *testing.T) {
	f := func(seed int64, jobsN uint8) bool {
		n := int(jobsN%30) + 2
		jobs, err := trace.GenerateJobs(trace.JobsConfig{Seed: seed, Jobs: n, MeanTasksPerJob: 3, Span: 30 * time.Minute})
		if err != nil {
			return false
		}
		for _, policy := range []core.Policy{core.PolicyWait, core.PolicyKill, core.PolicyCheckpoint, core.PolicyAdaptive} {
			cfg := DefaultConfig(policy, storage.SSD)
			cfg.Nodes = 4
			r, err := Run(cfg, jobs)
			if err != nil {
				return false
			}
			if r.TasksCompleted != trace.CountTasks(jobs) {
				return false
			}
			if r.WastedCPUHours < 0 || r.UsefulCPUHours <= 0 || r.EnergyKWh <= 0 {
				return false
			}
			switch policy {
			case core.PolicyWait:
				if r.Preemptions != 0 || r.Kills != 0 || r.Checkpoints != 0 {
					return false
				}
			case core.PolicyKill:
				if r.Checkpoints != 0 || r.Restores != 0 {
					return false
				}
			case core.PolicyCheckpoint:
				if r.Kills != 0 {
					return false
				}
			}
			if r.JobResponseAllSec.N() != len(jobs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}
