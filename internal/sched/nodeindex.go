package sched

// nodeIndex is a segment tree over per-node availability that answers
// pickNode's first-fit query — "lowest-ID node whose free-minus-reserved
// capacity fits this demand" — in roughly O(log n) instead of the O(n)
// linear scan. Each internal segment stores the maximum available CPU and
// memory among its leaves; the search descends leftmost-first and prunes
// any segment whose maximum in either dimension is below the demand.
//
// The leaf value is the *generic* availability max(0, free-reserved) per
// dimension, with down nodes pinned to zero. That equals
// node.availableFor(t) for every task except on the one node holding t's
// own reservation, which pickNode checks separately — so the indexed
// first fit returns exactly the node the linear scan would have, and
// simulation results stay byte-identical (the differential test in
// nodeindex_test.go asserts this on randomized traffic).
type nodeIndex struct {
	n    int // leaf count (cluster size)
	size int // leaf offset; smallest power of two >= n
	// maxCPU and maxMem are 1-based segment arrays: node i's children are
	// 2i and 2i+1, leaves start at size.
	maxCPU []int64
	maxMem []int64
}

func newNodeIndex(n int) *nodeIndex {
	size := 1
	for size < n {
		size *= 2
	}
	return &nodeIndex{
		n:      n,
		size:   size,
		maxCPU: make([]int64, 2*size),
		maxMem: make([]int64, 2*size),
	}
}

// set updates leaf i's availability and refreshes ancestors, stopping
// early once an ancestor's maxima are unchanged.
func (ix *nodeIndex) set(i int, cpu, mem int64) {
	i += ix.size
	if ix.maxCPU[i] == cpu && ix.maxMem[i] == mem {
		return
	}
	ix.maxCPU[i], ix.maxMem[i] = cpu, mem
	for i >>= 1; i >= 1; i >>= 1 {
		c := ix.maxCPU[2*i]
		if r := ix.maxCPU[2*i+1]; r > c {
			c = r
		}
		m := ix.maxMem[2*i]
		if r := ix.maxMem[2*i+1]; r > m {
			m = r
		}
		if ix.maxCPU[i] == c && ix.maxMem[i] == m {
			return
		}
		ix.maxCPU[i], ix.maxMem[i] = c, m
	}
}

// firstFit returns the lowest leaf whose availability covers (cpu, mem)
// in both dimensions, or -1. Demands are strictly positive (JobSpec
// validation), so zero-availability leaves — down nodes and the power-of-
// two padding — never match.
func (ix *nodeIndex) firstFit(cpu, mem int64) int {
	if len(ix.maxCPU) < 2 || ix.maxCPU[1] < cpu || ix.maxMem[1] < mem {
		return -1
	}
	i := 1
	for i < ix.size {
		// Descend to the leftmost child that can still contain a fit. A
		// segment's CPU and memory maxima may come from different leaves,
		// so a qualifying left child can turn out empty; when its subtree
		// is exhausted, resume with the right sibling on the way back up.
		l := 2 * i
		if ix.maxCPU[l] >= cpu && ix.maxMem[l] >= mem {
			i = l
			continue
		}
		i = l + 1
		for ix.maxCPU[i] < cpu || ix.maxMem[i] < mem {
			// Climb past exhausted right subtrees to the next unvisited
			// right sibling; running off the root means no leaf fits.
			for i&1 == 1 {
				i >>= 1
			}
			if i <= 1 {
				return -1
			}
			i++
		}
	}
	return i - ix.size
}
