package sched

import (
	"fmt"
	"sort"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/energy"
	"preemptsched/internal/metrics"
	"preemptsched/internal/obs"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

// Dist re-exports metrics.Dist for Result consumers.
type Dist = metrics.Dist

// taskPhase is a task's runtime state.
type taskPhase int

const (
	phaseQueued taskPhase = iota + 1
	phaseRunning
	phaseCheckpointing // frozen, dump in flight; resources still held
	phaseRestoring     // resources held on target, image read in flight
	phaseDone
)

// taskRT is the mutable runtime record of one task.
type taskRT struct {
	spec *cluster.TaskSpec
	job  *jobRT

	phase taskPhase
	// remaining is the compute time still owed. It shrinks when progress
	// is banked: at completion, or at checkpoint time.
	remaining time.Duration
	// attemptStart is when the current attempt began useful execution.
	attemptStart sim.Time
	node         *node

	hasCheckpoint bool
	// ckptNode is where the image chain's blocks are local.
	ckptNode *node
	// imageBytes is the logical size of the stored image chain.
	imageBytes int64

	// queuedAt is when the task (re)entered the pending queue.
	queuedAt sim.Time
	seq      uint64
	// index is the heap position while queued.
	index int
	// completion is the pending completion timer while running.
	completion *sim.Timer
	// evictions counts preemptions suffered, for the eviction-threshold
	// policy.
	evictions int
	// estOverhead is the Algorithm 1 checkpoint-overhead estimate stashed
	// at decision time; the provenance journal compares it against the
	// measured dump and restore windows. Only maintained under a Recorder.
	estOverhead time.Duration
	// dumpCost is the measured duration of the latest dump, folded into
	// the restore event's actual round-trip cost.
	dumpCost time.Duration
	// preCopying marks a running task whose state is being pre-dumped; it
	// is not eligible as a further preemption victim until frozen.
	preCopying bool
	// reservedOn is the node holding a capacity reservation for this
	// waiting task while its preemption victims drain their checkpoint
	// dumps. It prevents backfilling work from stealing the vacated
	// resources and prevents issuing a second round of preemptions for
	// the same waiter.
	reservedOn *node
	// failedOver marks a task displaced by a node failure; its next
	// placement is attributed as a failure restore or restart.
	failedOver bool
}

// unsavedProgress is the compute a kill right now would lose.
func (t *taskRT) unsavedProgress(now sim.Time) time.Duration {
	if t.phase != phaseRunning {
		return 0
	}
	return time.Duration(now - t.attemptStart)
}

// dirtyBytes models soft-dirty growth: right after a restore roughly the
// floor fraction is dirty, growing linearly with execution toward the full
// footprint.
func (t *taskRT) dirtyBytes(now sim.Time, floor float64) int64 {
	frac := floor + (1-floor)*float64(t.unsavedProgress(now))/float64(t.spec.Duration)
	if frac > 1 {
		frac = 1
	}
	return int64(frac * float64(t.spec.MemFootprint))
}

func (t *taskRT) candidate(now sim.Time, floor float64) core.Candidate {
	return core.Candidate{
		Task:            t.spec.ID,
		Priority:        t.spec.Priority,
		Demand:          t.spec.Demand,
		UnsavedProgress: t.unsavedProgress(now),
		FootprintBytes:  t.spec.MemFootprint,
		DirtyBytes:      t.dirtyBytes(now, floor),
		HasCheckpoint:   t.hasCheckpoint,
	}
}

// jobRT tracks job-level aggregation.
type jobRT struct {
	spec      *cluster.JobSpec
	remaining int
	finish    sim.Time
}

// node is one simulated machine.
type node struct {
	id       cluster.NodeID
	cap      cluster.Resources
	used     cluster.Resources
	reserved cluster.Resources
	device   *storage.Device
	running  map[cluster.TaskID]*taskRT
	// down marks a machine taken out by a seeded NodeFailure; it offers
	// no capacity until (and unless) its recovery event fires.
	down bool

	// idx is the cluster-wide first-fit index; every mutation of used,
	// reserved, or down must publish the new availability via touch.
	idx *nodeIndex
	// byPrio counts phaseRunning tasks per priority and prioMask keeps a
	// bit set per non-empty priority, so victim scans can reject a node
	// without iterating its running map.
	byPrio   [int(cluster.MaxPriority) + 1]uint16
	prioMask uint16

	meter      *energy.Meter
	lastChange sim.Time
}

// touch publishes the node's generic availability — max(0, free-reserved)
// per dimension, zero while down — into the first-fit index. This equals
// availableFor(t) for every task without a reservation on this node,
// which is what pickNode's indexed query relies on.
func (n *node) touch() {
	if n.idx == nil {
		return
	}
	var cpu, mem int64
	if !n.down {
		cpu = n.cap.CPUMillis - n.used.CPUMillis - n.reserved.CPUMillis
		mem = n.cap.MemBytes - n.used.MemBytes - n.reserved.MemBytes
		if cpu < 0 {
			cpu = 0
		}
		if mem < 0 {
			mem = 0
		}
	}
	n.idx.set(int(n.id), cpu, mem)
}

func (n *node) free() cluster.Resources { return n.cap.Sub(n.used) }

// availableFor is the capacity task t may claim on n: free capacity minus
// outstanding preemption reservations, except that t's own reservation on
// this node counts as available to t.
func (n *node) availableFor(t *taskRT) cluster.Resources {
	if n.down {
		return cluster.Resources{}
	}
	avail := n.free().Sub(n.reserved)
	if t.reservedOn == n {
		avail = avail.Add(t.spec.Demand)
	}
	free := n.free()
	if avail.CPUMillis > free.CPUMillis {
		avail.CPUMillis = free.CPUMillis
	}
	if avail.MemBytes > free.MemBytes {
		avail.MemBytes = free.MemBytes
	}
	if avail.CPUMillis < 0 {
		avail.CPUMillis = 0
	}
	if avail.MemBytes < 0 {
		avail.MemBytes = 0
	}
	return avail
}

// settleEnergy integrates power since the last allocation change.
func (n *node) settleEnergy(now sim.Time) {
	if now > n.lastChange {
		util := float64(n.used.CPUMillis) / float64(n.cap.CPUMillis)
		n.meter.Accumulate(util, time.Duration(now-n.lastChange))
		n.lastChange = now
	}
}

func (n *node) alloc(now sim.Time, r cluster.Resources) {
	n.settleEnergy(now)
	n.used = n.used.Add(r)
	if n.used.Negative() || !n.used.Fits(n.cap) {
		panic(fmt.Sprintf("sched: node %d over-allocated: used %v cap %v", n.id, n.used, n.cap))
	}
	n.touch()
}

func (n *node) release(now sim.Time, r cluster.Resources) {
	n.settleEnergy(now)
	n.used = n.used.Sub(r)
	if n.used.Negative() {
		panic(fmt.Sprintf("sched: node %d released into negative: %v", n.id, n.used))
	}
	n.touch()
}

// pendingQueue is an indexed binary min-heap of waiting tasks ordered by
// (priority desc, queue entry asc, seq). Like sim's event queue it is
// hand-specialized: the key is a total order (seq breaks every tie), so
// pop order — and therefore simulation output — is identical to the old
// container/heap implementation, minus the interface-dispatch overhead
// on a queue that every scheduling pass pops and refills.
type pendingQueue []*taskRT

// beforeTask is the strict queue ordering.
func beforeTask(a, b *taskRT) bool {
	if a.spec.Priority != b.spec.Priority {
		return a.spec.Priority > b.spec.Priority
	}
	if a.queuedAt != b.queuedAt {
		return a.queuedAt < b.queuedAt
	}
	return a.seq < b.seq
}

func (q *pendingQueue) push(t *taskRT) {
	h := *q
	i := len(h)
	h = append(h, t)
	for i > 0 {
		parent := (i - 1) / 2
		if !beforeTask(t, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = t
	t.index = i
	*q = h
}

func (q *pendingQueue) pop() *taskRT {
	h := *q
	t := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n > 0 {
		i := 0
		for {
			kid := 2*i + 1
			if kid >= n {
				break
			}
			if r := kid + 1; r < n && beforeTask(h[r], h[kid]) {
				kid = r
			}
			if !beforeTask(h[kid], last) {
				break
			}
			h[i] = h[kid]
			h[i].index = i
			i = kid
		}
		h[i] = last
		last.index = i
	}
	t.index = -1
	return t
}

// Simulator executes one run.
type Simulator struct {
	cfg Config
	// reg is Config.Metrics; a nil registry makes every instrumentation
	// call a no-op pointer test.
	reg *obs.Registry
	// rec is Config.Recorder; nil keeps the journal paths no-ops.
	rec    *obs.Recorder
	engine *sim.Engine
	nodes  []*node
	// nodeIdx answers pickNode's first-fit query in O(log nodes).
	nodeIdx *nodeIndex
	queue   pendingQueue
	jobs    []*jobRT
	seq     uint64
	// candScratch and batchScratch are reused across victim scans and
	// scheduling passes so the hot loop stays allocation-free.
	candScratch  []*taskRT
	batchScratch []*taskRT
	skipScratch  []*taskRT

	res             *Result
	totalImageBytes int64
	// rescheduled guards against redundant trySchedule passes at one
	// instant.
	schedulePending bool
	// decisions counts scheduling decisions: successful placements plus
	// preemption verdicts. inFlight counts tasks holding node resources.
	// Both feed the Probe/Sample surface (probe.go).
	decisions uint64
	inFlight  int
	// runningByPrio counts phaseRunning tasks per priority so preemption
	// feasibility is an O(12) check instead of a cluster scan.
	runningByPrio [int(cluster.MaxPriority) + 1]int
	// hm holds pre-resolved metric handles for per-event hot paths, so a
	// dump or verdict records through one atomic slot instead of a
	// name-keyed map lookup under the registry lock. All handles are
	// no-op zero values when Config.Metrics is nil.
	hm struct {
		dumpQueue, dumpWrite, dumpTotal                          obs.Histogram
		restoreQueue, restoreRead, restoreTotal, restoreTransfer obs.Histogram
		predumpQueue, predumpTotal                               obs.Histogram
		restoreLocal, restoreRemote                              obs.Counter
		decision [int(core.ActionCheckpointIncremental) + 1]obs.Counter
	}
	// userUsage and bandUsage track allocated resources per tenant and
	// per priority band for the fair-share and capacity disciplines.
	userUsage map[string]cluster.Resources
	bandUsage [cluster.NumBands]cluster.Resources
	totalCap  cluster.Resources
}

// userOf returns the accounting tenant of a task; anonymous jobs are their
// own tenant.
func userOf(t *taskRT) string {
	if t.spec.User != "" {
		return t.spec.User
	}
	return fmt.Sprintf("job-%d", t.spec.ID.Job)
}

// account books an allocation (+1) or release (-1) of t's demand against
// its user and band.
func (s *Simulator) account(t *taskRT, sign int) {
	user := userOf(t)
	band := cluster.BandOf(t.spec.Priority)
	if sign > 0 {
		s.userUsage[user] = s.userUsage[user].Add(t.spec.Demand)
		s.bandUsage[band] = s.bandUsage[band].Add(t.spec.Demand)
		return
	}
	s.userUsage[user] = s.userUsage[user].Sub(t.spec.Demand)
	if s.userUsage[user].IsZero() {
		delete(s.userUsage, user)
	}
	s.bandUsage[band] = s.bandUsage[band].Sub(t.spec.Demand)
}

// shareOf is a user's dominant share of cluster capacity.
func (s *Simulator) shareOf(user string) float64 {
	return s.userUsage[user].DominantShare(s.totalCap)
}

// bandShare is a band's dominant share of cluster capacity.
func (s *Simulator) bandShare(b cluster.Band) float64 {
	return s.bandUsage[b].DominantShare(s.totalCap)
}

// equalShare is the per-user fair share target: capacity divided across
// users with live allocations plus the prospective user.
func (s *Simulator) equalShare(prospective string) float64 {
	n := len(s.userUsage)
	if _, live := s.userUsage[prospective]; !live {
		n++
	}
	if n == 0 {
		n = 1
	}
	return 1 / float64(n)
}

// canPreempt applies the active discipline's victim-eligibility rule: may
// waiting task t evict running task v?
//
// The fair-share and capacity rules are deliberately hysteretic: a
// transfer must not invert the relation that justified it, otherwise two
// users (or bands) on either side of the threshold could kill each other's
// tasks in an endless same-instant cycle. Fair share therefore requires
// the victim's user to remain at or above the claimant's share after the
// transfer, and capacity requires the victim's band to remain at or above
// its guarantee after the loss.
func (s *Simulator) canPreempt(t, v *taskRT) bool {
	if s.cfg.MaxEvictionsPerTask > 0 && v.evictions >= s.cfg.MaxEvictionsPerTask {
		return false
	}
	switch s.cfg.Discipline {
	case DisciplineFairShare:
		vs := s.shareOf(userOf(v))
		ts := s.shareOf(userOf(t))
		cv := v.spec.Demand.DominantShare(s.totalCap)
		ct := t.spec.Demand.DominantShare(s.totalCap)
		return vs > s.equalShare(userOf(t)) && vs-cv >= ts+ct
	case DisciplineCapacity:
		tb := cluster.BandOf(t.spec.Priority)
		vb := cluster.BandOf(v.spec.Priority)
		if tb == vb {
			return false
		}
		cv := v.spec.Demand.DominantShare(s.totalCap)
		return s.bandShare(tb) < s.cfg.CapacityGuarantees[tb] &&
			s.bandShare(vb)-cv >= s.cfg.CapacityGuarantees[vb]
	default:
		return v.spec.Priority < t.spec.Priority
	}
}

// markRunning and unmarkRunning bracket a task's phaseRunning tenure,
// keeping the global and per-node running-priority tallies in sync.
// t.node must still be set when unmarking.
func (s *Simulator) markRunning(t *taskRT) {
	s.runningByPrio[t.spec.Priority]++
	n := t.node
	n.byPrio[t.spec.Priority]++
	n.prioMask |= 1 << uint(t.spec.Priority)
}

func (s *Simulator) unmarkRunning(t *taskRT) {
	s.runningByPrio[t.spec.Priority]--
	n := t.node
	n.byPrio[t.spec.Priority]--
	if n.byPrio[t.spec.Priority] == 0 {
		n.prioMask &^= 1 << uint(t.spec.Priority)
	}
}

// anyRunningBelow reports whether some task with priority strictly below p
// is currently running.
func (s *Simulator) anyRunningBelow(p cluster.Priority) bool {
	for i := cluster.Priority(0); i < p; i++ {
		if s.runningByPrio[i] > 0 {
			return true
		}
	}
	return false
}

// Run simulates jobs under cfg and returns aggregated results.
func Run(cfg Config, jobs []cluster.JobSpec) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &Simulator{
		cfg:       cfg,
		reg:       cfg.Metrics,
		rec:       cfg.Recorder,
		engine:    sim.NewEngine(),
		userUsage: make(map[string]cluster.Resources),
		totalCap:  cfg.NodeCapacity.Scale(float64(cfg.Nodes)),
	}

	storageName := cfg.StorageKind.String()
	if cfg.CustomBandwidth > 0 {
		storageName = fmt.Sprintf("%.1fGB/s", cfg.CustomBandwidth/1e9)
	}
	s.res = &Result{
		Policy:            cfg.Policy,
		Storage:           storageName,
		JobResponseSec:    make(map[cluster.Band]*Dist),
		JobResponseAllSec: &Dist{},
		JobResponseByUser: make(map[string]*Dist),
	}
	for b := 0; b < cluster.NumBands; b++ {
		s.res.JobResponseSec[cluster.Band(b)] = &Dist{}
	}

	for i := 0; i < cfg.Nodes; i++ {
		var dev *storage.Device
		if cfg.CustomBandwidth > 0 {
			dev = storage.NewCustomDevice(cfg.CustomBandwidth, 0)
		} else {
			dev = storage.NewDevice(cfg.StorageKind)
		}
		s.nodes = append(s.nodes, &node{
			id:      cluster.NodeID(i),
			cap:     cfg.NodeCapacity,
			device:  dev,
			running: make(map[cluster.TaskID]*taskRT),
			meter:   energy.NewMeter(cfg.EnergyModel),
		})
	}
	s.nodeIdx = newNodeIndex(cfg.Nodes)
	for _, n := range s.nodes {
		n.idx = s.nodeIdx
		n.touch()
	}
	if s.reg != nil {
		s.hm.dumpQueue = s.reg.Histogram("sched.dump.queue.seconds")
		s.hm.dumpWrite = s.reg.Histogram("sched.dump.write.seconds")
		s.hm.dumpTotal = s.reg.Histogram("sched.dump.total.seconds")
		s.hm.restoreQueue = s.reg.Histogram("sched.restore.queue.seconds")
		s.hm.restoreRead = s.reg.Histogram("sched.restore.read.seconds")
		s.hm.restoreTotal = s.reg.Histogram("sched.restore.total.seconds")
		s.hm.restoreTransfer = s.reg.Histogram("sched.restore.transfer.seconds")
		s.hm.predumpQueue = s.reg.Histogram("sched.predump.queue.seconds")
		s.hm.predumpTotal = s.reg.Histogram("sched.predump.total.seconds")
		s.hm.restoreLocal = s.reg.Counter("sched.policy.restore.local")
		s.hm.restoreRemote = s.reg.Counter("sched.policy.restore.remote")
		for a := core.ActionKill; a <= core.ActionCheckpointIncremental; a++ {
			//lint:ignore metricname the suffix is a closed PreemptAction enum, one counter per verdict
			s.hm.decision[a] = s.reg.Counter("sched.policy.decision." + a.String())
		}
	}

	for i := range jobs {
		spec := &jobs[i]
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("sched: %w", err)
		}
		j := &jobRT{spec: spec, remaining: len(spec.Tasks)}
		s.jobs = append(s.jobs, j)
		for k := range spec.Tasks {
			ts := &spec.Tasks[k]
			if !ts.Demand.Fits(cfg.NodeCapacity) {
				return nil, fmt.Errorf("sched: task %v demand %v exceeds node capacity %v", ts.ID, ts.Demand, cfg.NodeCapacity)
			}
			t := &taskRT{spec: ts, job: j, remaining: ts.Duration, index: -1}
			s.engine.At(ts.Submit, func(now sim.Time) {
				s.enqueue(t, now)
				s.requestSchedule(now)
			})
		}
	}

	for _, f := range cfg.NodeFailures {
		f := f
		s.engine.At(sim.Time(f.At), func(now sim.Time) {
			s.failNode(f, now)
		})
	}
	s.startSampler()

	end := s.engine.Run()
	s.res.Makespan = time.Duration(end)
	s.res.Decisions = s.decisions
	s.res.EventsFired = s.engine.Fired()
	for _, n := range s.nodes {
		n.settleEnergy(end)
		s.res.EnergyKWh += n.meter.KWh()
		s.res.IOBusyHours += n.device.BusyTime().Hours()
	}
	return s.res, nil
}

func (s *Simulator) enqueue(t *taskRT, now sim.Time) {
	t.phase = phaseQueued
	t.queuedAt = now
	t.seq = s.seq
	s.seq++
	s.queue.push(t)
}

// requestSchedule coalesces multiple schedule triggers at one instant into
// a single pass.
func (s *Simulator) requestSchedule(now sim.Time) {
	if s.schedulePending {
		return
	}
	s.schedulePending = true
	s.engine.At(now, func(t sim.Time) {
		s.schedulePending = false
		s.trySchedule(t)
	})
}

// popBatch removes up to ScanLimit tasks from the pending queue and
// orders them by the active discipline: heap (priority) order as popped,
// most-underserved user first for fair share, largest band deficit first
// for capacity.
func (s *Simulator) popBatch() []*taskRT {
	limit := s.cfg.ScanLimit
	batch := s.batchScratch[:0]
	for len(s.queue) > 0 && len(batch) < limit {
		batch = append(batch, s.queue.pop())
	}
	s.batchScratch = batch
	switch s.cfg.Discipline {
	case DisciplineFairShare:
		sort.SliceStable(batch, func(i, j int) bool {
			si, sj := s.shareOf(userOf(batch[i])), s.shareOf(userOf(batch[j]))
			return si < sj
		})
	case DisciplineCapacity:
		deficit := func(t *taskRT) float64 {
			b := cluster.BandOf(t.spec.Priority)
			return s.cfg.CapacityGuarantees[b] - s.bandShare(b)
		}
		sort.SliceStable(batch, func(i, j int) bool {
			return deficit(batch[i]) > deficit(batch[j])
		})
	}
	return batch
}

// trySchedule walks the pending queue in discipline order, placing what
// fits and preempting for what does not (policy permitting).
func (s *Simulator) trySchedule(now sim.Time) {
	var (
		skipped = s.skipScratch[:0]
		// failed holds demands that could not be placed this pass; any
		// later task dominating one of them cannot place either, so its
		// node scan is skipped. Capped small: membership tests must stay
		// cheaper than the scans they avoid.
		failed []cluster.Resources
	)
	dominated := func(d cluster.Resources) bool {
		for _, f := range failed {
			if f.CPUMillis <= d.CPUMillis && f.MemBytes <= d.MemBytes {
				return true
			}
		}
		return false
	}
	for _, t := range s.popBatch() {
		placed := false
		if !dominated(t.spec.Demand) {
			placed = s.place(t, now)
			if !placed && len(failed) < 8 {
				failed = append(failed, t.spec.Demand)
			}
		}
		if placed {
			// Placement may have consumed capacity a previously failed
			// demand was measured against, but a successful placement
			// never invalidates a negative result, so `failed` stands.
			continue
		}
		// A task with a standing reservation is already waiting for its
		// victims' dumps to drain; do not preempt more work for it. Under
		// priority scheduling the priority histogram rejects hopeless
		// preemption attempts without scanning nodes.
		feasible := s.cfg.Discipline != DisciplinePriority || s.anyRunningBelow(t.spec.Priority)
		if t.reservedOn == nil && s.cfg.Policy != core.PolicyWait &&
			feasible && s.preemptFor(t, now) {
			// Kill-based vacating frees resources synchronously; retry at
			// once so backfilling tasks cannot steal them.
			if s.place(t, now) {
				continue
			}
		}
		skipped = append(skipped, t)
	}
	for _, t := range skipped {
		s.queue.push(t)
	}
	s.skipScratch = skipped[:0]
}

// reserve parks t's demand on n until t is placed.
func (s *Simulator) reserve(t *taskRT, n *node) {
	t.reservedOn = n
	n.reserved = n.reserved.Add(t.spec.Demand)
	n.touch()
}

// unreserve drops t's reservation, if any.
func (s *Simulator) unreserve(t *taskRT) {
	n := t.reservedOn
	if n == nil {
		return
	}
	n.reserved = n.reserved.Sub(t.spec.Demand)
	if n.reserved.Negative() {
		n.reserved = cluster.Resources{}
	}
	t.reservedOn = nil
	n.touch()
}

// place starts t on a node with free capacity, restoring from its
// checkpoint when one exists. It reports whether placement happened.
func (s *Simulator) place(t *taskRT, now sim.Time) bool {
	target := s.pickNode(t, now)
	if target == nil {
		return false
	}
	s.unreserve(t)
	target.alloc(now, t.spec.Demand)
	s.account(t, +1)
	target.running[t.spec.ID] = t
	t.node = target
	s.decisions++
	s.inFlight++
	s.probe(ProbePlace, t.spec.ID, target.id, now)

	if t.hasCheckpoint {
		s.startRestore(t, target, now)
		if t.failedOver {
			s.res.FailureRestores++
			t.failedOver = false
		}
		return true
	}
	if t.failedOver {
		s.res.FailureRestarts++
		t.failedOver = false
	}
	s.startRun(t, now)
	return true
}

// pickNode chooses a node with capacity for t. Checkpointed tasks prefer
// their image's home node when Algorithm 2 says local is cheaper
// (adaptive policy only).
func (s *Simulator) pickNode(t *taskRT, now sim.Time) *node {
	// The index answers the first-fit query over generic availability; the
	// one node where a task sees more than that — the node holding its own
	// preemption reservation — is checked directly, and the lower ID wins,
	// exactly as the linear availableFor scan would have resolved it.
	var firstFit *node
	d := t.spec.Demand
	if i := s.nodeIdx.firstFit(d.CPUMillis, d.MemBytes); i >= 0 {
		firstFit = s.nodes[i]
	}
	if r := t.reservedOn; r != nil && (firstFit == nil || r.id < firstFit.id) && d.Fits(r.availableFor(t)) {
		firstFit = r
	}
	if firstFit == nil || !t.hasCheckpoint || s.cfg.Policy != core.PolicyAdaptive ||
		s.cfg.DisableRestorePlacement {
		return firstFit
	}
	local := t.ckptNode
	if local == nil || !t.spec.Demand.Fits(local.availableFor(t)) {
		return firstFit
	}
	if firstFit == local {
		return local
	}
	rc := core.RestoreCosts{
		FootprintBytes: t.spec.MemFootprint,
		LocalDev:       local.device,
		RemoteDev:      firstFit.device,
		NetBandwidth:   s.cfg.NetBandwidth,
	}
	if core.DecideRestore(rc, now) == core.RestoreLocal {
		return local
	}
	return firstFit
}

// startRun begins (or resumes) useful execution at now.
func (s *Simulator) startRun(t *taskRT, now sim.Time) {
	t.phase = phaseRunning
	s.markRunning(t)
	t.attemptStart = now
	remaining := t.remaining
	t.completion = s.engine.Schedule(remaining, func(end sim.Time) {
		s.finishTask(t, end)
	})
}

// startRestore charges the image read (plus network for remote) before the
// task resumes execution.
func (s *Simulator) startRestore(t *taskRT, target *node, now sim.Time) {
	t.phase = phaseRestoring
	remote := target != t.ckptNode
	var transfer time.Duration
	if remote {
		transfer = time.Duration(float64(t.spec.MemFootprint) / s.cfg.NetBandwidth * float64(time.Second))
		s.res.RemoteRestores++
	}
	s.res.Restores++
	var start, done sim.Time
	if !remote && target.device.Kind() == storage.NVRAM {
		// Byte-addressable local resume: pages are remapped from
		// persistent memory, not read back through a file system.
		start, done = target.device.Reserve(now, target.device.ReadTime(0))
	} else {
		start, done = target.device.ReserveRead(now+transfer, t.spec.MemFootprint)
	}
	s.recordRestore(remote, transfer, now, start, done)
	s.journalRestore(t, target, remote, now, done)
	overhead := time.Duration(done - now)
	s.chargeOverhead(t, overhead)
	s.engine.At(done, func(at sim.Time) {
		// The target may have failed during the read; the fence already
		// requeued t, and this resume must not resurrect it there.
		if t.phase != phaseRestoring || t.node != target {
			return
		}
		s.startRun(t, at)
	})
}

// finishTask completes t, releasing resources and recording metrics.
func (s *Simulator) finishTask(t *taskRT, now sim.Time) {
	cores := float64(t.spec.Demand.CPUMillis) / 1000
	s.res.UsefulCPUHours += cores * t.spec.Duration.Hours()
	s.unmarkRunning(t)
	t.phase = phaseDone
	t.completion = nil
	s.journalTaskDone(t, now)
	s.removeImages(t)
	s.inFlight--
	s.probe(ProbeFinish, t.spec.ID, t.node.id, now)
	t.node.release(now, t.spec.Demand)
	s.account(t, -1)
	delete(t.node.running, t.spec.ID)
	t.node = nil
	s.res.TasksCompleted++

	t.job.remaining--
	if t.job.remaining == 0 {
		t.job.finish = now
		resp := time.Duration(now - t.job.spec.Submit).Seconds()
		s.res.JobResponseSec[t.job.spec.Band()].Add(resp)
		s.res.JobResponseAllSec.Add(resp)
		user := userOf(t)
		if s.res.JobResponseByUser[user] == nil {
			s.res.JobResponseByUser[user] = &Dist{}
		}
		s.res.JobResponseByUser[user].Add(resp)
	}
	s.requestSchedule(now)
}

// chargeOverhead books checkpoint/restore time as wasted, overhead CPU.
func (s *Simulator) chargeOverhead(t *taskRT, d time.Duration) {
	cores := float64(t.spec.Demand.CPUMillis) / 1000
	s.res.WastedCPUHours += cores * d.Hours()
	s.res.OverheadCPUHours += cores * d.Hours()
}

// recordDump splits one checkpoint write into queue/write/total latencies:
// now is the enqueue instant, start when the device begins the write, done
// its completion. All three are virtual time.
func (s *Simulator) recordDump(now, start, done sim.Time) {
	if s.reg == nil {
		return
	}
	s.hm.dumpQueue.ObserveDuration(time.Duration(start - now))
	s.hm.dumpWrite.ObserveDuration(time.Duration(done - start))
	s.hm.dumpTotal.ObserveDuration(time.Duration(done - now))
}

// recordRestore mirrors recordDump for the read side and counts the
// Algorithm 2 placement outcome. transfer is the network shipping time
// preceding the read when the image is remote.
func (s *Simulator) recordRestore(remote bool, transfer time.Duration, now, start, done sim.Time) {
	if s.reg == nil {
		return
	}
	if remote {
		s.hm.restoreRemote.Inc()
		s.hm.restoreTransfer.ObserveDuration(transfer)
	} else {
		s.hm.restoreLocal.Inc()
	}
	s.hm.restoreQueue.ObserveDuration(time.Duration(start-now) - transfer)
	s.hm.restoreRead.ObserveDuration(time.Duration(done - start))
	s.hm.restoreTotal.ObserveDuration(time.Duration(done - now))
}

// preemptFor vacates lower-priority work for t. It reports whether any
// preemption was initiated.
func (s *Simulator) preemptFor(t *taskRT, now sim.Time) bool {
	target, victims := s.chooseVictims(t, now)
	if target == nil {
		return false
	}
	if s.rec != nil {
		s.recordSelection(t, target, s.scoreCandidates(target, t, victims, now), now)
	}
	s.reserve(t, target)
	for _, v := range victims {
		s.preemptTask(v, now)
	}
	s.res.Preemptions += len(victims)
	return true
}

// chooseVictims finds a node where evicting discipline-eligible tasks
// makes room for t, returning the victim set. Under the adaptive policy
// the node and victims minimize checkpoint cost (cost-aware eviction);
// otherwise the first eligible node and a naive priority-ordered victim
// set are used, mirroring stock YARN.
func (s *Simulator) chooseVictims(t *taskRT, now sim.Time) (*node, []*taskRT) {
	adaptive := s.cfg.Policy == core.PolicyAdaptive && !s.cfg.NaiveVictimSelection
	var (
		bestNode *node
		bestSet  []*taskRT
		bestCost time.Duration
	)
	// Under the priority discipline a node can only yield victims if some
	// task with priority strictly below t's is running there; the per-node
	// priority mask answers that in one AND, skipping the running-map walk
	// on (typically) almost every node.
	var belowMask uint16
	maskable := s.cfg.Discipline != DisciplineFairShare && s.cfg.Discipline != DisciplineCapacity
	if maskable {
		belowMask = 1<<uint(t.spec.Priority) - 1
	}
	for _, n := range s.nodes {
		if n.down {
			continue
		}
		if maskable && n.prioMask&belowMask == 0 {
			continue
		}
		cands := s.preemptableOn(n, t, now)
		if len(cands) == 0 {
			continue
		}
		need := t.spec.Demand.Sub(n.availableFor(t))
		if need.CPUMillis < 0 {
			need.CPUMillis = 0
		}
		if need.MemBytes < 0 {
			need.MemBytes = 0
		}
		set, cost, ok := s.selectOn(n, cands, need, now, adaptive)
		if !ok {
			continue
		}
		if !adaptive {
			return n, set
		}
		if bestNode == nil || cost < bestCost {
			bestNode, bestSet, bestCost = n, set, cost
		}
	}
	return bestNode, bestSet
}

// preemptableOn lists running tasks on n that t may evict under the
// active discipline, in deterministic task-ID order. The returned slice
// aliases a per-simulator scratch buffer valid until the next call.
func (s *Simulator) preemptableOn(n *node, t *taskRT, now sim.Time) []*taskRT {
	out := s.candScratch[:0]
	for _, v := range n.running {
		if v.phase == phaseRunning && !v.preCopying && s.canPreempt(t, v) {
			out = append(out, v)
		}
	}
	s.candScratch = out[:0]
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].spec.ID, out[j].spec.ID
		if a.Job != b.Job {
			return a.Job < b.Job
		}
		return a.Index < b.Index
	})
	return out
}

// selectOn picks victims on one node covering need. Adaptive mode uses
// cost-aware selection (core.SelectVictims); baseline mode takes the
// lowest-priority tasks in order.
func (s *Simulator) selectOn(n *node, cands []*taskRT, need cluster.Resources, now sim.Time, adaptive bool) ([]*taskRT, time.Duration, bool) {
	if adaptive {
		byID := make(map[cluster.TaskID]*taskRT, len(cands))
		coreCands := make([]core.Candidate, len(cands))
		for i, v := range cands {
			byID[v.spec.ID] = v
			coreCands[i] = s.candidateFor(v, now)
		}
		sel, ok := core.SelectVictims(coreCands, need, now, func(core.Candidate) *storage.Device { return n.device })
		if !ok {
			return nil, 0, false
		}
		var cost time.Duration
		set := make([]*taskRT, len(sel))
		for i, c := range sel {
			set[i] = byID[c.Task]
			cost += core.CheckpointOverhead(c, n.device, now)
		}
		return set, cost, true
	}
	// Baseline: lowest priority first, insertion order within priority.
	sort.SliceStable(cands, func(i, j int) bool {
		return cands[i].spec.Priority < cands[j].spec.Priority
	})
	var (
		freed cluster.Resources
		set   []*taskRT
	)
	for _, v := range cands {
		if need.Fits(freed) {
			break
		}
		set = append(set, v)
		freed = freed.Add(v.spec.Demand)
	}
	if !need.Fits(freed) {
		return nil, 0, false
	}
	return set, 0, true
}

// candidateFor builds the Algorithm 1 input for a victim, honoring the
// incremental-checkpointing ablation flag.
func (s *Simulator) candidateFor(v *taskRT, now sim.Time) core.Candidate {
	c := v.candidate(now, s.cfg.DirtyFloor)
	if s.cfg.DisableIncremental {
		c.HasCheckpoint = false
	}
	return c
}

// preemptTask applies Algorithm 1 to one victim.
func (s *Simulator) preemptTask(v *taskRT, now sim.Time) {
	n := v.node
	v.evictions++
	s.decisions++
	cand := s.candidateFor(v, now)
	action := core.DecidePreemption(s.cfg.Policy, cand, n.device, now)
	s.hm.decision[action].Inc()
	s.recordDecision(v, n, action, cand, now)

	if !action.IsCheckpoint() {
		// Kill: unsaved progress is lost; resources free immediately.
		s.engine.Cancel(v.completion)
		v.completion = nil
		s.unmarkRunning(v)
		cores := float64(v.spec.Demand.CPUMillis) / 1000
		s.res.Kills++
		s.res.WastedCPUHours += cores * v.unsavedProgress(now).Hours()
		s.inFlight--
		s.probe(ProbeKill, v.spec.ID, n.id, now)
		n.release(now, v.spec.Demand)
		s.account(v, -1)
		delete(n.running, v.spec.ID)
		v.node = nil
		s.enqueue(v, now)
		s.requestSchedule(now)
		return
	}

	s.probe(ProbeCheckpoint, v.spec.ID, n.id, now)
	s.res.Checkpoints++
	if action == core.ActionCheckpointIncremental {
		s.res.IncrementalCheckpoints++
	}
	if s.cfg.PreCopy {
		s.startPreCopy(v, cand, now)
		return
	}

	// Stop-and-copy checkpoint: freeze now, bank progress, hold resources
	// until the dump drains through the node's sequential checkpoint
	// queue.
	s.engine.Cancel(v.completion)
	v.completion = nil
	s.unmarkRunning(v)
	progress := v.unsavedProgress(now)
	v.phase = phaseCheckpointing
	v.remaining -= progress
	if v.remaining < 0 {
		v.remaining = 0
	}
	dumpBytes := cand.DumpBytes()
	start, done := n.device.ReserveWrite(now, dumpBytes)
	s.recordDump(now, start, done)
	var dumpFlags uint32
	if action == core.ActionCheckpointIncremental {
		dumpFlags |= obs.FlagIncremental
	}
	s.journalDump(v, dumpBytes, dumpFlags, now, done)
	s.chargeOverhead(v, time.Duration(done-now))
	s.trackImage(v, action, dumpBytes)
	s.engine.At(done, func(at sim.Time) {
		s.vacate(v, n, at)
	})
}

// vacate finalizes a checkpointed victim: its image is durable, its
// resources return to the node, and it re-enters the pending queue.
func (s *Simulator) vacate(v *taskRT, n *node, at sim.Time) {
	v.hasCheckpoint = true
	v.ckptNode = n
	s.inFlight--
	s.probe(ProbeVacate, v.spec.ID, n.id, at)
	n.release(at, v.spec.Demand)
	s.account(v, -1)
	delete(n.running, v.spec.ID)
	v.node = nil
	s.enqueue(v, at)
	s.requestSchedule(at)
}

// startPreCopy implements pre-copy checkpointing: the bulk dump is written
// while the victim keeps running (its progress during the window is
// useful, not waste); at the end of the window the victim freezes and only
// the pages dirtied meanwhile are dumped.
func (s *Simulator) startPreCopy(v *taskRT, cand core.Candidate, now sim.Time) {
	n := v.node
	s.res.PreCopies++
	v.preCopying = true
	preBytes := cand.DumpBytes()
	preStart, preDone := n.device.ReserveWrite(now, preBytes)
	s.hm.predumpQueue.ObserveDuration(time.Duration(preStart - now))
	s.hm.predumpTotal.ObserveDuration(time.Duration(preDone - now))
	s.journalPreDump(v, preBytes, now, preDone)
	preAction := core.ActionCheckpointFull
	if cand.HasCheckpoint {
		preAction = core.ActionCheckpointIncremental
	}
	s.trackImage(v, preAction, preBytes)

	s.engine.At(preDone, func(at sim.Time) {
		if v.phase != phaseRunning || !v.preCopying {
			// The victim completed during the pre-copy window; its
			// resources are already free and its images reclaimed.
			return
		}
		v.preCopying = false
		s.engine.Cancel(v.completion)
		v.completion = nil
		s.unmarkRunning(v)
		// All progress up to the freeze is banked — including the
		// pre-copy window, which is the whole point.
		progress := v.unsavedProgress(at)
		v.phase = phaseCheckpointing
		v.remaining -= progress
		if v.remaining < 0 {
			v.remaining = 0
		}
		// The freeze dumps only pages written during the window.
		window := time.Duration(at - now)
		frac := float64(window) / float64(v.spec.Duration)
		if frac > 1 {
			frac = 1
		}
		delta := int64(frac * float64(v.spec.MemFootprint))
		start, done := n.device.ReserveWrite(at, delta)
		s.recordDump(at, start, done)
		s.journalDump(v, delta, obs.FlagIncremental|obs.FlagPreCopy, at, done)
		s.chargeOverhead(v, time.Duration(done-at))
		s.trackImage(v, core.ActionCheckpointIncremental, delta)
		s.engine.At(done, func(end sim.Time) {
			s.vacate(v, n, end)
		})
	})
}

// trackImage maintains the storage-overhead high-water mark.
func (s *Simulator) trackImage(v *taskRT, action core.PreemptAction, dumpBytes int64) {
	if action == core.ActionCheckpointFull {
		s.totalImageBytes -= v.imageBytes
		v.imageBytes = dumpBytes
		s.totalImageBytes += dumpBytes
	} else {
		v.imageBytes += dumpBytes
		s.totalImageBytes += dumpBytes
	}
	if s.totalImageBytes > s.res.PeakImageBytes {
		s.res.PeakImageBytes = s.totalImageBytes
	}
}

func (s *Simulator) removeImages(v *taskRT) {
	s.totalImageBytes -= v.imageBytes
	v.imageBytes = 0
	v.hasCheckpoint = false
	v.ckptNode = nil
}
