package sched

import (
	"sort"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
)

// This file applies Config.NodeFailures to the trace simulator. The model
// is deliberately simpler than the yarn layer's heartbeat/liveness loop:
// an outage takes effect the instant it fires — running tasks are fenced,
// their unsaved progress becomes failure waste, and they re-enter the
// pending queue where normal placement resumes them from a surviving
// checkpoint image (failure restore) or from scratch (failure restart).
// Checkpoint images survive their home node's death — the store they
// model is DFS-replicated — so only the restore locality is lost, never
// the banked progress.

// failNode takes one machine out at its seeded time.
func (s *Simulator) failNode(f NodeFailure, now sim.Time) {
	n := s.nodes[f.Node]
	if n.down {
		return
	}
	n.down = true
	n.touch()
	n.settleEnergy(now)
	s.res.NodeFailures++
	s.journalNodeDown(n, now)
	s.probe(ProbeNodeDown, cluster.TaskID{}, n.id, now)
	for _, id := range downSortedRunning(n) {
		t, ok := n.running[id]
		if !ok {
			continue
		}
		s.fenceTask(t, n, now)
	}
	// Waiters parked on the dead node's capacity must not keep waiting
	// for dumps that will never free it.
	for _, t := range s.queue {
		if t.reservedOn == n {
			s.unreserve(t)
		}
	}
	n.reserved = cluster.Resources{}
	// Shares are computed against live capacity.
	s.totalCap = s.totalCap.Sub(n.cap)
	if f.RecoverAfter > 0 {
		s.engine.At(now+sim.Time(f.RecoverAfter), func(at sim.Time) {
			s.recoverNode(n, at)
		})
	}
	s.requestSchedule(now)
}

// fenceTask evicts one task from a dead node. A running task loses its
// attempt-local progress; a restoring task loses only the read in flight
// (its image is intact); a checkpointing task is left alone — its dump is
// already draining to replicated storage and vacate will requeue it.
func (s *Simulator) fenceTask(t *taskRT, n *node, now sim.Time) {
	switch t.phase {
	case phaseCheckpointing:
		return
	case phaseRestoring:
		s.inFlight--
		s.probe(ProbeFence, t.spec.ID, n.id, now)
		n.release(now, t.spec.Demand)
		s.account(t, -1)
		delete(n.running, t.spec.ID)
		t.node = nil
		s.rescheduleFailed(t, n, 0, now)
	case phaseRunning:
		lost := t.unsavedProgress(now)
		s.engine.Cancel(t.completion)
		t.completion = nil
		t.preCopying = false
		s.unmarkRunning(t)
		cores := float64(t.spec.Demand.CPUMillis) / 1000
		s.res.WastedCPUHours += cores * lost.Hours()
		s.res.FailureWasteHours += cores * lost.Hours()
		s.inFlight--
		s.probe(ProbeFence, t.spec.ID, n.id, now)
		n.release(now, t.spec.Demand)
		s.account(t, -1)
		delete(n.running, t.spec.ID)
		t.node = nil
		s.rescheduleFailed(t, n, lost, now)
	}
}

// rescheduleFailed books the displacement and requeues t.
func (s *Simulator) rescheduleFailed(t *taskRT, n *node, lost time.Duration, now sim.Time) {
	t.failedOver = true
	s.res.TasksRescheduled++
	s.journalTaskRescheduled(t, n, lost, now)
	s.enqueue(t, now)
}

// recoverNode brings a failed machine back into service.
func (s *Simulator) recoverNode(n *node, at sim.Time) {
	if !n.down {
		return
	}
	n.down = false
	n.touch()
	s.res.NodeRecoveries++
	s.totalCap = s.totalCap.Add(n.cap)
	s.journalNodeRecovered(n, at)
	s.probe(ProbeNodeUp, cluster.TaskID{}, n.id, at)
	s.requestSchedule(at)
}

// downSortedRunning snapshots a node's running-task IDs in deterministic
// order, so fencing visits tasks identically across runs.
func downSortedRunning(n *node) []cluster.TaskID {
	ids := make([]cluster.TaskID, 0, len(n.running))
	for id := range n.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Job != ids[j].Job {
			return ids[i].Job < ids[j].Job
		}
		return ids[i].Index < ids[j].Index
	})
	return ids
}
