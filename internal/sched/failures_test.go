package sched

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

// failScenario mirrors the yarn acceptance workload: job 1 (priority 1)
// pins node 0 for six minutes, job 0 (priority 0) runs on node 1 where a
// high-priority arrival checkpoint-preempts it at t=180s, and then node 1
// dies at t=270s under the resumed task.
func failScenario() []cluster.JobSpec {
	mk := func(id cluster.JobID, prio cluster.Priority, submit, dur time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: prio, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: id},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     dur,
				Submit:       submit,
			}},
		}
	}
	return []cluster.JobSpec{
		mk(0, 0, 0, 4*time.Minute),
		mk(1, 1, 0, 6*time.Minute),
		mk(2, 10, 3*time.Minute, time.Minute),
	}
}

func failConfig(policy core.Policy) Config {
	cfg := DefaultConfig(policy, storage.NVM)
	cfg.Nodes = 2
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(8)}
	cfg.NodeFailures = []NodeFailure{{Node: 1, At: 270 * time.Second}}
	return cfg
}

// TestNodeFailureRestoresFromCheckpoint: the trace simulator's seeded
// outage destroys only attempt-local progress when the victim holds a
// checkpoint image, and strictly more when the control run killed it.
func TestNodeFailureRestoresFromCheckpoint(t *testing.T) {
	chk, err := Run(failConfig(core.PolicyCheckpoint), failScenario())
	if err != nil {
		t.Fatal(err)
	}
	kill, err := Run(failConfig(core.PolicyKill), failScenario())
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range map[string]*Result{"checkpoint": chk, "kill": kill} {
		if r.NodeFailures != 1 {
			t.Errorf("%s: node failures = %d, want 1", name, r.NodeFailures)
		}
		if r.TasksRescheduled != 1 {
			t.Errorf("%s: tasks rescheduled = %d, want 1", name, r.TasksRescheduled)
		}
		if r.TasksCompleted != 3 {
			t.Errorf("%s: completed %d of 3 tasks", name, r.TasksCompleted)
		}
	}
	if chk.FailureRestores != 1 || chk.FailureRestarts != 0 {
		t.Errorf("checkpoint run: restores=%d restarts=%d, want image recovery",
			chk.FailureRestores, chk.FailureRestarts)
	}
	if kill.FailureRestores != 0 || kill.FailureRestarts != 1 {
		t.Errorf("kill control: restores=%d restarts=%d, want restart-only recovery",
			kill.FailureRestores, kill.FailureRestarts)
	}
	if chk.FailureWasteHours <= 0 {
		t.Error("failure cost no work in the checkpoint run")
	}
	if chk.FailureWasteHours >= kill.FailureWasteHours {
		t.Errorf("work lost to failure: checkpoint %.6f >= kill control %.6f core-hours",
			chk.FailureWasteHours, kill.FailureWasteHours)
	}
	if chk.WastedCPUHours >= kill.WastedCPUHours {
		t.Errorf("total waste: checkpoint %.6f >= kill control %.6f core-hours",
			chk.WastedCPUHours, kill.WastedCPUHours)
	}
	if chk.FailureWasteHours > chk.WastedCPUHours {
		t.Errorf("failure waste %.6f exceeds total waste %.6f",
			chk.FailureWasteHours, chk.WastedCPUHours)
	}
}

// TestNodeFailureRecovery reboots the failed machine: displaced work
// waits out the outage (the surviving node is full) and completes on the
// recovered node.
func TestNodeFailureRecovery(t *testing.T) {
	cfg := DefaultConfig(core.PolicyKill, storage.SSD)
	cfg.Nodes = 2
	cfg.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(2), MemBytes: cluster.GiB(8)}
	cfg.NodeFailures = []NodeFailure{{Node: 0, At: time.Minute, RecoverAfter: 2 * time.Minute}}
	var jobs []cluster.JobSpec
	for i := 0; i < 4; i++ {
		jobs = append(jobs, cluster.JobSpec{
			ID: cluster.JobID(i),
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: cluster.JobID(i)},
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     5 * time.Minute,
			}},
		})
	}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeFailures != 1 || r.NodeRecoveries != 1 {
		t.Errorf("failures=%d recoveries=%d, want 1/1", r.NodeFailures, r.NodeRecoveries)
	}
	if r.TasksRescheduled != 2 {
		t.Errorf("tasks rescheduled = %d, want the 2 fenced off node 0", r.TasksRescheduled)
	}
	if r.FailureRestarts != 2 {
		t.Errorf("failure restarts = %d, want 2 (no checkpoints existed)", r.FailureRestarts)
	}
	if r.TasksCompleted != 4 {
		t.Errorf("completed %d of 4 tasks", r.TasksCompleted)
	}
	// Each fenced task had run for the minute before the outage.
	want := 2 * (1.0 / 60)
	if r.FailureWasteHours < want-1e-9 || r.FailureWasteHours > want+1e-9 {
		t.Errorf("failure waste = %.6f core-hours, want %.6f", r.FailureWasteHours, want)
	}
}

// TestNodeFailureDeterminism re-runs the outage scenario and demands
// identical books.
func TestNodeFailureDeterminism(t *testing.T) {
	a, err := Run(failConfig(core.PolicyCheckpoint), failScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(failConfig(core.PolicyCheckpoint), failScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.NodeFailures != b.NodeFailures ||
		a.TasksRescheduled != b.TasksRescheduled ||
		a.FailureWasteHours != b.FailureWasteHours ||
		a.WastedCPUHours != b.WastedCPUHours {
		t.Errorf("non-deterministic failure run: %+v vs %+v", a, b)
	}
}

// TestNodeFailureValidation exercises the new Config checks.
func TestNodeFailureValidation(t *testing.T) {
	bad := [][]NodeFailure{
		{{Node: 2, At: time.Minute}},
		{{Node: -1, At: time.Minute}},
		{{Node: 0, At: -time.Second}},
		{{Node: 0, At: time.Minute, RecoverAfter: -time.Second}},
	}
	for i, fs := range bad {
		cfg := DefaultConfig(core.PolicyKill, storage.SSD)
		cfg.Nodes = 2
		cfg.NodeFailures = fs
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad NodeFailures %d accepted", i)
		}
	}
}
