package density

import (
	"os"
	"testing"
)

// benchCell runs one density cell per b.N iteration and reports the
// sustained rates benchdiff gates on: decisions_per_sec is the
// BENCH_scale.json floor metric (higher is better), events_per_sec the
// raw event-loop throughput.
func benchCell(b *testing.B, sp Spec) {
	b.ReportAllocs()
	var decPerSec, evPerSec float64
	for i := 0; i < b.N; i++ {
		r, err := Run(sp)
		if err != nil {
			b.Fatal(err)
		}
		if r.Timing != nil {
			decPerSec += r.Timing.DecisionsPerSec
			evPerSec += r.Timing.EventsPerSec
		}
	}
	b.ReportMetric(decPerSec/float64(b.N), "decisions_per_sec")
	b.ReportMetric(evPerSec/float64(b.N), "events_per_sec")
}

// BenchmarkDensity1k is the CI-sized cell: 1k virtual nodes, 50k task
// events. It is the scale-smoke gate in .github/workflows/ci.yml.
func BenchmarkDensity1k(b *testing.B) {
	benchCell(b, Spec{Name: "1k-nodes", Seed: 1, Nodes: 1_000, Tasks: 50_000})
}

// The 5k and 10k cells take minutes at the pre-optimization throughput;
// they only run when DENSITY_FULL=1 (the BENCH_scale.json recording
// path — see DESIGN.md §16).
func fullOnly(b *testing.B) {
	if os.Getenv("DENSITY_FULL") == "" {
		b.Skip("set DENSITY_FULL=1 to run the large density cells")
	}
}

func BenchmarkDensity5k(b *testing.B) {
	fullOnly(b)
	benchCell(b, Spec{Name: "5k-nodes", Seed: 1, Nodes: 5_000, Tasks: 500_000})
}

// BenchmarkDensity10k is the headline config: 10k virtual nodes, ~1M
// task events.
func BenchmarkDensity10k(b *testing.B) {
	fullOnly(b)
	benchCell(b, Spec{Name: "10k-nodes", Seed: 1, Nodes: 10_000, Tasks: 1_000_000})
}
