// Package density is the scheduler's scale harness: a seeded synthetic
// cluster/workload generator and a runner that measures sustained
// scheduling decisions/sec, tasks in flight, and rate-over-time samples
// at thousands of virtual nodes and up to millions of task events — the
// kubernetes scheduler_perf idea ("schedule 30k pods on 1000 fake nodes,
// print the scheduling rate every second") applied to the preemptive
// checkpoint/restore simulator.
//
// Everything the generator emits is a pure function of the Spec: two runs
// of the same cell produce byte-identical deterministic sections at any
// worker-pool parallelism, which keeps the §11 determinism contract
// enforceable on the density workload.
package density

import (
	"fmt"
	"math"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

// Spec configures one density cell: the virtual cluster, the synthetic
// workload, and the sampling cadence. Zero values take scale-appropriate
// defaults from withDefaults.
type Spec struct {
	// Name labels the cell in reports ("10k-nodes").
	Name string
	// Seed drives every stochastic choice the generator makes.
	Seed int64
	// Nodes is the virtual machine count; NodeCapacity the per-machine
	// resources (default 16 cores / 64 GiB).
	Nodes        int
	NodeCapacity cluster.Resources
	// Tasks is the total task-event count (~1M at the headline config).
	Tasks int
	// Jobs is the job count tasks are grouped into; sizes follow a Zipf
	// split so a few large jobs hold most tasks. Default Tasks/250.
	Jobs int
	// LoadFactor is offered load over cluster drain capacity; the
	// submission span is sized so the arrival rate sustains it. Values
	// above 1 keep a standing backlog and exercise preemption. Default
	// 1.2.
	LoadFactor float64
	// TaskDuration is the mean task compute time (default 3m); actual
	// durations are bounded-Pareto distributed around it.
	TaskDuration time.Duration
	// HighShare and MidShare are the fractions of tasks carried by
	// production (priority 10) and middle (priority 5) jobs; the rest is
	// free-band (priority 0). Defaults 0.10 and 0.30.
	HighShare, MidShare float64
	// MeanFootprint is the mean of the lognormal checkpoint-size
	// distribution (default 1.5 GiB); FootprintSigma its log-space sigma
	// (default 0.5). Footprints clamp to [64 MiB, task memory demand].
	MeanFootprint  int64
	FootprintSigma float64
	// TaskDemand is the per-task reservation (default 1 core / 4 GiB).
	TaskDemand cluster.Resources
	// Policy and Storage select the preemption policy (default basic
	// checkpoint) and the per-node checkpoint device (default SSD).
	Policy  core.Policy
	Storage storage.Kind
	// SampleEvery is the virtual-clock sampling period (default 30s);
	// MaxSamples caps the retained rate-over-time series (default 256,
	// kept by stride-doubling decimation).
	SampleEvery time.Duration
	MaxSamples  int
}

// withDefaults fills zero fields with the scale-appropriate defaults.
func (sp Spec) withDefaults() Spec {
	if sp.Nodes == 0 {
		sp.Nodes = 1000
	}
	if sp.NodeCapacity == (cluster.Resources{}) {
		sp.NodeCapacity = cluster.Resources{CPUMillis: cluster.Cores(16), MemBytes: cluster.GiB(64)}
	}
	if sp.Tasks == 0 {
		sp.Tasks = 50_000
	}
	if sp.Jobs == 0 {
		sp.Jobs = sp.Tasks / 250
		if sp.Jobs < 4 {
			sp.Jobs = 4
		}
	}
	if sp.LoadFactor == 0 {
		sp.LoadFactor = 1.2
	}
	if sp.TaskDuration == 0 {
		sp.TaskDuration = 3 * time.Minute
	}
	if sp.HighShare == 0 && sp.MidShare == 0 {
		sp.HighShare, sp.MidShare = 0.10, 0.30
	}
	if sp.MeanFootprint == 0 {
		sp.MeanFootprint = int64(1.5 * float64(cluster.GiB(1)))
	}
	if sp.FootprintSigma == 0 {
		sp.FootprintSigma = 0.5
	}
	if sp.TaskDemand == (cluster.Resources{}) {
		sp.TaskDemand = cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(4)}
	}
	if sp.Policy == 0 {
		sp.Policy = core.PolicyCheckpoint
	}
	if sp.Storage == 0 {
		sp.Storage = storage.SSD
	}
	if sp.SampleEvery == 0 {
		sp.SampleEvery = 30 * time.Second
	}
	if sp.MaxSamples == 0 {
		sp.MaxSamples = 256
	}
	if sp.Name == "" {
		sp.Name = fmt.Sprintf("n%d-t%d", sp.Nodes, sp.Tasks)
	}
	return sp
}

// Validate rejects nonsensical cells.
func (sp Spec) Validate() error {
	sp = sp.withDefaults()
	if sp.Nodes <= 0 || sp.Tasks <= 0 || sp.Jobs <= 0 {
		return fmt.Errorf("density: non-positive nodes/tasks/jobs (%d/%d/%d)", sp.Nodes, sp.Tasks, sp.Jobs)
	}
	if sp.Jobs > sp.Tasks {
		return fmt.Errorf("density: Jobs=%d exceeds Tasks=%d", sp.Jobs, sp.Tasks)
	}
	if sp.HighShare < 0 || sp.MidShare < 0 || sp.HighShare+sp.MidShare > 1 {
		return fmt.Errorf("density: priority mix %.2f/%.2f outside the simplex", sp.HighShare, sp.MidShare)
	}
	if sp.LoadFactor <= 0 {
		return fmt.Errorf("density: non-positive load factor %v", sp.LoadFactor)
	}
	if !sp.TaskDemand.Fits(sp.NodeCapacity) {
		return fmt.Errorf("density: task demand %v exceeds node capacity %v", sp.TaskDemand, sp.NodeCapacity)
	}
	return nil
}

// span derives the submission window that sustains the configured load
// factor: offered rate = LoadFactor * slots / meanDuration, and
// span = Tasks / rate.
func (sp Spec) span() time.Duration {
	slotsCPU := sp.Nodes * int(sp.NodeCapacity.CPUMillis/sp.TaskDemand.CPUMillis)
	slotsMem := sp.Nodes * int(sp.NodeCapacity.MemBytes/sp.TaskDemand.MemBytes)
	slots := slotsCPU
	if slotsMem < slots {
		slots = slotsMem
	}
	if slots < 1 {
		slots = 1
	}
	rate := sp.LoadFactor * float64(slots) / sp.TaskDuration.Seconds()
	return time.Duration(float64(sp.Tasks) / rate * float64(time.Second))
}

// Generate expands the spec into the job list the simulator consumes.
// The same spec always yields the same jobs, bit for bit.
func Generate(sp Spec) ([]cluster.JobSpec, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	sp = sp.withDefaults()
	rng := sim.NewRNG(sp.Seed)
	span := sp.span()

	// Zipf job sizes: weight 1/k, scaled to the task total.
	sizes := make([]int, sp.Jobs)
	var wsum float64
	for k := range sizes {
		wsum += 1 / float64(k+1)
	}
	assigned := 0
	for k := range sizes {
		sizes[k] = 1 + int(float64(sp.Tasks-sp.Jobs)*(1/float64(k+1))/wsum)
		assigned += sizes[k]
	}
	for i := 0; assigned > sp.Tasks; i = (i + 1) % sp.Jobs {
		if sizes[i] > 1 {
			sizes[i]--
			assigned--
		}
	}
	sizes[0] += sp.Tasks - assigned

	// Priority assignment: fill each band's task budget walking the jobs
	// in a seeded shuffle, so large and small jobs land in every band.
	order := rng.Perm(sp.Jobs)
	highBudget := int(sp.HighShare * float64(sp.Tasks))
	midBudget := int(sp.MidShare * float64(sp.Tasks))
	prios := make([]cluster.Priority, sp.Jobs)
	for _, k := range order {
		switch {
		case highBudget > 0:
			prios[k] = 10
			highBudget -= sizes[k]
		case midBudget > 0:
			prios[k] = 5
			midBudget -= sizes[k]
		default:
			prios[k] = 0
		}
	}

	// Footprint lognormal: mean exp(mu + sigma^2/2) = MeanFootprint.
	mu := logMean(float64(sp.MeanFootprint), sp.FootprintSigma)
	minFoot := cluster.MiB(64)
	maxFoot := sp.TaskDemand.MemBytes

	jobs := make([]cluster.JobSpec, 0, sp.Jobs)
	for k := 0; k < sp.Jobs; k++ {
		prio := prios[k]
		submit := time.Duration(rng.Bounded(0, 0.9) * float64(span))
		user := fmt.Sprintf("tenant-%d", k%7)
		if prio == 10 {
			user = "production"
		}
		job := cluster.JobSpec{
			ID:       cluster.JobID(k),
			Priority: prio,
			User:     user,
			Submit:   submit,
		}
		// Production bursts arrive tightly; background jobs trickle their
		// tasks across what remains of the span.
		spread := span - submit
		if prio == 10 {
			spread = spread / 16
		}
		meanDur := sp.TaskDuration
		if prio == 10 {
			meanDur = sp.TaskDuration / 4
		}
		job.Tasks = make([]cluster.TaskSpec, sizes[k])
		for i := range job.Tasks {
			foot := int64(rng.LogNormal(mu, sp.FootprintSigma))
			if foot < minFoot {
				foot = minFoot
			}
			if foot > maxFoot {
				foot = maxFoot
			}
			dur := time.Duration(rng.Pareto(0.55*float64(meanDur), 2.0, 8*float64(meanDur)))
			job.Tasks[i] = cluster.TaskSpec{
				ID:           cluster.TaskID{Job: job.ID, Index: int32(i)},
				Priority:     prio,
				User:         user,
				Demand:       sp.TaskDemand,
				MemFootprint: foot,
				Duration:     dur,
				Submit:       submit + time.Duration(rng.Bounded(0, 1)*float64(spread)),
			}
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// logMean returns the lognormal location parameter for a target mean.
func logMean(mean, sigma float64) float64 {
	return math.Log(mean) - sigma*sigma/2
}
