package density

import (
	"strings"
	"testing"

	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

// testCells is a small mixed ladder: different seeds, policies, and
// storage devices, so the worker pool has genuinely heterogeneous work to
// interleave.
func testCells(t *testing.T) []Spec {
	tasks := 2500
	if testing.Short() {
		tasks = 800
	}
	return []Spec{
		{Name: "a", Seed: 11, Nodes: 40, Tasks: tasks},
		{Name: "b", Seed: 12, Nodes: 25, Tasks: tasks, Policy: core.PolicyAdaptive, Storage: storage.NVM},
		{Name: "c", Seed: 13, Nodes: 60, Tasks: tasks, Policy: core.PolicyKill},
		{Name: "d", Seed: 14, Nodes: 32, Tasks: tasks, Storage: storage.HDD, LoadFactor: 1.6},
	}
}

// renderStable runs the ladder at the given pool parallelism and renders
// only the deterministic fields (Timing stripped), the §11 comparison
// unit.
func renderStable(t *testing.T, parallel int) string {
	t.Helper()
	results, err := RunCells(testCells(t), parallel)
	if err != nil {
		t.Fatalf("parallel=%d: %v", parallel, err)
	}
	for _, r := range results {
		r.Timing = nil
	}
	var sb strings.Builder
	Render(&sb, results, false)
	return sb.String()
}

// TestDeterminismAcrossParallelism is the density suite's §11 contract:
// the rendered deterministic report is byte-identical whether the cells
// run sequentially or on a contended 4- or 8-worker pool. Run under
// -race, the concurrent legs also prove the worker pool shares nothing
// between engine instances.
func TestDeterminismAcrossParallelism(t *testing.T) {
	base := renderStable(t, 1)
	if !strings.Contains(base, "cell a") || !strings.Contains(base, "cell d") {
		t.Fatalf("stable render missing cells:\n%s", base)
	}
	for _, parallel := range []int{4, 8} {
		if got := renderStable(t, parallel); got != base {
			t.Errorf("parallel=%d output diverged from sequential run\n-- sequential --\n%s\n-- parallel=%d --\n%s",
				parallel, base, parallel, got)
		}
	}
}

// TestDeterminismSeedSensitivity guards the guard: a different seed must
// change the report, or the byte-compare above would pass vacuously.
func TestDeterminismSeedSensitivity(t *testing.T) {
	cells := testCells(t)[:1]
	a, err := RunCells(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	cells[0].Seed++
	b, err := RunCells(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	a[0].Timing, b[0].Timing = nil, nil
	var sa, sb strings.Builder
	Render(&sa, a, false)
	Render(&sb, b, false)
	if sa.String() == sb.String() {
		t.Fatal("changing the seed did not change the deterministic report")
	}
}
