package density

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"preemptsched/internal/sched"
)

// CellResult is the outcome of one density cell. The fields above Timing
// are pure functions of the Spec — the determinism suite compares their
// rendering byte for byte across worker-pool parallelism levels. Timing
// is wall-clock measurement and varies run to run; renderers omit it in
// stable mode.
type CellResult struct {
	Name  string `json:"name"`
	Seed  int64  `json:"seed"`
	Nodes int    `json:"nodes"`
	Tasks int    `json:"tasks"`
	Jobs  int    `json:"jobs"`

	Makespan    time.Duration `json:"makespan"`
	Decisions   uint64        `json:"decisions"`
	EventsFired uint64        `json:"events_fired"`
	Completed   int           `json:"completed"`
	Preemptions int           `json:"preemptions"`
	Kills       int           `json:"kills"`
	Checkpoints int           `json:"checkpoints"`
	Restores    int           `json:"restores"`
	// PeakInFlight is the exact high-water mark of tasks holding node
	// resources; PeakQueued the sampled pending-queue peak.
	PeakInFlight int `json:"peak_in_flight"`
	PeakQueued   int `json:"peak_queued"`
	// Samples is the decimated rate-over-time series on the virtual
	// clock; SampleEvery its (possibly stride-doubled) final period.
	SampleEvery time.Duration  `json:"sample_every"`
	Samples     []sched.Sample `json:"samples,omitempty"`

	Timing *Timing `json:"timing,omitempty"`
}

// Timing is the wall-clock half of a cell result.
type Timing struct {
	WallSeconds     float64 `json:"wall_seconds"`
	DecisionsPerSec float64 `json:"decisions_per_sec"`
	EventsPerSec    float64 `json:"events_per_sec"`
	TasksPerSec     float64 `json:"tasks_per_sec"`
}

// Run executes one density cell: generate the workload, run the
// simulator with the probe and sampler installed, and fold the outcome
// into a CellResult.
func Run(sp Spec) (*CellResult, error) {
	sp = sp.withDefaults()
	jobs, err := Generate(sp)
	if err != nil {
		return nil, err
	}

	cfg := sched.DefaultConfig(sp.Policy, sp.Storage)
	cfg.Nodes = sp.Nodes
	cfg.NodeCapacity = sp.NodeCapacity

	res := &CellResult{
		Name:        sp.Name,
		Seed:        sp.Seed,
		Nodes:       sp.Nodes,
		Tasks:       sp.Tasks,
		Jobs:        len(jobs),
		SampleEvery: sp.SampleEvery,
	}
	inFlight := 0
	cfg.Probe = func(ev sched.ProbeEvent) {
		switch ev.Kind {
		case sched.ProbePlace:
			inFlight++
			if inFlight > res.PeakInFlight {
				res.PeakInFlight = inFlight
			}
		case sched.ProbeFinish, sched.ProbeKill, sched.ProbeVacate, sched.ProbeFence:
			inFlight--
		}
	}
	cfg.SampleEvery = sp.SampleEvery
	// Stride-doubling decimation: the sampler stays on the fine cadence
	// (so queue peaks are still observed), but the retained series halves
	// whenever it hits MaxSamples, keeping a uniform spacing of
	// SampleEvery * stride throughout.
	tick, stride := 0, 1
	cfg.OnSample = func(s sched.Sample) {
		if s.Queued > res.PeakQueued {
			res.PeakQueued = s.Queued
		}
		if tick%stride == 0 {
			res.Samples = append(res.Samples, s)
			if len(res.Samples) >= sp.MaxSamples {
				kept := res.Samples[:0]
				for i := 0; i < len(res.Samples); i += 2 {
					kept = append(kept, res.Samples[i])
				}
				res.Samples = kept
				stride *= 2
				res.SampleEvery = sp.SampleEvery * time.Duration(stride)
			}
		}
		tick++
	}

	start := time.Now()
	r, err := sched.Run(cfg, jobs)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()

	res.Makespan = r.Makespan
	res.Decisions = r.Decisions
	res.EventsFired = r.EventsFired
	res.Completed = r.TasksCompleted
	res.Preemptions = r.Preemptions
	res.Kills = r.Kills
	res.Checkpoints = r.Checkpoints
	res.Restores = r.Restores
	if wall > 0 {
		res.Timing = &Timing{
			WallSeconds:     wall,
			DecisionsPerSec: float64(r.Decisions) / wall,
			EventsPerSec:    float64(r.EventsFired) / wall,
			TasksPerSec:     float64(r.TasksCompleted) / wall,
		}
	}
	return res, nil
}

// RunCells executes the cells on a bounded worker pool (parallel <= 0
// uses one worker per CPU; 1 runs sequentially). Results come back in
// cell order regardless of completion order, so any rendering of the
// deterministic fields is byte-identical at every parallelism level. On
// error the lowest-indexed failure is returned, mirroring sched.RunMany.
func RunCells(cells []Spec, parallel int) ([]*CellResult, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}
	results := make([]*CellResult, len(cells))
	errs := make([]error, len(cells))
	if parallel <= 1 {
		for i, sp := range cells {
			results[i], errs[i] = Run(sp)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cells) {
						return
					}
					results[i], errs[i] = Run(cells[i])
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Render writes the human-readable report. With timing=false only the
// deterministic fields appear — that form is the determinism contract's
// comparison unit.
func Render(w io.Writer, results []*CellResult, timing bool) {
	for _, r := range results {
		if r == nil {
			continue
		}
		fmt.Fprintf(w, "cell %s seed=%d nodes=%d tasks=%d jobs=%d\n", r.Name, r.Seed, r.Nodes, r.Tasks, r.Jobs)
		fmt.Fprintf(w, "  makespan=%s decisions=%d events=%d\n", r.Makespan, r.Decisions, r.EventsFired)
		fmt.Fprintf(w, "  completed=%d preemptions=%d kills=%d checkpoints=%d restores=%d\n",
			r.Completed, r.Preemptions, r.Kills, r.Checkpoints, r.Restores)
		fmt.Fprintf(w, "  peak_in_flight=%d peak_queued=%d\n", r.PeakInFlight, r.PeakQueued)
		if n := len(r.Samples); n > 0 {
			fmt.Fprintf(w, "  rate-over-time (every %s, %d samples):\n", r.SampleEvery, n)
			step := 1
			if n > 12 {
				step = n / 12
			}
			var prev sched.Sample
			for i := 0; i < n; i += step {
				s := r.Samples[i]
				dt := time.Duration(s.At - prev.At).Seconds()
				var rate float64
				if dt > 0 {
					rate = float64(s.Decisions-prev.Decisions) / dt
				}
				fmt.Fprintf(w, "    t=%-10s in_flight=%-7d queued=%-8d decisions=%-9d %8.1f dec/virt-s\n",
					time.Duration(s.At), s.InFlight, s.Queued, s.Decisions, rate)
				prev = s
			}
		}
		if timing && r.Timing != nil {
			fmt.Fprintf(w, "  wall=%.2fs decisions/sec=%.0f events/sec=%.0f tasks/sec=%.0f\n",
				r.Timing.WallSeconds, r.Timing.DecisionsPerSec, r.Timing.EventsPerSec, r.Timing.TasksPerSec)
		}
		fmt.Fprintln(w)
	}
}

// StandardCells returns the 1k/5k/10k ladder, scaled by tasks per node
// so event totals grow with the cluster. The 10k cell is the headline
// BENCH_scale.json config: 10k virtual nodes, ~1M task events.
func StandardCells(seed int64) []Spec {
	mk := func(name string, nodes, tasks int) Spec {
		return Spec{Name: name, Seed: seed, Nodes: nodes, Tasks: tasks}
	}
	return []Spec{
		mk("1k-nodes", 1_000, 100_000),
		mk("5k-nodes", 5_000, 500_000),
		mk("10k-nodes", 10_000, 1_000_000),
	}
}

