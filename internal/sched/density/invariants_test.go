package density

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/sched"
	"preemptsched/internal/storage"
)

// invariantChecker replays the simulator's probe stream against shadow
// bookkeeping and fails the moment any scheduling invariant breaks:
// capacity exceeded, placement on a down node, a preempted task resolved
// twice, or unbalanced lifecycle counters.
type invariantChecker struct {
	t   *testing.T
	cap cluster.Resources

	used map[cluster.NodeID]cluster.Resources
	// residents tracks which node each placed task currently occupies.
	residents map[cluster.TaskID]cluster.NodeID
	demand    map[cluster.TaskID]cluster.Resources
	down      map[cluster.NodeID]bool
	// checkpointing marks tasks between their checkpoint verdict and the
	// matching vacate (or finish, when the task completes during a
	// pre-copy window).
	checkpointing map[cluster.TaskID]bool

	places, finishes, kills, checkpoints, vacates, fences int
}

func newInvariantChecker(t *testing.T, nodeCap cluster.Resources) *invariantChecker {
	return &invariantChecker{
		t:             t,
		cap:           nodeCap,
		used:          make(map[cluster.NodeID]cluster.Resources),
		residents:     make(map[cluster.TaskID]cluster.NodeID),
		demand:        make(map[cluster.TaskID]cluster.Resources),
		checkpointing: make(map[cluster.TaskID]bool),
		down:          make(map[cluster.NodeID]bool),
	}
}

func (c *invariantChecker) setDemands(jobs []cluster.JobSpec) {
	for i := range jobs {
		for k := range jobs[i].Tasks {
			ts := &jobs[i].Tasks[k]
			c.demand[ts.ID] = ts.Demand
		}
	}
}

func (c *invariantChecker) release(ev sched.ProbeEvent, kind string) {
	node, ok := c.residents[ev.Task]
	if !ok {
		c.t.Fatalf("%s for task %v at %v: not resident anywhere", kind, ev.Task, ev.At)
	}
	if node != ev.Node {
		c.t.Fatalf("%s for task %v on node %d, but it resides on %d", kind, ev.Task, ev.Node, node)
	}
	c.used[node] = c.used[node].Sub(c.demand[ev.Task])
	if c.used[node].Negative() {
		c.t.Fatalf("%s drove node %d usage negative: %v", kind, node, c.used[node])
	}
	delete(c.residents, ev.Task)
}

func (c *invariantChecker) probe(ev sched.ProbeEvent) {
	if c.t.Failed() {
		return
	}
	switch ev.Kind {
	case sched.ProbePlace:
		c.places++
		if c.down[ev.Node] {
			c.t.Fatalf("task %v placed on down node %d at %v", ev.Task, ev.Node, ev.At)
		}
		if prev, ok := c.residents[ev.Task]; ok {
			c.t.Fatalf("task %v placed on node %d while still resident on %d", ev.Task, ev.Node, prev)
		}
		c.used[ev.Node] = c.used[ev.Node].Add(c.demand[ev.Task])
		if !c.used[ev.Node].Fits(c.cap) {
			c.t.Fatalf("node %d capacity exceeded at %v: used %v cap %v", ev.Node, ev.At, c.used[ev.Node], c.cap)
		}
		c.residents[ev.Task] = ev.Node
		// A placement resolves any outstanding checkpoint cycle (the task
		// was vacated and has now been restored somewhere).
	case sched.ProbeFinish:
		c.finishes++
		c.release(ev, "finish")
		// Completing during a pre-copy window resolves the outstanding
		// checkpoint verdict without a vacate.
		delete(c.checkpointing, ev.Task)
	case sched.ProbeKill:
		c.kills++
		if c.checkpointing[ev.Task] {
			c.t.Fatalf("task %v killed while its checkpoint dump is outstanding", ev.Task)
		}
		c.release(ev, "kill")
	case sched.ProbeCheckpoint:
		c.checkpoints++
		if c.checkpointing[ev.Task] {
			c.t.Fatalf("task %v checkpointed twice without an intervening vacate", ev.Task)
		}
		c.checkpointing[ev.Task] = true
	case sched.ProbeVacate:
		c.vacates++
		if !c.checkpointing[ev.Task] {
			c.t.Fatalf("task %v vacated without a preceding checkpoint verdict", ev.Task)
		}
		delete(c.checkpointing, ev.Task)
		c.release(ev, "vacate")
	case sched.ProbeFence:
		c.fences++
		c.release(ev, "fence")
	case sched.ProbeNodeDown:
		c.down[ev.Node] = true
	case sched.ProbeNodeUp:
		delete(c.down, ev.Node)
	}
}

// verify cross-checks the shadow state against the simulator's own result
// once the run has drained.
func (c *invariantChecker) verify(res *sched.Result, totalTasks int) {
	t := c.t
	if len(c.residents) != 0 {
		t.Errorf("%d tasks still resident after drain", len(c.residents))
	}
	for id, u := range c.used {
		if !u.IsZero() {
			t.Errorf("node %d usage nonzero after drain: %v", id, u)
		}
	}
	if len(c.checkpointing) != 0 {
		t.Errorf("%d checkpoint cycles never resolved", len(c.checkpointing))
	}
	if res.TasksCompleted != totalTasks {
		t.Errorf("completed %d of %d tasks", res.TasksCompleted, totalTasks)
	}
	if c.finishes != res.TasksCompleted {
		t.Errorf("probe finishes %d != result completions %d", c.finishes, res.TasksCompleted)
	}
	// Every preemption verdict is exactly one kill or one checkpoint.
	if c.kills+c.checkpoints != res.Preemptions {
		t.Errorf("kills %d + checkpoints %d != preemptions %d", c.kills, c.checkpoints, res.Preemptions)
	}
	if c.kills != res.Kills || c.checkpoints != res.Checkpoints {
		t.Errorf("probe kill/checkpoint %d/%d != result %d/%d", c.kills, c.checkpoints, res.Kills, res.Checkpoints)
	}
	// Every placement is balanced by exactly one release.
	if c.places != c.finishes+c.kills+c.vacates+c.fences {
		t.Errorf("placements %d != finishes %d + kills %d + vacates %d + fences %d",
			c.places, c.finishes, c.kills, c.vacates, c.fences)
	}
	// Decisions = placements + preemption verdicts (Algorithm 1 calls).
	if res.Decisions != uint64(c.places+res.Preemptions) {
		t.Errorf("decisions %d != placements %d + verdicts %d", res.Decisions, c.places, res.Preemptions)
	}
}

// TestDensityInvariants runs the full invariant pack over several seeds
// and policy/storage legs, including one with node failures in flight.
func TestDensityInvariants(t *testing.T) {
	legs := []struct {
		name     string
		seed     int64
		policy   core.Policy
		storage  storage.Kind
		failures []sched.NodeFailure
	}{
		{name: "checkpoint-ssd-seed1", seed: 1, policy: core.PolicyCheckpoint, storage: storage.SSD},
		{name: "kill-hdd-seed7", seed: 7, policy: core.PolicyKill, storage: storage.HDD},
		{name: "adaptive-nvm-seed42", seed: 42, policy: core.PolicyAdaptive, storage: storage.NVM},
		{name: "checkpoint-failures-seed9", seed: 9, policy: core.PolicyCheckpoint, storage: storage.SSD,
			failures: []sched.NodeFailure{
				{Node: 3, At: 2 * time.Minute, RecoverAfter: 10 * time.Minute},
				{Node: 11, At: 5 * time.Minute},
			}},
	}
	nodes, tasks := 60, 4000
	if testing.Short() {
		nodes, tasks = 30, 1200
	}
	for _, leg := range legs {
		t.Run(leg.name, func(t *testing.T) {
			sp := Spec{
				Seed:    leg.seed,
				Nodes:   nodes,
				Tasks:   tasks,
				Policy:  leg.policy,
				Storage: leg.storage,
			}.withDefaults()
			jobs, err := Generate(sp)
			if err != nil {
				t.Fatal(err)
			}
			cfg := sched.DefaultConfig(sp.Policy, sp.Storage)
			cfg.Nodes = sp.Nodes
			cfg.NodeCapacity = sp.NodeCapacity
			cfg.NodeFailures = leg.failures

			chk := newInvariantChecker(t, sp.NodeCapacity)
			chk.setDemands(jobs)
			cfg.Probe = chk.probe

			res, err := sched.Run(cfg, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(leg.failures) == 0 {
				chk.verify(res, sp.Tasks)
			} else {
				// With failures, fenced tasks are re-placed, so only the
				// stream-level invariants (checked inline) and the balance
				// equations apply.
				if chk.places != chk.finishes+chk.kills+chk.vacates+chk.fences {
					t.Errorf("placements %d unbalanced against releases %d/%d/%d/%d",
						chk.places, chk.finishes, chk.kills, chk.vacates, chk.fences)
				}
				if res.TasksCompleted != sp.Tasks {
					t.Errorf("completed %d of %d tasks despite recovery", res.TasksCompleted, sp.Tasks)
				}
			}
		})
	}
}
