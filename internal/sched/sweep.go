package sched

import (
	"runtime"
	"sync"
	"sync/atomic"

	"preemptsched/internal/cluster"
)

// RunSpec is one independent simulation in a sweep: a sized configuration
// and the jobs it executes. Specs must not share Jobs slices — the
// simulator takes pointers into the slice it is handed, so concurrent
// runs over one slice would couple otherwise-independent virtual clocks.
type RunSpec struct {
	Config Config
	Jobs   []cluster.JobSpec
}

// RunMany executes the given simulations, sharding them across up to
// parallel goroutines (parallel <= 0 uses one per available CPU; 1 runs
// sequentially). Each simulation remains single-threaded on its own
// virtual clock — parallelism exists only between runs, never inside
// one — so results[i] is byte-for-byte the result Run(specs[i]) would
// produce, in spec order, at every parallelism level.
//
// On failure RunMany returns the error of the lowest-indexed failing
// spec (the one a sequential sweep would hit first) alongside the
// results gathered so far; results[i] is nil for specs that failed.
func RunMany(specs []RunSpec, parallel int) ([]*Result, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > len(specs) {
		parallel = len(specs)
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	if parallel <= 1 {
		for i, spec := range specs {
			results[i], errs[i] = Run(spec.Config, spec.Jobs)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < parallel; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) {
						return
					}
					results[i], errs[i] = Run(specs[i].Config, specs[i].Jobs)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
