package sched

import (
	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
)

// This file is the simulator's benchmarking and invariant-checking surface:
// a Probe callback fired on every scheduling decision and lifecycle edge,
// and a periodic sampler that reports queue depth, tasks in flight, and
// cumulative decision counts on the virtual clock. Both are nil by default
// and cost one pointer test per event when unused; the density suite
// (internal/sched/density) installs them to measure sustained scheduling
// decisions/sec and to shadow-check resource-safety invariants at scale.

// ProbeKind enumerates the simulator lifecycle events exposed to a Probe.
type ProbeKind uint8

const (
	// ProbePlace fires when a task is granted resources on a node and
	// begins running or restoring there.
	ProbePlace ProbeKind = iota + 1
	// ProbeFinish fires when a task completes and releases its node.
	ProbeFinish
	// ProbeKill fires when a preemption verdict kills the victim; its
	// resources are released at the same instant.
	ProbeKill
	// ProbeCheckpoint fires when a preemption verdict checkpoints the
	// victim. The victim keeps holding resources until the matching
	// ProbeVacate (or, for a task that completes during a pre-copy
	// window, ProbeFinish).
	ProbeCheckpoint
	// ProbeVacate fires when a checkpointed victim's dump is durable and
	// its resources return to the node.
	ProbeVacate
	// ProbeFence fires when a node failure displaces a task; resources on
	// the dead node are released at the same instant.
	ProbeFence
	// ProbeNodeDown and ProbeNodeUp bracket a seeded node outage.
	ProbeNodeDown
	ProbeNodeUp
)

func (k ProbeKind) String() string {
	switch k {
	case ProbePlace:
		return "place"
	case ProbeFinish:
		return "finish"
	case ProbeKill:
		return "kill"
	case ProbeCheckpoint:
		return "checkpoint"
	case ProbeVacate:
		return "vacate"
	case ProbeFence:
		return "fence"
	case ProbeNodeDown:
		return "node-down"
	case ProbeNodeUp:
		return "node-up"
	default:
		return "probe(?)"
	}
}

// ProbeEvent is one simulator lifecycle event. Node is the machine the
// event concerns; for ProbeFence it is the dead machine the task was
// displaced from.
type ProbeEvent struct {
	Kind ProbeKind
	Task cluster.TaskID
	Node cluster.NodeID
	At   sim.Time
}

// Sample is one periodic observation of scheduler state on the virtual
// clock, delivered to Config.OnSample.
type Sample struct {
	// At is the virtual instant of the sample.
	At sim.Time
	// InFlight counts tasks currently holding node resources (running,
	// checkpointing, or restoring).
	InFlight int
	// Queued is the pending-queue depth.
	Queued int
	// Decisions is the cumulative scheduling-decision count: successful
	// placements plus preemption verdicts.
	Decisions uint64
	// Events is the cumulative count of engine events fired.
	Events uint64
}

// probe dispatches one lifecycle event to the configured Probe.
func (s *Simulator) probe(k ProbeKind, task cluster.TaskID, node cluster.NodeID, now sim.Time) {
	if s.cfg.Probe == nil {
		return
	}
	s.cfg.Probe(ProbeEvent{Kind: k, Task: task, Node: node, At: now})
}

// startSampler arms the periodic sampler. Each firing reports current
// state and re-arms itself only while other events remain, so sampling
// never keeps a finished simulation alive.
func (s *Simulator) startSampler() {
	if s.cfg.SampleEvery <= 0 || s.cfg.OnSample == nil {
		return
	}
	var tick func(now sim.Time)
	tick = func(now sim.Time) {
		s.cfg.OnSample(Sample{
			At:        now,
			InFlight:  s.inFlight,
			Queued:    len(s.queue),
			Decisions: s.decisions,
			Events:    s.engine.Fired(),
		})
		if s.engine.Pending() > 0 {
			s.engine.At(now+s.cfg.SampleEvery, tick)
		}
	}
	s.engine.At(s.cfg.SampleEvery, tick)
}
