package sched

import (
	"strconv"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/obs"
	"preemptsched/internal/sim"
)

func nodeName(id cluster.NodeID) string { return "node-" + strconv.Itoa(int(id)) }

// scoreCandidates rebuilds the provenance view of a victim choice on the
// chosen node: every discipline-eligible running task with its estimated
// checkpoint cost, the selected victims flagged. It is only invoked when
// a Recorder is attached, so the extra scan never taxes plain runs.
func (s *Simulator) scoreCandidates(n *node, t *taskRT, victims []*taskRT, now sim.Time) []obs.CandidateScore {
	chosen := make(map[cluster.TaskID]bool, len(victims))
	for _, v := range victims {
		chosen[v.spec.ID] = true
	}
	cands := s.preemptableOn(n, t, now)
	scores := make([]obs.CandidateScore, len(cands))
	for i, v := range cands {
		scores[i] = obs.CandidateScore{
			Task:     v.spec.ID.String(),
			Priority: int(v.spec.Priority),
			Cost:     core.CheckpointOverhead(s.candidateFor(v, now), n.device, now),
			Unsaved:  v.unsavedProgress(now),
			Chosen:   chosen[v.spec.ID],
		}
	}
	return scores
}

// recordSelection journals the candidate set considered when claimant t
// preempts on node n.
func (s *Simulator) recordSelection(t *taskRT, n *node, scores []obs.CandidateScore, now sim.Time) {
	if s.rec == nil {
		return
	}
	s.rec.Append(obs.Record{
		Kind:       obs.RecSelection,
		At:         time.Duration(now),
		Source:     "sched",
		Name:       "victim-selection",
		Claimant:   t.spec.ID.String(),
		Node:       nodeName(n.id),
		Priority:   int(t.spec.Priority),
		Candidates: scores,
	})
}

// recordDecision journals one Algorithm 1 verdict for victim v together
// with the checkpoint-overhead estimate the verdict weighed, so a kill
// can later be explained against the checkpoint cost it avoided. The
// estimate is stashed on v for the est-vs-actual comparison at dump and
// restore time.
func (s *Simulator) recordDecision(v *taskRT, n *node, action core.PreemptAction, cand core.Candidate, now sim.Time) {
	if s.rec == nil {
		return
	}
	est := core.CheckpointOverhead(cand, n.device, now)
	v.estOverhead = est
	s.rec.Append(obs.Record{
		Kind:     obs.RecDecision,
		At:       time.Duration(now),
		Source:   "sched",
		Name:     action.String(),
		Task:     v.spec.ID.String(),
		Node:     nodeName(n.id),
		Priority: int(v.spec.Priority),
		Unsaved:  v.unsavedProgress(now),
		Est:      est,
	})
}

// journalDump appends the measured dump window for v's current image
// write; flags distinguish incremental layers and pre-copy freezes.
func (s *Simulator) journalDump(v *taskRT, bytes int64, flags uint32, now, done sim.Time) {
	if s.rec == nil {
		return
	}
	v.dumpCost = time.Duration(done - now)
	s.rec.Append(obs.Record{
		Kind:     obs.RecEvent,
		At:       time.Duration(now),
		Source:   "sched",
		Name:     "dump",
		Task:     v.spec.ID.String(),
		Node:     nodeName(v.node.id),
		Priority: int(v.spec.Priority),
		Est:      v.estOverhead,
		Actual:   time.Duration(done - now),
		Bytes:    bytes,
		Flags:    flags,
	})
}

// journalPreDump appends the pre-copy window preceding a freeze dump.
func (s *Simulator) journalPreDump(v *taskRT, bytes int64, now, done sim.Time) {
	if s.rec == nil {
		return
	}
	s.rec.Append(obs.Record{
		Kind:     obs.RecEvent,
		At:       time.Duration(now),
		Source:   "sched",
		Name:     "pre-dump",
		Task:     v.spec.ID.String(),
		Node:     nodeName(v.node.id),
		Priority: int(v.spec.Priority),
		Actual:   time.Duration(done - now),
		Bytes:    bytes,
		Flags:    obs.FlagPreCopy,
	})
}

// journalRestore appends the measured restore window and closes the
// est-vs-actual loop: Actual covers the full checkpoint round trip (dump
// plus restore) that the decision-time estimate predicted.
func (s *Simulator) journalRestore(v *taskRT, target *node, remote bool, now, done sim.Time) {
	if s.rec == nil {
		return
	}
	var flags uint32
	if remote {
		flags |= obs.FlagRemote
	}
	if v.failedOver {
		flags |= obs.FlagFailure
	}
	s.rec.Append(obs.Record{
		Kind:     obs.RecEvent,
		At:       time.Duration(now),
		Source:   "sched",
		Name:     "restore",
		Task:     v.spec.ID.String(),
		Node:     nodeName(target.id),
		Priority: int(v.spec.Priority),
		Est:      v.estOverhead,
		Actual:   v.dumpCost + time.Duration(done-now),
		Bytes:    v.spec.MemFootprint,
		Flags:    flags,
	})
	v.estOverhead = 0
	v.dumpCost = 0
}

// journalNodeDown appends a node outage event.
func (s *Simulator) journalNodeDown(n *node, now sim.Time) {
	if s.rec == nil {
		return
	}
	s.rec.Append(obs.Record{
		Kind:   obs.RecEvent,
		At:     time.Duration(now),
		Source: "sched",
		Name:   "node-down",
		Node:   nodeName(n.id),
		Flags:  obs.FlagFailure,
	})
}

// journalNodeRecovered appends a node's return to service.
func (s *Simulator) journalNodeRecovered(n *node, now sim.Time) {
	if s.rec == nil {
		return
	}
	s.rec.Append(obs.Record{
		Kind:   obs.RecEvent,
		At:     time.Duration(now),
		Source: "sched",
		Name:   "node-recovered",
		Node:   nodeName(n.id),
	})
}

// journalTaskRescheduled appends a task's displacement off a dead node;
// Unsaved carries the progress the failure destroyed.
func (s *Simulator) journalTaskRescheduled(t *taskRT, n *node, lost time.Duration, now sim.Time) {
	if s.rec == nil {
		return
	}
	s.rec.Append(obs.Record{
		Kind:     obs.RecEvent,
		At:       time.Duration(now),
		Source:   "sched",
		Name:     "task-rescheduled",
		Task:     t.spec.ID.String(),
		Node:     nodeName(n.id),
		Priority: int(t.spec.Priority),
		Unsaved:  lost,
		Flags:    obs.FlagFailure,
	})
}

// journalTaskDone appends a completion event so timelines can bound each
// task's story.
func (s *Simulator) journalTaskDone(v *taskRT, now sim.Time) {
	if s.rec == nil {
		return
	}
	s.rec.Append(obs.Record{
		Kind:     obs.RecEvent,
		At:       time.Duration(now),
		Source:   "sched",
		Name:     "task-done",
		Task:     v.spec.ID.String(),
		Node:     nodeName(v.node.id),
		Priority: int(v.spec.Priority),
	})
}
