package sched

import (
	"math/rand"
	"testing"
)

// linearFirstFit is the reference the index must match exactly: the
// lowest leaf whose availability covers the demand in both dimensions.
func linearFirstFit(cpu, mem []int64, dc, dm int64) int {
	for i := range cpu {
		if cpu[i] >= dc && mem[i] >= dm {
			return i
		}
	}
	return -1
}

func TestNodeIndexSmallShapes(t *testing.T) {
	// Non-power-of-two sizes exercise the padding leaves; size 1 the
	// degenerate tree.
	for _, n := range []int{1, 2, 3, 5, 8, 13} {
		ix := newNodeIndex(n)
		if got := ix.firstFit(1, 1); got != -1 {
			t.Fatalf("n=%d: empty index matched node %d", n, got)
		}
		ix.set(n-1, 10, 10)
		if got := ix.firstFit(10, 10); got != n-1 {
			t.Fatalf("n=%d: got %d, want %d", n, got, n-1)
		}
		if got := ix.firstFit(11, 10); got != -1 {
			t.Fatalf("n=%d: overdemand matched node %d", n, got)
		}
		ix.set(n-1, 0, 0)
		if got := ix.firstFit(1, 1); got != -1 {
			t.Fatalf("n=%d: cleared index matched node %d", n, got)
		}
	}
}

// TestNodeIndexSplitMaxima pins the case the climb loop exists for: a
// segment whose CPU and memory maxima come from different leaves
// satisfies the pruning test but contains no fitting leaf, so the search
// must back out and continue right.
func TestNodeIndexSplitMaxima(t *testing.T) {
	ix := newNodeIndex(4)
	ix.set(0, 10, 1) // CPU-rich
	ix.set(1, 1, 10) // memory-rich: left segment max is (10,10), no fit
	ix.set(2, 10, 10)
	if got := ix.firstFit(10, 10); got != 2 {
		t.Fatalf("got %d, want 2 (left segment's maxima are split)", got)
	}
	if got := ix.firstFit(10, 1); got != 0 {
		t.Fatalf("got %d, want 0", got)
	}
	if got := ix.firstFit(1, 10); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
}

// TestNodeIndexDifferential drives randomized availability churn —
// allocate, release, reserve, node down/up are all just set() calls with
// new values — and compares every query against the linear scan.
func TestNodeIndexDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 7, 64, 137} {
		ix := newNodeIndex(n)
		cpu := make([]int64, n)
		mem := make([]int64, n)
		ops := 4000
		if testing.Short() {
			ops = 1000
		}
		for op := 0; op < ops; op++ {
			// Mutate a few leaves. Small value ranges force heavy
			// collisions, duplicates, and zeros (down nodes).
			for k := 0; k < 1+rng.Intn(3); k++ {
				i := rng.Intn(n)
				cpu[i] = int64(rng.Intn(8))
				mem[i] = int64(rng.Intn(8))
				ix.set(i, cpu[i], mem[i])
			}
			dc := int64(1 + rng.Intn(8))
			dm := int64(1 + rng.Intn(8))
			want := linearFirstFit(cpu, mem, dc, dm)
			if got := ix.firstFit(dc, dm); got != want {
				t.Fatalf("n=%d op=%d demand=(%d,%d): index %d, linear %d", n, op, dc, dm, got, want)
			}
		}
	}
}
