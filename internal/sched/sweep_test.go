package sched

import (
	"reflect"
	"testing"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

// sweepSpecs builds a small policy × bandwidth grid. Every spec gets its
// own Jobs slice — RunSpec's documented contract — because the simulator
// writes through pointers into the slice it is handed.
func sweepTestSpecs() []RunSpec {
	var specs []RunSpec
	for _, policy := range []core.Policy{core.PolicyWait, core.PolicyKill, core.PolicyCheckpoint} {
		for _, bw := range []float64{5e8, 1e9, 2e9} {
			cfg := oneCoreConfig(policy, storage.SSD)
			cfg.CustomBandwidth = bw
			specs = append(specs, RunSpec{Config: cfg, Jobs: twoJobScenario()})
		}
	}
	return specs
}

func TestRunManyMatchesSequentialRun(t *testing.T) {
	specs := sweepTestSpecs()
	want := make([]*Result, len(specs))
	for i, spec := range sweepTestSpecs() {
		r, err := Run(spec.Config, spec.Jobs)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		want[i] = r
	}
	for _, parallel := range []int{1, 4} {
		got, err := RunMany(specs, parallel)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("parallel=%d spec %d: RunMany result differs from sequential Run", parallel, i)
			}
		}
		// RunMany mutates its Jobs; rebuild for the next parallelism level.
		specs = sweepTestSpecs()
	}
}

func TestRunManyReportsLowestIndexedError(t *testing.T) {
	overdemand := func() RunSpec {
		spec := RunSpec{Config: oneCoreConfig(core.PolicyKill, storage.SSD), Jobs: twoJobScenario()}
		spec.Jobs[0].Tasks[0].Demand.CPUMillis = cluster.Cores(64)
		return spec
	}
	bad0 := overdemand()
	_, wantErr := Run(bad0.Config, bad0.Jobs)
	if wantErr == nil {
		t.Fatal("over-demand spec unexpectedly ran")
	}

	for _, parallel := range []int{1, 4} {
		specs := []RunSpec{
			overdemand(),
			{Config: oneCoreConfig(core.PolicyKill, storage.SSD), Jobs: twoJobScenario()},
			overdemand(),
		}
		results, err := RunMany(specs, parallel)
		if err == nil {
			t.Fatalf("parallel=%d: expected error", parallel)
		}
		if err.Error() != wantErr.Error() {
			t.Errorf("parallel=%d: got error %q, want the lowest-indexed spec's %q", parallel, err, wantErr)
		}
		if results[0] != nil || results[2] != nil {
			t.Errorf("parallel=%d: failed specs have non-nil results", parallel)
		}
		if results[1] == nil {
			t.Errorf("parallel=%d: healthy spec did not run to completion", parallel)
		}
	}
}

func TestRunManyEmpty(t *testing.T) {
	results, err := RunMany(nil, 4)
	if err != nil || len(results) != 0 {
		t.Fatalf("RunMany(nil) = %v, %v", results, err)
	}
}
