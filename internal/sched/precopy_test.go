package sched

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
	"preemptsched/internal/trace"
)

func TestPreCopyBanksWindowProgress(t *testing.T) {
	// 1 GB/s device, 5 GiB image: the pre-copy window is ~5.4 s during
	// which the victim keeps computing. Its response time must improve by
	// roughly that window relative to stop-and-copy.
	cfg := oneCoreConfig(core.PolicyCheckpoint, storage.SSD)
	cfg.CustomBandwidth = 1e9
	stop, err := Run(cfg, twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	cfg.PreCopy = true
	pre, err := Run(cfg, twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	if pre.PreCopies != 1 || pre.Checkpoints != 1 {
		t.Fatalf("precopies=%d checkpoints=%d", pre.PreCopies, pre.Checkpoints)
	}
	lowStop := stop.MeanResponse(cluster.BandFree)
	lowPre := pre.MeanResponse(cluster.BandFree)
	if lowPre >= lowStop {
		t.Errorf("pre-copy low response %.1f not better than stop-and-copy %.1f", lowPre, lowStop)
	}
	// The victim banks the ~5.4 s window; expected gain is a few seconds.
	if gain := lowStop - lowPre; gain < 2 || gain > 12 {
		t.Errorf("gain %.1fs implausible for a ~5.4s window", gain)
	}
	// Overhead (frozen time) shrinks.
	if pre.OverheadCPUHours >= stop.OverheadCPUHours {
		t.Errorf("pre-copy overhead %.5f not below stop-and-copy %.5f", pre.OverheadCPUHours, stop.OverheadCPUHours)
	}
}

func TestPreCopyVictimCompletesDuringWindow(t *testing.T) {
	// HDD: the 5 GiB pre-copy window (~170s) exceeds the victim's 30s of
	// remaining work; it completes mid-window and no restore happens.
	cfg := oneCoreConfig(core.PolicyCheckpoint, storage.HDD)
	cfg.PreCopy = true
	r, err := Run(cfg, twoJobScenario())
	if err != nil {
		t.Fatal(err)
	}
	if r.PreCopies != 1 {
		t.Fatalf("precopies = %d", r.PreCopies)
	}
	if r.TasksCompleted != 2 {
		t.Errorf("completed %d of 2", r.TasksCompleted)
	}
	if r.Restores != 0 {
		t.Errorf("restores = %d, want 0 (victim finished on its own)", r.Restores)
	}
}

func TestPreCopyConservationAndDeterminism(t *testing.T) {
	jobs, err := trace.GenerateJobs(trace.JobsConfig{Seed: 17, Jobs: 80, MeanTasksPerJob: 4, Span: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := range jobs {
		for j := range jobs[i].Tasks {
			ts := &jobs[i].Tasks[j]
			want += float64(ts.Demand.CPUMillis) / 1000 * ts.Duration.Hours()
		}
	}
	cfg := DefaultConfig(core.PolicyAdaptive, storage.SSD)
	cfg.Nodes = 6
	cfg.PreCopy = true
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if diff := a.UsefulCPUHours - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("useful = %v, want %v", a.UsefulCPUHours, want)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.PreCopies != b.PreCopies || a.WastedCPUHours != b.WastedCPUHours {
		t.Error("pre-copy runs not deterministic")
	}
}
