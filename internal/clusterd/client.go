package clusterd

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"preemptsched/internal/core"
)

// Client speaks the wire protocol over one lazily dialed, reused
// connection. Every request runs under a deadline, transport failures
// redial and retry with the shared capped-jitter backoff, and submit
// retries honor the server's retry-after backpressure hint. Safe for
// concurrent use; requests serialize on the connection.
type Client struct {
	addr    string
	timeout time.Duration
	retries int
	backoff core.Backoff

	connMu sync.Mutex
	conn   net.Conn
	dec    *json.Decoder
	enc    *json.Encoder

	rngMu sync.Mutex
	rng   *rand.Rand
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithRequestTimeout bounds each request round trip (dial, write, read).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithClientRetry sets the per-request attempt budget and backoff base.
func WithClientRetry(attempts int, b core.Backoff) ClientOption {
	return func(c *Client) {
		if attempts > 0 {
			c.retries = attempts
		}
		c.backoff = b
	}
}

// WithClientSeed seeds the jitter source for reproducible pacing.
func WithClientSeed(seed int64) ClientOption {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// NewClient returns a client for the daemon at addr. No I/O happens
// until the first request.
func NewClient(addr string, opts ...ClientOption) *Client {
	c := &Client{
		addr:    addr,
		timeout: 5 * time.Second,
		retries: 5,
		backoff: core.Backoff{Base: 20 * time.Millisecond, Cap: time.Second},
		rng:     rand.New(rand.NewSource(1)),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

func (c *Client) intn(n int64) int64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	return c.rng.Int63n(n)
}

// exchange performs one request/response round trip under the configured
// deadline, redialing once on a stale pooled connection — the same
// one-redial pattern as the DFS tcpPeer. It holds connMu for the whole
// exchange: the JSON encoder/decoder pair is stateful and the connection
// carries one request at a time, so the mutex IS the request pipeline.
// The I/O itself lives in exchangeLocked, which requires the caller to
// hold connMu.
func (c *Client) exchange(req *Request) (*Response, error) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	return c.exchangeLocked(req)
}

func (c *Client) exchangeLocked(req *Request) (*Response, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if c.conn == nil {
			conn, err := net.DialTimeout("tcp", c.addr, c.timeout)
			if err != nil {
				return nil, fmt.Errorf("clusterd: dial %s: %w", c.addr, err)
			}
			c.conn = conn
			c.dec = json.NewDecoder(bufio.NewReader(conn))
			c.enc = json.NewEncoder(conn)
		}
		if c.timeout > 0 {
			c.conn.SetDeadline(time.Now().Add(c.timeout))
		}
		var resp Response
		if err := c.enc.Encode(req); err == nil {
			if err = c.dec.Decode(&resp); err == nil {
				if c.timeout > 0 {
					c.conn.SetDeadline(time.Time{})
				}
				return &resp, nil
			}
			lastErr = err
		} else {
			lastErr = err
		}
		c.conn.Close()
		c.conn = nil
	}
	return nil, fmt.Errorf("clusterd: rpc to %s: %w", c.addr, lastErr)
}

// do runs one request with transport-level retries: each attempt is a
// full deadline-bounded exchange, attempts are paced by the shared
// backoff, and cancellation is honored between attempts.
func (c *Client) do(ctx context.Context, req *Request) (*Response, error) {
	var resp *Response
	err := core.Retry(ctx, c.retries, c.backoff, c.intn, nil, nil, func() error {
		var err error
		resp, err = c.exchange(req)
		return err
	})
	return resp, err
}

// Ping probes liveness and returns the daemon's state.
func (c *Client) Ping(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, &Request{Op: "ping"})
	if err != nil {
		return "", err
	}
	return resp.State, nil
}

// Stats fetches the daemon's bookkeeping snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.do(ctx, &Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("clusterd: stats response without stats (error %q)", resp.Error)
	}
	return resp.Stats, nil
}

// Submit offers one job, retrying transport failures and backpressure
// rejections (pacing by the larger of the backoff delay and the server's
// retry-after hint) until the attempt budget runs out. Hard rejections —
// validation errors, a draining daemon — fail immediately: retrying them
// cannot succeed. The returned Response carries the daemon-assigned job
// ID on success; on a final backpressure rejection the Response is
// returned alongside the error so callers can distinguish "queue full"
// from a dead daemon.
func (c *Client) Submit(ctx context.Context, jr JobRequest) (*Response, error) {
	req := &Request{Op: "submit", Job: &jr}
	var last *Response
	var lastErr error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			d := c.backoff.Delay(attempt, c.intn)
			if last != nil {
				if ra := time.Duration(last.RetryAfterMS) * time.Millisecond; ra > d {
					d = ra
				}
			}
			if err := core.Sleep(ctx, d); err != nil {
				if lastErr == nil {
					lastErr = err
				}
				return last, lastErr
			}
		}
		resp, err := c.exchange(req)
		if err != nil {
			last, lastErr = nil, err
			continue
		}
		if resp.OK {
			return resp, nil
		}
		if resp.RetryAfterMS <= 0 {
			return resp, fmt.Errorf("clusterd: submit rejected: %s", resp.Error)
		}
		last, lastErr = resp, fmt.Errorf("clusterd: submit backpressured: %s", resp.Error)
	}
	return last, lastErr
}

// Close drops the pooled connection. Detach under the lock, close
// outside it: a Close racing an in-flight request must not deadlock
// against exchange's critical section.
func (c *Client) Close() {
	c.connMu.Lock()
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		conn.Close()
	}
}
