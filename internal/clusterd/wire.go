// Package clusterd runs the YARN emulation as a long-lived network
// service: a daemon that admits a continuous stream of job submissions
// over a line-delimited JSON wire protocol, executes them on a
// yarn.Service (real TCP DFS underneath, preemption and checkpointing
// live), and survives sustained load with fault injection enabled.
//
// The package splits into the Daemon (bounded admission queue with
// explicit backpressure, dispatcher, drain state machine), the wire
// Client (per-request deadlines, capped jittered retry via
// internal/core), and the LoadGen (seeded open-loop driver used by the
// chaos soak).
package clusterd

// Wire protocol: one JSON object per line in each direction over a plain
// TCP connection. A connection carries any number of request/response
// pairs in order; there is no framing beyond the newline and no
// pipelining. Ops:
//
//	ping    liveness probe; responds {"ok":true,"state":...}
//	submit  admit one job; the daemon assigns the job ID
//	stats   snapshot of the daemon's books (admission counters, queue
//	        depth, runtime gauges) — the loadgen's settle/soak checks
//	        ride on this instead of scraping HTTP
type Request struct {
	Op  string      `json:"op"`
	Job *JobRequest `json:"job,omitempty"`
}

// JobRequest is the client-side job shape. The daemon owns identity (it
// assigns monotonically increasing job IDs) so two clients can never
// collide; demand per task is the paper's fixed container size.
type JobRequest struct {
	Priority int `json:"priority"`
	Tasks    int `json:"tasks"`
	// DurationMS is each task's virtual service time in milliseconds.
	DurationMS int64 `json:"duration_ms"`
	// MemFootprintBytes is the checkpointable footprint per task;
	// defaults to 1 GiB when zero.
	MemFootprintBytes int64  `json:"mem_footprint_bytes,omitempty"`
	User              string `json:"user,omitempty"`
}

// Daemon states, reported in every response so clients can distinguish
// backpressure (retry later) from drain (go away).
const (
	StateServing  = "serving"
	StateDraining = "draining"
	StateStopped  = "stopped"
)

// Response answers one request.
type Response struct {
	OK    bool   `json:"ok"`
	JobID int64  `json:"job_id,omitempty"`
	Error string `json:"error,omitempty"`
	// RetryAfterMS, when positive, is a backpressure hint: the queue was
	// full, try again after this pause. Zero on hard rejections
	// (validation errors, draining) — retrying those is pointless.
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	State        string `json:"state,omitempty"`
	Stats        *Stats `json:"stats,omitempty"`
}

// Stats is the daemon's bookkeeping snapshot. The lost/double-completed
// counters are the soak test's acceptance criteria: both must be zero at
// all times.
type Stats struct {
	State string `json:"state"`

	Submitted int64 `json:"submitted"`
	Admitted  int64 `json:"admitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	// Lost counts admitted jobs that will never complete (only ever
	// non-zero after a failed drain); DoubleCompleted counts completion
	// callbacks for jobs not outstanding. Both are invariant violations.
	Lost            int64 `json:"lost"`
	DoubleCompleted int64 `json:"double_completed"`

	QueueDepth int `json:"queue_depth"`
	InFlight   int `json:"in_flight"`

	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heap_bytes"`

	// AdmissionP99Sec is the p99 of the admission decision latency
	// histogram (clusterd.admission.seconds).
	AdmissionP99Sec float64 `json:"admission_p99_sec"`
	// VirtualNowNS is the engine's virtual clock, nanoseconds.
	VirtualNowNS int64 `json:"virtual_now_ns"`
}
