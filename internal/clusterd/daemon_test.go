package clusterd

import (
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/faults"
	"preemptsched/internal/obs"
	"preemptsched/internal/storage"
	"preemptsched/internal/yarn"
)

func testConfig() Config {
	cc := yarn.DefaultConfig(core.PolicyCheckpoint, storage.SSD)
	cc.Nodes = 2
	cc.ContainersPerNode = 2
	return Config{
		Addr:        "127.0.0.1:0",
		QueueSize:   16,
		MaxInFlight: 8,
		RetryAfter:  10 * time.Millisecond,
		Cluster:     cc,
	}
}

func submitN(t *testing.T, cli *Client, n int) int64 {
	t.Helper()
	var accepted int64
	for i := 0; i < n; i++ {
		resp, err := cli.Submit(context.Background(), JobRequest{Priority: i % 12, Tasks: 1, DurationMS: 30_000})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp.OK {
			accepted++
		}
	}
	return accepted
}

// TestDaemonLifecycleLeakFree runs full start/submit/drain cycles and
// asserts the goroutine count returns to baseline: nothing from the wire
// listener, the dispatcher, the sampler, the ops server, or the cluster's
// TCP DFS may survive Shutdown.
func TestDaemonLifecycleLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		d, err := Start(testConfig())
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		cli := NewClient(d.Addr())
		accepted := submitN(t, cli, 5)
		cli.Close()
		if err := d.Shutdown(context.Background()); err != nil {
			t.Fatalf("cycle %d shutdown: %v", cycle, err)
		}
		st := d.Stats()
		if st.Completed != accepted || st.Lost != 0 || st.DoubleCompleted != 0 {
			t.Fatalf("cycle %d: completed=%d accepted=%d lost=%d double=%d",
				cycle, st.Completed, accepted, st.Lost, st.DoubleCompleted)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d across daemon cycles", before, after)
	}
}

// TestDaemonDrainMidStream SIGTERM-equivalent: Shutdown fires while
// submitters are still streaming. Every job acknowledged OK must
// complete exactly once; submissions landing after the drain begins must
// be rejected as draining, not lost.
func TestDaemonDrainMidStream(t *testing.T) {
	d, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	const submitters = 4
	var (
		wg       sync.WaitGroup
		accepted [submitters]int64
	)
	stop := make(chan struct{})
	for i := 0; i < submitters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := NewClient(d.Addr(), WithClientRetry(1, core.Backoff{}))
			defer cli.Close()
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cli.Submit(context.Background(), JobRequest{Priority: j % 12, Tasks: 1, DurationMS: 10_000})
				if err != nil && resp == nil {
					return // daemon gone
				}
				if resp != nil && resp.OK {
					accepted[i]++
				}
				if resp != nil && resp.State == StateDraining {
					return
				}
			}
		}(i)
	}
	time.Sleep(50 * time.Millisecond) // let the stream run
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	var total int64
	for _, a := range accepted {
		total += a
	}
	st := d.Stats()
	if st.Completed != total {
		t.Errorf("accepted %d jobs but daemon completed %d", total, st.Completed)
	}
	if st.Lost != 0 || st.DoubleCompleted != 0 {
		t.Errorf("lost=%d double=%d, want 0/0", st.Lost, st.DoubleCompleted)
	}
	if st.State != StateStopped {
		t.Errorf("state = %q, want %q", st.State, StateStopped)
	}
}

// TestAdmissionBackpressure pins the queue-full and draining rejection
// semantics without timing races by driving admit directly.
func TestAdmissionBackpressure(t *testing.T) {
	d := &Daemon{
		cfg:         Config{RetryAfter: 42 * time.Millisecond}.withDefaults(),
		reg:         obs.NewRegistry(),
		queue:       make(chan queuedJob, 1),
		state:       StateServing,
		outstanding: make(map[cluster.JobID]struct{}),
	}
	jr := &JobRequest{Priority: 1, Tasks: 1, DurationMS: 1000}

	if resp := d.admit(jr); !resp.OK {
		t.Fatalf("first admit rejected: %+v", resp)
	}
	resp := d.admit(jr)
	if resp.OK {
		t.Fatal("admit into a full queue succeeded")
	}
	if resp.RetryAfterMS != 42 {
		t.Errorf("retry-after = %dms, want 42", resp.RetryAfterMS)
	}

	d.state = StateDraining
	resp = d.admit(jr)
	if resp.OK || resp.RetryAfterMS != 0 || resp.State != StateDraining {
		t.Errorf("draining admit = %+v, want hard rejection with draining state", resp)
	}

	d.state = StateServing
	if resp := d.admit(&JobRequest{Tasks: 0, DurationMS: 1}); resp.OK || resp.RetryAfterMS != 0 {
		t.Errorf("invalid job admit = %+v, want hard rejection", resp)
	}
	if got := d.rejected.Load(); got != 3 {
		t.Errorf("rejected counter = %d, want 3", got)
	}
}

// TestPriorityAwareAdmission pins the free-band shedding rule: under
// queue pressure, free-band submissions are rejected at the high-water
// mark while the reserved tail still admits paid bands.
func TestPriorityAwareAdmission(t *testing.T) {
	d := &Daemon{
		cfg:         Config{QueueSize: 4, RetryAfter: 7 * time.Millisecond}.withDefaults(),
		reg:         obs.NewRegistry(),
		queue:       make(chan queuedJob, 4),
		state:       StateServing,
		outstanding: make(map[cluster.JobID]struct{}),
	}
	free := &JobRequest{Priority: 0, Tasks: 1, DurationMS: 1000}
	paid := &JobRequest{Priority: 5, Tasks: 1, DurationMS: 1000}

	// Below the high-water mark (QueueSize - QueueSize/4 = 3) both bands
	// are admitted.
	if resp := d.admit(free); !resp.OK {
		t.Fatalf("free admit into an empty queue rejected: %+v", resp)
	}
	for i := 0; i < 2; i++ {
		if resp := d.admit(paid); !resp.OK {
			t.Fatalf("paid admit %d rejected: %+v", i, resp)
		}
	}

	// Depth 3: free band is shed, paid band still fits the reserved tail.
	resp := d.admit(free)
	if resp.OK {
		t.Fatal("free-band admit at the high-water mark succeeded")
	}
	if resp.RetryAfterMS != 7 {
		t.Errorf("shed retry-after = %dms, want 7", resp.RetryAfterMS)
	}
	if !strings.Contains(resp.Error, "free-band") {
		t.Errorf("shed error = %q, want a free-band shedding message", resp.Error)
	}
	if resp := d.admit(paid); !resp.OK {
		t.Fatalf("paid admit into the reserved tail rejected: %+v", resp)
	}

	// Depth 4: the queue is genuinely full for everyone.
	if resp := d.admit(paid); resp.OK || strings.Contains(resp.Error, "free-band") {
		t.Errorf("paid admit into a full queue = %+v, want plain queue-full rejection", resp)
	}
	if got := d.reg.Snapshot().Counters["clusterd.jobs.shed.free.band"]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
}

// TestWireProtocolErrors exercises the unknown-op and malformed-request
// edges over a real connection.
func TestWireProtocolErrors(t *testing.T) {
	d, err := Start(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown(context.Background())

	cli := NewClient(d.Addr())
	defer cli.Close()
	resp, err := cli.do(context.Background(), &Request{Op: "bogus"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Errorf("bogus op response = %+v", resp)
	}
	if _, err := cli.do(context.Background(), &Request{Op: "submit"}); err != nil {
		t.Errorf("submit without job should answer, got transport error %v", err)
	}
	state, err := cli.Ping(context.Background())
	if err != nil || state != StateServing {
		t.Errorf("ping = %q/%v, want serving/nil", state, err)
	}
}

// TestSoakWithFaults is the in-process chaos soak: open-loop load with
// the DFS fault injectors live, then drain and check every invariant the
// CI soak job enforces (nothing lost, nothing doubled, p99 admission in
// budget, bounded goroutine/heap growth).
func TestSoakWithFaults(t *testing.T) {
	cfg := testConfig()
	cfg.OpsAddr = "127.0.0.1:0"
	cfg.Cluster.Faults = &faults.Plan{Seed: 11, RPCErrorRate: 0.02, TornWriteRate: 0.02}
	d, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dur := 2 * time.Second
	if testing.Short() {
		dur = 500 * time.Millisecond
	}
	rep, err := RunLoad(context.Background(), LoadConfig{
		Addr:         d.Addr(),
		Rate:         100,
		Duration:     dur,
		Seed:         4242,
		TasksPerJob:  2,
		TaskDuration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Accepted == 0 {
		t.Fatalf("no load offered/accepted: %+v", rep)
	}
	if err := rep.Check(250*time.Millisecond, 20, 64<<20); err != nil {
		t.Errorf("soak check: %v", err)
	}
	if err := d.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := d.Stats(); st.Lost != 0 || st.DoubleCompleted != 0 {
		t.Errorf("post-drain lost=%d double=%d", st.Lost, st.DoubleCompleted)
	}
}
