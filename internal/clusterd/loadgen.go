package clusterd

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"preemptsched/internal/core"
	"preemptsched/internal/cluster"
)

// LoadConfig parameterizes one open-loop run against a daemon.
type LoadConfig struct {
	Addr string
	// Rate is the mean offered load in submissions/sec; arrivals are
	// Poisson (exponential interarrivals) from the seeded source.
	Rate float64
	// Duration is the offered-load window; settling happens after.
	Duration time.Duration
	Seed     int64

	// TasksPerJob and TaskDuration shape each offered job; priority is
	// drawn uniformly over the paper's [0,11] range per job.
	TasksPerJob  int
	TaskDuration time.Duration

	// MaxOutstanding caps concurrent submit RPCs. The generator is
	// open-loop: an arrival finding no free slot is shed (counted, not
	// queued) rather than slowing the arrival process down.
	MaxOutstanding int
	RequestTimeout time.Duration
	// SettleTimeout bounds the post-load wait for the daemon to finish
	// every admitted job.
	SettleTimeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Rate <= 0 {
		c.Rate = 20
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Second
	}
	if c.TasksPerJob <= 0 {
		c.TasksPerJob = 2
	}
	if c.TaskDuration <= 0 {
		c.TaskDuration = 30 * time.Second
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.SettleTimeout <= 0 {
		c.SettleTimeout = 30 * time.Second
	}
	return c
}

// LoadReport summarizes one run: the client-side view of the offered
// stream plus the daemon's final books, with the baseline/final runtime
// gauges the soak check compares.
type LoadReport struct {
	Offered         int64 `json:"offered"`
	Shed            int64 `json:"shed"`
	Accepted        int64 `json:"accepted"`
	Rejected        int64 `json:"rejected"`
	TransportErrors int64 `json:"transport_errors"`

	Settled bool          `json:"settled"`
	Elapsed time.Duration `json:"elapsed_ns"`

	BaselineGoroutines int    `json:"baseline_goroutines"`
	FinalGoroutines    int    `json:"final_goroutines"`
	BaselineHeapBytes  uint64 `json:"baseline_heap_bytes"`
	FinalHeapBytes     uint64 `json:"final_heap_bytes"`

	Final Stats `json:"final"`
}

// Check validates the soak invariants against the report: nothing lost or
// double-completed, everything accepted eventually completed, admission
// p99 within budget, and bounded goroutine/heap growth on the daemon.
// It returns the first violation.
func (r *LoadReport) Check(p99Budget time.Duration, maxGoroutineGrowth int, maxHeapGrowth uint64) error {
	if !r.Settled {
		return fmt.Errorf("%w: %d admitted, %d completed", ErrNotDrained, r.Final.Admitted, r.Final.Completed)
	}
	if r.Final.Lost != 0 {
		return fmt.Errorf("clusterd: %d jobs lost", r.Final.Lost)
	}
	if r.Final.DoubleCompleted != 0 {
		return fmt.Errorf("clusterd: %d jobs double-completed", r.Final.DoubleCompleted)
	}
	if r.Accepted != r.Final.Completed {
		return fmt.Errorf("clusterd: accepted %d != completed %d", r.Accepted, r.Final.Completed)
	}
	if p99 := time.Duration(r.Final.AdmissionP99Sec * float64(time.Second)); p99Budget > 0 && p99 > p99Budget {
		return fmt.Errorf("clusterd: admission p99 %v over budget %v", p99, p99Budget)
	}
	if g := r.FinalGoroutines - r.BaselineGoroutines; maxGoroutineGrowth > 0 && g > maxGoroutineGrowth {
		return fmt.Errorf("clusterd: goroutines grew by %d (%d -> %d)", g, r.BaselineGoroutines, r.FinalGoroutines)
	}
	if maxHeapGrowth > 0 && r.FinalHeapBytes > r.BaselineHeapBytes+maxHeapGrowth {
		return fmt.Errorf("clusterd: heap grew %d -> %d bytes", r.BaselineHeapBytes, r.FinalHeapBytes)
	}
	return nil
}

// RunLoad drives the daemon at addr with a seeded open-loop arrival
// stream for the configured window, waits for the backlog to drain, and
// returns the combined report. The offered job sequence is a
// deterministic function of the seed; real-time interleaving is not.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	cli := NewClient(cfg.Addr,
		WithRequestTimeout(cfg.RequestTimeout),
		WithClientSeed(cfg.Seed^0x5eed),
	)
	defer cli.Close()

	if _, err := cli.Ping(ctx); err != nil {
		return nil, fmt.Errorf("clusterd: daemon unreachable: %w", err)
	}
	baseline, err := cli.Stats(ctx)
	if err != nil {
		return nil, err
	}

	rep := &LoadReport{
		BaselineGoroutines: baseline.Goroutines,
		BaselineHeapBytes:  baseline.HeapBytes,
	}
	var accepted, rejected, transportErrs atomic.Int64

	rng := rand.New(rand.NewSource(cfg.Seed))
	slots := make(chan struct{}, cfg.MaxOutstanding)
	var wg sync.WaitGroup
	start := time.Now()
	for time.Since(start) < cfg.Duration && ctx.Err() == nil {
		// Exponential interarrival for the Poisson stream.
		gap := time.Duration(-math.Log(1-rng.Float64()) / cfg.Rate * float64(time.Second))
		if err := core.Sleep(ctx, gap); err != nil {
			break
		}
		jr := JobRequest{
			Priority:   rng.Intn(int(cluster.MaxPriority) + 1),
			Tasks:      cfg.TasksPerJob,
			DurationMS: cfg.TaskDuration.Milliseconds(),
			User:       fmt.Sprintf("loadgen-%d", cfg.Seed),
		}
		rep.Offered++
		select {
		case slots <- struct{}{}:
		default:
			rep.Shed++ // open loop: never queue behind slow submissions
			continue
		}
		wg.Add(1)
		go func(jr JobRequest) {
			defer wg.Done()
			defer func() { <-slots }()
			resp, err := cli.Submit(ctx, jr)
			switch {
			case err == nil && resp != nil && resp.OK:
				accepted.Add(1)
			case resp != nil:
				rejected.Add(1)
			default:
				transportErrs.Add(1)
			}
		}(jr)
	}
	wg.Wait()
	rep.Accepted = accepted.Load()
	rep.Rejected = rejected.Load()
	rep.TransportErrors = transportErrs.Load()

	// Settle: the daemon owes a completion for every admitted job.
	settleCtx, cancel := context.WithTimeout(ctx, cfg.SettleTimeout)
	defer cancel()
	var last *Stats
	for {
		st, err := cli.Stats(settleCtx)
		if err == nil {
			last = st
			if st.Completed+st.Lost+st.DoubleCompleted >= st.Admitted && st.QueueDepth == 0 && st.InFlight == 0 {
				rep.Settled = st.Completed == st.Admitted
				break
			}
		}
		if serr := core.Sleep(settleCtx, 50*time.Millisecond); serr != nil {
			break
		}
	}
	if last != nil {
		rep.Final = *last
		rep.FinalGoroutines = last.Goroutines
		rep.FinalHeapBytes = last.HeapBytes
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}
