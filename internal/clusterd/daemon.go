package clusterd

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/obs"
	"preemptsched/internal/yarn"
)

// Config parameterizes a daemon.
type Config struct {
	// Addr is the wire-protocol listen address ("127.0.0.1:0" for tests).
	Addr string
	// OpsAddr, when non-empty, serves /metrics, /healthz, /readyz, and
	// pprof on a second listener via obs.ServeOps.
	OpsAddr string

	// QueueSize bounds the admission queue: submissions beyond it are
	// rejected with a retry-after hint, never buffered. Defaults to 64.
	QueueSize int
	// MaxInFlight bounds how many admitted jobs the dispatcher hands to
	// the engine before waiting for completions. Defaults to 256.
	MaxInFlight int
	// RetryAfter is the backpressure hint returned with queue-full
	// rejections. Defaults to 100ms.
	RetryAfter time.Duration

	// Cluster shapes the underlying yarn.Service.
	Cluster yarn.Config
	// Metrics receives the daemon's and the cluster's telemetry; a
	// private registry is built when nil.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 100 * time.Millisecond
	}
	return c
}

// queuedJob is one admitted-but-not-yet-dispatched job.
type queuedJob struct {
	spec cluster.JobSpec
}

// Daemon accepts job submissions on the wire protocol and runs them on a
// yarn.Service. Its lifecycle is the drain state machine documented in
// DESIGN.md §12: Serving → Draining (Shutdown called: no new admissions,
// queued and running jobs finish) → Stopped.
type Daemon struct {
	cfg Config
	reg *obs.Registry
	rec *obs.Recorder
	slo *obs.SLOTracker
	svc *yarn.Service

	ln       net.Listener
	opsAddr  string
	opsStop  func()
	queue    chan queuedJob
	inflight chan struct{}

	mu          sync.Mutex
	state       string
	conns       map[net.Conn]struct{}
	outstanding map[cluster.JobID]struct{}

	// firstLossErr keeps the first dispatch failure for the shutdown
	// error: "N jobs lost" alone is undebuggable.
	firstLossErr atomic.Value

	submitted       atomic.Int64
	admitted        atomic.Int64
	rejected        atomic.Int64
	completed       atomic.Int64
	doubleCompleted atomic.Int64
	lost            atomic.Int64
	nextID          atomic.Int64

	acceptWG   sync.WaitGroup
	connWG     sync.WaitGroup
	dispatchWG sync.WaitGroup
	samplerWG  sync.WaitGroup

	samplerStop chan struct{}
	done        chan struct{}

	res      *yarn.Result
	closeErr error
}

// Start boots the cluster service, binds the wire listener (and the ops
// endpoint when configured), and begins admitting jobs.
func Start(cfg Config) (*Daemon, error) {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	cfg.Cluster.Metrics = reg
	// The flight recorder and SLO tracker are always on in service mode:
	// a crash or SIGTERM must leave behind an explainable journal, and
	// the ops endpoint must answer /slo at any moment. Both are bounded
	// (fixed segment ring, O(1) per event) so always-on is safe.
	rec := cfg.Cluster.Recorder
	if rec == nil {
		rec = obs.NewRecorder(0, 0)
		cfg.Cluster.Recorder = rec
	}
	slo := cfg.Cluster.SLO
	if slo == nil {
		slo = obs.NewSLOTracker()
		cfg.Cluster.SLO = slo
	}
	// Pre-register the invariant counters so a scraper sees an explicit
	// zero rather than an absent series: "jobs.lost 0" is the soak's
	// pass criterion and must be distinguishable from "never measured".
	reg.Add("clusterd.jobs.lost", 0)
	reg.Add("clusterd.jobs.double.completed", 0)

	svc, err := yarn.NewService(cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("clusterd: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		svc.Close()
		return nil, fmt.Errorf("clusterd: listen %s: %w", cfg.Addr, err)
	}

	d := &Daemon{
		cfg:         cfg,
		reg:         reg,
		rec:         rec,
		slo:         slo,
		svc:         svc,
		ln:          ln,
		queue:       make(chan queuedJob, cfg.QueueSize),
		inflight:    make(chan struct{}, cfg.MaxInFlight),
		state:       StateServing,
		conns:       make(map[net.Conn]struct{}),
		outstanding: make(map[cluster.JobID]struct{}),
		samplerStop: make(chan struct{}),
		done:        make(chan struct{}),
	}
	if cfg.OpsAddr != "" {
		addr, stop, err := obs.ServeOps(cfg.OpsAddr, reg, "preemptsched", d.ready, slo)
		if err != nil {
			ln.Close()
			svc.Close()
			return nil, err
		}
		d.opsAddr, d.opsStop = addr, stop
	}
	d.dispatchWG.Add(1)
	go d.dispatch(d.queue, d.inflight)
	d.samplerWG.Add(1)
	go d.sample(d.samplerStop)
	d.acceptWG.Add(1)
	go d.acceptLoop(&d.acceptWG)
	return d, nil
}

// Addr returns the bound wire-protocol address.
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// OpsAddr returns the bound ops endpoint address, or "" when disabled.
func (d *Daemon) OpsAddr() string { return d.opsAddr }

// Recorder returns the daemon's always-on flight recorder, for flushing
// the provenance journal on shutdown or crash.
func (d *Daemon) Recorder() *obs.Recorder { return d.rec }

// SLO returns the daemon's live SLO tracker.
func (d *Daemon) SLO() *obs.SLOTracker { return d.slo }

// ready reports whether the daemon is admitting jobs; /readyz flips to
// 503 the instant draining starts, before the wire listener goes away.
func (d *Daemon) ready() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state == StateServing
}

// acceptLoop owns the wire listener until Shutdown closes it.
func (d *Daemon) acceptLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		conn, err := d.ln.Accept()
		if err != nil {
			return
		}
		d.mu.Lock()
		d.conns[conn] = struct{}{}
		d.mu.Unlock()
		d.connWG.Add(1)
		go d.handleConn(&d.connWG, conn)
	}
}

// handleConn serves one client's request/response stream.
func (d *Daemon) handleConn(wg *sync.WaitGroup, conn net.Conn) {
	defer wg.Done()
	defer func() {
		conn.Close()
		d.mu.Lock()
		delete(d.conns, conn)
		d.mu.Unlock()
	}()
	dec := json.NewDecoder(bufio.NewReader(conn))
	enc := json.NewEncoder(conn)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // EOF, malformed stream, or forced close during stop
		}
		resp := d.handle(&req)
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func (d *Daemon) handle(req *Request) Response {
	switch req.Op {
	case "ping":
		return Response{OK: true, State: d.stateNow()}
	case "submit":
		return d.admit(req.Job)
	case "stats":
		st := d.Stats()
		return Response{OK: true, State: st.State, Stats: &st}
	default:
		return Response{Error: fmt.Sprintf("clusterd: unknown op %q", req.Op), State: d.stateNow()}
	}
}

func (d *Daemon) stateNow() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// admit is the admission decision: O(1) and non-blocking by
// construction — validate, then either reserve a queue slot or reject
// with a retry-after hint. It never waits on the engine, which is what
// keeps the p99 admission latency inside the DESIGN.md §12 budget.
func (d *Daemon) admit(jr *JobRequest) Response {
	start := time.Now()
	defer func() {
		d.reg.ObserveDuration("clusterd.admission.seconds", time.Since(start))
	}()
	d.submitted.Add(1)
	d.reg.Inc("clusterd.jobs.submitted")

	if jr == nil {
		d.rejected.Add(1)
		d.reg.Inc("clusterd.jobs.rejected")
		return Response{Error: "clusterd: submit without job", State: d.stateNow()}
	}
	if err := jr.validate(); err != nil {
		d.rejected.Add(1)
		d.reg.Inc("clusterd.jobs.rejected")
		return Response{Error: err.Error(), State: d.stateNow()}
	}

	d.mu.Lock()
	if d.state != StateServing {
		state := d.state
		d.mu.Unlock()
		d.rejected.Add(1)
		d.reg.Inc("clusterd.jobs.rejected")
		return Response{Error: "clusterd: draining, not admitting", State: state}
	}
	// Priority-aware shedding: once the queue crosses the high-water
	// mark, free-band submissions are rejected while the reserved tail
	// still admits paid bands — a flood of best-effort work must not
	// starve paying bands into queue-full rejections.
	if cluster.BandOf(cluster.Priority(jr.Priority)) == cluster.BandFree &&
		len(d.queue) >= d.cfg.QueueSize-d.paidReserve() {
		d.mu.Unlock()
		d.rejected.Add(1)
		d.reg.Inc("clusterd.jobs.rejected")
		d.reg.Inc("clusterd.jobs.shed.free.band")
		return Response{
			Error:        "clusterd: queue saturated, free-band submissions shed first",
			RetryAfterMS: d.cfg.RetryAfter.Milliseconds(),
			State:        StateServing,
		}
	}
	id := cluster.JobID(d.nextID.Add(1))
	spec := jr.spec(id)
	select {
	case d.queue <- queuedJob{spec: spec}:
		d.outstanding[id] = struct{}{}
		depth := len(d.queue)
		d.mu.Unlock()
		d.admitted.Add(1)
		d.reg.Inc("clusterd.jobs.admitted")
		d.reg.SetGauge("clusterd.queue.depth", float64(depth))
		return Response{OK: true, JobID: int64(id), State: StateServing}
	default:
		d.mu.Unlock()
		d.rejected.Add(1)
		d.reg.Inc("clusterd.jobs.rejected")
		return Response{
			Error:        "clusterd: admission queue full",
			RetryAfterMS: d.cfg.RetryAfter.Milliseconds(),
			State:        StateServing,
		}
	}
}

// paidReserve is the number of queue slots held back for paid-band work
// under pressure: a quarter of the queue, at least one slot.
func (d *Daemon) paidReserve() int {
	r := d.cfg.QueueSize / 4
	if r < 1 {
		r = 1
	}
	return r
}

func (jr *JobRequest) validate() error {
	if jr.Tasks <= 0 {
		return fmt.Errorf("clusterd: job needs at least one task, got %d", jr.Tasks)
	}
	if jr.DurationMS <= 0 {
		return fmt.Errorf("clusterd: job needs a positive duration, got %dms", jr.DurationMS)
	}
	if p := cluster.Priority(jr.Priority); p < cluster.MinPriority || p > cluster.MaxPriority {
		return fmt.Errorf("clusterd: priority %d outside [%d,%d]", jr.Priority, cluster.MinPriority, cluster.MaxPriority)
	}
	return nil
}

// spec materializes the wire job as a JobSpec under the daemon-assigned
// ID. Submit instants stay zero: the service stamps them with virtual
// now at admission.
func (jr *JobRequest) spec(id cluster.JobID) cluster.JobSpec {
	foot := jr.MemFootprintBytes
	if foot <= 0 {
		foot = cluster.GiB(1)
	}
	j := cluster.JobSpec{ID: id, Priority: cluster.Priority(jr.Priority), User: jr.User}
	for i := 0; i < jr.Tasks; i++ {
		j.Tasks = append(j.Tasks, cluster.TaskSpec{
			ID:           cluster.TaskID{Job: id, Index: int32(i)},
			Priority:     j.Priority,
			User:         j.User,
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
			MemFootprint: foot,
			Duration:     time.Duration(jr.DurationMS) * time.Millisecond,
		})
	}
	return j
}

// dispatch moves admitted jobs from the queue into the engine, holding an
// in-flight token per job so at most MaxInFlight are outstanding. The
// token is released by the job's completion callback, so a stalled engine
// backs pressure up through the queue to rejections at the edge.
func (d *Daemon) dispatch(queue <-chan queuedJob, inflight chan struct{}) {
	defer d.dispatchWG.Done()
	for qj := range queue {
		inflight <- struct{}{}
		d.reg.SetGauge("clusterd.queue.depth", float64(len(queue)))
		id := qj.spec.ID
		err := d.svc.Submit(qj.spec, func(done yarn.JobDone) {
			<-inflight
			d.complete(done.ID)
		})
		if err != nil {
			// Admitted but unrunnable: the job is lost. This cannot happen
			// in the state machine (the dispatcher drains before the
			// service closes) — counted rather than assumed.
			<-inflight
			d.mu.Lock()
			delete(d.outstanding, id)
			d.mu.Unlock()
			d.lost.Add(1)
			d.reg.Inc("clusterd.jobs.lost")
			d.firstLossErr.CompareAndSwap(nil, err)
		}
	}
}

// complete is the engine-side completion callback: exactly one per
// admitted job, anything else is a double completion.
func (d *Daemon) complete(id cluster.JobID) {
	d.mu.Lock()
	_, ok := d.outstanding[id]
	if ok {
		delete(d.outstanding, id)
	}
	d.mu.Unlock()
	if !ok {
		d.doubleCompleted.Add(1)
		d.reg.Inc("clusterd.jobs.double.completed")
		return
	}
	d.completed.Add(1)
	d.reg.Inc("clusterd.jobs.completed")
}

// sample publishes runtime gauges (goroutines, heap) every interval so
// the soak harness can detect growth from /metrics alone.
func (d *Daemon) sample(stop <-chan struct{}) {
	defer d.samplerWG.Done()
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			d.reg.SetGauge("clusterd.goroutines", float64(runtime.NumGoroutine()))
			d.reg.SetGauge("clusterd.heap.bytes", float64(ms.HeapAlloc))
			d.slo.PublishGauges(d.reg)
		}
	}
}

// Stats snapshots the daemon's books.
func (d *Daemon) Stats() Stats {
	d.mu.Lock()
	state := d.state
	d.mu.Unlock()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := Stats{
		State:           state,
		Submitted:       d.submitted.Load(),
		Admitted:        d.admitted.Load(),
		Rejected:        d.rejected.Load(),
		Completed:       d.completed.Load(),
		Lost:            d.lost.Load(),
		DoubleCompleted: d.doubleCompleted.Load(),
		QueueDepth:      len(d.queue),
		InFlight:        len(d.inflight),
		Goroutines:      runtime.NumGoroutine(),
		HeapBytes:       ms.HeapAlloc,
		VirtualNowNS:    int64(d.svc.Now()),
	}
	if h, ok := d.reg.Snapshot().Histograms["clusterd.admission.seconds"]; ok {
		st.AdmissionP99Sec = h.Quantile(0.99)
	}
	return st
}

// Result returns the cluster's aggregated result; valid after Shutdown.
func (d *Daemon) Result() *yarn.Result { return d.res }

// Shutdown executes the graceful drain: flip to Draining (rejecting new
// submissions but still answering stats), dispatch everything already
// admitted, run the engine dry, then tear down listeners, conns, the ops
// server, and the sampler. If ctx expires mid-drain the cluster is
// aborted instead — DFS I/O is cancelled so running work degrades to
// kills and the drain converges quickly; no admitted job is lost either
// way. Idempotent: later calls wait for the first and return its error.
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.mu.Lock()
	if d.state != StateServing {
		d.mu.Unlock()
		<-d.done
		return d.closeErr
	}
	d.state = StateDraining
	close(d.queue)
	d.mu.Unlock()
	d.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(d.svc.Now()),
		Source: "clusterd", Name: "drain-begin",
	})

	// Everything admitted reaches the engine, then the engine drains.
	d.dispatchWG.Wait()
	drained := make(chan struct{})
	go func() {
		d.res, d.closeErr = d.svc.Close()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		d.svc.Abort()
		<-drained
	}
	d.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(d.svc.Now()),
		Source: "clusterd", Name: "drain-end",
	})

	// Lost-job audit: after a full drain nothing may be outstanding.
	d.mu.Lock()
	for id := range d.outstanding {
		delete(d.outstanding, id)
		d.lost.Add(1)
		d.reg.Inc("clusterd.jobs.lost")
	}
	d.mu.Unlock()
	if n := d.lost.Load(); n > 0 && d.closeErr == nil {
		d.closeErr = fmt.Errorf("clusterd: %d jobs lost in drain", n)
		if first, ok := d.firstLossErr.Load().(error); ok {
			d.closeErr = fmt.Errorf("clusterd: %d jobs lost in drain (first: %w)", n, first)
		}
	}

	// Edge teardown: wire listener, open conns, ops server, sampler.
	d.ln.Close()
	d.acceptWG.Wait()
	d.mu.Lock()
	open := make([]net.Conn, 0, len(d.conns))
	for c := range d.conns {
		open = append(open, c)
	}
	d.state = StateStopped
	d.mu.Unlock()
	for _, c := range open {
		c.Close()
	}
	d.connWG.Wait()
	if d.opsStop != nil {
		d.opsStop()
	}
	close(d.samplerStop)
	d.samplerWG.Wait()
	close(d.done)
	return d.closeErr
}

// ErrNotDrained reports a soak invariant violation discoverable from
// Stats; exported so callers can errors.Is on loadgen failures.
var ErrNotDrained = errors.New("clusterd: jobs still outstanding")
