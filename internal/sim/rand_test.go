package sim

import (
	"sync"
	"testing"
)

// The parallel experiment harness (DESIGN.md §11) leans on one property
// of RNG.Fork: a child stream is a pure function of the parent's seed
// and the fork label. Neither the parent's draw position nor the order
// in which siblings are forked — both of which vary with pool
// scheduling — may leak into a child's sequence. These tests pin that
// contract.

// draws materializes the first n values of a stream.
func draws(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

func sameDraws(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestForkIndependentOfForkOrder(t *testing.T) {
	labels := []int64{0, 1, 2, 7, 100, -3}
	want := make(map[int64][]float64)
	parent := NewRNG(42)
	for _, l := range labels {
		want[l] = draws(parent.Fork(l), 32)
	}

	// Reversed fork order, with parent draws interleaved between forks to
	// simulate other modules consuming the parent stream.
	parent = NewRNG(42)
	for i := len(labels) - 1; i >= 0; i-- {
		parent.Float64()
		got := draws(parent.Fork(labels[i]), 32)
		if !sameDraws(got, want[labels[i]]) {
			t.Errorf("label %d: stream depends on fork order or parent draw position", labels[i])
		}
	}
}

func TestForkDistinctLabelsDistinctStreams(t *testing.T) {
	parent := NewRNG(7)
	a := draws(parent.Fork(1), 16)
	b := draws(parent.Fork(2), 16)
	if sameDraws(a, b) {
		t.Error("labels 1 and 2 produced identical streams")
	}
}

func TestForkGrandchildrenDeterministic(t *testing.T) {
	a := draws(NewRNG(5).Fork(3).Fork(9), 16)
	b := draws(NewRNG(5).Fork(3).Fork(9), 16)
	if !sameDraws(a, b) {
		t.Error("same fork path from same root produced different streams")
	}
}

// TestForkConcurrent forks from a shared parent on many goroutines, the
// access pattern a worker pool produces. Fork reads only the immutable
// seed, so this must be race-free (run with -race) and every child must
// match its sequentially-forked twin.
func TestForkConcurrent(t *testing.T) {
	parent := NewRNG(99)
	const n = 64
	want := make([][]float64, n)
	for i := range want {
		want[i] = draws(parent.Fork(int64(i)), 16)
	}

	got := make([][]float64, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = draws(parent.Fork(int64(i)), 16)
		}(i)
	}
	wg.Wait()
	for i := range want {
		if !sameDraws(got[i], want[i]) {
			t.Errorf("label %d: concurrent fork diverged from sequential fork", i)
		}
	}
}
