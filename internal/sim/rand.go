package sim

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with an explicit seed so that every stochastic input
// to a simulation is reproducible. All modules draw randomness through an
// RNG handed to them at construction; nothing reads global rand state.
type RNG struct {
	*rand.Rand
	seed int64
}

// NewRNG returns a deterministic source seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{Rand: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns the seed the RNG was constructed with.
func (r *RNG) Seed() int64 { return r.seed }

// Fork derives an independent child stream. Deriving children rather than
// sharing one stream keeps module A's draw count from perturbing module B.
func (r *RNG) Fork(label int64) *RNG {
	return NewRNG(r.seed*1000003 + label*7919 + 12345)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	return r.ExpFloat64() * mean
}

// LogNormal returns a log-normally distributed value where the underlying
// normal distribution has the given mu and sigma.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Bounded returns a value drawn uniformly from [lo, hi).
func (r *RNG) Bounded(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + r.Float64()*(hi-lo)
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Pareto returns a bounded Pareto-distributed value with shape alpha and
// scale xm, truncated at maxV. Heavy-tailed task durations in cluster traces
// are conventionally modelled this way.
func (r *RNG) Pareto(xm, alpha, maxV float64) float64 {
	v := xm / math.Pow(r.Float64(), 1/alpha)
	if v > maxV {
		return maxV
	}
	return v
}
