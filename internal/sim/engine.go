// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of future
// events. Events scheduled for the same instant fire in scheduling order,
// which keeps runs byte-for-byte reproducible for a given seed and
// workload. All simulator layers (trace-driven scheduler, mini-YARN
// framework, storage devices) share one engine so that cross-component
// causality is globally ordered.
package sim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual instant, expressed as an offset from the start of the
// simulation. It deliberately reuses time.Duration so that arithmetic with
// modelled latencies needs no conversions.
type Time = time.Duration

// Handler is a callback invoked when an event fires. The engine passes the
// current virtual time, which equals the time the event was scheduled for.
type Handler func(now Time)

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled timer is a no-op.
type Timer struct {
	at      Time
	seq     uint64
	fn      Handler
	index   int // position in the heap, -1 once removed
	stopped bool
	// pooled marks records allocated from the engine's free list via
	// At/After. No handle to a pooled timer ever escapes, so the engine
	// zeroes and recycles it the moment it leaves the queue.
	pooled bool
}

// At reports the virtual instant the timer is scheduled for.
func (t *Timer) At() Time { return t.at }

// Stopped reports whether the timer was cancelled or has fired.
func (t *Timer) Stopped() bool { return t.stopped }

// Engine is a discrete-event executor. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	fired   uint64
	// free recycles the records of fired no-handle timers. Its length is
	// bounded by the peak number of pending At/After events.
	free []*Timer
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. It is useful for
// progress accounting and for asserting that simulations terminate.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events that are scheduled and not cancelled.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPast is returned by ScheduleAt when the requested instant is earlier
// than the current virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ScheduleAt registers fn to run at virtual instant at. It panics if at is
// before the current time: scheduling into the past is always a logic error
// in a discrete-event program, and continuing would silently reorder
// causality.
func (e *Engine) ScheduleAt(at Time, fn Handler) *Timer {
	if at < e.now {
		panic(fmt.Errorf("%w: now=%v requested=%v", ErrPast, e.now, at))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	e.queue.push(t)
	return t
}

// Schedule registers fn to run after delay d (>= 0) from the current time.
func (e *Engine) Schedule(d time.Duration, fn Handler) *Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// At registers fn to run at virtual instant at without returning a
// handle. Events scheduled this way cannot be cancelled, which frees the
// engine to recycle their records the moment they fire — prefer At over
// ScheduleAt on hot paths that discard the timer.
func (e *Engine) At(at Time, fn Handler) {
	if at < e.now {
		panic(fmt.Errorf("%w: now=%v requested=%v", ErrPast, e.now, at))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	var t *Timer
	if n := len(e.free); n > 0 {
		t = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		t = &Timer{}
	}
	t.at, t.seq, t.fn, t.pooled = at, e.seq, fn, true
	e.seq++
	e.queue.push(t)
}

// After registers fn to run after delay d (>= 0) without returning a
// handle, with the same recycling freedom as At.
func (e *Engine) After(d time.Duration, fn Handler) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Cancel removes a pending timer. It is safe to call for timers that have
// already fired or been cancelled.
func (e *Engine) Cancel(t *Timer) {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	if t.index >= 0 {
		e.queue.remove(t.index)
	}
}

// release recycles a pooled record once it has left the queue. The record
// is zeroed first so the pool never resurrects a stale handler closure and
// tests can assert get-returns-zeroed.
func (e *Engine) release(t *Timer) {
	if !t.pooled {
		return
	}
	*t = Timer{}
	e.free = append(e.free, t)
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		t := e.queue.pop()
		if t.stopped {
			e.release(t)
			continue
		}
		t.stopped = true
		at, fn := t.at, t.fn
		// Recycle before invoking: t is fully consumed, and fn may itself
		// schedule (and want to reuse) pooled records.
		e.release(t)
		e.now = at
		e.fired++
		fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue is empty. It returns the final virtual
// time.
func (e *Engine) Run() Time {
	return e.RunUntil(Time(math.MaxInt64))
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the earlier of deadline and the time of the last fired event. It
// returns the final virtual time. Events scheduled beyond the deadline stay
// queued.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly from an event handler")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.stopped {
			e.release(e.queue.pop())
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if deadline != Time(math.MaxInt64) && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// eventQueue is an indexed binary min-heap of timers ordered by (time,
// sequence). It is hand-specialized rather than built on container/heap:
// the (at, seq) key is a total order, so any correct heap pops events in
// exactly the same sequence, and skipping the interface-dispatch
// Less/Swap round trips roughly halves the per-event queue cost (see
// BenchmarkEngine* deltas in DESIGN.md §16).
type eventQueue []*Timer

// before is the strict (at, seq) ordering.
func before(a, b *Timer) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(t *Timer) {
	h := *q
	t.index = len(h)
	h = append(h, t)
	*q = h
	h.siftUp(t.index)
}

func (q *eventQueue) pop() *Timer {
	h := *q
	t := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	h = h[:n]
	*q = h
	if n > 1 {
		h.siftDown(0)
	}
	t.index = -1
	return t
}

// remove deletes the timer at heap position i (Cancel's path).
func (q *eventQueue) remove(i int) {
	h := *q
	n := len(h) - 1
	t := h[i]
	if i != n {
		h[i] = h[n]
		h[i].index = i
	}
	h[n] = nil
	h = h[:n]
	*q = h
	if i < n {
		if !h.siftUp(i) {
			h.siftDown(i)
		}
	}
	t.index = -1
}

// siftUp restores the heap invariant upward from i, reporting whether the
// element moved.
func (q eventQueue) siftUp(i int) bool {
	t := q[i]
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !before(t, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
		moved = true
	}
	q[i] = t
	t.index = i
	return moved
}

// siftDown restores the heap invariant downward from i.
func (q eventQueue) siftDown(i int) {
	t := q[i]
	n := len(q)
	for {
		kid := 2*i + 1
		if kid >= n {
			break
		}
		if r := kid + 1; r < n && before(q[r], q[kid]) {
			kid = r
		}
		if !before(q[kid], t) {
			break
		}
		q[i] = q[kid]
		q[i].index = i
		i = kid
	}
	q[i] = t
	t.index = i
}
