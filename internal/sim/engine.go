// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and an ordered queue of future
// events. Events scheduled for the same instant fire in scheduling order,
// which keeps runs byte-for-byte reproducible for a given seed and
// workload. All simulator layers (trace-driven scheduler, mini-YARN
// framework, storage devices) share one engine so that cross-component
// causality is globally ordered.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Time is a virtual instant, expressed as an offset from the start of the
// simulation. It deliberately reuses time.Duration so that arithmetic with
// modelled latencies needs no conversions.
type Time = time.Duration

// Handler is a callback invoked when an event fires. The engine passes the
// current virtual time, which equals the time the event was scheduled for.
type Handler func(now Time)

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancelling an already-fired or already-cancelled timer is a no-op.
type Timer struct {
	at      Time
	seq     uint64
	fn      Handler
	index   int // position in the heap, -1 once removed
	stopped bool
}

// At reports the virtual instant the timer is scheduled for.
func (t *Timer) At() Time { return t.at }

// Stopped reports whether the timer was cancelled or has fired.
func (t *Timer) Stopped() bool { return t.stopped }

// Engine is a discrete-event executor. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far. It is useful for
// progress accounting and for asserting that simulations terminate.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events that are scheduled and not cancelled.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPast is returned by ScheduleAt when the requested instant is earlier
// than the current virtual time.
var ErrPast = errors.New("sim: event scheduled in the past")

// ScheduleAt registers fn to run at virtual instant at. It panics if at is
// before the current time: scheduling into the past is always a logic error
// in a discrete-event program, and continuing would silently reorder
// causality.
func (e *Engine) ScheduleAt(at Time, fn Handler) *Timer {
	if at < e.now {
		panic(fmt.Errorf("%w: now=%v requested=%v", ErrPast, e.now, at))
	}
	if fn == nil {
		panic("sim: nil handler")
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, t)
	return t
}

// Schedule registers fn to run after delay d (>= 0) from the current time.
func (e *Engine) Schedule(d time.Duration, fn Handler) *Timer {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now+d, fn)
}

// Cancel removes a pending timer. It is safe to call for timers that have
// already fired or been cancelled.
func (e *Engine) Cancel(t *Timer) {
	if t == nil || t.stopped {
		return
	}
	t.stopped = true
	if t.index >= 0 {
		heap.Remove(&e.queue, t.index)
	}
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		t := heap.Pop(&e.queue).(*Timer)
		if t.stopped {
			continue
		}
		t.stopped = true
		e.now = t.at
		e.fired++
		t.fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue is empty. It returns the final virtual
// time.
func (e *Engine) Run() Time {
	return e.RunUntil(Time(math.MaxInt64))
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the earlier of deadline and the time of the last fired event. It
// returns the final virtual time. Events scheduled beyond the deadline stay
// queued.
func (e *Engine) RunUntil(deadline Time) Time {
	if e.running {
		panic("sim: Run called re-entrantly from an event handler")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.stopped {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if deadline != Time(math.MaxInt64) && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// eventQueue is a binary min-heap ordered by (time, sequence).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	t := x.(*Timer)
	t.index = len(*q)
	*q = append(*q, t)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*q = old[:n-1]
	return t
}
