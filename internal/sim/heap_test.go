package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// checkHeap verifies the structural invariants the specialized queue must
// maintain: parent <= child under the (at, seq) order, and every element's
// index field pointing at its own slot.
func checkHeap(t *testing.T, q eventQueue) {
	t.Helper()
	for i, tm := range q {
		if tm.index != i {
			t.Fatalf("queue[%d].index = %d", i, tm.index)
		}
		if i > 0 {
			parent := (i - 1) / 2
			if before(tm, q[parent]) {
				t.Fatalf("heap violated at %d: (%v,%d) before parent (%v,%d)",
					i, tm.at, tm.seq, q[parent].at, q[parent].seq)
			}
		}
	}
}

// refSort returns the timers in the exact (at, seq) total order — the
// reference the heap must reproduce pop by pop.
func refSort(ts []*Timer) []*Timer {
	out := append([]*Timer(nil), ts...)
	sort.Slice(out, func(i, j int) bool { return before(out[i], out[j]) })
	return out
}

// TestEventQueuePopOrderMatchesSort drains a randomly filled queue and
// compares the pop sequence against a reference sort, pointer for
// pointer. Duplicate timestamps are deliberately dense so the seq
// tiebreak carries the ordering.
func TestEventQueuePopOrderMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		var q eventQueue
		var all []*Timer
		n := 1 + rng.Intn(300)
		for i := 0; i < n; i++ {
			tm := &Timer{at: Time(rng.Intn(16)), seq: uint64(i)}
			all = append(all, tm)
			q.push(tm)
		}
		checkHeap(t, q)
		want := refSort(all)
		for i, w := range want {
			got := q.pop()
			if got != w {
				t.Fatalf("trial %d pop %d: got (%v,%d), want (%v,%d)",
					trial, i, got.at, got.seq, w.at, w.seq)
			}
			if got.index != -1 {
				t.Fatalf("popped timer index %d, want -1", got.index)
			}
		}
		if len(q) != 0 {
			t.Fatalf("queue not drained: %d left", len(q))
		}
	}
}

// TestEventQueueRemoveKeepsOrder interleaves interior removals (Cancel's
// path) with pushes and verifies the survivors still drain in reference
// order.
func TestEventQueueRemoveKeepsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		var q eventQueue
		live := map[*Timer]bool{}
		seq := uint64(0)
		for op := 0; op < 400; op++ {
			if len(q) == 0 || rng.Intn(3) > 0 {
				tm := &Timer{at: Time(rng.Intn(32)), seq: seq}
				seq++
				live[tm] = true
				q.push(tm)
			} else {
				i := rng.Intn(len(q))
				tm := q[i]
				q.remove(i)
				if tm.index != -1 {
					t.Fatalf("removed timer index %d, want -1", tm.index)
				}
				delete(live, tm)
			}
			checkHeap(t, q)
		}
		var rest []*Timer
		for tm := range live {
			rest = append(rest, tm)
		}
		for i, w := range refSort(rest) {
			if got := q.pop(); got != w {
				t.Fatalf("trial %d drain %d: got (%v,%d), want (%v,%d)",
					trial, i, got.at, got.seq, w.at, w.seq)
			}
		}
	}
}

// FuzzEventQueue drives push/pop/remove from fuzz bytes against a mirror
// model: every pop must return the (at, seq) minimum of the mirror, and
// the heap invariants must hold after every operation.
func FuzzEventQueue(f *testing.F) {
	f.Add([]byte{0, 5, 0, 3, 1, 0, 2, 0, 0, 9, 1})
	f.Add([]byte{0, 1, 0, 1, 0, 1, 2, 1, 2, 0, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		var q eventQueue
		var mirror []*Timer
		seq := uint64(0)
		for i := 0; i < len(ops); i++ {
			switch ops[i] % 3 {
			case 0: // push, at from the next byte
				i++
				if i >= len(ops) {
					return
				}
				tm := &Timer{at: Time(ops[i] % 8), seq: seq}
				seq++
				q.push(tm)
				mirror = append(mirror, tm)
			case 1: // pop
				if len(q) == 0 {
					continue
				}
				got := q.pop()
				want := refSort(mirror)[0]
				if got != want {
					t.Fatalf("pop: got (%v,%d), want (%v,%d)", got.at, got.seq, want.at, want.seq)
				}
				mirror = removePtr(mirror, got)
			case 2: // remove at a position from the next byte
				if len(q) == 0 {
					continue
				}
				i++
				if i >= len(ops) {
					return
				}
				pos := int(ops[i]) % len(q)
				tm := q[pos]
				q.remove(pos)
				mirror = removePtr(mirror, tm)
			}
			if len(q) != len(mirror) {
				t.Fatalf("size skew: heap %d, mirror %d", len(q), len(mirror))
			}
			checkHeap(t, q)
		}
	})
}

func removePtr(ts []*Timer, tm *Timer) []*Timer {
	for i, x := range ts {
		if x == tm {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

// isZero reports whether a timer record has been wiped back to the zero
// value (Handler is not comparable, so field-by-field).
func isZero(tm *Timer) bool {
	return tm.at == 0 && tm.seq == 0 && tm.fn == nil &&
		tm.index == 0 && !tm.stopped && !tm.pooled
}

// TestPooledRecordsZeroedOnRelease: a fired At record lands on the free
// list fully zeroed, so the pool can never resurrect a stale handler.
func TestPooledRecordsZeroedOnRelease(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(5, func(now Time) { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d events", fired)
	}
	if len(e.free) != 1 {
		t.Fatalf("free list has %d records, want 1", len(e.free))
	}
	if !isZero(e.free[0]) {
		t.Fatalf("released record not zeroed: %+v", *e.free[0])
	}
}

// TestPooledRecordsNotReusedWhilePending: concurrently pending At events
// always occupy distinct records, and no queued record is ever also on
// the free list.
func TestPooledRecordsNotReusedWhilePending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 8; i++ {
		e.At(Time(10+i), func(now Time) {})
	}
	if len(e.free) != 0 {
		t.Fatalf("free list non-empty with all events pending: %d", len(e.free))
	}
	seen := map[*Timer]bool{}
	for _, tm := range e.queue {
		if seen[tm] {
			t.Fatal("two queue slots share one record")
		}
		seen[tm] = true
	}
	// Fire one event; its record must be recycled by the next At, and the
	// handler must still observe its own scheduled time.
	e.Step()
	if len(e.free) != 1 {
		t.Fatalf("free list has %d records after one firing, want 1", len(e.free))
	}
	recycled := e.free[0]
	if !isZero(recycled) {
		t.Fatalf("free record not zeroed: %+v", *recycled)
	}
	var gotAt Time
	e.At(40, func(now Time) { gotAt = now })
	if len(e.free) != 0 {
		t.Fatal("At did not take the free record")
	}
	found := false
	for _, tm := range e.queue {
		if tm == recycled {
			found = true
			if tm.at != 40 || tm.fn == nil || !tm.pooled {
				t.Fatalf("recycled record misfilled: %+v", *tm)
			}
		}
	}
	if !found {
		t.Fatal("recycled record not back in the queue")
	}
	e.Run()
	if gotAt != 40 {
		t.Fatalf("recycled event fired at %v, want 40", gotAt)
	}
}

// TestHandleTimersStayOutOfPool: ScheduleAt records can be cancelled
// through their handle at any point, so they must never enter the free
// list — fired or cancelled.
func TestHandleTimersStayOutOfPool(t *testing.T) {
	e := NewEngine()
	h1 := e.ScheduleAt(1, func(now Time) {})
	h2 := e.ScheduleAt(2, func(now Time) {})
	e.Cancel(h2)
	e.Run()
	if len(e.free) != 0 {
		t.Fatalf("handle-returning timers leaked into the pool: %d", len(e.free))
	}
	if !h1.Stopped() || !h2.Stopped() {
		t.Fatal("handles not stopped after run")
	}
	// A stale Cancel on a long-dead handle must stay a no-op even after
	// pooled traffic has churned the queue.
	e.At(e.Now()+1, func(now Time) {})
	e.Cancel(h2)
	e.Run()
	if e.Fired() != 2 {
		t.Fatalf("fired %d events, want 2 (h2 was cancelled)", e.Fired())
	}
}
