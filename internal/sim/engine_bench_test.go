package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineChurn measures raw event throughput: schedule-and-fire
// chains, the pattern every simulation layer stresses.
func BenchmarkEngineChurn(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var tick func(now Time)
	tick = func(now Time) {
		if remaining == 0 {
			return
		}
		remaining--
		e.Schedule(time.Microsecond, tick)
	}
	e.Schedule(0, tick)
	b.ResetTimer()
	e.Run()
	b.ReportMetric(float64(e.Fired()), "events")
}

// BenchmarkEngineHeap measures scheduling N future events and draining
// them — the heap's push/pop cost.
func BenchmarkEngineHeap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		e := NewEngine()
		rng := NewRNG(int64(i))
		b.StartTimer()
		for j := 0; j < 10_000; j++ {
			e.Schedule(time.Duration(rng.Intn(1_000_000))*time.Microsecond, func(Time) {})
		}
		e.Run()
	}
}

// BenchmarkEngineCancel measures timer cancellation, the path preemption
// exercises when it cancels completion timers.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	timers := make([]*Timer, 0, b.N)
	for i := 0; i < b.N; i++ {
		timers = append(timers, e.Schedule(time.Duration(i+1)*time.Microsecond, func(Time) {}))
	}
	b.ResetTimer()
	for _, t := range timers {
		e.Cancel(t)
	}
}

// BenchmarkEngineChurnAfter is BenchmarkEngineChurn on the no-handle
// After path: fire-and-forget records recycle through the engine's free
// list, so steady-state churn allocates nothing.
func BenchmarkEngineChurnAfter(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var tick func(now Time)
	tick = func(now Time) {
		if remaining == 0 {
			return
		}
		remaining--
		e.After(time.Microsecond, tick)
	}
	e.After(0, tick)
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}
