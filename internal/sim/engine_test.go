package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{5, 1, 3, 2, 4} {
		d := d * time.Second
		e.Schedule(d, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []time.Duration{1, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w*time.Second {
			t.Errorf("event %d fired at %v, want %v", i, got[i], w*time.Second)
		}
	}
}

func TestEngineStableOrderAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 20; i++ {
		i := i
		e.Schedule(time.Second, func(Time) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: got %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.Schedule(time.Second, func(Time) { fired = true })
	e.Cancel(tm)
	e.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if !tm.Stopped() {
		t.Error("cancelled timer not marked stopped")
	}
	e.Cancel(tm) // double-cancel must be a no-op
}

func TestEngineCancelFromHandler(t *testing.T) {
	e := NewEngine()
	fired := false
	var victim *Timer
	victim = e.Schedule(2*time.Second, func(Time) { fired = true })
	e.Schedule(time.Second, func(Time) { e.Cancel(victim) })
	e.Run()
	if fired {
		t.Error("timer cancelled from an earlier handler still fired")
	}
}

func TestEngineScheduleFromHandler(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(time.Second, func(now Time) {
		e.Schedule(3*time.Second, func(n Time) { at = n })
	})
	e.Run()
	if at != 4*time.Second {
		t.Errorf("chained event fired at %v, want 4s", at)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(time.Duration(i)*time.Second, func(Time) { count++ })
	}
	e.RunUntil(5 * time.Second)
	if count != 5 {
		t.Errorf("fired %d events before deadline, want 5", count)
	}
	if e.Now() != 5*time.Second {
		t.Errorf("clock at %v, want 5s", e.Now())
	}
	if e.Pending() != 5 {
		t.Errorf("pending %d, want 5", e.Pending())
	}
	e.Run()
	if count != 10 {
		t.Errorf("fired %d total, want 10", count)
	}
}

func TestEngineRunUntilAdvancesClockPastLastEvent(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func(Time) {})
	e.RunUntil(10 * time.Second)
	if e.Now() != 10*time.Second {
		t.Errorf("clock at %v, want deadline 10s", e.Now())
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.Schedule(2*time.Second, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(time.Second, func(Time) {})
}

func TestEnginePanicsOnNilHandler(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil handler did not panic")
		}
	}()
	e.Schedule(time.Second, nil)
}

func TestEngineNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func(Time) {})
	e.Step()
	fired := false
	e.Schedule(-5*time.Second, func(now Time) { fired = now == time.Second })
	e.Run()
	if !fired {
		t.Error("negative delay should fire immediately at current time")
	}
}

func TestEngineFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func(Time) {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Errorf("Fired() = %d, want 7", e.Fired())
	}
}

// Property: for any multiset of delays, the engine fires them in
// non-decreasing time order and the clock never moves backwards.
func TestEngineMonotonicClockProperty(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		e := NewEngine()
		var last Time = -1
		ok := true
		for _, d := range delaysMs {
			e.Schedule(time.Duration(d)*time.Millisecond, func(now Time) {
				if now < last {
					ok = false
				}
				last = now
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset of timers fires exactly the
// complement.
func TestEngineCancelSubsetProperty(t *testing.T) {
	f := func(delaysMs []uint16, cancelMask []bool) bool {
		e := NewEngine()
		fired := make([]bool, len(delaysMs))
		timers := make([]*Timer, len(delaysMs))
		for i, d := range delaysMs {
			i := i
			timers[i] = e.Schedule(time.Duration(d)*time.Millisecond, func(Time) { fired[i] = true })
		}
		for i := range timers {
			if i < len(cancelMask) && cancelMask[i] {
				e.Cancel(timers[i])
			}
		}
		e.Run()
		for i := range timers {
			cancelled := i < len(cancelMask) && cancelMask[i]
			if fired[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	root := NewRNG(7)
	c1 := root.Fork(1)
	c2 := root.Fork(2)
	if c1.Seed() == c2.Seed() {
		t.Error("forked children share a seed")
	}
	// Draw from c1; c2 must be unaffected compared to a fresh fork.
	for i := 0; i < 100; i++ {
		c1.Float64()
	}
	fresh := NewRNG(7).Fork(2)
	for i := 0; i < 100; i++ {
		if c2.Float64() != fresh.Float64() {
			t.Fatal("sibling stream perturbed by other child's draws")
		}
	}
}

func TestRNGBounded(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := r.Bounded(3, 5)
		if v < 3 || v >= 5 {
			t.Fatalf("Bounded(3,5) = %v out of range", v)
		}
	}
	if got := r.Bounded(5, 3); got != 5 {
		t.Errorf("degenerate Bounded(5,3) = %v, want lo", got)
	}
}

func TestRNGPareto(t *testing.T) {
	r := NewRNG(2)
	for i := 0; i < 1000; i++ {
		v := r.Pareto(1.0, 1.5, 100.0)
		if v < 1.0 || v > 100.0 {
			t.Fatalf("Pareto out of [xm, max]: %v", v)
		}
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Errorf("Exp(10) sample mean %v too far from 10", mean)
	}
}
