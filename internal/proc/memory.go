// Package proc implements virtual processes: the application-transparent
// unit the checkpoint engine suspends and resumes.
//
// A virtual process stands in for the Linux process CRIU operates on. It
// has a register file, paged memory with per-page soft-dirty bits (the
// mechanism CRIU's incremental dumps rely on, Section 4.1 of the paper),
// and a Program that advances the computation in cooperative steps. All
// mutable program state must live in process memory or registers; that is
// what makes checkpointing transparent — the engine dumps pages without
// knowing what the program is.
//
// Because real cluster tasks in the paper have multi-gigabyte footprints, a
// Memory can declare a logical footprint larger than its real backing
// pages. Serialization and dirty tracking operate on the real pages; time
// accounting uses the logical size (see DESIGN.md, substitution table).
package proc

import (
	"encoding/binary"
	"fmt"
	"math"
)

// PageSize is the virtual page granularity in bytes, matching the x86-64
// page size CRIU's soft-dirty tracking works at.
const PageSize = 4096

// Memory is a paged address space with soft-dirty tracking.
type Memory struct {
	pages        [][]byte
	dirty        []bool
	logicalBytes int64
}

// NewMemory allocates a memory of realBytes backing bytes (rounded up to
// whole pages) that declares logicalBytes of footprint for time accounting.
// logicalBytes must be at least realBytes.
func NewMemory(realBytes, logicalBytes int64) (*Memory, error) {
	if realBytes <= 0 {
		return nil, fmt.Errorf("proc: non-positive real size %d", realBytes)
	}
	if logicalBytes < realBytes {
		return nil, fmt.Errorf("proc: logical size %d below real size %d", logicalBytes, realBytes)
	}
	n := int((realBytes + PageSize - 1) / PageSize)
	if rounded := int64(n) * PageSize; logicalBytes < rounded {
		// Page rounding may push the real size past the declared logical
		// footprint; the footprint can never be below the backing.
		logicalBytes = rounded
	}
	m := &Memory{
		pages:        make([][]byte, n),
		dirty:        make([]bool, n),
		logicalBytes: logicalBytes,
	}
	for i := range m.pages {
		m.pages[i] = make([]byte, PageSize)
		m.dirty[i] = true // freshly mapped pages must be in the first dump
	}
	return m, nil
}

// NumPages returns the number of real backing pages.
func (m *Memory) NumPages() int { return len(m.pages) }

// RealBytes returns the backing size in bytes.
func (m *Memory) RealBytes() int64 { return int64(len(m.pages)) * PageSize }

// LogicalBytes returns the declared footprint used for time accounting.
func (m *Memory) LogicalBytes() int64 { return m.logicalBytes }

// Page returns a read-only view of page i. Callers must not mutate it;
// mutations must go through WriteAt so dirty tracking stays correct.
func (m *Memory) Page(i int) []byte { return m.pages[i] }

// SetPage replaces the contents of page i without marking it dirty. It is
// used by restore, which reconstructs a clean address space.
func (m *Memory) SetPage(i int, data []byte) error {
	if i < 0 || i >= len(m.pages) {
		return fmt.Errorf("proc: page %d out of range [0,%d)", i, len(m.pages))
	}
	if len(data) != PageSize {
		return fmt.Errorf("proc: page data length %d != %d", len(data), PageSize)
	}
	copy(m.pages[i], data)
	return nil
}

// ReadAt copies len(p) bytes starting at offset off into p.
func (m *Memory) ReadAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > m.RealBytes() {
		return fmt.Errorf("proc: read [%d, %d) outside memory of %d bytes", off, off+int64(len(p)), m.RealBytes())
	}
	for len(p) > 0 {
		page := int(off / PageSize)
		in := int(off % PageSize)
		n := copy(p, m.pages[page][in:])
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// WriteAt copies p into memory at offset off, setting the soft-dirty bit of
// every touched page — the analogue of the kernel page-fault path CRIU
// hooks for incremental checkpoints.
func (m *Memory) WriteAt(p []byte, off int64) error {
	if off < 0 || off+int64(len(p)) > m.RealBytes() {
		return fmt.Errorf("proc: write [%d, %d) outside memory of %d bytes", off, off+int64(len(p)), m.RealBytes())
	}
	for len(p) > 0 {
		page := int(off / PageSize)
		in := int(off % PageSize)
		n := copy(m.pages[page][in:], p)
		m.dirty[page] = true
		p = p[n:]
		off += int64(n)
	}
	return nil
}

// ReadU64 reads a big-endian uint64 at off.
func (m *Memory) ReadU64(off int64) (uint64, error) {
	var buf [8]byte
	if err := m.ReadAt(buf[:], off); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(buf[:]), nil
}

// WriteU64 writes a big-endian uint64 at off.
func (m *Memory) WriteU64(off int64, v uint64) error {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return m.WriteAt(buf[:], off)
}

// ReadF64 reads a float64 at off.
func (m *Memory) ReadF64(off int64) (float64, error) {
	v, err := m.ReadU64(off)
	return math.Float64frombits(v), err
}

// WriteF64 writes a float64 at off.
func (m *Memory) WriteF64(off int64, v float64) error {
	return m.WriteU64(off, math.Float64bits(v))
}

// DirtyPages returns the indices of pages whose soft-dirty bit is set.
func (m *Memory) DirtyPages() []int {
	var out []int
	for i, d := range m.dirty {
		if d {
			out = append(out, i)
		}
	}
	return out
}

// DirtyCount returns the number of soft-dirty pages.
func (m *Memory) DirtyCount() int {
	n := 0
	for _, d := range m.dirty {
		if d {
			n++
		}
	}
	return n
}

// ClearSoftDirty resets every soft-dirty bit, as CRIU does after a dump so
// the next dump captures only subsequent writes.
func (m *Memory) ClearSoftDirty() {
	for i := range m.dirty {
		m.dirty[i] = false
	}
}

// MarkAllDirty sets every soft-dirty bit, forcing the next dump to be full.
func (m *Memory) MarkAllDirty() {
	for i := range m.dirty {
		m.dirty[i] = true
	}
}

// LogicalDirtyBytes returns the logical byte count a dump of the currently
// dirty pages represents: the dirty fraction of the real pages scaled to
// the logical footprint.
func (m *Memory) LogicalDirtyBytes() int64 {
	if len(m.pages) == 0 {
		return 0
	}
	frac := float64(m.DirtyCount()) / float64(len(m.pages))
	return int64(frac * float64(m.logicalBytes))
}
