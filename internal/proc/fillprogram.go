package proc

import (
	"encoding/binary"
	"fmt"
)

// FillProgram reproduces the microbenchmark workload of Section 3.3.1: it
// allocates and fills a specified amount of memory, then performs a simple
// rolling computation over it for a configured number of steps. Each step
// touches a configurable fraction of pages, which is what drives the
// incremental-checkpoint experiments (Table 3 modifies 10% of memory
// between dumps).
//
// Memory layout:
//
//	page 0:  header (steps completed, checksum accumulator)
//	page 1+: data pages filled with a deterministic pattern
//
// Register usage:
//
//	R0: total steps to run
//	R1: pages touched per step (spread across the data region)
type FillProgram struct{}

// FillProgramName is the registry name of FillProgram.
const FillProgramName = "memfill"

var _ Program = FillProgram{}

// Name implements Program.
func (FillProgram) Name() string { return FillProgramName }

const (
	fillOffSteps    = 0 // uint64: steps completed
	fillOffChecksum = 8 // uint64: rolling checksum
)

// ConfigureFill sets the run length and per-step write spread on a process
// that will run a FillProgram. Call before the first Step.
func ConfigureFill(p *Process, totalSteps, pagesPerStep uint64) {
	p.Registers().R[0] = totalSteps
	p.Registers().R[1] = pagesPerStep
}

// Init implements Program: fill all data pages with a pattern derived from
// the page index.
func (FillProgram) Init(p *Process) error {
	m := p.Memory()
	if m.NumPages() < 2 {
		return fmt.Errorf("memfill: need at least 2 pages, have %d", m.NumPages())
	}
	buf := make([]byte, PageSize)
	for page := 1; page < m.NumPages(); page++ {
		for i := 0; i < PageSize; i += 8 {
			binary.BigEndian.PutUint64(buf[i:], uint64(page)*0x9E3779B97F4A7C15+uint64(i))
		}
		if err := m.WriteAt(buf, int64(page)*PageSize); err != nil {
			return err
		}
	}
	if err := m.WriteU64(fillOffSteps, 0); err != nil {
		return err
	}
	return m.WriteU64(fillOffChecksum, 0)
}

// Step implements Program: touch R1 data pages and fold their first words
// into the checksum.
func (FillProgram) Step(p *Process) (bool, error) {
	m := p.Memory()
	steps, err := m.ReadU64(fillOffSteps)
	if err != nil {
		return false, err
	}
	total := p.Registers().R[0]
	if total == 0 {
		total = 1
	}
	perStep := p.Registers().R[1]
	if perStep == 0 {
		perStep = 1
	}
	sum, err := m.ReadU64(fillOffChecksum)
	if err != nil {
		return false, err
	}
	dataPages := uint64(m.NumPages() - 1)
	for i := uint64(0); i < perStep; i++ {
		page := 1 + (steps*perStep+i)%dataPages
		off := int64(page) * PageSize
		w, err := m.ReadU64(off)
		if err != nil {
			return false, err
		}
		sum = sum*31 + w
		if err := m.WriteU64(off, w+1); err != nil {
			return false, err
		}
	}
	if err := m.WriteU64(fillOffChecksum, sum); err != nil {
		return false, err
	}
	steps++
	if err := m.WriteU64(fillOffSteps, steps); err != nil {
		return false, err
	}
	return steps >= total, nil
}

// FillChecksum reads the rolling checksum, used by tests to prove that a
// restored process continues the exact computation.
func FillChecksum(p *Process) (uint64, error) {
	return p.Memory().ReadU64(fillOffChecksum)
}

// FillStepsDone reads the completed-step counter from process memory.
func FillStepsDone(p *Process) (uint64, error) {
	return p.Memory().ReadU64(fillOffSteps)
}
