package proc

import (
	"fmt"
	"sort"
	"sync"
)

// State is the lifecycle state of a virtual process.
type State int

const (
	// Created means the process exists but has not run.
	Created State = iota + 1
	// Running means the process may execute steps.
	Running
	// Suspended means the process was checkpointed and its execution frozen.
	Suspended
	// Exited means the program finished.
	Exited
	// Killed means the process was destroyed without saving progress.
	Killed
)

func (s State) String() string {
	switch s {
	case Created:
		return "created"
	case Running:
		return "running"
	case Suspended:
		return "suspended"
	case Exited:
		return "exited"
	case Killed:
		return "killed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// NumRegisters is the size of the virtual register file. Programs keep
// small counters (loop indices, phase markers) here; everything larger
// belongs in memory.
const NumRegisters = 16

// Registers is the CPU-visible state the checkpoint engine saves alongside
// memory: a program counter and a general-purpose register file.
type Registers struct {
	PC uint64
	R  [NumRegisters]uint64
}

// Program is a resumable computation executing inside a process. Programs
// must keep all mutable state in the process's memory and registers so a
// restored process continues correctly; a Program value itself must be
// stateless (it is re-created from the Registry on restore).
type Program interface {
	// Name identifies the program in checkpoint images; Restore uses it to
	// look up a factory in the Registry.
	Name() string
	// Init lays out the initial memory/register state. Called exactly once
	// for a fresh process, never for a restored one.
	Init(p *Process) error
	// Step advances the computation by one quantum and reports whether the
	// program has finished.
	Step(p *Process) (done bool, err error)
}

// Process is a virtual process.
type Process struct {
	id      string
	mem     *Memory
	regs    Registers
	program Program
	state   State
	steps   uint64
}

// New creates a process running program with the given backing and logical
// memory sizes, and initializes the program.
func New(id string, program Program, realBytes, logicalBytes int64) (*Process, error) {
	return NewWithSetup(id, program, realBytes, logicalBytes, nil)
}

// NewWithSetup creates a process like New, but runs setup (typically
// register configuration) after the address space exists and before the
// program's Init executes. Programs whose Init reads configuration from
// registers need this ordering.
func NewWithSetup(id string, program Program, realBytes, logicalBytes int64, setup func(*Process)) (*Process, error) {
	if program == nil {
		return nil, fmt.Errorf("proc: nil program for process %q", id)
	}
	mem, err := NewMemory(realBytes, logicalBytes)
	if err != nil {
		return nil, err
	}
	p := &Process{id: id, mem: mem, program: program, state: Created}
	if setup != nil {
		setup(p)
	}
	if err := program.Init(p); err != nil {
		return nil, fmt.Errorf("proc: init program %q: %w", program.Name(), err)
	}
	p.state = Running
	return p, nil
}

// Rebuild reconstructs a process from checkpointed state. The memory must
// already contain the restored pages. It is used by the checkpoint engine.
func Rebuild(id string, program Program, mem *Memory, regs Registers, steps uint64) *Process {
	return &Process{id: id, mem: mem, program: program, regs: regs, state: Running, steps: steps}
}

// ID returns the process identifier.
func (p *Process) ID() string { return p.id }

// Memory returns the process address space.
func (p *Process) Memory() *Memory { return p.mem }

// Registers returns a pointer to the live register file.
func (p *Process) Registers() *Registers { return &p.regs }

// Program returns the executing program.
func (p *Process) Program() Program { return p.program }

// State returns the lifecycle state.
func (p *Process) State() State { return p.state }

// Steps returns the number of executed program steps.
func (p *Process) Steps() uint64 { return p.steps }

// Step executes one program quantum. It returns true when the program
// completed. Stepping a non-running process is an error.
func (p *Process) Step() (bool, error) {
	if p.state != Running {
		return false, fmt.Errorf("proc: step process %q in state %v", p.id, p.state)
	}
	done, err := p.program.Step(p)
	if err != nil {
		return false, fmt.Errorf("proc: program %q step %d: %w", p.program.Name(), p.steps, err)
	}
	p.steps++
	p.regs.PC = p.steps
	if done {
		p.state = Exited
	}
	return done, nil
}

// Suspend freezes a running process (SIGSTOP analogue). The checkpoint
// engine calls this before dumping.
func (p *Process) Suspend() error {
	if p.state != Running {
		return fmt.Errorf("proc: suspend process %q in state %v", p.id, p.state)
	}
	p.state = Suspended
	return nil
}

// ResumeInPlace unfreezes a suspended process without a restore cycle
// (SIGCONT analogue).
func (p *Process) ResumeInPlace() error {
	if p.state != Suspended {
		return fmt.Errorf("proc: resume process %q in state %v", p.id, p.state)
	}
	p.state = Running
	return nil
}

// Kill destroys the process, discarding progress.
func (p *Process) Kill() {
	if p.state == Exited {
		return
	}
	p.state = Killed
}

// Registry maps program names to factories so Restore can re-instantiate
// the right Program for an image.
type Registry struct {
	mu        sync.RWMutex
	factories map[string]func() Program
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() Program)}
}

// Register associates name with a program factory. Registering a duplicate
// name panics: it is a wiring bug, and silently replacing factories would
// make restores ambiguous.
func (r *Registry) Register(name string, factory func() Program) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.factories[name]; dup {
		panic(fmt.Sprintf("proc: duplicate program registration %q", name))
	}
	r.factories[name] = factory
}

// New instantiates the program registered under name.
func (r *Registry) New(name string) (Program, error) {
	r.mu.RLock()
	factory, ok := r.factories[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("proc: program %q not registered", name)
	}
	return factory(), nil
}

// Names returns the registered program names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.factories))
	for n := range r.factories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
