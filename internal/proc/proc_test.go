package proc

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewMemoryValidation(t *testing.T) {
	tests := []struct {
		name          string
		real, logical int64
		wantErr       bool
	}{
		{"ok equal", PageSize, PageSize, false},
		{"ok scaled", PageSize, 1 << 30, false},
		{"zero real", 0, 100, true},
		{"negative real", -1, 100, true},
		{"logical below real", 2 * PageSize, PageSize, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMemory(tt.real, tt.logical)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestMemoryRoundsUpToPages(t *testing.T) {
	m, err := NewMemory(PageSize+1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumPages() != 2 {
		t.Errorf("NumPages = %d, want 2", m.NumPages())
	}
	if m.RealBytes() != 2*PageSize {
		t.Errorf("RealBytes = %d", m.RealBytes())
	}
	if m.LogicalBytes() != 1<<20 {
		t.Errorf("LogicalBytes = %d", m.LogicalBytes())
	}
}

func TestMemoryReadWriteSpanningPages(t *testing.T) {
	m, _ := NewMemory(3*PageSize, 3*PageSize)
	m.ClearSoftDirty()
	data := make([]byte, PageSize+100)
	for i := range data {
		data[i] = byte(i % 251)
	}
	off := int64(PageSize - 50)
	if err := m.WriteAt(data, off); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.ReadAt(got, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read back differs")
	}
	// Pages 0, 1, 2 were all touched by the spanning write.
	if got := m.DirtyCount(); got != 3 {
		t.Errorf("DirtyCount = %d, want 3 (dirty: %v)", got, m.DirtyPages())
	}
}

func TestMemoryBounds(t *testing.T) {
	m, _ := NewMemory(PageSize, PageSize)
	if err := m.ReadAt(make([]byte, 10), int64(PageSize)-5); err == nil {
		t.Error("read past end accepted")
	}
	if err := m.WriteAt(make([]byte, 1), -1); err == nil {
		t.Error("negative offset accepted")
	}
	if err := m.SetPage(1, make([]byte, PageSize)); err == nil {
		t.Error("SetPage out of range accepted")
	}
	if err := m.SetPage(0, make([]byte, 10)); err == nil {
		t.Error("short page accepted")
	}
}

func TestSoftDirtyLifecycle(t *testing.T) {
	m, _ := NewMemory(4*PageSize, 4*PageSize)
	// Fresh memory starts fully dirty so the first dump is full.
	if m.DirtyCount() != 4 {
		t.Fatalf("fresh memory dirty count = %d, want 4", m.DirtyCount())
	}
	m.ClearSoftDirty()
	if m.DirtyCount() != 0 {
		t.Fatal("ClearSoftDirty left dirty pages")
	}
	m.WriteU64(2*PageSize+8, 42)
	if pages := m.DirtyPages(); len(pages) != 1 || pages[0] != 2 {
		t.Errorf("DirtyPages = %v, want [2]", pages)
	}
	// SetPage (restore path) must NOT mark dirty.
	m.SetPage(0, make([]byte, PageSize))
	if m.DirtyCount() != 1 {
		t.Error("SetPage marked page dirty")
	}
	m.MarkAllDirty()
	if m.DirtyCount() != 4 {
		t.Error("MarkAllDirty incomplete")
	}
}

func TestLogicalDirtyBytes(t *testing.T) {
	m, _ := NewMemory(10*PageSize, 100*PageSize)
	m.ClearSoftDirty()
	m.WriteU64(0, 1)
	// 1 of 10 real pages dirty => 10% of logical footprint.
	if got := m.LogicalDirtyBytes(); got != 10*PageSize {
		t.Errorf("LogicalDirtyBytes = %d, want %d", got, 10*PageSize)
	}
}

// Property: WriteAt/ReadAt round-trip arbitrary in-range payloads.
func TestMemoryRoundTripProperty(t *testing.T) {
	m, _ := NewMemory(8*PageSize, 8*PageSize)
	f := func(data []byte, offRaw uint32) bool {
		if len(data) == 0 || len(data) > 4*PageSize {
			return true
		}
		off := int64(offRaw) % (m.RealBytes() - int64(len(data)))
		if off < 0 {
			off = 0
		}
		if err := m.WriteAt(data, off); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.ReadAt(got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestU64F64Helpers(t *testing.T) {
	m, _ := NewMemory(PageSize, PageSize)
	if err := m.WriteU64(16, 0xDEADBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadU64(16); v != 0xDEADBEEF {
		t.Errorf("ReadU64 = %x", v)
	}
	if err := m.WriteF64(24, 3.25); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.ReadF64(24); v != 3.25 {
		t.Errorf("ReadF64 = %v", v)
	}
}

func TestProcessLifecycle(t *testing.T) {
	p, err := New("p1", FillProgram{}, 4*PageSize, 4*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	ConfigureFill(p, 3, 1)
	if p.State() != Running {
		t.Fatalf("state = %v", p.State())
	}
	done, err := p.Step()
	if err != nil || done {
		t.Fatalf("step 1: done=%v err=%v", done, err)
	}
	if err := p.Suspend(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Step(); err == nil {
		t.Error("stepping a suspended process succeeded")
	}
	if err := p.ResumeInPlace(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		done, err = p.Step()
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done || p.State() != Exited {
		t.Errorf("after final step: done=%v state=%v", done, p.State())
	}
	if p.Steps() != 3 || p.Registers().PC != 3 {
		t.Errorf("steps=%d pc=%d", p.Steps(), p.Registers().PC)
	}
}

func TestProcessStateErrors(t *testing.T) {
	p, _ := New("p", FillProgram{}, 2*PageSize, 2*PageSize)
	if err := p.ResumeInPlace(); err == nil {
		t.Error("resume of running process succeeded")
	}
	p.Kill()
	if p.State() != Killed {
		t.Errorf("state = %v", p.State())
	}
	if err := p.Suspend(); err == nil {
		t.Error("suspend of killed process succeeded")
	}
	// Kill after exit is a no-op.
	q, _ := New("q", FillProgram{}, 2*PageSize, 2*PageSize)
	ConfigureFill(q, 1, 1)
	q.Step()
	q.Kill()
	if q.State() != Exited {
		t.Errorf("kill after exit changed state to %v", q.State())
	}
}

func TestNewProcessValidation(t *testing.T) {
	if _, err := New("p", nil, PageSize, PageSize); err == nil {
		t.Error("nil program accepted")
	}
	if _, err := New("p", FillProgram{}, 0, 0); err == nil {
		t.Error("zero memory accepted")
	}
	// FillProgram requires >= 2 pages.
	if _, err := New("p", FillProgram{}, PageSize, PageSize); err == nil {
		t.Error("1-page memfill accepted")
	}
}

func TestFillProgramDeterminism(t *testing.T) {
	run := func() uint64 {
		p, err := New("p", FillProgram{}, 8*PageSize, 8*PageSize)
		if err != nil {
			t.Fatal(err)
		}
		ConfigureFill(p, 10, 3)
		for {
			done, err := p.Step()
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
		sum, err := FillChecksum(p)
		if err != nil {
			t.Fatal(err)
		}
		return sum
	}
	if a, b := run(), run(); a != b || a == 0 {
		t.Errorf("checksums: %x vs %x", a, b)
	}
}

func TestFillProgramDirtySpread(t *testing.T) {
	p, _ := New("p", FillProgram{}, 11*PageSize, 11*PageSize)
	ConfigureFill(p, 100, 1)
	p.Memory().ClearSoftDirty()
	p.Step()
	// One data page + the header page.
	if got := p.Memory().DirtyCount(); got != 2 {
		t.Errorf("dirty after one step = %d, want 2", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Register(FillProgramName, func() Program { return FillProgram{} })
	prog, err := r.New(FillProgramName)
	if err != nil || prog.Name() != FillProgramName {
		t.Fatalf("New: %v %v", prog, err)
	}
	if _, err := r.New("missing"); err == nil {
		t.Error("missing program resolved")
	}
	if names := r.Names(); len(names) != 1 || names[0] != FillProgramName {
		t.Errorf("Names = %v", names)
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Register(FillProgramName, func() Program { return FillProgram{} })
}

func TestRebuild(t *testing.T) {
	mem, _ := NewMemory(2*PageSize, 2*PageSize)
	regs := Registers{PC: 5}
	regs.R[0] = 10
	p := Rebuild("restored", FillProgram{}, mem, regs, 5)
	if p.State() != Running || p.Steps() != 5 || p.Registers().PC != 5 || p.Registers().R[0] != 10 {
		t.Errorf("rebuild state: %v steps=%d", p.State(), p.Steps())
	}
}
