package yarn

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/faults"
	"preemptsched/internal/storage"
)

func serviceJob(id cluster.JobID, prio cluster.Priority, tasks int, dur time.Duration) cluster.JobSpec {
	j := cluster.JobSpec{ID: id, Priority: prio}
	for i := 0; i < tasks; i++ {
		j.Tasks = append(j.Tasks, cluster.TaskSpec{
			ID:           cluster.TaskID{Job: id, Index: int32(i)},
			Priority:     prio,
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
			MemFootprint: cluster.GiB(1),
			Duration:     dur,
		})
	}
	return j
}

func serviceConfig(policy core.Policy) Config {
	cfg := DefaultConfig(policy, storage.SSD)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 2
	return cfg
}

// TestServiceStreamsJobsToCompletion boots the service over real TCP
// listeners, streams jobs in concurrently, and verifies every completion
// callback fires exactly once before Close returns.
func TestServiceStreamsJobsToCompletion(t *testing.T) {
	s, err := NewService(serviceConfig(core.PolicyCheckpoint))
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 6
	var (
		mu   sync.Mutex
		done = make(map[cluster.JobID]int)
	)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(id cluster.JobID) {
			defer wg.Done()
			err := s.Submit(serviceJob(id, cluster.Priority(id)%11, 2, 30*time.Second), func(d JobDone) {
				mu.Lock()
				done[d.ID]++
				mu.Unlock()
			})
			if err != nil {
				t.Errorf("submit %d: %v", id, err)
			}
		}(cluster.JobID(i))
	}
	wg.Wait()
	res, err := s.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(done) != jobs {
		t.Fatalf("completions for %d jobs, want %d", len(done), jobs)
	}
	for id, n := range done {
		if n != 1 {
			t.Errorf("job %d completed %d times", id, n)
		}
	}
	if res.JobsCompleted != jobs || res.TasksCompleted != jobs*2 {
		t.Errorf("result jobs=%d tasks=%d, want %d/%d", res.JobsCompleted, res.TasksCompleted, jobs, jobs*2)
	}
}

// TestServiceRejectsAfterClose proves the no-admission half of the drain
// contract and that Close is idempotent.
func TestServiceRejectsAfterClose(t *testing.T) {
	s, err := NewService(serviceConfig(core.PolicyKill))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Submit(serviceJob(0, 0, 1, time.Second), nil); !errors.Is(err, ErrServiceClosed) {
		t.Fatalf("submit after close = %v, want ErrServiceClosed", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestServiceDuplicateAndInvalidSubmitRejected exercises the validation
// edge of admission without losing the loop.
func TestServiceDuplicateAndInvalidSubmitRejected(t *testing.T) {
	s, err := NewService(serviceConfig(core.PolicyCheckpoint))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Submit(cluster.JobSpec{ID: 9}, nil); err == nil {
		t.Error("taskless job admitted")
	}
	long := serviceJob(1, 0, 1, 10*time.Minute)
	if err := s.Submit(long, func(JobDone) {}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if err := s.Submit(serviceJob(1, 0, 1, time.Second), func(JobDone) {}); err == nil {
		t.Error("duplicate running job admitted")
	}
}

// TestServiceAbortUnderFaults drives the service with the fault injector
// live, then aborts mid-stream: every admitted job must still complete
// (the kill/restart ladder absorbs cancelled DFS I/O) and the listeners
// and serve goroutines must be gone afterwards.
func TestServiceAbortUnderFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := serviceConfig(core.PolicyCheckpoint)
	cfg.Faults = &faults.Plan{Seed: 7, RPCErrorRate: 0.05, TornWriteRate: 0.05}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Submit(serviceJob(cluster.JobID(i), 10, 1, time.Minute), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	res, err := s.Abort()
	if err != nil {
		t.Fatalf("abort: %v", err)
	}
	if res.JobsCompleted != 4 {
		t.Errorf("jobs completed = %d, want 4", res.JobsCompleted)
	}
	// The serve goroutines exit when close() returns; give the runtime a
	// beat to reap them before comparing counts.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d -> %d across service lifecycle", before, after)
	}
}
