package yarn

import (
	"bytes"
	"encoding/json"
	"testing"

	"preemptsched/internal/obs"
)

// TestObservedRunSpanChains is the observability acceptance test: an
// instrumented run must produce, for every checkpointed task, a complete
// dump → queue-wait → restore span chain, and the registry must carry
// dump/restore latency distributions whose counts agree with the Result.
func TestObservedRunSpanChains(t *testing.T) {
	jobs := mixedWorkload(t)
	cfg := chaosConfig()
	cfg.Tracer = obs.NewTracer(1 << 16)
	cfg.Metrics = obs.NewRegistry()

	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints == 0 || r.Restores == 0 {
		t.Fatalf("run exercised no checkpoint cycle: %d dumps, %d restores", r.Checkpoints, r.Restores)
	}

	spans := cfg.Tracer.Snapshot()
	if cfg.Tracer.Dropped() != 0 {
		t.Fatalf("tracer dropped %d spans; grow the test capacity", cfg.Tracer.Dropped())
	}
	byID := make(map[obs.SpanID]obs.Span, len(spans))
	byName := make(map[string][]obs.Span)
	for _, s := range spans {
		byID[s.ID] = s
		byName[s.Name] = append(byName[s.Name], s)
	}

	if got := len(byName["dump"]); got != r.Checkpoints {
		t.Errorf("%d dump spans, Result.Checkpoints = %d", got, r.Checkpoints)
	}
	if got := len(byName["restore"]); got != r.Restores {
		t.Errorf("%d restore spans, Result.Restores = %d", got, r.Restores)
	}
	if got := len(byName["policy-decision"]); got != r.Preemptions {
		t.Errorf("%d policy-decision instants, Result.Preemptions = %d", got, r.Preemptions)
	}

	// Every restore must chain back to the dump that produced its image,
	// with a queue-wait span bridging the gap on the same task track.
	queueWaitFor := make(map[obs.SpanID]bool)
	for _, qw := range byName["queue-wait"] {
		queueWaitFor[qw.Parent] = true
	}
	for _, rs := range byName["restore"] {
		ckpt, ok := byID[rs.Parent]
		if !ok {
			t.Fatalf("restore span %d for task %s has no parent checkpoint span", rs.ID, rs.TID)
		}
		if ckpt.Name != "dump" && ckpt.Name != "pre-dump" {
			t.Errorf("restore %d parented to %q, want dump or pre-dump", rs.ID, ckpt.Name)
		}
		if ckpt.TID != rs.TID {
			t.Errorf("restore %d on task %s chains to dump on task %s", rs.ID, rs.TID, ckpt.TID)
		}
		if !queueWaitFor[rs.Parent] {
			t.Errorf("no queue-wait span bridges dump %d to restore %d (task %s)", rs.Parent, rs.ID, rs.TID)
		}
		if ckpt.End > rs.Start {
			t.Errorf("restore %d starts at %v before its dump ends at %v", rs.ID, rs.Start, ckpt.End)
		}
		// The restore's device phases are children of the restore span.
		kids := 0
		for _, name := range []string{"restore-queue", "restore-read", "restore-transfer"} {
			for _, child := range byName[name] {
				if child.Parent == rs.ID {
					kids++
				}
			}
		}
		if kids < 2 {
			t.Errorf("restore %d has %d phase children, want at least queue+read", rs.ID, kids)
		}
	}

	// Registry counts must agree with the run's Result.
	snap := r.Metrics
	if h := snap.Hist("yarn.dump.total.seconds"); int(h.Count) != r.Checkpoints {
		t.Errorf("yarn.dump.total.seconds count = %d, Result.Checkpoints = %d", h.Count, r.Checkpoints)
	}
	if h := snap.Hist("yarn.restore.total.seconds"); int(h.Count) != r.Restores {
		t.Errorf("yarn.restore.total.seconds count = %d, Result.Restores = %d", h.Count, r.Restores)
	}
	for _, name := range []string{"yarn.dump.total.seconds", "yarn.restore.total.seconds"} {
		h := snap.Hist(name)
		if !(h.Quantile(0.5) > 0) || h.Quantile(0.5) > h.Quantile(0.99) || h.Quantile(0.99) > h.Max {
			t.Errorf("%s quantiles disordered: p50=%g p99=%g max=%g", name, h.Quantile(0.5), h.Quantile(0.99), h.Max)
		}
	}
	local := snap.Counter("yarn.policy.restore.local")
	remote := snap.Counter("yarn.policy.restore.remote")
	if int(local+remote) != r.Restores || int(remote) != r.RemoteRestores {
		t.Errorf("restore placement counters local=%d remote=%d, Result %d/%d remote",
			local, remote, r.Restores, r.RemoteRestores)
	}
	if h := snap.Hist("yarn.overhead.estimate.relerr"); h.Count == 0 {
		t.Error("no estimated-vs-actual overhead error observations")
	}

	// The trace must serialize to valid Chrome trace-event JSON.
	var buf bytes.Buffer
	if err := cfg.Tracer.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) <= len(spans) {
		t.Errorf("trace has %d events for %d spans; metadata records missing", len(doc.TraceEvents), len(spans))
	}
}

// TestObservedRunSharedRegistry: a caller-supplied registry is used in
// place of a private one, and Result.Metrics reflects it.
func TestObservedRunSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := chaosConfig()
	cfg.Metrics = reg
	r, err := Run(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counter("yarn.tasks.completed"); got != int64(r.TasksCompleted) {
		t.Errorf("shared registry yarn.tasks.completed = %d, Result.TasksCompleted = %d", got, r.TasksCompleted)
	}
}
