package yarn

import (
	"container/heap"
	"sort"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/obs"
	"preemptsched/internal/sim"
)

// request is one outstanding container request from an AM.
type request struct {
	task *taskRun
	// preferred names the node the AM would like (the checkpoint image's
	// home); -1 means no preference.
	preferred int
	queuedAt  sim.Time
	seq       uint64
	index     int
	// reservedOn holds the node where victims are vacating for this
	// request.
	reservedOn *NodeManager
}

type requestQueue []*request

func (q requestQueue) Len() int { return len(q) }
func (q requestQueue) Less(i, j int) bool {
	if q[i].task.spec.Priority != q[j].task.spec.Priority {
		return q[i].task.spec.Priority > q[j].task.spec.Priority
	}
	if q[i].queuedAt != q[j].queuedAt {
		return q[i].queuedAt < q[j].queuedAt
	}
	return q[i].seq < q[j].seq
}
func (q requestQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *requestQueue) Push(x any) {
	r := x.(*request)
	r.index = len(*q)
	*q = append(*q, r)
}
func (q *requestQueue) Pop() any {
	old := *q
	n := len(old)
	r := old[n-1]
	old[n-1] = nil
	r.index = -1
	*q = old[:n-1]
	return r
}

// ResourceManager arbitrates container slots across NodeManagers: it
// grants free slots to the highest-priority pending requests and, under
// contention, dispatches ContainerPreemptEvents for lower-priority
// containers (cost-aware under the adaptive policy).
type ResourceManager struct {
	c           *Cluster
	queue       requestQueue
	seq         uint64
	passPending bool
	// scanLimit bounds requests examined per allocation pass.
	scanLimit int
}

func newResourceManager(c *Cluster) *ResourceManager {
	return &ResourceManager{c: c, scanLimit: 256}
}

// RequestContainer enqueues a container request (step 1/5 of the paper's
// Fig. 7 protocol).
func (rm *ResourceManager) RequestContainer(t *taskRun, preferred int, now sim.Time) {
	req := &request{task: t, preferred: preferred, queuedAt: now, seq: rm.seq, index: -1}
	rm.seq++
	heap.Push(&rm.queue, req)
	rm.schedulePass(now)
}

// schedulePass coalesces allocation passes at one instant.
func (rm *ResourceManager) schedulePass(now sim.Time) {
	if rm.passPending {
		return
	}
	rm.passPending = true
	rm.c.engine.At(now, func(at sim.Time) {
		rm.passPending = false
		rm.pass(at)
	})
}

func (rm *ResourceManager) pass(now sim.Time) {
	scanned := 0
	var skipped []*request
	for len(rm.queue) > 0 && scanned < rm.scanLimit {
		req := heap.Pop(&rm.queue).(*request)
		scanned++
		if rm.place(req, now) {
			continue
		}
		if req.reservedOn == nil && rm.c.cfg.Policy != core.PolicyWait && rm.preemptFor(req, now) {
			if rm.place(req, now) {
				continue
			}
		}
		skipped = append(skipped, req)
	}
	for _, req := range skipped {
		heap.Push(&rm.queue, req)
	}
}

// place grants a slot to req if one is available, honoring the AM's node
// preference first (restore locality).
func (rm *ResourceManager) place(req *request, now sim.Time) bool {
	var target *NodeManager
	if req.preferred >= 0 && req.preferred < len(rm.c.nodes) {
		if n := rm.c.nodes[req.preferred]; n.availableFor(req) > 0 {
			target = n
		}
	}
	if target == nil {
		for _, n := range rm.c.nodes {
			if n.availableFor(req) > 0 {
				target = n
				break
			}
		}
	}
	if target == nil {
		return false
	}
	rm.unreserve(req)
	rm.c.recordContainerWait(req, target, now)
	target.allocSlot(now, req.task)
	req.task.am.onAllocated(req.task, target, now)
	return true
}

func (rm *ResourceManager) reserve(req *request, n *NodeManager) {
	req.reservedOn = n
	n.reservedSlots++
}

// dropReservations clears every reservation held on n. When a node is
// declared dead its draining victims died with it, so the preemptors
// waiting on those slots must compete for placement elsewhere.
func (rm *ResourceManager) dropReservations(n *NodeManager) {
	for _, req := range rm.queue {
		if req.reservedOn == n {
			rm.unreserve(req)
		}
	}
	n.reservedSlots = 0
}

func (rm *ResourceManager) unreserve(req *request) {
	if req.reservedOn == nil {
		return
	}
	req.reservedOn.reservedSlots--
	if req.reservedOn.reservedSlots < 0 {
		req.reservedOn.reservedSlots = 0
	}
	req.reservedOn = nil
}

// preemptFor selects one victim container with strictly lower priority
// than req and dispatches a ContainerPreemptEvent to its AM. Under the
// adaptive policy victims are chosen cost-aware (lowest estimated
// checkpoint time first, Section 5.2.2); otherwise lowest priority and
// oldest first, mirroring stock YARN.
func (rm *ResourceManager) preemptFor(req *request, now sim.Time) bool {
	type scored struct {
		t    *taskRun
		n    *NodeManager
		cost time.Duration
	}
	adaptive := rm.c.cfg.Policy == core.PolicyAdaptive
	var cands []scored
	prio := req.task.spec.Priority
	for _, n := range rm.c.nodes {
		if n.crashed || n.deadDeclared {
			// A dead node's containers are already lost; preempting them
			// frees nothing.
			continue
		}
		ids := make([]cluster.TaskID, 0, len(n.running))
		for id := range n.running {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			if ids[i].Job != ids[j].Job {
				return ids[i].Job < ids[j].Job
			}
			return ids[i].Index < ids[j].Index
		})
		for _, id := range ids {
			v := n.running[id]
			if v.state != stateRunning || v.preCopying || v.spec.Priority >= prio {
				continue
			}
			var cost time.Duration
			if adaptive {
				cost = core.CheckpointOverhead(v.candidate(now), n.device, now)
			}
			cands = append(cands, scored{t: v, n: n, cost: cost})
		}
	}
	if len(cands) == 0 {
		return false
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].t.spec.Priority != cands[j].t.spec.Priority {
			return cands[i].t.spec.Priority < cands[j].t.spec.Priority
		}
		if adaptive && cands[i].cost != cands[j].cost {
			return cands[i].cost < cands[j].cost
		}
		return cands[i].t.seq < cands[j].t.seq
	})
	victim := cands[0]
	if rm.c.rec != nil {
		scores := make([]obs.CandidateScore, len(cands))
		for i, sc := range cands {
			scores[i] = obs.CandidateScore{
				Task:     sc.t.spec.ID.String(),
				Priority: int(sc.t.spec.Priority),
				Cost:     sc.cost,
				Unsaved:  sc.t.unsavedProgress(now),
				Chosen:   i == 0,
			}
		}
		rm.c.recordSelection(req.task, victim.n, scores, now)
	}
	rm.reserve(req, victim.n)
	rm.c.res.Preemptions++
	victim.t.am.onPreempt(victim.t, now)
	return true
}
