// Package yarn implements a miniature resource-management framework in the
// architecture of Hadoop YARN (Section 5 of the paper): a ResourceManager
// arbitrating fixed-size containers across NodeManagers, one
// ApplicationMaster per job in the style of DistributedShell, and a
// Preemption Manager inside the AM that services ContainerPreemptEvents by
// checkpointing or killing containers.
//
// Unlike the trace-driven simulator (internal/sched), tasks here are real
// virtual processes (k-means by default): preemption takes actual CRIU-style
// dumps of process pages into the distributed file system, restores rebuild
// runnable processes — on the image's home node or remotely per
// Algorithm 2 — and completed tasks yield verifiable results. Only
// durations come from the calibrated device models; every state transition
// moves real bytes.
package yarn

import (
	"context"
	"fmt"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/energy"
	"preemptsched/internal/faults"
	"preemptsched/internal/metrics"
	"preemptsched/internal/obs"
	"preemptsched/internal/storage"
)

// Config parameterizes a framework run. The defaults mirror the paper's
// testbed: 8 nodes, 24 containers each, 1 core + 2 GB per container.
type Config struct {
	// Nodes is the NodeManager count.
	Nodes int
	// ContainersPerNode is the slot count per node.
	ContainersPerNode int
	// Policy selects the preemption policy.
	Policy core.Policy
	// StorageKind picks each node's checkpoint device; CustomBandwidth
	// (bytes/s), when positive, overrides it with a symmetric device.
	StorageKind     storage.Kind
	CustomBandwidth float64
	// NetBandwidth is the modelled network rate for remote image
	// transfers.
	NetBandwidth float64
	// Replication is the DFS replication factor.
	Replication int
	// EnergyModel maps slot utilization to node watts.
	EnergyModel energy.Model

	// Program selects the real application each container runs:
	// "kmeans" (default, the paper's workload) or "wordcount" (the
	// MapReduce-style job of the paper's future work). Either way the
	// checkpointable footprint comes from each task's spec
	// (MemFootprint), scaled logically over the real pages.
	Program string

	// KMeans problem shape per task (Program == "kmeans").
	KMeansPoints int
	KMeansDims   int
	KMeansK      int
	KMeansIters  int

	// WordCount job shape per task (Program == "wordcount").
	WordCountInput int
	WordCountChunk int

	// PreCopy enables pre-copy checkpointing: a ContainerPreemptEvent
	// first pre-dumps the victim's pages while it keeps running, then
	// freezes it and dumps only the pages it dirtied during the window.
	PreCopy bool
	// CompactChainAfter, when positive, merges a task's incremental image
	// chain into a single full image once it exceeds this many links.
	// Compaction runs in the background (device time, no task freeze) and
	// bounds restore-time chain walks.
	CompactChainAfter int

	// CorruptNthDump is a failure-injection knob: the Nth checkpoint dump
	// of the run has one byte flipped in its stored image. The CRC check
	// catches it at restore time and the AM falls back down the
	// degradation ladder (older image, then restart from scratch).
	// 0 disables injection.
	CorruptNthDump int

	// ScrubEveryNDumps, when positive, runs one integrity scrub pass over
	// every DataNode after each N checkpoint dumps: all stored blocks are
	// re-verified against their checksums, corrupt replicas are evicted,
	// reported, and re-replicated from clean copies. Counting dumps instead
	// of wall time keeps scrubbing inside the virtual clock — the emulation
	// equivalent of cmd/dfs's -scrub-interval ticker. 0 disables scrubbing.
	ScrubEveryNDumps int

	// Tracer, when non-nil, records per-task checkpoint/restore lifecycle
	// spans (policy-decision → dump → queue-wait → restore) in virtual
	// time, exportable as a Chrome trace_event file. Nil disables tracing
	// at near-zero cost.
	Tracer *obs.Tracer
	// Metrics, when non-nil, receives latency histograms, gauges, and
	// counters from every layer of the run (yarn.*, dfs.client.*,
	// checkpoint.*). When nil, Run still builds a private registry so
	// Result.Metrics is always populated.
	Metrics *obs.Registry

	// Recorder, when non-nil, receives the flight-recorder journal:
	// every preemption decision with its Alg. 1 cost-model inputs, the
	// scored victim-selection sets, and dump/restore lifecycle events
	// with estimated-vs-actual overheads. Nil disables journaling at
	// zero cost.
	Recorder *obs.Recorder
	// SLO, when non-nil, is the live SLO tracker fed incrementally as
	// events happen (waste core-hours, per-band response percentiles,
	// checkpoint hit-rate). When nil, Run builds a private tracker so
	// Result.SLO is always populated.
	SLO *obs.SLOTracker

	// NMHeartbeatEvery is the NodeManager heartbeat period on the virtual
	// clock. Zero means DefaultNMHeartbeatEvery. Heartbeats (and the
	// RM's liveness sweep) only run while NMLivenessTimeout > 0.
	NMHeartbeatEvery time.Duration
	// NMLivenessTimeout is how long the RM tolerates a silent
	// NodeManager before its sweep declares the node dead, fences its
	// containers, and reschedules the lost tasks through the AM's
	// degradation ladder (latest verified image → older image →
	// restart). Zero disables the liveness loop — unless Config.Faults
	// schedules compute-node faults, in which case withDefaults arms it
	// at DefaultNMLivenessBeats heartbeats (an NM fault without a sweep
	// would strand the node's tasks forever).
	NMLivenessTimeout time.Duration

	// Faults, when non-nil, injects the configured fault scenario into
	// the DFS substrate, the checkpoint store, and the compute nodes:
	// DataNode RPC drops, a DataNode crash at the Nth block write, failed
	// or torn dump writes, a NodeManager crash or RM↔NM partition at a
	// virtual time, dropped heartbeats. The stack is expected to absorb
	// all of them — reads fail over, pipelines are rebuilt, crashed nodes
	// are decommissioned and their blocks re-replicated, failed dumps
	// degrade to kill-based preemption, failed restores fall back to
	// older images or a restart, and tasks lost with their node resume
	// from their latest verified checkpoint image. The injector is
	// seeded, so faulted runs stay deterministic.
	Faults *faults.Plan

	// clientCtx, when non-nil, is threaded into every node's DFS client so
	// an aborting service can cut its real-TCP retry loops short. Service
	// mode sets it; batch Run leaves it nil (the in-process transport never
	// blocks, so there is nothing to cancel).
	clientCtx context.Context
}

// DefaultConfig returns the paper's cluster shape for the given policy and
// storage.
func DefaultConfig(policy core.Policy, kind storage.Kind) Config {
	return Config{
		Nodes:             8,
		ContainersPerNode: 24,
		Policy:            policy,
		StorageKind:       kind,
		NetBandwidth:      core.DefaultNetBandwidth,
		Replication:       3,
		EnergyModel:       energy.DefaultModel(),
		Program:           "kmeans",
		KMeansPoints:      240,
		KMeansDims:        4,
		KMeansK:           4,
		KMeansIters:       10,
		WordCountInput:    8192,
		WordCountChunk:    512,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.ContainersPerNode <= 0 {
		return fmt.Errorf("yarn: need positive Nodes and ContainersPerNode, got %d/%d", c.Nodes, c.ContainersPerNode)
	}
	switch c.Policy {
	case core.PolicyWait, core.PolicyKill, core.PolicyCheckpoint, core.PolicyAdaptive:
	default:
		return fmt.Errorf("yarn: invalid policy %v", c.Policy)
	}
	if c.CustomBandwidth < 0 {
		return fmt.Errorf("yarn: negative custom bandwidth")
	}
	if c.Replication <= 0 {
		return fmt.Errorf("yarn: replication %d must be positive", c.Replication)
	}
	switch c.Program {
	case "", "kmeans":
		if c.KMeansPoints < c.KMeansK || c.KMeansK <= 0 || c.KMeansDims <= 0 || c.KMeansIters <= 0 {
			return fmt.Errorf("yarn: bad k-means shape %d/%d/%d/%d", c.KMeansPoints, c.KMeansDims, c.KMeansK, c.KMeansIters)
		}
	case "wordcount":
		if c.WordCountInput <= 0 || c.WordCountChunk <= 0 {
			return fmt.Errorf("yarn: bad word-count shape %d/%d", c.WordCountInput, c.WordCountChunk)
		}
	default:
		return fmt.Errorf("yarn: unknown program %q (want kmeans|wordcount)", c.Program)
	}
	if c.NMHeartbeatEvery < 0 || c.NMLivenessTimeout < 0 {
		return fmt.Errorf("yarn: negative NM heartbeat period or liveness timeout")
	}
	if hb := c.NMHeartbeatEvery; c.NMLivenessTimeout > 0 {
		if hb == 0 {
			hb = DefaultNMHeartbeatEvery
		}
		if c.NMLivenessTimeout < hb {
			return fmt.Errorf("yarn: NMLivenessTimeout %v shorter than the heartbeat period %v — every sweep would declare every node dead",
				c.NMLivenessTimeout, hb)
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("yarn: %w", err)
		}
		if c.Faults.NMCrashAt > 0 && c.Faults.NMCrashNode >= c.Nodes {
			return fmt.Errorf("yarn: NMCrashNode %d out of range (cluster has %d nodes)", c.Faults.NMCrashNode, c.Nodes)
		}
		if c.Faults.NMPartitionAt > 0 && c.Faults.NMPartitionNode >= c.Nodes {
			return fmt.Errorf("yarn: NMPartitionNode %d out of range (cluster has %d nodes)", c.Faults.NMPartitionNode, c.Nodes)
		}
	}
	return nil
}

// DefaultNMHeartbeatEvery is the NodeManager heartbeat period when the
// config does not say otherwise.
const DefaultNMHeartbeatEvery = 10 * time.Second

// DefaultNMLivenessBeats is how many consecutive missed heartbeats get
// a node declared dead when a fault plan arms the liveness sweep
// without an explicit timeout.
const DefaultNMLivenessBeats = 3

func (c Config) withDefaults() Config {
	if c.NetBandwidth == 0 {
		c.NetBandwidth = core.DefaultNetBandwidth
	}
	if c.EnergyModel == (energy.Model{}) {
		c.EnergyModel = energy.DefaultModel()
	}
	if c.Program == "" {
		c.Program = "kmeans"
	}
	if c.NMHeartbeatEvery == 0 {
		c.NMHeartbeatEvery = DefaultNMHeartbeatEvery
	}
	if c.NMLivenessTimeout == 0 && c.Faults != nil && c.Faults.HasNMFaults() {
		c.NMLivenessTimeout = DefaultNMLivenessBeats * c.NMHeartbeatEvery
	}
	return c
}

// Result aggregates one framework run; fields mirror the quantities of the
// paper's Figures 8-12.
type Result struct {
	Policy   core.Policy
	Storage  string
	Makespan time.Duration

	WastedCPUHours   float64
	UsefulCPUHours   float64
	OverheadCPUHours float64
	EnergyKWh        float64

	JobResponseSec    map[cluster.Band]*metrics.Dist
	JobResponseAllSec *metrics.Dist

	Preemptions            int
	Kills                  int
	Checkpoints            int
	IncrementalCheckpoints int
	// PreCopies counts checkpoints taken with the pre-copy optimization.
	PreCopies int
	// Compactions counts chain-merge operations.
	Compactions    int
	Restores       int
	RemoteRestores int
	// RestoreFailures counts restore attempts that found a corrupt or
	// unreadable image. Each failed attempt drops one link off the image
	// chain: the next attempt targets the parent image (counted in
	// RestoreFallbacks when it exists), and an exhausted chain restarts
	// the task from scratch (RestoreRestarts).
	RestoreFailures int
	// RestoreFallbacks counts restores that fell back to an older image
	// in the incremental chain after the newer link failed.
	RestoreFallbacks int
	// RestoreRestarts counts tasks restarted from scratch after every
	// image in their chain proved unusable.
	RestoreRestarts int
	// RestoreVerifyFailures counts restore attempts rejected because the
	// stored image bytes did not match the dump's manifest (the verified-
	// restore rung of the ladder). Included in RestoreFailures.
	RestoreVerifyFailures int
	// DumpFailures counts checkpoint dumps (full, incremental, or
	// pre-copy) that failed against the store.
	DumpFailures int
	// FallbackKills counts preemptions that degraded to a kill because
	// the checkpoint dump failed. They are included in Kills.
	FallbackKills  int
	TasksCompleted int
	JobsCompleted  int

	// Compute-node fault domain. NodeFailures counts nodes the RM's
	// liveness sweep declared dead (NM crash, partition, or dropped
	// heartbeats); NodeRecoveries counts declared-dead nodes that
	// re-registered after a partition healed. TasksRescheduled counts
	// containers lost with their node and re-queued; of those,
	// FailureRestores resumed from a checkpoint image and
	// FailureRestarts started over from scratch (no usable image).
	// FailureWasteHours is the slice of WastedCPUHours attributable to
	// node failures rather than preemptions.
	NodeFailures      int
	NodeRecoveries    int
	TasksRescheduled  int
	FailureRestores   int
	FailureRestarts   int
	FailureWasteHours float64

	// DFS client resilience totals, summed over every node's client.
	DFSRetries       int64
	ReadFailovers    int64
	PipelineRebuilds int64
	// CorruptReads counts replicas that failed checksum verification
	// during client reads; each was reported for quarantine and the read
	// failed over to a clean copy.
	CorruptReads int64
	// Integrity-pipeline totals, mirrored from the dfs.namenode.* and
	// dfs.scrub.* counters: replicas quarantined after bad-replica
	// reports, how many of those were healed by re-replication from a
	// verified copy (vs left under-replicated or lost outright), and the
	// scrubber's sweep totals.
	ReplicasQuarantined int64
	CorruptReReplicated int64
	CorruptDegraded     int64
	CorruptLost         int64
	ScrubRuns           int64
	ScrubBlocksChecked  int64
	ScrubCorruptFound   int64
	// FinalScrubCorrupt is what the end-of-run verification scrub still
	// found after a healing pass: zero proves the cluster converged back
	// to zero corrupt replicas. Only meaningful when ScrubEveryNDumps > 0.
	FinalScrubCorrupt int64
	// BlocksReReplicated and BlocksLost come from decommissions of
	// crashed DataNodes.
	BlocksReReplicated int
	BlocksLost         int
	// FaultsInjected snapshots the injector's per-mode counts when
	// Config.Faults was set; nil otherwise.
	FaultsInjected map[string]int64

	IOBusyHours    float64
	PeakImageBytes int64
	// DFSStoredBytes is the real byte count resident in the DFS at the
	// high-water mark (before logical scaling).
	DFSStoredBytes int64

	// TaskChecksums holds a checksum of each task's final computed state,
	// proving that preempted-and-resumed executions produced exactly the
	// results of undisturbed ones. Excluded from JSON: the struct key has
	// no JSON representation and the map is in-process verification state.
	TaskChecksums map[cluster.TaskID]uint64 `json:"-"`

	// Metrics is the observability snapshot of the run: latency histograms
	// (yarn.dump.*, yarn.restore.*, dfs.client.block.*), policy-decision
	// counters, and gauges, whether or not the caller supplied a registry.
	Metrics obs.Snapshot

	// SLO is the end-of-run snapshot of the live SLO engine: waste
	// core-hours, per-band response-time percentiles, and the checkpoint
	// hit-rate, maintained incrementally during the run.
	SLO obs.SLOSnapshot
}

// WasteFraction returns wasted over total consumed CPU.
func (r *Result) WasteFraction() float64 {
	total := r.WastedCPUHours + r.UsefulCPUHours
	if total == 0 {
		return 0
	}
	return r.WastedCPUHours / total
}

// CPUOverheadFraction is the Fig. 12a metric.
func (r *Result) CPUOverheadFraction() float64 {
	total := r.WastedCPUHours + r.UsefulCPUHours
	if total == 0 {
		return 0
	}
	return r.OverheadCPUHours / total
}

// IOOverheadFraction is the Fig. 12b metric.
func (r *Result) IOOverheadFraction(nodes int) float64 {
	if r.Makespan <= 0 || nodes <= 0 {
		return 0
	}
	return r.IOBusyHours / (r.Makespan.Hours() * float64(nodes))
}

// MeanResponse returns the mean job response time for a band, in seconds.
func (r *Result) MeanResponse(b cluster.Band) float64 {
	d := r.JobResponseSec[b]
	if d == nil {
		return 0
	}
	return d.Mean()
}
