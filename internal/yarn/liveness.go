package yarn

import (
	"sort"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
)

// This file is the compute-node fault domain: NMs heartbeat the RM on the
// virtual clock, a periodic RM sweep declares silent nodes dead after
// Config.NMLivenessTimeout, and the seeded fault plan can crash an NM or
// partition it from the RM. Everything runs on the engine goroutine.
//
// The loop is self-winding: every heartbeat/sweep event re-arms itself
// only while livenessShouldRun() holds (liveness configured, work
// outstanding, at least one survivable node). When the workload drains
// the timers expire without re-arming and windDownLiveness cancels the
// pending NM-crash event — otherwise the perpetual timers would keep
// engine.Run (and the service drain) from ever running dry, and a
// far-future crash time would inflate the makespan of a run whose work
// finished early.

// livenessShouldRun reports whether the heartbeat/sweep loop has a reason
// to stay armed.
func (c *Cluster) livenessShouldRun() bool {
	if c.cfg.NMLivenessTimeout <= 0 || c.res.TasksCompleted >= c.tasksSubmitted {
		return false
	}
	for _, n := range c.nodes {
		if !n.crashed {
			return true
		}
	}
	return false
}

// ensureLiveness arms the heartbeat/sweep loop (and the seeded NM-crash
// event) if liveness is configured and work is outstanding. Called from
// every job submission, so service mode re-arms after an idle drain.
func (c *Cluster) ensureLiveness(now sim.Time) {
	if c.cfg.NMLivenessTimeout <= 0 {
		return
	}
	c.armNMCrash(now)
	if c.livenessOn || !c.livenessShouldRun() {
		return
	}
	c.livenessOn = true
	for _, n := range c.nodes {
		if n.crashed {
			continue
		}
		n.lastBeat = now
		c.scheduleHeartbeat(n, now)
	}
	c.scheduleSweep(now)
}

// armNMCrash schedules the fault plan's seeded NM crash, clamped to the
// current instant when re-armed after its configured time already passed.
func (c *Cluster) armNMCrash(now sim.Time) {
	p := c.cfg.Faults
	if p == nil || p.NMCrashAt <= 0 || c.nmCrashTimer != nil {
		return
	}
	if p.NMCrashNode >= len(c.nodes) || c.nodes[p.NMCrashNode].crashed {
		return
	}
	at := sim.Time(p.NMCrashAt)
	if at < now {
		at = now
	}
	c.nmCrashTimer = c.engine.ScheduleAt(at, c.crashNM)
}

// windDownLiveness closes the loop once the last outstanding liveness
// timer has expired without re-arming.
func (c *Cluster) windDownLiveness() {
	if c.livenessTimers > 0 {
		return
	}
	c.livenessOn = false
	if c.nmCrashTimer != nil {
		c.engine.Cancel(c.nmCrashTimer)
		c.nmCrashTimer = nil
	}
}

func (c *Cluster) scheduleHeartbeat(n *NodeManager, now sim.Time) {
	c.livenessTimers++
	c.engine.At(now+sim.Time(c.cfg.NMHeartbeatEvery), func(at sim.Time) {
		c.heartbeat(n, at)
	})
}

func (c *Cluster) scheduleSweep(now sim.Time) {
	c.livenessTimers++
	c.engine.At(now+sim.Time(c.cfg.NMHeartbeatEvery), c.sweep)
}

// heartbeat is one NM→RM beat. A crashed machine's stream ends here; a
// partitioned or fault-dropped beat never reaches the RM; a delivered
// beat refreshes lastBeat and re-registers a node the sweep had declared
// dead (partition heal).
func (c *Cluster) heartbeat(n *NodeManager, at sim.Time) {
	c.livenessTimers--
	if !c.livenessShouldRun() || n.crashed {
		c.windDownLiveness()
		return
	}
	switch {
	case c.nmPartitioned(n, at):
		if c.injector != nil {
			c.injector.NotePartitionDrop()
		}
	case c.injector != nil && c.injector.DropHeartbeat():
		// Dropped on the wire; the injector counted it.
	default:
		n.lastBeat = at
		if n.deadDeclared {
			c.nodeRecovered(n, at)
		}
	}
	c.scheduleHeartbeat(n, at)
}

// sweep is the RM's liveness pass: any node silent longer than the
// timeout is declared dead and its containers fenced.
func (c *Cluster) sweep(at sim.Time) {
	c.livenessTimers--
	if !c.livenessShouldRun() {
		c.windDownLiveness()
		return
	}
	timeout := sim.Time(c.cfg.NMLivenessTimeout)
	for _, n := range c.nodes {
		if !n.deadDeclared && at-n.lastBeat > timeout {
			c.declareNodeDead(n, at)
		}
	}
	c.scheduleSweep(at)
}

// nmPartitioned reports whether the fault plan has node n unreachable
// from the RM at instant now. The window is pure plan state, so a healed
// partition needs no bookkeeping: beats simply start arriving again.
func (c *Cluster) nmPartitioned(n *NodeManager, now sim.Time) bool {
	p := c.cfg.Faults
	if p == nil || p.NMPartitionAt <= 0 || n.id != p.NMPartitionNode {
		return false
	}
	if now < sim.Time(p.NMPartitionAt) {
		return false
	}
	if p.NMPartitionFor > 0 && now >= sim.Time(p.NMPartitionAt+p.NMPartitionFor) {
		return false
	}
	return true
}

// crashNM is the seeded machine death: container processes die on the
// spot, but slots stay held and the RM's books do not move until the
// liveness sweep notices the silence — that detection delay is the point.
func (c *Cluster) crashNM(now sim.Time) {
	c.nmCrashTimer = nil
	p := c.cfg.Faults
	if p == nil || p.NMCrashNode >= len(c.nodes) {
		return
	}
	n := c.nodes[p.NMCrashNode]
	if n.crashed {
		return
	}
	n.crashed = true
	n.settleEnergy(now)
	if c.injector != nil {
		c.injector.NoteNMCrash()
	}
	for _, id := range sortedRunning(n) {
		t := n.running[id]
		if t == nil || t.state != stateRunning {
			continue
		}
		c.engine.Cancel(t.completion)
		t.completion = nil
		t.preCopying = false
		if t.process != nil {
			t.process.Kill()
			t.process = nil
		}
		t.failedAt = now
	}
}

// declareNodeDead is the sweep's verdict: release the node's containers,
// fence its tasks through their AMs, drop reservations held on it, and
// kick an allocation pass so the displaced work lands elsewhere.
func (c *Cluster) declareNodeDead(n *NodeManager, now sim.Time) {
	n.deadDeclared = true
	c.res.NodeFailures++
	c.recordNodeDown(n, now)
	for _, id := range sortedRunning(n) {
		t, ok := n.running[id]
		if !ok {
			continue
		}
		t.am.onNodeFailure(t, n, now)
	}
	c.rm.dropReservations(n)
	c.rm.schedulePass(now)
}

// nodeRecovered re-registers a declared-dead node whose heartbeat came
// back (a healed partition; a crashed machine never beats again).
func (c *Cluster) nodeRecovered(n *NodeManager, now sim.Time) {
	n.deadDeclared = false
	c.res.NodeRecoveries++
	c.recordNodeRecovered(n, now)
	c.rm.schedulePass(now)
}

// sortedRunning snapshots a node's running-task IDs in deterministic
// order, so fencing visits tasks identically across runs.
func sortedRunning(n *NodeManager) []cluster.TaskID {
	ids := make([]cluster.TaskID, 0, len(n.running))
	for id := range n.running {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Job != ids[j].Job {
			return ids[i].Job < ids[j].Job
		}
		return ids[i].Index < ids[j].Index
	})
	return ids
}
