package yarn

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

func TestPreCopyCheckpointTransparent(t *testing.T) {
	jobs := smallWorkload()
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9

	ref, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PreCopy = true
	pre, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if pre.PreCopies != 1 || pre.Checkpoints != 1 {
		t.Fatalf("precopies=%d checkpoints=%d, want 1/1", pre.PreCopies, pre.Checkpoints)
	}
	if pre.Restores != 1 {
		t.Errorf("restores = %d", pre.Restores)
	}
	// Transparency: results identical to the stop-and-copy run.
	for id, want := range ref.TaskChecksums {
		if got := pre.TaskChecksums[id]; got != want {
			t.Errorf("task %v checksum %x != stop-and-copy %x", id, got, want)
		}
	}
	// The low-priority victim keeps running during the bulk dump, so its
	// response must not be worse than stop-and-copy's.
	if pre.MeanResponse(cluster.BandFree) > ref.MeanResponse(cluster.BandFree)+0.5 {
		t.Errorf("pre-copy low response %.1f worse than stop-and-copy %.1f",
			pre.MeanResponse(cluster.BandFree), ref.MeanResponse(cluster.BandFree))
	}
	// The frozen (overhead) window shrinks: CPU overhead strictly below
	// stop-and-copy, because the bulk dump overlaps useful execution.
	if pre.OverheadCPUHours >= ref.OverheadCPUHours {
		t.Errorf("pre-copy overhead %.4f not below stop-and-copy %.4f",
			pre.OverheadCPUHours, ref.OverheadCPUHours)
	}
}

func TestPreCopyOnMixedWorkload(t *testing.T) {
	jobs := mixedWorkload(t)
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.SSD)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 3
	cfg.PreCopy = true
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreCopies == 0 {
		t.Fatal("no pre-copies on contended workload")
	}
	if r.TasksCompleted != countTasks(jobs) {
		t.Errorf("completed %d of %d", r.TasksCompleted, countTasks(jobs))
	}
	// Compare against the wait-run reference for transparency.
	refCfg := DefaultConfig(core.PolicyWait, storage.SSD)
	refCfg.Nodes = 2
	refCfg.ContainersPerNode = 3
	ref, err := Run(refCfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Fatalf("task %v diverged under pre-copy", id)
		}
	}
}

func TestPreCopyVictimMayCompleteDuringWindow(t *testing.T) {
	// Slow device: the pre-copy window exceeds the victim's remaining
	// runtime, so the victim completes mid-window and the freeze must
	// abort cleanly.
	mk := func(id cluster.JobID, prio cluster.Priority, submit, dur time.Duration, fp int64) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: prio, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: id},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(6)},
				MemFootprint: fp,
				Duration:     dur,
				Submit:       submit,
			}},
		}
	}
	jobs := []cluster.JobSpec{
		mk(0, 0, 0, time.Minute, cluster.GiB(5)), // dump at 30 MB/s takes ~170s >> 30s left
		mk(1, 10, 30*time.Second, time.Minute, cluster.GiB(1)),
	}
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.StorageKind = storage.HDD
	cfg.CustomBandwidth = 0
	cfg.PreCopy = true
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreCopies != 1 {
		t.Fatalf("precopies = %d", r.PreCopies)
	}
	if r.TasksCompleted != 2 {
		t.Errorf("completed %d of 2", r.TasksCompleted)
	}
	// No restore should have happened: the victim finished on its own.
	if r.Restores != 0 {
		t.Errorf("restores = %d, want 0", r.Restores)
	}
}
