package yarn

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/kmeans"
	"preemptsched/internal/mapreduce"
	"preemptsched/internal/obs"
	"preemptsched/internal/proc"
	"preemptsched/internal/sim"
)

// taskState is a task's lifecycle within the framework.
type taskState int

const (
	statePending taskState = iota + 1
	stateRunning
	stateCheckpointing
	stateRestoring
	stateDone
)

// taskRun is one task's runtime record, owned by its AM.
type taskRun struct {
	spec *cluster.TaskSpec
	am   *AppMaster
	seq  uint64

	state taskState
	node  *NodeManager
	// banked is compute already saved by checkpoints, quantized to whole
	// program steps so virtual progress and real process state agree.
	banked       time.Duration
	attemptStart sim.Time
	completion   *sim.Timer

	process    *proc.Process
	totalSteps uint64

	hasImage   bool
	imageName  string
	imageSeq   int
	imageNode  int
	imageBytes int64
	// chain lists the images of the current checkpoint chain, oldest
	// first; the last entry is the restore tip. Keeping every link lets a
	// failed restore fall back to the parent image instead of giving up
	// the whole chain.
	chain []imageLink
	// preCopying marks a running task whose pages are being pre-dumped;
	// it is not eligible for further preemption until frozen.
	preCopying bool

	// estOverhead holds the Algorithm 1 overhead estimate captured at the
	// checkpoint decision; it is compared against the actual dump+restore
	// cost when the task resumes, then cleared. dumpCost accumulates the
	// device time of the dump window(s) of the current checkpoint.
	estOverhead time.Duration
	dumpCost    time.Duration

	// failedAt is when the task's container actually died in an NM crash;
	// the RM only learns (and charges the loss) at the liveness sweep.
	// failedOver marks a task requeued by a node failure until its next
	// attempt starts, attributing that restore/restart to the failure
	// rather than to a preemption.
	failedAt   sim.Time
	failedOver bool
	// lastCkptSpan is the dump span of the newest checkpoint, used to
	// parent the queue-wait and restore spans of the same lifecycle.
	lastCkptSpan obs.SpanID
}

// imageLink is one image of a checkpoint chain together with the logical
// bytes it contributed to the footprint accounting.
type imageLink struct {
	name  string
	bytes int64
}

// remaining is the compute time still owed.
func (t *taskRun) remaining() time.Duration { return t.spec.Duration - t.banked }

// progressFrac is the fraction of total compute done at virtual time now.
func (t *taskRun) progressFrac(now sim.Time) float64 {
	done := t.banked
	if t.state == stateRunning {
		done += time.Duration(now - t.attemptStart)
	}
	f := float64(done) / float64(t.spec.Duration)
	if f > 1 {
		f = 1
	}
	return f
}

func (t *taskRun) unsavedProgress(now sim.Time) time.Duration {
	if t.state != stateRunning {
		return 0
	}
	return time.Duration(now - t.attemptStart)
}

// candidate builds the Algorithm 1 input for this task. DirtyBytes comes
// from the live process's real soft-dirty page count when an image exists.
func (t *taskRun) candidate(now sim.Time) core.Candidate {
	dirty := t.spec.MemFootprint
	if t.hasImage && t.process != nil {
		dirty = t.process.Memory().LogicalDirtyBytes()
	}
	return core.Candidate{
		Task:            t.spec.ID,
		Priority:        t.spec.Priority,
		Demand:          t.spec.Demand,
		UnsavedProgress: t.unsavedProgress(now),
		FootprintBytes:  t.spec.MemFootprint,
		DirtyBytes:      dirty,
		HasCheckpoint:   t.hasImage,
	}
}

// advanceTo steps the real process until its step counter reaches target.
func (t *taskRun) advanceTo(target uint64) error {
	if target > t.totalSteps {
		target = t.totalSteps
	}
	for t.process.Steps() < target {
		if _, err := t.process.Step(); err != nil {
			return err
		}
	}
	return nil
}

// AppMaster manages one job's tasks: it requests containers, runs the
// per-container programs, and — as the paper's Preemption Manager — decides
// per ContainerPreemptEvent whether to checkpoint or kill (Algorithm 1),
// performs dumps/restores through the DFS, and re-requests containers for
// preempted tasks.
type AppMaster struct {
	c     *Cluster
	job   *cluster.JobSpec
	tasks []*taskRun
	left  int
}

func newAppMaster(c *Cluster, job *cluster.JobSpec) *AppMaster {
	am := &AppMaster{c: c, job: job, left: len(job.Tasks)}
	for i := range job.Tasks {
		spec := &job.Tasks[i]
		am.tasks = append(am.tasks, &taskRun{
			spec:       spec,
			am:         am,
			seq:        c.nextTaskSeq(),
			state:      statePending,
			totalSteps: c.programSteps(),
			imageNode:  -1,
		})
	}
	return am
}

// submit requests one container per task (Fig. 7 step 1).
func (am *AppMaster) submit(now sim.Time) {
	am.c.tasksSubmitted += len(am.tasks)
	am.c.ensureLiveness(now)
	for _, t := range am.tasks {
		am.c.rm.RequestContainer(t, -1, now)
	}
}

// newProcess builds the task's real program instance.
func (am *AppMaster) newProcess(t *taskRun) (*proc.Process, error) {
	cfg := am.c.cfg
	seed := int64(t.spec.ID.Job)*1_000_003 + int64(t.spec.ID.Index)
	switch cfg.Program {
	case "wordcount":
		return mapreduce.NewProcessScaled(
			t.spec.ID.String(),
			cfg.WordCountInput, cfg.WordCountChunk, seed,
			t.spec.MemFootprint,
		)
	default:
		return kmeans.NewProcessScaled(
			t.spec.ID.String(),
			cfg.KMeansPoints, cfg.KMeansDims, cfg.KMeansK,
			uint64(cfg.KMeansIters), seed,
			t.spec.MemFootprint,
		)
	}
}

// onAllocated receives a granted container (Fig. 7 step 6): fresh tasks
// start executing; checkpointed tasks restore first (locally or remotely).
func (am *AppMaster) onAllocated(t *taskRun, n *NodeManager, now sim.Time) {
	t.node = n
	if !t.hasImage {
		if t.failedOver {
			// A node failure took the task and it had no image to resume
			// from — this fresh start is failure-attributed lost work.
			am.c.res.FailureRestarts++
		}
		p, err := am.newProcess(t)
		if err != nil {
			panic(fmt.Sprintf("yarn: create process for %v: %v", t.spec.ID, err))
		}
		t.process = p
		am.startRun(t, now)
		return
	}

	// Restore path: charge network transfer when the image is remote,
	// then the device read, then rebuild the real process.
	t.state = stateRestoring
	remote := n.id != t.imageNode
	var transfer time.Duration
	if remote {
		transfer = time.Duration(float64(t.spec.MemFootprint) / am.c.cfg.NetBandwidth * float64(time.Second))
		am.c.res.RemoteRestores++
	}
	am.c.res.Restores++
	start, done := n.device.ReserveRead(now+transfer, t.spec.MemFootprint)
	am.c.recordRestore(t, n, remote, transfer, now, start, done)
	am.c.chargeOverhead(t, time.Duration(done-now))
	am.c.engine.At(done, func(at sim.Time) {
		am.restoreOrFallback(t, n, at)
	})
}

// restoreOrFallback rebuilds the task's process from its checkpoint
// chain, walking the degradation ladder on failure: a corrupt or
// unreadable tip image falls back to its parent, re-running only the work
// the dropped link had banked, and an exhausted chain restarts the task
// from scratch — exactly what a kill-based scheduler would have done.
func (am *AppMaster) restoreOrFallback(t *taskRun, n *NodeManager, at sim.Time) {
	if t.state != stateRestoring || t.node != n {
		// The node failed mid-restore and the liveness sweep already
		// requeued the task; this is the stale device-read completion.
		return
	}
	if n.crashed || n.deadDeclared {
		// The node died under the restore but the sweep has not fenced the
		// task yet; leave it for declareNodeDead, which requeues restoring
		// tasks losslessly.
		return
	}
	for t.hasImage {
		p, info, err := am.c.ckpt.Restore(n.store, t.imageName)
		if err == nil {
			if t.failedOver {
				am.c.res.FailureRestores++
			}
			// The restored image may be older than the tip the bank was
			// computed from; re-derive banked progress from the step
			// counter actually restored and charge the difference as
			// waste.
			restored := time.Duration(float64(t.spec.Duration) * float64(info.Steps) / float64(t.totalSteps))
			if restored < t.banked {
				am.c.addWaste(coresOf(t) * (t.banked - restored).Hours())
				t.banked = restored
			}
			t.process = p
			am.startRun(t, at)
			return
		}
		am.c.res.RestoreFailures++
		if errors.Is(err, checkpoint.ErrVerifyFailed) {
			// The manifest caught stored bytes differing from what the dump
			// published — the verified-restore rung: walk back the chain to
			// the newest ancestor that still verifies.
			am.c.res.RestoreVerifyFailures++
		}
		am.dropTipImage(t, n)
		if t.hasImage {
			am.c.res.RestoreFallbacks++
		}
	}
	// Every image of the chain was unusable: restart from scratch.
	am.c.res.RestoreRestarts++
	if t.failedOver {
		am.c.res.FailureRestarts++
	}
	am.discardImages(t, n)
	am.c.addWaste(coresOf(t) * t.banked.Hours())
	t.banked = 0
	fresh, perr := am.newProcess(t)
	if perr != nil {
		panic(fmt.Sprintf("yarn: recreate process for %v: %v", t.spec.ID, perr))
	}
	t.process = fresh
	am.startRun(t, at)
}

// dropTipImage removes the newest link of the chain and retargets the
// task at its parent image, if any.
func (am *AppMaster) dropTipImage(t *taskRun, n *NodeManager) {
	if len(t.chain) == 0 {
		am.discardImages(t, n)
		return
	}
	tip := t.chain[len(t.chain)-1]
	t.chain = t.chain[:len(t.chain)-1]
	_ = n.store.Remove(tip.name)
	_ = n.store.Remove(checkpoint.ManifestName(tip.name))
	t.imageBytes -= tip.bytes
	am.c.addImageBytes(-tip.bytes)
	if len(t.chain) == 0 {
		t.hasImage = false
		t.imageName = ""
		t.imageNode = -1
		return
	}
	t.imageName = t.chain[len(t.chain)-1].name
}

// discardImages drops a task's checkpoint chain, best effort: corrupt
// chains may be partially unreadable.
func (am *AppMaster) discardImages(t *taskRun, n *NodeManager) {
	if !t.hasImage {
		t.chain = nil
		return
	}
	if err := checkpoint.RemoveChain(n.store, t.imageName); err != nil {
		// Chain walking requires readable images; remove at least the tip
		// and its manifest.
		_ = n.store.Remove(t.imageName)
		_ = n.store.Remove(checkpoint.ManifestName(t.imageName))
	}
	am.c.addImageBytes(-t.imageBytes)
	t.imageBytes = 0
	t.hasImage = false
	t.imageName = ""
	t.imageNode = -1
	t.chain = nil
}

// recordFullImage books a freshly written full image as the task's whole
// chain.
func (am *AppMaster) recordFullImage(t *taskRun, name string, bytes int64) {
	am.c.addImageBytes(bytes - t.imageBytes)
	t.imageBytes = bytes
	t.chain = []imageLink{{name: name, bytes: bytes}}
}

// recordDeltaImage books an incremental image appended to the chain.
func (am *AppMaster) recordDeltaImage(t *taskRun, name string, bytes int64) {
	t.imageBytes += bytes
	am.c.addImageBytes(bytes)
	t.chain = append(t.chain, imageLink{name: name, bytes: bytes})
}

// killFallback degrades a failed checkpoint to a kill-based preemption:
// the victim dies, lost compute is charged as waste, and the task
// re-queues like any killed victim — it still restores from its last
// intact image if one exists.
func (am *AppMaster) killFallback(t *taskRun, n *NodeManager, lost time.Duration, now sim.Time) {
	am.c.res.DumpFailures++
	am.c.res.FallbackKills++
	am.c.res.Kills++
	am.c.addWaste(coresOf(t) * lost.Hours())
	am.c.recordKillFallback(t, n, lost, now)
	t.process.Kill()
	t.process = nil
	n.releaseSlot(now, t)
	t.node = nil
	t.state = statePending
	pref := -1
	if t.hasImage {
		pref = t.imageNode
	}
	am.c.rm.RequestContainer(t, pref, now)
	am.c.rm.schedulePass(now)
}

// onNodeFailure fences one of this AM's tasks off a node the RM has just
// declared dead. What is lost depends on where the task's lifecycle stood:
//
//   - checkpointing: the frozen image already landed in the (replicated)
//     DFS; the pending dump-drain closure will release the slot and
//     re-request a container, so nothing to do here.
//   - restoring: no progress had resumed yet; requeue losslessly — the
//     image chain survives the node because it lives in the DFS.
//   - running: progress since the attempt started is gone. On a crashed
//     node the container died at the crash instant (failedAt); on a
//     partitioned node the NM fences its containers on losing RM contact,
//     so the kill lands now.
func (am *AppMaster) onNodeFailure(t *taskRun, n *NodeManager, now sim.Time) {
	switch t.state {
	case stateCheckpointing:
		return
	case stateRestoring:
		n.releaseSlot(now, t)
		am.requeueAfterFailure(t, n, 0, now)
	case stateRunning:
		failed := now
		if t.failedAt > 0 {
			failed = t.failedAt
		}
		lost := time.Duration(failed - t.attemptStart)
		if lost < 0 {
			lost = 0
		}
		am.c.engine.Cancel(t.completion)
		t.completion = nil
		if t.process != nil {
			// Partition fence: the machine is alive but unreachable, so
			// its NM kills the container rather than risk a double
			// completion the RM can no longer see.
			t.process.Kill()
			t.process = nil
		}
		n.releaseSlot(now, t)
		am.c.addFailureWaste(coresOf(t) * lost.Hours())
		am.requeueAfterFailure(t, n, lost, now)
	}
}

// requeueAfterFailure puts a fenced task back in the RM queue, preferring
// its image's home node unless that is the node that just died.
func (am *AppMaster) requeueAfterFailure(t *taskRun, n *NodeManager, lost time.Duration, now sim.Time) {
	t.node = nil
	t.state = statePending
	t.preCopying = false
	t.failedOver = true
	t.failedAt = 0
	am.c.res.TasksRescheduled++
	am.c.recordTaskRescheduled(t, n, lost, now)
	pref := -1
	if t.hasImage && t.imageNode != n.id {
		pref = t.imageNode
	}
	am.c.rm.RequestContainer(t, pref, now)
}

func (am *AppMaster) startRun(t *taskRun, now sim.Time) {
	t.state = stateRunning
	t.attemptStart = now
	t.failedOver = false
	t.failedAt = 0
	t.completion = am.c.engine.Schedule(t.remaining(), func(end sim.Time) {
		am.onComplete(t, end)
	})
}

// onPreempt is the Preemption Manager servicing a ContainerPreemptEvent
// (Fig. 7 steps 2-4).
func (am *AppMaster) onPreempt(t *taskRun, now sim.Time) {
	if t.state != stateRunning {
		return
	}
	n := t.node

	// Advance the real process to the preemption point before anything
	// else, so both the dirty-page estimate and any dump reflect the
	// actual progress.
	target := uint64(t.progressFrac(now) * float64(t.totalSteps))
	if err := t.advanceTo(target); err != nil {
		panic(fmt.Sprintf("yarn: advance %v: %v", t.spec.ID, err))
	}

	action := core.DecidePreemption(am.c.cfg.Policy, t.candidate(now), n.device, now)
	if action.IsCheckpoint() {
		// Capture the Algorithm 1 estimate the decision was based on, so
		// its error against the actual dump+restore cost is measurable.
		t.estOverhead = core.CheckpointOverhead(t.candidate(now), n.device, now)
		t.dumpCost = 0
	}
	am.c.recordDecision(t, n, action, now)

	if action.IsCheckpoint() && am.c.cfg.PreCopy {
		am.startPreCopyCheckpoint(t, n, now)
		return
	}
	am.c.engine.Cancel(t.completion)
	t.completion = nil

	if !action.IsCheckpoint() {
		// Kill: progress since the last checkpoint is lost; the slot frees
		// immediately.
		am.c.res.Kills++
		am.c.addWaste(coresOf(t) * t.unsavedProgress(now).Hours())
		t.process.Kill()
		t.process = nil
		n.releaseSlot(now, t)
		t.node = nil
		t.state = statePending
		pref := -1
		if t.hasImage {
			pref = t.imageNode
		}
		am.c.rm.RequestContainer(t, pref, now)
		am.c.rm.schedulePass(now)
		return
	}

	// Checkpoint: bank progress quantized to the step boundary actually
	// captured, freeze, dump for real into the DFS, and release the slot
	// when the dump drains through the node's checkpoint queue.
	prevBanked := t.banked
	unsaved := t.unsavedProgress(now)
	t.state = stateCheckpointing
	t.banked = time.Duration(float64(t.spec.Duration) * float64(t.process.Steps()) / float64(t.totalSteps))

	if err := t.process.Suspend(); err != nil {
		panic(fmt.Sprintf("yarn: suspend %v: %v", t.spec.ID, err))
	}
	var opts checkpoint.DumpOpts
	incremental := t.hasImage
	if incremental {
		opts = checkpoint.DumpOpts{Incremental: true, Parent: t.imageName}
	}
	name := fmt.Sprintf("/ckpt/%s/%d", t.spec.ID, t.imageSeq)
	t.imageSeq++
	info, err := am.c.ckpt.Dump(t.process, n.store, name, opts)
	if err != nil {
		// The dump failed against the store: degrade to kill-based
		// preemption. The bank rolls back to the last restorable image;
		// this attempt's progress is lost, as under a kill-only policy.
		t.banked = prevBanked
		am.killFallback(t, n, unsaved, now)
		return
	}
	am.c.res.Checkpoints++
	if incremental {
		am.c.res.IncrementalCheckpoints++
	}
	am.c.afterDump(n.dfsCli, name)
	t.process = nil // the frozen process lives on only as the image

	if incremental {
		am.recordDeltaImage(t, name, info.LogicalBytes)
	} else {
		am.recordFullImage(t, name, info.LogicalBytes)
	}
	am.c.sampleDFSUsage()

	start, done := n.device.ReserveWrite(now, info.LogicalBytes)
	t.dumpCost = time.Duration(done - now)
	am.c.recordDump(t, n, name, info.LogicalBytes, incremental, now, start, done)
	am.c.chargeOverhead(t, time.Duration(done-now))
	am.c.engine.At(done, func(at sim.Time) {
		t.hasImage = true
		t.imageName = name
		t.imageNode = n.id
		n.releaseSlot(at, t)
		t.node = nil
		t.state = statePending
		am.maybeCompact(t, n, at)
		am.c.rm.RequestContainer(t, n.id, at)
	})
}

// maybeCompact merges a long incremental chain into one full image,
// bounding restore-time chain walks. It runs after the slot is released,
// so only device time (not container time) is consumed.
func (am *AppMaster) maybeCompact(t *taskRun, n *NodeManager, now sim.Time) {
	k := am.c.cfg.CompactChainAfter
	if k <= 0 || !t.hasImage || len(t.chain) <= k {
		return
	}
	dst := fmt.Sprintf("/ckpt/%s/%d", t.spec.ID, t.imageSeq)
	t.imageSeq++
	info, err := checkpoint.Compact(n.store, t.imageName, dst)
	if err != nil {
		// Best effort: an uncompactable chain still restores link by link.
		return
	}
	old := t.imageName
	t.imageName = dst
	am.recordFullImage(t, dst, info.LogicalBytes)
	am.c.res.Compactions++
	if err := checkpoint.RemoveChain(n.store, old); err != nil {
		// Cleanup is best effort: a failed removal leaks the old chain
		// but must not fail the task.
		_ = n.store.Remove(old)
		_ = n.store.Remove(checkpoint.ManifestName(old))
	}
	n.device.ReserveWrite(now, info.LogicalBytes)
	am.c.sampleDFSUsage()
}

// startPreCopyCheckpoint services a ContainerPreemptEvent with the
// pre-copy optimization: the victim's pages are dumped for real while it
// keeps executing; at the end of the write window it freezes and dumps
// only the pages its continued execution dirtied.
func (am *AppMaster) startPreCopyCheckpoint(t *taskRun, n *NodeManager, now sim.Time) {
	var opts checkpoint.DumpOpts
	incremental := t.hasImage
	if incremental {
		opts = checkpoint.DumpOpts{Incremental: true, Parent: t.imageName}
	}
	preName := fmt.Sprintf("/ckpt/%s/%d", t.spec.ID, t.imageSeq)
	t.imageSeq++
	preSteps := t.process.Steps()
	info, err := am.c.ckpt.PreDump(t.process, n.store, preName, opts)
	if err != nil {
		// The pre-dump failed while the victim still ran: degrade to a
		// kill. Everything since the attempt started is lost.
		am.c.engine.Cancel(t.completion)
		t.completion = nil
		lost := t.unsavedProgress(now)
		am.killFallback(t, n, lost, now)
		return
	}
	am.c.res.Checkpoints++
	am.c.res.PreCopies++
	if incremental {
		am.c.res.IncrementalCheckpoints++
	}
	am.c.afterDump(n.dfsCli, preName)
	if incremental {
		am.recordDeltaImage(t, preName, info.LogicalBytes)
	} else {
		am.recordFullImage(t, preName, info.LogicalBytes)
	}
	t.hasImage = true
	t.imageName = preName
	t.imageNode = n.id
	t.preCopying = true
	am.c.sampleDFSUsage()

	preStart, preDone := n.device.ReserveWrite(now, info.LogicalBytes)
	t.dumpCost = time.Duration(preDone - now)
	am.c.recordPreDump(t, n, preName, info.LogicalBytes, now, preStart, preDone)
	am.c.engine.At(preDone, func(at sim.Time) {
		if t.state != stateRunning || !t.preCopying {
			// Completed during the window; images were (or will be)
			// reclaimed by onComplete.
			return
		}
		t.preCopying = false
		am.c.engine.Cancel(t.completion)
		t.completion = nil

		// Freeze at the current virtual progress; the steps executed
		// since the pre-dump are exactly the real dirty delta.
		target := uint64(t.progressFrac(at) * float64(t.totalSteps))
		if err := t.advanceTo(target); err != nil {
			panic(fmt.Sprintf("yarn: advance %v during pre-copy: %v", t.spec.ID, err))
		}
		t.state = stateCheckpointing
		t.banked = time.Duration(float64(t.spec.Duration) * float64(t.process.Steps()) / float64(t.totalSteps))
		if err := t.process.Suspend(); err != nil {
			panic(fmt.Sprintf("yarn: suspend %v after pre-copy: %v", t.spec.ID, err))
		}
		deltaName := fmt.Sprintf("/ckpt/%s/%d", t.spec.ID, t.imageSeq)
		t.imageSeq++
		dinfo, err := am.c.ckpt.Dump(t.process, n.store, deltaName, checkpoint.DumpOpts{Incremental: true, Parent: preName})
		if err != nil {
			// The delta dump failed, but the pre-copy image already
			// landed: roll the bank back to the pre-dump's step boundary
			// and degrade to a kill — only the window's progress is lost.
			preBanked := time.Duration(float64(t.spec.Duration) * float64(preSteps) / float64(t.totalSteps))
			lost := t.banked - preBanked
			if lost < 0 {
				lost = 0
			}
			t.banked = preBanked
			am.killFallback(t, n, lost, at)
			return
		}
		am.c.afterDump(n.dfsCli, deltaName)
		t.process = nil
		am.recordDeltaImage(t, deltaName, dinfo.LogicalBytes)
		t.imageName = deltaName
		am.c.sampleDFSUsage()

		start, done := n.device.ReserveWrite(at, dinfo.LogicalBytes)
		t.dumpCost += time.Duration(done - at)
		am.c.recordDump(t, n, deltaName, dinfo.LogicalBytes, true, at, start, done)
		am.c.chargeOverhead(t, time.Duration(done-at))
		am.c.engine.At(done, func(end sim.Time) {
			n.releaseSlot(end, t)
			t.node = nil
			t.state = statePending
			am.maybeCompact(t, n, end)
			am.c.rm.RequestContainer(t, n.id, end)
		})
	})
}

// onComplete finishes a task: the real program runs to its final step and
// the result is checksummed, proving transparency end to end.
func (am *AppMaster) onComplete(t *taskRun, now sim.Time) {
	if err := t.advanceTo(t.totalSteps); err != nil {
		panic(fmt.Sprintf("yarn: finish %v: %v", t.spec.ID, err))
	}
	if t.process.State() != proc.Exited {
		panic(fmt.Sprintf("yarn: task %v finished at %d/%d steps but process is %v",
			t.spec.ID, t.process.Steps(), t.totalSteps, t.process.State()))
	}
	am.c.res.TaskChecksums[t.spec.ID] = checksumProcess(t.process)
	am.c.addUseful(coresOf(t) * t.spec.Duration.Hours())
	am.c.res.TasksCompleted++

	t.state = stateDone
	t.completion = nil
	n := t.node
	n.releaseSlot(now, t)
	t.node = nil
	am.discardImages(t, n)
	t.process = nil
	am.c.recordTaskDone(t, n, now)

	am.left--
	if am.left == 0 {
		am.c.res.JobsCompleted++
		resp := time.Duration(now - am.job.Submit).Seconds()
		am.c.res.JobResponseSec[am.job.Band()].Add(resp)
		am.c.res.JobResponseAllSec.Add(resp)
		am.c.slo.ObserveResponse(am.job.Band().String(), resp)
		if fn := am.c.jobDone[am.job.ID]; fn != nil {
			delete(am.c.jobDone, am.job.ID)
			fn(JobDone{ID: am.job.ID, At: now, ResponseSec: resp, Tasks: len(am.job.Tasks)})
		}
	}
	am.c.rm.schedulePass(now)
}

func coresOf(t *taskRun) float64 {
	return float64(t.spec.Demand.CPUMillis) / 1000
}

// checksumProcess hashes the full real memory of a finished process.
func checksumProcess(p *proc.Process) uint64 {
	h := fnv.New64a()
	mem := p.Memory()
	for i := 0; i < mem.NumPages(); i++ {
		h.Write(mem.Page(i))
	}
	return h.Sum64()
}
