package yarn

import (
	"fmt"
	"io"
	"time"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/cluster"
	"preemptsched/internal/dfs"
	"preemptsched/internal/kmeans"
	"preemptsched/internal/mapreduce"
	"preemptsched/internal/metrics"
	"preemptsched/internal/proc"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

// Cluster assembles the framework: the event engine, the RM, the NMs with
// their devices, the in-process DFS the checkpoints live in, and the
// checkpoint engine.
type Cluster struct {
	cfg    Config
	engine *sim.Engine
	rm     *ResourceManager
	nodes  []*NodeManager
	dfsc   *dfs.Cluster
	ckpt   *checkpoint.Engine

	res     *Result
	taskSeq uint64

	imageBytes int64
	dumps      int
}

// maybeCorrupt implements the failure-injection knob: flips one byte of
// the freshly written image when this is the configured Nth dump.
func (c *Cluster) maybeCorrupt(cli *dfs.Client, name string) {
	c.dumps++
	if c.cfg.CorruptNthDump == 0 || c.dumps != c.cfg.CorruptNthDump {
		return
	}
	r, err := cli.Open(name)
	if err != nil {
		return
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || len(data) == 0 {
		return
	}
	data[len(data)/2] ^= 0xFF
	w, err := cli.Create(name)
	if err != nil {
		return
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return
	}
	_ = w.Close()
}

// Run executes jobs on a freshly assembled framework under cfg and returns
// the aggregated result.
func Run(cfg Config, jobs []cluster.JobSpec) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	c := &Cluster{cfg: cfg, engine: sim.NewEngine()}

	storageName := cfg.StorageKind.String()
	if cfg.CustomBandwidth > 0 {
		storageName = fmt.Sprintf("%.1fGB/s", cfg.CustomBandwidth/1e9)
	}
	c.res = &Result{
		Policy:            cfg.Policy,
		Storage:           storageName,
		JobResponseSec:    make(map[cluster.Band]*metrics.Dist),
		JobResponseAllSec: &metrics.Dist{},
		TaskChecksums:     make(map[cluster.TaskID]uint64),
	}
	for b := 0; b < cluster.NumBands; b++ {
		c.res.JobResponseSec[cluster.Band(b)] = &metrics.Dist{}
	}

	repl := cfg.Replication
	if repl > cfg.Nodes {
		repl = cfg.Nodes
	}
	dfsc, err := dfs.NewCluster(cfg.Nodes, repl)
	if err != nil {
		return nil, fmt.Errorf("yarn: build dfs: %w", err)
	}
	c.dfsc = dfsc

	registry := proc.NewRegistry()
	kmeans.RegisterWith(registry)
	mapreduce.RegisterWith(registry)
	c.ckpt = checkpoint.NewEngine(registry)

	for i := 0; i < cfg.Nodes; i++ {
		var dev *storage.Device
		if cfg.CustomBandwidth > 0 {
			dev = storage.NewCustomDevice(cfg.CustomBandwidth, 0)
		} else {
			dev = storage.NewDevice(cfg.StorageKind)
		}
		c.nodes = append(c.nodes, newNodeManager(i, cfg, dev, dfsc.ClientAt(i)))
	}
	c.rm = newResourceManager(c)

	totalTasks := 0
	for i := range jobs {
		spec := &jobs[i]
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("yarn: %w", err)
		}
		totalTasks += len(spec.Tasks)
		am := newAppMaster(c, spec)
		c.engine.ScheduleAt(spec.Submit, func(now sim.Time) {
			am.submit(now)
		})
	}

	end := c.engine.Run()
	c.res.Makespan = time.Duration(end)
	for _, n := range c.nodes {
		n.settleEnergy(end)
		c.res.EnergyKWh += n.meter.KWh()
		c.res.IOBusyHours += n.device.BusyTime().Hours()
	}
	if c.res.TasksCompleted != totalTasks {
		return nil, fmt.Errorf("yarn: run ended with %d of %d tasks complete", c.res.TasksCompleted, totalTasks)
	}
	return c.res, nil
}

func (c *Cluster) nextTaskSeq() uint64 {
	c.taskSeq++
	return c.taskSeq
}

// programSteps is the exact Step count of the configured per-task
// program, which maps virtual progress to real execution.
func (c *Cluster) programSteps() uint64 {
	switch c.cfg.Program {
	case "wordcount":
		return mapreduce.TotalSteps(c.cfg.WordCountInput, c.cfg.WordCountChunk)
	default:
		return uint64(c.cfg.KMeansIters)
	}
}

// chargeOverhead books checkpoint/restore time against a task's cores.
func (c *Cluster) chargeOverhead(t *taskRun, d time.Duration) {
	c.res.WastedCPUHours += coresOf(t) * d.Hours()
	c.res.OverheadCPUHours += coresOf(t) * d.Hours()
}

// addImageBytes tracks the logical checkpoint footprint high-water mark.
func (c *Cluster) addImageBytes(delta int64) {
	c.imageBytes += delta
	if c.imageBytes > c.res.PeakImageBytes {
		c.res.PeakImageBytes = c.imageBytes
	}
}

// sampleDFSUsage records the real bytes resident in the DFS.
func (c *Cluster) sampleDFSUsage() {
	var total int64
	for _, dn := range c.dfsc.DataNodes {
		total += dn.StoredBytes()
	}
	if total > c.res.DFSStoredBytes {
		c.res.DFSStoredBytes = total
	}
}
