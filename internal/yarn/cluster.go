package yarn

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/cluster"
	"preemptsched/internal/dfs"
	"preemptsched/internal/faults"
	"preemptsched/internal/kmeans"
	"preemptsched/internal/mapreduce"
	"preemptsched/internal/metrics"
	"preemptsched/internal/obs"
	"preemptsched/internal/proc"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

// Cluster assembles the framework: the event engine, the RM, the NMs with
// their devices, the in-process DFS the checkpoints live in, and the
// checkpoint engine.
type Cluster struct {
	cfg    Config
	engine *sim.Engine
	rm     *ResourceManager
	nodes  []*NodeManager
	dfsc   *dfs.Cluster
	// dfsView is the transport every client and DataNode actually uses:
	// the raw in-process transport, or the fault injector's wrapper of it
	// when Config.Faults is set.
	dfsView  dfs.Transport
	injector *faults.Injector
	ckpt     *checkpoint.Engine

	// tracer records lifecycle spans in virtual time; nil disables
	// tracing. reg is never nil inside Run: a private registry is built
	// when the caller does not supply one, so Result.Metrics is always
	// populated. rec is the flight recorder (nil disables journaling);
	// slo is the live SLO tracker and, like reg, is never nil inside
	// Run.
	tracer *obs.Tracer
	reg    *obs.Registry
	rec    *obs.Recorder
	slo    *obs.SLOTracker
	// hm holds pre-resolved handles for the per-event metric paths (see
	// resolveHandles in obs.go); reg stays the sink for everything cold.
	hm yarnHandles

	res     *Result
	taskSeq uint64

	imageBytes int64
	dumps      int

	// Node-liveness machinery (engine goroutine only). tasksSubmitted
	// counts every task handed to the RM, so livenessShouldRun can tell
	// when the workload has drained and the heartbeat loop must wind down —
	// otherwise the perpetual timers would keep engine.Run from ever
	// returning. livenessTimers counts outstanding heartbeat/sweep events;
	// nmCrashTimer is the pending seeded NM-crash event, cancelled at
	// wind-down so a far-future crash time cannot inflate the makespan of
	// a run whose work finished early.
	tasksSubmitted int
	livenessOn     bool
	livenessTimers int
	nmCrashTimer   *sim.Timer

	// decomRecovered/decomLost accumulate DataNode-decommission
	// re-replication outcomes. The OnCrash callback runs on whichever
	// goroutine tripped the crashed DataNode — under the TCP substrate
	// that is a client RPC goroutine racing the engine — so the counts
	// are folded into Result only at finish, under the books-closed
	// barrier.
	decomRecovered atomic.Int64
	decomLost      atomic.Int64

	// jobDone maps a job to its completion callback (service mode); the
	// callback fires on the engine goroutine the moment the job's last
	// task completes, so it must not block.
	jobDone map[cluster.JobID]func(JobDone)
	// cleanups tear down real resources (TCP listeners, transports) in
	// reverse order; serveWG tracks the dfs.Serve goroutines they stop.
	cleanups []func()
	serveWG  sync.WaitGroup
}

// buildDFS assembles the in-process DFS the checkpoints live in. With
// fault injection configured, every client and every DataNode reaches the
// cluster through the injector's transport wrapper, so pipeline forwarding
// between DataNodes suffers the same faults client RPCs do; a crashed
// DataNode is decommissioned at the NameNode and its blocks re-replicated
// from surviving copies.
func (c *Cluster) buildDFS(repl int) error {
	inner := dfs.NewInProcTransport()
	nn := dfs.NewNameNode(repl)
	nn.Instrument(c.reg)
	inner.SetNameNode(nn)

	var view dfs.Transport = inner
	if c.cfg.Faults != nil {
		plan := *c.cfg.Faults
		userOnCrash := plan.OnCrash
		plan.OnCrash = func(id string) {
			if userOnCrash != nil {
				userOnCrash(id)
			}
			// The liveness monitor would notice the silent node at its
			// next heartbeat sweep; the emulation collapses that delay
			// into an immediate decommission.
			if rep, err := nn.Decommission(id, c.dfsView); err == nil && rep != nil {
				c.decomRecovered.Add(int64(rep.Recovered))
				c.decomLost.Add(int64(rep.Lost))
			}
		}
		c.injector = faults.NewInjector(plan)
		view = faults.WrapTransport(inner, c.injector)
	}
	c.dfsView = view
	// Self-healing (re-replication after a bad-replica report) runs over
	// the same faulted view every other component uses, so healing copies
	// are subject to the same injected chaos as the traffic that found the
	// corruption.
	nn.AttachTransport(view)

	c.dfsc = &dfs.Cluster{NameNode: nn, Transport: inner}
	for i := 0; i < c.cfg.Nodes; i++ {
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: fmt.Sprintf("dn-%d", i)}
		dn := dfs.NewDataNode(info, view)
		dn.Instrument(c.reg)
		inner.AddDataNode(info, dn)
		if err := nn.Register(info); err != nil {
			return err
		}
		c.dfsc.DataNodes = append(c.dfsc.DataNodes, dn)
	}
	return nil
}

// afterDump runs the per-dump hooks: the corruption-injection knob and
// the dump-counted scrub cadence.
func (c *Cluster) afterDump(cli *dfs.Client, name string) {
	c.dumps++
	c.maybeCorrupt(cli, name)
	if c.cfg.ScrubEveryNDumps > 0 && c.dumps%c.cfg.ScrubEveryNDumps == 0 {
		c.scrubAll()
	}
}

// maybeCorrupt implements the failure-injection knob: flips one byte of
// the freshly written image when this is the configured Nth dump.
func (c *Cluster) maybeCorrupt(cli *dfs.Client, name string) {
	if c.cfg.CorruptNthDump == 0 || c.dumps != c.cfg.CorruptNthDump {
		return
	}
	r, err := cli.Open(name)
	if err != nil {
		return
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || len(data) == 0 {
		return
	}
	data[len(data)/2] ^= 0xFF
	w, err := cli.Create(name)
	if err != nil {
		return
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return
	}
	_ = w.Close()
}

// scrubAll runs one integrity scrub pass over every DataNode: corrupt
// replicas are evicted, reported to the NameNode, and re-replicated from
// verified copies, so the cluster converges back to zero corrupt
// replicas. Sweep totals land in the Result.
func (c *Cluster) scrubAll() {
	nn, err := c.dfsView.NameNode()
	if err != nil {
		return
	}
	for _, dn := range c.dfsc.DataNodes {
		res := dn.ScrubOnce(nn)
		c.res.ScrubRuns++
		c.res.ScrubBlocksChecked += int64(res.Checked)
		c.res.ScrubCorruptFound += int64(res.Corrupt)
	}
}

// newCluster assembles a framework instance — engine, DFS substrate,
// checkpoint engine, NodeManagers, RM — ready to accept jobs. tcpDFS
// selects the real-TCP DFS (service mode) over the in-process transport.
func newCluster(cfg Config, tcpDFS bool) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()

	c := &Cluster{cfg: cfg, engine: sim.NewEngine(), tracer: cfg.Tracer, reg: cfg.Metrics,
		rec: cfg.Recorder, slo: cfg.SLO,
		jobDone: make(map[cluster.JobID]func(JobDone))}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}
	if c.slo == nil {
		c.slo = obs.NewSLOTracker()
	}
	c.resolveHandles()

	storageName := cfg.StorageKind.String()
	if cfg.CustomBandwidth > 0 {
		storageName = fmt.Sprintf("%.1fGB/s", cfg.CustomBandwidth/1e9)
	}
	c.res = &Result{
		Policy:            cfg.Policy,
		Storage:           storageName,
		JobResponseSec:    make(map[cluster.Band]*metrics.Dist),
		JobResponseAllSec: &metrics.Dist{},
		TaskChecksums:     make(map[cluster.TaskID]uint64),
	}
	for b := 0; b < cluster.NumBands; b++ {
		c.res.JobResponseSec[cluster.Band(b)] = &metrics.Dist{}
	}

	repl := cfg.Replication
	if repl > cfg.Nodes {
		repl = cfg.Nodes
	}
	var err error
	if tcpDFS {
		err = c.buildTCPDFS(repl)
	} else {
		err = c.buildDFS(repl)
	}
	if err != nil {
		c.close()
		return nil, fmt.Errorf("yarn: build dfs: %w", err)
	}

	registry := proc.NewRegistry()
	kmeans.RegisterWith(registry)
	mapreduce.RegisterWith(registry)
	c.ckpt = checkpoint.NewEngine(registry)
	c.ckpt.Instrument(c.reg)

	for i := 0; i < cfg.Nodes; i++ {
		var dev *storage.Device
		if cfg.CustomBandwidth > 0 {
			dev = storage.NewCustomDevice(cfg.CustomBandwidth, 0)
		} else {
			dev = storage.NewDevice(cfg.StorageKind)
		}
		opts := []dfs.ClientOption{dfs.WithLocalNode(fmt.Sprintf("dn-%d", i)), dfs.WithObserver(c.reg)}
		if cfg.clientCtx != nil {
			opts = append(opts, dfs.WithContext(cfg.clientCtx))
		}
		cli := dfs.NewClient(c.dfsView, opts...)
		var store storage.Store = cli
		if c.injector != nil {
			store = faults.WrapStore(cli, c.injector)
		}
		c.nodes = append(c.nodes, newNodeManager(i, cfg, dev, cli, store))
	}
	c.rm = newResourceManager(c)
	return c, nil
}

// finish closes the books at virtual time end: the final scrub drain, the
// makespan, per-node energy/IO/DFS totals, injector counts, and the
// metrics snapshot.
func (c *Cluster) finish(end sim.Time) {
	// Drain residual bit rot before the books close: one healing pass
	// catches replicas flipped after the last cadence scrub, then a second
	// pass counts what is still corrupt. FinalScrubCorrupt == 0 is the
	// one-snapshot proof that the cluster converged to zero corrupt
	// replicas.
	if c.cfg.ScrubEveryNDumps > 0 {
		c.scrubAll()
		before := c.res.ScrubCorruptFound
		c.scrubAll()
		c.res.FinalScrubCorrupt = c.res.ScrubCorruptFound - before
	}
	c.res.Makespan = time.Duration(end)
	for _, n := range c.nodes {
		n.settleEnergy(end)
		c.res.EnergyKWh += n.meter.KWh()
		c.res.IOBusyHours += n.device.BusyTime().Hours()
		st := n.dfsCli.Stats()
		c.res.DFSRetries += st.Retries
		c.res.ReadFailovers += st.ReadFailovers
		c.res.PipelineRebuilds += st.PipelineRebuilds
		c.res.CorruptReads += st.CorruptReads
	}
	c.res.BlocksReReplicated += int(c.decomRecovered.Swap(0))
	c.res.BlocksLost += int(c.decomLost.Swap(0))
	if c.injector != nil {
		c.res.FaultsInjected = c.injector.Counters().Snapshot()
	}
	c.finishMetrics()
}

// close releases the cluster's real resources (TCP listeners, pooled
// connections) in reverse acquisition order and waits for the serve
// goroutines they stop. A no-op for the in-process substrate.
func (c *Cluster) close() {
	for i := len(c.cleanups) - 1; i >= 0; i-- {
		c.cleanups[i]()
	}
	c.cleanups = nil
	c.serveWG.Wait()
}

// Run executes jobs on a freshly assembled framework under cfg and returns
// the aggregated result.
func Run(cfg Config, jobs []cluster.JobSpec) (*Result, error) {
	c, err := newCluster(cfg, false)
	if err != nil {
		return nil, err
	}
	totalTasks := 0
	for i := range jobs {
		spec := &jobs[i]
		if err := spec.Validate(); err != nil {
			return nil, fmt.Errorf("yarn: %w", err)
		}
		totalTasks += len(spec.Tasks)
		am := newAppMaster(c, spec)
		c.engine.At(spec.Submit, func(now sim.Time) {
			am.submit(now)
		})
	}

	end := c.engine.Run()
	c.finish(end)
	if c.res.TasksCompleted != totalTasks {
		// Return the partial result alongside the error so callers can
		// surface the telemetry of an aborted run.
		return c.res, fmt.Errorf("yarn: run ended with %d of %d tasks complete", c.res.TasksCompleted, totalTasks)
	}
	return c.res, nil
}

func (c *Cluster) nextTaskSeq() uint64 {
	c.taskSeq++
	return c.taskSeq
}

// programSteps is the exact Step count of the configured per-task
// program, which maps virtual progress to real execution.
func (c *Cluster) programSteps() uint64 {
	switch c.cfg.Program {
	case "wordcount":
		return mapreduce.TotalSteps(c.cfg.WordCountInput, c.cfg.WordCountChunk)
	default:
		return uint64(c.cfg.KMeansIters)
	}
}

// chargeOverhead books checkpoint/restore time against a task's cores.
func (c *Cluster) chargeOverhead(t *taskRun, d time.Duration) {
	c.addWaste(coresOf(t) * d.Hours())
	c.res.OverheadCPUHours += coresOf(t) * d.Hours()
}

// addWaste books wasted core-hours in the Result and the live SLO
// tracker in one step, so the two can never drift.
func (c *Cluster) addWaste(coreHours float64) {
	c.res.WastedCPUHours += coreHours
	c.slo.AddWaste(coreHours)
}

// addFailureWaste books core-hours lost to a node failure: it lands in
// the same waste totals as preemption waste, plus the failure-attributed
// buckets, so reports can split blame between the scheduler and the
// hardware.
func (c *Cluster) addFailureWaste(coreHours float64) {
	c.res.WastedCPUHours += coreHours
	c.res.FailureWasteHours += coreHours
	c.slo.AddFailureWaste(coreHours)
}

// addUseful books useful core-hours in the Result and the SLO tracker.
func (c *Cluster) addUseful(coreHours float64) {
	c.res.UsefulCPUHours += coreHours
	c.slo.AddUseful(coreHours)
}

// addImageBytes tracks the logical checkpoint footprint high-water mark.
func (c *Cluster) addImageBytes(delta int64) {
	c.imageBytes += delta
	if c.imageBytes > c.res.PeakImageBytes {
		c.res.PeakImageBytes = c.imageBytes
	}
}

// sampleDFSUsage records the real bytes resident in the DFS.
func (c *Cluster) sampleDFSUsage() {
	var total int64
	for _, dn := range c.dfsc.DataNodes {
		total += dn.StoredBytes()
	}
	if total > c.res.DFSStoredBytes {
		c.res.DFSStoredBytes = total
	}
}
