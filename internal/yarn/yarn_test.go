package yarn

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
	"preemptsched/internal/workload"
)

// tinyCluster is a 1-node, 1-slot framework so contention is guaranteed.
func tinyCluster(policy core.Policy) Config {
	cfg := DefaultConfig(policy, storage.SSD)
	cfg.Nodes = 1
	cfg.ContainersPerNode = 1
	return cfg
}

// smallWorkload builds a handful of single-task jobs with mixed
// priorities.
func smallWorkload() []cluster.JobSpec {
	return workload.SensitivityScenario(time.Minute, 30*time.Second, cluster.GiB(5))
}

// mixedWorkload guarantees contention on a 6-slot cluster: six long
// low-priority tasks saturate it at t=0, then two high-priority jobs
// arrive mid-run and must preempt.
func mixedWorkload(t *testing.T) []cluster.JobSpec {
	t.Helper()
	var jobs []cluster.JobSpec
	mk := func(id cluster.JobID, prio cluster.Priority, submit time.Duration, tasks int, dur time.Duration) {
		j := cluster.JobSpec{ID: id, Priority: prio, Submit: submit}
		for i := 0; i < tasks; i++ {
			j.Tasks = append(j.Tasks, cluster.TaskSpec{
				ID:           cluster.TaskID{Job: id, Index: int32(i)},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: int64(1.8 * float64(cluster.GiB(1))),
				Duration:     dur,
				Submit:       submit,
			})
		}
		jobs = append(jobs, j)
	}
	mk(0, 0, 0, 3, 3*time.Minute)
	mk(1, 1, 0, 3, 2*time.Minute)
	mk(2, 0, 10*time.Second, 2, 90*time.Second)
	mk(3, 10, 45*time.Second, 2, time.Minute)
	mk(4, 9, 70*time.Second, 2, time.Minute)
	return jobs
}

func countTasks(jobs []cluster.JobSpec) int {
	n := 0
	for i := range jobs {
		n += len(jobs[i].Tasks)
	}
	return n
}

func TestWaitPolicyFramework(t *testing.T) {
	r, err := Run(tinyCluster(core.PolicyWait), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions != 0 || r.Kills != 0 || r.Checkpoints != 0 {
		t.Errorf("wait policy preempted: %+v", r)
	}
	if got := r.MeanResponse(cluster.BandFree); got != 60 {
		t.Errorf("low response = %v, want 60", got)
	}
	if got := r.MeanResponse(cluster.BandProduction); got != 90 {
		t.Errorf("high response = %v, want 90", got)
	}
	if r.TasksCompleted != 2 || r.JobsCompleted != 2 {
		t.Errorf("completion counts: %+v", r)
	}
}

func TestKillPolicyFramework(t *testing.T) {
	r, err := Run(tinyCluster(core.PolicyKill), smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Kills != 1 || r.Checkpoints != 0 {
		t.Errorf("kill counts: kills=%d checkpoints=%d", r.Kills, r.Checkpoints)
	}
	if got := r.MeanResponse(cluster.BandProduction); got != 60 {
		t.Errorf("high response = %v, want 60", got)
	}
	if got := r.MeanResponse(cluster.BandFree); got != 150 {
		t.Errorf("low response = %v, want 150 (restart from scratch)", got)
	}
}

func TestCheckpointPolicyFramework(t *testing.T) {
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9
	r, err := Run(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != 1 || r.Kills != 0 || r.Restores != 1 {
		t.Errorf("counts: %+v", r)
	}
	dump := 5 * 1.0737
	if got := r.MeanResponse(cluster.BandProduction); got < 60+dump-1.5 || got > 60+dump+1.5 {
		t.Errorf("high response = %v, want ~%v", got, 60+dump)
	}
	// The checkpointed job must beat the kill policy's 150 s.
	if got := r.MeanResponse(cluster.BandFree); got > 140 {
		t.Errorf("low response = %v, want well below kill's 150", got)
	}
	if r.PeakImageBytes != cluster.GiB(5) {
		t.Errorf("peak image bytes = %d, want 5 GiB logical", r.PeakImageBytes)
	}
	if r.DFSStoredBytes <= 0 {
		t.Error("no real bytes ever resident in the DFS")
	}
}

// The headline end-to-end property: whatever the policy and however often
// tasks are preempted, every task's final computed state is bit-identical
// to the undisturbed execution.
func TestTransparencyAcrossPolicies(t *testing.T) {
	jobs := mixedWorkload(t)
	cfg := DefaultConfig(core.PolicyWait, storage.SSD)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 3
	ref, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.TaskChecksums) != countTasks(jobs) {
		t.Fatalf("reference produced %d checksums for %d tasks", len(ref.TaskChecksums), countTasks(jobs))
	}
	for _, policy := range []core.Policy{core.PolicyKill, core.PolicyCheckpoint, core.PolicyAdaptive} {
		cfg := DefaultConfig(policy, storage.NVM)
		cfg.Nodes = 2
		cfg.ContainersPerNode = 3
		r, err := Run(cfg, jobs)
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if policy != core.PolicyKill && r.Checkpoints == 0 {
			t.Errorf("%v: workload produced no checkpoints; weak test", policy)
		}
		for id, want := range ref.TaskChecksums {
			if got, ok := r.TaskChecksums[id]; !ok || got != want {
				t.Errorf("%v: task %v checksum %x != reference %x", policy, id, got, want)
			}
		}
	}
}

func TestIncrementalCheckpointsInFramework(t *testing.T) {
	// One low job repeatedly preempted by two high arrivals.
	low := cluster.JobSpec{
		ID: 0, Priority: 0,
		Tasks: []cluster.TaskSpec{{
			ID:           cluster.TaskID{Job: 0},
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
			MemFootprint: cluster.GiB(1),
			Duration:     5 * time.Minute,
		}},
	}
	mkHigh := func(id cluster.JobID, submit time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: 10, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:       cluster.TaskID{Job: id},
				Priority: 10,
				Demand:   cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				Duration: 30 * time.Second,
				Submit:   submit,
			}},
		}
	}
	jobs := []cluster.JobSpec{low, mkHigh(1, time.Minute), mkHigh(2, 3*time.Minute)}
	r, err := Run(tinyCluster(core.PolicyCheckpoint), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != 2 || r.IncrementalCheckpoints != 1 {
		t.Errorf("checkpoints=%d incremental=%d, want 2/1", r.Checkpoints, r.IncrementalCheckpoints)
	}
	if r.Restores != 2 {
		t.Errorf("restores = %d, want 2", r.Restores)
	}
	// After everything completes, no image bytes may linger.
	if r.TasksCompleted != 3 {
		t.Errorf("completed %d tasks", r.TasksCompleted)
	}
}

func TestAdaptiveKillsYoungTasksInFramework(t *testing.T) {
	cfg := tinyCluster(core.PolicyAdaptive)
	cfg.CustomBandwidth = 50e6 // 5 GiB dump ~107 s >> 30 s progress
	r, err := Run(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Kills != 1 || r.Checkpoints != 0 {
		t.Errorf("slow storage: kills=%d checkpoints=%d", r.Kills, r.Checkpoints)
	}
	cfg.CustomBandwidth = 5e9
	r, err = Run(cfg, smallWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints != 1 || r.Kills != 0 {
		t.Errorf("fast storage: kills=%d checkpoints=%d", r.Kills, r.Checkpoints)
	}
}

func TestFrameworkDeterminism(t *testing.T) {
	jobs := mixedWorkload(t)
	cfg := DefaultConfig(core.PolicyAdaptive, storage.HDD)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 4
	a, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Preemptions != b.Preemptions ||
		a.WastedCPUHours != b.WastedCPUHours || a.EnergyKWh != b.EnergyKWh {
		t.Errorf("non-deterministic framework run")
	}
}

func TestKillWastesMoreThanCheckpointInFramework(t *testing.T) {
	jobs := mixedWorkload(t)
	run := func(policy core.Policy, kind storage.Kind) *Result {
		cfg := DefaultConfig(policy, kind)
		cfg.Nodes = 2
		cfg.ContainersPerNode = 3
		r, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	kill := run(core.PolicyKill, storage.SSD)
	if kill.Preemptions == 0 {
		t.Fatal("no contention in scenario")
	}
	chk := run(core.PolicyCheckpoint, storage.NVM)
	if kill.WastedCPUHours <= chk.WastedCPUHours {
		t.Errorf("kill waste %.3f <= checkpoint-NVM waste %.3f", kill.WastedCPUHours, chk.WastedCPUHours)
	}
}

func TestConfigValidationFramework(t *testing.T) {
	jobs := smallWorkload()
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(core.PolicyKill, storage.SSD); c.Nodes = 0; return c }(),
		func() Config { c := DefaultConfig(core.PolicyKill, storage.SSD); c.Replication = 0; return c }(),
		func() Config { c := DefaultConfig(core.PolicyKill, storage.SSD); c.KMeansK = 0; return c }(),
		func() Config { c := DefaultConfig(0, storage.SSD); return c }(),
		func() Config { c := DefaultConfig(core.PolicyKill, storage.SSD); c.CustomBandwidth = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, jobs); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// Invalid job must be rejected.
	badJob := smallWorkload()
	badJob[0].Tasks[0].Duration = 0
	if _, err := Run(tinyCluster(core.PolicyKill), badJob); err == nil {
		t.Error("invalid job accepted")
	}
}

func TestRemoteRestoreInFramework(t *testing.T) {
	// Low task checkpoints on node 0; node 0 then stays saturated with
	// high work while node 1 frees up -> the restore must go remote and
	// still produce the right result.
	mk := func(id cluster.JobID, prio cluster.Priority, submit, dur time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: prio, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: id},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     dur,
				Submit:       submit,
			}},
		}
	}
	jobs := []cluster.JobSpec{
		mk(0, 0, 0, 2*time.Minute),                // low on node 0
		mk(1, 0, 0, 3*time.Minute),                // low on node 1
		mk(2, 10, 30*time.Second, 10*time.Minute), // high, preempts job 0, occupies node 0 long
	}
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 1
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints == 0 || r.Restores == 0 {
		t.Fatalf("no checkpoint/restore: %+v", r)
	}
	if r.RemoteRestores == 0 {
		t.Error("restore did not go remote despite home node saturation")
	}
	if r.TasksCompleted != 3 {
		t.Errorf("completed %d of 3", r.TasksCompleted)
	}
}
