package yarn

import (
	"fmt"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/dfs"
	"preemptsched/internal/energy"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

// NodeManager owns one machine's container slots, its checkpoint storage
// device, and its co-located DFS client. Dumps and restores issued by
// ApplicationMasters are timed against the node's device, which serializes
// them — the paper's per-node sequential checkpoint queue.
type NodeManager struct {
	id        int
	slots     int
	usedSlots int
	// reservedSlots are held for waiting preemptors whose victims are
	// still draining dumps.
	reservedSlots int

	device *storage.Device
	dfsCli *dfs.Client
	// store is the view dumps and restores go through: the DFS client
	// itself, or the fault injector's wrapper of it when the run injects
	// store faults.
	store storage.Store

	running map[cluster.TaskID]*taskRun

	meter      *energy.Meter
	lastChange sim.Time

	// Liveness state, owned by the engine goroutine. crashed marks a
	// permanently dead machine (NM crash fault): its container processes
	// died with it. deadDeclared is the RM's view — a declared-dead node
	// takes no placements until a delivered heartbeat re-registers it.
	// lastBeat is the last heartbeat the RM received from this node.
	crashed      bool
	deadDeclared bool
	lastBeat     sim.Time
}

func newNodeManager(id int, cfg Config, dev *storage.Device, cli *dfs.Client, store storage.Store) *NodeManager {
	return &NodeManager{
		id:      id,
		slots:   cfg.ContainersPerNode,
		device:  dev,
		dfsCli:  cli,
		store:   store,
		running: make(map[cluster.TaskID]*taskRun),
		meter:   energy.NewMeter(cfg.EnergyModel),
	}
}

// ID returns the node index.
func (nm *NodeManager) ID() int { return nm.id }

// Device returns the node's checkpoint device.
func (nm *NodeManager) Device() *storage.Device { return nm.device }

func (nm *NodeManager) freeSlots() int { return nm.slots - nm.usedSlots }

// availableFor is the slot count a request may claim, accounting for
// reservations (its own reservation counts as available). A crashed or
// declared-dead node offers nothing.
func (nm *NodeManager) availableFor(req *request) int {
	if nm.crashed || nm.deadDeclared {
		return 0
	}
	avail := nm.freeSlots() - nm.reservedSlots
	if req != nil && req.reservedOn == nm {
		avail++
	}
	if avail > nm.freeSlots() {
		avail = nm.freeSlots()
	}
	if avail < 0 {
		avail = 0
	}
	return avail
}

func (nm *NodeManager) settleEnergy(now sim.Time) {
	if now > nm.lastChange {
		util := float64(nm.usedSlots) / float64(nm.slots)
		nm.meter.Accumulate(util, time.Duration(now-nm.lastChange))
		nm.lastChange = now
	}
}

func (nm *NodeManager) allocSlot(now sim.Time, t *taskRun) {
	nm.settleEnergy(now)
	nm.usedSlots++
	if nm.usedSlots > nm.slots {
		panic(fmt.Sprintf("yarn: node %d over-allocated (%d/%d)", nm.id, nm.usedSlots, nm.slots))
	}
	nm.running[t.spec.ID] = t
}

func (nm *NodeManager) releaseSlot(now sim.Time, t *taskRun) {
	nm.settleEnergy(now)
	nm.usedSlots--
	if nm.usedSlots < 0 {
		panic(fmt.Sprintf("yarn: node %d released into negative", nm.id))
	}
	delete(nm.running, t.spec.ID)
}
