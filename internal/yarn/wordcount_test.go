package yarn

import (
	"testing"

	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

// TestWordCountWorkloadTransparency runs the MapReduce-style word-count
// application through the framework under preemption and verifies, via
// the per-task memory checksums, that every job computed exactly what the
// undisturbed run computed — the paper's future-work scenario.
func TestWordCountWorkloadTransparency(t *testing.T) {
	jobs := mixedWorkload(t)
	mk := func(policy core.Policy) Config {
		cfg := DefaultConfig(policy, storage.SSD)
		cfg.Nodes = 2
		cfg.ContainersPerNode = 3
		cfg.Program = "wordcount"
		cfg.WordCountInput = 4096
		cfg.WordCountChunk = 256
		return cfg
	}
	ref, err := Run(mk(core.PolicyWait), jobs)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(mk(core.PolicyAdaptive), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Preemptions == 0 {
		t.Fatal("no preemptions; weak test")
	}
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v diverged: %x != %x", id, got, want)
		}
	}
	if r.TasksCompleted != countTasks(jobs) {
		t.Errorf("completed %d of %d", r.TasksCompleted, countTasks(jobs))
	}
}

// TestWordCountWithPreCopy combines both extensions: the MapReduce
// program under pre-copy checkpointing.
func TestWordCountWithPreCopy(t *testing.T) {
	jobs := smallWorkload()
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9
	cfg.Program = "wordcount"
	cfg.PreCopy = true
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.PreCopies != 1 || r.TasksCompleted != 2 {
		t.Errorf("precopies=%d completed=%d", r.PreCopies, r.TasksCompleted)
	}
}

func TestWordCountConfigValidation(t *testing.T) {
	cfg := DefaultConfig(core.PolicyKill, storage.SSD)
	cfg.Program = "wordcount"
	cfg.WordCountInput = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero input accepted")
	}
	cfg = DefaultConfig(core.PolicyKill, storage.SSD)
	cfg.Program = "fortran"
	if err := cfg.Validate(); err == nil {
		t.Error("unknown program accepted")
	}
}
