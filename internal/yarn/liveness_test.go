package yarn

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/faults"
	"preemptsched/internal/storage"
)

// crashScenario is the acceptance workload. Placement runs in priority
// order, so job 1 (priority 1) takes node 0 and job 0 (priority 0) lands
// on node 1, where a high arrival checkpoint-preempts it at t=180s; it
// resumes with banked progress, and then node 1 crashes under it. Job 1
// pins node 0 until t=360s, so the displaced task must wait for it,
// making the recovery path observable.
func crashScenario() []cluster.JobSpec {
	mk := func(id cluster.JobID, prio cluster.Priority, submit, dur time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: prio, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: id},
				Priority:     prio,
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     dur,
				Submit:       submit,
			}},
		}
	}
	return []cluster.JobSpec{
		mk(0, 0, 0, 4*time.Minute),              // the victim: node 1
		mk(1, 1, 0, 6*time.Minute),              // pins node 0
		mk(2, 10, 3*time.Minute, 1*time.Minute), // preempts job 0 at t=180s
	}
}

func crashConfig(policy core.Policy) Config {
	cfg := DefaultConfig(policy, storage.NVM)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 1
	cfg.Faults = &faults.Plan{
		Seed:        7,
		NMCrashAt:   270 * time.Second,
		NMCrashNode: 1,
	}
	return cfg
}

// TestNMCrashRecoversFromCheckpoint is the acceptance scenario: a seeded
// NM crash takes out a task that had banked progress in a checkpoint
// image, and the recovery restores from that image instead of restarting
// — strictly less work lost to the failure than the kill-restart control
// run over the same workload and the same crash.
func TestNMCrashRecoversFromCheckpoint(t *testing.T) {
	chk, err := Run(crashConfig(core.PolicyCheckpoint), crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	kill, err := Run(crashConfig(core.PolicyKill), crashScenario())
	if err != nil {
		t.Fatal(err)
	}

	if chk.NodeFailures != 1 {
		t.Fatalf("checkpoint run declared %d node failures, want 1", chk.NodeFailures)
	}
	if chk.TasksRescheduled == 0 {
		t.Fatal("crash rescheduled no tasks")
	}
	if chk.FailureRestores == 0 {
		t.Error("no task recovered from a checkpoint image after the crash")
	}
	if chk.FailureRestarts != 0 {
		t.Errorf("%d failure restarts in the checkpoint run, want image recovery", chk.FailureRestarts)
	}
	if kill.FailureRestores != 0 || kill.FailureRestarts == 0 {
		t.Errorf("kill control: restores=%d restarts=%d, want restart-only recovery",
			kill.FailureRestores, kill.FailureRestarts)
	}
	if chk.FailureWasteHours <= 0 {
		t.Error("failure cost no work in the checkpoint run")
	}
	if chk.FailureWasteHours >= kill.FailureWasteHours {
		t.Errorf("work lost to failure: checkpoint %.6f >= kill control %.6f core-hours",
			chk.FailureWasteHours, kill.FailureWasteHours)
	}
	if chk.WastedCPUHours >= kill.WastedCPUHours {
		t.Errorf("total waste: checkpoint %.6f >= kill control %.6f core-hours",
			chk.WastedCPUHours, kill.WastedCPUHours)
	}
	if chk.FailureWasteHours > chk.WastedCPUHours {
		t.Errorf("failure waste %.6f exceeds total waste %.6f",
			chk.FailureWasteHours, chk.WastedCPUHours)
	}

	// Transparency survives the node failure: every task's final state is
	// bit-identical to an undisturbed run.
	refCfg := DefaultConfig(core.PolicyWait, storage.NVM)
	refCfg.Nodes = 2
	refCfg.ContainersPerNode = 1
	ref, err := Run(refCfg, crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range ref.TaskChecksums {
		if got, ok := chk.TaskChecksums[id]; !ok || got != want {
			t.Errorf("task %v checksum %x != reference %x after crash recovery", id, got, want)
		}
	}
}

// TestNMCrashDeterminism re-runs the crash scenario and demands identical
// books — liveness events ride the same virtual clock as everything else.
func TestNMCrashDeterminism(t *testing.T) {
	a, err := Run(crashConfig(core.PolicyCheckpoint), crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(crashConfig(core.PolicyCheckpoint), crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.NodeFailures != b.NodeFailures ||
		a.TasksRescheduled != b.TasksRescheduled ||
		a.FailureWasteHours != b.FailureWasteHours ||
		a.WastedCPUHours != b.WastedCPUHours {
		t.Errorf("non-deterministic crash run: %+v vs %+v", a, b)
	}
}

// TestNMPartitionHealAndRecovery partitions a node from the RM long
// enough to be declared dead, fencing its containers, then lets the
// partition heal: the node's next delivered heartbeat re-registers it and
// the displaced work reschedules onto it.
func TestNMPartitionHealAndRecovery(t *testing.T) {
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.SSD)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 2
	cfg.Faults = &faults.Plan{
		Seed:            3,
		NMPartitionAt:   60 * time.Second,
		NMPartitionNode: 0,
		NMPartitionFor:  2 * time.Minute,
	}
	var jobs []cluster.JobSpec
	for i := 0; i < 4; i++ {
		jobs = append(jobs, cluster.JobSpec{
			ID: cluster.JobID(i),
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: cluster.JobID(i)},
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     5 * time.Minute,
			}},
		})
	}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeFailures != 1 {
		t.Errorf("node failures = %d, want 1 (partition declared dead)", r.NodeFailures)
	}
	if r.NodeRecoveries != 1 {
		t.Errorf("node recoveries = %d, want 1 (partition healed)", r.NodeRecoveries)
	}
	if r.TasksRescheduled != 2 {
		t.Errorf("tasks rescheduled = %d, want the 2 fenced off node 0", r.TasksRescheduled)
	}
	if r.FailureWasteHours <= 0 {
		t.Error("partition fencing charged no failure waste")
	}
	if r.TasksCompleted != 4 {
		t.Errorf("completed %d of 4 tasks", r.TasksCompleted)
	}
	if got := r.FaultsInjected[faults.ModeNMPartitionDrops]; got == 0 {
		t.Error("injector counted no partition-dropped heartbeats")
	}
}

// TestHeartbeatDropsDoNotLoseWork drives a lossy RM↔NM control plane:
// random heartbeat drops may cause spurious dead declarations, but every
// declaration is followed by recovery or rescheduling and all work
// completes with settled books.
func TestHeartbeatDropsDoNotLoseWork(t *testing.T) {
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.SSD)
	cfg.Nodes = 2
	cfg.ContainersPerNode = 2
	cfg.NMLivenessTimeout = 25 * time.Second
	cfg.Faults = &faults.Plan{Seed: 11, HeartbeatDropRate: 0.5}
	var jobs []cluster.JobSpec
	for i := 0; i < 4; i++ {
		jobs = append(jobs, cluster.JobSpec{
			ID: cluster.JobID(i),
			Tasks: []cluster.TaskSpec{{
				ID:           cluster.TaskID{Job: cluster.JobID(i)},
				Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				MemFootprint: cluster.GiB(1),
				Duration:     4 * time.Minute,
			}},
		})
	}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.TasksCompleted != 4 {
		t.Errorf("completed %d of 4 tasks under heartbeat loss", r.TasksCompleted)
	}
	if got := r.FaultsInjected[faults.ModeHeartbeatDrops]; got == 0 {
		t.Error("injector counted no dropped heartbeats at 50% drop rate")
	}
	if r.NodeFailures > 0 && r.NodeRecoveries == 0 && r.TasksRescheduled == 0 {
		t.Errorf("dead declarations (%d) without recoveries or rescheduling", r.NodeFailures)
	}
}

// TestServiceSurvivesNodeLoss runs the daemon-facing path: a live Service
// (real TCP DFS) loses a compute node mid-job and must still drain with
// settled books — every admitted job completes exactly once.
func TestServiceSurvivesNodeLoss(t *testing.T) {
	cfg := serviceConfig(core.PolicyCheckpoint)
	cfg.Faults = &faults.Plan{
		Seed:        5,
		NMCrashAt:   30 * time.Second,
		NMCrashNode: 1,
	}
	s, err := NewService(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const jobs = 4
	done := make(map[cluster.JobID]int)
	for i := 0; i < jobs; i++ {
		id := cluster.JobID(i)
		if err := s.Submit(serviceJob(id, cluster.Priority(i)%11, 2, 2*time.Minute), func(d JobDone) {
			done[d.ID]++
		}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	res, err := s.Close()
	if err != nil {
		t.Fatalf("close: %v", err)
	}
	if len(done) != jobs {
		t.Fatalf("completions for %d jobs, want %d", len(done), jobs)
	}
	for id, n := range done {
		if n != 1 {
			t.Errorf("job %d completed %d times", id, n)
		}
	}
	if res.NodeFailures != 1 {
		t.Errorf("node failures = %d, want 1", res.NodeFailures)
	}
	if res.JobsCompleted != jobs {
		t.Errorf("jobs completed = %d, want %d", res.JobsCompleted, jobs)
	}
}

// TestLivenessConfigValidation exercises the new Config/Plan checks.
func TestLivenessConfigValidation(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig(core.PolicyKill, storage.SSD)
		cfg.Nodes = 2
		return cfg
	}
	bad := []Config{
		func() Config { c := base(); c.NMLivenessTimeout = 5 * time.Second; return c }(), // shorter than heartbeat
		func() Config {
			c := base()
			c.Faults = &faults.Plan{NMCrashAt: time.Minute, NMCrashNode: 2}
			return c
		}(),
		func() Config {
			c := base()
			c.Faults = &faults.Plan{NMPartitionAt: time.Minute, NMPartitionNode: 9}
			return c
		}(),
		func() Config { c := base(); c.Faults = &faults.Plan{HeartbeatDropRate: 1.5}; return c }(),
		func() Config { c := base(); c.Faults = &faults.Plan{NMCrashAt: -time.Second}; return c }(),
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	good := base()
	good.Faults = &faults.Plan{NMCrashAt: time.Minute, NMCrashNode: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid NM-fault config rejected: %v", err)
	}
}
