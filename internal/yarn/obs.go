package yarn

import (
	"fmt"
	"math"
	"strconv"
	"time"

	"preemptsched/internal/core"
	"preemptsched/internal/obs"
	"preemptsched/internal/sim"
)

// nodeName is the span process-track label for a NodeManager.
func nodeName(id int) string { return "node-" + strconv.Itoa(id) }

// yarnHandles carries pre-resolved registry handles for the metrics hit
// on every dump, restore, verdict, or container grant, replacing a
// name-keyed lookup under the registry lock with one atomic slot each.
type yarnHandles struct {
	dumpQueue, dumpWrite, dumpTotal         obs.Histogram
	predumpTotal                            obs.Histogram
	containerWait                           obs.Histogram
	restoreQueue, restoreRead, restoreTotal obs.Histogram
	restoreTransfer, estimateRelerr         obs.Histogram
	restoreLocal, restoreRemote             obs.Counter
	decision                                [int(core.ActionCheckpointIncremental) + 1]obs.Counter
}

// resolveHandles fills hm from the cluster registry; reg is never nil by
// the time this runs (Cluster construction guarantees it).
func (c *Cluster) resolveHandles() {
	c.hm = yarnHandles{
		dumpQueue:       c.reg.Histogram("yarn.dump.queue.seconds"),
		dumpWrite:       c.reg.Histogram("yarn.dump.write.seconds"),
		dumpTotal:       c.reg.Histogram("yarn.dump.total.seconds"),
		predumpTotal:    c.reg.Histogram("yarn.predump.total.seconds"),
		containerWait:   c.reg.Histogram("yarn.container.wait.seconds"),
		restoreQueue:    c.reg.Histogram("yarn.restore.queue.seconds"),
		restoreRead:     c.reg.Histogram("yarn.restore.read.seconds"),
		restoreTotal:    c.reg.Histogram("yarn.restore.total.seconds"),
		restoreTransfer: c.reg.Histogram("yarn.restore.transfer.seconds"),
		estimateRelerr:  c.reg.Histogram("yarn.overhead.estimate.relerr"),
		restoreLocal:    c.reg.Counter("yarn.policy.restore.local"),
		restoreRemote:   c.reg.Counter("yarn.policy.restore.remote"),
	}
	for a := core.ActionKill; a <= core.ActionCheckpointIncremental; a++ {
		//lint:ignore metricname the suffix is a closed PreemptAction enum, one counter per verdict
		c.hm.decision[a] = c.reg.Counter("yarn.policy.decision." + a.String())
	}
}

// recordDecision books one Preemption Manager verdict: a policy-decision
// counter keyed by the chosen action, an instant span on the victim's
// track carrying the unsaved progress and the Algorithm 1 estimate, the
// live SLO hit-rate tally, and a provenance record in the flight
// recorder keyed to that span.
func (c *Cluster) recordDecision(t *taskRun, n *NodeManager, action core.PreemptAction, now sim.Time) {
	c.hm.decision[action].Inc()
	c.slo.CountDecision(action.IsCheckpoint())
	var span obs.SpanID
	if c.tracer != nil {
		span = c.tracer.Instant("sched", "policy-decision", nodeName(n.id), t.spec.ID.String(), 0, time.Duration(now),
			obs.String("action", action.String()),
			obs.DurationMS("unsaved_ms", t.unsavedProgress(now)),
			obs.DurationMS("est_overhead_ms", t.estOverhead))
	}
	if c.rec != nil {
		est := t.estOverhead
		if est == 0 {
			// Kill decisions record no estimate on the task; recompute the
			// Algorithm 1 overhead the comparison was made against so the
			// journal can answer "why kill instead of checkpoint".
			est = core.CheckpointOverhead(t.candidate(now), n.device, now)
		}
		c.rec.Append(obs.Record{
			Kind: obs.RecDecision, At: time.Duration(now), Source: "yarn",
			Name: action.String(), Task: t.spec.ID.String(), Node: nodeName(n.id),
			Priority: int(t.spec.Priority), Unsaved: t.unsavedProgress(now),
			Est: est, Span: uint64(span),
		})
	}
}

// recordSelection journals one victim-selection pass: the full scored
// candidate set the RM ranked while finding room for claimant, with the
// chosen victim marked. Only called when the flight recorder is on.
func (c *Cluster) recordSelection(claimant *taskRun, n *NodeManager, cands []obs.CandidateScore, now sim.Time) {
	if c.rec == nil {
		return
	}
	c.rec.Append(obs.Record{
		Kind: obs.RecSelection, At: time.Duration(now), Source: "yarn",
		Name: "victim-selection", Claimant: claimant.spec.ID.String(),
		Node: nodeName(n.id), Priority: int(claimant.spec.Priority),
		Candidates: cands,
	})
}

// recordKillFallback journals a checkpoint decision that degraded to a
// kill (failed dump), carrying the progress lost.
func (c *Cluster) recordKillFallback(t *taskRun, n *NodeManager, lost time.Duration, now sim.Time) {
	c.slo.CountFallbackKill()
	if c.rec == nil {
		return
	}
	c.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
		Name: "kill-fallback", Task: t.spec.ID.String(), Node: nodeName(n.id),
		Priority: int(t.spec.Priority), Unsaved: lost, Flags: obs.FlagFallback,
	})
}

// recordDump books one checkpoint dump window [now, done] with the device
// queue portion [now, start]: queue/write/total histograms, the per-node
// queue-backlog high-water mark, and a dump span with dump-queue and
// dump-write children.
func (c *Cluster) recordDump(t *taskRun, n *NodeManager, image string, bytes int64, incremental bool, now, start, done sim.Time) {
	c.hm.dumpQueue.ObserveDuration(time.Duration(start - now))
	c.hm.dumpWrite.ObserveDuration(time.Duration(done - start))
	c.hm.dumpTotal.ObserveDuration(time.Duration(done - now))
	//lint:ignore metricname per-node gauge: the node id is part of the series identity
	c.reg.MaxGauge(fmt.Sprintf("yarn.node.%d.ckpt.queue.peak.seconds", n.id), time.Duration(start-now).Seconds())
	var span obs.SpanID
	if c.tracer != nil {
		pid, tid := nodeName(n.id), t.spec.ID.String()
		span = c.tracer.Complete("checkpoint", "dump", pid, tid, 0, time.Duration(now), time.Duration(done),
			obs.Int64("bytes", bytes), obs.Bool("incremental", incremental), obs.String("image", image))
		c.tracer.Complete("checkpoint", "dump-queue", pid, tid, span, time.Duration(now), time.Duration(start))
		c.tracer.Complete("checkpoint", "dump-write", pid, tid, span, time.Duration(start), time.Duration(done))
		t.lastCkptSpan = span
	}
	if c.rec != nil {
		flags := uint32(0)
		if incremental {
			flags |= obs.FlagIncremental
		}
		c.rec.Append(obs.Record{
			Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
			Name: "dump", Task: t.spec.ID.String(), Node: nodeName(n.id),
			Priority: int(t.spec.Priority), Est: t.estOverhead,
			Actual: time.Duration(done - now), Bytes: bytes,
			Span: uint64(span), Flags: flags,
		})
	}
}

// recordPreDump books the pre-copy write window, during which the victim
// keeps executing.
func (c *Cluster) recordPreDump(t *taskRun, n *NodeManager, image string, bytes int64, now, start, done sim.Time) {
	c.hm.predumpTotal.ObserveDuration(time.Duration(done - now))
	var span obs.SpanID
	if c.tracer != nil {
		pid, tid := nodeName(n.id), t.spec.ID.String()
		span = c.tracer.Complete("checkpoint", "pre-dump", pid, tid, 0, time.Duration(now), time.Duration(done),
			obs.Int64("bytes", bytes), obs.String("image", image))
		c.tracer.Complete("checkpoint", "dump-queue", pid, tid, span, time.Duration(now), time.Duration(start))
		c.tracer.Complete("checkpoint", "dump-write", pid, tid, span, time.Duration(start), time.Duration(done))
		t.lastCkptSpan = span
	}
	if c.rec != nil {
		c.rec.Append(obs.Record{
			Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
			Name: "pre-dump", Task: t.spec.ID.String(), Node: nodeName(n.id),
			Priority: int(t.spec.Priority), Est: t.estOverhead,
			Actual: time.Duration(done - now), Bytes: bytes,
			Span: uint64(span), Flags: obs.FlagPreCopy,
		})
	}
}

// recordTaskDone journals a task completing its final step, closing its
// timeline in the flight recorder.
func (c *Cluster) recordTaskDone(t *taskRun, n *NodeManager, now sim.Time) {
	if c.rec == nil {
		return
	}
	c.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
		Name: "task-done", Task: t.spec.ID.String(), Node: nodeName(n.id),
		Priority: int(t.spec.Priority),
	})
}

// recordContainerWait books the time a granted request spent queued at the
// RM. For checkpointed tasks this is the queue-wait link between dump and
// restore in the span chain, so it is traced even when zero.
func (c *Cluster) recordContainerWait(req *request, n *NodeManager, now sim.Time) {
	wait := time.Duration(now - req.queuedAt)
	c.hm.containerWait.ObserveDuration(wait)
	if c.tracer == nil || (wait <= 0 && !req.task.hasImage) {
		return
	}
	c.tracer.Complete("sched", "queue-wait", nodeName(n.id), req.task.spec.ID.String(),
		req.task.lastCkptSpan, time.Duration(req.queuedAt), time.Duration(now))
}

// recordRestore books one restore window [now, done]: transfer (remote
// only), device queue, read, and total histograms; the local/remote
// Algorithm 2 decision counters; the Algorithm 1 estimated-vs-actual
// relative error once the full checkpoint→restore round trip is known; and
// a restore span with transfer/queue/read children, parented to the dump
// span that produced the image.
func (c *Cluster) recordRestore(t *taskRun, n *NodeManager, remote bool, transfer time.Duration, now, start, done sim.Time) {
	arrive := now + sim.Time(transfer)
	c.hm.restoreQueue.ObserveDuration(time.Duration(start - arrive))
	c.hm.restoreRead.ObserveDuration(time.Duration(done - start))
	c.hm.restoreTotal.ObserveDuration(time.Duration(done - now))
	if remote {
		c.hm.restoreTransfer.ObserveDuration(transfer)
		c.hm.restoreRemote.Inc()
	} else {
		c.hm.restoreLocal.Inc()
	}
	// The full checkpoint round trip is dump + restore; est was captured
	// at decision time and is compared (then cleared) here.
	est := t.estOverhead
	actual := t.dumpCost + time.Duration(done-now)
	if est > 0 {
		if actual > 0 {
			relerr := math.Abs(est.Seconds()-actual.Seconds()) / actual.Seconds()
			c.hm.estimateRelerr.Observe(relerr)
		}
		t.estOverhead = 0
	}
	var span obs.SpanID
	if c.tracer != nil {
		pid, tid := nodeName(n.id), t.spec.ID.String()
		span = c.tracer.Complete("restore", "restore", pid, tid, t.lastCkptSpan,
			time.Duration(now), time.Duration(done), obs.Bool("remote", remote))
		if remote {
			c.tracer.Complete("restore", "restore-transfer", pid, tid, span, time.Duration(now), time.Duration(arrive))
		}
		c.tracer.Complete("restore", "restore-queue", pid, tid, span, time.Duration(arrive), time.Duration(start))
		c.tracer.Complete("restore", "restore-read", pid, tid, span, time.Duration(start), time.Duration(done))
	}
	if c.rec != nil {
		flags := uint32(0)
		if remote {
			flags |= obs.FlagRemote
		}
		if t.failedOver {
			flags |= obs.FlagFailure
		}
		c.rec.Append(obs.Record{
			Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
			Name: "restore", Task: t.spec.ID.String(), Node: nodeName(n.id),
			Priority: int(t.spec.Priority), Est: est, Actual: actual,
			Bytes: t.spec.MemFootprint, Span: uint64(span), Flags: flags,
		})
	}
}

// recordNodeDown journals the liveness sweep declaring a node dead. The
// record is node-centric: it has no Task, and Unsaved carries how long
// the node had been silent.
func (c *Cluster) recordNodeDown(n *NodeManager, now sim.Time) {
	if c.tracer != nil {
		c.tracer.Instant("liveness", "node-down", nodeName(n.id), "", 0, time.Duration(now),
			obs.Bool("crashed", n.crashed))
	}
	if c.rec == nil {
		return
	}
	c.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
		Name: "node-down", Node: nodeName(n.id),
		Unsaved: time.Duration(now - n.lastBeat), Flags: obs.FlagFailure,
	})
}

// recordNodeRecovered journals a declared-dead node whose heartbeat came
// back (healed partition).
func (c *Cluster) recordNodeRecovered(n *NodeManager, now sim.Time) {
	if c.tracer != nil {
		c.tracer.Instant("liveness", "node-recovered", nodeName(n.id), "", 0, time.Duration(now))
	}
	if c.rec == nil {
		return
	}
	c.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
		Name: "node-recovered", Node: nodeName(n.id),
	})
}

// recordTaskRescheduled journals one task fenced off a dead node and
// requeued; Unsaved carries the progress the failure cost it.
func (c *Cluster) recordTaskRescheduled(t *taskRun, n *NodeManager, lost time.Duration, now sim.Time) {
	if c.rec == nil {
		return
	}
	c.rec.Append(obs.Record{
		Kind: obs.RecEvent, At: time.Duration(now), Source: "yarn",
		Name: "task-rescheduled", Task: t.spec.ID.String(), Node: nodeName(n.id),
		Priority: int(t.spec.Priority), Unsaved: lost, Flags: obs.FlagFailure,
	})
}

// finishMetrics mirrors the run's Result counters into the registry in one
// batch, sets the end-of-run gauges, and snapshots everything into
// Result.Metrics. Called whether or not the run completed, so aborted runs
// still carry their telemetry.
func (c *Cluster) finishMetrics() {
	// The quarantine/re-replication pipeline counts at the NameNode and
	// the scrubber counts at the DataNodes; mirror those registry counters
	// into the Result so callers get the integrity story without scraping.
	pre := c.reg.Snapshot()
	c.res.ReplicasQuarantined = pre.Counter("dfs.namenode.replicas.quarantined")
	c.res.CorruptReReplicated = pre.Counter("dfs.namenode.corrupt.rereplicated")
	c.res.CorruptDegraded = pre.Counter("dfs.namenode.corrupt.degraded")
	c.res.CorruptLost = pre.Counter("dfs.namenode.corrupt.lost")
	deltas := map[string]int64{
		"yarn.preemptions":             int64(c.res.Preemptions),
		"yarn.kills":                   int64(c.res.Kills),
		"yarn.checkpoints":             int64(c.res.Checkpoints),
		"yarn.checkpoints.incremental": int64(c.res.IncrementalCheckpoints),
		"yarn.precopies":               int64(c.res.PreCopies),
		"yarn.compactions":             int64(c.res.Compactions),
		"yarn.restores":                int64(c.res.Restores),
		"yarn.restores.remote":         int64(c.res.RemoteRestores),
		"yarn.restore.failures":        int64(c.res.RestoreFailures),
		"yarn.restore.fallbacks":       int64(c.res.RestoreFallbacks),
		"yarn.restore.restarts":        int64(c.res.RestoreRestarts),
		"yarn.restore.verify.failures": int64(c.res.RestoreVerifyFailures),
		"yarn.dump.failures":           int64(c.res.DumpFailures),
		"yarn.fallback.kills":          int64(c.res.FallbackKills),
		"yarn.tasks.completed":         int64(c.res.TasksCompleted),
		"yarn.jobs.completed":          int64(c.res.JobsCompleted),
		"yarn.node.failures":           int64(c.res.NodeFailures),
		"yarn.node.recoveries":         int64(c.res.NodeRecoveries),
		"yarn.tasks.rescheduled":       int64(c.res.TasksRescheduled),
		"yarn.failure.restores":        int64(c.res.FailureRestores),
		"yarn.failure.restarts":        int64(c.res.FailureRestarts),
		"yarn.blocks.rereplicated":     int64(c.res.BlocksReReplicated),
		"yarn.blocks.lost":             int64(c.res.BlocksLost),
	}
	for mode, v := range c.res.FaultsInjected {
		deltas["faults.injected."+mode] = v
	}
	c.reg.AddN(deltas)
	c.reg.SetGauge("yarn.makespan.seconds", c.res.Makespan.Seconds())
	c.reg.SetGauge("yarn.scrub.final.corrupt", float64(c.res.FinalScrubCorrupt))
	c.reg.SetGauge("yarn.peak.image.bytes", float64(c.res.PeakImageBytes))
	c.reg.SetGauge("yarn.dfs.stored.bytes", float64(c.res.DFSStoredBytes))
	c.reg.SetGauge("yarn.energy.kwh", c.res.EnergyKWh)
	c.slo.PublishGauges(c.reg)
	c.res.SLO = c.slo.Snapshot()
	c.res.Metrics = c.reg.Snapshot()
}
