package yarn

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/core"
	"preemptsched/internal/storage"
)

// TestRestoreFailureFallsBackToRestart injects a corrupted checkpoint
// image and verifies that the CRC check catches it, the AM restarts the
// task from scratch, and the final result is still correct.
func TestRestoreFailureFallsBackToRestart(t *testing.T) {
	jobs := smallWorkload() // low job preempted once by a high job
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9

	ref, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Checkpoints != 1 || ref.RestoreFailures != 0 {
		t.Fatalf("baseline: %d checkpoints, %d failures", ref.Checkpoints, ref.RestoreFailures)
	}

	cfg.CorruptNthDump = 1
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.RestoreFailures != 1 {
		t.Fatalf("restore failures = %d, want 1", r.RestoreFailures)
	}
	// A single-image chain has no older link to fall back to: the ladder
	// bottoms out at a restart from scratch.
	if r.RestoreFallbacks != 0 || r.RestoreRestarts != 1 {
		t.Fatalf("fallbacks = %d, restarts = %d, want 0/1", r.RestoreFallbacks, r.RestoreRestarts)
	}
	if r.TasksCompleted != 2 {
		t.Errorf("completed %d tasks despite corruption recovery", r.TasksCompleted)
	}
	// Results must still match the clean run: the restarted task redoes
	// the work but computes the same answer.
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v checksum %x != clean run %x", id, got, want)
		}
	}
	// The fallback costs a full restart, so the corrupted run is slower
	// for the victim job but not deadlocked.
	if r.MeanResponse(cluster.BandFree) < ref.MeanResponse(cluster.BandFree) {
		t.Errorf("corrupted run should not be faster: %v < %v",
			r.MeanResponse(cluster.BandFree), ref.MeanResponse(cluster.BandFree))
	}
}

// TestCorruptionOfIncrementalChain corrupts the *second* (incremental)
// dump: the chain walk from the tip fails, the AM falls back to the
// intact base image instead of restarting from scratch, and the run
// completes with the lost delta re-executed.
func TestCorruptionOfIncrementalChain(t *testing.T) {
	low := cluster.JobSpec{
		ID: 0, Priority: 0,
		Tasks: []cluster.TaskSpec{{
			ID:           cluster.TaskID{Job: 0},
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
			MemFootprint: cluster.GiB(1),
			Duration:     5 * time.Minute,
		}},
	}
	mkHigh := func(id cluster.JobID, submit time.Duration) cluster.JobSpec {
		return cluster.JobSpec{
			ID: id, Priority: 10, Submit: submit,
			Tasks: []cluster.TaskSpec{{
				ID:       cluster.TaskID{Job: id},
				Priority: 10,
				Demand:   cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				Duration: 30 * time.Second,
				Submit:   submit,
			}},
		}
	}
	jobs := []cluster.JobSpec{low, mkHigh(1, time.Minute), mkHigh(2, 3*time.Minute)}
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.StorageKind = storage.NVM
	cfg.CorruptNthDump = 2 // the incremental dump
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.RestoreFailures == 0 {
		t.Fatal("incremental corruption not detected")
	}
	// The base (full) image is intact, so the ladder stops at the parent:
	// a fallback, not a restart.
	if r.RestoreFallbacks == 0 {
		t.Errorf("corrupt tip did not fall back to its parent image (failures=%d restarts=%d)",
			r.RestoreFailures, r.RestoreRestarts)
	}
	if r.RestoreRestarts != 0 {
		t.Errorf("restarted from scratch %d times despite an intact base image", r.RestoreRestarts)
	}
	if r.TasksCompleted != 3 {
		t.Errorf("completed %d of 3", r.TasksCompleted)
	}
}

// TestChainCompaction forces a long incremental chain and verifies it is
// merged once it exceeds the configured length, with results intact.
func TestChainCompaction(t *testing.T) {
	low := cluster.JobSpec{
		ID: 0, Priority: 0,
		Tasks: []cluster.TaskSpec{{
			ID:           cluster.TaskID{Job: 0},
			Demand:       cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
			MemFootprint: cluster.GiB(1),
			Duration:     10 * time.Minute,
		}},
	}
	var jobs []cluster.JobSpec
	jobs = append(jobs, low)
	// Five bursts, five checkpoints, chain of five images.
	for i := 1; i <= 5; i++ {
		jobs = append(jobs, cluster.JobSpec{
			ID: cluster.JobID(i), Priority: 10, Submit: time.Duration(i) * 90 * time.Second,
			Tasks: []cluster.TaskSpec{{
				ID:       cluster.TaskID{Job: cluster.JobID(i)},
				Priority: 10,
				Demand:   cluster.Resources{CPUMillis: cluster.Cores(1), MemBytes: cluster.GiB(2)},
				Duration: 30 * time.Second,
				Submit:   time.Duration(i) * 90 * time.Second,
			}},
		})
	}
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.StorageKind = storage.NVM
	base, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if base.Compactions != 0 {
		t.Fatalf("compactions without the option: %d", base.Compactions)
	}
	cfg.CompactChainAfter = 2
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Compactions == 0 {
		t.Fatal("no compactions despite 5-link chain and threshold 2")
	}
	if r.TasksCompleted != 6 {
		t.Errorf("completed %d of 6", r.TasksCompleted)
	}
	for id, want := range base.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v diverged under compaction: %x != %x", id, got, want)
		}
	}
}
