package yarn

import (
	"testing"

	"preemptsched/internal/core"
	"preemptsched/internal/faults"
	"preemptsched/internal/storage"
)

// chaosConfig is a 3-node, 6-slot checkpoint-policy cluster with fast
// devices, sized so mixedWorkload guarantees preemptions.
func chaosConfig() Config {
	cfg := DefaultConfig(core.PolicyCheckpoint, storage.NVM)
	cfg.Nodes = 3
	cfg.ContainersPerNode = 2
	cfg.Replication = 2
	return cfg
}

// TestChaosCrashAndRPCDrops is the headline robustness scenario: one
// DataNode crashes permanently partway through checkpoint block writes
// while another drops 10% of its RPCs — and the full
// preempt→checkpoint→restore cycle still completes every task with
// exactly the results of an undisturbed run.
func TestChaosCrashAndRPCDrops(t *testing.T) {
	jobs := mixedWorkload(t)

	ref, err := Run(chaosConfig(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Checkpoints == 0 || ref.Restores == 0 {
		t.Fatalf("reference run exercised no checkpoint cycle: %d dumps, %d restores",
			ref.Checkpoints, ref.Restores)
	}

	cfg := chaosConfig()
	cfg.Faults = &faults.Plan{
		Seed:             1,
		RPCErrorRate:     0.10,
		RPCErrorNodes:    []string{"dn-2"},
		CrashNode:        "dn-1",
		CrashAfterWrites: 1,
	}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("chaos run did not complete: %v", err)
	}

	if r.Checkpoints == 0 || r.Restores == 0 {
		t.Errorf("chaos run lost the checkpoint cycle: %d dumps, %d restores", r.Checkpoints, r.Restores)
	}
	if r.TasksCompleted != countTasks(jobs) {
		t.Errorf("completed %d of %d tasks", r.TasksCompleted, countTasks(jobs))
	}
	// Transparency must survive sabotage: every task's final state equals
	// the clean run's.
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v checksum %x != clean run %x", id, got, want)
		}
	}

	if r.FaultsInjected == nil || r.FaultsInjected[faults.ModeNodeCrashes] != 1 {
		t.Fatalf("injected faults: %v, want exactly one node crash", r.FaultsInjected)
	}
	if r.FaultsInjected[faults.ModeDataNodeRPCErrors] == 0 {
		t.Errorf("no RPC errors injected despite 10%% drop rate: %v", r.FaultsInjected)
	}
	// The faults must have been absorbed by visible resilience work.
	if r.DFSRetries == 0 {
		t.Error("faults fired but no DFS retries recorded")
	}

	// The metrics registry must tell the same story: injected fault modes
	// mirrored under faults.injected.*, with the absorption work visible as
	// live dfs.client.* counters that agree with the Result's tallies.
	snap := r.Metrics
	if got := snap.Counter("faults.injected."+faults.ModeNodeCrashes); got != 1 {
		t.Errorf("faults.injected.node.crashes = %d, want 1", got)
	}
	if snap.Counter("faults.injected."+faults.ModeDataNodeRPCErrors) == 0 {
		t.Error("registry snapshot missed the injected RPC errors")
	}
	if got := snap.Counter("dfs.client.retries"); got != int64(r.DFSRetries) {
		t.Errorf("dfs.client.retries = %d, Result.DFSRetries = %d", got, r.DFSRetries)
	}
	if got := snap.Counter("dfs.client.read.failovers"); got != int64(r.ReadFailovers) {
		t.Errorf("dfs.client.read.failovers = %d, Result.ReadFailovers = %d", got, r.ReadFailovers)
	}
	if got := snap.Counter("dfs.client.pipeline.rebuilds"); got != int64(r.PipelineRebuilds) {
		t.Errorf("dfs.client.pipeline.rebuilds = %d, Result.PipelineRebuilds = %d", got, r.PipelineRebuilds)
	}
	absorbed := snap.Counter("dfs.client.retries") +
		snap.Counter("dfs.client.read.failovers") +
		snap.Counter("dfs.client.pipeline.rebuilds")
	if absorbed == 0 {
		t.Error("registry shows no absorption work despite injected faults")
	}
}

// TestChaosBitRotConvergence is the headline integrity scenario: with
// BitFlipRate=1 and the default one-flip-per-block budget, every block
// written to the DFS decays on exactly one of its three replicas — a
// strict minority — while the dump-counted scrubber sweeps the cluster.
// The run must complete with clean-run results (reads and restores fail
// over past the rot, nothing degrades to a kill), and one Result
// snapshot must prove both the accounting (every injected flip detected
// and quarantined, every quarantine healed) and the convergence (the
// end-of-run verification scrub finds zero corrupt replicas).
func TestChaosBitRotConvergence(t *testing.T) {
	jobs := mixedWorkload(t)
	mkCfg := func() Config {
		cfg := chaosConfig()
		cfg.Replication = 3
		return cfg
	}

	ref, err := Run(mkCfg(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Checkpoints == 0 || ref.Restores == 0 {
		t.Fatalf("reference run exercised no checkpoint cycle: %d dumps, %d restores",
			ref.Checkpoints, ref.Restores)
	}

	cfg := mkCfg()
	cfg.ScrubEveryNDumps = 2
	cfg.Faults = &faults.Plan{Seed: 13, BitFlipRate: 1}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("bit-rot run did not complete: %v", err)
	}

	// Every read and restore succeeded: full completion, clean checksums.
	if r.TasksCompleted != countTasks(jobs) {
		t.Errorf("completed %d of %d tasks", r.TasksCompleted, countTasks(jobs))
	}
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v checksum %x != clean run %x", id, got, want)
		}
	}
	if r.Checkpoints == 0 || r.Restores == 0 {
		t.Errorf("bit-rot run lost the checkpoint cycle: %d dumps, %d restores", r.Checkpoints, r.Restores)
	}

	// Zero corruption-attributable fallbacks: with bit rot as the only
	// fault mode, nothing may degrade to a kill, fail a restore, or lose a
	// block outright.
	if r.FallbackKills != 0 || r.RestoreVerifyFailures != 0 {
		t.Errorf("corruption leaked into the degradation ladder: %d fallback kills, %d verify failures",
			r.FallbackKills, r.RestoreVerifyFailures)
	}
	if r.CorruptDegraded != 0 || r.CorruptLost != 0 {
		t.Errorf("quarantines not fully healed: %d degraded, %d lost", r.CorruptDegraded, r.CorruptLost)
	}

	// The accounting must close from one snapshot: flips were injected,
	// each detection (reader checksum miss or scrubber find) became a
	// quarantine, and each quarantine was healed by re-replication.
	snap := r.Metrics
	injected := snap.Counter("faults.injected."+faults.ModeBitFlips)
	if injected == 0 {
		t.Fatal("BitFlipRate=1 injected nothing")
	}
	detected := r.CorruptReads + r.ScrubCorruptFound
	if detected == 0 {
		t.Fatal("injected bit rot was never detected")
	}
	if detected > injected {
		t.Errorf("detected %d corrupt replicas but only %d flips injected", detected, injected)
	}
	if r.ReplicasQuarantined != detected {
		t.Errorf("quarantined %d, detected %d — detections must map 1:1 to quarantines",
			r.ReplicasQuarantined, detected)
	}
	if r.CorruptReReplicated != r.ReplicasQuarantined {
		t.Errorf("re-replicated %d of %d quarantines", r.CorruptReReplicated, r.ReplicasQuarantined)
	}
	if got := snap.Counter("dfs.namenode.replicas.quarantined"); got != r.ReplicasQuarantined {
		t.Errorf("registry quarantine counter %d != Result %d", got, r.ReplicasQuarantined)
	}

	// Convergence, proven from the same snapshot: the end-of-run
	// verification scrub (after one healing pass) found nothing left.
	if r.ScrubRuns == 0 {
		t.Fatal("scrubber never ran")
	}
	if r.FinalScrubCorrupt != 0 {
		t.Errorf("cluster did not converge: final scrub still found %d corrupt replicas", r.FinalScrubCorrupt)
	}
	if g := snap.Gauges["yarn.scrub.final.corrupt"]; g != 0 {
		t.Errorf("yarn.scrub.final.corrupt gauge = %v, want 0", g)
	}
}

// TestChaosDeterminism: the same seed must reproduce the same chaos run
// bit for bit — same fault counts, same makespan.
func TestChaosDeterminism(t *testing.T) {
	jobs := mixedWorkload(t)
	run := func() *Result {
		cfg := chaosConfig()
		cfg.Faults = &faults.Plan{
			Seed:             7,
			RPCErrorRate:     0.10,
			CrashNode:        "dn-1",
			CrashAfterWrites: 2,
		}
		r, err := Run(cfg, jobs)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Errorf("makespans diverged: %v vs %v", a.Makespan, b.Makespan)
	}
	for mode, count := range a.FaultsInjected {
		if b.FaultsInjected[mode] != count {
			t.Errorf("fault %q: %d vs %d", mode, count, b.FaultsInjected[mode])
		}
	}
	if a.Kills != b.Kills || a.Checkpoints != b.Checkpoints || a.Restores != b.Restores {
		t.Errorf("counter divergence: %d/%d/%d vs %d/%d/%d",
			a.Kills, a.Checkpoints, a.Restores, b.Kills, b.Checkpoints, b.Restores)
	}
}

// TestDumpFailureDegradesToKill forces every checkpoint dump to fail at
// the store: the Preemption Manager must degrade to kill-based preemption
// and the run must still complete with correct results.
func TestDumpFailureDegradesToKill(t *testing.T) {
	jobs := smallWorkload()
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9

	ref, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Checkpoints == 0 || ref.FallbackKills != 0 {
		t.Fatalf("baseline: %d checkpoints, %d fallback kills", ref.Checkpoints, ref.FallbackKills)
	}

	cfg.Faults = &faults.Plan{Seed: 3, CreateFailRate: 1}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("run with failing dumps did not complete: %v", err)
	}
	if r.FallbackKills == 0 || r.DumpFailures == 0 {
		t.Fatalf("no kill fallback recorded: %d fallbacks, %d dump failures", r.FallbackKills, r.DumpFailures)
	}
	if r.Checkpoints != 0 {
		t.Errorf("%d checkpoints succeeded despite CreateFailRate=1", r.Checkpoints)
	}
	if r.Kills < r.FallbackKills {
		t.Errorf("fallback kills %d not included in kills %d", r.FallbackKills, r.Kills)
	}
	if r.TasksCompleted != countTasks(jobs) {
		t.Errorf("completed %d of %d tasks", r.TasksCompleted, countTasks(jobs))
	}
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v checksum %x != clean run %x", id, got, want)
		}
	}

	// Every injected create failure corresponds to exactly one dump that
	// the Preemption Manager absorbed by degrading to a kill: each dump
	// attempt performs a single store Create, so the two counters match.
	snap := r.Metrics
	injected := snap.Counter("faults.injected."+faults.ModeStoreCreateErrors)
	failures := snap.Counter("yarn.dump.failures")
	if injected == 0 || injected != failures {
		t.Errorf("injected store.create.errors (%d) != absorbed dump failures (%d)", injected, failures)
	}
	if got := snap.Counter("yarn.fallback.kills"); got != int64(r.FallbackKills) {
		t.Errorf("yarn.fallback.kills = %d, Result.FallbackKills = %d", got, r.FallbackKills)
	}
	if n := snap.Counter("checkpoint.dumps.full") + snap.Counter("checkpoint.dumps.incremental"); n != 0 {
		t.Errorf("%d dumps reached the checkpoint engine despite CreateFailRate=1", n)
	}
}

// TestPreCopyDumpFailureDegradesToKill: the kill fallback must also cover
// the pre-copy path, where the failure hits while the victim still runs.
func TestPreCopyDumpFailureDegradesToKill(t *testing.T) {
	jobs := smallWorkload()
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9
	cfg.PreCopy = true
	cfg.Faults = &faults.Plan{Seed: 5, CreateFailRate: 1}

	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("pre-copy run with failing dumps did not complete: %v", err)
	}
	if r.FallbackKills == 0 {
		t.Fatal("pre-copy dump failure did not degrade to a kill")
	}
	if r.PreCopies != 0 {
		t.Errorf("%d pre-copies succeeded despite CreateFailRate=1", r.PreCopies)
	}
	if r.TasksCompleted != countTasks(jobs) {
		t.Errorf("completed %d of %d tasks", r.TasksCompleted, countTasks(jobs))
	}

	snap := r.Metrics
	injected := snap.Counter("faults.injected."+faults.ModeStoreCreateErrors)
	failures := snap.Counter("yarn.dump.failures")
	if injected == 0 || injected != failures {
		t.Errorf("injected store.create.errors (%d) != absorbed dump failures (%d)", injected, failures)
	}
}

// TestTornDumpDegradesGracefully: torn image writes are caught by the
// store path (failed write/close), never produce a bogus restorable
// image, and the run completes correctly.
func TestTornDumpDegradesGracefully(t *testing.T) {
	jobs := smallWorkload()
	cfg := tinyCluster(core.PolicyCheckpoint)
	cfg.CustomBandwidth = 1e9

	ref, err := Run(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Faults = &faults.Plan{Seed: 9, TornWriteRate: 1, TornWriteBytes: 128}
	r, err := Run(cfg, jobs)
	if err != nil {
		t.Fatalf("run with torn dumps did not complete: %v", err)
	}
	if r.DumpFailures == 0 || r.FallbackKills == 0 {
		t.Fatalf("torn writes did not surface as dump failures: %+v faults=%v", r, r.FaultsInjected)
	}
	for id, want := range ref.TaskChecksums {
		if got := r.TaskChecksums[id]; got != want {
			t.Errorf("task %v checksum %x != clean run %x", id, got, want)
		}
	}

	// With TornWriteRate=1 every dump's image writer tears exactly once, so
	// injected tears and absorbed dump failures must agree.
	snap := r.Metrics
	injected := snap.Counter("faults.injected."+faults.ModeTornWrites)
	failures := snap.Counter("yarn.dump.failures")
	if injected == 0 || injected != failures {
		t.Errorf("injected torn.writes (%d) != absorbed dump failures (%d)", injected, failures)
	}
}
