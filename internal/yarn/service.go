package yarn

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"

	"preemptsched/internal/cluster"
	"preemptsched/internal/dfs"
	"preemptsched/internal/faults"
	"preemptsched/internal/sim"
)

// ErrServiceClosed is returned by Submit once the service has begun
// draining: the job was not admitted and will never run.
var ErrServiceClosed = errors.New("yarn: service closed")

// JobDone reports one job's completion to its submission callback.
type JobDone struct {
	ID cluster.JobID
	// At is the completion instant on the virtual clock.
	At sim.Time
	// ResponseSec is virtual response time (completion minus submission)
	// in seconds — the paper's job response metric.
	ResponseSec float64
	Tasks       int
}

// submission carries one job across the API/engine boundary. errCh is
// buffered so the loop's reply never blocks.
type submission struct {
	spec   cluster.JobSpec
	onDone func(JobDone)
	errCh  chan error
}

// serviceStepBatch bounds how many events the loop fires between polls of
// the submission channel: large enough to amortize the select, small
// enough that a new arrival lands on the virtual clock promptly.
const serviceStepBatch = 256

// Service runs the framework as a long-lived online system: jobs stream
// in through Submit while the engine executes, instead of being fixed up
// front as in Run. One loop goroutine owns the virtual clock — it
// alternates between draining the submission channel and stepping the
// engine in bounded batches, so arrivals interleave with execution. The
// DFS underneath is the real TCP transport: checkpoint dumps and restores
// are genuine RPCs against per-node listeners, subject to Config.Faults.
//
// Virtual time runs ahead of real time (the engine never sleeps), so a
// job's virtual response says what the paper's policies would deliver,
// while the real DFS I/O on the dump/restore paths provides the
// concurrency and failure surface a daemon must survive.
type Service struct {
	c      *Cluster
	cancel context.CancelFunc

	subCh  chan submission
	stopCh chan struct{}
	doneCh chan struct{}

	mu      sync.Mutex
	stopped bool
	// seen holds every job ID ever admitted: IDs are unique for the
	// service's lifetime, so a resubmitted ID is rejected even after the
	// original completed — the lost/double-completion bookkeeping upstream
	// depends on that uniqueness.
	seen map[cluster.JobID]struct{}

	finishOnce sync.Once
	finishErr  error
}

// NewService assembles a cluster over the real TCP DFS and starts its
// engine loop. Close (or Abort) must be called to release the listeners.
func NewService(cfg Config) (*Service, error) {
	ctx, cancel := context.WithCancel(context.Background())
	cfg.clientCtx = ctx
	c, err := newCluster(cfg, true)
	if err != nil {
		cancel()
		return nil, err
	}
	s := &Service{
		c:      c,
		cancel: cancel,
		subCh:  make(chan submission),
		stopCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		seen:   make(map[cluster.JobID]struct{}),
	}
	go s.loop(s.subCh, s.stopCh, s.doneCh)
	return s, nil
}

// Submit hands a job to the engine loop, rewriting its arrival to the
// current virtual instant, and returns once the job is admitted (or
// rejected by validation). onDone, when non-nil, fires on the engine
// goroutine the moment the job's last task completes — it must not block
// and must not call back into the Service. Submit takes ownership of
// spec.Tasks. Safe for concurrent use.
func (s *Service) Submit(spec cluster.JobSpec, onDone func(JobDone)) error {
	sub := submission{spec: spec, onDone: onDone, errCh: make(chan error, 1)}
	select {
	case s.subCh <- sub:
	case <-s.doneCh:
		return ErrServiceClosed
	}
	select {
	case err := <-sub.errCh:
		return err
	case <-s.doneCh:
		// The loop picked the stop branch before answering: the job was
		// never admitted.
		return ErrServiceClosed
	}
}

// Now reports the engine's virtual clock. It is a snapshot for reporting;
// by the time the caller reads it the loop may have advanced.
func (s *Service) Now() sim.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.engine.Now()
}

// loop owns the engine: it alternates between admitting queued
// submissions (stamped at virtual now) and firing bounded batches of
// events. On stop it drains every already-admitted job to completion —
// the graceful-shutdown contract — then exits.
func (s *Service) loop(subCh <-chan submission, stopCh <-chan struct{}, doneCh chan<- struct{}) {
	defer close(doneCh)
	for {
		select {
		case sub := <-subCh:
			sub.errCh <- s.admit(sub)
			continue
		case <-stopCh:
			s.drain()
			return
		default:
		}
		if s.pending() == 0 {
			// Idle: block until work or shutdown instead of spinning.
			select {
			case sub := <-subCh:
				sub.errCh <- s.admit(sub)
			case <-stopCh:
				s.drain()
				return
			}
			continue
		}
		s.stepBatch()
	}
}

// admit validates and schedules one job at virtual now. Runs on the
// engine goroutine.
func (s *Service) admit(sub submission) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	spec := sub.spec
	now := s.c.engine.Now()
	// The wire has no virtual clock: a job arrives the instant the engine
	// sees it, so its response time measures queueing + execution from
	// admission.
	spec.Submit = now
	for i := range spec.Tasks {
		spec.Tasks[i].Submit = now
	}
	if err := spec.Validate(); err != nil {
		return fmt.Errorf("yarn: %w", err)
	}
	if _, dup := s.seen[spec.ID]; dup {
		return fmt.Errorf("yarn: job %v already submitted", spec.ID)
	}
	s.seen[spec.ID] = struct{}{}
	if sub.onDone != nil {
		s.c.jobDone[spec.ID] = sub.onDone
	}
	am := newAppMaster(s.c, &spec)
	am.submit(now)
	return nil
}

func (s *Service) pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.engine.Pending()
}

func (s *Service) stepBatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := 0; i < serviceStepBatch && s.c.engine.Pending() > 0; i++ {
		s.c.engine.Step()
	}
}

func (s *Service) drain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.c.engine.Pending() > 0 {
		s.c.engine.Step()
	}
}

// Close drains the service — no new admissions, every already-admitted
// job runs to completion — then closes the books and releases the TCP
// listeners. It returns the aggregated Result; the error is non-nil if
// any admitted job failed to complete. Idempotent.
func (s *Service) Close() (*Result, error) {
	s.mu.Lock()
	if !s.stopped {
		s.stopped = true
		close(s.stopCh)
	}
	s.mu.Unlock()
	<-s.doneCh
	s.finishOnce.Do(func() {
		s.c.finish(s.c.engine.Now())
		s.c.close()
		s.cancel()
		if n := len(s.c.jobDone); n != 0 {
			s.finishErr = fmt.Errorf("yarn: service closed with %d jobs incomplete", n)
		}
	})
	return s.c.res, s.finishErr
}

// Abort is Close with the patience removed: it cancels the DFS clients'
// context first, so in-flight and future dump/restore RPC retries fail
// fast and preemptions degrade to kills instead of waiting out real-TCP
// backoff. Admitted jobs still run to completion on the virtual clock —
// the kill path restarts work rather than losing it — so the books still
// balance; the drain is just cheaper.
func (s *Service) Abort() (*Result, error) {
	s.cancel()
	return s.Close()
}

// buildTCPDFS assembles the DFS over real loopback TCP: one NameNode
// listener, one listener per DataNode, and a pooled TCP transport as the
// view every client and DataNode dials through — wrapped by the fault
// injector when Config.Faults is set, exactly as in buildDFS. Listener
// closes are registered as cleanups; close() waits for the serve
// goroutines via serveWG.
func (c *Cluster) buildTCPDFS(repl int) error {
	nn := dfs.NewNameNode(repl)
	nn.Instrument(c.reg)
	nnLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	c.cleanups = append(c.cleanups, func() { nnLn.Close() })
	c.serveWG.Add(1)
	go serveDFS(&c.serveWG, nnLn, nn, nil)

	tr := dfs.NewTCPTransport(nnLn.Addr().String())
	c.cleanups = append(c.cleanups, tr.Close)

	var view dfs.Transport = tr
	if c.cfg.Faults != nil {
		plan := *c.cfg.Faults
		userOnCrash := plan.OnCrash
		plan.OnCrash = func(id string) {
			if userOnCrash != nil {
				userOnCrash(id)
			}
			// The callback fires on whichever RPC goroutine tripped the
			// crashed DataNode, racing the engine goroutine — accumulate
			// into atomics and fold into Result at finish.
			if rep, err := nn.Decommission(id, c.dfsView); err == nil && rep != nil {
				c.decomRecovered.Add(int64(rep.Recovered))
				c.decomLost.Add(int64(rep.Lost))
			}
		}
		c.injector = faults.NewInjector(plan)
		view = faults.WrapTransport(tr, c.injector)
	}
	c.dfsView = view
	nn.AttachTransport(view)

	// Transport stays nil: it is the in-process handle, and every yarn-side
	// consumer reaches the DFS through c.dfsView or c.dfsc.DataNodes.
	c.dfsc = &dfs.Cluster{NameNode: nn}
	for i := 0; i < c.cfg.Nodes; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		c.cleanups = append(c.cleanups, func() { ln.Close() })
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: ln.Addr().String()}
		dn := dfs.NewDataNode(info, view)
		dn.Instrument(c.reg)
		c.serveWG.Add(1)
		go serveDFS(&c.serveWG, ln, nil, dn)
		if err := nn.Register(info); err != nil {
			return err
		}
		c.dfsc.DataNodes = append(c.dfsc.DataNodes, dn)
	}
	return nil
}

// serveDFS runs one RPC listener until it closes; the WaitGroup is the
// goroutine's lifecycle tie back to Cluster.close.
func serveDFS(wg *sync.WaitGroup, ln net.Listener, nn dfs.NameNodeAPI, dn dfs.DataNodeAPI) {
	defer wg.Done()
	_ = dfs.Serve(ln, nn, dn)
}
