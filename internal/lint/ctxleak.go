package lint

import (
	"go/ast"
	"go/types"
)

// CtxLeak flags goroutines started in the long-running server packages
// (internal/dfs, internal/yarn, internal/obs, internal/clusterd) that
// have no cancellation path: no context.Context in reach, no channel to
// select or receive on, and no WaitGroup tracking their lifetime. Such
// goroutines outlive Close/Shutdown, keep listeners and timers alive
// across test cases, and are exactly the leak the -race chaos runs
// intermittently trip over.
//
// It also flags time.Sleep calls inside for-loops that observe no
// cancellation signal — the classic fixed-delay retry/poll loop. A
// draining daemon cannot interrupt such a loop; it must ride out every
// remaining sleep. The loop needs a select on a stop channel, a
// context check, or core.Sleep(ctx, d).
//
// The check is a reachability heuristic, not an escape analysis: a
// goroutine is considered cancellable if its body (or, for named
// functions, its signature or arguments) mentions a context, touches any
// channel, or participates in a WaitGroup.
var CtxLeak = &Analyzer{
	Name: "ctxleak",
	Doc:  "goroutines and sleep loops in server packages need a cancellation path (context, channel, or WaitGroup)",
	Run:  runCtxLeak,
}

// ctxLeakPackages are the long-running server packages where an
// unstoppable goroutine is a lifecycle bug rather than a scoped helper.
var ctxLeakPackages = map[string]bool{
	modulePrefix + "/internal/dfs":      true,
	modulePrefix + "/internal/yarn":     true,
	modulePrefix + "/internal/obs":      true,
	modulePrefix + "/internal/clusterd": true,
}

func runCtxLeak(pass *Pass) error {
	if !ctxLeakPackages[pass.Pkg.Path()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !goStmtCancellable(pass.Info, n) {
					pass.Reportf(n.Pos(), "goroutine has no cancellation path (no context, channel, or WaitGroup): it outlives Close/Shutdown and leaks across runs")
				}
			case *ast.ForStmt:
				reportSleepLoop(pass, n)
			}
			return true
		})
	}
	return nil
}

// reportSleepLoop flags direct time.Sleep calls in a for-loop that
// observes no cancellation signal in its condition or body. Sleeps in
// nested loops or function literals are attributed to their own
// innermost construct, not this one.
func reportSleepLoop(pass *Pass, loop *ast.ForStmt) {
	if loopObservesCancel(pass.Info, loop) {
		return
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false
		case *ast.CallExpr:
			if isPkgFunc(calleeFunc(pass.Info, n), "time", "Sleep") {
				pass.Reportf(n.Pos(), "time.Sleep in a retry/poll loop with no cancellation path: a draining daemon cannot interrupt it; select on a stop channel or use core.Sleep(ctx, d)")
			}
		}
		return true
	})
}

// loopObservesCancel reports whether the loop's condition or body can
// notice a stop signal: a select, any channel operation, or a value of
// type context.Context or channel. A WaitGroup deliberately does not
// count here — it signals completion outward, it cannot interrupt the
// loop's own sleeps.
func loopObservesCancel(info *types.Info, loop *ast.ForStmt) bool {
	found := false
	check := func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && cancelSignalType(obj.Type()) {
				found = true
			}
		}
		return !found
	}
	if loop.Cond != nil {
		ast.Inspect(loop.Cond, check)
	}
	ast.Inspect(loop.Body, check)
	return found
}

// cancelSignalType reports whether t can deliver an interrupt to a
// polling loop: a context.Context or any channel.
func cancelSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeIs(t, "context", "Context") {
		return true
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	_, isChan := u.(*types.Chan)
	return isChan
}

// goStmtCancellable reports whether the spawned goroutine has any
// cancellation signal in reach.
func goStmtCancellable(info *types.Info, gs *ast.GoStmt) bool {
	// Arguments evaluated at spawn: a context, channel, or WaitGroup
	// handed to the goroutine counts, whatever the callee does with it.
	for _, arg := range gs.Call.Args {
		if tv, ok := info.Types[arg]; ok && cancellationType(tv.Type) {
			return true
		}
	}
	switch fun := ast.Unparen(gs.Call.Fun).(type) {
	case *ast.FuncLit:
		return bodyCancellable(info, fun.Body)
	default:
		// Named function or method value: cancellable if its signature
		// accepts a cancellation carrier, or if it's a method on a type
		// that plausibly owns one (bound methods like wg.Wait).
		if fn := calleeFunc(info, gs.Call); fn != nil {
			if sig, ok := fn.Type().(*types.Signature); ok {
				params := sig.Params()
				for i := 0; i < params.Len(); i++ {
					if cancellationType(params.At(i).Type()) {
						return true
					}
				}
				if recv := sig.Recv(); recv != nil && cancellationType(recv.Type()) {
					return true
				}
			}
		}
		return false
	}
}

// bodyCancellable reports whether the function body contains any
// cancellation mechanism: channel operations, select, context values, or
// WaitGroup participation. Nested function literals count — the body can
// reach them.
func bodyCancellable(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt, *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && cancellationType(obj.Type()) {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil {
				if recv := recvType(fn); recv != nil && typeIs(recv, "sync", "WaitGroup") {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// cancellationType reports whether t can carry a stop signal: a
// context.Context, any channel, or a sync.WaitGroup.
func cancellationType(t types.Type) bool {
	if t == nil {
		return false
	}
	if typeIs(t, "context", "Context") || typeIs(t, "sync", "WaitGroup") {
		return true
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		u = p.Elem().Underlying()
	}
	_, isChan := u.(*types.Chan)
	return isChan
}
