package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockIO flags Transport/Store/network/file I/O performed while a
// sync.Mutex or RWMutex acquired in the same function is still held —
// the NameNode/DataNode/client deadlock-and-latency class: an RPC issued
// under a namespace lock turns one slow peer into a cluster-wide stall,
// and two components doing it to each other deadlocks the pair. The
// repo's convention (plan under the lock, do I/O outside, commit back
// under the lock) is what this analyzer mechanizes.
//
// The analysis is intra-procedural and flow-approximate: it tracks
// Lock/Unlock pairs linearly through each function body, treats `defer
// mu.Unlock()` as holding the lock for the remainder of the function,
// and assumes branches that fall through execute. Helpers that *require*
// the caller to hold a lock (the *Locked suffix convention) are not
// charged — they acquire nothing themselves.
var LockIO = &Analyzer{
	Name: "lockio",
	Doc:  "no Transport/Store/net/file I/O while holding a mutex acquired in the same function",
	Run:  runLockIO,
}

// ioMethodTypes are the named types whose method calls count as I/O.
// Interface types match calls through the interface; concrete types
// match direct calls.
var ioMethodTypes = []struct{ path, name string }{
	{modulePrefix + "/internal/dfs", "Transport"},
	{modulePrefix + "/internal/dfs", "NameNodeAPI"},
	{modulePrefix + "/internal/dfs", "DataNodeAPI"},
	{modulePrefix + "/internal/dfs", "storageStore"},
	{modulePrefix + "/internal/storage", "Store"},
	{"net", "Conn"},
	{"net", "TCPConn"},
	{"net", "Listener"},
	{"os", "File"},
}

// ioPkgFuncs are package-level functions that perform I/O.
var ioPkgFuncs = map[string]map[string]bool{
	"net": {"Dial": true, "DialTimeout": true, "Listen": true, "DialTCP": true},
	"os": {"Open": true, "Create": true, "OpenFile": true, "ReadFile": true,
		"WriteFile": true, "Remove": true, "RemoveAll": true, "Rename": true,
		"Mkdir": true, "MkdirAll": true},
}

func runLockIO(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkLockFlow(pass, n.Body.List, make(map[string]token.Pos))
				}
			case *ast.FuncLit:
				// Each function literal is its own execution context:
				// locks held at its creation site are not (in general)
				// held when it runs.
				walkLockFlow(pass, n.Body.List, make(map[string]token.Pos))
			}
			return true
		})
	}
	return nil
}

// walkLockFlow interprets stmts linearly, tracking which mutexes are
// held, reporting I/O under a held lock. It returns the held set at fall
// through and whether the block always leaves the enclosing flow
// (return/branch/panic).
func walkLockFlow(pass *Pass, stmts []ast.Stmt, held map[string]token.Pos) (map[string]token.Pos, bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ReturnStmt:
			scanCalls(pass, s, held)
			return held, true
		case *ast.BranchStmt:
			return held, true
		case *ast.ExprStmt:
			if isPanicCall(s.X) {
				return held, true
			}
			scanCalls(pass, s, held)
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held for the remainder of
			// the function; any other deferred call runs at return, where
			// the lock picture is uncertain — skip it.
			if key, kind := lockOp(pass.Info, s.Call); kind == opUnlock {
				// Pin: drop the key from future explicit-unlock removal by
				// re-adding it under a marker the unlock handler skips.
				if pos, ok := held[key]; ok {
					held["defer "+key] = pos
				}
			}
		case *ast.BlockStmt:
			var term bool
			held, term = walkLockFlow(pass, s.List, held)
			if term {
				return held, true
			}
		case *ast.LabeledStmt:
			var term bool
			held, term = walkLockFlow(pass, []ast.Stmt{s.Stmt}, held)
			if term {
				return held, true
			}
		case *ast.IfStmt:
			if s.Init != nil {
				scanCalls(pass, s.Init, held)
			}
			scanCalls(pass, s.Cond, held)
			bodyOut, bodyTerm := walkLockFlow(pass, s.Body.List, copyHeld(held))
			var elseOut map[string]token.Pos
			elseTerm := false
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				elseOut, elseTerm = walkLockFlow(pass, e.List, copyHeld(held))
			case *ast.IfStmt:
				elseOut, elseTerm = walkLockFlow(pass, []ast.Stmt{e}, copyHeld(held))
			}
			switch {
			case s.Else == nil:
				if !bodyTerm {
					held = bodyOut
				}
			case bodyTerm && elseTerm:
				return held, true
			case bodyTerm:
				held = elseOut
			case elseTerm:
				held = bodyOut
			default:
				held = unionHeld(bodyOut, elseOut)
			}
		case *ast.ForStmt:
			if s.Init != nil {
				scanCalls(pass, s.Init, held)
			}
			if s.Cond != nil {
				scanCalls(pass, s.Cond, held)
			}
			bodyOut, _ := walkLockFlow(pass, s.Body.List, copyHeld(held))
			held = unionHeld(held, bodyOut)
		case *ast.RangeStmt:
			scanCalls(pass, s.X, held)
			bodyOut, _ := walkLockFlow(pass, s.Body.List, copyHeld(held))
			held = unionHeld(held, bodyOut)
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var body *ast.BlockStmt
			switch s := s.(type) {
			case *ast.SwitchStmt:
				if s.Init != nil {
					scanCalls(pass, s.Init, held)
				}
				if s.Tag != nil {
					scanCalls(pass, s.Tag, held)
				}
				body = s.Body
			case *ast.TypeSwitchStmt:
				body = s.Body
			case *ast.SelectStmt:
				body = s.Body
			}
			outs := []map[string]token.Pos{held}
			for _, clause := range body.List {
				var list []ast.Stmt
				switch c := clause.(type) {
				case *ast.CaseClause:
					for _, e := range c.List {
						scanCalls(pass, e, held)
					}
					list = c.Body
				case *ast.CommClause:
					list = c.Body
				}
				out, term := walkLockFlow(pass, list, copyHeld(held))
				if !term {
					outs = append(outs, out)
				}
			}
			merged := outs[0]
			for _, o := range outs[1:] {
				merged = unionHeld(merged, o)
			}
			held = merged
		case *ast.GoStmt:
			// The goroutine body runs concurrently under its own flow
			// (covered by the FuncLit walk); argument evaluation is
			// synchronous but never a lock op in practice.
		default:
			scanCalls(pass, stmt, held)
		}
	}
	return held, false
}

// scanCalls finds every call under n (not descending into function
// literals), applying lock/unlock transitions and reporting I/O calls
// made while a lock is held.
func scanCalls(pass *Pass, n ast.Node, held map[string]token.Pos) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, kind := lockOp(pass.Info, call); kind != opNone {
			if kind == opLock {
				held[key] = call.Pos()
			} else {
				delete(held, key)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		if desc := ioCallDesc(pass.Info, call); desc != "" {
			// Deferred unlocks pin their lock under a "defer " marker;
			// any surviving key means the lock is held here.
			var lockKey string
			for k := range held {
				lockKey = k
				break
			}
			if len(held) > 1 {
				lockKey = "a mutex"
			}
			pass.Reportf(call.Pos(), "%s called while %s is held: do Transport/Store/network I/O outside the lock (plan under the lock, act outside, commit back)", desc, trimDeferMarker(lockKey))
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies call as a Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex, returning a stable key for the lock
// expression ("n.mu").
func lockOp(info *types.Info, call *ast.CallExpr) (string, lockOpKind) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", opNone
	}
	recv := recvType(fn)
	if recv == nil || !(typeIs(recv, "sync", "Mutex") || typeIs(recv, "sync", "RWMutex")) {
		return "", opNone
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		return key, opLock
	case "Unlock", "RUnlock":
		return key, opUnlock
	}
	return "", opNone
}

// ioCallDesc returns a human-readable description of call when it is an
// I/O operation, or "".
func ioCallDesc(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if recv := recvType(fn); recv != nil {
		for _, t := range ioMethodTypes {
			if typeIs(recv, t.path, t.name) {
				n := namedOf(recv)
				return n.Obj().Name() + "." + fn.Name()
			}
		}
		return ""
	}
	if names, ok := ioPkgFuncs[fn.Pkg().Path()]; ok && names[fn.Name()] {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return ""
}

func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func unionHeld(a, b map[string]token.Pos) map[string]token.Pos {
	out := copyHeld(a)
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func trimDeferMarker(key string) string {
	if len(key) > 6 && key[:6] == "defer " {
		return key[6:]
	}
	return key
}
