package lint

import "testing"

// BenchmarkLintTree times the full suite over the whole module: load,
// type-check, and every analyzer in All(). The bench job records this
// next to the simulator benchmarks and gates it against
// BENCH_baseline.json, so an accidentally quadratic analyzer shows up
// as a CI wall-time regression instead of a slow drift everyone
// tolerates.
func BenchmarkLintTree(b *testing.B) {
	root, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		units, err := LoadPatterns(root, []string{"./..."})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Run(units, All()); err != nil {
			b.Fatal(err)
		}
	}
}
