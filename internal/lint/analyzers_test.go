package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The analyzer tests share one loader so the standard library and the
// module's real packages are type-checked once per `go test` run.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderRoot string
	loaderErr  error
)

func testLoader(t *testing.T) (*Loader, string) {
	t.Helper()
	loaderOnce.Do(func() {
		loaderRoot, loaderErr = ModuleRoot(".")
		if loaderErr != nil {
			return
		}
		var modPath string
		modPath, loaderErr = ModulePath(loaderRoot)
		if loaderErr != nil {
			return
		}
		loaderVal = NewLoader(loaderRoot, modPath)
	})
	if loaderErr != nil {
		t.Fatalf("test loader: %v", loaderErr)
	}
	return loaderVal, loaderRoot
}

// tdPkg names one testdata package: its directory under
// testdata/src and the import path to type-check it under (testdata is
// invisible to `go list` by design, so the path is free to impersonate
// scoped packages like preemptsched/internal/sched).
type tdPkg struct{ dir, path string }

func loadTestdata(t *testing.T, pkgs []tdPkg) []*Unit {
	t.Helper()
	l, root := testLoader(t)
	units := make([]*Unit, 0, len(pkgs))
	for _, p := range pkgs {
		u, err := l.LoadDir(filepath.Join(root, "internal", "lint", "testdata", "src", p.dir), p.path)
		if err != nil {
			t.Fatalf("load testdata %s: %v", p.dir, err)
		}
		units = append(units, u)
	}
	return units
}

// want is one expectation parsed from a `// want "substring"` comment.
type want struct {
	file   string
	line   int
	substr string
	hit    bool
}

var wantRE = regexp.MustCompile(`^// want "(.*)"$`)

func collectWants(units []*Unit) []*want {
	var wants []*want
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, substr: m[1]})
				}
			}
		}
	}
	return wants
}

// checkDiagnostics asserts diags and the `// want` markers in units
// agree exactly: every diagnostic matched by a marker on its line, every
// marker hit.
func checkDiagnostics(t *testing.T, units []*Unit, diags []Diagnostic) {
	t.Helper()
	wants := collectWants(units)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && strings.Contains(d.Message, w.substr) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic containing %q, got none", filepath.Base(w.file), w.line, w.substr)
		}
	}
}

func runAnalyzerGolden(t *testing.T, a *Analyzer, pkgs []tdPkg) {
	t.Helper()
	units := loadTestdata(t, pkgs)
	diags, err := Run(units, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}
	for _, d := range diags {
		if d.Analyzer != a.Name {
			t.Errorf("diagnostic from unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	checkDiagnostics(t, units, diags)
}

func TestVClock(t *testing.T) {
	runAnalyzerGolden(t, VClock, []tdPkg{
		{"vclock/sched", "preemptsched/internal/sched"},
		{"vclock/outside", "vclocktest/outside"},
	})
}

func TestSentinelErr(t *testing.T) {
	runAnalyzerGolden(t, SentinelErr, []tdPkg{
		{"sentinelerr/a", "sentineltest/a"},
	})
}

func TestLockIO(t *testing.T) {
	runAnalyzerGolden(t, LockIO, []tdPkg{
		{"lockio/a", "lockiotest/a"},
	})
}

func TestMetricName(t *testing.T) {
	runAnalyzerGolden(t, MetricName, []tdPkg{
		{"metricname/a", "metricnametest/a"},
		{"metricname/b", "metricnametest/b"},
	})
}

func TestCtxLeak(t *testing.T) {
	runAnalyzerGolden(t, CtxLeak, []tdPkg{
		{"ctxleak/dfs", "preemptsched/internal/dfs"},
		{"ctxleak/clusterd", "preemptsched/internal/clusterd"},
	})
}

func TestFaultPlan(t *testing.T) {
	runAnalyzerGolden(t, FaultPlan, []tdPkg{
		{"faultplan/a", "faultplantest/a"},
	})
}

func TestDecisionLog(t *testing.T) {
	runAnalyzerGolden(t, DecisionLog, []tdPkg{
		{"decisionlog/yarn", "preemptsched/internal/yarn"},
		{"decisionlog/outside", "decisionlogtest/outside"},
	})
}

func TestMapIter(t *testing.T) {
	runAnalyzerGolden(t, MapIter, []tdPkg{
		{"mapiter/a", "mapitertest/a"},
	})
}

func TestSliceShare(t *testing.T) {
	runAnalyzerGolden(t, SliceShare, []tdPkg{
		{"sliceshare/dfs", "preemptsched/internal/dfs"},
		{"sliceshare/outside", "slicesharetest/outside"},
	})
}

func TestRandSrc(t *testing.T) {
	runAnalyzerGolden(t, RandSrc, []tdPkg{
		{"randsrc/sched", "preemptsched/internal/sched"},
		{"randsrc/outside", "randsrctest/outside"},
	})
}

func TestFloatOrder(t *testing.T) {
	runAnalyzerGolden(t, FloatOrder, []tdPkg{
		{"floatorder/a", "floatordertest/a"},
	})
}

// TestAnalyzerMetadata keeps the suite's registry well-formed: unique
// lower-case names and non-empty docs, since both feed the suppression
// directives and the usage string.
func TestAnalyzerMetadata(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range All() {
		if a.Name == "" || a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be non-empty lower-case with no spaces", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	if got := fmt.Sprintf("%d", len(All())); got != "11" {
		t.Errorf("expected the eleven-analyzer suite, got %s", got)
	}
}
