package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix is the suppression directive marker. The full form is
//
//	//lint:ignore analyzer1[,analyzer2...] reason text
//
// matching the staticcheck convention, so editors and humans need only
// one habit.
const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool
	pos       token.Position
	// line is the line the comment sits on.
	line int
	// endLine is the last line the directive covers: its own line for
	// the trailing form, the next line for a standalone comment, and the
	// declaration's last line when the directive sits in a declaration's
	// doc comment.
	endLine int
	// standalone reports whether the comment occupies its own line (no
	// code before it).
	standalone bool
	// hits counts the diagnostics this directive suppressed in one Run;
	// a well-formed directive with zero hits is stale.
	hits int
}

// ignoreIndex maps file → directives, plus the diagnostics produced for
// malformed directives.
type ignoreIndex struct {
	byFile    map[string][]directive
	malformed []Diagnostic
}

// buildIgnoreIndex scans every file of every unit for suppression
// directives. A directive missing its reason (or naming no analyzer) is
// itself a diagnostic — suppressions must say why, or they rot.
func buildIgnoreIndex(units []*Unit) *ignoreIndex {
	idx := &ignoreIndex{byFile: make(map[string][]directive)}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						idx.malformed = append(idx.malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\" (the reason is mandatory)",
						})
						continue
					}
					set := make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							set[name] = true
						}
					}
					dir := directive{
						analyzers:  set,
						pos:        pos,
						line:       pos.Line,
						endLine:    pos.Line,
						standalone: standaloneComment(u.Fset, f, c),
					}
					if dir.standalone {
						dir.endLine = pos.Line + 1
						// A directive inside a declaration's doc comment
						// covers the whole declaration: findings anywhere
						// in its body can be excused at the decl head,
						// where the reason reads as documentation.
						if decl := docDeclFor(f, c); decl != nil {
							if end := u.Fset.Position(decl.End()).Line; end > dir.endLine {
								dir.endLine = end
							}
						}
					}
					idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], dir)
				}
			}
		}
	}
	return idx
}

// docDeclFor returns the top-level declaration whose doc comment group
// contains c, or nil.
func docDeclFor(f *ast.File, c *ast.Comment) ast.Decl {
	for _, decl := range f.Decls {
		var doc *ast.CommentGroup
		switch d := decl.(type) {
		case *ast.FuncDecl:
			doc = d.Doc
		case *ast.GenDecl:
			doc = d.Doc
		}
		if doc == nil {
			continue
		}
		for _, dc := range doc.List {
			if dc == c {
				return decl
			}
		}
	}
	return nil
}

// standaloneComment reports whether c is the first thing on its line,
// i.e. no declaration or statement of f starts before it on that line.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos() < c.Pos() && fset.Position(n.Pos()).Line == line {
			// Something syntactic starts on this line before the
			// comment: it is a trailing comment.
			if _, isFile := n.(*ast.File); !isFile {
				first = false
			}
		}
		return first
	})
	return first
}

// suppressed reports whether d is covered by a directive naming its
// analyzer, and credits every directive that covers it.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	hit := false
	dirs := idx.byFile[d.Pos.Filename]
	for i := range dirs {
		dir := &dirs[i]
		if !dir.analyzers[d.Analyzer] {
			continue
		}
		if d.Pos.Line >= dir.line && d.Pos.Line <= dir.endLine {
			dir.hits++
			hit = true
		}
	}
	return hit
}

// staleDirectives returns a diagnostic for every well-formed directive
// that suppressed nothing in this run even though every analyzer it
// names was executed: the finding it excused has been fixed or has
// moved, and an ignore that suppresses nothing is a latent hole the
// next real finding will fall through silently. Directives naming an
// analyzer outside the run set are left alone — a partial run cannot
// judge them.
func (idx *ignoreIndex) staleDirectives(ran map[string]bool) []Diagnostic {
	files := make([]string, 0, len(idx.byFile))
	for f := range idx.byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	var out []Diagnostic
	for _, f := range files {
		dirs := idx.byFile[f]
		for i := range dirs {
			dir := &dirs[i]
			if dir.hits > 0 {
				continue
			}
			judgeable := true
			for name := range dir.analyzers {
				if !ran[name] {
					judgeable = false
					break
				}
			}
			if !judgeable {
				continue
			}
			out = append(out, Diagnostic{
				Analyzer: "lint",
				Pos:      dir.pos,
				Message:  "stale //lint:ignore directive: it suppresses no current finding — delete it, or re-point it at the line it excuses",
			})
		}
	}
	return out
}
