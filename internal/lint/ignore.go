package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignorePrefix is the suppression directive marker. The full form is
//
//	//lint:ignore analyzer1[,analyzer2...] reason text
//
// matching the staticcheck convention, so editors and humans need only
// one habit.
const ignorePrefix = "//lint:ignore"

// directive is one parsed //lint:ignore comment.
type directive struct {
	analyzers map[string]bool
	// line is the line the comment sits on.
	line int
	// standalone reports whether the comment occupies its own line (no
	// code before it), in which case it also covers the next line.
	standalone bool
}

// ignoreIndex maps file → directives, plus the diagnostics produced for
// malformed directives.
type ignoreIndex struct {
	byFile    map[string][]directive
	malformed []Diagnostic
}

// buildIgnoreIndex scans every file of every unit for suppression
// directives. A directive missing its reason (or naming no analyzer) is
// itself a diagnostic — suppressions must say why, or they rot.
func buildIgnoreIndex(units []*Unit) *ignoreIndex {
	idx := &ignoreIndex{byFile: make(map[string][]directive)}
	for _, u := range units {
		for _, f := range u.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					pos := u.Fset.Position(c.Pos())
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						idx.malformed = append(idx.malformed, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:ignore directive: want \"//lint:ignore <analyzer> <reason>\" (the reason is mandatory)",
						})
						continue
					}
					set := make(map[string]bool)
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							set[name] = true
						}
					}
					idx.byFile[pos.Filename] = append(idx.byFile[pos.Filename], directive{
						analyzers:  set,
						line:       pos.Line,
						standalone: standaloneComment(u.Fset, f, c),
					})
				}
			}
		}
	}
	return idx
}

// standaloneComment reports whether c is the first thing on its line,
// i.e. no declaration or statement of f starts before it on that line.
func standaloneComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos() < c.Pos() && fset.Position(n.Pos()).Line == line {
			// Something syntactic starts on this line before the
			// comment: it is a trailing comment.
			if _, isFile := n.(*ast.File); !isFile {
				first = false
			}
		}
		return first
	})
	return first
}

// suppressed reports whether d is covered by a directive: one on the
// same line, or a standalone directive on the previous line.
func (idx *ignoreIndex) suppressed(d Diagnostic) bool {
	for _, dir := range idx.byFile[d.Pos.Filename] {
		if !dir.analyzers[d.Analyzer] {
			continue
		}
		if dir.line == d.Pos.Line {
			return true
		}
		if dir.standalone && dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
