package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point accumulation whose evaluation order is
// not fixed by the source: float addition is non-associative, so a `+=`
// reduction fed in map-range order, goroutine-completion order, or
// channel-merge order produces bit-different sums run to run even when
// the *set* of addends is identical. That is exactly the class the
// byte-identical cross-`-parallel` determinism suite exists to catch —
// but only on the workloads it happens to run. The sanctioned patterns
// are: reduce over a sorted key slice, or accumulate per-shard into an
// indexed slot (acc[i]) and reduce the shards sequentially afterwards —
// the worker-pool convention in internal/experiments.
//
// What it deliberately cannot prove: that a sharded accumulator's index
// is actually goroutine-private, or that a channel carries values whose
// sum is consumed order-insensitively downstream. It flags the direct
// shapes (scalar += under map range, captured scalar += in a go-routine,
// += fed by a channel receive) and leaves indexed stores alone.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "float += reductions must not depend on map-range, goroutine-merge, or channel-merge order",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *Pass) error {
	// seen dedupes sites reachable through nested nondeterministic
	// contexts (a += under two stacked map ranges is one finding).
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				tv, ok := pass.Info.Types[n.X]
				if !ok {
					return true
				}
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					reportFloatAccum(pass, seen, n.Body, "map iteration order is random — range over sorted keys instead")
				case *types.Chan:
					reportFloatAccum(pass, seen, n.Body, "channel-merge order follows goroutine completion — accumulate per-sender and reduce sequentially")
				}
			case *ast.GoStmt:
				lit, ok := n.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				reportCapturedFloatAccum(pass, lit)
			case *ast.AssignStmt:
				// sum += <-ch merges in completion order even outside a
				// range-over-channel loop.
				if !isFloatAccumAssign(pass.Info, n) {
					return true
				}
				for _, rhs := range n.Rhs {
					if pos, ok := receiveExprPos(rhs); ok {
						pass.Reportf(pos, "float accumulation from a channel receive: channel-merge order follows goroutine completion — accumulate per-sender and reduce sequentially")
					}
				}
			}
			return true
		})
	}
	return nil
}

// reportFloatAccum flags float compound-assignments under body, not
// descending into function literals (they run in their own context and
// are checked through the GoStmt path when launched concurrently).
func reportFloatAccum(pass *Pass, seen map[token.Pos]bool, body ast.Node, why string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isFloatAccumAssign(pass.Info, as) {
			return true
		}
		if seen[as.Pos()] {
			return true
		}
		seen[as.Pos()] = true
		pass.Reportf(as.Pos(), "float accumulation in nondeterministic order: %s", why)
		return true
	})
}

// reportCapturedFloatAccum flags float compound-assignments inside a
// goroutine-launched literal whose target is captured from the enclosing
// scope: the merge order across goroutines is the scheduler's choice.
// Indexed stores (acc[i] += v) are the sanctioned sharding pattern and
// are left alone.
func reportCapturedFloatAccum(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !isFloatAccumAssign(pass.Info, as) {
			return true
		}
		id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil || obj.Pos() == token.NoPos {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			pass.Reportf(as.Pos(), "float accumulation into captured %q from a goroutine: merge order follows the scheduler — accumulate into an indexed per-worker slot and reduce sequentially", id.Name)
		}
		return true
	})
}

// isFloatAccumAssign reports whether as is a compound accumulation
// (+=, -=, *=) on a floating-point target.
func isFloatAccumAssign(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
	default:
		return false
	}
	if len(as.Lhs) != 1 {
		return false
	}
	tv, ok := info.Types[as.Lhs[0]]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// receiveExprPos finds a channel receive inside e.
func receiveExprPos(e ast.Expr) (token.Pos, bool) {
	var pos token.Pos
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			pos, found = u.Pos(), true
			return false
		}
		return true
	})
	return pos, found
}
