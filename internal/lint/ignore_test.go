package lint

import (
	"os"
	"strings"
	"testing"
)

// TestIgnoreDirectives exercises the //lint:ignore contract end to end
// on testdata/src/ignore/a: same-line and standalone next-line
// suppression remove findings, a directive naming a different analyzer
// does not (and is reported stale), a trailing directive covers only
// its own line, and a directive without a reason is itself a
// diagnostic.
func TestIgnoreDirectives(t *testing.T) {
	units := loadTestdata(t, []tdPkg{{"ignore/a", "ignoretest/a"}})
	diags, err := Run(units, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	var sentinel, malformed, stale []Diagnostic
	for _, d := range diags {
		switch {
		case d.Analyzer == "sentinelerr":
			sentinel = append(sentinel, d)
		case d.Analyzer == "lint" && strings.Contains(d.Message, "stale"):
			stale = append(stale, d)
		case d.Analyzer == "lint":
			malformed = append(malformed, d)
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}

	// Two sentinelerr findings survive: the one under a directive naming
	// another analyzer, and the one on the line after a trailing (non
	// standalone) directive. All properly suppressed ones are gone.
	if len(sentinel) != 2 {
		t.Fatalf("sentinelerr diagnostics = %d, want 2:\n%s", len(sentinel), renderDiags(diags))
	}
	for _, d := range sentinel {
		src := sourceLine(t, d.Pos.Filename, d.Pos.Line)
		if strings.Contains(src, "//lint:ignore sentinelerr") {
			t.Errorf("finding survived on a line carrying its own directive: %s", d)
		}
	}

	// The reasonless directive is exactly one framework diagnostic.
	if len(malformed) != 1 {
		t.Fatalf("malformed-directive diagnostics = %d, want 1:\n%s", len(malformed), renderDiags(diags))
	}
	if !strings.Contains(malformed[0].Message, "the reason is mandatory") {
		t.Errorf("malformed message %q should say the reason is mandatory", malformed[0].Message)
	}
	if src := sourceLine(t, malformed[0].Pos.Filename, malformed[0].Pos.Line); !strings.Contains(src, "//lint:ignore sentinelerr") {
		t.Errorf("malformed diagnostic points at %q, want the reasonless directive line", src)
	}

	// The directive naming metricname suppresses nothing, so it is the
	// one stale directive in the package.
	if len(stale) != 1 {
		t.Fatalf("stale-directive diagnostics = %d, want 1:\n%s", len(stale), renderDiags(diags))
	}
	if src := sourceLine(t, stale[0].Pos.Filename, stale[0].Pos.Line); !strings.Contains(src, "//lint:ignore metricname") {
		t.Errorf("stale diagnostic points at %q, want the metricname directive line", src)
	}
}

// TestIgnoreSentry exercises the directive contract against the
// determinism-sentry analyzers on testdata/src/ignore/sentry: same-line
// coverage of a randsrc finding, decl-level coverage of a mapiter
// finding through the doc comment, and a floatorder directive that
// suppresses nothing and must be reported stale.
func TestIgnoreSentry(t *testing.T) {
	units := loadTestdata(t, []tdPkg{{"ignore/sentry", "preemptsched/internal/sched"}})
	diags, err := Run(units, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var stale []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "lint" && strings.Contains(d.Message, "stale") {
			stale = append(stale, d)
			continue
		}
		t.Errorf("diagnostic leaked through suppression: %s", d)
	}
	if len(stale) != 1 {
		t.Fatalf("stale-directive diagnostics = %d, want 1:\n%s", len(stale), renderDiags(diags))
	}
	if src := sourceLine(t, stale[0].Pos.Filename, stale[0].Pos.Line); !strings.Contains(src, "//lint:ignore floatorder") {
		t.Errorf("stale diagnostic points at %q, want the floatorder directive line", src)
	}
}

// TestIgnoreSuppressedLinesAbsent is the structural counterpart: no
// diagnostic surviving Run may be one the ignore index considers
// suppressed.
func TestIgnoreSuppressedLinesAbsent(t *testing.T) {
	units := loadTestdata(t, []tdPkg{{"ignore/a", "ignoretest/a"}})
	diags, err := Run(units, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	idx := buildIgnoreIndex(units)
	for _, d := range diags {
		if d.Analyzer == "lint" {
			continue
		}
		if idx.suppressed(d) {
			t.Errorf("suppressed diagnostic leaked through Run: %s", d)
		}
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

func sourceLine(t *testing.T, file string, line int) string {
	t.Helper()
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("read %s: %v", file, err)
	}
	lines := strings.Split(string(data), "\n")
	if line < 1 || line > len(lines) {
		t.Fatalf("%s has no line %d", file, line)
	}
	return lines[line-1]
}
