package lint

import (
	"go/ast"
	"go/types"
)

// VClock flags wall-clock usage (time.Now, time.Since, timers, sleeps)
// in code that must run on the simulator's virtual clock: everything in
// internal/sched and internal/sim, plus any function — in any package —
// that takes one of the simulator's clock types (sim.Time, *sim.Engine,
// *sim.Timer) as a parameter. One stray time.Now in those paths silently
// couples the Alg. 1/Alg. 2 overhead estimates to host speed, and the
// divergence only shows up as unreproducible runs.
var VClock = &Analyzer{
	Name: "vclock",
	Doc:  "virtual-time code must not read the wall clock (time.Now/Since/timers)",
	Run:  runVClock,
}

// vclockPackages are analyzed whole: their code is definitionally inside
// the simulation.
var vclockPackages = map[string]bool{
	modulePrefix + "/internal/sched": true,
	modulePrefix + "/internal/sim":   true,
}

// simPackage is the virtual-clock provider; parameters naming its types
// mark a function as simulation code wherever it lives (the mini-YARN
// emulation's sim.Time handlers, for example).
const simPackage = modulePrefix + "/internal/sim"

// wallClockFuncs are the package time functions that read or schedule
// against the wall clock. time.Duration arithmetic is fine — the virtual
// clock deliberately reuses it.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runVClock(pass *Pass) error {
	wholePkg := vclockPackages[pass.Pkg.Path()]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if wholePkg || takesSimClock(pass.Info, fd.Type) {
				reportWallClock(pass, fd.Body)
			} else {
				// Function literals may take the virtual clock even when
				// their enclosing function does not (event handlers
				// passed to Engine.ScheduleAt).
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					lit, ok := n.(*ast.FuncLit)
					if ok && takesSimClock(pass.Info, lit.Type) {
						reportWallClock(pass, lit.Body)
						return false
					}
					return true
				})
			}
		}
		if wholePkg {
			// Package-level declarations (var x = time.Now(), default
			// struct fields) count too.
			for _, decl := range f.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					reportWallClock(pass, gd)
				}
			}
		}
	}
	return nil
}

// takesSimClock reports whether the function type names a sim package
// type among its parameters. sim.Time is an alias of time.Duration, so
// the check is syntactic on the parameter's type expression — exactly
// what a reader sees in the signature.
func takesSimClock(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	found := false
	for _, field := range ft.Params.List {
		ast.Inspect(field.Type, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || found {
				return !found
			}
			if x, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := info.Uses[x].(*types.PkgName); ok && pn.Imported().Path() == simPackage {
					found = true
				}
			}
			return !found
		})
	}
	return found
}

// reportWallClock flags every reference to a wall-clock function of
// package time under n, skipping nested function literals that take the
// virtual clock (they are checked on their own) — everything else nested
// still executes on the simulation path of the enclosing function.
func reportWallClock(pass *Pass, n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
			return true
		}
		pass.Reportf(sel.Pos(), "wall clock in virtual-time code: time.%s breaks deterministic simulation; use the sim engine's clock", fn.Name())
		return true
	})
}
