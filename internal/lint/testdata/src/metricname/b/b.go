// Package b is metricname testdata for the cross-package duplicate
// check: it emits a counter package a already owns.
package b

import "preemptsched/internal/obs"

func record(r *obs.Registry) {
	r.Inc("app.requests.total") // want "also emitted by metricnametest/a"
	r.Inc("b.only.counter")     // unique to this package
}
