// Package a is metricname testdata: names must be dotted lowercase
// string constants.
package a

import "preemptsched/internal/obs"

const requests = "app.requests.total"

func record(r *obs.Registry, dyn string) {
	r.Inc(requests)                       // constant, conforming
	r.Add("app.cache.hits", 2)            // literal, conforming
	r.Observe("app.latency.seconds", 1.5) // conforming
	r.Inc("BadName")                      // want "does not match"
	r.Inc("single")                       // want "does not match"
	r.Inc("app.Mixed.Case")               // want "does not match"
	r.Inc(dyn)                            // want "not a string constant"
	r.Inc("app." + dyn)                   // want "not a string constant"
	r.SetGauge("app.queue.depth", 3)      // conforming
}

func handles(r *obs.Registry, dyn string) {
	c := r.Counter("app.requests.handled") // constant, conforming
	c.Inc()
	r.Histogram("app.dump.seconds").Observe(0.5) // conforming
	r.Counter(dyn)                               // want "not a string constant"
	r.Counter("app." + dyn)                      // want "not a string constant"
	r.Histogram("BadHandle")                     // want "does not match"
}
