// Package a is sentinelerr testdata: identity comparison and switch
// dispatch on module sentinels must be flagged; errors.Is and Is methods
// must not.
package a

import (
	"errors"
	"io"

	"preemptsched/internal/dfs"
	"preemptsched/internal/faults"
)

func classify(err error) string {
	if err == dfs.ErrNotFound { // want "ErrNotFound compared with =="
		return "missing"
	}
	if err != dfs.ErrCorruptBlock { // want "ErrCorruptBlock compared with !="
		return "other"
	}
	if err == faults.ErrInjected { // want "ErrInjected compared with =="
		return "sabotage"
	}
	return ""
}

func dispatch(err error) string {
	switch err {
	case dfs.ErrNoDataNodes: // want "switch dispatch on sentinel ErrNoDataNodes"
		return "nodes"
	case nil:
		return "ok"
	}
	return ""
}

// correct uses errors.Is: no findings.
func correct(err error) bool {
	return errors.Is(err, dfs.ErrNotFound) || errors.Is(err, dfs.ErrSealed)
}

// stdlibSentinels are out of scope: io.EOF identity comparison is a
// documented stdlib idiom and not this module's contract.
func stdlibSentinels(err error) bool {
	return err == io.EOF
}

type notFoundAlias struct{ error }

// Is implements the errors.Is protocol, where comparing the target's
// identity is the entire point — exempt.
func (notFoundAlias) Is(target error) bool {
	return target == dfs.ErrNotFound
}
