// Package sched is vclock testdata loaded under the import path
// preemptsched/internal/sched, so the whole package is in scope.
package sched

import "time"

var epoch = time.Now() // want "wall clock in virtual-time code: time.Now"

func tick() time.Duration {
	start := time.Now()          // want "wall clock in virtual-time code: time.Now"
	time.Sleep(time.Millisecond) // want "wall clock in virtual-time code: time.Sleep"
	return time.Since(start)     // want "wall clock in virtual-time code: time.Since"
}

func timers() {
	_ = time.After(time.Second)  // want "wall clock in virtual-time code: time.After"
	t := time.NewTimer(0)        // want "wall clock in virtual-time code: time.NewTimer"
	_ = t
}

// durations only touches time.Duration arithmetic, which the virtual
// clock deliberately reuses — no findings.
func durations(d time.Duration) time.Duration {
	return 2*d + 50*time.Millisecond
}
