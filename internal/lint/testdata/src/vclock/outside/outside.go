// Package outside is vclock testdata for a package NOT in the always-on
// set: only functions taking the simulator's clock types are in scope.
package outside

import (
	"time"

	"preemptsched/internal/sim"
)

// handler takes sim.Time, so its body is simulation code wherever the
// package lives.
func handler(now sim.Time) sim.Time {
	_ = time.Now() // want "wall clock in virtual-time code: time.Now"
	return now
}

// engineUser takes a *sim.Engine: same rule.
func engineUser(eng *sim.Engine) {
	time.Sleep(time.Millisecond) // want "wall clock in virtual-time code: time.Sleep"
	_ = eng
}

// plain takes no sim types; wall-clock use is legal here.
func plain() time.Time {
	return time.Now()
}

// launcher itself is out of scope, but the literal it builds takes the
// virtual clock, so the literal's body is in scope.
func launcher() func(sim.Time) {
	_ = time.Now() // legal: launcher is not simulation code
	return func(now sim.Time) {
		_ = time.Since(time.Time{}) // want "wall clock in virtual-time code: time.Since"
		_ = now
	}
}
