// Package sched is randsrc testdata: the deterministic core must draw
// every random number from a seeded *rand.Rand threaded in from
// configuration, never the process-global source and never a source
// seeded off the wall clock.
package sched

import (
	"math/rand"
	"time"
)

// pickVictim draws from the process-global source: flagged.
func pickVictim(n int) int {
	return rand.Intn(n) // want "draws from the process-global source"
}

// jitter seeds off the wall clock: flagged at the time.Now call. The
// rand.New wrapping an already-built source is itself sanctioned.
func jitter() *rand.Rand {
	src := rand.NewSource(time.Now().UnixNano()) // want "a wall-clock seed cannot be recorded and replayed"
	return rand.New(src)
}

// nested is one finding, not two, even though the wall-clock seed is
// visible from both constructors.
func nested() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "a wall-clock seed cannot be recorded and replayed"
}

// seeded threads an explicit fixed-seed source and draws through its
// methods: the sanctioned pattern.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(100)
}
