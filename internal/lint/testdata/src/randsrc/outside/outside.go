// Package outside is randsrc testdata: packages outside the module's
// deterministic core (tools, generators) may use the global source.
package outside

import "math/rand"

// shuffle is not flagged: the package is outside preemptsched/internal.
func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
