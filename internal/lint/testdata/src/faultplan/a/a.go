// Package a is faultplan testdata: rates must be literal probabilities
// in [0,1] and seeds must be reproducible.
package a

import (
	"time"

	"preemptsched/internal/faults"
)

func plans() faults.Plan {
	p := faults.Plan{
		Seed:           42,
		RPCErrorRate:   0.05, // in range
		BitFlipRate:    1.5,  // want "is outside [0,1]"
		CreateFailRate: -0.1, // want "is outside [0,1]"
	}
	p.TornWriteRate = 2 // want "is outside [0,1]"
	bad := faults.Plan{
		Seed: time.Now().UnixNano(), // want "seed derived from time.Now"
	}
	_ = bad
	return p
}

// boundaries are inclusive: 0 and 1 are valid probabilities.
func boundaries() faults.Plan {
	return faults.Plan{RPCErrorRate: 0, NameNodeErrorRate: 1}
}

// Compute-node fault fields: node indexes start at 0, fault times and
// durations live on the virtual clock and cannot be negative. The
// heartbeat drop rate is a probability like any other *Rate field.
func nodeFaults() faults.Plan {
	p := faults.Plan{
		NMCrashNode:       -1,               // want "node index NMCrashNode = -1 is negative"
		NMCrashAt:         -time.Second,     // want "fault time NMCrashAt is negative"
		NMPartitionNode:   3,                // in range
		NMPartitionAt:     2 * time.Minute,  // in range
		NMPartitionFor:    -5 * time.Second, // want "fault time NMPartitionFor is negative"
		HeartbeatDropRate: 1.5,              // want "is outside [0,1]"
	}
	p.NMPartitionNode = -2 // want "node index NMPartitionNode = -2 is negative"
	return p
}
