// Package a is faultplan testdata: rates must be literal probabilities
// in [0,1] and seeds must be reproducible.
package a

import (
	"time"

	"preemptsched/internal/faults"
)

func plans() faults.Plan {
	p := faults.Plan{
		Seed:           42,
		RPCErrorRate:   0.05, // in range
		BitFlipRate:    1.5,  // want "is outside [0,1]"
		CreateFailRate: -0.1, // want "is outside [0,1]"
	}
	p.TornWriteRate = 2 // want "is outside [0,1]"
	bad := faults.Plan{
		Seed: time.Now().UnixNano(), // want "seed derived from time.Now"
	}
	_ = bad
	return p
}

// boundaries are inclusive: 0 and 1 are valid probabilities.
func boundaries() faults.Plan {
	return faults.Plan{RPCErrorRate: 0, NameNodeErrorRate: 1}
}
