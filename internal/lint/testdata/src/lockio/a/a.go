// Package a is lockio testdata: I/O while holding a mutex acquired in
// the same function is flagged; release-then-act patterns are not.
package a

import (
	"net"
	"os"
	"sync"
)

type server struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	conns map[net.Conn]bool
}

func (s *server) closeUnderLock() {
	s.mu.Lock()
	for c := range s.conns {
		c.Close() // want "Conn.Close called while s.mu is held"
	}
	s.mu.Unlock()
}

func (s *server) ioUnderDeferredUnlock(path string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = os.ReadFile(path) // want "os.ReadFile called while"
}

func (s *server) dialUnderRLock() {
	s.rw.RLock()
	_, _ = net.Dial("tcp", "localhost:0") // want "net.Dial called while s.rw is held"
	s.rw.RUnlock()
}

// snapshotThenClose is the repo's canonical fix: plan under the lock,
// act outside it. No findings.
func (s *server) snapshotThenClose() {
	s.mu.Lock()
	open := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	for _, c := range open {
		c.Close()
	}
}

// earlyUnlockBranch releases before the I/O on every path. No findings.
func (s *server) earlyUnlockBranch(f *os.File, ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		f.Close()
		return
	}
	s.mu.Unlock()
	f.Close()
}

// lockFreeIO never takes the lock: plain I/O is not this analyzer's
// business.
func lockFreeIO(path string) {
	f, err := os.Open(path)
	if err == nil {
		f.Close()
	}
}
