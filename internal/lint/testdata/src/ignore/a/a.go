// Package a is suppression testdata for the //lint:ignore directive:
// same-line coverage, standalone next-line coverage, analyzer-name
// scoping, and the mandatory reason.
package a

import "preemptsched/internal/dfs"

// suppressedSameLine carries the directive on the offending line itself.
func suppressedSameLine(err error) bool {
	return err == dfs.ErrNotFound //lint:ignore sentinelerr exercising same-line suppression
}

// suppressedNextLine carries a standalone directive above the offending
// line.
func suppressedNextLine(err error) bool {
	//lint:ignore sentinelerr exercising standalone next-line suppression
	return err == dfs.ErrNotFound
}

// wrongAnalyzer names a different analyzer: the sentinelerr finding
// survives.
func wrongAnalyzer(err error) bool {
	//lint:ignore metricname directive names another analyzer on purpose
	return err == dfs.ErrNotFound
}

// trailingDirectiveScope: a trailing directive covers only its own line,
// not the next one.
func trailingDirectiveScope(err error) bool {
	ok := err == dfs.ErrSealed //lint:ignore sentinelerr trailing form covers this line only
	return ok && err == dfs.ErrSealed
}

// missingReason exercises the malformed-directive diagnostic: no reason.
//lint:ignore sentinelerr
func missingReason(err error) bool {
	return err != nil
}
