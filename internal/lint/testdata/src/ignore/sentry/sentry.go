// Package sentry exercises //lint:ignore against the determinism-sentry
// analyzers: same-line coverage, decl-level coverage through a doc
// comment, and the stale-directive diagnostic. The package impersonates
// internal/sched so randsrc is in scope.
package sentry

import "math/rand"

// pick draws from the global source under a same-line directive: the
// randsrc finding is suppressed.
func pick(n int) int {
	return rand.Intn(n) //lint:ignore randsrc exercising same-line suppression of a sentry analyzer
}

// keys returns map keys unsorted; the directive in the doc comment
// covers the whole declaration, so the mapiter finding four lines into
// the body is suppressed.
//
//lint:ignore mapiter exercising decl-level suppression: the consumer treats the result as a set
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sliceSum reduces over a slice, which floatorder never flags: the
// trailing directive suppresses nothing and is reported stale.
func sliceSum(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x //lint:ignore floatorder exercising the stale-directive diagnostic
	}
	return sum
}
