// Package a is floatorder testdata: float reductions whose order
// follows map ranges, goroutine completion, or channel merges must be
// flagged; sorted reductions, indexed per-worker slots, and integer
// accumulation must not.
package a

import "sort"

// meanByKey accumulates floats in map-range order: flagged.
func meanByKey(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want "map iteration order is random"
	}
	return sum / float64(len(m))
}

// meanSorted reduces over sorted keys: the addend order is fixed by the
// source. Sanctioned.
func meanSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum / float64(len(m))
}

// countByKey accumulates an int under a map range: integer addition is
// associative, so order cannot change the result. Sanctioned.
func countByKey(m map[string]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// mergeChan folds a channel in completion order: flagged.
func mergeChan(ch chan float64) float64 {
	var sum float64
	for v := range ch {
		sum += v // want "channel-merge order follows goroutine completion"
	}
	return sum
}

// recvAccum merges single receives: flagged at the receive.
func recvAccum(ch chan float64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += <-ch // want "float accumulation from a channel receive"
	}
	return sum
}

// captured accumulates into a scalar captured from the enclosing scope
// inside goroutines: the merge order is the scheduler's choice (and a
// data race besides). Flagged.
func captured(xs []float64) float64 {
	var sum float64
	done := make(chan struct{})
	for _, x := range xs {
		x := x
		go func() {
			sum += x // want "captured"
			done <- struct{}{}
		}()
	}
	for range xs {
		<-done
	}
	return sum
}

// sharded accumulates into an indexed per-worker slot and reduces the
// shards sequentially afterwards: the internal/experiments worker-pool
// convention. Sanctioned.
func sharded(xs []float64, workers int) float64 {
	acc := make([]float64, workers)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			for i := w; i < len(xs); i += workers {
				acc[w] += xs[i]
			}
			done <- struct{}{}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	var sum float64
	for _, v := range acc {
		sum += v
	}
	return sum
}
