// Package outside is decisionlog testdata loaded under a path outside
// the scheduler layers: core's own tests and benchmarks may probe
// Algorithm 1 freely without a flight recorder in reach.
package outside

import "preemptsched/internal/core"

func probe() core.PreemptAction {
	return core.DecidePreemption(core.PolicyKill, core.Candidate{}, nil, 0)
}
