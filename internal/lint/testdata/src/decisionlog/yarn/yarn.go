// Package yarn is decisionlog testdata loaded under the import path
// preemptsched/internal/yarn, so Algorithm 1 verdicts taken here must be
// journaled in the same function.
package yarn

import (
	"preemptsched/internal/core"
	"preemptsched/internal/obs"
)

type cluster struct {
	rec *obs.Recorder
}

func (c *cluster) recordDecision(action core.PreemptAction) {
	c.rec.Append(obs.Record{Kind: obs.RecDecision, Name: action.String()})
}

// silentKill decides and acts without journaling — the hole explain
// cannot see past.
func (c *cluster) silentKill() {
	action := core.DecidePreemption(core.PolicyKill, core.Candidate{}, nil, 0) // want "verdict is never journaled"
	_ = action
}

// viaHelper journals through the layer's recordDecision method.
func (c *cluster) viaHelper() {
	action := core.DecidePreemption(core.PolicyKill, core.Candidate{}, nil, 0)
	c.recordDecision(action)
}

// viaRecorder appends to the flight recorder directly.
func (c *cluster) viaRecorder() {
	action := core.DecidePreemption(core.PolicyKill, core.Candidate{}, nil, 0)
	c.rec.Append(obs.Record{Kind: obs.RecDecision, Name: action.String()})
}

// recordDecision is a free function, not the layer helper: naming alone
// does not journal anything.
func recordDecision(action core.PreemptAction) { _ = action }

func (c *cluster) viaImpostor() {
	action := core.DecidePreemption(core.PolicyKill, core.Candidate{}, nil, 0) // want "verdict is never journaled"
	recordDecision(action)
}

// noDecision never consults Algorithm 1 — nothing to journal.
func (c *cluster) noDecision() {
	c.rec.Append(obs.Record{Kind: obs.RecEvent, Name: "task-done"})
}
