// Package clusterd is ctxleak testdata loaded under the import path
// preemptsched/internal/clusterd: the daemon package is a long-running
// server and gets the full goroutine and sleep-loop checks.
package clusterd

import "time"

func orphanDispatcher() {
	go func() { // want "goroutine has no cancellation path"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func pollDaemon(ready func() bool) {
	for !ready() {
		time.Sleep(10 * time.Millisecond) // want "time.Sleep in a retry/poll loop"
	}
}

func trackedDispatcher(queue chan int) {
	go func() {
		for range queue {
		}
	}()
}
