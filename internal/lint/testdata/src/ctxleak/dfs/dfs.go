// Package dfs is ctxleak testdata loaded under the import path
// preemptsched/internal/dfs, one of the long-running server packages.
package dfs

import (
	"context"
	"sync"
)

func orphan() {
	go func() { // want "goroutine has no cancellation path"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func orphanNamed() {
	go spin() // want "goroutine has no cancellation path"
}

func spin() {}

func stoppable(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

func ctxAware(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func namedWithChannel(stop chan struct{}) {
	go waitFor(stop)
}

func waitFor(stop chan struct{}) { <-stop }
