// Package dfs is ctxleak testdata loaded under the import path
// preemptsched/internal/dfs, one of the long-running server packages.
package dfs

import (
	"context"
	"sync"
	"time"
)

func orphan() {
	go func() { // want "goroutine has no cancellation path"
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

func orphanNamed() {
	go spin() // want "goroutine has no cancellation path"
}

func spin() {}

func stoppable(stop chan struct{}) {
	go func() {
		<-stop
	}()
}

func ctxAware(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func tracked(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

func namedWithChannel(stop chan struct{}) {
	go waitFor(stop)
}

func waitFor(stop chan struct{}) { <-stop }

func sleepRetry(op func() error) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = op(); err == nil {
			return nil
		}
		time.Sleep(time.Millisecond) // want "time.Sleep in a retry/poll loop"
	}
	return err
}

func sleepForever() {
	for {
		time.Sleep(time.Second) // want "time.Sleep in a retry/poll loop"
	}
}

func sleepWithCtx(ctx context.Context, op func() error) error {
	for ctx.Err() == nil {
		if op() == nil {
			return nil
		}
		time.Sleep(time.Millisecond) // ok: the condition observes ctx
	}
	return ctx.Err()
}

func sleepWithStop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		time.Sleep(time.Millisecond) // ok: the select observes stop
	}
}

func sleepOutsideLoop() {
	time.Sleep(time.Millisecond) // ok: not a loop
}

func innerLoopOwnsSleep(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		for i := 0; i < 3; i++ {
			time.Sleep(time.Millisecond) // want "time.Sleep in a retry/poll loop"
		}
	}
}
