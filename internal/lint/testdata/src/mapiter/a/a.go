// Package a is mapiter testdata: map-range order leaking into returned
// or state-stored slices and into writer sinks must be flagged; the
// sorted-after convention, sorted-key loops, per-iteration writers, and
// non-escaping accumulators must not.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// keysUnsorted returns map keys in range order: flagged.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "accumulates in map-range order and escapes unsorted"
	}
	return out
}

// keysSorted follows the findBlockLocked convention: the sort after the
// loop re-establishes a deterministic order before the slice escapes.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// dump writes to the caller's sink mid-loop: the byte order of the
// output follows map iteration. Flagged.
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want "inside range over map"
	}
}

// dumpSorted collects, sorts, then ranges the sorted slice: the write
// loop is over a slice, and the collection append is sanctioned by the
// sort that follows it.
func dumpSorted(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s=%d\n", k, m[k])
	}
}

// digestEach writes to a builder created inside the loop body: each
// iteration's output is self-contained, so order cannot leak. Not
// flagged.
func digestEach(m map[string][]byte) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		var b strings.Builder
		b.WriteString(k)
		b.Write(v)
		out[k] = b.String()
	}
	return out
}

// longest accumulates into a slice that never escapes: the range-order
// content is consumed order-insensitively in this function. Not flagged.
func longest(m map[string]int) int {
	var seen []string
	for k := range m {
		seen = append(seen, k)
	}
	best := 0
	for _, k := range seen {
		if len(k) > best {
			best = len(k)
		}
	}
	return best
}

type cache struct{ keys []string }

// fill stores range-ordered keys into struct state, where a later
// reader sees them as ordered data: flagged.
func (c *cache) fill(m map[string]int) {
	for k := range m {
		c.keys = append(c.keys, k) // want "accumulates in map-range order and escapes unsorted"
	}
}
