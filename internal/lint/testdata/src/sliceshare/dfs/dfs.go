// Package dfs is sliceshare testdata: every struct declared in the dfs
// layer is stateful, so exported methods returning field-backed slices
// or maps without a detach must be flagged; the AddBlock-fix idioms
// (append onto a fresh slice, make+copy, string value copies) must not.
package dfs

import "sort"

// Block names a replicated block. Replicas is the aliasing field that
// makes value copies of Block share backing store with the registry.
type Block struct {
	ID       string
	Replicas []string
}

// Info is scalar-only: value copies detach completely.
type Info struct {
	ID   string
	Size int64
}

// Table is a registry mutated by background sweeps.
type Table struct {
	blocks []Block
	byID   map[string]Block
	infos  map[string]Info
	names  []string
}

// Blocks leaks the live field slice: flagged.
func (t *Table) Blocks() []Block {
	return t.blocks // want "escapes an exported method while sharing its backing store"
}

// Replicas leaks through a local drawn from state: the Block value copy
// still shares its Replicas backing array. Flagged.
func (t *Table) Replicas(id string) []string {
	b := t.byID[id]
	return b.Replicas // want "escapes an exported method while sharing its backing store"
}

// Grow is the pre-fix AddBlock shape: the argument is stored into state
// and its slice field returned, so the caller and the registry share one
// backing array. Flagged.
func (t *Table) Grow(b Block) []string {
	t.blocks = append(t.blocks, b)
	return b.Replicas // want "escapes an exported method while sharing its backing store"
}

// Snapshot bare-returns a named result still rooted in state: flagged.
func (t *Table) Snapshot() (blocks []Block) {
	blocks = t.blocks
	return // want "still shares receiver state"
}

// BlocksCopy detaches with the AddBlock fix before returning. The copy
// is shallow — element Replicas still alias — which is the documented
// limit of the analyzer, not a finding.
func (t *Table) BlocksCopy() []Block {
	return append([]Block(nil), t.blocks...)
}

// Names detaches with a make+append copy.
func (t *Table) Names() []string {
	out := make([]string, 0, len(t.names))
	out = append(out, t.names...)
	return out
}

// IDs copies map keys: string value copies detach, and the sort keeps
// the result deterministic.
func (t *Table) IDs() []string {
	ids := make([]string, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Meta returns a value copy of scalar state: nothing to share.
func (t *Table) Meta(id string) Info {
	return t.infos[id]
}
