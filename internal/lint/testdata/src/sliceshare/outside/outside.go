// Package outside is sliceshare testdata for the mutex-field rule:
// outside the registered shared-state layers, only structs carrying a
// sync.Mutex/RWMutex field count as stateful.
package outside

import "sync"

// Locked guards vals with a mutex: stateful anywhere in the module.
type Locked struct {
	mu   sync.Mutex
	vals []int
}

// Vals leaks the guarded slice — the lock protects the read of the
// header, not the caller's later traversal of the shared array. Flagged.
func (l *Locked) Vals() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.vals // want "escapes an exported method while sharing its backing store"
}

// ValsCopy detaches under the lock: sanctioned.
func (l *Locked) ValsCopy() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]int(nil), l.vals...)
}

// Plain has no mutex and sits outside the shared-state layers: not
// stateful, so returning its field is the caller's business.
type Plain struct{ vals []int }

// Vals is not flagged: Plain is not a stateful type.
func (p *Plain) Vals() []int { return p.vals }
