package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SentinelErr flags ==/!= comparisons and switch dispatch on the repo's
// sentinel errors (dfs.Err*, checkpoint.Err*, faults.ErrInjected, ...).
// Errors that crossed the TCP transport are rehydrated as wrappers
// (rpcError, PathError, fmt.Errorf %w chains), so identity comparison
// silently stops matching the moment a call goes remote or gains
// context; errors.Is is the only comparison that survives wrapping.
//
// The one legitimate home for identity comparison — an error type's own
// `Is(error) bool` method, where the target is compared by definition —
// is exempt.
var SentinelErr = &Analyzer{
	Name: "sentinelerr",
	Doc:  "sentinel errors must be matched with errors.Is, not ==/!= or switch",
	Run:  runSentinelErr,
}

// isSentinel reports whether obj is a package-level `var ErrX = ...` of
// type error declared anywhere in this module.
func isSentinel(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	if !strings.HasPrefix(v.Name(), "Err") {
		return false
	}
	path := v.Pkg().Path()
	if path != modulePrefix && !strings.HasPrefix(path, modulePrefix+"/") {
		return false
	}
	// Package level: the parent scope is the package scope.
	if v.Parent() != v.Pkg().Scope() {
		return false
	}
	return types.Identical(v.Type(), types.Universe.Lookup("error").Type())
}

// isErrorIsMethod reports whether fd is an `Is(error) bool` method — the
// errors.Is protocol hook, whose body must compare identities.
func isErrorIsMethod(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	ft := fd.Type
	return ft.Params != nil && len(ft.Params.List) == 1 &&
		ft.Results != nil && len(ft.Results.List) == 1
}

func runSentinelErr(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || isErrorIsMethod(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					if n.Op != token.EQL && n.Op != token.NEQ {
						return true
					}
					for _, side := range []ast.Expr{n.X, n.Y} {
						obj := usedObject(pass.Info, side)
						if obj != nil && isSentinel(obj) {
							pass.Reportf(n.Pos(), "%s compared with %s: use errors.Is — wire-decoded and wrapped errors never compare identical", obj.Name(), n.Op)
						}
					}
				case *ast.SwitchStmt:
					if n.Tag == nil {
						return true
					}
					tagType, ok := pass.Info.Types[n.Tag]
					if !ok || !types.Identical(tagType.Type, types.Universe.Lookup("error").Type()) {
						return true
					}
					for _, stmt := range n.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							obj := usedObject(pass.Info, e)
							if obj != nil && isSentinel(obj) {
								pass.Reportf(e.Pos(), "switch dispatch on sentinel %s: use errors.Is — wire-decoded and wrapped errors never compare identical", obj.Name())
							}
						}
					}
				}
				return true
			})
		}
	}
	return nil
}
