package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DecisionLog enforces the decision-provenance invariant behind
// cmd/explain: in the scheduler layers (internal/sched, internal/yarn),
// every function that asks Algorithm 1 for a verdict — a call to
// core.DecidePreemption — must journal that verdict in the same function
// body, either through the layer's recordDecision helper or by appending
// to the flight recorder directly. A decision that is acted on but never
// journaled leaves a hole in the journal: the kill happens, and
// "explain" cannot say why.
var DecisionLog = &Analyzer{
	Name: "decisionlog",
	Doc:  "Algorithm 1 verdicts in scheduler code must be journaled (recordDecision or Recorder.Append)",
	Run:  runDecisionLog,
}

// decisionLogPackages are the layers that own preemption decisions and
// carry a flight recorder to journal them into.
var decisionLogPackages = []string{
	modulePrefix + "/internal/sched",
	modulePrefix + "/internal/yarn",
}

const (
	corePackage = modulePrefix + "/internal/core"
	obsPackage  = modulePrefix + "/internal/obs"
)

func runDecisionLog(pass *Pass) error {
	inScope := false
	for _, p := range decisionLogPackages {
		if pass.Pkg.Path() == p || strings.HasPrefix(pass.Pkg.Path(), p+"/") {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var decides []*ast.CallExpr
			journals := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pass.Info, call)
				switch {
				case isPkgFunc(fn, corePackage, "DecidePreemption"):
					decides = append(decides, call)
				case isDecisionJournal(fn):
					journals = true
				}
				return true
			})
			if journals {
				continue
			}
			for _, call := range decides {
				pass.Reportf(call.Pos(), "core.DecidePreemption verdict is never journaled: call recordDecision (or Recorder.Append) in the same function so cmd/explain can reconstruct it")
			}
		}
	}
	return nil
}

// isDecisionJournal reports whether fn writes the verdict to the
// provenance journal: the per-layer recordDecision helper, or the
// flight recorder's Append itself.
func isDecisionJournal(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if fn.Name() == "recordDecision" && recvType(fn) != nil {
		return true
	}
	return fn.Name() == "Append" && typeIs(recvType(fn), obsPackage, "Recorder")
}
