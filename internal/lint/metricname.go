package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"regexp"
	"sort"
)

// MetricName enforces the repo's metric naming contract at every
// obs.Registry / metrics.Counters call site: names must be string
// constants of the dotted lowercase form `component.metric[.detail]`
// ("dfs.read.retries"), so dashboards, reportcheck, and the chaos-test
// assertions can reference them without guessing. It also flags the same
// constant name being emitted from two different packages — two
// components updating one counter makes the number unattributable.
//
// Dynamically built names (a handful of suffix-per-mode counters) are
// deliberate and carry //lint:ignore annotations at the call site.
var MetricName = &Analyzer{
	Name:     "metricname",
	Doc:      "metric names are dotted lowercase string constants, unique to one package",
	Run:      runMetricName,
	AfterAll: metricNameAfterAll,
}

var metricNameRE = regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)+$`)

// metricSinks maps the packages and receiver types whose methods take a
// metric name as their first argument.
var metricSinks = []struct {
	pkg, typ string
	methods  map[string]bool
}{
	{modulePrefix + "/internal/obs", "Registry", map[string]bool{
		"Inc": true, "Add": true, "SetGauge": true, "MaxGauge": true,
		"Observe": true, "ObserveDuration": true,
		// Handle resolution is a name sink too: a dynamic name resolved
		// once still lands on dashboards every time the handle records.
		"Counter": true, "Histogram": true,
	}},
	{modulePrefix + "/internal/metrics", "Counters", map[string]bool{
		"Add": true, "Get": true, "Handle": true,
	}},
}

// metricDeclPkgs declare the sinks: their own forwarding wrappers pass
// the caller's name straight through and are exempt.
var metricDeclPkgs = map[string]bool{
	modulePrefix + "/internal/obs":     true,
	modulePrefix + "/internal/metrics": true,
}

const metricSeenKey = "metricname.seen"

// metricUse records where a constant metric name was emitted.
type metricUse struct {
	pkgPath string
	pos     token.Position
}

func runMetricName(pass *Pass) error {
	if metricDeclPkgs[pass.Pkg.Path()] {
		return nil
	}
	seen, _ := pass.Shared.Get(metricSeenKey).(map[string][]metricUse)
	if seen == nil {
		seen = make(map[string][]metricUse)
		pass.Shared.Put(metricSeenKey, seen)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil {
				return true
			}
			recv := recvType(fn)
			if recv == nil {
				return true
			}
			matched := false
			for _, sink := range metricSinks {
				if typeIs(recv, sink.pkg, sink.typ) && sink.methods[fn.Name()] {
					matched = true
					break
				}
			}
			if !matched || len(call.Args) == 0 {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Reportf(arg.Pos(), "metric name passed to %s is not a string constant: dynamic names defeat dashboard and reportcheck lookups (annotate deliberate per-mode suffixes with //lint:ignore metricname)", fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRE.MatchString(name) {
				pass.Reportf(arg.Pos(), "metric name %q does not match ^[a-z0-9_]+(\\.[a-z0-9_]+)+$: use dotted lowercase component.metric form", name)
				return true
			}
			seen[name] = append(seen[name], metricUse{
				pkgPath: pass.Pkg.Path(),
				pos:     pass.Fset.Position(arg.Pos()),
			})
			return true
		})
	}
	return nil
}

// metricNameAfterAll reports constant metric names emitted from more
// than one package, at every use outside the first package seen.
func metricNameAfterAll(shared *Shared, report func(token.Position, string)) {
	seen, _ := shared.Get(metricSeenKey).(map[string][]metricUse)
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		uses := seen[name]
		first := uses[0].pkgPath
		for _, u := range uses {
			if u.pkgPath < first {
				first = u.pkgPath
			}
		}
		reported := make(map[string]bool)
		for _, u := range uses {
			if u.pkgPath == first || reported[u.pkgPath] {
				continue
			}
			reported[u.pkgPath] = true
			report(u.pos, "metric "+name+" is also emitted by "+first+": a counter owned by two packages cannot be attributed — rename one or move the emission")
		}
	}
}
