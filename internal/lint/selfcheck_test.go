package lint

import (
	"strings"
	"testing"
)

// TestRepoIsLintClean is the self-hosting gate: the full analyzer suite
// over the entire module must report nothing. Every deliberate exception
// in the tree carries a //lint:ignore with a reason; anything else is a
// regression against the invariants this package encodes.
//
// This is also the test that keeps `go run ./cmd/preemptlint ./...`
// exiting 0 in CI without CI having to interpret linter output.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	units, err := LoadPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatalf("load ./...: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("loaded no packages")
	}
	diags, err := Run(units, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 0 {
		var b strings.Builder
		for _, d := range diags {
			b.WriteString("\n  ")
			b.WriteString(d.String())
		}
		t.Errorf("the tree is not lint-clean; fix the site or add a reasoned //lint:ignore:%s", b.String())
	}
}
