package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the enclosing module from
// source, with no dependency on golang.org/x/tools. Imports inside the
// module are resolved against the module root and type-checked
// recursively (cached, so shared dependencies are checked once per run);
// standard-library imports are delegated to the gc source importer,
// which type-checks GOROOT from source and therefore needs no compiled
// export data and no network.
type Loader struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	modPath string
	modRoot string
	// cache holds module packages type-checked as dependencies, so the
	// dfs.Transport seen while analyzing yarn is the same type object
	// every other importer of dfs sees.
	cache map[string]*types.Package
}

// NewLoader returns a loader for the module rooted at modRoot with
// module path modPath.
func NewLoader(modRoot, modPath string) *Loader {
	// The source importer would otherwise shell out to cgo for packages
	// like net; the pure-Go fallbacks type-check identically for
	// analysis purposes and work in hermetic environments.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		modPath: modPath,
		modRoot: modRoot,
		cache:   make(map[string]*types.Package),
	}
}

// Fset returns the loader's file set (shared by every unit it loads).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths are
// resolved against the module root, everything else goes to the source
// importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if p, ok := l.cache[path]; ok {
			return p, nil
		}
		dir := filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")))
		pkg, _, _, err := l.check(path, dir, false)
		if err != nil {
			return nil, err
		}
		l.cache[path] = pkg
		return pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// check parses dir's non-test Go files (respecting build constraints)
// and type-checks them under importPath. withInfo records full type
// information, needed only for packages under analysis.
func (l *Loader) check(importPath, dir string, withInfo bool) (*types.Package, []*ast.File, *types.Info, error) {
	bp, err := build.Default.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: resolve %s: %w", dir, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if withInfo {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("lint: type-check %s: %w", importPath, err)
	}
	return pkg, files, info, nil
}

// LoadDir loads the single package in dir under the given import path,
// with full type information. Used by the analyzer tests to load
// testdata packages (which `go list` deliberately cannot see) and by the
// self-hosting check.
func (l *Loader) LoadDir(dir, importPath string) (*Unit, error) {
	pkg, files, info, err := l.check(importPath, dir, true)
	if err != nil {
		return nil, err
	}
	return &Unit{Fset: l.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
}

// LoadPatterns expands package patterns (e.g. "./...") with `go list`
// and loads every matched package with full type information. The
// subprocess is the one concession to the go tool: pattern expansion and
// build-constraint resolution belong to it, the type-checking stays
// in-process.
func LoadPatterns(modRoot string, patterns []string) ([]*Unit, error) {
	modPath, err := ModulePath(modRoot)
	if err != nil {
		return nil, err
	}
	args := append([]string{"list", "-json=Dir,ImportPath"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = modRoot
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}

	l := NewLoader(modRoot, modPath)
	units := make([]*Unit, 0, len(pkgs))
	for _, p := range pkgs {
		u, err := l.LoadDir(p.Dir, p.ImportPath)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// ModuleRoot walks up from dir to the nearest go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// ModulePath reads the module path from modRoot/go.mod.
func ModulePath(modRoot string) (string, error) {
	data, err := os.ReadFile(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", modRoot)
}
