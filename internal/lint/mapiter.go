package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map whose iteration order leaks into an
// ordered artifact: a slice that is returned (or stored into struct
// state) without a dominating sort, or bytes written to an io.Writer /
// fmt sink mid-loop. Go randomizes map iteration on purpose, so both
// shapes produce output that differs run to run — the exact failure
// class the byte-identical determinism contract (DESIGN.md §11) bans.
// The sanctioned patterns are: collect keys, sort, then range the
// sorted slice; or sort the collected results before they escape
// (`paths = append(paths, p)` … `sort.Strings(paths)` — the
// findBlockLocked convention).
//
// What it deliberately cannot prove: that an unsorted result is
// consumed order-insensitively by every caller (it assumes a returned
// or state-stored slice is ordered data), or that a writer targeted
// mid-loop is order-insensitive. Per-iteration writers (one created
// inside the loop body, e.g. a fresh hash per key) are recognized and
// left alone. Float accumulation under map ranges belongs to the
// floatorder analyzer.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map-range order must not reach returned/stored slices unsorted, or io.Writer/fmt sinks",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mapIterScope(pass, fd.Type, fd.Body)
			// Function literals are their own scope: their returns and
			// sorts are what sanction their loops.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					mapIterScope(pass, lit.Type, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// mapIterScope analyzes one function body: finds map ranges directly in
// this scope and judges the appends and sink writes under them against
// the scope's sorts and returns.
func mapIterScope(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	inspectScope(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			if tv, ok := pass.Info.Types[r.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					ranges = append(ranges, r)
				}
			}
		}
		return true
	})
	if len(ranges) == 0 {
		return
	}
	sorts := collectSorts(pass, body)
	returned := collectReturned(ftype, body)
	seen := make(map[token.Pos]bool)
	for _, r := range ranges {
		checkMapRange(pass, r, sorts, returned, seen)
	}
}

// inspectScope walks n without descending into function literals.
func inspectScope(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// sortCall is one sort invocation in the scope: the canonical string of
// the sorted expression and where the call sits.
type sortCall struct {
	target string
	pos    token.Pos
}

// collectSorts finds every sort.*/slices.Sort* call in the scope,
// keyed by the expression being sorted.
func collectSorts(pass *Pass, body *ast.BlockStmt) []sortCall {
	var sorts []sortCall
	inspectScope(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		sorting := false
		switch fn.Pkg().Path() {
		case "sort":
			switch fn.Name() {
			case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Sort", "Stable":
				sorting = true
			}
		case "slices":
			sorting = strings.HasPrefix(fn.Name(), "Sort")
		}
		if sorting {
			sorts = append(sorts, sortCall{target: types.ExprString(ast.Unparen(call.Args[0])), pos: call.Pos()})
		}
		return true
	})
	return sorts
}

// collectReturned gathers the canonical strings of expressions that
// escape through return statements, plus named result identifiers.
func collectReturned(ftype *ast.FuncType, body *ast.BlockStmt) map[string]bool {
	returned := make(map[string]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				returned[name.Name] = true
			}
		}
	}
	inspectScope(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			ast.Inspect(res, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.Ident:
					returned[e.Name] = true
				case *ast.SelectorExpr:
					returned[types.ExprString(e)] = true
				}
				return true
			})
		}
		return true
	})
	return returned
}

// checkMapRange judges one map range: appends to escaping slices must be
// dominated by a later sort; sink writes are flagged unless the writer
// is created inside the loop body.
func checkMapRange(pass *Pass, r *ast.RangeStmt, sorts []sortCall, returned map[string]bool, seen map[token.Pos]bool) {
	inspectScope(r.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			target, pos, ok := appendTarget(n)
			if !ok || seen[pos] {
				return true
			}
			if sortedAfter(sorts, target, r.End()) {
				return true
			}
			if !escapes(target, n.Lhs[0], returned) {
				return true
			}
			seen[pos] = true
			pass.Reportf(pos, "slice %s accumulates in map-range order and escapes unsorted: map iteration order is random — sort the keys first or sort %s after the loop", target, target)
		case *ast.CallExpr:
			desc, fresh := sinkCall(pass, n, r.Body)
			if desc == "" || fresh || seen[n.Pos()] {
				return true
			}
			seen[n.Pos()] = true
			pass.Reportf(n.Pos(), "%s inside range over map: output byte order follows map iteration — collect and sort the keys, then range the sorted slice", desc)
		}
		return true
	})
}

// appendTarget matches `x = append(x, ...)` (including x.f forms) and
// returns the canonical target string.
func appendTarget(as *ast.AssignStmt) (string, token.Pos, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
		return "", token.NoPos, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return "", token.NoPos, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return "", token.NoPos, false
	}
	target := types.ExprString(ast.Unparen(as.Lhs[0]))
	if types.ExprString(ast.Unparen(call.Args[0])) != target {
		return "", token.NoPos, false
	}
	return target, as.Pos(), true
}

// sortedAfter reports whether target is sorted at a position after the
// loop ends. A sort inside the loop body would re-sort per iteration —
// wasteful but still deterministic at the end, so position after the
// range is what establishes order.
func sortedAfter(sorts []sortCall, target string, rangeEnd token.Pos) bool {
	for _, s := range sorts {
		if s.target == target && s.pos >= rangeEnd {
			return true
		}
	}
	return false
}

// escapes reports whether the append target leaves the function in
// ordered form: it is returned (directly or inside a larger return
// expression), it is a named result, or it is stored into structure
// state (a selector target).
func escapes(target string, lhs ast.Expr, returned map[string]bool) bool {
	if returned[target] {
		return true
	}
	_, isSel := ast.Unparen(lhs).(*ast.SelectorExpr)
	return isSel
}

// sinkCall classifies call as an ordered-output sink. fresh reports that
// the sink is created inside loopBody, i.e. per-iteration, so the write
// order within one iteration is self-contained.
func sinkCall(pass *Pass, call *ast.CallExpr, loopBody *ast.BlockStmt) (desc string, fresh bool) {
	fn := calleeFunc(pass.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	if recvType(fn) == nil {
		if fn.Pkg().Path() == "fmt" && (strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
			// Fprint writes to its first argument; Print to stdout.
			if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
				return "fmt." + fn.Name(), declaredIn(pass, call.Args[0], loopBody)
			}
			return "fmt." + fn.Name(), false
		}
		return "", false
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	case "Encode":
		if !typeIs(recvType(fn), "encoding/json", "Encoder") {
			return "", false
		}
	default:
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return types.ExprString(sel.X) + "." + fn.Name(), declaredIn(pass, sel.X, loopBody)
}

// declaredIn reports whether the root identifier of e is declared inside
// body (a per-iteration local).
func declaredIn(pass *Pass, e ast.Expr, body *ast.BlockStmt) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil || obj.Pos() == token.NoPos {
		return false
	}
	return obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// rootIdent unwraps selector/index/slice/star/paren chains to the base
// identifier, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}
