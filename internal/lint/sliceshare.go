package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SliceShare flags the NameNode.AddBlock aliasing class (PR 8): an
// exported method on a stateful type returning a slice or map — bare,
// inside a struct, or via a local that was stored into receiver state —
// that still shares its backing store with the state a background sweep
// mutates in place. The caller then reads its "snapshot" lock-free while
// re-replication, liveness sweeps, or scrubbing rewrite the elements
// under it: a data race the race detector only sees on workloads that
// interleave just so. The sanctioned pattern is the AddBlock fix —
// detach before returning (`append([]T(nil), x...)`, slices.Clone,
// maps.Clone, or a fresh make+copy).
//
// Stateful types are structs carrying a sync.Mutex/RWMutex field
// (anywhere in the module) plus every struct declared in the registered
// shared-state layers (internal/dfs, internal/yarn, internal/sched).
// The tracking is intra-procedural and heuristic: locals assigned from
// receiver state (or stored into it) are tainted; non-append calls are
// assumed to return fresh or self-managed data; a defensive-copy
// assignment to a tainted local's field clears that local. It cannot
// prove deep detachment (elements of a shallow-copied slice may
// themselves hold shared slices) or see aliasing that crosses method
// boundaries — those remain the race detector's job.
var SliceShare = &Analyzer{
	Name: "sliceshare",
	Doc:  "exported methods on stateful types must not return struct-field slices/maps without a defensive copy",
	Run:  runSliceShare,
}

// sliceSharePackages are the shared-state layers in which every struct
// counts as stateful, mutex field or not: their objects are mutated by
// background sweeps while callers hold returned snapshots.
var sliceSharePackages = map[string]bool{
	modulePrefix + "/internal/dfs":   true,
	modulePrefix + "/internal/yarn":  true,
	modulePrefix + "/internal/sched": true,
}

func runSliceShare(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || !fd.Name.IsExported() {
				continue
			}
			recvObj := receiverObject(pass.Info, fd)
			if recvObj == nil || !statefulType(recvObj.Type()) {
				continue
			}
			st := &shareState{
				pass:    pass,
				fd:      fd,
				rooted:  map[types.Object]bool{recvObj: true},
				recvObj: recvObj,
			}
			st.walk(fd.Body)
		}
	}
	return nil
}

// receiverObject resolves the declared receiver variable, or nil for
// anonymous receivers (which cannot leak state they cannot name).
func receiverObject(info *types.Info, fd *ast.FuncDecl) types.Object {
	if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	name := fd.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil
	}
	return info.Defs[name]
}

// statefulType reports whether t is a struct type that owns shared
// mutable state: it carries a mutex field, or it is declared in one of
// the registered shared-state packages.
func statefulType(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	if obj := named.Obj(); obj.Pkg() != nil && sliceSharePackages[obj.Pkg().Path()] {
		return true
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if typeIs(ft, "sync", "Mutex") || typeIs(ft, "sync", "RWMutex") {
			return true
		}
	}
	return false
}

// shareState tracks, through one method body in source order, which
// local variables alias receiver state.
type shareState struct {
	pass    *Pass
	fd      *ast.FuncDecl
	rooted  map[types.Object]bool
	recvObj types.Object
}

// walk processes the body in source order. ast.Inspect visits nodes in
// position order, which is exactly the linear approximation the taint
// tracking wants; function literals are skipped (their own returns are
// not this method's returns, and captured aliasing through goroutines is
// beyond a lint pass).
func (st *shareState) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.ValueSpec:
			st.valueSpec(n)
		case *ast.RangeStmt:
			st.rangeVars(n)
		case *ast.ReturnStmt:
			st.returnStmt(n)
		}
		return true
	})
}

// assign applies one assignment to the taint state.
func (st *shareState) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		var rhs ast.Expr
		switch {
		case len(as.Rhs) == len(as.Lhs):
			rhs = as.Rhs[i]
		case len(as.Rhs) == 1:
			// Tuple assignment (f, ok := m[k]): every target gets the
			// classification of the single source.
			rhs = as.Rhs[0]
		default:
			continue
		}
		st.assignOne(lhs, rhs)
	}
}

func (st *shareState) valueSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			st.assignOne(name, vs.Values[i])
		}
	}
}

func (st *shareState) assignOne(lhs, rhs ast.Expr) {
	tainted := st.stateExpr(rhs)
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := st.pass.Info.Defs[l]
		if obj == nil {
			obj = st.pass.Info.Uses[l]
		}
		if obj == nil {
			return
		}
		if tainted && aliasingType(obj.Type()) {
			st.rooted[obj] = true
		} else {
			delete(st.rooted, obj)
		}
	default:
		root := rootIdent(lhs)
		if root == nil {
			return
		}
		obj := st.pass.Info.Uses[root]
		if obj == nil {
			return
		}
		switch {
		case st.rooted[obj] && obj != st.recvObj && detachCopy(st.pass.Info, rhs):
			// The AddBlock fix shape: a tainted local detaches its shared
			// field before escaping. One detached field clears the local —
			// multi-shared-field structs are beyond this approximation.
			delete(st.rooted, obj)
		case st.rooted[obj]:
			// Store into state: every aliasing variable mentioned on the
			// right now shares backing with receiver state
			// (f.info.Blocks = append(f.info.Blocks, loc) roots loc).
			st.taintIdents(rhs)
		case tainted:
			// State flowing into a local's field taints the local.
			st.rooted[obj] = true
		}
	}
}

// rangeVars taints loop variables drawn from a stateful collection:
// ranging over state yields element copies whose slice/map fields still
// share backing stores.
func (st *shareState) rangeVars(r *ast.RangeStmt) {
	if !st.stateExpr(r.X) {
		return
	}
	for _, v := range []ast.Expr{r.Key, r.Value} {
		id, ok := v.(*ast.Ident)
		if !ok {
			continue
		}
		if obj := st.pass.Info.Defs[id]; obj != nil && aliasingType(obj.Type()) {
			st.rooted[obj] = true
		}
	}
}

// returnStmt flags escaping state.
func (st *shareState) returnStmt(ret *ast.ReturnStmt) {
	if len(ret.Results) == 0 {
		// Bare return: named results carry whatever they were last
		// assigned.
		if st.fd.Type.Results == nil {
			return
		}
		for _, field := range st.fd.Type.Results.List {
			for _, name := range field.Names {
				obj := st.pass.Info.Defs[name]
				if obj != nil && st.rooted[obj] && shareyType(obj.Type()) {
					st.pass.Reportf(ret.Pos(), "exported method returns %s, which still shares receiver state: detach with a defensive copy before returning (the AddBlock bug class)", name.Name)
				}
			}
		}
		return
	}
	for _, res := range ret.Results {
		st.checkEscape(res)
	}
}

// checkEscape flags one returned expression if it aliases receiver
// state in a shareable form.
func (st *shareState) checkEscape(e ast.Expr) {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		// &T{...}: check the literal it points to.
		e = ast.Unparen(u.X)
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		for _, elt := range lit.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			st.checkEscape(v)
		}
		return
	}
	if detachCopy(st.pass.Info, e) {
		return
	}
	if !st.stateExpr(e) {
		return
	}
	tv, ok := st.pass.Info.Types[e]
	if !ok || !shareyType(tv.Type) {
		return
	}
	st.pass.Reportf(e.Pos(), "%s escapes an exported method while sharing its backing store with receiver state: a background sweep mutating the state races the caller's lock-free read — return append([]T(nil), x...) / slices.Clone / maps.Clone instead (the AddBlock bug class)", types.ExprString(e))
}

// stateExpr reports whether evaluating e yields a value that still
// references receiver state: a rooted identifier reached through
// selector/index/slice/deref chains, a sharing append, a composite
// literal embedding an aliasing field, or an address-of/type-assertion
// over state. Call results are assumed fresh (a callee owns its copying
// discipline), as are recognized defensive copies. Crucially, a value
// COPY of a non-aliasing type (string, scalar struct) detaches — that is
// what makes `append(ids, id)` over map keys clean while
// `append(blocks, loc)` is not.
func (st *shareState) stateExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj := st.pass.Info.Uses[x]
		return obj != nil && st.rooted[obj]
	case *ast.ParenExpr:
		return st.stateExpr(x.X)
	case *ast.SelectorExpr:
		return st.stateExpr(x.X)
	case *ast.IndexExpr:
		return st.stateExpr(x.X)
	case *ast.SliceExpr:
		return st.stateExpr(x.X)
	case *ast.StarExpr:
		return st.stateExpr(x.X)
	case *ast.TypeAssertExpr:
		return st.stateExpr(x.X)
	case *ast.UnaryExpr:
		// &state aliases; every other unary result is a fresh scalar.
		return x.Op == token.AND && st.stateExpr(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if st.aliasingExpr(v) && st.stateExpr(v) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		if !isAppendCall(x) || detachCopy(st.pass.Info, x) {
			return false
		}
		// append(state, ...) may return the state's own backing array
		// when capacity allows; appended values share only when their
		// type carries references (spread args share via their elements).
		if len(x.Args) > 0 && st.stateExpr(x.Args[0]) {
			return true
		}
		for _, arg := range x.Args[1:] {
			t := st.exprType(arg)
			if x.Ellipsis.IsValid() && arg == x.Args[len(x.Args)-1] {
				if sl, ok := t.Underlying().(*types.Slice); ok {
					t = sl.Elem()
				}
			}
			if t != nil && aliasingType(t) && st.stateExpr(arg) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// aliasingExpr reports whether e's static type can carry a reference.
func (st *shareState) aliasingExpr(e ast.Expr) bool {
	t := st.exprType(e)
	return t != nil && aliasingType(t)
}

func (st *shareState) exprType(e ast.Expr) types.Type {
	tv, ok := st.pass.Info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// aliasingType reports whether a value copy of t can still reference
// shared backing storage: reference types directly, and structs with a
// reference-typed field one level deep. Strings and scalars detach on
// copy.
func aliasingType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			switch u.Field(i).Type().Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
				return true
			}
		}
	case *types.Array:
		return aliasingType(u.Elem())
	}
	return false
}

// taintIdents roots every plain variable mentioned in e: used when e is
// stored into receiver state, after which those variables alias it.
func (st *shareState) taintIdents(e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj, ok := st.pass.Info.Uses[id].(*types.Var); ok && !obj.IsField() && aliasingType(obj.Type()) {
			st.rooted[obj] = true
		}
		return true
	})
}

// shareyType reports whether values of t keep live references to a
// backing store after assignment: slices and maps directly, and structs
// with a slice/map field (one level deep — returning such a struct by
// value copies the struct but shares the field's backing array).
func shareyType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map:
		return true
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			switch u.Field(i).Type().Underlying().(type) {
			case *types.Slice, *types.Map:
				return true
			}
		}
	}
	return false
}

// detachCopy recognizes the defensive-copy idioms: append onto a fresh
// empty slice, the stdlib Clone helpers, and fresh allocation.
func detachCopy(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if isAppendCall(call) {
		return len(call.Args) > 0 && freshSliceExpr(call.Args[0])
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || recvType(fn) != nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "slices":
		switch fn.Name() {
		case "Clone", "Concat", "Collect", "Sorted", "SortedFunc", "SortedStableFunc":
			return true
		}
	case "maps":
		return fn.Name() == "Clone"
	case "bytes":
		return fn.Name() == "Clone"
	}
	return false
}

// isAppendCall matches the append built-in.
func isAppendCall(call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// freshSliceExpr matches the empty-slice starts of a detach append:
// []T(nil), []T{}, or make([]T, ...).
func freshSliceExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" {
			return true
		}
		// The []T(nil) conversion.
		if _, ok := x.Fun.(*ast.ArrayType); ok && len(x.Args) == 1 {
			if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && id.Name == "nil" {
				return true
			}
		}
	}
	return false
}
