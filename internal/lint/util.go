package lint

import (
	"go/ast"
	"go/types"
)

// modulePrefix scopes the repo-specific analyzers: sentinels, registries,
// and transports are matched by their paths under this module.
const modulePrefix = "preemptsched"

// calleeFunc resolves the function or method a call invokes, or nil for
// calls through function-typed variables, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// namedOf unwraps pointers and aliases down to the named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeIs reports whether t (possibly behind pointers) is the named type
// pkgPath.name.
func typeIs(t types.Type, pkgPath, name string) bool {
	n := namedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// usedObject resolves an identifier or selector expression to the object
// it denotes, or nil.
func usedObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// isPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// recvType returns the receiver type of the method fn, or nil for
// non-methods.
func recvType(fn *types.Func) types.Type {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}
