package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// RandSrc enforces the randomness half of the determinism contract
// (DESIGN.md §11/§15): code in the module's deterministic core draws
// every random number from a seeded *rand.Rand threaded in from
// configuration (sim.NewRNG, faults.Plan.Seed, clusterd's WithSeed),
// never from math/rand's process-global source and never from a source
// seeded off the wall clock. One global rand.Intn in a victim-selection
// tiebreak makes the byte-identical replay suite pass or fail by
// coincidence: the global source is shared across goroutines, so the
// draw sequence depends on scheduling, and a time-derived seed cannot be
// written into the run report and replayed.
var RandSrc = &Analyzer{
	Name: "randsrc",
	Doc:  "deterministic packages draw randomness from a seeded *rand.Rand, never the global math/rand source or a wall-clock seed",
	Run:  runRandSrc,
}

// randPkgs are the randomness providers the analyzer polices. Both
// generations of math/rand share the global-source design flaw.
var randPkgs = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randConstructors build explicit sources rather than drawing from the
// global one; they are the sanctioned entry points, checked only for
// wall-clock seeds.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// randSrcInScope reports whether the package is part of the
// deterministic core: the root simulation package and everything under
// internal/. cmd/ binaries are thin flag-parsing shells over internal
// packages, so scoping to internal/ covers every code path a seeded run
// replays.
func randSrcInScope(path string) bool {
	return path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/internal/")
}

func runRandSrc(pass *Pass) error {
	if !randSrcInScope(pass.Pkg.Path()) {
		return nil
	}
	// seen dedupes wall-clock seeds visible from nested constructors:
	// rand.New(rand.NewSource(time.Now().UnixNano())) is one finding.
	seen := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || !randPkgs[fn.Pkg().Path()] {
				return true
			}
			if recvType(fn) != nil {
				// Methods on *rand.Rand / rand.Source: drawing from an
				// explicit source is the sanctioned pattern.
				return true
			}
			if !randConstructors[fn.Name()] {
				pass.Reportf(call.Pos(), "rand.%s draws from the process-global source: the draw sequence depends on goroutine scheduling and cannot be replayed — thread a seeded *rand.Rand from config (sim.NewRNG)", fn.Name())
				return true
			}
			for _, arg := range call.Args {
				if pos, src := wallClockSource(pass.Info, arg); src != "" && !seen[pos] {
					seen[pos] = true
					pass.Reportf(pos, "rand source seeded from %s: a wall-clock seed cannot be recorded and replayed — use a fixed literal, a flag, or a forked sim.RNG", src)
				}
			}
			return true
		})
	}
	return nil
}
