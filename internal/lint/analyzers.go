package lint

// All returns the full preemptlint suite in its canonical order. The
// order only affects tie-breaking in diagnostic sort, not semantics.
func All() []*Analyzer {
	return []*Analyzer{
		VClock,
		SentinelErr,
		LockIO,
		MetricName,
		CtxLeak,
		FaultPlan,
		DecisionLog,
		MapIter,
		SliceShare,
		RandSrc,
		FloatOrder,
	}
}
