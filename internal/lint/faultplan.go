package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// FaultPlan sanity-checks fault-injection configuration at construction:
// every *Rate field of a faults.Plan literal must be a probability in
// [0,1] (a rate of 5 silently saturates to "always", which reads like a
// tuned experiment but isn't), and Seed must not be derived from the
// wall clock — a time-seeded chaos run can never be replayed, which
// defeats the point of recording the seed in the run report. The
// compute-node fault fields get the same treatment: a constant negative
// *Node index or *At/*For duration would be rejected by Plan.Validate at
// runtime, so flag it where it is written instead.
var FaultPlan = &Analyzer{
	Name: "faultplan",
	Doc:  "fault Plan rates must be literal probabilities in [0,1]; seeds must be reproducible; node indexes and fault times must be non-negative",
	Run:  runFaultPlan,
}

const faultsPkg = modulePrefix + "/internal/faults"

func runFaultPlan(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				tv, ok := pass.Info.Types[n]
				if !ok || !typeIs(tv.Type, faultsPkg, "Plan") {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					checkFaultField(pass, key.Name, kv.Value)
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					tv, ok := pass.Info.Types[sel.X]
					if !ok || !typeIs(tv.Type, faultsPkg, "Plan") {
						continue
					}
					checkFaultField(pass, sel.Sel.Name, n.Rhs[i])
				}
			}
			return true
		})
	}
	return nil
}

// checkFaultField validates one Plan field value: rates must be constant
// probabilities in [0,1], seeds must not come from the wall clock.
func checkFaultField(pass *Pass, field string, value ast.Expr) {
	switch {
	case strings.HasSuffix(field, "Rate"):
		tv, ok := pass.Info.Types[value]
		if !ok || tv.Value == nil {
			return
		}
		v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
		if v < 0 || v > 1 {
			pass.Reportf(value.Pos(), "fault rate %s = %v is outside [0,1]: rates are probabilities, not counts or percentages", field, v)
		}
	case field == "Seed":
		if pos, fn := wallClockSource(pass.Info, value); fn != "" {
			pass.Reportf(pos, "fault seed derived from %s: a wall-clock seed makes the chaos run unreplayable — use a fixed literal or a flag", fn)
		}
	case strings.HasSuffix(field, "Node"):
		if v, ok := constInt(pass.Info, value); ok && v < 0 {
			pass.Reportf(value.Pos(), "node index %s = %d is negative: NodeManager indexes start at 0", field, v)
		}
	case strings.HasSuffix(field, "At"), strings.HasSuffix(field, "For"):
		if v, ok := constInt(pass.Info, value); ok && v < 0 {
			pass.Reportf(value.Pos(), "fault time %s is negative: virtual-clock times and durations cannot precede the run", field)
		}
	}
}

// constInt extracts a constant integer value (durations included) from
// e, when the type checker resolved one.
func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

// wallClockSource finds a time.Now-family call inside e, returning its
// position and name.
func wallClockSource(info *types.Info, e ast.Expr) (pos token.Pos, name string) {
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return true
		}
		switch fn.Name() {
		case "Now", "Since", "Until":
			pos, name = sel.Pos(), "time."+fn.Name()
		}
		return name == ""
	})
	return pos, name
}
