// Package lint is a repo-specific static-analysis suite ("preemptlint")
// that proves, on every build, the invariants the chaos tests can only
// sample: simulator code stays on the virtual clock, DFS sentinel errors
// are matched with errors.Is (wire-decoded errors arrive wrapped), mutexes
// are not held across Transport/Store/network I/O, metric names are
// registered dot-separated constants, goroutines in the long-running
// layers have a cancellation path, fault plans stay physically
// meaningful (probabilities in [0,1], seeds not derived from wall clock),
// and every Algorithm 1 verdict taken in the scheduler layers is
// journaled into the decision-provenance flight recorder.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// Analyzer, Pass, Diagnostic — but is built entirely on the standard
// library (go/ast, go/types, and the gc source importer) so the module
// keeps its zero-dependency property. Packages are loaded and
// type-checked from source by the loader in load.go; cmd/preemptlint is
// the multichecker driver.
//
// Suppression: a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// suppresses matching diagnostics on the same line, or — when the comment
// stands alone on its line — on the following line. The reason is
// mandatory; a directive without one is itself reported (see ignore.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding
	// (or "lint" for framework-level findings such as malformed
	// suppression directives).
	Analyzer string `json:"analyzer"`
	// Pos locates the finding.
	Pos token.Position `json:"-"`
	// Message states the violated invariant at this site.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run inspects one type-checked package and reports findings
	// through the pass.
	Run func(*Pass) error
	// AfterAll, when set, runs once after every package has been
	// analyzed — the hook module-wide checks (e.g. duplicate metric
	// registrations across packages) report from. State is accumulated
	// in the run's Shared map during Run.
	AfterAll func(sh *Shared, report func(token.Position, string))
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds the type information recorded while checking Files.
	Info *types.Info
	// Shared is the cross-package accumulator for module-wide checks,
	// shared by every pass of one run.
	Shared *Shared

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Shared is a keyed scratch space analyzers use to accumulate
// module-wide state across packages. Packages are analyzed sequentially,
// so no locking is needed.
type Shared struct {
	vals map[string]any
}

// Get returns the value stored under key, or nil.
func (s *Shared) Get(key string) any { return s.vals[key] }

// Put stores v under key.
func (s *Shared) Put(key string, v any) { s.vals[key] = v }

// Run applies every analyzer to every unit, applies //lint:ignore
// suppression, and returns the surviving diagnostics sorted by position.
// Framework-level diagnostics (malformed directives) are included.
func Run(units []*Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	sh := &Shared{vals: make(map[string]any)}
	var diags []Diagnostic
	collect := func(d Diagnostic) { diags = append(diags, d) }

	for _, u := range units {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     u.Fset,
				Files:    u.Files,
				Pkg:      u.Pkg,
				Info:     u.Info,
				Shared:   sh,
				report:   collect,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, u.Pkg.Path(), err)
			}
		}
	}
	for _, a := range analyzers {
		if a.AfterAll == nil {
			continue
		}
		name := a.Name
		a.AfterAll(sh, func(pos token.Position, msg string) {
			collect(Diagnostic{Analyzer: name, Pos: pos, Message: msg})
		})
	}

	idx := buildIgnoreIndex(units)
	kept := diags[:0]
	for _, d := range diags {
		if !idx.suppressed(d) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, idx.malformed...)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	kept = append(kept, idx.staleDirectives(ran)...)

	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// Names returns the analyzer names joined for usage strings.
func Names(analyzers []*Analyzer) string {
	names := make([]string, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}
