package core

import (
	"context"
	"time"
)

// Backoff computes capped, jittered exponential retry delays. It is the
// one retry-pacing policy every client path in the repo shares: the DFS
// client's RPC retries, the cluster daemon's wire-protocol client, and the
// load generator's resubmission loop all pace themselves with it, so "how
// hard do we hammer a struggling server" is a single tunable instead of a
// per-call-site accident.
//
// The delay before retry attempt n (1-based) is Base<<(n-1), capped at
// Cap, plus up to one Base unit of uniform jitter. Full-window jitter
// would desynchronize better, but one-Base jitter preserves the DFS
// client's historical pacing exactly, and the cap is what matters under
// sustained overload: without it an exponential schedule quickly dwarfs
// any per-request deadline and the caller times out sleeping.
type Backoff struct {
	// Base is the delay before the first retry; zero or negative disables
	// sleeping entirely (retries go back-to-back).
	Base time.Duration
	// Cap bounds the exponential term; zero or negative means uncapped.
	Cap time.Duration
}

// Delay returns the pause before retry attempt (1-based). intn, when
// non-nil, supplies the jitter draw as a uniform integer in [0, n); pass
// a seeded source to keep a run deterministic, or nil for no jitter.
func (b Backoff) Delay(attempt int, intn func(n int64) int64) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	if attempt < 1 {
		attempt = 1
	}
	d := b.Base
	// Shift without overflowing: once past the cap (or 63 bits) the
	// exponential term saturates.
	for i := 1; i < attempt; i++ {
		if b.Cap > 0 && d >= b.Cap {
			break
		}
		if d > maxDuration/2 {
			d = maxDuration
			break
		}
		d <<= 1
	}
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	if intn != nil {
		d += time.Duration(intn(int64(b.Base) + 1))
	}
	return d
}

const maxDuration = time.Duration(1<<63 - 1)

// Sleep pauses for d or until ctx is cancelled, whichever comes first,
// returning ctx.Err on cancellation. It is the context-honoring
// replacement for time.Sleep in retry and poll loops: a draining daemon
// must not sit out a multi-second backoff before noticing shutdown.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retry runs op up to attempts times, pacing retries with b and stopping
// early on success, on a non-retryable error, or when ctx is cancelled
// (between attempts and during backoff sleeps — never mid-op). retryable
// decides whether an error is worth another attempt; nil retries every
// error. intn supplies jitter as in Backoff.Delay. onRetry, when non-nil,
// observes each retry attempt (1-based) before its backoff sleep —
// callers hang their retry counters there.
func Retry(ctx context.Context, attempts int, b Backoff, intn func(int64) int64,
	retryable func(error) bool, onRetry func(attempt int), op func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if onRetry != nil {
				onRetry(attempt)
			}
			if serr := Sleep(ctx, b.Delay(attempt, intn)); serr != nil {
				return err // cancelled mid-backoff: surface the op's error
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			return err
		}
		if err = op(); err == nil || (retryable != nil && !retryable(err)) {
			return err
		}
	}
	return err
}
