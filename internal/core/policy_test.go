package core

import (
	"testing"
	"testing/quick"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/storage"
)

func candGiB(footprintGiB float64, progress time.Duration) Candidate {
	return Candidate{
		Task:            cluster.TaskID{Job: 1},
		Demand:          cluster.Resources{CPUMillis: 1000, MemBytes: cluster.GiB(footprintGiB)},
		UnsavedProgress: progress,
		FootprintBytes:  cluster.GiB(footprintGiB),
		DirtyBytes:      cluster.GiB(footprintGiB / 10),
	}
}

func TestParsePolicy(t *testing.T) {
	for s, want := range map[string]Policy{
		"wait": PolicyWait, "kill": PolicyKill,
		"checkpoint": PolicyCheckpoint, "basic": PolicyCheckpoint,
		"adaptive": PolicyAdaptive,
	} {
		got, err := ParsePolicy(s)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestPolicyStrings(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyWait: "wait", PolicyKill: "kill",
		PolicyCheckpoint: "checkpoint", PolicyAdaptive: "adaptive",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestCheckpointOverheadFormula(t *testing.T) {
	// A clean device with 1 GB/s both ways and no latency: overhead for a
	// full dump of 2 GB must be write(2GB) + read(2GB) = 4 s.
	dev := storage.NewCustomDevice(1e9, 0)
	c := Candidate{FootprintBytes: 2e9, DirtyBytes: 2e8}
	if got := CheckpointOverhead(c, dev, 0); got != 4*time.Second {
		t.Errorf("overhead = %v, want 4s", got)
	}
	// With a previous checkpoint the dump is incremental (0.2 GB) but the
	// restore still reads the full footprint: 0.2 + 2 = 2.2 s.
	c.HasCheckpoint = true
	if got := CheckpointOverhead(c, dev, 0); got != 2200*time.Millisecond {
		t.Errorf("incremental overhead = %v, want 2.2s", got)
	}
	// Queue time adds in: reserve 3 s of prior work on the device.
	dev.Reserve(0, 3*time.Second)
	if got := CheckpointOverhead(c, dev, 0); got != 5200*time.Millisecond {
		t.Errorf("queued overhead = %v, want 5.2s", got)
	}
}

func TestDecidePreemptionAdaptiveThreshold(t *testing.T) {
	dev := storage.NewCustomDevice(1e9, 0) // overhead for 1 GiB full: ~2.15 s
	young := candGiB(1, time.Second)       // progress below overhead
	old := candGiB(1, time.Minute)         // progress above overhead
	if got := DecidePreemption(PolicyAdaptive, young, dev, 0); got != ActionKill {
		t.Errorf("young task: %v, want kill", got)
	}
	if got := DecidePreemption(PolicyAdaptive, old, dev, 0); got != ActionCheckpointFull {
		t.Errorf("old task: %v, want checkpoint-full", got)
	}
	old.HasCheckpoint = true
	if got := DecidePreemption(PolicyAdaptive, old, dev, 0); got != ActionCheckpointIncremental {
		t.Errorf("old task with image: %v, want incremental", got)
	}
}

func TestDecidePreemptionFixedPolicies(t *testing.T) {
	dev := storage.NewDevice(storage.HDD)
	c := candGiB(5, time.Hour)
	if got := DecidePreemption(PolicyKill, c, dev, 0); got != ActionKill {
		t.Errorf("kill policy: %v", got)
	}
	if got := DecidePreemption(PolicyWait, c, dev, 0); got != ActionKill {
		t.Errorf("wait policy (forced preemption): %v", got)
	}
	if got := DecidePreemption(PolicyCheckpoint, c, dev, 0); got != ActionCheckpointFull {
		t.Errorf("checkpoint policy: %v", got)
	}
	c.HasCheckpoint = true
	if got := DecidePreemption(PolicyCheckpoint, c, dev, 0); got != ActionCheckpointIncremental {
		t.Errorf("checkpoint policy with image: %v", got)
	}
}

// The crossover property behind Fig. 4/6: for a task with fixed progress,
// slow storage ⇒ kill, fast storage ⇒ checkpoint, and the decision is
// monotone in bandwidth.
func TestAdaptiveCrossoverMonotoneInBandwidth(t *testing.T) {
	c := candGiB(5, 30*time.Second)
	prevCheckpointed := false
	for _, gbps := range []float64{0.1, 0.3, 0.5, 1, 2, 3, 4, 5} {
		dev := storage.NewCustomDevice(gbps*1e9, 0)
		action := DecidePreemption(PolicyAdaptive, c, dev, 0)
		if prevCheckpointed && !action.IsCheckpoint() {
			t.Fatalf("decision flipped back to kill at %.1f GB/s", gbps)
		}
		if action.IsCheckpoint() {
			prevCheckpointed = true
		}
	}
	if !prevCheckpointed {
		t.Error("never checkpointed even at 5 GB/s")
	}
	// And the slowest setting must kill (30 s progress vs ~100 s overhead).
	slow := storage.NewCustomDevice(0.1e9, 0)
	if DecidePreemption(PolicyAdaptive, c, slow, 0).IsCheckpoint() {
		t.Error("checkpointed on 0.1 GB/s storage with 30s progress")
	}
}

func TestSelectVictimsPriorityThenCost(t *testing.T) {
	dev := storage.NewDevice(storage.SSD)
	devFor := func(Candidate) *storage.Device { return dev }
	mk := func(job int64, prio cluster.Priority, footGiB float64) Candidate {
		c := candGiB(footGiB, time.Hour)
		c.Task = cluster.TaskID{Job: cluster.JobID(job)}
		c.Priority = prio
		return c
	}
	cands := []Candidate{
		mk(1, 5, 1), // higher priority: spared
		mk(2, 0, 8), // low priority, expensive dump
		mk(3, 0, 1), // low priority, cheap dump: first victim
	}
	need := cluster.Resources{CPUMillis: 1000, MemBytes: cluster.GiB(1)}
	victims, ok := SelectVictims(cands, need, 0, devFor)
	if !ok || len(victims) != 1 || victims[0].Task.Job != 3 {
		t.Fatalf("victims = %+v (ok=%v), want just job 3", victims, ok)
	}
	// Needing more takes the expensive low-priority task next.
	need = cluster.Resources{CPUMillis: 2000, MemBytes: cluster.GiB(2)}
	victims, ok = SelectVictims(cands, need, 0, devFor)
	if !ok || len(victims) != 2 || victims[0].Task.Job != 3 || victims[1].Task.Job != 2 {
		t.Fatalf("victims = %+v (ok=%v), want jobs 3 then 2", victims, ok)
	}
}

func TestSelectVictimsInsufficient(t *testing.T) {
	dev := storage.NewDevice(storage.NVM)
	cands := []Candidate{candGiB(1, time.Minute)}
	need := cluster.Resources{CPUMillis: 99_000, MemBytes: cluster.GiB(99)}
	if v, ok := SelectVictims(cands, need, 0, func(Candidate) *storage.Device { return dev }); ok || v != nil {
		t.Errorf("impossible need returned victims %v (ok=%v)", v, ok)
	}
}

func TestSelectVictimsZeroNeed(t *testing.T) {
	dev := storage.NewDevice(storage.NVM)
	cands := []Candidate{candGiB(1, time.Minute)}
	v, ok := SelectVictims(cands, cluster.Resources{}, 0, func(Candidate) *storage.Device { return dev })
	if !ok || len(v) != 0 {
		t.Errorf("zero need: victims=%v ok=%v, want none/true", v, ok)
	}
}

// Property: SelectVictims either returns nil or a set whose demand covers
// the need, and never includes a higher-priority task while a
// lower-priority candidate was left unpicked.
func TestSelectVictimsProperty(t *testing.T) {
	dev := storage.NewDevice(storage.SSD)
	devFor := func(Candidate) *storage.Device { return dev }
	f := func(prios []uint8, needCPU uint16) bool {
		if len(prios) > 20 {
			prios = prios[:20]
		}
		cands := make([]Candidate, len(prios))
		for i, p := range prios {
			cands[i] = candGiB(1, time.Hour)
			cands[i].Task = cluster.TaskID{Job: cluster.JobID(i)}
			cands[i].Priority = cluster.Priority(p % 12)
		}
		need := cluster.Resources{CPUMillis: int64(needCPU) % 20_000}
		victims, ok := SelectVictims(cands, need, 0, devFor)
		if !ok {
			// Must genuinely be infeasible.
			var all cluster.Resources
			for _, c := range cands {
				all = all.Add(c.Demand)
			}
			return !need.Fits(all)
		}
		var freed cluster.Resources
		maxVictimPrio := cluster.Priority(-1)
		picked := map[cluster.JobID]bool{}
		for _, v := range victims {
			freed = freed.Add(v.Demand)
			picked[v.Task.Job] = true
			if v.Priority > maxVictimPrio {
				maxVictimPrio = v.Priority
			}
		}
		if !need.Fits(freed) {
			return false
		}
		// No unpicked candidate may have priority strictly below the
		// highest-priority victim... unless dropping a victim would
		// uncover the need; with uniform demands the simple check holds.
		for _, c := range cands {
			if !picked[c.Task.Job] && c.Priority < maxVictimPrio {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecideRestore(t *testing.T) {
	local := storage.NewCustomDevice(1e9, 0)
	remote := storage.NewCustomDevice(1e9, 0)
	rc := RestoreCosts{
		FootprintBytes: 1e9,
		LocalDev:       local,
		RemoteDev:      remote,
		NetBandwidth:   1e9,
	}
	// Idle devices: local read 1 s vs remote net 1 s + read 1 s.
	if got := DecideRestore(rc, 0); got != RestoreLocal {
		t.Errorf("idle devices: %v, want local", got)
	}
	// Busy local queue (5 s) makes remote cheaper: 5+1 > 1+1.
	local.Reserve(0, 5*time.Second)
	if got := DecideRestore(rc, 0); got != RestoreRemote {
		t.Errorf("busy local: %v, want remote", got)
	}
	if rc.LocalOverhead(0) != 6*time.Second {
		t.Errorf("LocalOverhead = %v", rc.LocalOverhead(0))
	}
	if rc.RemoteOverhead(0) != 2*time.Second {
		t.Errorf("RemoteOverhead = %v", rc.RemoteOverhead(0))
	}
}

func TestActionStrings(t *testing.T) {
	if ActionKill.String() != "kill" || ActionCheckpointFull.String() != "checkpoint-full" ||
		ActionCheckpointIncremental.String() != "checkpoint-incremental" {
		t.Error("action names changed")
	}
	if ActionKill.IsCheckpoint() || !ActionCheckpointFull.IsCheckpoint() || !ActionCheckpointIncremental.IsCheckpoint() {
		t.Error("IsCheckpoint misclassifies")
	}
	if RestoreLocal.String() != "local" || RestoreRemote.String() != "remote" {
		t.Error("placement names changed")
	}
}
