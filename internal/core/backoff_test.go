package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelayExponentialAndCap(t *testing.T) {
	b := Backoff{Base: time.Millisecond, Cap: 8 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		8 * time.Millisecond,
		8 * time.Millisecond, // capped
		8 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i+1, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestBackoffDelayJitterBounded(t *testing.T) {
	b := Backoff{Base: time.Millisecond}
	intn := func(n int64) int64 { return n - 1 } // max jitter draw
	if got := b.Delay(1, intn); got != 2*time.Millisecond {
		t.Fatalf("max jitter delay = %v, want 2ms", got)
	}
	if got := b.Delay(1, func(int64) int64 { return 0 }); got != time.Millisecond {
		t.Fatalf("zero jitter delay = %v, want 1ms", got)
	}
}

func TestBackoffDelayZeroBase(t *testing.T) {
	if got := (Backoff{}).Delay(5, nil); got != 0 {
		t.Fatalf("zero-base delay = %v, want 0", got)
	}
}

func TestBackoffDelayNoOverflow(t *testing.T) {
	b := Backoff{Base: time.Hour}
	if got := b.Delay(200, nil); got <= 0 {
		t.Fatalf("uncapped huge attempt overflowed to %v", got)
	}
}

func TestSleepHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, time.Minute); err == nil {
		t.Fatal("Sleep on cancelled ctx returned nil")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled Sleep took %v", elapsed)
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	calls := 0
	err := Retry(context.Background(), 5, Backoff{}, nil, nil, nil, func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want nil/3", err, calls)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	permanent := errors.New("permanent")
	calls := 0
	err := Retry(context.Background(), 5, Backoff{}, nil,
		func(err error) bool { return !errors.Is(err, permanent) }, nil,
		func() error { calls++; return permanent })
	if !errors.Is(err, permanent) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want permanent/1", err, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	transient := errors.New("transient")
	calls, retries := 0, 0
	err := Retry(context.Background(), 4, Backoff{}, nil, nil,
		func(int) { retries++ },
		func() error { calls++; return transient })
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want transient", err)
	}
	if calls != 4 || retries != 3 {
		t.Fatalf("calls=%d retries=%d, want 4/3", calls, retries)
	}
}

func TestRetryCancelledBetweenAttempts(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("transient")
	calls := 0
	err := Retry(ctx, 100, Backoff{Base: time.Millisecond}, nil, nil, nil, func() error {
		calls++
		cancel()
		return transient
	})
	if !errors.Is(err, transient) {
		t.Fatalf("err = %v, want the op's transient error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled during first backoff)", calls)
	}
}

func TestRetryCancelledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Retry(ctx, 3, Backoff{}, nil, nil, nil, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("err=%v calls=%d, want context.Canceled/0", err, calls)
	}
}
