// Package core implements the paper's primary contribution: adaptive
// checkpoint-based preemption for cluster schedulers.
//
// It provides, exactly as Section 4 defines them:
//
//   - the checkpoint cost model
//     (overhead = size/bw_write + size/bw_read + queue_time_dump);
//   - Algorithm 1, adaptive preemption: checkpoint a victim only when its
//     unsaved progress exceeds the estimated overhead, else kill it, and
//     use incremental dumps whenever a previous checkpoint exists;
//   - Algorithm 2, adaptive resumption: restore locally or remotely
//     depending on which estimated overhead is lower;
//   - cost-aware victim selection: among preemptable tasks, evict those
//     with the lowest estimated checkpoint cost first.
//
// Both the trace-driven simulator (internal/sched) and the mini-YARN
// framework (internal/yarn) consume these functions, so the policy under
// evaluation is one implementation, not two.
package core

import (
	"fmt"
	"sort"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

// Policy enumerates the preemption policies the paper compares.
type Policy int

const (
	// PolicyWait never preempts: arriving work waits for running tasks.
	PolicyWait Policy = iota + 1
	// PolicyKill is the baseline used by production schedulers: victims
	// are killed and later restarted from scratch.
	PolicyKill
	// PolicyCheckpoint always checkpoints victims (the "basic"
	// checkpoint-based preemption of Section 3).
	PolicyCheckpoint
	// PolicyAdaptive applies Algorithm 1/2 (Section 4).
	PolicyAdaptive
)

func (p Policy) String() string {
	switch p {
	case PolicyWait:
		return "wait"
	case PolicyKill:
		return "kill"
	case PolicyCheckpoint:
		return "checkpoint"
	case PolicyAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// ParsePolicy converts a CLI string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "wait":
		return PolicyWait, nil
	case "kill":
		return PolicyKill, nil
	case "checkpoint", "basic":
		return PolicyCheckpoint, nil
	case "adaptive":
		return PolicyAdaptive, nil
	default:
		return 0, fmt.Errorf("core: unknown policy %q (want wait|kill|checkpoint|adaptive)", s)
	}
}

// Candidate describes one running task considered for preemption.
type Candidate struct {
	Task     cluster.TaskID
	Priority cluster.Priority
	// Demand is the resource reservation that preempting this task frees.
	Demand cluster.Resources
	// UnsavedProgress is the useful compute a kill would lose: time run
	// since the task started or since its last checkpoint was taken.
	UnsavedProgress time.Duration
	// FootprintBytes is the task's full (logical) memory footprint — the
	// amount a full dump writes and a restore reads.
	FootprintBytes int64
	// DirtyBytes is the logical size of the soft-dirty region; it is what
	// an incremental dump writes. Ignored unless HasCheckpoint.
	DirtyBytes int64
	// HasCheckpoint records whether a previous image exists, enabling an
	// incremental dump.
	HasCheckpoint bool
}

// DumpBytes returns the bytes a checkpoint of this candidate writes: the
// dirty region if an incremental dump is possible, the full footprint
// otherwise.
func (c Candidate) DumpBytes() int64 {
	if c.HasCheckpoint {
		return c.DirtyBytes
	}
	return c.FootprintBytes
}

// CheckpointOverhead is the cost model of Algorithm 1:
//
//	overhead = dump_size/bw_write + restore_size/bw_read + queue_time_dump
//
// The dump writes only the (possibly incremental) dump bytes, while the
// eventual restore must read the full footprint; the queue term is how
// long the node's checkpoint queue delays the dump (Section 5.2.2 runs
// checkpoints sequentially per node).
func CheckpointOverhead(c Candidate, dev *storage.Device, now sim.Time) time.Duration {
	return dev.WriteTime(c.DumpBytes()) + dev.ReadTime(c.FootprintBytes) + dev.QueueDelay(now)
}

// PreemptAction is the outcome of Algorithm 1 for one victim.
type PreemptAction int

const (
	// ActionKill destroys the task; it will later restart from scratch
	// (or from its previous checkpoint if one exists).
	ActionKill PreemptAction = iota + 1
	// ActionCheckpointFull suspends the task with a full dump.
	ActionCheckpointFull
	// ActionCheckpointIncremental suspends the task dumping only dirty
	// pages against its previous image.
	ActionCheckpointIncremental
)

func (a PreemptAction) String() string {
	switch a {
	case ActionKill:
		return "kill"
	case ActionCheckpointFull:
		return "checkpoint-full"
	case ActionCheckpointIncremental:
		return "checkpoint-incremental"
	default:
		return fmt.Sprintf("PreemptAction(%d)", int(a))
	}
}

// IsCheckpoint reports whether the action saves task state.
func (a PreemptAction) IsCheckpoint() bool {
	return a == ActionCheckpointFull || a == ActionCheckpointIncremental
}

// DecidePreemption implements Algorithm 1 for a single victim under the
// given policy. dev is the storage device the checkpoint would be written
// to on the victim's node, at virtual time now.
func DecidePreemption(policy Policy, c Candidate, dev *storage.Device, now sim.Time) PreemptAction {
	checkpointAction := ActionCheckpointFull
	if c.HasCheckpoint {
		checkpointAction = ActionCheckpointIncremental
	}
	switch policy {
	case PolicyKill, PolicyWait:
		return ActionKill
	case PolicyCheckpoint:
		return checkpointAction
	case PolicyAdaptive:
		if c.UnsavedProgress > CheckpointOverhead(c, dev, now) {
			return checkpointAction
		}
		return ActionKill
	default:
		panic(fmt.Sprintf("core: DecidePreemption with invalid policy %v", policy))
	}
}

// SelectVictims implements cost-aware eviction (Section 5.2.2): it orders
// candidates by priority (lowest first, so high-priority work is
// preempted last) and, within a priority, by estimated checkpoint time
// (cheapest first), then takes candidates until their combined freed
// resources cover need. The boolean result is false when even preempting
// every candidate would not free enough, in which case no victims are
// returned.
//
// devFor maps a candidate to the storage device its dump would use, which
// is how per-node checkpoint queue depth influences victim choice.
func SelectVictims(cands []Candidate, need cluster.Resources, now sim.Time, devFor func(Candidate) *storage.Device) ([]Candidate, bool) {
	type scored struct {
		c    Candidate
		cost time.Duration
	}
	scoredCands := make([]scored, len(cands))
	for i, c := range cands {
		scoredCands[i] = scored{c: c, cost: CheckpointOverhead(c, devFor(c), now)}
	}
	sort.SliceStable(scoredCands, func(i, j int) bool {
		if scoredCands[i].c.Priority != scoredCands[j].c.Priority {
			return scoredCands[i].c.Priority < scoredCands[j].c.Priority
		}
		return scoredCands[i].cost < scoredCands[j].cost
	})
	var (
		freed   cluster.Resources
		victims []Candidate
	)
	for _, s := range scoredCands {
		if need.Fits(freed) {
			break
		}
		victims = append(victims, s.c)
		freed = freed.Add(s.c.Demand)
	}
	if !need.Fits(freed) {
		return nil, false
	}
	return victims, true
}

// RestorePlacement is the outcome of Algorithm 2.
type RestorePlacement int

const (
	// RestoreLocal resumes the task on the node that checkpointed it.
	RestoreLocal RestorePlacement = iota + 1
	// RestoreRemote resumes the task on a different node, paying a
	// network transfer for the image.
	RestoreRemote
)

func (r RestorePlacement) String() string {
	if r == RestoreLocal {
		return "local"
	}
	return "remote"
}

// RestoreCosts carries the inputs of Algorithm 2.
type RestoreCosts struct {
	// FootprintBytes is the full image size a restore reads.
	FootprintBytes int64
	// LocalDev is the device on the checkpoint's home node; RemoteDev the
	// device on the candidate remote node.
	LocalDev  *storage.Device
	RemoteDev *storage.Device
	// NetBandwidth is the bytes/second available for shipping the image
	// to the remote node.
	NetBandwidth float64
}

// LocalOverhead is Algorithm 2's overhead_local = size/bw_read + queue.
func (rc RestoreCosts) LocalOverhead(now sim.Time) time.Duration {
	return rc.LocalDev.ReadTime(rc.FootprintBytes) + rc.LocalDev.QueueDelay(now)
}

// RemoteOverhead is Algorithm 2's overhead_remote = size/bw_net +
// size/bw_read + queue.
func (rc RestoreCosts) RemoteOverhead(now sim.Time) time.Duration {
	net := time.Duration(float64(rc.FootprintBytes) / rc.NetBandwidth * float64(time.Second))
	return net + rc.RemoteDev.ReadTime(rc.FootprintBytes) + rc.RemoteDev.QueueDelay(now)
}

// DecideRestore implements Algorithm 2: local when its estimated overhead
// does not exceed the remote overhead, remote otherwise.
func DecideRestore(rc RestoreCosts, now sim.Time) RestorePlacement {
	if rc.LocalOverhead(now) <= rc.RemoteOverhead(now) {
		return RestoreLocal
	}
	return RestoreRemote
}

// DefaultNetBandwidth is the modelled cluster network bandwidth
// (10 GbE ≈ 1.1 GB/s effective), used when shipping remote images.
const DefaultNetBandwidth = 1.1e9
