package trace

import (
	"fmt"
	"math"
	"sort"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
)

// Calibration constants, derived in DESIGN.md from the paper's Section 2.
//
// Latency-class population shares (Table 2: 37.4M / 5.94M / 3.70M / 0.28M).
var latencyShare = [cluster.NumLatencyClasses]float64{0.7903, 0.1255, 0.0782, 0.0060}

// Probability that a task of latency class l is in the free band, solved
// so the per-class preemption rates of Table 2 emerge from the per-band
// rates of Table 1.
var freeGivenLatency = [cluster.NumLatencyClasses]float64{0.5678, 0.9293, 0.3838, 0.7224}

// Share of non-free tasks in the middle band (17.3M / (17.3M + 1.7M)).
const middleGivenNotFree = 0.9105

// Per-band probability that a scheduled task is preempted at least once
// (Table 1).
var preemptRate = [cluster.NumBands]float64{0.2026, 0.0055, 0.0102}

// Distribution of the number of evictions for a preempted task,
// calibrated to Fig. 1c: 56.5% evicted exactly once, 17% ten or more
// times. Index i holds P(count == i+1); the final mass is P(count >= 10).
var evictCountDist = []float64{0.565, 0.09, 0.055, 0.04, 0.03, 0.02, 0.015, 0.008, 0.007}

const evictTenPlus = 0.17

// Mean task durations per band. Free-band work is the long-running,
// repeatedly restarted population the paper highlights.
var meanDuration = [cluster.NumBands]time.Duration{
	2 * time.Hour,
	40 * time.Minute,
	30 * time.Minute,
}

// GenConfig parameterizes the synthetic trace.
type GenConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Tasks is the number of tasks to emit events for.
	Tasks int
	// Duration is the trace span (the real trace covers 29 days).
	Duration time.Duration
}

// DefaultGenConfig returns a laptop-scale 29-day trace configuration.
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 1, Tasks: 200_000, Duration: 29 * 24 * time.Hour}
}

// Validate checks the configuration.
func (c GenConfig) Validate() error {
	if c.Tasks <= 0 {
		return fmt.Errorf("trace: Tasks=%d must be positive", c.Tasks)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("trace: Duration=%v must be positive", c.Duration)
	}
	return nil
}

// sampleBandLatency draws a (band, latency) pair from the calibrated joint
// distribution.
func sampleBandLatency(rng *sim.RNG) (cluster.Band, cluster.LatencyClass) {
	u := rng.Float64()
	var latency cluster.LatencyClass
	acc := 0.0
	for l, share := range latencyShare {
		acc += share
		if u < acc || l == len(latencyShare)-1 {
			latency = cluster.LatencyClass(l)
			break
		}
	}
	var band cluster.Band
	switch {
	case rng.Bernoulli(freeGivenLatency[latency]):
		band = cluster.BandFree
	case rng.Bernoulli(middleGivenNotFree):
		band = cluster.BandMiddle
	default:
		band = cluster.BandProduction
	}
	return band, latency
}

// samplePriority picks a raw priority within a band. Within the free band
// priority 0 dominates, matching Fig. 1b's concentration of preemptions at
// the lowest priorities.
func samplePriority(rng *sim.RNG, band cluster.Band) cluster.Priority {
	switch band {
	case cluster.BandFree:
		if rng.Bernoulli(0.7) {
			return 0
		}
		return 1
	case cluster.BandMiddle:
		// Decreasing weights across 2..8.
		weights := []float64{0.30, 0.22, 0.16, 0.12, 0.09, 0.07, 0.04}
		u := rng.Float64()
		acc := 0.0
		for i, w := range weights {
			acc += w
			if u < acc {
				return cluster.Priority(2 + i)
			}
		}
		return 8
	default:
		return cluster.Priority(9 + rng.Intn(3))
	}
}

// sampleEvictions draws how many times a preempted task is evicted.
func sampleEvictions(rng *sim.RNG) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range evictCountDist {
		acc += p
		if u < acc {
			return i + 1
		}
	}
	// The >= 10 tail: 10 plus an exponential excess.
	return 10 + int(rng.Exp(5))
}

// sampleDuration draws a heavy-tailed task duration for a band.
func sampleDuration(rng *sim.RNG, band cluster.Band) time.Duration {
	mean := meanDuration[band].Seconds()
	// Bounded Pareto with alpha 1.6 has a heavy but integrable tail; scale
	// xm so the (untruncated) mean matches the band mean: E = xm*a/(a-1).
	const alpha = 1.6
	xm := mean * (alpha - 1) / alpha
	secs := rng.Pareto(xm, alpha, mean*50)
	return time.Duration(secs * float64(time.Second))
}

// diurnalRate modulates arrival intensity with a daily cycle (Fig. 1a's
// preemption-rate timeline follows cluster load).
func diurnalRate(t, day time.Duration) float64 {
	phase := 2 * math.Pi * float64(t%day) / float64(day)
	return 1 + 0.3*math.Sin(phase)
}

// Generate produces a calibrated synthetic event trace, sorted by time.
func Generate(cfg GenConfig) ([]Event, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	day := 24 * time.Hour
	events := make([]Event, 0, cfg.Tasks*4)

	for i := 0; i < cfg.Tasks; i++ {
		id := cluster.TaskID{Job: cluster.JobID(i / 8), Index: int32(i % 8)}
		band, latency := sampleBandLatency(rng)
		prio := samplePriority(rng, band)
		dur := sampleDuration(rng, band)
		cpu := cluster.Cores(rng.Bounded(0.25, 4))

		// Submission: uniform over the span, thinned by the diurnal factor
		// via rejection so busy hours carry more arrivals.
		var submit time.Duration
		for {
			submit = time.Duration(rng.Int63n(int64(cfg.Duration)))
			if rng.Float64()*1.3 < diurnalRate(submit, day) {
				break
			}
		}

		evictions := 0
		if rng.Bernoulli(preemptRate[band]) {
			evictions = sampleEvictions(rng)
		}

		emit := func(t time.Duration, typ EventType) {
			events = append(events, Event{
				Time: t, Type: typ, Task: id,
				Priority: prio, Latency: latency, CPU: cpu,
			})
		}

		t := submit
		emit(t, Submit)
		t += time.Duration(rng.Exp(30 * float64(time.Second)))
		emit(t, Schedule)
		for e := 0; e < evictions; e++ {
			// Kill-based preemption loses partial progress; the attempt
			// runs a fraction of the full duration before eviction.
			ran := time.Duration(rng.Bounded(0.25, 0.95) * float64(dur))
			t += ran
			emit(t, Evict)
			// Resubmission backoff before the next placement.
			t += time.Duration(rng.Exp(5 * float64(time.Minute)))
			emit(t, Schedule)
		}
		t += dur
		emit(t, Finish)
	}

	sort.Slice(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		if events[i].Task != events[j].Task {
			if events[i].Task.Job != events[j].Task.Job {
				return events[i].Task.Job < events[j].Task.Job
			}
			return events[i].Task.Index < events[j].Task.Index
		}
		return events[i].Type < events[j].Type
	})
	return events, nil
}
