package trace

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"preemptsched/internal/cluster"
)

// CSV column layout for serialized traces.
const csvHeader = "time_ns,type,job,index,priority,latency,cpu_millis"

// WriteCSV serializes events in a stable text format usable by external
// tooling and by cmd/traceanalyze.
func WriteCSV(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, csvHeader); err != nil {
		return err
	}
	for i := range events {
		e := &events[i]
		_, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%d,%d\n",
			e.Time.Nanoseconds(), int(e.Type), e.Task.Job, e.Task.Index,
			int(e.Priority), int(e.Latency), e.CPU)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCSVGz serializes events as gzip-compressed CSV; full traces
// compress roughly 10x, which matters at the real trace's 144M-event
// scale.
func WriteCSVGz(w io.Writer, events []Event) error {
	zw := gzip.NewWriter(w)
	if err := WriteCSV(zw, events); err != nil {
		zw.Close()
		return err
	}
	return zw.Close()
}

// ReadCSVGz parses a trace written by WriteCSVGz.
func ReadCSVGz(r io.Reader) ([]Event, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trace: open gzip stream: %w", err)
	}
	defer zr.Close()
	events, err := ReadCSV(zr)
	if err != nil {
		return nil, err
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("trace: close gzip stream: %w", err)
	}
	return events, nil
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if line == 1 {
			if text != csvHeader {
				return nil, fmt.Errorf("trace: line 1: unexpected header %q", text)
			}
			continue
		}
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if len(fields) != 7 {
			return nil, fmt.Errorf("trace: line %d: %d fields, want 7", line, len(fields))
		}
		nums := make([]int64, 7)
		for i, f := range fields {
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d field %d: %w", line, i+1, err)
			}
			nums[i] = v
		}
		events = append(events, Event{
			Time:     time.Duration(nums[0]),
			Type:     EventType(nums[1]),
			Task:     cluster.TaskID{Job: cluster.JobID(nums[2]), Index: int32(nums[3])},
			Priority: cluster.Priority(nums[4]),
			Latency:  cluster.LatencyClass(nums[5]),
			CPU:      nums[6],
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
