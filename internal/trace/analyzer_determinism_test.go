package trace

import (
	"testing"
	"time"

	"preemptsched/internal/cluster"
)

// TestAnalyzeCPUHoursDeterministic guards the sorted task walk from the
// floatorder sweep: the wasted/useful CPU-hour sums are float
// accumulations, and walking the per-task map in range order made them
// bit-unstable across identical Analyze calls.
func TestAnalyzeCPUHoursDeterministic(t *testing.T) {
	var events []Event
	for i := 0; i < 64; i++ {
		id := cluster.TaskID{Job: cluster.JobID(i % 7), Index: int32(i)}
		// Spread CPU demand across many binary orders of magnitude so a
		// different addend order actually changes the rounded sum.
		cpu := int64(1) << uint(i%40)
		base := time.Duration(i) * time.Minute
		events = append(events,
			Event{Time: base, Type: Schedule, Task: id, CPU: cpu},
			Event{Time: base + time.Minute, Type: Evict, Task: id, CPU: cpu},
			Event{Time: base + 2*time.Minute, Type: Schedule, Task: id, CPU: cpu},
			Event{Time: base + 3*time.Minute, Type: Finish, Task: id, CPU: cpu},
		)
	}
	first := Analyze(events)
	if first.WastedCPUHours <= 0 || first.UsefulCPUHours <= 0 {
		t.Fatalf("degenerate fixture: wasted %v, useful %v", first.WastedCPUHours, first.UsefulCPUHours)
	}
	for i := 0; i < 50; i++ {
		a := Analyze(events)
		if a.WastedCPUHours != first.WastedCPUHours || a.UsefulCPUHours != first.UsefulCPUHours {
			t.Fatalf("CPU-hour sums unstable across identical Analyze calls: wasted %v vs %v, useful %v vs %v",
				a.WastedCPUHours, first.WastedCPUHours, a.UsefulCPUHours, first.UsefulCPUHours)
		}
	}
}
