package trace

import (
	"bytes"
	"math"
	"testing"
	"time"

	"preemptsched/internal/cluster"
)

func generateTest(t *testing.T, tasks int) []Event {
	t.Helper()
	cfg := DefaultGenConfig()
	cfg.Tasks = tasks
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenConfig{Tasks: 0, Duration: time.Hour}); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := Generate(GenConfig{Tasks: 10, Duration: 0}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Tasks = 500
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestGenerateSortedAndWellFormed(t *testing.T) {
	events := generateTest(t, 2000)
	for i := 1; i < len(events); i++ {
		if events[i].Time < events[i-1].Time {
			t.Fatalf("events out of order at %d", i)
		}
	}
	// Per-task sequences: submit, schedule, (evict, schedule)*, finish.
	for id, seq := range ByTask(events) {
		if seq[0].Type != Submit {
			t.Fatalf("task %v starts with %v", id, seq[0].Type)
		}
		if seq[len(seq)-1].Type != Finish {
			t.Fatalf("task %v ends with %v", id, seq[len(seq)-1].Type)
		}
		for i := 1; i < len(seq); i++ {
			prev, cur := seq[i-1].Type, seq[i].Type
			ok := (prev == Submit && cur == Schedule) ||
				(prev == Schedule && (cur == Evict || cur == Finish)) ||
				(prev == Evict && cur == Schedule)
			if !ok {
				t.Fatalf("task %v: illegal transition %v -> %v", id, prev, cur)
			}
			if seq[i].Time < seq[i-1].Time {
				t.Fatalf("task %v: time went backwards", id)
			}
		}
	}
}

// The core calibration test: the analyzer run on a generated trace must
// reproduce the paper's Section 2 numbers.
func TestCalibrationMatchesPaper(t *testing.T) {
	a := Analyze(generateTest(t, 60_000))

	within := func(name string, got, want, tol float64) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %.4f, paper reports %.4f (tol %.4f)", name, got, want, tol)
		}
	}
	// Headline: 12.4% of scheduled tasks preempted.
	within("overall preemption rate", a.OverallRate(), 0.124, 0.02)
	// Table 1 per-band rates.
	within("free-band rate", a.Bands[cluster.BandFree].Rate(), 0.2026, 0.02)
	within("middle-band rate", a.Bands[cluster.BandMiddle].Rate(), 0.0055, 0.004)
	within("production-band rate", a.Bands[cluster.BandProduction].Rate(), 0.0102, 0.008)
	// Table 1 band populations (shares of all tasks: 28.4/17.3/1.7 M).
	total := float64(a.Tasks)
	within("free-band share", float64(a.Bands[cluster.BandFree].Tasks)/total, 0.599, 0.03)
	within("middle-band share", float64(a.Bands[cluster.BandMiddle].Tasks)/total, 0.365, 0.03)
	within("production-band share", float64(a.Bands[cluster.BandProduction].Tasks)/total, 0.036, 0.015)
	// Table 2 per-latency-class rates.
	within("latency-0 rate", a.Latencies[0].Rate(), 0.1176, 0.02)
	within("latency-1 rate", a.Latencies[1].Rate(), 0.1887, 0.03)
	within("latency-2 rate", a.Latencies[2].Rate(), 0.0814, 0.025)
	within("latency-3 rate", a.Latencies[3].Rate(), 0.1480, 0.06)
	// Fig. 1c: repeat preemptions.
	within("repeat rate", a.RepeatRate(), 0.435, 0.03)
	within("ten-plus rate", a.TenPlusRate(), 0.17, 0.03)
	// Fig. 1b: priorities 0-1 account for over 90% of preemptions.
	lowPreempts := a.PreemptionsByPriority[0] + a.PreemptionsByPriority[1]
	all := 0
	for _, n := range a.PreemptionsByPriority {
		all += n
	}
	if share := float64(lowPreempts) / float64(all); share < 0.9 {
		t.Errorf("low-priority preemption share = %.3f, paper reports > 0.9", share)
	}
	// "Up to 35%" of usage wasted by kill-based preemption.
	if wf := a.WasteFraction(); wf < 0.2 || wf > 0.42 {
		t.Errorf("waste fraction = %.3f, want in the 'up to 35%%' regime [0.2, 0.42]", wf)
	}
}

func TestTimelineCoversTraceAndShowsBandGap(t *testing.T) {
	a := Analyze(generateTest(t, 30_000))
	if len(a.Timeline) < 28 {
		t.Fatalf("timeline has %d days, want ~29", len(a.Timeline))
	}
	// Fig. 1a shape: the free band's preemption rate sits far above the
	// other bands on essentially every day.
	higher := 0
	for _, pt := range a.Timeline {
		if pt.Rate[cluster.BandFree] > pt.Rate[cluster.BandMiddle] &&
			pt.Rate[cluster.BandFree] > pt.Rate[cluster.BandProduction] {
			higher++
		}
	}
	if higher < len(a.Timeline)*9/10 {
		t.Errorf("free band above others on only %d/%d days", higher, len(a.Timeline))
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(nil)
	if a.Tasks != 0 || a.OverallRate() != 0 || a.WasteFraction() != 0 || a.RepeatRate() != 0 || a.TenPlusRate() != 0 {
		t.Error("empty analysis should be all zeros")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	events := generateTest(t, 300)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip length %d != %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, back[i], events[i])
		}
	}
}

func TestCSVGzRoundTrip(t *testing.T) {
	events := generateTest(t, 400)
	var buf bytes.Buffer
	if err := WriteCSVGz(&buf, events); err != nil {
		t.Fatal(err)
	}
	var plain bytes.Buffer
	if err := WriteCSV(&plain, events); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= plain.Len()/2 {
		t.Errorf("gzip trace %d bytes vs %d plain; expected substantial compression", buf.Len(), plain.Len())
	}
	back, err := ReadCSVGz(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip length %d != %d", len(back), len(events))
	}
	for i := range events {
		if back[i] != events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReadCSVGzRejectsPlain(t *testing.T) {
	if _, err := ReadCSVGz(bytes.NewBufferString("not gzip")); err == nil {
		t.Error("plain text accepted as gzip")
	}
}

func TestReadCSVErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"bad header", "nope\n"},
		{"short row", csvHeader + "\n1,2,3\n"},
		{"bad number", csvHeader + "\n1,2,3,4,5,6,x\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadCSV(bytes.NewBufferString(tt.in)); err == nil {
				t.Error("malformed CSV accepted")
			}
		})
	}
}

func TestGenerateJobsValidation(t *testing.T) {
	bad := []JobsConfig{
		{Jobs: 0, MeanTasksPerJob: 4, Span: time.Hour},
		{Jobs: 5, MeanTasksPerJob: 0, Span: time.Hour},
		{Jobs: 5, MeanTasksPerJob: 4, Span: 0},
	}
	for _, cfg := range bad {
		if _, err := GenerateJobs(cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestGenerateJobsShape(t *testing.T) {
	cfg := DefaultJobsConfig()
	cfg.Jobs = 400
	jobs, err := GenerateJobs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 400 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	tasks := CountTasks(jobs)
	mean := float64(tasks) / float64(len(jobs))
	if mean < float64(cfg.MeanTasksPerJob)*0.6 || mean > float64(cfg.MeanTasksPerJob)*1.4 {
		t.Errorf("mean tasks/job = %.1f, want near %d", mean, cfg.MeanTasksPerJob)
	}
	for i := range jobs {
		if err := jobs[i].Validate(); err != nil {
			t.Fatalf("job %d invalid: %v", i, err)
		}
		if jobs[i].Submit < 0 || jobs[i].Submit >= cfg.Span {
			t.Fatalf("job %d submit %v outside span", i, jobs[i].Submit)
		}
	}
	if TotalCores(jobs) <= 0 {
		t.Error("TotalCores not positive")
	}
	// Band mix should roughly match the calibrated population shares.
	free := 0
	for i := range jobs {
		if jobs[i].Band() == cluster.BandFree {
			free++
		}
	}
	if share := float64(free) / float64(len(jobs)); share < 0.5 || share > 0.72 {
		t.Errorf("free-band job share = %.2f, want ~0.6", share)
	}
}

func TestGenerateJobsDeterministic(t *testing.T) {
	cfg := DefaultJobsConfig()
	cfg.Jobs = 50
	a, _ := GenerateJobs(cfg)
	b, _ := GenerateJobs(cfg)
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if len(a[i].Tasks) != len(b[i].Tasks) || a[i].Priority != b[i].Priority || a[i].Submit != b[i].Submit {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestEventTypeString(t *testing.T) {
	for typ, want := range map[EventType]string{Submit: "submit", Schedule: "schedule", Evict: "evict", Finish: "finish"} {
		if typ.String() != want {
			t.Errorf("%d.String() = %q", int(typ), typ.String())
		}
	}
}
