// Package trace provides a Google-cluster-trace-like event schema, a
// synthetic generator calibrated to every statistic the paper publishes
// about the May 2011 trace (Section 2), an analyzer that recomputes those
// statistics from any event stream, and a job-level generator that feeds
// the trace-driven scheduling simulator.
//
// The real trace is a proprietary-scale download that is unavailable
// offline; per DESIGN.md the generator reproduces the published marginals
// (Table 1 per-priority-band populations and preemption rates, Table 2
// per-latency-class rates, the Fig. 1c re-preemption frequency
// distribution, and the diurnal Fig. 1a timeline) so the analysis and
// simulation layers exercise the same code paths on statistically
// equivalent input.
package trace

import (
	"fmt"
	"time"

	"preemptsched/internal/cluster"
)

// EventType enumerates the scheduler event kinds the paper's analysis
// uses: submit, schedule, evict and finish (Section 2).
type EventType int

const (
	// Submit is a task entering the scheduler queue.
	Submit EventType = iota + 1
	// Schedule is a task being placed on a machine.
	Schedule
	// Evict is a task being preempted off its machine.
	Evict
	// Finish is a task completing successfully.
	Finish
)

func (e EventType) String() string {
	switch e {
	case Submit:
		return "submit"
	case Schedule:
		return "schedule"
	case Evict:
		return "evict"
	case Finish:
		return "finish"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one scheduler action on one task.
type Event struct {
	Time     time.Duration
	Type     EventType
	Task     cluster.TaskID
	Priority cluster.Priority
	Latency  cluster.LatencyClass
	// CPU is the task's CPU demand in millicores, used for the wasted
	// CPU-time accounting.
	CPU int64
}

// ByTask groups an event stream by task, preserving per-task order.
func ByTask(events []Event) map[cluster.TaskID][]Event {
	out := make(map[cluster.TaskID][]Event)
	for _, e := range events {
		out[e.Task] = append(out[e.Task], e)
	}
	return out
}
