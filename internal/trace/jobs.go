package trace

import (
	"fmt"
	"time"

	"preemptsched/internal/cluster"
	"preemptsched/internal/sim"
)

// JobsConfig parameterizes the job-level generator that feeds the
// trace-driven scheduling simulator (the paper's one-day slice:
// ~15,000 jobs totalling over 600,000 tasks requiring over 22,000 cores).
type JobsConfig struct {
	Seed int64
	// Jobs is the number of jobs to generate.
	Jobs int
	// MeanTasksPerJob controls the geometric task-count distribution.
	MeanTasksPerJob int
	// Span is the arrival window (one day in the paper's experiment).
	Span time.Duration
}

// DefaultJobsConfig returns the paper's one-day-slice shape at a scale
// configurable via Jobs.
func DefaultJobsConfig() JobsConfig {
	return JobsConfig{Seed: 7, Jobs: 15_000, MeanTasksPerJob: 40, Span: 24 * time.Hour}
}

// Validate checks the configuration.
func (c JobsConfig) Validate() error {
	if c.Jobs <= 0 {
		return fmt.Errorf("trace: Jobs=%d must be positive", c.Jobs)
	}
	if c.MeanTasksPerJob <= 0 {
		return fmt.Errorf("trace: MeanTasksPerJob=%d must be positive", c.MeanTasksPerJob)
	}
	if c.Span <= 0 {
		return fmt.Errorf("trace: Span=%v must be positive", c.Span)
	}
	return nil
}

// GenerateJobs produces jobs for the scheduling simulator with the
// calibrated band/latency/priority mix and heavy-tailed durations of the
// event generator. Unlike Generate, eviction behaviour is not sampled
// here: preemption emerges from the simulator's own scheduling decisions.
func GenerateJobs(cfg JobsConfig) ([]cluster.JobSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := sim.NewRNG(cfg.Seed)
	day := 24 * time.Hour
	jobs := make([]cluster.JobSpec, 0, cfg.Jobs)
	for j := 0; j < cfg.Jobs; j++ {
		band, latency := sampleBandLatency(rng)
		prio := samplePriority(rng, band)

		var submit time.Duration
		for {
			submit = time.Duration(rng.Int63n(int64(cfg.Span)))
			if rng.Float64()*1.3 < diurnalRate(submit, day) {
				break
			}
		}

		// Geometric task count with the configured mean, at least 1.
		n := 1 + int(rng.Exp(float64(cfg.MeanTasksPerJob-1)))
		job := cluster.JobSpec{
			ID:       cluster.JobID(j),
			Priority: prio,
			Latency:  latency,
			// Tenants are assigned round-robin from the job index so the
			// fair-share discipline has a stable population to balance;
			// deriving from the index keeps the RNG stream — and thus all
			// other generated fields — unchanged.
			User:   fmt.Sprintf("user-%02d", j%16),
			Submit: submit,
		}
		// Tasks of one job share a duration scale and demand profile, as
		// gang-style cluster jobs do.
		base := sampleDuration(rng, band)
		cpu := cluster.Cores(rng.Bounded(0.5, 2))
		mem := cluster.GiB(rng.Bounded(0.5, 4))
		for i := 0; i < n; i++ {
			dur := time.Duration(float64(base) * rng.Bounded(0.8, 1.2))
			if dur < time.Minute {
				dur = time.Minute
			}
			job.Tasks = append(job.Tasks, cluster.TaskSpec{
				ID:           cluster.TaskID{Job: job.ID, Index: int32(i)},
				Priority:     prio,
				Latency:      latency,
				User:         job.User,
				Demand:       cluster.Resources{CPUMillis: cpu, MemBytes: mem},
				MemFootprint: int64(float64(mem) * rng.Bounded(0.5, 0.9)),
				Duration:     dur,
				Submit:       submit,
			})
		}
		jobs = append(jobs, job)
	}
	return jobs, nil
}

// TotalCores sums the peak CPU demand of all tasks, in cores. Experiment
// harnesses size simulated clusters relative to it.
func TotalCores(jobs []cluster.JobSpec) float64 {
	var millis int64
	for i := range jobs {
		for j := range jobs[i].Tasks {
			millis += jobs[i].Tasks[j].Demand.CPUMillis
		}
	}
	return float64(millis) / 1000
}

// CountTasks returns the total number of tasks across jobs.
func CountTasks(jobs []cluster.JobSpec) int {
	n := 0
	for i := range jobs {
		n += len(jobs[i].Tasks)
	}
	return n
}
