package trace

import (
	"sort"
	"time"

	"preemptsched/internal/cluster"
)

// BandStats aggregates scheduling outcomes for one priority band (one row
// of the paper's Table 1).
type BandStats struct {
	Band      cluster.Band
	Tasks     int
	Preempted int
}

// Rate returns the fraction of tasks preempted at least once.
func (b BandStats) Rate() float64 {
	if b.Tasks == 0 {
		return 0
	}
	return float64(b.Preempted) / float64(b.Tasks)
}

// LatencyStats aggregates outcomes for one latency class (Table 2).
type LatencyStats struct {
	Class     cluster.LatencyClass
	Tasks     int
	Preempted int
}

// Rate returns the fraction of tasks preempted at least once.
func (l LatencyStats) Rate() float64 {
	if l.Tasks == 0 {
		return 0
	}
	return float64(l.Preempted) / float64(l.Tasks)
}

// Analysis holds every Section 2 statistic recomputed from an event
// stream.
type Analysis struct {
	Tasks          int
	PreemptedTasks int
	// Bands is indexed by cluster.Band (Table 1).
	Bands [cluster.NumBands]BandStats
	// Latencies is indexed by latency class (Table 2).
	Latencies [cluster.NumLatencyClasses]LatencyStats
	// PreemptionsByPriority counts evictions per raw priority (Fig. 1b).
	PreemptionsByPriority [int(cluster.MaxPriority) + 1]int
	// EvictionFrequency[k] is the number of distinct tasks evicted exactly
	// k+1 times; the final bucket counts >= len (Fig. 1c, buckets 1..>=10).
	EvictionFrequency [10]int
	// Timeline is the per-day preemption rate per band (Fig. 1a).
	Timeline []TimelinePoint
	// WastedCPUHours is the CPU time consumed by attempts that ended in
	// eviction, assuming kill-based preemption.
	WastedCPUHours float64
	// UsefulCPUHours is the CPU time of attempts that ran to completion.
	UsefulCPUHours float64
}

// TimelinePoint is one day of the Fig. 1a preemption-rate timeline.
type TimelinePoint struct {
	Day int
	// Rate is the per-band fraction of tasks scheduled that day that were
	// later evicted at least once.
	Rate [cluster.NumBands]float64
}

// OverallRate returns the fraction of all tasks preempted at least once
// (the paper's headline 12.4%).
func (a *Analysis) OverallRate() float64 {
	if a.Tasks == 0 {
		return 0
	}
	return float64(a.PreemptedTasks) / float64(a.Tasks)
}

// WasteFraction returns wasted CPU as a fraction of all consumed CPU (the
// paper's "up to 35% of total usage").
func (a *Analysis) WasteFraction() float64 {
	total := a.WastedCPUHours + a.UsefulCPUHours
	if total == 0 {
		return 0
	}
	return a.WastedCPUHours / total
}

// RepeatRate returns, among preempted tasks, the fraction evicted more
// than once (the paper's 43.5%).
func (a *Analysis) RepeatRate() float64 {
	if a.PreemptedTasks == 0 {
		return 0
	}
	repeat := 0
	for k := 1; k < len(a.EvictionFrequency); k++ {
		repeat += a.EvictionFrequency[k]
	}
	return float64(repeat) / float64(a.PreemptedTasks)
}

// TenPlusRate returns, among preempted tasks, the fraction evicted ten or
// more times (the paper's 17%).
func (a *Analysis) TenPlusRate() float64 {
	if a.PreemptedTasks == 0 {
		return 0
	}
	return float64(a.EvictionFrequency[9]) / float64(a.PreemptedTasks)
}

// Analyze recomputes the paper's Section 2 statistics from an event
// stream. Events may be in any order; per-task sequences are reassembled
// internally.
func Analyze(events []Event) *Analysis {
	a := &Analysis{}
	perTask := ByTask(events)
	a.Tasks = len(perTask)

	days := map[int]*struct {
		scheduled [cluster.NumBands]int
		preempted [cluster.NumBands]int
	}{}
	maxDay := 0

	// Walk tasks in a fixed order: the CPU-hour sums below are float
	// accumulations, and map-range order would make them bit-unstable.
	ids := make([]cluster.TaskID, 0, len(perTask))
	for id := range perTask {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Job != ids[j].Job {
			return ids[i].Job < ids[j].Job
		}
		return ids[i].Index < ids[j].Index
	})
	for _, id := range ids {
		seq := perTask[id]
		band := cluster.BandOf(seq[0].Priority)
		latency := seq[0].Latency
		cpuCores := float64(seq[0].CPU) / 1000

		a.Bands[band].Band = band
		a.Bands[band].Tasks++
		a.Latencies[latency].Class = latency
		a.Latencies[latency].Tasks++

		evictions := 0
		var lastSchedule time.Duration
		haveSchedule := false
		firstDay := -1
		for _, e := range seq {
			switch e.Type {
			case Schedule:
				lastSchedule = e.Time
				haveSchedule = true
				if firstDay < 0 {
					firstDay = int(e.Time / (24 * time.Hour))
				}
			case Evict:
				evictions++
				a.PreemptionsByPriority[e.Priority]++
				if haveSchedule {
					a.WastedCPUHours += cpuCores * (e.Time - lastSchedule).Hours()
				}
			case Finish:
				if haveSchedule {
					a.UsefulCPUHours += cpuCores * (e.Time - lastSchedule).Hours()
				}
			}
		}

		if firstDay >= 0 {
			if firstDay > maxDay {
				maxDay = firstDay
			}
			d := days[firstDay]
			if d == nil {
				d = &struct {
					scheduled [cluster.NumBands]int
					preempted [cluster.NumBands]int
				}{}
				days[firstDay] = d
			}
			d.scheduled[band]++
			if evictions > 0 {
				d.preempted[band]++
			}
		}

		if evictions > 0 {
			a.PreemptedTasks++
			a.Bands[band].Preempted++
			a.Latencies[latency].Preempted++
			bucket := evictions - 1
			if bucket >= len(a.EvictionFrequency) {
				bucket = len(a.EvictionFrequency) - 1
			}
			a.EvictionFrequency[bucket]++
		}
	}

	for day := 0; day <= maxDay; day++ {
		pt := TimelinePoint{Day: day}
		if d := days[day]; d != nil {
			for b := 0; b < cluster.NumBands; b++ {
				if d.scheduled[b] > 0 {
					pt.Rate[b] = float64(d.preempted[b]) / float64(d.scheduled[b])
				}
			}
		}
		a.Timeline = append(a.Timeline, pt)
	}
	return a
}
