package storage

import (
	"errors"
	"io"
	"testing"
	"testing/quick"
	"time"

	"preemptsched/internal/cluster"
)

func TestDevicePresetsOrdering(t *testing.T) {
	hdd, ssd, nvm := NewDevice(HDD), NewDevice(SSD), NewDevice(NVM)
	size := cluster.GiB(5)
	th, ts, tn := hdd.WriteTime(size), ssd.WriteTime(size), nvm.WriteTime(size)
	if !(th > ts && ts > tn) {
		t.Fatalf("write times not ordered: hdd=%v ssd=%v nvm=%v", th, ts, tn)
	}
	// Paper Fig. 2a: SSD 3-4x faster than HDD, NVM 10-15x faster than SSD.
	if r := th.Seconds() / ts.Seconds(); r < 3 || r > 4.5 {
		t.Errorf("HDD/SSD ratio = %.2f, want 3-4.5", r)
	}
	if r := ts.Seconds() / tn.Seconds(); r < 10 || r > 16 {
		t.Errorf("SSD/NVM ratio = %.2f, want 10-16", r)
	}
}

func TestDeviceTable3Calibration(t *testing.T) {
	// Table 3: first (full) checkpoint of a 5 GB image.
	tests := []struct {
		kind Kind
		want float64 // seconds
		tol  float64
	}{
		{HDD, 169.18, 0.15},
		{SSD, 43.73, 0.15},
		{NVM, 2.92, 0.15},
	}
	for _, tt := range tests {
		d := NewDevice(tt.kind)
		got := d.WriteTime(cluster.GiB(5)).Seconds()
		if got < tt.want*(1-tt.tol) || got > tt.want*(1+tt.tol) {
			t.Errorf("%v: 5GB dump = %.2fs, paper measured %.2fs", tt.kind, got, tt.want)
		}
	}
}

func TestDeviceZeroBytes(t *testing.T) {
	d := NewDevice(SSD)
	if d.WriteTime(0) != 100*time.Microsecond {
		t.Errorf("zero-byte write should cost one op latency, got %v", d.WriteTime(0))
	}
	if d.ReadTime(-5) != 100*time.Microsecond {
		t.Errorf("negative read should cost one op latency, got %v", d.ReadTime(-5))
	}
}

func TestDeviceQueueing(t *testing.T) {
	d := NewCustomDevice(1e9, 0) // 1 GB/s, no latency
	// Two 1 GB writes issued at t=0 must serialize.
	s1, d1 := d.ReserveWrite(0, 1e9)
	if s1 != 0 || d1 != time.Second {
		t.Fatalf("first op: start=%v done=%v", s1, d1)
	}
	s2, d2 := d.ReserveWrite(0, 1e9)
	if s2 != time.Second || d2 != 2*time.Second {
		t.Fatalf("second op did not queue: start=%v done=%v", s2, d2)
	}
	if got := d.QueueDelay(0); got != 2*time.Second {
		t.Errorf("QueueDelay(0) = %v, want 2s", got)
	}
	if got := d.QueueDelay(3 * time.Second); got != 0 {
		t.Errorf("QueueDelay after drain = %v, want 0", got)
	}
	if d.BusyTime() != 2*time.Second {
		t.Errorf("BusyTime = %v", d.BusyTime())
	}
	if d.BytesWritten() != 2e9 || d.Ops() != 2 {
		t.Errorf("counters: written=%d ops=%d", d.BytesWritten(), d.Ops())
	}
}

// Property: reservations never overlap and starts are monotone.
func TestDeviceReservationsSerializeProperty(t *testing.T) {
	f := func(sizesKB []uint16) bool {
		d := NewDevice(SSD)
		var lastDone time.Duration
		for i, kb := range sizesKB {
			now := time.Duration(i) * time.Millisecond
			start, done := d.ReserveWrite(now, int64(kb)*1024)
			if start < now || start < lastDone || done < start {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewDevicePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewDevice(Custom) },
		func() { NewCustomDevice(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{HDD: "HDD", SSD: "SSD", NVM: "NVM", Custom: "Custom"} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore()
	w, err := s.Create("img/1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open("img/1")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "hello world" {
		t.Errorf("read back %q", data)
	}
	if n, err := s.Size("img/1"); err != nil || n != 11 {
		t.Errorf("Size = %d, %v", n, err)
	}
}

func TestMemStoreVisibilityOnClose(t *testing.T) {
	s := NewMemStore()
	w, _ := s.Create("obj")
	w.Write([]byte("data"))
	if _, err := s.Open("obj"); err == nil {
		t.Error("object visible before Close")
	}
	w.Close()
	if _, err := s.Open("obj"); err != nil {
		t.Errorf("object missing after Close: %v", err)
	}
	// Double close is a no-op; write-after-close fails.
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestMemStoreMissing(t *testing.T) {
	s := NewMemStore()
	var notExist *NotExistError
	if _, err := s.Open("nope"); !errors.As(err, &notExist) {
		t.Errorf("Open missing: %v", err)
	}
	if _, err := s.Size("nope"); !errors.As(err, &notExist) {
		t.Errorf("Size missing: %v", err)
	}
	if err := s.Remove("nope"); !errors.As(err, &notExist) {
		t.Errorf("Remove missing: %v", err)
	}
}

func TestMemStoreRemoveAndList(t *testing.T) {
	s := NewMemStore()
	for _, name := range []string{"a/1", "a/2", "b/1"} {
		w, _ := s.Create(name)
		w.Write([]byte(name))
		w.Close()
	}
	names, err := s.List("a/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a/1" || names[1] != "a/2" {
		t.Errorf("List = %v", names)
	}
	if err := s.Remove("a/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("a/1"); err == nil {
		t.Error("removed object still readable")
	}
	if got := s.TotalBytes(); got != int64(len("a/2")+len("b/1")) {
		t.Errorf("TotalBytes = %d", got)
	}
}

func TestMemStoreOverwrite(t *testing.T) {
	s := NewMemStore()
	for _, content := range []string{"first", "second!"} {
		w, _ := s.Create("obj")
		w.Write([]byte(content))
		w.Close()
	}
	r, _ := s.Open("obj")
	data, _ := io.ReadAll(r)
	if string(data) != "second!" {
		t.Errorf("overwrite failed: %q", data)
	}
}

func TestNewVolume(t *testing.T) {
	v := NewVolume(SSD)
	if v.Store == nil || v.Device == nil || v.Device.Kind() != SSD {
		t.Error("NewVolume incomplete")
	}
}
