package storage

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFileStoreRoundTrip(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Create("edits/42")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open("edits/42")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(r)
	r.Close()
	if err != nil || string(data) != "payload" {
		t.Fatalf("read back %q, %v", data, err)
	}
	if n, err := s.Size("edits/42"); err != nil || n != 7 {
		t.Errorf("Size = %d, %v", n, err)
	}
	if err := s.Remove("edits/42"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("edits/42"); !errors.Is(err, ErrNotExist) {
		t.Errorf("open after remove = %v, want ErrNotExist", err)
	}
	if err := s.Remove("edits/42"); !errors.Is(err, ErrNotExist) {
		t.Errorf("double remove = %v, want ErrNotExist", err)
	}
}

// TestFileStorePublishOnClose: an object must be completely invisible —
// to Open, Size, and List — until Close, and double Close is harmless.
// This is what guarantees a crash mid-record leaves no torn journal entry.
func TestFileStorePublishOnClose(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Create("edits/1")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("half a record"))
	if _, err := s.Open("edits/1"); !errors.Is(err, ErrNotExist) {
		t.Errorf("unclosed object visible to Open: %v", err)
	}
	if names, _ := s.List(""); len(names) != 0 {
		t.Errorf("unclosed object visible to List: %v", names)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if names, _ := s.List("edits/"); len(names) != 1 || names[0] != "edits/1" {
		t.Errorf("List = %v after close", names)
	}
}

// TestFileStoreCrashLeavesOnlyTemp: simulating a crash by abandoning the
// writer, the directory holds only a temp file that a recovering store
// never lists, and the same name can be re-created cleanly.
func TestFileStoreCrashLeavesOnlyTemp(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Create("edits/7")
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("about to crash"))
	// Process dies here: the writer is never closed.

	recovered, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if names, _ := recovered.List(""); len(names) != 0 {
		t.Errorf("crash leftovers listed: %v", names)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	temps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tempPrefix) {
			temps++
		}
	}
	if temps != 1 {
		t.Errorf("%d temp files on disk, want exactly 1 abandoned", temps)
	}

	w2, err := recovered.Create("edits/7")
	if err != nil {
		t.Fatal(err)
	}
	w2.Write([]byte("retry"))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := recovered.Open("edits/7")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if string(data) != "retry" {
		t.Errorf("re-created object reads %q", data)
	}
}

// TestFileStoreOverwriteAtomic: overwriting swaps content atomically — a
// reader opened before the overwrite keeps the old bytes, and the name
// never disappears in between.
func TestFileStoreOverwriteAtomic(t *testing.T) {
	s, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	write := func(content string) {
		w, err := s.Create("obj")
		if err != nil {
			t.Fatal(err)
		}
		w.Write([]byte(content))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("v1")
	old, err := s.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	write("v2")
	data, _ := io.ReadAll(old)
	if string(data) != "v1" {
		t.Errorf("pre-overwrite reader sees %q, want v1", data)
	}
	fresh, err := s.Open("obj")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(fresh)
	fresh.Close()
	if string(data) != "v2" {
		t.Errorf("post-overwrite reader sees %q, want v2", data)
	}
}

// TestFileStoreEscapesNames: slashes and other filesystem-hostile
// characters in object names must not escape the root directory.
func TestFileStoreEscapesNames(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := "../escape/attempt: 100%"
	w, err := s.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	w.Write([]byte("x"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("object landed outside the root: %v", entries)
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "escape")); !os.IsNotExist(err) {
		t.Error("path traversal escaped the store directory")
	}
	names, err := s.List("../escape")
	if err != nil || len(names) != 1 || names[0] != name {
		t.Errorf("List round-trips escaped name as %v, %v", names, err)
	}
}
