// Package storage models the storage media the paper evaluates (HDD, SSD,
// and NVM via PMFS) plus throttleable custom devices for the bandwidth
// sensitivity sweeps.
//
// A Device is a *timing* model: it answers how long reading or writing N
// bytes takes and serializes concurrent operations through a FIFO queue,
// mirroring the paper's sequential checkpoint/restore design ("The RM
// maintains a list of checkpoint queues for each node", Section 5.2.2). A
// Store is a *byte* container; the checkpoint engine writes real image
// bytes into a Store while charging virtual time to a Device.
//
// Bandwidth presets are calibrated from the paper's own microbenchmarks
// (Fig. 2a and Table 3): a 5 GB CRIU dump took 169.18 s on HDD (~30 MB/s),
// 43.73 s on SSD (~115 MB/s, 3-4x HDD) and 2.92 s on PMFS (~1.75 GB/s,
// 10-15x SSD).
package storage

import (
	"fmt"
	"time"

	"preemptsched/internal/sim"
)

// Kind enumerates the media classes evaluated in the paper.
type Kind int

const (
	// HDD is spinning disk.
	HDD Kind = iota + 1
	// SSD is flash storage.
	SSD
	// NVM is byte-addressable non-volatile memory exposed through a
	// PMFS-like file system.
	NVM
	// NVRAM uses NVM as virtual memory (the paper's future-work mode):
	// checkpoints are memory copies from DRAM into persistent memory, so
	// writes run at memcpy bandwidth with no serialization and a local
	// resume remaps pages instead of reading them back.
	NVRAM
	// Custom is a device with caller-chosen bandwidth (sensitivity sweeps).
	Custom
)

func (k Kind) String() string {
	switch k {
	case HDD:
		return "HDD"
	case SSD:
		return "SSD"
	case NVM:
		return "NVM"
	case NVRAM:
		return "NVRAM"
	case Custom:
		return "Custom"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device models one storage medium attached to a node.
type Device struct {
	kind      Kind
	writeBW   float64 // bytes per second
	readBW    float64 // bytes per second
	opLatency time.Duration

	busyUntil sim.Time
	queued    int
	busy      time.Duration // cumulative device-busy time, for I/O overhead accounting
	written   int64
	read      int64
}

// Calibrated effective checkpoint bandwidths (bytes/second). Derived from
// the paper's Table 3 dump times for a 5 GB image; read paths are measured
// in Fig. 2a as roughly symmetric for HDD and moderately faster for flash.
const (
	hddWriteBW = 30e6
	hddReadBW  = 60e6
	ssdWriteBW = 115e6
	ssdReadBW  = 230e6
	nvmWriteBW = 1750e6
	nvmReadBW  = 3000e6
	// NVRAM-as-virtual-memory moves pages at memcpy speed, with no file
	// system or serialization on the path.
	nvramWriteBW = 5000e6
	nvramReadBW  = 8000e6
)

// NewDevice returns a device of the given preset kind. Custom kinds must
// use NewCustomDevice.
func NewDevice(kind Kind) *Device {
	switch kind {
	case HDD:
		return &Device{kind: HDD, writeBW: hddWriteBW, readBW: hddReadBW, opLatency: 8 * time.Millisecond}
	case SSD:
		return &Device{kind: SSD, writeBW: ssdWriteBW, readBW: ssdReadBW, opLatency: 100 * time.Microsecond}
	case NVM:
		return &Device{kind: NVM, writeBW: nvmWriteBW, readBW: nvmReadBW, opLatency: time.Microsecond}
	case NVRAM:
		return &Device{kind: NVRAM, writeBW: nvramWriteBW, readBW: nvramReadBW, opLatency: 100 * time.Nanosecond}
	default:
		panic(fmt.Sprintf("storage: NewDevice(%v): use NewCustomDevice", kind))
	}
}

// NewCustomDevice returns a device with identical read and write bandwidth
// (bytes/second), used for the paper's 1-5 GB/s sensitivity sweeps.
func NewCustomDevice(bandwidth float64, opLatency time.Duration) *Device {
	if bandwidth <= 0 {
		panic("storage: non-positive bandwidth")
	}
	return &Device{kind: Custom, writeBW: bandwidth, readBW: bandwidth, opLatency: opLatency}
}

// Kind returns the device's media class.
func (d *Device) Kind() Kind { return d.kind }

// WriteBW returns the write bandwidth in bytes/second.
func (d *Device) WriteBW() float64 { return d.writeBW }

// ReadBW returns the read bandwidth in bytes/second.
func (d *Device) ReadBW() float64 { return d.readBW }

// WriteTime returns the service time to persist n bytes, excluding
// queueing.
func (d *Device) WriteTime(n int64) time.Duration {
	if n <= 0 {
		return d.opLatency
	}
	return d.opLatency + time.Duration(float64(n)/d.writeBW*float64(time.Second))
}

// ReadTime returns the service time to load n bytes, excluding queueing.
func (d *Device) ReadTime(n int64) time.Duration {
	if n <= 0 {
		return d.opLatency
	}
	return d.opLatency + time.Duration(float64(n)/d.readBW*float64(time.Second))
}

// QueueDelay returns how long a request issued at now would wait before the
// device starts serving it. This is the queue_time term of Algorithm 1.
func (d *Device) QueueDelay(now sim.Time) time.Duration {
	if d.busyUntil <= now {
		return 0
	}
	return d.busyUntil - now
}

// Reserve enqueues an operation of the given service time behind all
// previously reserved work and returns its start and completion instants.
// Devices serve one operation at a time (sequential checkpoint/restore).
func (d *Device) Reserve(now sim.Time, service time.Duration) (start, done sim.Time) {
	start = now
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done = start + service
	d.busyUntil = done
	d.queued++
	d.busy += service
	return start, done
}

// ReserveWrite reserves a write of n bytes and returns (start, done).
func (d *Device) ReserveWrite(now sim.Time, n int64) (sim.Time, sim.Time) {
	start, done := d.Reserve(now, d.WriteTime(n))
	d.written += n
	return start, done
}

// ReserveRead reserves a read of n bytes and returns (start, done).
func (d *Device) ReserveRead(now sim.Time, n int64) (sim.Time, sim.Time) {
	start, done := d.Reserve(now, d.ReadTime(n))
	d.read += n
	return start, done
}

// BusyTime returns the cumulative time the device has been (or is reserved
// to be) serving requests. Dividing by elapsed wall time yields the I/O
// overhead series of Fig. 12b.
func (d *Device) BusyTime() time.Duration { return d.busy }

// BytesWritten returns the cumulative bytes reserved for writing.
func (d *Device) BytesWritten() int64 { return d.written }

// BytesRead returns the cumulative bytes reserved for reading.
func (d *Device) BytesRead() int64 { return d.read }

// Ops returns the number of reserved operations.
func (d *Device) Ops() int { return d.queued }
