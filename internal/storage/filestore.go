package storage

import (
	"fmt"
	"io"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
)

// FileStore is a Store backed by one directory of real files — the
// durable backing the journaled NameNode needs to survive a process
// crash (MemStore dies with the process). Object names are query-escaped
// into flat file names, so logical names with '/' (e.g. "edits/42") need
// no directory management.
//
// Publishing is atomic: Create writes to a hidden temp file and Close
// fsyncs then renames it into place. A crash mid-write leaves only a
// temp file, which opens as "not exist" — exactly the torn-tail
// semantics the journal's recovery relies on.
type FileStore struct {
	dir string
	seq atomic.Uint64 // distinguishes concurrent temp files
}

// NewFileStore returns a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

var _ Store = (*FileStore)(nil)

const tempPrefix = ".tmp-"

func (s *FileStore) path(name string) string {
	return filepath.Join(s.dir, url.QueryEscape(name))
}

type fileWriter struct {
	f     *os.File
	final string
	done  bool
}

func (w *fileWriter) Write(p []byte) (int, error) { return w.f.Write(p) }

func (w *fileWriter) Close() error {
	if w.done {
		return nil
	}
	w.done = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		return err
	}
	if err := w.f.Close(); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	if err := os.Rename(w.f.Name(), w.final); err != nil {
		os.Remove(w.f.Name())
		return err
	}
	return nil
}

// Create implements Store.
func (s *FileStore) Create(name string) (io.WriteCloser, error) {
	tmp := filepath.Join(s.dir, fmt.Sprintf("%s%d-%s", tempPrefix, s.seq.Add(1), url.QueryEscape(name)))
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	return &fileWriter{f: f, final: s.path(name)}, nil
}

// Open implements Store.
func (s *FileStore) Open(name string) (io.ReadCloser, error) {
	f, err := os.Open(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &NotExistError{Name: name}
		}
		return nil, err
	}
	return f, nil
}

// Remove implements Store.
func (s *FileStore) Remove(name string) error {
	err := os.Remove(s.path(name))
	if os.IsNotExist(err) {
		return &NotExistError{Name: name}
	}
	return err
}

// Size implements Store.
func (s *FileStore) Size(name string) (int64, error) {
	fi, err := os.Stat(s.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, &NotExistError{Name: name}
		}
		return 0, err
	}
	return fi.Size(), nil
}

// List implements Store.
func (s *FileStore) List(prefix string) ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || strings.HasPrefix(e.Name(), tempPrefix) {
			continue
		}
		name, err := url.QueryUnescape(e.Name())
		if err != nil || !strings.HasPrefix(name, prefix) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
