package storage

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Store is a byte container for checkpoint images. The local-filesystem
// implementation lives here; the DFS client provides a distributed
// implementation with the same shape, which is what lets the checkpoint
// engine switch between local and remote images exactly as the paper's
// CRIU+HDFS extension does.
type Store interface {
	// Create opens a named object for writing, truncating any previous
	// content. Closing the returned writer publishes the object.
	Create(name string) (io.WriteCloser, error)
	// Open opens a named object for reading.
	Open(name string) (io.ReadCloser, error)
	// Remove deletes a named object. Removing a missing object is an error.
	Remove(name string) error
	// Size reports the byte size of a named object.
	Size(name string) (int64, error)
	// List returns the names of all objects with the given prefix, sorted.
	List(prefix string) ([]string, error)
}

// ErrNotExist is the sentinel all absent-object errors match, so callers
// can classify them with errors.Is even through wrapping layers (the DFS
// client, fault-injection wrappers).
var ErrNotExist = errors.New("storage: object does not exist")

// NotExistError is returned when a named object is absent. It matches
// ErrNotExist under errors.Is.
type NotExistError struct{ Name string }

func (e *NotExistError) Error() string {
	return fmt.Sprintf("storage: object %q does not exist", e.Name)
}

func (e *NotExistError) Is(target error) bool { return target == ErrNotExist }

// MemStore is an in-memory Store. It is safe for concurrent use; the
// mini-YARN framework's node-local volumes and the tests use it.
type MemStore struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objects: make(map[string][]byte)}
}

var _ Store = (*MemStore)(nil)

type memWriter struct {
	buf    bytes.Buffer
	name   string
	store  *MemStore
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("storage: write to closed object %q", w.name)
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.store.mu.Lock()
	defer w.store.mu.Unlock()
	w.store.objects[w.name] = append([]byte(nil), w.buf.Bytes()...)
	return nil
}

// Create implements Store.
func (s *MemStore) Create(name string) (io.WriteCloser, error) {
	return &memWriter{name: name, store: s}, nil
}

// Open implements Store.
func (s *MemStore) Open(name string) (io.ReadCloser, error) {
	s.mu.RLock()
	data, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok {
		return nil, &NotExistError{Name: name}
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// Remove implements Store.
func (s *MemStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[name]; !ok {
		return &NotExistError{Name: name}
	}
	delete(s.objects, name)
	return nil
}

// Size implements Store.
func (s *MemStore) Size(name string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[name]
	if !ok {
		return 0, &NotExistError{Name: name}
	}
	return int64(len(data)), nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	for name := range s.objects {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes returns the sum of all object sizes, used for the storage
// overhead accounting in Section 5.3.3.
func (s *MemStore) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, data := range s.objects {
		n += int64(len(data))
	}
	return n
}

// Volume couples a byte Store with the Device that times access to it.
type Volume struct {
	Store  Store
	Device *Device
}

// NewVolume returns a volume backed by a fresh MemStore on a device of the
// given kind.
func NewVolume(kind Kind) *Volume {
	return &Volume{Store: NewMemStore(), Device: NewDevice(kind)}
}
