package mapreduce

import (
	"testing"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/proc"
	"preemptsched/internal/storage"
)

func runToEnd(t *testing.T, p *proc.Process) (steps int) {
	t.Helper()
	for {
		done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			return steps
		}
	}
}

func TestWordCountRunsAndCounts(t *testing.T) {
	p, err := NewProcess("wc", 8000, 512, 42)
	if err != nil {
		t.Fatal(err)
	}
	steps := runToEnd(t, p)
	if want := TotalSteps(8000, 512); uint64(steps) != want {
		t.Errorf("steps = %d, TotalSteps predicts %d", steps, want)
	}
	words, err := WordsProcessed(p)
	if err != nil {
		t.Fatal(err)
	}
	// Mean word length ~5.6 incl. separator: expect on the order of
	// 8000/6.5 words.
	if words < 800 || words > 2500 {
		t.Errorf("words = %d, implausible for 8000 bytes", words)
	}
	digest, err := Digest(p)
	if err != nil || digest == 0 {
		t.Errorf("digest = %x, %v", digest, err)
	}
	phase, _ := Phase(p)
	if phase != phaseDone {
		t.Errorf("phase = %d", phase)
	}
	if p.State() != proc.Exited {
		t.Errorf("state = %v", p.State())
	}
}

func TestWordCountDeterministic(t *testing.T) {
	run := func() uint64 {
		p, err := NewProcess("wc", 4096, 300, 7)
		if err != nil {
			t.Fatal(err)
		}
		runToEnd(t, p)
		d, _ := Digest(p)
		return d
	}
	if a, b := run(), run(); a != b {
		t.Errorf("digests differ: %x vs %x", a, b)
	}
	// Different seed, different corpus, different digest.
	p, _ := NewProcess("wc", 4096, 300, 8)
	runToEnd(t, p)
	d, _ := Digest(p)
	if d == run() {
		t.Error("different seeds produced identical digests")
	}
}

func TestWordCountCheckpointTransparency(t *testing.T) {
	const input, chunk, seed = 6000, 400, 3
	ref, err := NewProcess("wc", input, chunk, seed)
	if err != nil {
		t.Fatal(err)
	}
	runToEnd(t, ref)
	want, _ := Digest(ref)

	reg := proc.NewRegistry()
	RegisterWith(reg)
	eng := checkpoint.NewEngine(reg)
	store := storage.NewMemStore()

	p, err := NewProcess("wc", input, chunk, seed)
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint mid-map, restore, checkpoint mid-reduce incrementally,
	// restore again, finish.
	for i := 0; i < 5; i++ {
		p.Step()
	}
	p.Suspend()
	if _, err := eng.Dump(p, store, "wc/0", checkpoint.DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	p, _, err = eng.Restore(store, "wc/0")
	if err != nil {
		t.Fatal(err)
	}
	for {
		ph, _ := Phase(p)
		if ph == phaseReduce {
			break
		}
		if _, err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	p.Suspend()
	if _, err := eng.Dump(p, store, "wc/1", checkpoint.DumpOpts{Incremental: true, Parent: "wc/0"}); err != nil {
		t.Fatal(err)
	}
	p, _, err = eng.Restore(store, "wc/1")
	if err != nil {
		t.Fatal(err)
	}
	runToEnd(t, p)
	got, _ := Digest(p)
	if got != want {
		t.Errorf("digest after two checkpoint cycles %x != uninterrupted %x", got, want)
	}
}

func TestWordCountMapIsWriteHeavyReduceReadHeavy(t *testing.T) {
	p, err := NewProcess("wc", 8000, 500, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Map steps dirty table pages.
	p.Memory().ClearSoftDirty()
	p.Step()
	mapDirty := p.Memory().DirtyCount()
	if mapDirty == 0 {
		t.Fatal("map step dirtied nothing")
	}
	// Finish map, then measure a reduce step: only the header changes.
	for {
		ph, _ := Phase(p)
		if ph == phaseReduce {
			break
		}
		p.Step()
	}
	p.Memory().ClearSoftDirty()
	p.Step()
	reduceDirty := p.Memory().DirtyCount()
	if reduceDirty != 1 {
		t.Errorf("reduce step dirtied %d pages, want 1 (header)", reduceDirty)
	}
}

func TestWordCountValidation(t *testing.T) {
	if _, err := NewProcess("wc", 0, 10, 1); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := NewProcess("wc", 100, 0, 1); err == nil {
		t.Error("zero chunk accepted")
	}
}

func TestTotalStepsAndBuckets(t *testing.T) {
	if b := Buckets(8000); b != 1024 {
		t.Errorf("Buckets(8000) = %d, want 1024", b)
	}
	if s := TotalSteps(8000, 512); s != 16+2 {
		t.Errorf("TotalSteps = %d, want 18", s)
	}
	if b := Buckets(1 << 30); b != 1<<16 {
		t.Errorf("bucket cap broken: %d", b)
	}
}

func TestWordCountLogicalScaling(t *testing.T) {
	p, err := NewProcessScaled("wc", 4000, 400, 1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if p.Memory().LogicalBytes() != 1<<30 {
		t.Errorf("logical = %d", p.Memory().LogicalBytes())
	}
	runToEnd(t, p)
}
