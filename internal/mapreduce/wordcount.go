// Package mapreduce implements a word-count MapReduce job as a
// checkpointable virtual-process program — the paper's stated future work
// ("we plan to apply the proposed approach to a wider range of
// applications, including MapReduce").
//
// The whole job runs inside one process image so OS-level checkpointing
// covers it: the synthetic input corpus, the map-side hash table of word
// counts, and the reduce cursor all live in process memory. A step is one
// map chunk or one reduce sweep; suspending between any two steps and
// resuming — on any node — produces the identical final digest.
//
// Memory layout:
//
//	page 0:            header (phase, cursor, word counter, digest)
//	input region:      the synthetic corpus, written once at Init
//	table region:      open-addressed hash table of (wordHash, count)
//
// Register usage (set by Configure before the first Step):
//
//	R0: input bytes    R1: map chunk bytes per step
//	R2: corpus seed    R3: hash-table buckets (power of two)
package mapreduce

import (
	"fmt"

	"preemptsched/internal/proc"
	"preemptsched/internal/sim"
)

// ProgramName is the registry name of the word-count program.
const ProgramName = "wordcount"

// Program is the checkpointable MapReduce word-count.
type Program struct{}

var _ proc.Program = Program{}

// Name implements proc.Program.
func (Program) Name() string { return ProgramName }

// Job phases.
const (
	phaseMap uint64 = iota
	phaseReduce
	phaseDone
)

// Header offsets (page 0).
const (
	hdrPhase  = 0
	hdrCursor = 8
	hdrWords  = 16
	hdrDigest = 24
)

const inputOff = proc.PageSize

// vocabulary is the closed word set the synthetic corpus draws from; a
// closed set makes collisions and counts meaningful.
var vocabulary = []string{
	"the", "cluster", "scheduler", "preempts", "tasks", "with",
	"checkpoints", "instead", "of", "kills", "saving", "progress",
	"and", "energy", "on", "shared", "nodes", "under", "contention",
	"adaptive", "policies", "pick", "victims", "by", "cost",
}

// Configure sets job parameters in the registers.
func Configure(p *proc.Process, inputBytes, chunkBytes uint64, seed int64, buckets uint64) {
	r := p.Registers()
	r.R[0] = inputBytes
	r.R[1] = chunkBytes
	r.R[2] = uint64(seed)
	r.R[3] = buckets
}

// MemoryBytes returns the backing bytes needed for the given job shape.
func MemoryBytes(inputBytes, buckets int) int64 {
	return int64(proc.PageSize) + int64(inputBytes) + int64(buckets)*16 + proc.PageSize
}

// NewProcess builds a configured word-count process.
func NewProcess(id string, inputBytes, chunkBytes int, seed int64) (*proc.Process, error) {
	return NewProcessScaled(id, inputBytes, chunkBytes, seed, 0)
}

// NewProcessScaled builds a word-count process declaring logicalBytes of
// footprint for checkpoint time accounting.
func NewProcessScaled(id string, inputBytes, chunkBytes int, seed int64, logicalBytes int64) (*proc.Process, error) {
	if inputBytes <= 0 || chunkBytes <= 0 {
		return nil, fmt.Errorf("mapreduce: non-positive sizes %d/%d", inputBytes, chunkBytes)
	}
	buckets := Buckets(inputBytes)
	mem := MemoryBytes(inputBytes, buckets)
	if logicalBytes < mem {
		logicalBytes = mem
	}
	return proc.NewWithSetup(id, Program{}, mem, logicalBytes, func(p *proc.Process) {
		Configure(p, uint64(inputBytes), uint64(chunkBytes), seed, uint64(buckets))
	})
}

func layout(p *proc.Process) (inputLen, chunk int64, buckets int64, tableOff int64, err error) {
	r := p.Registers()
	inputLen, chunk, buckets = int64(r.R[0]), int64(r.R[1]), int64(r.R[3])
	if inputLen <= 0 || chunk <= 0 || buckets <= 0 || buckets&(buckets-1) != 0 {
		return 0, 0, 0, 0, fmt.Errorf("mapreduce: bad configuration input=%d chunk=%d buckets=%d", inputLen, chunk, buckets)
	}
	tableOff = inputOff + inputLen
	if tableOff+buckets*16 > p.Memory().RealBytes() {
		return 0, 0, 0, 0, fmt.Errorf("mapreduce: needs %d bytes, process has %d", tableOff+buckets*16, p.Memory().RealBytes())
	}
	return inputLen, chunk, buckets, tableOff, nil
}

// Init implements proc.Program: generate the corpus into process memory.
func (Program) Init(p *proc.Process) error {
	inputLen, _, _, _, err := layout(p)
	if err != nil {
		return err
	}
	rng := sim.NewRNG(int64(p.Registers().R[2]))
	m := p.Memory()
	buf := make([]byte, 0, inputLen)
	for int64(len(buf)) < inputLen {
		w := vocabulary[rng.Intn(len(vocabulary))]
		if int64(len(buf)+len(w)+1) > inputLen {
			// Pad the tail with spaces to the exact length.
			for int64(len(buf)) < inputLen {
				buf = append(buf, ' ')
			}
			break
		}
		buf = append(buf, w...)
		buf = append(buf, ' ')
	}
	if err := m.WriteAt(buf, inputOff); err != nil {
		return err
	}
	for _, off := range []int64{hdrPhase, hdrCursor, hdrWords, hdrDigest} {
		if err := m.WriteU64(off, 0); err != nil {
			return err
		}
	}
	return nil
}

// fnv1a hashes a word.
func fnv1a(word []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range word {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Step implements proc.Program: one map chunk or one reduce sweep.
func (Program) Step(p *proc.Process) (bool, error) {
	inputLen, chunk, buckets, tableOff, err := layout(p)
	if err != nil {
		return false, err
	}
	m := p.Memory()
	phase, err := m.ReadU64(hdrPhase)
	if err != nil {
		return false, err
	}
	switch phase {
	case phaseMap:
		return false, mapStep(p, inputLen, chunk, buckets, tableOff)
	case phaseReduce:
		return reduceStep(p, buckets, tableOff)
	case phaseDone:
		return true, nil
	default:
		return false, fmt.Errorf("mapreduce: corrupt phase %d", phase)
	}
}

// mapStep tokenizes one input chunk into the hash table. Words split
// across chunk boundaries are handled by extending the read to the next
// space.
func mapStep(p *proc.Process, inputLen, chunk, buckets, tableOff int64) error {
	m := p.Memory()
	cursor, err := m.ReadU64(hdrCursor)
	if err != nil {
		return err
	}
	start := int64(cursor)
	if start >= inputLen {
		return m.WriteU64(hdrPhase, phaseReduce)
	}
	// Chunks end at fixed offsets so the step count is a pure function of
	// the job shape; a word straddling a boundary counts as two tokens,
	// which is deterministic for a given chunk size.
	end := start + chunk
	if end > inputLen {
		end = inputLen
	}
	data := make([]byte, end-start)
	if err := m.ReadAt(data, inputOff+start); err != nil {
		return err
	}
	words, err := m.ReadU64(hdrWords)
	if err != nil {
		return err
	}
	wordStart := -1
	for i := 0; i <= len(data); i++ {
		atEnd := i == len(data)
		if !atEnd && data[i] != ' ' {
			if wordStart < 0 {
				wordStart = i
			}
			continue
		}
		if wordStart >= 0 {
			if err := tableAdd(m, tableOff, buckets, fnv1a(data[wordStart:i])); err != nil {
				return err
			}
			words++
			wordStart = -1
		}
	}
	if err := m.WriteU64(hdrWords, words); err != nil {
		return err
	}
	if err := m.WriteU64(hdrCursor, uint64(end)); err != nil {
		return err
	}
	if end >= inputLen {
		return m.WriteU64(hdrPhase, phaseReduce)
	}
	return nil
}

// tableAdd increments the count of a word hash in the open-addressed
// table.
func tableAdd(m *proc.Memory, tableOff, buckets int64, h uint64) error {
	if h == 0 {
		h = 1 // zero marks an empty bucket
	}
	idx := int64(h) & (buckets - 1)
	if idx < 0 {
		idx = -idx
	}
	for probe := int64(0); probe < buckets; probe++ {
		off := tableOff + ((idx+probe)&(buckets-1))*16
		stored, err := m.ReadU64(off)
		if err != nil {
			return err
		}
		if stored == h {
			count, err := m.ReadU64(off + 8)
			if err != nil {
				return err
			}
			return m.WriteU64(off+8, count+1)
		}
		if stored == 0 {
			if err := m.WriteU64(off, h); err != nil {
				return err
			}
			return m.WriteU64(off+8, 1)
		}
	}
	return fmt.Errorf("mapreduce: hash table full (%d buckets)", buckets)
}

// reduceStep folds a fixed number of buckets into the digest.
func reduceStep(p *proc.Process, buckets, tableOff int64) (bool, error) {
	const bucketsPerStep = 512
	m := p.Memory()
	cursorW, err := m.ReadU64(hdrCursor)
	if err != nil {
		return false, err
	}
	// The reduce cursor reuses the header cursor, restarting from 0: the
	// map phase left it at inputLen, so detect the first reduce step by a
	// cursor beyond the bucket count... simpler: track reduce progress in
	// cursor as buckets*16 offsets beyond 1<<62.
	const reduceBase = uint64(1) << 62
	var i int64
	if cursorW < reduceBase {
		i = 0
	} else {
		i = int64(cursorW - reduceBase)
	}
	digest, err := m.ReadU64(hdrDigest)
	if err != nil {
		return false, err
	}
	endBucket := i + bucketsPerStep
	if endBucket > buckets {
		endBucket = buckets
	}
	for ; i < endBucket; i++ {
		off := tableOff + i*16
		h, err := m.ReadU64(off)
		if err != nil {
			return false, err
		}
		if h == 0 {
			continue
		}
		count, err := m.ReadU64(off + 8)
		if err != nil {
			return false, err
		}
		digest = digest*1099511628211 ^ h ^ count<<1
	}
	if err := m.WriteU64(hdrDigest, digest); err != nil {
		return false, err
	}
	if err := m.WriteU64(hdrCursor, reduceBase+uint64(endBucket)); err != nil {
		return false, err
	}
	if endBucket >= buckets {
		if err := m.WriteU64(hdrPhase, phaseDone); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// Digest reads the final word-count digest from a finished process.
func Digest(p *proc.Process) (uint64, error) {
	return p.Memory().ReadU64(hdrDigest)
}

// WordsProcessed reads the number of mapped words.
func WordsProcessed(p *proc.Process) (uint64, error) {
	return p.Memory().ReadU64(hdrWords)
}

// Phase reports the job phase (0 map, 1 reduce, 2 done).
func Phase(p *proc.Process) (uint64, error) {
	return p.Memory().ReadU64(hdrPhase)
}

// RegisterWith registers the program with a process registry.
func RegisterWith(reg *proc.Registry) {
	reg.Register(ProgramName, func() proc.Program { return Program{} })
}

// Buckets returns the hash-table size NewProcessScaled will choose for an
// input size.
func Buckets(inputBytes int) int {
	buckets := 1
	for buckets < inputBytes/8 {
		buckets *= 2
	}
	if buckets > 1<<16 {
		buckets = 1 << 16
	}
	return buckets
}

// TotalSteps returns exactly how many Step calls a job of this shape
// takes: one per map chunk plus one per 512-bucket reduce sweep.
func TotalSteps(inputBytes, chunkBytes int) uint64 {
	mapSteps := (inputBytes + chunkBytes - 1) / chunkBytes
	buckets := Buckets(inputBytes)
	reduceSteps := (buckets + 511) / 512
	return uint64(mapSteps + reduceSteps)
}
