package faults

import (
	"io"

	"preemptsched/internal/storage"
)

// WrapStore interposes the injector between a writer of checkpoint images
// and its storage.Store: Creates can fail outright, and returned writers
// can tear — accept a prefix of the data, then fail every subsequent
// write. Reads pass through untouched (read-side faults are injected at
// the transport layer, where replica failover can see them).
func WrapStore(inner storage.Store, in *Injector) storage.Store {
	return &faultStore{inner: inner, in: in}
}

type faultStore struct {
	inner storage.Store
	in    *Injector
}

var _ storage.Store = (*faultStore)(nil)

func (s *faultStore) Create(name string) (io.WriteCloser, error) {
	delay(s.in.plan.StoreDelay)
	if s.in.noteCreate() {
		return nil, s.in.inject(ModeStoreCrashOps, name)
	}
	if s.in.roll(s.in.plan.CreateFailRate) {
		return nil, s.in.inject(ModeStoreCreateErrors, name)
	}
	w, err := s.inner.Create(name)
	if err != nil {
		return nil, err
	}
	if s.in.roll(s.in.plan.TornWriteRate) {
		limit := s.in.plan.TornWriteBytes
		if limit <= 0 {
			limit = DefaultTornWriteBytes
		}
		s.in.counters.Add(ModeTornWrites, 1)
		return &tornWriter{inner: w, in: s.in, name: name, left: limit}, nil
	}
	if s.in.roll(s.in.plan.SilentTruncateRate) {
		limit := s.in.plan.SilentTruncateBytes
		if limit <= 0 {
			limit = DefaultTornWriteBytes
		}
		s.in.counters.Add(ModeSilentTruncations, 1)
		return &silentTruncateWriter{inner: w, left: limit}, nil
	}
	return w, nil
}

func (s *faultStore) Open(name string) (io.ReadCloser, error) {
	delay(s.in.plan.StoreDelay)
	if s.in.storeCrashed() {
		return nil, s.in.inject(ModeStoreCrashOps, name)
	}
	return s.inner.Open(name)
}

func (s *faultStore) Remove(name string) error {
	delay(s.in.plan.StoreDelay)
	if s.in.storeCrashed() {
		return s.in.inject(ModeStoreCrashOps, name)
	}
	return s.inner.Remove(name)
}

func (s *faultStore) Size(name string) (int64, error) {
	delay(s.in.plan.StoreDelay)
	if s.in.storeCrashed() {
		return 0, s.in.inject(ModeStoreCrashOps, name)
	}
	return s.inner.Size(name)
}

func (s *faultStore) List(prefix string) ([]string, error) {
	delay(s.in.plan.StoreDelay)
	if s.in.storeCrashed() {
		return nil, s.in.inject(ModeStoreCrashOps, prefix)
	}
	return s.inner.List(prefix)
}

// tornWriter accepts left bytes, then fails every write and the close, so
// the caller cannot mistake the truncated object for a published one.
type tornWriter struct {
	inner io.WriteCloser
	in    *Injector
	name  string
	left  int64
	torn  bool
}

func (w *tornWriter) Write(p []byte) (int, error) {
	if w.torn {
		return 0, w.in.inject(ModeTornWriteWrites, w.name)
	}
	if int64(len(p)) <= w.left {
		w.left -= int64(len(p))
		return w.inner.Write(p)
	}
	n, _ := w.inner.Write(p[:w.left])
	w.left = 0
	w.torn = true
	return n, w.in.inject(ModeTornWriteWrites, w.name)
}

func (w *tornWriter) Close() error {
	if !w.torn {
		// The data fit under the tear point; nothing was damaged.
		return w.inner.Close()
	}
	// Close the inner writer to release resources, but report failure: a
	// torn object must never look successfully published.
	_ = w.inner.Close()
	return w.in.inject(ModeTornWriteCloses, w.name)
}

// silentTruncateWriter keeps the first left bytes and silently discards
// the rest: every Write reports full success and Close publishes the
// truncated object. The nastiest storage failure mode — only end-to-end
// verification downstream can notice.
type silentTruncateWriter struct {
	inner io.WriteCloser
	left  int64
}

func (w *silentTruncateWriter) Write(p []byte) (int, error) {
	if w.left <= 0 {
		return len(p), nil
	}
	keep := p
	if int64(len(keep)) > w.left {
		keep = keep[:w.left]
	}
	if _, err := w.inner.Write(keep); err != nil {
		// Even the organic error is swallowed: the writer lies to the end.
		w.left = 0
		return len(p), nil
	}
	w.left -= int64(len(keep))
	return len(p), nil
}

func (w *silentTruncateWriter) Close() error {
	_ = w.inner.Close()
	return nil
}
