// Package faults provides deterministic, seeded fault injection for the
// checkpoint/restore stack: wrappers around storage.Store and
// dfs.Transport that fail operations with configurable probability, crash
// a DataNode after its Nth block write, tear block writes short, and add
// latency — the chaos harness the robustness tests drive the full
// preempt→checkpoint→restore cycle under.
//
// Every decision comes from one seeded PRNG behind a mutex, so a chaos
// run with a fixed seed injects exactly the same faults every time; the
// event-driven cluster emulation stays reproducible even while being
// sabotaged. Every injected fault is counted in a metrics.Counters
// registry, letting tests assert both that faults actually fired and that
// the system absorbed all of them.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"preemptsched/internal/metrics"
)

// ErrInjected is the sentinel wrapped by every injected fault, so tests
// and retry logic can tell sabotage from organic failures.
var ErrInjected = errors.New("faults: injected failure")

// Fault-mode counter names. Each injected fault increments the counter of
// its mode; the cluster emulation mirrors them into the run report under
// "faults.injected.<mode>". The names are dotted lowercase so the mirrored
// form satisfies the repo's metric-name contract (see internal/lint,
// metricname) and so reportcheck and dashboards can address them directly.
const (
	ModeNodeCrashes       = "node.crashes"
	ModeStoreCrashOps     = "store.crash.ops"
	ModeStoreCreateErrors = "store.create.errors"
	ModeTornWrites        = "torn.writes"
	ModeSilentTruncations = "silent.truncations"
	ModeTornWriteWrites   = "torn.write.writes"
	ModeTornWriteCloses   = "torn.write.closes"
	ModeNameNodeRPCErrors = "namenode.rpc.errors"
	ModeDeadNodeRPCs      = "dead.node.rpcs"
	ModeDataNodeRPCErrors = "datanode.rpc.errors"
	ModeCrashedWrites     = "crashed.writes"
	ModeBitFlips          = "bit.flips"
	ModeNMCrashes         = "nm.crashes"
	ModeNMPartitionDrops  = "nm.partition.drops"
	ModeHeartbeatDrops    = "heartbeats.dropped"
)

// Plan configures a fault scenario. The zero value injects nothing.
type Plan struct {
	// Seed feeds the PRNG behind every probabilistic decision.
	Seed int64

	// RPCErrorRate is the per-operation probability that a DataNode RPC
	// (read/write/delete block) fails before reaching the node.
	RPCErrorRate float64
	// RPCErrorNodes restricts RPCErrorRate to these DataNode IDs; empty
	// means every node is eligible.
	RPCErrorNodes []string
	// NameNodeErrorRate is the per-operation probability that a NameNode
	// RPC fails before reaching the NameNode.
	NameNodeErrorRate float64
	// RPCDelay is added latency per DataNode/NameNode operation.
	RPCDelay time.Duration

	// CrashNode names a DataNode that crashes permanently after it has
	// accepted CrashAfterWrites block writes: the write that would be
	// number CrashAfterWrites+1 fails mid-flight and every operation on
	// the node fails from then on.
	CrashNode        string
	CrashAfterWrites int
	// OnCrash, when set, runs once at the moment CrashNode dies (e.g. to
	// trigger a NameNode decommission sweep).
	OnCrash func(id string)

	// BitFlipRate is the per-replica-write probability that the block's
	// bytes rot at rest AFTER landing: one bit of the stored payload is
	// flipped underneath its checksums, the silent disk corruption the
	// integrity machinery exists to catch. The write itself succeeds — the
	// damage is only visible to checksum verification on a later read or
	// scrub.
	BitFlipRate float64
	// BitFlipMaxPerBlock caps how many replicas of any one block may be
	// bit-flipped. Zero means DefaultBitFlipMaxPerBlock (1), which with
	// 3-way replication guarantees a strict minority of each block's
	// replicas is corrupt, so every read can still fail over to a clean
	// copy.
	BitFlipMaxPerBlock int

	// CreateFailRate is the per-operation probability that a store Create
	// fails outright (the checkpoint dump cannot even start).
	CreateFailRate float64
	// TornWriteRate is the per-Create probability that the returned
	// writer tears: it accepts TornWriteBytes bytes, then fails every
	// subsequent write and the close — a short/torn block write.
	TornWriteRate float64
	// TornWriteBytes is how many bytes a torn writer accepts before
	// failing. Zero means DefaultTornWriteBytes.
	TornWriteBytes int64
	// SilentTruncateRate is the per-Create probability that the returned
	// writer silently drops everything past SilentTruncateBytes: unlike a
	// torn write, every Write and the Close SUCCEED, so the caller believes
	// the object was fully published. Only end-to-end verification (image
	// CRC trailers, restore manifests) can catch it.
	SilentTruncateRate float64
	// SilentTruncateBytes is how many bytes a silently truncating writer
	// keeps. Zero means DefaultTornWriteBytes.
	SilentTruncateBytes int64
	// StoreCrashAfterCreates, when > 0, kills the wrapped store after that
	// many successful Creates: every later operation fails. Wrapped around
	// a NameNode's journal store, this is a NameNode process dying between
	// journal records mid-workload.
	StoreCrashAfterCreates int
	// StoreDelay is added latency per store operation.
	StoreDelay time.Duration

	// Compute-node (NodeManager) fault modes. Unlike the DFS and store
	// faults above, these fire on the cluster emulation's virtual clock:
	// the injector supplies only the seeded decisions and the fault
	// counters, while internal/yarn schedules the events themselves.

	// NMCrashAt, when > 0, crashes one NodeManager permanently at that
	// virtual time: its container processes die on the spot and its
	// heartbeats stop, so the RM's liveness sweep declares the node dead
	// one timeout later and reschedules its tasks.
	NMCrashAt time.Duration
	// NMCrashNode is the 0-based index of the NodeManager NMCrashAt kills.
	NMCrashNode int

	// NMPartitionAt, when > 0, partitions one NodeManager from the RM at
	// that virtual time: the node keeps running its containers but its
	// heartbeats stop arriving. A partition outlasting the liveness
	// timeout gets the node declared dead and its containers fenced; when
	// the partition heals NMPartitionFor later the node re-registers
	// empty.
	NMPartitionAt time.Duration
	// NMPartitionNode is the 0-based index of the partitioned NodeManager.
	NMPartitionNode int
	// NMPartitionFor is how long the partition lasts. Zero with
	// NMPartitionAt > 0 means the partition never heals.
	NMPartitionFor time.Duration

	// HeartbeatDropRate is the per-heartbeat probability that an NM
	// heartbeat is lost in flight. Enough consecutive drops look exactly
	// like a partition to the RM's liveness sweep.
	HeartbeatDropRate float64
}

// HasNMFaults reports whether the plan schedules any compute-node
// faults. The yarn cluster uses it to auto-enable the liveness sweep:
// an NM fault without a sweep would strand the node's tasks forever.
func (p Plan) HasNMFaults() bool {
	return p.NMCrashAt > 0 || p.NMPartitionAt > 0 || p.HeartbeatDropRate > 0
}

// Validate rejects plans whose probabilities or node-fault shapes are
// out of range. The zero value is valid (and injects nothing).
func (p Plan) Validate() error {
	rates := map[string]float64{
		"RPCErrorRate":       p.RPCErrorRate,
		"NameNodeErrorRate":  p.NameNodeErrorRate,
		"BitFlipRate":        p.BitFlipRate,
		"CreateFailRate":     p.CreateFailRate,
		"TornWriteRate":      p.TornWriteRate,
		"SilentTruncateRate": p.SilentTruncateRate,
		"HeartbeatDropRate":  p.HeartbeatDropRate,
	}
	for name, r := range rates {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: %s %v is outside [0,1]", name, r)
		}
	}
	if p.NMCrashNode < 0 {
		return fmt.Errorf("faults: NMCrashNode %d is negative", p.NMCrashNode)
	}
	if p.NMPartitionNode < 0 {
		return fmt.Errorf("faults: NMPartitionNode %d is negative", p.NMPartitionNode)
	}
	for name, d := range map[string]time.Duration{
		"NMCrashAt":      p.NMCrashAt,
		"NMPartitionAt":  p.NMPartitionAt,
		"NMPartitionFor": p.NMPartitionFor,
	} {
		if d < 0 {
			return fmt.Errorf("faults: %s %v is negative", name, d)
		}
	}
	return nil
}

// DefaultTornWriteBytes is how much of a torn write lands before the tear
// when the plan does not say otherwise.
const DefaultTornWriteBytes int64 = 64 << 10

// DefaultBitFlipMaxPerBlock keeps at-rest corruption to one replica per
// block unless the plan says otherwise.
const DefaultBitFlipMaxPerBlock = 1

// Injector is the seeded decision source shared by all wrappers of one
// scenario. It is safe for concurrent use.
type Injector struct {
	plan     Plan
	counters *metrics.Counters

	mu         sync.Mutex
	rng        *rand.Rand
	crashed    map[string]bool
	crashSeen  int
	rpcTargets map[string]bool
	// flips counts bit-flipped replicas per block, enforcing
	// BitFlipMaxPerBlock.
	flips map[int64]int
	// createSeen / storeDead drive StoreCrashAfterCreates.
	createSeen int
	storeDead  bool
}

// NewInjector builds the decision source for plan.
func NewInjector(plan Plan) *Injector {
	in := &Injector{
		plan:     plan,
		counters: metrics.NewCounters(),
		rng:      rand.New(rand.NewSource(plan.Seed)),
		crashed:  make(map[string]bool),
		flips:    make(map[int64]int),
	}
	if len(plan.RPCErrorNodes) > 0 {
		in.rpcTargets = make(map[string]bool, len(plan.RPCErrorNodes))
		for _, id := range plan.RPCErrorNodes {
			in.rpcTargets[id] = true
		}
	}
	return in
}

// Counters exposes the per-fault-mode injection counts.
func (in *Injector) Counters() *metrics.Counters { return in.counters }

// Plan returns the scenario being injected. The node list is detached
// so a caller sorting or rewriting it cannot corrupt the injector's
// targeting mid-run.
func (in *Injector) Plan() Plan {
	p := in.plan
	p.RPCErrorNodes = append([]string(nil), p.RPCErrorNodes...)
	return p
}

// roll returns true with probability p.
func (in *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64() < p
}

// inject counts one fault of the given mode and returns the error to
// surface.
func (in *Injector) inject(mode string, detail string) error {
	//lint:ignore metricname mode is always one of the dotted Mode* constants above; the indirection is the injector's whole API
	in.counters.Add(mode, 1)
	return fmt.Errorf("%w: %s (%s)", ErrInjected, mode, detail)
}

// delay sleeps for d (real time) when positive.
func delay(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// rpcEligible reports whether node id is in scope for RPC error injection.
func (in *Injector) rpcEligible(id string) bool {
	return in.rpcTargets == nil || in.rpcTargets[id]
}

// nodeCrashed reports whether id has already crashed.
func (in *Injector) nodeCrashed(id string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.crashed[id]
}

// noteBitFlip decides whether the replica of block just written should
// rot at rest, respecting the per-block flip cap, and returns the bit to
// flip. All decisions come from the seeded PRNG, so a scenario flips the
// same bits of the same blocks every run.
func (in *Injector) noteBitFlip(block int64) (bit int, ok bool) {
	if in.plan.BitFlipRate <= 0 {
		return 0, false
	}
	max := in.plan.BitFlipMaxPerBlock
	if max <= 0 {
		max = DefaultBitFlipMaxPerBlock
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.flips[block] >= max {
		return 0, false
	}
	if in.plan.BitFlipRate < 1 && in.rng.Float64() >= in.plan.BitFlipRate {
		return 0, false
	}
	in.flips[block]++
	bit = in.rng.Intn(1 << 20)
	return bit, true
}

// noteCreate records one successful store Create and reports whether the
// store has now crashed (StoreCrashAfterCreates reached).
func (in *Injector) noteCreate() bool {
	if in.plan.StoreCrashAfterCreates <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.storeDead {
		return true
	}
	in.createSeen++
	if in.createSeen >= in.plan.StoreCrashAfterCreates {
		in.storeDead = true
	}
	return false
}

// storeCrashed reports whether StoreCrashAfterCreates has fired.
func (in *Injector) storeCrashed() bool {
	if in.plan.StoreCrashAfterCreates <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.storeDead
}

// DropHeartbeat decides whether one NM heartbeat is lost in flight
// (HeartbeatDropRate) and counts the drop.
func (in *Injector) DropHeartbeat() bool {
	if !in.roll(in.plan.HeartbeatDropRate) {
		return false
	}
	in.counters.Add(ModeHeartbeatDrops, 1)
	return true
}

// NoteNMCrash counts the configured NodeManager crash firing.
func (in *Injector) NoteNMCrash() { in.counters.Add(ModeNMCrashes, 1) }

// NotePartitionDrop counts one heartbeat suppressed by an active RM↔NM
// partition.
func (in *Injector) NotePartitionDrop() { in.counters.Add(ModeNMPartitionDrops, 1) }

// noteWrite records a block write accepted by id and decides whether this
// write is the one that kills the configured crash node. It returns true
// when the write must fail because the node crashes now.
func (in *Injector) noteWrite(id string) bool {
	if id != in.plan.CrashNode {
		return false
	}
	in.mu.Lock()
	if in.crashed[id] {
		in.mu.Unlock()
		return true
	}
	if in.crashSeen < in.plan.CrashAfterWrites {
		in.crashSeen++
		in.mu.Unlock()
		return false
	}
	in.crashed[id] = true
	in.mu.Unlock()
	in.counters.Add(ModeNodeCrashes, 1)
	if in.plan.OnCrash != nil {
		in.plan.OnCrash(id)
	}
	return true
}
