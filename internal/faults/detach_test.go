package faults

import "testing"

// TestPlanDetached guards the Plan() defensive copy from the sliceshare
// sweep: a caller sorting or rewriting the returned node list must not
// corrupt the injector's targeting mid-run.
func TestPlanDetached(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, RPCErrorRate: 0.5, RPCErrorNodes: []string{"dn-1", "dn-2"}})
	p := in.Plan()
	p.RPCErrorNodes[0] = "scribbled"
	if got := in.Plan().RPCErrorNodes[0]; got != "dn-1" {
		t.Fatalf("injector plan corrupted through returned copy: RPCErrorNodes[0] = %q, want %q", got, "dn-1")
	}
}
