package faults

import (
	"preemptsched/internal/dfs"
)

// WrapTransport interposes the injector between every component and the
// DFS. Build the real cluster on an inner transport, then hand every
// client *and* every DataNode this wrapper, so pipeline forwarding between
// DataNodes suffers the same faults client RPCs do.
func WrapTransport(inner dfs.Transport, in *Injector) dfs.Transport {
	return &faultTransport{inner: inner, in: in}
}

type faultTransport struct {
	inner dfs.Transport
	in    *Injector
}

var _ dfs.Transport = (*faultTransport)(nil)

func (t *faultTransport) NameNode() (dfs.NameNodeAPI, error) {
	nn, err := t.inner.NameNode()
	if err != nil {
		return nil, err
	}
	return &faultNameNode{inner: nn, in: t.in}, nil
}

func (t *faultTransport) DataNode(info dfs.DataNodeInfo) (dfs.DataNodeAPI, error) {
	dn, err := t.inner.DataNode(info)
	if err != nil {
		return nil, err
	}
	return &faultDataNode{inner: dn, id: info.ID, in: t.in}, nil
}

// faultNameNode injects failures ahead of NameNode calls. Faults fire
// before the inner call runs, so an injected failure never leaves hidden
// server-side effects — retried operations stay idempotent.
type faultNameNode struct {
	inner dfs.NameNodeAPI
	in    *Injector
}

var _ dfs.NameNodeAPI = (*faultNameNode)(nil)

func (n *faultNameNode) pre(op string) error {
	delay(n.in.plan.RPCDelay)
	if n.in.roll(n.in.plan.NameNodeErrorRate) {
		return n.in.inject(ModeNameNodeRPCErrors, op)
	}
	return nil
}

func (n *faultNameNode) Register(dn dfs.DataNodeInfo) error {
	if err := n.pre("register"); err != nil {
		return err
	}
	return n.inner.Register(dn)
}

func (n *faultNameNode) Heartbeat(dn dfs.DataNodeInfo) error {
	if err := n.pre("heartbeat"); err != nil {
		return err
	}
	return n.inner.Heartbeat(dn)
}

func (n *faultNameNode) Create(path string) ([]dfs.BlockLocation, error) {
	if err := n.pre("create"); err != nil {
		return nil, err
	}
	return n.inner.Create(path)
}

func (n *faultNameNode) AddBlock(path, preferred string) (dfs.BlockLocation, error) {
	if err := n.pre("addblock"); err != nil {
		return dfs.BlockLocation{}, err
	}
	return n.inner.AddBlock(path, preferred)
}

func (n *faultNameNode) ReportBlock(path string, id dfs.BlockID, replicas []dfs.DataNodeInfo) error {
	if err := n.pre("reportblock"); err != nil {
		return err
	}
	return n.inner.ReportBlock(path, id, replicas)
}

func (n *faultNameNode) Complete(path string, size int64) error {
	if err := n.pre("complete"); err != nil {
		return err
	}
	return n.inner.Complete(path, size)
}

func (n *faultNameNode) Stat(path string) (dfs.FileInfo, error) {
	if err := n.pre("stat"); err != nil {
		return dfs.FileInfo{}, err
	}
	return n.inner.Stat(path)
}

func (n *faultNameNode) Delete(path string) (dfs.FileInfo, error) {
	if err := n.pre("delete"); err != nil {
		return dfs.FileInfo{}, err
	}
	return n.inner.Delete(path)
}

func (n *faultNameNode) List(prefix string) ([]string, error) {
	if err := n.pre("list"); err != nil {
		return nil, err
	}
	return n.inner.List(prefix)
}

func (n *faultNameNode) ReportBadReplica(id dfs.BlockID, bad dfs.DataNodeInfo) error {
	if err := n.pre("reportbadreplica"); err != nil {
		return err
	}
	return n.inner.ReportBadReplica(id, bad)
}

func (n *faultNameNode) BlockReport(dn dfs.DataNodeInfo, blocks []dfs.BlockID) ([]dfs.BlockID, error) {
	if err := n.pre("blockreport"); err != nil {
		return nil, err
	}
	return n.inner.BlockReport(dn, blocks)
}

// faultDataNode injects failures ahead of DataNode calls: random per-op
// errors, the configured crash-at-Nth-block-write, and permanent death
// after the crash.
type faultDataNode struct {
	inner dfs.DataNodeAPI
	id    string
	in    *Injector
}

var _ dfs.DataNodeAPI = (*faultDataNode)(nil)

func (d *faultDataNode) pre(op string) error {
	delay(d.in.plan.RPCDelay)
	if d.in.nodeCrashed(d.id) {
		return d.in.inject(ModeDeadNodeRPCs, d.id+" "+op)
	}
	if d.in.rpcEligible(d.id) && d.in.roll(d.in.plan.RPCErrorRate) {
		return d.in.inject(ModeDataNodeRPCErrors, d.id+" "+op)
	}
	return nil
}

// blockCorrupter is implemented by *dfs.DataNode: flip one stored payload
// bit underneath its checksums. Only reachable through the in-process
// transport, where the wrapper holds the concrete node — which is exactly
// where the bit-flip chaos scenarios run.
type blockCorrupter interface {
	CorruptStoredBlock(id dfs.BlockID, bit int) bool
}

func (d *faultDataNode) WriteBlock(id dfs.BlockID, data []byte, pipeline []dfs.DataNodeInfo) error {
	if err := d.pre("writeblock"); err != nil {
		return err
	}
	if d.in.noteWrite(d.id) {
		return d.in.inject(ModeCrashedWrites, d.id)
	}
	if err := d.inner.WriteBlock(id, data, pipeline); err != nil {
		return err
	}
	// At-rest bit rot: the write (and its pipeline forwarding) succeeded;
	// only THIS node's stored copy decays. Pipeline peers took their own
	// independent roll when the forwarded write passed through their
	// wrappers.
	if bc, ok := d.inner.(blockCorrupter); ok {
		if bit, flip := d.in.noteBitFlip(int64(id)); flip {
			if bc.CorruptStoredBlock(id, bit) {
				d.in.counters.Add(ModeBitFlips, 1)
			}
		}
	}
	return nil
}

func (d *faultDataNode) ReadBlock(id dfs.BlockID) ([]byte, error) {
	if err := d.pre("readblock"); err != nil {
		return nil, err
	}
	return d.inner.ReadBlock(id)
}

func (d *faultDataNode) DeleteBlock(id dfs.BlockID) error {
	if err := d.pre("deleteblock"); err != nil {
		return err
	}
	return d.inner.DeleteBlock(id)
}
