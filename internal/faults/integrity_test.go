package faults

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"preemptsched/internal/dfs"
	"preemptsched/internal/obs"
	"preemptsched/internal/storage"
)

// newCorruptibleDFS is newTestDFS but keeps the concrete DataNode handles
// so tests can inspect stored replicas directly.
func newCorruptibleDFS(t *testing.T, in *Injector, nodes, repl int) (*dfs.NameNode, dfs.Transport, []*dfs.DataNode) {
	t.Helper()
	inner := dfs.NewInProcTransport()
	nn := dfs.NewNameNode(repl)
	inner.SetNameNode(nn)
	view := WrapTransport(inner, in)
	dns := make([]*dfs.DataNode, nodes)
	for i := 0; i < nodes; i++ {
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: fmt.Sprintf("dn-%d", i)}
		dns[i] = dfs.NewDataNode(info, view)
		inner.AddDataNode(info, dns[i])
		if err := nn.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	nn.AttachTransport(view)
	return nn, view, dns
}

// TestBitFlipStrictMinorityAndScrubHeals: with BitFlipRate=1 and the
// default per-block cap of one flip, every block decays on exactly one
// replica — a strict minority under 3-way replication — so reads must
// still succeed via failover, and one scrub sweep must converge the
// cluster back to zero corrupt replicas.
func TestBitFlipStrictMinorityAndScrubHeals(t *testing.T) {
	in := NewInjector(Plan{Seed: 11, BitFlipRate: 1})
	nn, view, dns := newCorruptibleDFS(t, in, 3, 3)
	reg := obs.NewRegistry()
	nn.Instrument(reg)
	cli := dfs.NewClient(view, dfs.WithBlockSize(512), dfs.WithLocalNode("dn-0"))

	data := make([]byte, 2048)
	for i := range data {
		data[i] = byte(i * 17)
	}
	if err := writeFile(t, cli, "/rot/file", data); err != nil {
		t.Fatal(err)
	}

	flips := in.Counters().Get(ModeBitFlips)
	if flips == 0 {
		t.Fatal("BitFlipRate=1 injected no bit flips")
	}

	// Strict minority: at most one corrupt copy per block.
	countCorrupt := func() map[dfs.BlockID]int {
		corrupt := map[dfs.BlockID]int{}
		for _, dn := range dns {
			for _, id := range dn.BlockIDs() {
				if err := dn.VerifyBlock(id); errors.Is(err, dfs.ErrCorruptBlock) {
					corrupt[id]++
				}
			}
		}
		return corrupt
	}
	corrupt := countCorrupt()
	if int64(len(corrupt)) != flips {
		t.Fatalf("%d blocks corrupt, %d flips injected", len(corrupt), flips)
	}
	for id, n := range corrupt {
		if n != 1 {
			t.Fatalf("block %d has %d corrupt replicas, cap is 1", id, n)
		}
	}

	// Reads fail over past the rotten copies and return the exact bytes.
	r, err := cli.Open("/rot/file")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatalf("read with one corrupt replica per block: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("read returned wrong bytes")
	}

	// One scrub sweep: every corrupt copy found, evicted, re-replicated.
	// The per-block flip budget is already spent, so the fresh copies
	// written during healing cannot rot again.
	var found int
	for _, dn := range dns {
		res := dn.ScrubOnce(nn)
		found += res.Corrupt
		if res.Corrupt != res.Reported {
			t.Fatalf("scrub on %s found %d but reported %d", dn.Info().ID, res.Corrupt, res.Reported)
		}
	}
	if left := countCorrupt(); len(left) != 0 {
		t.Fatalf("cluster still has corrupt replicas after scrubbing: %v", left)
	}
	snap := reg.Snapshot()
	if snap.Counter("dfs.namenode.replicas.quarantined") == 0 ||
		snap.Counter("dfs.namenode.corrupt.rereplicated") == 0 {
		t.Fatal("quarantine/re-replication counters did not move")
	}
	if snap.Counter("dfs.namenode.corrupt.lost") != 0 {
		t.Fatal("strict-minority corruption lost a block")
	}
	if int64(found) != flips {
		t.Fatalf("scrub found %d corrupt replicas, %d flips injected", found, flips)
	}
}

// TestSilentTruncationLiesToTheWriter: the truncating writer must report
// every Write and the Close as successful while publishing a short
// object — and the checkpoint layer's verification must then catch the
// damage that the write path never surfaced.
func TestSilentTruncationLiesToTheWriter(t *testing.T) {
	in := NewInjector(Plan{Seed: 2, SilentTruncateRate: 1, SilentTruncateBytes: 64})
	st := WrapStore(storage.NewMemStore(), in)

	w, err := st.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300)
	n, err := w.Write(payload)
	if n != len(payload) || err != nil {
		t.Fatalf("truncating writer confessed: n=%d err=%v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("truncating close confessed: %v", err)
	}
	size, err := st.Size("obj")
	if err != nil {
		t.Fatal(err)
	}
	if size != 64 {
		t.Fatalf("stored %d bytes, want silent truncation to 64", size)
	}
	if in.Counters().Get(ModeSilentTruncations) == 0 {
		t.Fatalf("counters: %s", in.Counters())
	}
}

// TestStoreCrashAfterCreates: the Nth create completes and then the store
// is dead — the N+1st create and every subsequent operation fail. This is
// the "NameNode dies between journal records" primitive.
func TestStoreCrashAfterCreates(t *testing.T) {
	in := NewInjector(Plan{Seed: 4, StoreCrashAfterCreates: 2})
	st := WrapStore(storage.NewMemStore(), in)

	for i := 0; i < 2; i++ {
		w, err := st.Create(fmt.Sprintf("edits/%d", i))
		if err != nil {
			t.Fatalf("create %d before crash point: %v", i, err)
		}
		w.Write([]byte("record"))
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.Create("edits/2"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash create = %v, want injected failure", err)
	}
	if _, err := st.Open("edits/0"); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash open = %v, want injected failure", err)
	}
	if _, err := st.List(""); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-crash list = %v, want injected failure", err)
	}
	if in.Counters().Get(ModeStoreCrashOps) == 0 {
		t.Fatalf("counters: %s", in.Counters())
	}
}

// TestNameNodeCrashRecoveryMatchesControl is the crash-recovery
// acceptance scenario: the NameNode journals into a store that dies
// between records partway through a live client workload. A fresh
// NameNode replaying the surviving journal, reconciled by block reports
// from the DataNodes, must reach metadata byte-identical to the live
// NameNode — which is a valid never-crashed control because a failed
// journal append abandons the mutation before it is applied, so the live
// node's state never runs ahead of the durable log.
func TestNameNodeCrashRecoveryMatchesControl(t *testing.T) {
	durable := storage.NewMemStore()
	in := NewInjector(Plan{Seed: 6, StoreCrashAfterCreates: 12})
	journal := WrapStore(durable, in)

	inner := dfs.NewInProcTransport()
	nn := dfs.NewNameNode(3)
	if _, err := nn.AttachJournal(journal); err != nil {
		t.Fatal(err)
	}
	inner.SetNameNode(nn)
	var dns []*dfs.DataNode
	for i := 0; i < 3; i++ {
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: fmt.Sprintf("dn-%d", i)}
		dn := dfs.NewDataNode(info, inner)
		inner.AddDataNode(info, dn)
		if err := nn.Register(info); err != nil {
			t.Fatal(err)
		}
		dns = append(dns, dn)
	}
	cli := dfs.NewClient(inner, dfs.WithBlockSize(512), dfs.WithLocalNode("dn-0"))

	// Drive writes (and one delete) until the dying journal store kills an
	// operation mid-file.
	var failedAt = -1
	for i := 0; i < 20; i++ {
		if err := writeFile(t, cli, fmt.Sprintf("/wal/%d", i), make([]byte, 1300)); err != nil {
			failedAt = i
			break
		}
		if i == 1 {
			if err := cli.Remove("/wal/0"); err != nil {
				failedAt = i
				break
			}
		}
	}
	if failedAt <= 0 {
		t.Fatalf("workload failed at %d; want a crash after some progress", failedAt)
	}
	if in.Counters().Get(ModeStoreCrashOps) == 0 {
		t.Fatal("journal store never crashed")
	}

	// Recover from the durable (inner) store, as a restarted process would.
	recovered := dfs.NewNameNode(3)
	if _, err := recovered.AttachJournal(durable); err != nil {
		t.Fatalf("replaying journal after crash: %v", err)
	}
	for _, dn := range dns {
		stale, err := recovered.BlockReport(dn.Info(), dn.BlockIDs())
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range stale {
			_ = dn.DeleteBlock(id)
		}
	}

	want, got := nn.MetadataDigest(), recovered.MetadataDigest()
	if want == "" {
		t.Fatal("control digest empty — workload made no progress before the crash")
	}
	if got != want {
		t.Fatalf("recovered metadata diverges from never-crashed control\ncontrol:\n%s\nrecovered:\n%s", want, got)
	}
}
