package faults

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"

	"preemptsched/internal/dfs"
)

// newTestDFSN builds an n-node in-process DFS with the given replication
// factor, every client and DataNode routed through the injector.
func newTestDFSN(t *testing.T, in *Injector, n, replication int) (*dfs.NameNode, dfs.Transport) {
	t.Helper()
	inner := dfs.NewInProcTransport()
	nn := dfs.NewNameNode(replication)
	inner.SetNameNode(nn)
	view := WrapTransport(inner, in)
	for i := 0; i < n; i++ {
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: fmt.Sprintf("dn-%d", i)}
		inner.AddDataNode(info, dfs.NewDataNode(info, view))
		if err := nn.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	return nn, view
}

// TestDecommissionRacesDeadNodeTraffic: dn-1 crashes mid-pipeline while
// clients keep writing, and the NameNode decommission sweep starts the
// instant it dies — concurrent with the live traffic still bouncing
// RPCs off the corpse. The re-replication books must balance (every
// block the dead node held accounted recovered, degraded, or lost), no
// block may still list the decommissioned node, and every file whose
// Close succeeded must read back intact afterwards.
func TestDecommissionRacesDeadNodeTraffic(t *testing.T) {
	crashed := make(chan string, 1)
	in := NewInjector(Plan{
		Seed:             11,
		CrashNode:        "dn-1",
		CrashAfterWrites: 8,
		OnCrash:          func(id string) { crashed <- id },
	})
	nn, view := newTestDFSN(t, in, 5, 2)

	blob := func(seed, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(seed*31 + i*17)
		}
		return b
	}

	// Seed two files through dn-1 while it is healthy — 6 of its 8
	// pre-crash block writes — guaranteeing it holds replicas the sweep
	// must move.
	files := map[string][]byte{}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("/seed/%d", i)
		data := blob(i, 1500)
		cli := dfs.NewClient(view, dfs.WithBlockSize(512), dfs.WithLocalNode("dn-1"))
		if err := writeFile(t, cli, name, data); err != nil {
			t.Fatalf("seed write %s: %v", name, err)
		}
		files[name] = data
	}

	var (
		report    *dfs.ReplicationReport
		sweepErr  error
		sweepDone = make(chan struct{})
	)
	go func() {
		defer close(sweepDone)
		report, sweepErr = nn.Decommission(<-crashed, view)
	}()

	// Live traffic: the writers pinned to dn-1 trip the crash
	// mid-pipeline; the rest keep the cluster busy throughout the sweep.
	// Failed writes are expected once the node is dead — durability is
	// only owed to files whose Close succeeded.
	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for w, local := range []string{"dn-1", "dn-1", "dn-2", "dn-3"} {
		w, local := w, local
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli := dfs.NewClient(view, dfs.WithBlockSize(512), dfs.WithLocalNode(local))
			for i := 0; i < 5; i++ {
				name := fmt.Sprintf("/live/%d/%d", w, i)
				data := blob(w*10+i, 1500)
				if err := writeFile(t, cli, name, data); err != nil {
					continue
				}
				mu.Lock()
				files[name] = data
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	<-sweepDone

	if sweepErr != nil {
		t.Fatalf("decommission: %v", sweepErr)
	}
	if report.BlocksAffected == 0 {
		t.Fatal("dn-1 held no replicas; weak test")
	}
	if got := report.Recovered + report.Degraded + report.Lost; got != report.BlocksAffected {
		t.Fatalf("books out of balance: %+v (recovered+degraded+lost = %d)", *report, got)
	}
	c := in.Counters()
	if c.Get(ModeNodeCrashes) != 1 {
		t.Fatalf("node crashes = %d, want 1", c.Get(ModeNodeCrashes))
	}
	if c.Get(ModeDeadNodeRPCs) == 0 {
		t.Fatal("no RPC ever hit the corpse: the race never happened")
	}

	// The seed files wrote at replication 2 before the crash, so losing
	// one node loses no data — and the sweep must have scrubbed dn-1
	// from their block maps.
	for i := 0; i < 2; i++ {
		info, err := nn.Stat(fmt.Sprintf("/seed/%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range info.Blocks {
			for _, r := range b.Replicas {
				if r.ID == "dn-1" {
					t.Errorf("block %d still lists the decommissioned node", b.ID)
				}
			}
		}
	}
	reader := dfs.NewClient(view, dfs.WithBlockSize(512), dfs.WithLocalNode("dn-2"))
	for name, want := range files {
		r, err := reader.Open(name)
		if err != nil {
			t.Errorf("open %s: %v", name, err)
			continue
		}
		got, err := io.ReadAll(r)
		r.Close()
		if err != nil {
			t.Errorf("read %s: %v", name, err)
			continue
		}
		if !bytes.Equal(got, want) {
			t.Errorf("%s corrupted across crash + decommission", name)
		}
	}
}
