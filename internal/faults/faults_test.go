package faults

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"preemptsched/internal/dfs"
	"preemptsched/internal/storage"
)

// newTestDFS builds a 3-node in-process DFS whose clients and DataNodes
// all go through the injector's transport wrapper.
func newTestDFS(t *testing.T, in *Injector) (*dfs.NameNode, dfs.Transport) {
	t.Helper()
	inner := dfs.NewInProcTransport()
	nn := dfs.NewNameNode(3)
	inner.SetNameNode(nn)
	view := WrapTransport(inner, in)
	for i := 0; i < 3; i++ {
		info := dfs.DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: fmt.Sprintf("dn-%d", i)}
		inner.AddDataNode(info, dfs.NewDataNode(info, view))
		if err := nn.Register(info); err != nil {
			t.Fatal(err)
		}
	}
	return nn, view
}

func writeFile(t *testing.T, cli *dfs.Client, name string, data []byte) error {
	t.Helper()
	w, err := cli.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// TestInjectorDeterminism: the same seed must produce the same fault
// sequence, and injected errors must wrap ErrInjected.
func TestInjectorDeterminism(t *testing.T) {
	run := func() []string {
		in := NewInjector(Plan{Seed: 42, RPCErrorRate: 0.3})
		_, view := newTestDFS(t, in)
		dn, err := view.DataNode(dfs.DataNodeInfo{ID: "dn-0"})
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for i := 0; i < 200; i++ {
			if _, err := dn.ReadBlock(dfs.BlockID(i)); errors.Is(err, ErrInjected) {
				outcomes = append(outcomes, fmt.Sprintf("fault@%d", i))
			}
		}
		return outcomes
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("30% error rate injected nothing in 200 ops")
	}
	if len(a) != len(b) {
		t.Fatalf("two seeded runs diverged: %d vs %d faults", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d at different op: %s vs %s", i, a[i], b[i])
		}
	}
}

// TestRetriesAbsorbRPCErrors: a moderate error rate must be fully hidden
// by the client's retry/failover logic.
func TestRetriesAbsorbRPCErrors(t *testing.T) {
	in := NewInjector(Plan{Seed: 7, RPCErrorRate: 0.15, NameNodeErrorRate: 0.05})
	_, view := newTestDFS(t, in)
	cli := dfs.NewClient(view, dfs.WithBlockSize(512), dfs.WithLocalNode("dn-0"))

	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := writeFile(t, cli, "/chaos/file", data); err != nil {
		t.Fatalf("write under faults: %v", err)
	}
	r, err := cli.Open("/chaos/file")
	if err != nil {
		t.Fatalf("open under faults: %v", err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatalf("read under faults: %v", err)
	}
	if string(got) != string(data) {
		t.Fatal("data corrupted by fault recovery")
	}
	if in.Counters().Total() == 0 {
		t.Fatal("no faults fired")
	}
	if cli.Stats().Retries == 0 {
		t.Fatal("faults fired but the client never retried")
	}
}

// TestCrashAtNthWrite: the configured node dies at its Nth block write,
// OnCrash fires exactly once, and every later RPC to it fails.
func TestCrashAtNthWrite(t *testing.T) {
	var crashed []string
	in := NewInjector(Plan{
		Seed:             1,
		CrashNode:        "dn-1",
		CrashAfterWrites: 2,
		OnCrash:          func(id string) { crashed = append(crashed, id) },
	})
	_, view := newTestDFS(t, in)
	dn, err := view.DataNode(dfs.DataNodeInfo{ID: "dn-1"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := dn.WriteBlock(dfs.BlockID(i), []byte("x"), nil); err != nil {
			t.Fatalf("write %d before crash point: %v", i, err)
		}
	}
	if err := dn.WriteBlock(dfs.BlockID(2), []byte("x"), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("crash write = %v, want injected failure", err)
	}
	if _, err := dn.ReadBlock(dfs.BlockID(0)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read from crashed node = %v, want injected failure", err)
	}
	if len(crashed) != 1 || crashed[0] != "dn-1" {
		t.Fatalf("OnCrash calls = %v, want exactly [dn-1]", crashed)
	}
	c := in.Counters()
	if c.Get(ModeNodeCrashes) != 1 || c.Get(ModeDeadNodeRPCs) == 0 {
		t.Fatalf("counters: %s", c)
	}
}

// TestTornWriteNeverPublishes: a torn store write must fail the close, so
// the half-written object is never mistaken for a published one.
func TestTornWriteNeverPublishes(t *testing.T) {
	in := NewInjector(Plan{Seed: 3, TornWriteRate: 1, TornWriteBytes: 8})
	st := WrapStore(storage.NewMemStore(), in)

	w, err := st.Create("obj")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(make([]byte, 64)); !errors.Is(err, ErrInjected) {
		t.Fatalf("oversize write = %v, want injected failure", err)
	}
	if err := w.Close(); !errors.Is(err, ErrInjected) {
		t.Fatalf("close of torn write = %v, want injected failure", err)
	}
	if in.Counters().Get(ModeTornWrites) != 1 {
		t.Fatalf("counters: %s", in.Counters())
	}
}

// TestCreateFailRate: Create failures surface as injected errors and are
// counted.
func TestCreateFailRate(t *testing.T) {
	in := NewInjector(Plan{Seed: 5, CreateFailRate: 1})
	st := WrapStore(storage.NewMemStore(), in)
	if _, err := st.Create("obj"); !errors.Is(err, ErrInjected) {
		t.Fatalf("create = %v, want injected failure", err)
	}
	if in.Counters().Get(ModeStoreCreateErrors) != 1 {
		t.Fatalf("counters: %s", in.Counters())
	}
}

// TestRPCErrorNodeScoping: RPCErrorNodes restricts injection to the named
// nodes.
func TestRPCErrorNodeScoping(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, RPCErrorRate: 1, RPCErrorNodes: []string{"dn-2"}})
	_, view := newTestDFS(t, in)
	ok, err := view.DataNode(dfs.DataNodeInfo{ID: "dn-0"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.WriteBlock(1, []byte("x"), nil); err != nil {
		t.Fatalf("unscoped node faulted: %v", err)
	}
	bad, err := view.DataNode(dfs.DataNodeInfo{ID: "dn-2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := bad.WriteBlock(2, []byte("x"), nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("scoped node = %v, want injected failure", err)
	}
}

// TestInjectedIsTransient: injected faults must look transient to the DFS
// retry classifier, or nothing would ever retry them.
func TestInjectedIsTransient(t *testing.T) {
	in := NewInjector(Plan{Seed: 1})
	err := in.inject("test-mode", "detail")
	if !dfs.IsTransient(err) {
		t.Fatalf("injected fault classified permanent: %v", err)
	}
}
