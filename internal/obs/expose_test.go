package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"yarn.dump.total.seconds": "yarn_dump_total_seconds",
		"already_fine":            "already_fine",
		"with-dash":               "with_dash",
		"9leading":                "_leading",
		"a9ok":                    "a9ok",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exact exposition text for a small
// snapshot: sorted names, namespace prefix, TYPE lines, and the full
// cumulative bucket series ending in +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Add("yarn.kills", 2)
	r.Inc("dfs.client.retries")
	r.SetGauge("yarn.queue.peak", 3)
	r.Observe("yarn.dump.total.seconds", 0.001)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), "preemptsched"); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	want.WriteString(`# TYPE preemptsched_dfs_client_retries counter
preemptsched_dfs_client_retries 1
# TYPE preemptsched_yarn_kills counter
preemptsched_yarn_kills 2
# TYPE preemptsched_yarn_queue_peak gauge
preemptsched_yarn_queue_peak 3
# TYPE preemptsched_yarn_dump_total_seconds histogram
`)
	// 0.001 s lands in bucket 10 (bound 1.024e-3): cumulative counts are 0
	// through bucket 9, then 1 for every bucket from 10 to +Inf.
	bounds := BucketBounds()
	for i, b := range bounds {
		cum := 0
		if i >= 10 {
			cum = 1
		}
		fmt.Fprintf(&want, "preemptsched_yarn_dump_total_seconds_bucket{le=%q} %d\n", formatFloat(b), cum)
	}
	want.WriteString(`preemptsched_yarn_dump_total_seconds_bucket{le="+Inf"} 1
preemptsched_yarn_dump_total_seconds_sum 0.001
preemptsched_yarn_dump_total_seconds_count 1
`)
	if buf.String() != want.String() {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want.String())
	}
}

func TestWritePrometheusNoNamespace(t *testing.T) {
	r := NewRegistry()
	r.Inc("a.b")
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE a_b counter\na_b 1\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 4)
	r.SetGauge("g", 1.5)
	for i := 0; i < 10; i++ {
		r.Observe("h", 0.01)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not parseable: %v", err)
	}
	if doc.Counters["c"] != 4 || doc.Gauges["g"] != 1.5 {
		t.Fatalf("scalar round-trip wrong: %+v", doc)
	}
	h := doc.Histograms["h"]
	if h.Count != 10 || h.P50 != 0.01 || h.P99 != 0.01 {
		t.Fatalf("histogram round-trip wrong: %+v", h)
	}
	if len(h.Buckets) != HistBuckets {
		t.Fatalf("bucket count = %d, want %d", len(h.Buckets), HistBuckets)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	srv := httptest.NewServer(r.Handler("preemptsched"))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "preemptsched_hits 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestServeOps(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	var ready atomic.Bool
	ready.Store(true)
	addr, stop, err := ServeOps("127.0.0.1:0", r, "preemptsched", ready.Load)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz while serving = %d, want 200", code)
	}
	ready.Store(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	// Health stays green during a drain: the process is alive and must
	// not be restarted out from under its own shutdown.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "preemptsched_hits 1") {
		t.Errorf("/metrics = %d, missing counter:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}
}
