package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"yarn.dump.total.seconds": "yarn_dump_total_seconds",
		"already_fine":            "already_fine",
		"with-dash":               "with_dash",
		"9leading":                "_leading",
		"a9ok":                    "a9ok",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusGolden pins the exact exposition text for a small
// snapshot: sorted names, namespace prefix, TYPE lines, and the full
// cumulative bucket series ending in +Inf.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Add("yarn.kills", 2)
	r.Inc("dfs.client.retries")
	r.SetGauge("yarn.queue.peak", 3)
	r.Observe("yarn.dump.total.seconds", 0.001)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), "preemptsched"); err != nil {
		t.Fatal(err)
	}

	var want strings.Builder
	want.WriteString(`# TYPE preemptsched_dfs_client_retries counter
preemptsched_dfs_client_retries 1
# TYPE preemptsched_yarn_kills counter
preemptsched_yarn_kills 2
# TYPE preemptsched_yarn_queue_peak gauge
preemptsched_yarn_queue_peak 3
# TYPE preemptsched_yarn_dump_total_seconds histogram
`)
	// 0.001 s lands in bucket 10 (bound 1.024e-3): cumulative counts are 0
	// through bucket 9, then 1 for every bucket from 10 to +Inf.
	bounds := BucketBounds()
	for i, b := range bounds {
		cum := 0
		if i >= 10 {
			cum = 1
		}
		fmt.Fprintf(&want, "preemptsched_yarn_dump_total_seconds_bucket{le=%q} %d\n", formatFloat(b), cum)
	}
	want.WriteString(`preemptsched_yarn_dump_total_seconds_bucket{le="+Inf"} 1
preemptsched_yarn_dump_total_seconds_sum 0.001
preemptsched_yarn_dump_total_seconds_count 1
`)
	if buf.String() != want.String() {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", buf.String(), want.String())
	}
}

func TestWritePrometheusNoNamespace(t *testing.T) {
	r := NewRegistry()
	r.Inc("a.b")
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r.Snapshot(), ""); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE a_b counter\na_b 1\n"
	if buf.String() != want {
		t.Fatalf("got %q, want %q", buf.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Add("c", 4)
	r.SetGauge("g", 1.5)
	for i := 0; i < 10; i++ {
		r.Observe("h", 0.01)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteJSON output not parseable: %v", err)
	}
	if doc.Counters["c"] != 4 || doc.Gauges["g"] != 1.5 {
		t.Fatalf("scalar round-trip wrong: %+v", doc)
	}
	h := doc.Histograms["h"]
	if h.Count != 10 || h.P50 != 0.01 || h.P99 != 0.01 {
		t.Fatalf("histogram round-trip wrong: %+v", h)
	}
	if len(h.Buckets) != HistBuckets {
		t.Fatalf("bucket count = %d, want %d", len(h.Buckets), HistBuckets)
	}
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	srv := httptest.NewServer(r.Handler("preemptsched"))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "preemptsched_hits 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}

	resp, err = http.Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestServeOps(t *testing.T) {
	r := NewRegistry()
	r.Inc("hits")
	var ready atomic.Bool
	ready.Store(true)
	slo := NewSLOTracker()
	slo.AddWaste(0.25)
	slo.AddUseful(0.75)
	slo.CountDecision(true)
	addr, stop, err := ServeOps("127.0.0.1:0", r, "preemptsched", ready.Load, slo)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Errorf("/readyz while serving = %d, want 200", code)
	}
	ready.Store(false)
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("/readyz while draining = %d %q, want 503 draining", code, body)
	}
	// Health stays green during a drain: the process is alive and must
	// not be restarted out from under its own shutdown.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "preemptsched_hits 1") {
		t.Errorf("/metrics = %d, missing counter:\n%s", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d, want 200", code)
	}
	code, body := get("/slo")
	if code != http.StatusOK {
		t.Fatalf("/slo = %d, want 200:\n%s", code, body)
	}
	var snap SLOSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/slo not a snapshot: %v\n%s", err, body)
	}
	if snap.WasteFraction != 0.25 || snap.CheckpointDecisions != 1 {
		t.Errorf("/slo snapshot = %+v, want waste fraction 0.25 and one checkpoint decision", snap)
	}
}

// TestServeOpsConcurrentScrape hammers every ops route from several
// scrapers while writers mutate the registry and the SLO tracker — the
// race detector turns any unsynchronized path into a failure, and every
// response must stay well-formed mid-write.
func TestServeOpsConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	slo := NewSLOTracker()
	var ready atomic.Bool
	ready.Store(true)
	addr, stop, err := ServeOps("127.0.0.1:0", r, "preemptsched", ready.Load, slo)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	stopWriters := make(chan struct{})
	var writers sync.WaitGroup
	for g := 0; g < 2; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stopWriters:
					return
				default:
				}
				r.Inc("scrape.test.hits")
				r.SetGauge("scrape.test.gauge", float64(i))
				r.ObserveDuration("scrape.test.seconds", time.Duration(i)*time.Millisecond)
				slo.AddWaste(0.001)
				slo.AddUseful(0.002)
				slo.CountDecision(i%2 == 0)
				slo.ObserveResponse("high", float64(i%100))
				slo.PublishGauges(r)
			}
		}(g)
	}

	var scrapers sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 4; g++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			paths := []string{"/metrics", "/metrics.json", "/slo", "/healthz", "/readyz"}
			for i := 0; i < 20; i++ {
				p := paths[i%len(paths)]
				resp, err := http.Get("http://" + addr + p)
				if err != nil {
					errs <- fmt.Errorf("GET %s: %w", p, err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					errs <- fmt.Errorf("read %s: %w", p, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s = %d", p, resp.StatusCode)
					return
				}
				switch p {
				case "/metrics.json":
					var doc map[string]any
					if err := json.Unmarshal(body, &doc); err != nil {
						errs <- fmt.Errorf("%s mid-write not JSON: %w", p, err)
						return
					}
				case "/slo":
					var snap SLOSnapshot
					if err := json.Unmarshal(body, &snap); err != nil {
						errs <- fmt.Errorf("%s mid-write not a snapshot: %w", p, err)
						return
					}
					if snap.WasteFraction < 0 || snap.WasteFraction > 1 {
						errs <- fmt.Errorf("/slo waste fraction %v outside [0,1]", snap.WasteFraction)
						return
					}
				}
			}
		}()
	}
	scrapers.Wait()
	close(stopWriters)
	writers.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
