package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// ValidateJSONSchema checks a decoded JSON document against a small,
// dependency-free subset of JSON Schema: "type" (string or list),
// "required", "properties", "additionalProperties" (boolean form),
// "items" (single schema), "enum", and "minimum". That subset is enough
// to pin down the clusterrun report format in CI without pulling in an
// external validator; unknown keywords are ignored, as the spec allows.
func ValidateJSONSchema(schema map[string]any, doc any) error {
	return validateSchema(schema, doc, "$")
}

// ValidateJSONSchemaBytes parses both the schema and the document from
// raw JSON and validates.
func ValidateJSONSchemaBytes(schemaJSON, docJSON []byte) error {
	var schema map[string]any
	if err := json.Unmarshal(schemaJSON, &schema); err != nil {
		return fmt.Errorf("parse schema: %w", err)
	}
	var doc any
	if err := json.Unmarshal(docJSON, &doc); err != nil {
		return fmt.Errorf("parse document: %w", err)
	}
	return ValidateJSONSchema(schema, doc)
}

func jsonTypeOf(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case bool:
		return "boolean"
	case string:
		return "string"
	case float64:
		if t == math.Trunc(t) && !math.IsInf(t, 0) {
			return "integer"
		}
		return "number"
	case []any:
		return "array"
	case map[string]any:
		return "object"
	default:
		return fmt.Sprintf("%T", v)
	}
}

func typeMatches(want, got string) bool {
	// JSON Schema treats every integer as a number too.
	return want == got || (want == "number" && got == "integer")
}

func validateSchema(schema map[string]any, doc any, path string) error {
	got := jsonTypeOf(doc)

	switch want := schema["type"].(type) {
	case string:
		if !typeMatches(want, got) {
			return fmt.Errorf("%s: expected type %s, got %s", path, want, got)
		}
	case []any:
		ok := false
		for _, w := range want {
			if ws, isStr := w.(string); isStr && typeMatches(ws, got) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%s: type %s not in allowed set %v", path, got, want)
		}
	}

	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, e := range enum {
			if e == doc {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("%s: value %v not in enum %v", path, doc, enum)
		}
	}

	if minv, ok := schema["minimum"].(float64); ok {
		if n, isNum := doc.(float64); isNum && n < minv {
			return fmt.Errorf("%s: value %v below minimum %v", path, n, minv)
		}
	}

	if obj, isObj := doc.(map[string]any); isObj {
		if req, ok := schema["required"].([]any); ok {
			for _, r := range req {
				name, isStr := r.(string)
				if !isStr {
					continue
				}
				if _, present := obj[name]; !present {
					return fmt.Errorf("%s: missing required property %q", path, name)
				}
			}
		}
		props, _ := schema["properties"].(map[string]any)
		for name, sub := range props {
			subSchema, isMap := sub.(map[string]any)
			if !isMap {
				continue
			}
			if v, present := obj[name]; present {
				if err := validateSchema(subSchema, v, path+"."+name); err != nil {
					return err
				}
			}
		}
		if extra, ok := schema["additionalProperties"].(bool); ok && !extra {
			var unknown []string
			for name := range obj {
				if _, declared := props[name]; !declared {
					unknown = append(unknown, name)
				}
			}
			if len(unknown) > 0 {
				sort.Strings(unknown)
				return fmt.Errorf("%s: unexpected properties %v", path, unknown)
			}
		}
	}

	if arr, isArr := doc.([]any); isArr {
		if items, ok := schema["items"].(map[string]any); ok {
			for i, v := range arr {
				if err := validateSchema(items, v, fmt.Sprintf("%s[%d]", path, i)); err != nil {
					return err
				}
			}
		}
	}

	return nil
}
