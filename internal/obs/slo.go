package obs

import (
	"sort"
	"sync"
)

// SLOTracker is the live SLO engine: incremental, O(1)-per-event
// tracking of the paper's headline objectives — waste core-hours
// (Fig. 9), per-band job response time (Fig. 10/11), and the checkpoint
// hit-rate of the preemption policy — maintained as events happen
// instead of recomputed from end-of-run snapshot scans. A nil
// *SLOTracker is a valid no-op sink.
type SLOTracker struct {
	mu            sync.Mutex
	waste         float64
	wasteFailure  float64
	useful        float64
	kills         int64
	checkpoints   int64
	fallbackKills int64
	resp          map[string]*hist
}

// sloBands mirrors cluster.Band.String() (kept as literals so obs does
// not grow a dependency on the cluster package): the paper's three
// priority bands plus the cross-band aggregate.
var sloBands = []string{"all", "low", "medium", "high"}

// NewSLOTracker returns a tracker with the standard band set
// pre-created, so snapshots always carry the same keys.
func NewSLOTracker() *SLOTracker {
	t := &SLOTracker{resp: make(map[string]*hist, len(sloBands))}
	for _, b := range sloBands {
		t.resp[b] = &hist{}
	}
	return t
}

// AddWaste accrues wasted core-hours (lost progress, checkpoint
// overhead, failed restores).
func (t *SLOTracker) AddWaste(coreHours float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.waste += coreHours
	t.mu.Unlock()
}

// AddFailureWaste accrues wasted core-hours attributable to a node
// failure (progress lost with a dead machine). It lands in the same
// waste total AddWaste feeds, plus the failure-attributed bucket, so
// the split always sums to the total.
func (t *SLOTracker) AddFailureWaste(coreHours float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.waste += coreHours
	t.wasteFailure += coreHours
	t.mu.Unlock()
}

// AddUseful accrues useful core-hours (completed task runtime).
func (t *SLOTracker) AddUseful(coreHours float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.useful += coreHours
	t.mu.Unlock()
}

// CountDecision tallies one Alg. 1 preemption decision.
func (t *SLOTracker) CountDecision(checkpoint bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if checkpoint {
		t.checkpoints++
	} else {
		t.kills++
	}
	t.mu.Unlock()
}

// CountFallbackKill tallies a checkpoint decision that degraded to a
// kill (failed dump or unrecoverable restore).
func (t *SLOTracker) CountFallbackKill() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.fallbackKills++
	t.mu.Unlock()
}

// ObserveResponse records one job's response time (submit→complete,
// seconds) under its priority band and the "all" aggregate.
func (t *SLOTracker) ObserveResponse(band string, seconds float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	h := t.resp[band]
	if h == nil {
		h = &hist{}
		t.resp[band] = h
	}
	all := t.resp["all"]
	t.mu.Unlock()
	h.observe(seconds)
	if all != h {
		all.observe(seconds)
	}
}

// SLOResponse summarizes one band's response-time distribution.
type SLOResponse struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// SLOSnapshot is a point-in-time copy of the tracked objectives; it is
// what the /slo ops endpoint and the report's schema-v3 `slo` object
// serialize.
type SLOSnapshot struct {
	WasteCoreHours float64 `json:"waste_core_hours"`
	// WasteFailureCoreHours and WastePreemptionCoreHours split
	// WasteCoreHours by blame: node failures versus everything the
	// scheduler did (preemption overhead, kills, failed restores).
	WasteFailureCoreHours    float64                `json:"waste_failure_core_hours"`
	WastePreemptionCoreHours float64                `json:"waste_preemption_core_hours"`
	UsefulCoreHours          float64                `json:"useful_core_hours"`
	WasteFraction            float64                `json:"waste_fraction"`
	KillDecisions            int64                  `json:"kill_decisions"`
	CheckpointDecisions      int64                  `json:"checkpoint_decisions"`
	FallbackKills            int64                  `json:"fallback_kills"`
	CheckpointHitRate        float64                `json:"checkpoint_hit_rate"`
	Response                 map[string]SLOResponse `json:"response_seconds"`
}

func histToResponse(h *hist) SLOResponse {
	h.mu.Lock()
	s := HistSnapshot{
		Count:   h.count,
		Sum:     h.sum,
		Min:     h.min,
		Max:     h.max,
		Buckets: append([]uint64(nil), h.buckets[:]...),
	}
	h.mu.Unlock()
	out := SLOResponse{Count: int64(s.Count), Max: s.Max}
	if s.Count > 0 {
		out.Mean = s.Sum / float64(s.Count)
		out.P50 = s.Quantile(0.50)
		out.P95 = s.Quantile(0.95)
		out.P99 = s.Quantile(0.99)
	}
	return out
}

// Snapshot copies every objective. Safe to call concurrently with
// recording.
func (t *SLOTracker) Snapshot() SLOSnapshot {
	if t == nil {
		return SLOSnapshot{Response: map[string]SLOResponse{}}
	}
	t.mu.Lock()
	snap := SLOSnapshot{
		WasteCoreHours:           t.waste,
		WasteFailureCoreHours:    t.wasteFailure,
		WastePreemptionCoreHours: t.waste - t.wasteFailure,
		UsefulCoreHours:          t.useful,
		KillDecisions:            t.kills,
		CheckpointDecisions:      t.checkpoints,
		FallbackKills:            t.fallbackKills,
		Response:                 make(map[string]SLOResponse, len(t.resp)),
	}
	hs := make(map[string]*hist, len(t.resp))
	for band, h := range t.resp {
		hs[band] = h
	}
	t.mu.Unlock()
	if total := snap.WasteCoreHours + snap.UsefulCoreHours; total > 0 {
		snap.WasteFraction = snap.WasteCoreHours / total
	}
	if decisions := snap.KillDecisions + snap.CheckpointDecisions; decisions > 0 {
		snap.CheckpointHitRate = float64(snap.CheckpointDecisions) / float64(decisions)
	}
	for band, h := range hs {
		snap.Response[band] = histToResponse(h)
	}
	return snap
}

// PublishGauges mirrors the current snapshot into reg as gauges, so the
// SLOs ride the existing Prometheus/JSON exposition alongside the raw
// counters. Intended to be called from a sampler loop (clusterd) or
// once at end of run.
func (t *SLOTracker) PublishGauges(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	s := t.Snapshot()
	reg.SetGauge("slo.waste.core.hours", s.WasteCoreHours)
	reg.SetGauge("slo.waste.failure.core.hours", s.WasteFailureCoreHours)
	reg.SetGauge("slo.useful.core.hours", s.UsefulCoreHours)
	reg.SetGauge("slo.waste.fraction", s.WasteFraction)
	reg.SetGauge("slo.decisions.kill", float64(s.KillDecisions))
	reg.SetGauge("slo.decisions.checkpoint", float64(s.CheckpointDecisions))
	reg.SetGauge("slo.kills.fallback", float64(s.FallbackKills))
	reg.SetGauge("slo.checkpoint.hit.rate", s.CheckpointHitRate)
	bands := make([]string, 0, len(s.Response))
	for b := range s.Response {
		bands = append(bands, b)
	}
	sort.Strings(bands)
	for _, b := range bands {
		r := s.Response[b]
		reg.SetGauge("slo.response."+b+".count", float64(r.Count))
		reg.SetGauge("slo.response."+b+".p50.seconds", r.P50)
		reg.SetGauge("slo.response."+b+".p95.seconds", r.P95)
		reg.SetGauge("slo.response."+b+".p99.seconds", r.P99)
	}
}
