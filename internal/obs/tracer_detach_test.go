package obs

import (
	"sync"
	"testing"
)

// TestSnapshotDetachedFromRing is the mutation-under-concurrent-read
// regression for the sliceshare sweep: before the fix, Snapshot's Span
// copies shared their Attrs backing arrays with ring slots that End
// mutates in place, so the recorder could overwrite attribute slots a
// snapshot holder was using (and race it — run with -race).
func TestSnapshotDetachedFromRing(t *testing.T) {
	tr := NewTracer(8)

	// Spare capacity in the recorded attrs is what let the pre-fix
	// sharing bite: End's append lands in the shared backing array.
	attrs := make([]Attr, 1, 8)
	attrs[0] = String("k", "v")
	id := tr.Start("cat", "open", "p", "t", 0, 0, attrs...)

	// Sequential shape: the snapshot holder extends its copy, then the
	// recorder closes the span. Pre-fix both appends wrote the same
	// backing slot and the recorder's attr clobbered the holder's.
	snap := tr.Snapshot()
	mine := append(snap[0].Attrs, String("mine", "m"))
	tr.End(id, 5, String("end", "e"))
	if mine[1].Key != "mine" {
		t.Fatalf("recorder overwrote a snapshot holder's attrs: got key %q, want %q", mine[1].Key, "mine")
	}

	// Concurrent shape: the same two writes from different goroutines,
	// which the race detector flags pre-fix.
	attrs2 := make([]Attr, 1, 8)
	attrs2[0] = String("k2", "v2")
	id2 := tr.Start("cat", "open2", "p", "t", 0, 10, attrs2...)
	snap2 := tr.Snapshot()
	var open Span
	for _, s := range snap2 {
		if s.Name == "open2" {
			open = s
		}
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		tr.End(id2, 15, String("end2", "e2"))
	}()
	go func() {
		defer wg.Done()
		_ = append(open.Attrs, String("mine2", "m2"))
	}()
	wg.Wait()
	if len(open.Attrs) != 1 || open.Attrs[0].Key != "k2" {
		t.Fatalf("snapshot attrs mutated under the holder: %+v", open.Attrs)
	}
}
