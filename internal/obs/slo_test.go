package obs

import (
	"sync"
	"testing"
)

func TestSLOTrackerMath(t *testing.T) {
	s := NewSLOTracker()
	s.AddWaste(1)
	s.AddWaste(2)
	s.AddUseful(7)
	s.CountDecision(true)
	s.CountDecision(true)
	s.CountDecision(true)
	s.CountDecision(false)
	s.CountFallbackKill()
	for i := 0; i < 100; i++ {
		s.ObserveResponse("high", float64(i+1))
	}

	snap := s.Snapshot()
	if snap.WasteCoreHours != 3 || snap.UsefulCoreHours != 7 {
		t.Fatalf("core-hours = %v/%v, want 3/7", snap.WasteCoreHours, snap.UsefulCoreHours)
	}
	if snap.WasteFraction != 0.3 {
		t.Fatalf("waste fraction = %v, want 0.3", snap.WasteFraction)
	}
	if snap.CheckpointDecisions != 3 || snap.KillDecisions != 1 || snap.FallbackKills != 1 {
		t.Fatalf("decisions = %+v", snap)
	}
	if snap.CheckpointHitRate != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", snap.CheckpointHitRate)
	}

	hi, ok := snap.Response["high"]
	if !ok {
		t.Fatal("response map missing high band")
	}
	if hi.Count != 100 {
		t.Fatalf("high count = %d, want 100", hi.Count)
	}
	if hi.Mean != 50.5 {
		t.Fatalf("high mean = %v, want 50.5", hi.Mean)
	}
	if hi.P50 <= 0 || hi.P95 < hi.P50 || hi.P99 < hi.P95 || hi.Max < hi.P99 {
		t.Fatalf("percentiles not monotone: %+v", hi)
	}
	// Observations flow into the all-jobs distribution too.
	if all := snap.Response["all"]; all.Count != 100 {
		t.Fatalf("all count = %d, want 100", all.Count)
	}
}

func TestSLOTrackerFixedBands(t *testing.T) {
	snap := NewSLOTracker().Snapshot()
	for _, b := range []string{"all", "low", "medium", "high"} {
		if _, ok := snap.Response[b]; !ok {
			t.Fatalf("fresh snapshot missing band %q (schema requires fixed keys)", b)
		}
	}
	if snap.WasteFraction != 0 || snap.CheckpointHitRate != 0 {
		t.Fatal("zero-state ratios must be 0, not NaN")
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var s *SLOTracker
	s.AddWaste(1)
	s.AddUseful(1)
	s.CountDecision(true)
	s.CountFallbackKill()
	s.ObserveResponse("high", 1)
	s.PublishGauges(NewRegistry())
	snap := s.Snapshot()
	if snap.Response != nil && len(snap.Response) != 0 {
		t.Fatalf("nil tracker snapshot = %+v", snap)
	}
}

func TestSLOTrackerConcurrent(t *testing.T) {
	s := NewSLOTracker()
	reg := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.AddWaste(0.001)
				s.CountDecision(i%2 == 0)
				s.ObserveResponse("low", float64(i))
				if i%50 == 0 {
					s.PublishGauges(reg)
					_ = s.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.KillDecisions + snap.CheckpointDecisions; got != 2000 {
		t.Fatalf("decisions = %d, want 2000", got)
	}
	if snap.Response["low"].Count != 2000 {
		t.Fatalf("low count = %d, want 2000", snap.Response["low"].Count)
	}
}

func TestSLOPublishGauges(t *testing.T) {
	s := NewSLOTracker()
	s.AddWaste(1)
	s.AddUseful(3)
	s.CountDecision(true)
	s.ObserveResponse("high", 2)
	reg := NewRegistry()
	s.PublishGauges(reg)
	snap := reg.Snapshot()
	if snap.Gauges["slo.waste.fraction"] != 0.25 {
		t.Fatalf("slo.waste.fraction = %v, want 0.25", snap.Gauges["slo.waste.fraction"])
	}
	if snap.Gauges["slo.checkpoint.hit.rate"] != 1 {
		t.Fatalf("slo.checkpoint.hit.rate = %v, want 1", snap.Gauges["slo.checkpoint.hit.rate"])
	}
	if snap.Gauges["slo.response.high.count"] != 1 {
		t.Fatalf("slo.response.high.count = %v, want 1", snap.Gauges["slo.response.high.count"])
	}
}
