package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// sanitizeMetricName maps a free-form dotted metric name onto the
// Prometheus name charset [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. namespace, when non-empty, prefixes every metric name
// ("<namespace>_<name>"). Output is sorted by metric name, so it is
// stable for golden tests and clean diffs between scrapes.
func WritePrometheus(w io.Writer, snap Snapshot, namespace string) error {
	full := func(name string) string {
		n := sanitizeMetricName(name)
		if namespace == "" {
			return n
		}
		return sanitizeMetricName(namespace) + "_" + n
	}

	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", full(n), full(n), snap.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", full(n), full(n), formatFloat(snap.Gauges[n])); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	bounds := BucketBounds()
	for _, n := range names {
		h := snap.Histograms[n]
		fn := full(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", fn); err != nil {
			return err
		}
		var cum uint64
		for i := 0; i < len(h.Buckets); i++ {
			cum += h.Buckets[i]
			le := "+Inf"
			if i < len(bounds) {
				le = formatFloat(bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", fn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", fn, formatFloat(h.Sum), fn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// histJSON is the JSON view of a histogram: raw state plus derived
// quantiles so consumers need no bucket math.
type histJSON struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P95     float64  `json:"p95"`
	P99     float64  `json:"p99"`
	Buckets []uint64 `json:"buckets"`
}

// WriteJSON renders a snapshot as one JSON object with counters, gauges,
// and histograms (each histogram annotated with p50/p95/p99).
func WriteJSON(w io.Writer, snap Snapshot) error {
	hists := make(map[string]histJSON, len(snap.Histograms))
	for n, h := range snap.Histograms {
		hists[n] = histJSON{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
			Buckets: h.Buckets,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{snap.Counters, snap.Gauges, hists})
}

// Handler serves the registry over HTTP: Prometheus text at /metrics and
// the JSON view at /metrics.json.
func (r *Registry) Handler(namespace string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r.Snapshot(), namespace)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, r.Snapshot())
	})
	return mux
}

// ServeMetrics starts an HTTP server for the registry on addr in a
// background goroutine and returns the bound address (useful with ":0")
// and a stop function that closes the server and waits for the serve
// goroutine to exit.
func ServeMetrics(addr string, r *Registry, namespace string) (string, func(), error) {
	return serveBackground(addr, r.Handler(namespace))
}

// ServePprof starts a net/http/pprof endpoint on addr in a background
// goroutine and returns the bound address and a stop function. The
// handlers are registered on a private mux, so importing obs does not
// pollute http.DefaultServeMux.
func ServePprof(addr string) (string, func(), error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serveBackground(addr, mux)
}

// ServeOps starts a daemon's operations endpoint on addr: the registry's
// /metrics and /metrics.json, liveness at /healthz (200 while the
// process serves), readiness at /readyz (503 once ready reports false —
// a draining daemon stops being ready long before it stops being alive),
// the live SLO snapshot at /slo when a tracker is attached, and the
// pprof handlers for heap/goroutine deltas. One stoppable server covers
// everything a soak harness scrapes.
func ServeOps(addr string, r *Registry, namespace string, ready func() bool, slo *SLOTracker) (string, func(), error) {
	mux := http.NewServeMux()
	metrics := r.Handler(namespace)
	mux.Handle("/metrics", metrics)
	mux.Handle("/metrics.json", metrics)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if slo != nil {
		mux.HandleFunc("/slo", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(slo.Snapshot())
		})
	}
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		if ready != nil && !ready() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serveBackground(addr, mux)
}

// serveBackground binds addr, serves handler on a tracked goroutine, and
// returns the bound address plus a stop function that closes the server
// and waits for the goroutine — no serve loop outlives its owner.
func serveBackground(addr string, handler http.Handler) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: handler}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = srv.Serve(ln)
	}()
	stop := func() {
		_ = srv.Close()
		wg.Wait()
	}
	return ln.Addr().String(), stop, nil
}

// chromeEvent is one Chrome trace_event record.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders the tracer's retained spans as a Chrome
// trace_event JSON document loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Span PID/TID strings become numbered tracks with
// process_name/thread_name metadata, so the UI shows "node-3" lanes with
// one row per task.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Snapshot()

	type track struct{ pid, tid int }
	pids := make(map[string]int)
	tids := make(map[string]track)
	var events []chromeEvent
	micros := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

	for _, s := range spans {
		pid, ok := pids[s.PID]
		if !ok {
			pid = len(pids) + 1
			pids[s.PID] = pid
			events = append(events, chromeEvent{
				Name: "process_name", Phase: "M", PID: pid,
				Args: map[string]any{"name": s.PID},
			})
		}
		key := s.PID + "\x00" + s.TID
		tr, ok := tids[key]
		if !ok {
			tr = track{pid: pid, tid: len(tids) + 1}
			tids[key] = tr
			events = append(events, chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: tr.tid,
				Args: map[string]any{"name": s.TID},
			})
		}
		// Every event carries its own span id so parent_span references
		// resolve within the file.
		args := make(map[string]any, len(s.Attrs)+2)
		args["span"] = uint64(s.ID)
		for _, a := range s.Attrs {
			args[a.Key] = a.Val
		}
		if s.Parent != 0 {
			args["parent_span"] = uint64(s.Parent)
		}
		ev := chromeEvent{
			Name: s.Name, Cat: s.Cat, PID: pid, TID: tr.tid,
			TS: micros(s.Start), Args: args,
		}
		if s.Instant {
			ev.Phase = "i"
			ev.Scope = "t"
		} else {
			ev.Phase = "X"
			dur := 0.0
			if s.End > s.Start {
				dur = micros(s.End - s.Start)
			}
			ev.Dur = &dur
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{events, "ms"})
}
