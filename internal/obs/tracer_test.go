package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	id := tr.Start("cat", "name", "p", "t", 0, 0)
	if id != 0 {
		t.Fatalf("nil tracer Start = %d, want 0", id)
	}
	tr.End(id, time.Second)
	if tr.Complete("c", "n", "p", "t", 0, 0, time.Second) != 0 {
		t.Fatal("nil tracer Complete should return 0")
	}
	if tr.Instant("c", "n", "p", "t", 0, 0) != 0 {
		t.Fatal("nil tracer Instant should return 0")
	}
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Snapshot() != nil {
		t.Fatal("nil tracer should report empty state")
	}
	if err := tr.WriteChromeTrace(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil tracer WriteChromeTrace: %v", err)
	}
}

func TestTracerStartEndParenting(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Start("checkpoint", "dump", "node-0", "j0-t0", 0, 10*time.Millisecond, String("policy", "checkpoint-full"))
	child := tr.Complete("checkpoint", "dump-write", "node-0", "j0-t0", root, 12*time.Millisecond, 20*time.Millisecond)
	tr.End(root, 20*time.Millisecond, Bool("ok", true))

	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].ID != root || spans[1].ID != child {
		t.Fatalf("span order wrong: %v then %v", spans[0].ID, spans[1].ID)
	}
	if spans[1].Parent != root {
		t.Fatalf("child parent = %d, want %d", spans[1].Parent, root)
	}
	if spans[0].End != 20*time.Millisecond {
		t.Fatalf("root End = %v after End()", spans[0].End)
	}
	if len(spans[0].Attrs) != 2 {
		t.Fatalf("root attrs = %v, want start attr + end attr", spans[0].Attrs)
	}
}

func TestTracerRingWrap(t *testing.T) {
	tr := NewTracer(4)
	var ids []SpanID
	for i := 0; i < 10; i++ {
		ids = append(ids, tr.Instant("c", fmt.Sprintf("e%d", i), "p", "t", 0, time.Duration(i)))
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(spans))
	}
	// Oldest-first: events 6..9 survive.
	for i, s := range spans {
		want := fmt.Sprintf("e%d", i+6)
		if s.Name != want {
			t.Fatalf("spans[%d].Name = %q, want %q", i, s.Name, want)
		}
	}
	// Ending an evicted span must not corrupt the slot's current tenant.
	tr.End(ids[0], time.Hour)
	for _, s := range tr.Snapshot() {
		if s.End == time.Hour {
			t.Fatal("End on evicted ID mutated a live span")
		}
	}
}

func TestTracerConcurrentRecording(t *testing.T) {
	tr := NewTracer(1 << 14)
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pid := fmt.Sprintf("node-%d", w)
			for i := 0; i < perWorker; i++ {
				id := tr.Start("checkpoint", "dump", pid, "t", 0, time.Duration(i))
				tr.End(id, time.Duration(i+1), Int64("iter", int64(i)))
				tr.Instant("sched", "decision", pid, "t", id, time.Duration(i))
			}
		}(w)
	}
	wg.Wait()
	if got, want := tr.Len(), workers*perWorker*2; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	spans := tr.Snapshot()
	seen := make(map[SpanID]bool, len(spans))
	for _, s := range spans {
		if s.ID == 0 {
			t.Fatal("recorded span with zero ID")
		}
		if seen[s.ID] {
			t.Fatalf("duplicate span ID %d", s.ID)
		}
		seen[s.ID] = true
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(16)
	root := tr.Complete("checkpoint", "dump", "node-1", "j0-t3", 0, 5*time.Millisecond, 9*time.Millisecond, Float64("mb", 64))
	tr.Instant("sched", "policy-decision", "node-1", "j0-t3", root, 5*time.Millisecond)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not JSON: %v", err)
	}
	// 2 metadata events (process_name, thread_name) + 2 spans.
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4: %v", len(doc.TraceEvents), doc.TraceEvents)
	}
	var sawComplete, sawInstant, sawProcName bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			sawComplete = true
			if ev["ts"] != 5000.0 || ev["dur"] != 4000.0 {
				t.Fatalf("complete event ts/dur wrong: %v", ev)
			}
		case "i":
			sawInstant = true
		case "M":
			if ev["name"] == "process_name" {
				sawProcName = true
				args := ev["args"].(map[string]any)
				if args["name"] != "node-1" {
					t.Fatalf("process_name = %v", args["name"])
				}
			}
		}
	}
	if !sawComplete || !sawInstant || !sawProcName {
		t.Fatalf("missing event kinds: X=%v i=%v M(process)=%v", sawComplete, sawInstant, sawProcName)
	}
}
