package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"preemptsched/internal/metrics"
)

// Histogram bucket layout: fixed log-scale (base 2) upper bounds in
// seconds, from 1µs to ~38h, plus one overflow bucket. Every histogram
// in the registry shares this layout, so snapshots from different sources
// (dump latency on one node, DFS block writes on another) merge by adding
// bucket counts — no per-histogram configuration to reconcile.
const (
	histFirstBound   = 1e-6
	histFiniteBounds = 38
	// HistBuckets is the bucket count including the overflow bucket.
	HistBuckets = histFiniteBounds + 1
)

var histBounds = func() [histFiniteBounds]float64 {
	var b [histFiniteBounds]float64
	v := histFirstBound
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// BucketBounds returns the shared finite bucket upper bounds, in seconds.
// The final (overflow) bucket is unbounded.
func BucketBounds() []float64 {
	out := make([]float64, histFiniteBounds)
	copy(out[:], histBounds[:])
	return out
}

// bucketIndex returns the bucket for observation v: the first bucket whose
// upper bound is >= v, or the overflow bucket.
func bucketIndex(v float64) int {
	if v <= histBounds[0] {
		return 0
	}
	if v > histBounds[histFiniteBounds-1] {
		return histFiniteBounds
	}
	// exp such that v <= histFirstBound * 2^exp; log2 is exact for the
	// power-of-two bounds so boundary values land in their own bucket.
	i := int(math.Ceil(math.Log2(v / histFirstBound)))
	if i < 0 {
		i = 0
	}
	// Guard against float fuzz right at a boundary.
	for i > 0 && v <= histBounds[i-1] {
		i--
	}
	for i < histFiniteBounds && v > histBounds[i] {
		i++
	}
	return i
}

// hist is one live histogram. All mutation happens under mu.
type hist struct {
	mu      sync.Mutex
	buckets [HistBuckets]uint64
	count   uint64
	sum     float64
	min     float64
	max     float64
}

func (h *hist) observe(v float64) {
	h.mu.Lock()
	h.buckets[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is an immutable copy of a histogram.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Min     float64  `json:"min"`
	Max     float64  `json:"max"`
	Buckets []uint64 `json:"buckets"`
}

// Quantile estimates the q-th quantile (0..1) from the bucket counts,
// interpolating linearly inside the target bucket. The overflow bucket
// and q >= 1 report the exact tracked maximum.
func (h HistSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q >= 1 {
		return h.Max
	}
	if q < 0 {
		q = 0
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i >= histFiniteBounds {
			return h.Max
		}
		lo := 0.0
		if i > 0 {
			lo = histBounds[i-1]
		}
		hi := histBounds[i]
		// Clamp the bucket to the observed range so single-bucket
		// histograms report real values, not bucket edges.
		if lo < h.Min {
			lo = h.Min
		}
		if hi > h.Max {
			hi = h.Max
		}
		if hi < lo {
			hi = lo
		}
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.Max
}

// Merge returns the bucket-wise sum of two snapshots sharing the global
// layout (e.g. folding block-read and block-write latencies into one
// "transfer" distribution).
func (h HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if h.Count == 0 {
		return o
	}
	if o.Count == 0 {
		return h
	}
	out := HistSnapshot{
		Count:   h.Count + o.Count,
		Sum:     h.Sum + o.Sum,
		Min:     math.Min(h.Min, o.Min),
		Max:     math.Max(h.Max, o.Max),
		Buckets: make([]uint64, HistBuckets),
	}
	for i := range out.Buckets {
		if i < len(h.Buckets) {
			out.Buckets[i] += h.Buckets[i]
		}
		if i < len(o.Buckets) {
			out.Buckets[i] += o.Buckets[i]
		}
	}
	return out
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]float64      `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
}

// Counter returns a counter's value (0 when absent), tolerating calls on
// a zero-value Snapshot.
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Hist returns a histogram snapshot (zero-valued when absent).
func (s Snapshot) Hist(name string) HistSnapshot { return s.Histograms[name] }

// Names returns the sorted union of all metric names, handy for stable
// iteration in reports and tests.
func (s Snapshot) Names() []string {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Registry is a concurrency-safe registry of named counters, gauges, and
// histograms. Metrics are created on first touch; names are free-form
// dotted paths ("yarn.dump.total.seconds") sanitized only at exposition
// time. A nil *Registry is a valid no-op sink.
type Registry struct {
	counters *metrics.Counters

	mu     sync.Mutex
	gauges map[string]float64
	hists  map[string]*hist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: metrics.NewCounters(),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*hist),
	}
}

// Counter is a pre-resolved counter handle: the name is looked up once at
// Registry.Counter time, and every Inc/Add after that is a single atomic
// add with no map access or lock. The zero value — including any handle
// taken from a nil registry — is a valid no-op sink, mirroring the nil
// *Registry contract.
type Counter struct{ v *atomic.Int64 }

// Inc adds 1 through the handle.
func (c Counter) Inc() {
	if c.v != nil {
		c.v.Add(1)
	}
}

// Add adds delta through the handle.
func (c Counter) Add(delta int64) {
	if c.v != nil {
		c.v.Add(delta)
	}
}

// Counter pre-resolves a counter handle for hot paths that would
// otherwise pay a name lookup per increment.
func (r *Registry) Counter(name string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{v: r.counters.Handle(name)}
}

// Histogram is a pre-resolved histogram handle; like Counter, the zero
// value is a no-op sink and recording skips the registry's name map.
type Histogram struct{ h *hist }

// Observe records v through the handle.
func (h Histogram) Observe(v float64) {
	if h.h != nil {
		h.h.observe(v)
	}
}

// ObserveDuration records a duration, in seconds, through the handle.
func (h Histogram) ObserveDuration(d time.Duration) {
	if h.h != nil {
		h.h.observe(d.Seconds())
	}
}

// Histogram pre-resolves a histogram handle.
func (r *Registry) Histogram(name string) Histogram {
	if r == nil {
		return Histogram{}
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	return Histogram{h: h}
}

// Inc adds 1 to a counter.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add adds delta to a counter.
func (r *Registry) Add(name string, delta int64) {
	if r == nil {
		return
	}
	r.counters.Add(name, delta)
}

// AddN merges a batch of counter increments under one lock acquisition.
func (r *Registry) AddN(deltas map[string]int64) {
	if r == nil {
		return
	}
	r.counters.AddN(deltas)
}

// SetGauge sets a gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// MaxGauge raises a gauge to v if v exceeds its current value — a
// high-water mark (e.g. peak per-node checkpoint-queue backlog).
func (r *Registry) MaxGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if cur, ok := r.gauges[name]; !ok || v > cur {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Observe records v (in seconds for latency metrics) into a histogram.
func (r *Registry) Observe(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{}
		r.hists[name] = h
	}
	r.mu.Unlock()
	h.observe(v)
}

// ObserveDuration records a duration, in seconds, into a histogram.
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	if r == nil {
		return
	}
	r.Observe(name, d.Seconds())
}

// Snapshot copies every metric. It is safe to call concurrently with
// recording.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{
		Counters:   r.counters.Snapshot(),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistSnapshot),
	}
	r.mu.Lock()
	for k, v := range r.gauges {
		snap.Gauges[k] = v
	}
	names := make([]string, 0, len(r.hists))
	hs := make([]*hist, 0, len(r.hists))
	for k, h := range r.hists {
		names = append(names, k)
		hs = append(hs, h)
	}
	r.mu.Unlock()
	for i, h := range hs {
		h.mu.Lock()
		s := HistSnapshot{
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
			Buckets: append([]uint64(nil), h.buckets[:]...),
		}
		h.mu.Unlock()
		snap.Histograms[names[i]] = s
	}
	return snap
}
