package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	r.Inc("a")
	r.Add("a", 5)
	r.AddN(map[string]int64{"a": 1})
	r.SetGauge("g", 1)
	r.MaxGauge("g", 2)
	r.Observe("h", 0.5)
	r.ObserveDuration("h", time.Second)
	snap := r.Snapshot()
	if snap.Counter("a") != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
}

// TestBucketIndexBoundaries pins the log2 layout: an observation exactly on
// bound k lands in bucket k, and anything just above it lands in k+1.
func TestBucketIndexBoundaries(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds) != histFiniteBounds {
		t.Fatalf("BucketBounds len = %d, want %d", len(bounds), histFiniteBounds)
	}
	if bounds[0] != 1e-6 {
		t.Fatalf("first bound = %v, want 1e-6", bounds[0])
	}
	for k, b := range bounds {
		if got := bucketIndex(b); got != k {
			t.Errorf("bucketIndex(bound[%d]=%v) = %d, want %d", k, b, got, k)
		}
		if k < histFiniteBounds-1 {
			if got := bucketIndex(b * 1.000001); got != k+1 {
				t.Errorf("bucketIndex(just above bound[%d]) = %d, want %d", k, got, k+1)
			}
		}
	}
	if got := bucketIndex(0); got != 0 {
		t.Errorf("bucketIndex(0) = %d, want 0", got)
	}
	if got := bucketIndex(bounds[len(bounds)-1] * 2); got != histFiniteBounds {
		t.Errorf("overflow observation landed in bucket %d, want %d", got, histFiniteBounds)
	}
	// The top finite bound must comfortably cover day-scale makespans.
	if top := bounds[len(bounds)-1]; top < 24*3600 {
		t.Errorf("top bound %v s cannot hold a day-long run", top)
	}
}

func TestHistogramSnapshotAndQuantiles(t *testing.T) {
	r := NewRegistry()
	// 100 observations spread over two decades.
	for i := 1; i <= 100; i++ {
		r.Observe("lat", float64(i)*0.001) // 1ms .. 100ms
	}
	h := r.Snapshot().Hist("lat")
	if h.Count != 100 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != 0.001 || h.Max != 0.1 {
		t.Fatalf("min/max = %v/%v", h.Min, h.Max)
	}
	if math.Abs(h.Sum-5.05) > 1e-9 {
		t.Fatalf("sum = %v, want 5.05", h.Sum)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.02 || p50 > 0.09 {
		t.Fatalf("p50 = %v, want within a bucket of 0.05", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > h.Max {
		t.Fatalf("p99 = %v out of order (p50 %v, max %v)", p99, p50, h.Max)
	}
	if q := h.Quantile(1.0); q != h.Max {
		t.Fatalf("Quantile(1) = %v, want max %v", q, h.Max)
	}
	var total uint64
	for _, c := range h.Buckets {
		total += c
	}
	if total != h.Count {
		t.Fatalf("bucket sum %d != count %d", total, h.Count)
	}
}

func TestHistogramSingleValue(t *testing.T) {
	r := NewRegistry()
	r.ObserveDuration("d", 250*time.Millisecond)
	h := r.Snapshot().Hist("d")
	for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 0.25 {
			t.Fatalf("Quantile(%v) = %v, want exactly 0.25", q, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	r := NewRegistry()
	r.Observe("a", 0.001)
	r.Observe("a", 0.002)
	r.Observe("b", 1.0)
	snap := r.Snapshot()
	m := snap.Hist("a").Merge(snap.Hist("b"))
	if m.Count != 3 {
		t.Fatalf("merged count = %d", m.Count)
	}
	if m.Min != 0.001 || m.Max != 1.0 {
		t.Fatalf("merged min/max = %v/%v", m.Min, m.Max)
	}
	if math.Abs(m.Sum-1.003) > 1e-9 {
		t.Fatalf("merged sum = %v", m.Sum)
	}
	empty := HistSnapshot{}
	if got := empty.Merge(snap.Hist("a")); got.Count != 2 {
		t.Fatalf("empty.Merge lost data: %+v", got)
	}
	if got := snap.Hist("a").Merge(empty); got.Count != 2 {
		t.Fatalf("Merge(empty) lost data: %+v", got)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge("depth", 3)
	r.SetGauge("depth", 1)
	r.MaxGauge("peak", 2)
	r.MaxGauge("peak", 5)
	r.MaxGauge("peak", 4)
	snap := r.Snapshot()
	if snap.Gauges["depth"] != 1 {
		t.Fatalf("SetGauge should overwrite: %v", snap.Gauges["depth"])
	}
	if snap.Gauges["peak"] != 5 {
		t.Fatalf("MaxGauge should keep high-water mark: %v", snap.Gauges["peak"])
	}
}

func TestRegistryCountersAndNames(t *testing.T) {
	r := NewRegistry()
	r.Inc("x")
	r.AddN(map[string]int64{"x": 2, "y": 7})
	r.SetGauge("g", 1)
	r.Observe("h", 0.1)
	snap := r.Snapshot()
	if snap.Counter("x") != 3 || snap.Counter("y") != 7 {
		t.Fatalf("counters wrong: %v", snap.Counters)
	}
	names := snap.Names()
	want := []string{"g", "h", "x", "y"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Inc("c")
				r.Observe("h", float64(i%100)*1e-4)
				r.MaxGauge("g", float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if snap.Counter("c") != 8000 {
		t.Fatalf("counter = %d, want 8000", snap.Counter("c"))
	}
	if snap.Hist("h").Count != 8000 {
		t.Fatalf("hist count = %d, want 8000", snap.Hist("h").Count)
	}
	if snap.Gauges["g"] != 999 {
		t.Fatalf("gauge = %v, want 999", snap.Gauges["g"])
	}
}
