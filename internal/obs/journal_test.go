package obs

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func sampleRecords() []Record {
	return []Record{
		{
			Kind: RecSelection, At: 90 * time.Second, Source: "yarn",
			Name: "victim-selection", Claimant: "3/0", Node: "node-2", Priority: 10,
			Candidates: []CandidateScore{
				{Task: "1/4", Priority: 0, Cost: 12 * time.Second, Unsaved: time.Minute, Chosen: true},
				{Task: "2/7", Priority: 2, Cost: 30 * time.Second, Unsaved: 5 * time.Second},
			},
		},
		{
			Kind: RecDecision, At: 90 * time.Second, Source: "yarn",
			Name: "checkpoint-full", Task: "1/4", Node: "node-2", Priority: 0,
			Unsaved: time.Minute, Est: 12 * time.Second, Span: 77,
		},
		{
			Kind: RecEvent, At: 91 * time.Second, Source: "yarn",
			Name: "dump", Task: "1/4", Node: "node-2", Priority: 0,
			Est: 12 * time.Second, Actual: 13 * time.Second,
			Bytes: 1 << 30, Flags: FlagIncremental,
		},
		{
			Kind: RecEvent, At: 200 * time.Second, Source: "sched",
			Name: "restore", Task: "1/4", Node: "node-5", Priority: 0,
			Est: 12 * time.Second, Actual: 14 * time.Second,
			Bytes: 1 << 30, Flags: FlagRemote,
		},
	}
}

func TestJournalRoundTrip(t *testing.T) {
	rec := NewRecorder(0, 0)
	want := sampleRecords()
	for i, r := range want {
		if got := rec.Append(r); got != uint64(i+1) {
			t.Fatalf("Append #%d returned seq %d, want %d", i, got, i+1)
		}
		want[i].Seq = uint64(i + 1)
	}

	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	j, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if j.Version != JournalVersion || j.Appended != 4 || j.Dropped != 0 {
		t.Fatalf("header = version %d appended %d dropped %d", j.Version, j.Appended, j.Dropped)
	}
	if !reflect.DeepEqual(j.Records, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", j.Records, want)
	}
}

func TestJournalDeterministicBytes(t *testing.T) {
	encode := func() []byte {
		rec := NewRecorder(0, 0)
		for _, r := range sampleRecords() {
			rec.Append(r)
		}
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(encode(), encode()) {
		t.Fatal("identical append sequences serialized to different bytes")
	}
}

func TestJournalCRCCorruption(t *testing.T) {
	rec := NewRecorder(0, 0)
	for _, r := range sampleRecords() {
		rec.Append(r)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one payload byte well past the header.
	data[len(data)/2] ^= 0x40
	_, err := ReadJournal(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted journal decoded without error")
	}
	if !strings.Contains(err.Error(), "CRC") && !strings.Contains(err.Error(), "journal") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestJournalTruncation(t *testing.T) {
	rec := NewRecorder(0, 0)
	for _, r := range sampleRecords() {
		rec.Append(r)
	}
	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadJournal(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated journal decoded without error")
	}
	if _, err := ReadJournal(bytes.NewReader(data[:2])); err == nil {
		t.Fatal("truncated header decoded without error")
	}
	data[0] = 'X'
	if _, err := ReadJournal(bytes.NewReader(data)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestRecorderRingEviction(t *testing.T) {
	// Tiny segments force frequent sealing: each record is ~50 bytes, so
	// a 256-byte segment holds a handful and a 4-segment ring caps the
	// total well below the 500 appended.
	rec := NewRecorder(256, 4)
	const total = 500
	for i := 0; i < total; i++ {
		rec.Append(Record{Kind: RecEvent, Source: "test", Name: "tick", Task: fmt.Sprintf("1/%d", i)})
	}
	if rec.Seq() != total {
		t.Fatalf("Seq = %d, want %d", rec.Seq(), total)
	}
	if rec.Dropped() == 0 {
		t.Fatal("ring never evicted despite overflow")
	}
	if got := uint64(rec.Retained()) + rec.Dropped(); got != total {
		t.Fatalf("retained %d + dropped %d = %d, want %d", rec.Retained(), rec.Dropped(), got, total)
	}

	var buf bytes.Buffer
	if _, err := rec.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	j, err := ReadJournal(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(j.Records)) != total-j.Dropped {
		t.Fatalf("decoded %d records, want %d", len(j.Records), total-j.Dropped)
	}
	// The survivors are the newest records, contiguous through the end.
	for i, r := range j.Records {
		if want := j.Dropped + uint64(i) + 1; r.Seq != want {
			t.Fatalf("record %d has Seq %d, want %d", i, r.Seq, want)
		}
	}
	if last := j.Records[len(j.Records)-1].Seq; last != total {
		t.Fatalf("last Seq = %d, want %d", last, total)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	if got := rec.Append(Record{Kind: RecEvent}); got != 0 {
		t.Fatalf("nil Append = %d, want 0", got)
	}
	if rec.Seq() != 0 || rec.Dropped() != 0 || rec.Retained() != 0 {
		t.Fatal("nil recorder reports non-zero state")
	}
	var buf bytes.Buffer
	if n, err := rec.WriteTo(&buf); n != 0 || err != nil {
		t.Fatalf("nil WriteTo = (%d, %v)", n, err)
	}
	if err := rec.SaveTo(filepath.Join(t.TempDir(), "nil.pjl")); err != nil {
		t.Fatalf("nil SaveTo: %v", err)
	}
}

func TestRecorderSaveToAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.pjl")
	rec := NewRecorder(0, 0)
	for _, r := range sampleRecords() {
		rec.Append(r)
	}
	if err := rec.SaveTo(path); err != nil {
		t.Fatal(err)
	}
	j, err := ReadJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Records) != 4 {
		t.Fatalf("decoded %d records, want 4", len(j.Records))
	}
	// No temp litter after a successful publish.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "run.pjl" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only run.pjl", names)
	}
}

func TestWriteFileAtomicCleansUpOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	wantErr := fmt.Errorf("boom")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		return wantErr
	})
	if err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("failed write left %d files behind", len(entries))
	}
}

func TestRecorderConcurrentAppend(t *testing.T) {
	rec := NewRecorder(1024, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				rec.Append(Record{Kind: RecEvent, Source: "race", Name: "tick", Priority: g})
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		var buf bytes.Buffer
		if _, err := rec.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadJournal(&buf); err != nil {
			t.Fatalf("mid-write snapshot unreadable: %v", err)
		}
		<-done
	}
	if rec.Seq() != 800 {
		t.Fatalf("Seq = %d, want 800", rec.Seq())
	}
}
