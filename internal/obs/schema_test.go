package obs

import (
	"strings"
	"testing"
)

const testSchema = `{
  "type": "object",
  "required": ["schema_version", "policy", "counts"],
  "properties": {
    "schema_version": {"type": "integer", "minimum": 1},
    "policy": {"type": "string", "enum": ["kill", "checkpoint", "adaptive"]},
    "aborted": {"type": "boolean"},
    "counts": {
      "type": "object",
      "properties": {"preemptions": {"type": "integer", "minimum": 0}}
    },
    "latencies": {
      "type": "array",
      "items": {"type": "number"}
    }
  }
}`

func validate(t *testing.T, doc string) error {
	t.Helper()
	return ValidateJSONSchemaBytes([]byte(testSchema), []byte(doc))
}

func TestSchemaValidDocument(t *testing.T) {
	doc := `{"schema_version": 1, "policy": "adaptive", "aborted": false,
	         "counts": {"preemptions": 4}, "latencies": [0.5, 1, 2.25]}`
	if err := validate(t, doc); err != nil {
		t.Fatalf("valid doc rejected: %v", err)
	}
}

func TestSchemaViolations(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing required", `{"schema_version": 1, "policy": "kill"}`, `missing required property "counts"`},
		{"wrong type", `{"schema_version": "one", "policy": "kill", "counts": {}}`, "expected type integer"},
		{"enum violation", `{"schema_version": 1, "policy": "nuke", "counts": {}}`, "not in enum"},
		{"below minimum", `{"schema_version": 0, "policy": "kill", "counts": {}}`, "below minimum"},
		{"bad array item", `{"schema_version": 1, "policy": "kill", "counts": {}, "latencies": [1, "x"]}`, "latencies[1]"},
		{"nested type", `{"schema_version": 1, "policy": "kill", "counts": {"preemptions": -1}}`, "below minimum"},
	}
	for _, c := range cases {
		err := validate(t, c.doc)
		if err == nil {
			t.Errorf("%s: accepted invalid doc", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

func TestSchemaAdditionalProperties(t *testing.T) {
	schema := `{"type": "object", "properties": {"a": {"type": "integer"}}, "additionalProperties": false}`
	if err := ValidateJSONSchemaBytes([]byte(schema), []byte(`{"a": 1}`)); err != nil {
		t.Fatalf("declared property rejected: %v", err)
	}
	err := ValidateJSONSchemaBytes([]byte(schema), []byte(`{"a": 1, "b": 2}`))
	if err == nil || !strings.Contains(err.Error(), "unexpected properties") {
		t.Fatalf("additionalProperties=false not enforced: %v", err)
	}
}

func TestSchemaIntegerIsNumber(t *testing.T) {
	schema := `{"type": "number"}`
	if err := ValidateJSONSchemaBytes([]byte(schema), []byte(`3`)); err != nil {
		t.Fatalf("integer rejected where number expected: %v", err)
	}
}

func TestSchemaTypeList(t *testing.T) {
	schema := `{"type": ["string", "null"]}`
	if err := ValidateJSONSchemaBytes([]byte(schema), []byte(`null`)); err != nil {
		t.Fatalf("null rejected by type list: %v", err)
	}
	if err := ValidateJSONSchemaBytes([]byte(schema), []byte(`5`)); err == nil {
		t.Fatal("number accepted by [string, null]")
	}
}

func TestSchemaMalformedInputs(t *testing.T) {
	if err := ValidateJSONSchemaBytes([]byte(`{`), []byte(`{}`)); err == nil {
		t.Fatal("malformed schema accepted")
	}
	if err := ValidateJSONSchemaBytes([]byte(`{}`), []byte(`{`)); err == nil {
		t.Fatal("malformed document accepted")
	}
}
