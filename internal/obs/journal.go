package obs

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// The flight recorder is an always-on, bounded-overhead binary ring
// journal of preemption decisions and key lifecycle events. Records are
// appended by the scheduler / YARN emulation on the engine goroutine and
// kept in fixed-size in-memory segments; when the ring is full the
// oldest segment is evicted (counted, never silently). The journal is
// flushed to disk only on demand — on abort, panic, or SIGTERM — so a
// failed chaos soak leaves a post-mortem artifact while a healthy run
// pays nothing but the in-memory encode.
//
// On-disk layout (all integers are encoding/binary varints unless
// stated):
//
//	header:  magic "PSJL" | version byte | uvarint appended | uvarint dropped
//	record:  uvarint payloadLen | payload | uint32 CRC32-Castagnoli(payload), little-endian
//
// Timestamps are virtual-clock durations since run start; the journal
// never touches the wall clock, so identical runs produce identical
// bytes at every -parallel level (determinism contract, DESIGN.md §11).

// journalMagic opens every serialized journal stream.
const journalMagic = "PSJL"

// JournalVersion is the current on-disk format version.
const JournalVersion = 1

// Default ring geometry: 8 segments of 256 KiB bounds the recorder at
// ~2 MiB regardless of run length.
const (
	DefaultSegmentBytes = 256 << 10
	DefaultMaxSegments  = 8
)

// RecordKind discriminates the three provenance record shapes.
type RecordKind uint8

const (
	// RecSelection captures a victim-selection pass: the scored
	// candidate set the RM/simulator considered and which were chosen.
	RecSelection RecordKind = 1
	// RecDecision captures one Alg. 1 preemption decision for a task:
	// the chosen action and the cost-model inputs that produced it.
	RecDecision RecordKind = 2
	// RecEvent captures a lifecycle event (dump, restore, kill-fallback,
	// task-done, ...) tying estimates to actuals.
	RecEvent RecordKind = 3
)

func (k RecordKind) String() string {
	switch k {
	case RecSelection:
		return "selection"
	case RecDecision:
		return "decision"
	case RecEvent:
		return "event"
	default:
		return fmt.Sprintf("RecordKind(%d)", int(k))
	}
}

// Record flag bits.
const (
	// FlagRemote marks a restore that pulled the image from a remote node.
	FlagRemote uint32 = 1 << iota
	// FlagIncremental marks an incremental (dirty-pages-only) dump.
	FlagIncremental
	// FlagFallback marks a degradation-ladder action (e.g. a kill after
	// a failed dump).
	FlagFallback
	// FlagPreCopy marks a pre-copy (dump-while-running) phase.
	FlagPreCopy
	// FlagFailure marks an action driven by a node failure rather than a
	// preemption (failure-recovery restore, task-rescheduled, ...).
	FlagFailure
)

// CandidateScore is one victim candidate as the selector scored it.
type CandidateScore struct {
	// Task is the task ID ("job.index").
	Task string
	// Priority is the task's cluster priority.
	Priority int
	// Cost is the Alg. 1 estimated checkpoint overhead for this victim.
	Cost time.Duration
	// Unsaved is the progress the candidate would lose if killed.
	Unsaved time.Duration
	// Chosen marks the candidate(s) actually preempted.
	Chosen bool
}

// Record is one flight-recorder entry — the obs.Decision provenance
// record and its selection/event companions share this shape, keyed by
// Kind. Zero-valued fields are cheap on the wire (single-byte varints),
// so each kind populates only what it has.
type Record struct {
	Kind RecordKind
	// Seq is the recorder-assigned append sequence (1-based). Assigned
	// by Append; callers leave it zero.
	Seq uint64
	// At is the virtual-clock timestamp.
	At time.Duration
	// Source names the emitting subsystem: "sched", "yarn", "clusterd".
	Source string
	// Name is the decision action ("kill", "checkpoint-full", ...) or
	// the event name ("dump", "restore", "kill-fallback", ...).
	Name string
	// Task is the subject task ID, when there is one.
	Task string
	// Claimant is the task whose resource request triggered a selection.
	Claimant string
	// Node is the node the action happened on.
	Node string
	// Priority is the subject task's priority.
	Priority int
	// Unsaved is the subject's unsaved progress at decision time.
	Unsaved time.Duration
	// Est is the Alg. 1/2 estimated overhead for the action.
	Est time.Duration
	// Actual is the realized overhead, for events that close the loop.
	Actual time.Duration
	// Bytes is the payload size moved (dump/restore/transfer), if any.
	Bytes int64
	// Span keys the record to the matching tracer span, when tracing is
	// enabled (0 otherwise).
	Span uint64
	// Flags is a bitmask of Flag* bits.
	Flags uint32
	// Candidates is the scored victim set (selection records only).
	Candidates []CandidateScore
}

var crcJournal = crc32.MakeTable(crc32.Castagnoli)

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// encodeRecord appends r's payload (no framing) to b.
func encodeRecord(b []byte, r Record) []byte {
	b = append(b, byte(r.Kind))
	b = binary.AppendUvarint(b, r.Seq)
	b = binary.AppendVarint(b, int64(r.At))
	b = appendString(b, r.Source)
	b = appendString(b, r.Name)
	b = appendString(b, r.Task)
	b = appendString(b, r.Claimant)
	b = appendString(b, r.Node)
	b = binary.AppendVarint(b, int64(r.Priority))
	b = binary.AppendVarint(b, int64(r.Unsaved))
	b = binary.AppendVarint(b, int64(r.Est))
	b = binary.AppendVarint(b, int64(r.Actual))
	b = binary.AppendVarint(b, r.Bytes)
	b = binary.AppendUvarint(b, r.Span)
	b = binary.AppendUvarint(b, uint64(r.Flags))
	b = binary.AppendUvarint(b, uint64(len(r.Candidates)))
	for _, c := range r.Candidates {
		b = appendString(b, c.Task)
		b = binary.AppendVarint(b, int64(c.Priority))
		b = binary.AppendVarint(b, int64(c.Cost))
		b = binary.AppendVarint(b, int64(c.Unsaved))
		chosen := byte(0)
		if c.Chosen {
			chosen = 1
		}
		b = append(b, chosen)
	}
	return b
}

// decodeCursor walks a payload with bounds-checked varint reads.
type decodeCursor struct {
	buf []byte
	off int
	err error
}

func (c *decodeCursor) fail(what string) {
	if c.err == nil {
		c.err = fmt.Errorf("journal: truncated %s at offset %d", what, c.off)
	}
}

func (c *decodeCursor) byte(what string) byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.buf) {
		c.fail(what)
		return 0
	}
	b := c.buf[c.off]
	c.off++
	return b
}

func (c *decodeCursor) uvarint(what string) uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.buf[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *decodeCursor) varint(what string) int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.buf[c.off:])
	if n <= 0 {
		c.fail(what)
		return 0
	}
	c.off += n
	return v
}

func (c *decodeCursor) string(what string) string {
	n := c.uvarint(what)
	if c.err != nil {
		return ""
	}
	if n > uint64(len(c.buf)-c.off) {
		c.fail(what)
		return ""
	}
	s := string(c.buf[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

// decodeRecord parses one payload produced by encodeRecord.
func decodeRecord(payload []byte) (Record, error) {
	c := &decodeCursor{buf: payload}
	var r Record
	r.Kind = RecordKind(c.byte("kind"))
	r.Seq = c.uvarint("seq")
	r.At = time.Duration(c.varint("at"))
	r.Source = c.string("source")
	r.Name = c.string("name")
	r.Task = c.string("task")
	r.Claimant = c.string("claimant")
	r.Node = c.string("node")
	r.Priority = int(c.varint("priority"))
	r.Unsaved = time.Duration(c.varint("unsaved"))
	r.Est = time.Duration(c.varint("est"))
	r.Actual = time.Duration(c.varint("actual"))
	r.Bytes = c.varint("bytes")
	r.Span = c.uvarint("span")
	r.Flags = uint32(c.uvarint("flags"))
	n := c.uvarint("candidate count")
	if c.err != nil {
		return Record{}, c.err
	}
	if n > uint64(len(payload)) {
		return Record{}, fmt.Errorf("journal: candidate count %d exceeds payload size %d", n, len(payload))
	}
	if n > 0 {
		r.Candidates = make([]CandidateScore, 0, n)
		for i := uint64(0); i < n; i++ {
			var cs CandidateScore
			cs.Task = c.string("candidate task")
			cs.Priority = int(c.varint("candidate priority"))
			cs.Cost = time.Duration(c.varint("candidate cost"))
			cs.Unsaved = time.Duration(c.varint("candidate unsaved"))
			cs.Chosen = c.byte("candidate chosen") != 0
			if c.err != nil {
				return Record{}, c.err
			}
			r.Candidates = append(r.Candidates, cs)
		}
	}
	if c.err != nil {
		return Record{}, c.err
	}
	if c.off != len(payload) {
		return Record{}, fmt.Errorf("journal: %d trailing bytes after record", len(payload)-c.off)
	}
	return r, nil
}

// segment is one fixed-size slab of framed records.
type segment struct {
	buf     []byte
	records uint64
}

// Recorder is the in-memory flight recorder: a mutex-protected ring of
// fixed-size segments. A nil *Recorder is a valid no-op sink, so call
// sites stay unconditional. All methods are safe for concurrent use;
// in the deterministic engines every Append happens on the single
// engine goroutine, so sequence numbers are reproducible.
type Recorder struct {
	mu      sync.Mutex
	segSize int
	maxSegs int
	sealed  []segment
	active  segment
	seq     uint64
	dropped uint64
	scratch []byte
}

// NewRecorder returns a recorder with the given segment geometry.
// Non-positive arguments select the defaults (8 × 256 KiB).
func NewRecorder(segmentBytes, maxSegments int) *Recorder {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	if maxSegments <= 0 {
		maxSegments = DefaultMaxSegments
	}
	return &Recorder{segSize: segmentBytes, maxSegs: maxSegments}
}

// Append encodes rec into the ring, assigns and returns its sequence
// number. Returns 0 on a nil recorder.
func (r *Recorder) Append(rec Record) uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	r.scratch = encodeRecord(r.scratch[:0], rec)
	// Frame size: length prefix + payload + CRC trailer.
	frame := binary.MaxVarintLen64 + len(r.scratch) + 4
	if len(r.active.buf)+frame > r.segSize && r.active.records > 0 {
		r.seal()
	}
	if r.active.buf == nil {
		r.active.buf = make([]byte, 0, r.segSize)
	}
	r.active.buf = binary.AppendUvarint(r.active.buf, uint64(len(r.scratch)))
	r.active.buf = append(r.active.buf, r.scratch...)
	r.active.buf = binary.LittleEndian.AppendUint32(r.active.buf, crc32.Checksum(r.scratch, crcJournal))
	r.active.records++
	return r.seq
}

// seal retires the active segment into the ring, evicting (and
// counting) the oldest segments beyond the ring bound. Callers hold mu.
func (r *Recorder) seal() {
	r.sealed = append(r.sealed, r.active)
	r.active = segment{}
	for len(r.sealed) > r.maxSegs-1 {
		r.dropped += r.sealed[0].records
		copy(r.sealed, r.sealed[1:])
		r.sealed[len(r.sealed)-1] = segment{}
		r.sealed = r.sealed[:len(r.sealed)-1]
	}
}

// Seq returns the total number of records ever appended.
func (r *Recorder) Seq() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dropped returns how many records the ring has evicted.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Retained returns how many records are currently held in the ring.
func (r *Recorder) Retained() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.active.records
	for _, s := range r.sealed {
		n += s.records
	}
	return int(n)
}

// WriteTo serializes the journal (header + retained segments) to w.
// The segment bytes are snapshotted under the lock and written outside
// it, so a flush never blocks the engine on disk I/O.
func (r *Recorder) WriteTo(w io.Writer) (int64, error) {
	if r == nil {
		return 0, nil
	}
	r.mu.Lock()
	header := make([]byte, 0, len(journalMagic)+1+2*binary.MaxVarintLen64)
	header = append(header, journalMagic...)
	header = append(header, JournalVersion)
	header = binary.AppendUvarint(header, r.seq)
	header = binary.AppendUvarint(header, r.dropped)
	bufs := make([][]byte, 0, len(r.sealed)+1)
	for _, s := range r.sealed {
		// Sealed segments are immutable; referencing them is safe.
		bufs = append(bufs, s.buf)
	}
	// The active segment keeps growing; copy it under the lock.
	bufs = append(bufs, append([]byte(nil), r.active.buf...))
	r.mu.Unlock()

	var total int64
	n, err := w.Write(header)
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, b := range bufs {
		n, err := w.Write(b)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SaveTo flushes the journal to path via a temp file in the same
// directory and an atomic rename, matching the FileStore
// publish-on-Close convention: readers never observe a torn journal.
func (r *Recorder) SaveTo(path string) error {
	if r == nil {
		return nil
	}
	return WriteFileAtomic(path, func(w io.Writer) error {
		_, err := r.WriteTo(w)
		return err
	})
}

// Journal is a decoded flight-recorder stream.
type Journal struct {
	// Version is the on-disk format version.
	Version int
	// Appended is the total number of records the recorder ever
	// appended (including evicted ones).
	Appended uint64
	// Dropped counts records evicted from the ring before the flush.
	Dropped uint64
	// Records are the retained records, in append (Seq) order.
	Records []Record
}

// ReadJournal decodes a serialized journal. Any CRC mismatch or
// truncated frame is an error — the atomic flush path means a valid
// file is all-or-nothing.
func ReadJournal(rd io.Reader) (*Journal, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	if len(data) < len(journalMagic)+1 {
		return nil, fmt.Errorf("journal: short header (%d bytes)", len(data))
	}
	if string(data[:len(journalMagic)]) != journalMagic {
		return nil, fmt.Errorf("journal: bad magic %q", data[:len(journalMagic)])
	}
	version := int(data[len(journalMagic)])
	if version != JournalVersion {
		return nil, fmt.Errorf("journal: unsupported version %d (want %d)", version, JournalVersion)
	}
	j := &Journal{Version: version}
	off := len(journalMagic) + 1
	appended, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("journal: truncated appended count")
	}
	off += n
	dropped, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return nil, fmt.Errorf("journal: truncated dropped count")
	}
	off += n
	j.Appended = appended
	j.Dropped = dropped
	for off < len(data) {
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("journal: truncated frame length at offset %d", off)
		}
		off += n
		if plen > uint64(len(data)-off) {
			return nil, fmt.Errorf("journal: frame length %d exceeds remaining %d at offset %d", plen, len(data)-off, off)
		}
		payload := data[off : off+int(plen)]
		off += int(plen)
		if len(data)-off < 4 {
			return nil, fmt.Errorf("journal: truncated CRC at offset %d", off)
		}
		want := binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
		if got := crc32.Checksum(payload, crcJournal); got != want {
			return nil, fmt.Errorf("journal: CRC mismatch on record %d (got %08x want %08x)", len(j.Records)+1, got, want)
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return nil, fmt.Errorf("journal: record %d: %w", len(j.Records)+1, err)
		}
		j.Records = append(j.Records, rec)
	}
	return j, nil
}

// ReadJournalFile decodes the journal at path.
func ReadJournalFile(path string) (*Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJournal(f)
}

// WriteFileAtomic writes via a temp file in path's directory and
// publishes it with an atomic rename, so readers (and interrupted
// writers) never see a partial file.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	bw := bufio.NewWriter(f)
	err = write(bw)
	if err == nil {
		err = bw.Flush()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
