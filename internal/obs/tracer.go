// Package obs is the observability layer shared by the simulator, the
// mini-YARN framework, the DFS, and the CLIs: a structured span tracer
// with parent/child relationships backed by a fixed-size ring buffer, a
// metrics registry of counters, gauges, and log-scale latency histograms,
// and export surfaces (Prometheus text, JSON, Chrome trace_event files
// loadable in Perfetto, and pprof wiring).
//
// Every entry point is nil-receiver safe: a nil *Tracer or *Registry is a
// no-op, so instrumented code paths pay a single pointer test when
// observability is off. The yarn cluster records spans in virtual
// (sim.Time) timestamps; real daemons record wall-clock offsets. A tracer
// carries exactly one timebase, chosen by its owner.
package obs

import (
	"sync"
	"time"
)

// SpanID identifies one recorded span; 0 means "no span" (and is what a
// nil tracer returns), so it is always safe to pass a SpanID back as a
// parent.
type SpanID uint64

// Attr is one key/value annotation on a span. Values should be strings,
// bools, integers, or floats so they serialize cleanly.
type Attr struct {
	Key string
	Val any
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Val: v} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Val: v} }

// Float64 builds a float attribute.
func Float64(k string, v float64) Attr { return Attr{Key: k, Val: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Val: v} }

// DurationMS builds a millisecond attribute from a duration, which reads
// naturally in Perfetto's args pane.
func DurationMS(k string, d time.Duration) Attr {
	return Attr{Key: k, Val: float64(d) / float64(time.Millisecond)}
}

// Span is one recorded interval (or instant) on a named track.
type Span struct {
	ID     SpanID
	Parent SpanID
	// Cat groups spans for filtering ("checkpoint", "restore", "sched").
	Cat  string
	Name string
	// PID and TID name the process and thread tracks the span renders on
	// (e.g. PID "node-3", TID "j2-t14").
	PID, TID string
	// Start and End are offsets in the tracer's timebase. End == 0 with
	// Start > 0 marks a span still open at export time.
	Start, End time.Duration
	// Instant marks a zero-duration point event.
	Instant bool
	Attrs   []Attr
}

// DefaultTracerCapacity is the ring size used when NewTracer is given a
// non-positive capacity: 256k spans, ~40 MB, enough for every checkpoint
// lifecycle of a paper-scale run.
const DefaultTracerCapacity = 1 << 18

// Tracer records spans into a fixed-capacity ring buffer under one mutex.
// Recording is O(1) and allocation-free apart from attribute slices; when
// the ring wraps, the oldest spans are dropped (and counted). A nil
// *Tracer is a valid no-op tracer.
type Tracer struct {
	mu    sync.Mutex
	ring  []Span
	next  uint64 // total spans ever recorded; also the last issued ID
	drops uint64
}

// NewTracer returns a tracer holding up to capacity spans (a non-positive
// capacity selects DefaultTracerCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTracerCapacity
	}
	return &Tracer{ring: make([]Span, capacity)}
}

// record stores s in the ring and returns its ID.
func (t *Tracer) record(s Span) SpanID {
	t.mu.Lock()
	t.next++
	s.ID = SpanID(t.next)
	if t.next > uint64(len(t.ring)) {
		t.drops++
	}
	t.ring[(t.next-1)%uint64(len(t.ring))] = s
	t.mu.Unlock()
	return s.ID
}

// Start opens a span beginning at start; End closes it. The returned ID
// may be used as the parent of child spans.
func (t *Tracer) Start(cat, name, pid, tid string, parent SpanID, start time.Duration, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	return t.record(Span{Parent: parent, Cat: cat, Name: name, PID: pid, TID: tid, Start: start, Attrs: attrs})
}

// End closes a previously started span at end, appending any extra
// attributes. Ending an unknown, evicted, or zero ID is a no-op.
func (t *Tracer) End(id SpanID, end time.Duration, attrs ...Attr) {
	if t == nil || id == 0 {
		return
	}
	t.mu.Lock()
	slot := (uint64(id) - 1) % uint64(len(t.ring))
	if t.ring[slot].ID == id {
		t.ring[slot].End = end
		if len(attrs) > 0 {
			t.ring[slot].Attrs = append(t.ring[slot].Attrs, attrs...)
		}
	}
	t.mu.Unlock()
}

// Complete records a span whose full [start, end] window is already known
// — the common case in the deterministic event-driven cluster, where a
// scheduled completion instant is known when the work is issued.
func (t *Tracer) Complete(cat, name, pid, tid string, parent SpanID, start, end time.Duration, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	return t.record(Span{Parent: parent, Cat: cat, Name: name, PID: pid, TID: tid, Start: start, End: end, Attrs: attrs})
}

// Instant records a zero-duration point event.
func (t *Tracer) Instant(cat, name, pid, tid string, parent SpanID, at time.Duration, attrs ...Attr) SpanID {
	if t == nil {
		return 0
	}
	return t.record(Span{Parent: parent, Cat: cat, Name: name, PID: pid, TID: tid, Start: at, End: at, Instant: true, Attrs: attrs})
}

// Len returns the number of spans currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Dropped returns how many spans were evicted by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.drops
}

// Snapshot copies the retained spans, oldest first.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	capn := uint64(len(t.ring))
	var out []Span
	if n <= capn {
		out = append(out, t.ring[:n]...)
	} else {
		// The ring has wrapped: the oldest retained span is at slot n % cap.
		first := n % capn
		out = append(out, t.ring[first:]...)
		out = append(out, t.ring[:first]...)
	}
	// The Span value copies still share their Attrs backing arrays with
	// ring slots that End mutates in place; detach so the snapshot stays
	// stable after the lock is released.
	for i := range out {
		out[i].Attrs = append([]Attr(nil), out[i].Attrs...)
	}
	return out
}
