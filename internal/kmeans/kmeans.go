// Package kmeans implements Lloyd's k-means algorithm, the workload the
// paper runs inside YARN containers for its sensitivity and cluster
// experiments (Sections 3.3.3 and 5.3, citing mlpack's k-means).
//
// The plain library API operates on float64 slices. KMeansProgram adapts
// the same computation to a checkpointable virtual process: every piece of
// mutable state (points, centroids, iteration counter) lives in process
// memory, so the checkpoint engine can suspend a half-finished clustering
// run and resume it — possibly on another node — without the program's
// cooperation.
package kmeans

import (
	"fmt"
	"math"

	"preemptsched/internal/sim"
)

// Result holds the output of a clustering run.
type Result struct {
	Centroids  [][]float64
	Assignment []int
	Iterations int
	// Inertia is the sum of squared distances of points to their centroid.
	Inertia float64
}

// Config parameterizes a run.
type Config struct {
	K        int
	MaxIters int
	// Tol stops early when no centroid moves more than Tol (squared
	// distance). Zero means run all MaxIters.
	Tol float64
}

// Run clusters points with Lloyd's algorithm. Initial centroids are the
// first k distinct points, which keeps the function deterministic.
func Run(points [][]float64, cfg Config) (*Result, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("kmeans: k=%d must be positive", cfg.K)
	}
	if len(points) < cfg.K {
		return nil, fmt.Errorf("kmeans: %d points for k=%d", len(points), cfg.K)
	}
	if cfg.MaxIters <= 0 {
		return nil, fmt.Errorf("kmeans: MaxIters=%d must be positive", cfg.MaxIters)
	}
	dims := len(points[0])
	for i, p := range points {
		if len(p) != dims {
			return nil, fmt.Errorf("kmeans: point %d has %d dims, want %d", i, len(p), dims)
		}
	}
	centroids := make([][]float64, cfg.K)
	for i := range centroids {
		centroids[i] = append([]float64(nil), points[i]...)
	}
	assign := make([]int, len(points))
	res := &Result{Centroids: centroids, Assignment: assign}
	for iter := 0; iter < cfg.MaxIters; iter++ {
		res.Iterations = iter + 1
		moved := Iterate(points, centroids, assign)
		if cfg.Tol > 0 && moved <= cfg.Tol {
			break
		}
	}
	res.Inertia = Inertia(points, centroids, assign)
	return res, nil
}

// Iterate performs one Lloyd iteration in place: assign each point to its
// nearest centroid, then recompute centroids as cluster means. It returns
// the largest squared distance any centroid moved.
func Iterate(points, centroids [][]float64, assign []int) float64 {
	k := len(centroids)
	dims := len(centroids[0])
	sums := make([][]float64, k)
	for i := range sums {
		sums[i] = make([]float64, dims)
	}
	counts := make([]int, k)
	for i, p := range points {
		best, bestD := 0, math.MaxFloat64
		for c := range centroids {
			d := SquaredDistance(p, centroids[c])
			if d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		counts[best]++
		for d := range p {
			sums[best][d] += p[d]
		}
	}
	var maxMove float64
	for c := range centroids {
		if counts[c] == 0 {
			continue // keep an empty cluster's centroid in place
		}
		var move float64
		for d := range centroids[c] {
			next := sums[c][d] / float64(counts[c])
			diff := next - centroids[c][d]
			move += diff * diff
			centroids[c][d] = next
		}
		if move > maxMove {
			maxMove = move
		}
	}
	return maxMove
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Inertia returns the total within-cluster sum of squared distances.
func Inertia(points, centroids [][]float64, assign []int) float64 {
	var s float64
	for i, p := range points {
		s += SquaredDistance(p, centroids[assign[i]])
	}
	return s
}

// GeneratePoints draws n points of the given dimensionality from k
// well-separated Gaussian blobs, producing a dataset where clustering has a
// meaningful answer. It is deterministic for a given RNG.
func GeneratePoints(rng *sim.RNG, n, dims, k int) [][]float64 {
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dims)
		for d := range centers[c] {
			centers[c][d] = rng.Bounded(-50, 50)
		}
	}
	points := make([][]float64, n)
	for i := range points {
		c := centers[i%k]
		p := make([]float64, dims)
		for d := range p {
			p[d] = c[d] + rng.NormFloat64()*2
		}
		points[i] = p
	}
	return points
}
