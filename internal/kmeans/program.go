package kmeans

import (
	"fmt"

	"preemptsched/internal/proc"
	"preemptsched/internal/sim"
)

// ProgramName is the registry name of the k-means virtual-process program.
const ProgramName = "kmeans"

// Program runs k-means inside a virtual process. One Step is one Lloyd
// iteration. All mutable state is kept in process memory:
//
//	offset 0:                     header (iteration counter, last movement)
//	offset pointsOff:             n × dims float64 points (written at Init,
//	                              read-only afterwards — the read-dominant
//	                              region that makes incremental dumps small)
//	offset centroidsOff:          k × dims float64 centroids (rewritten
//	                              each iteration)
//
// Register usage (set via Configure before the first Step):
//
//	R0: number of points    R1: dims    R2: k
//	R3: max iterations      R4: dataset seed
type Program struct{}

var _ proc.Program = Program{}

// Name implements proc.Program.
func (Program) Name() string { return ProgramName }

const (
	hdrOffIter = 0
	hdrOffMove = 8
	pointsOff  = proc.PageSize // points start page-aligned after the header
)

// Configure sets the run parameters in the process registers.
func Configure(p *proc.Process, points, dims, k, maxIters uint64, seed int64) {
	r := p.Registers()
	r.R[0] = points
	r.R[1] = dims
	r.R[2] = k
	r.R[3] = maxIters
	r.R[4] = uint64(seed)
}

// MemoryBytes returns the real backing bytes a process needs for the given
// problem size.
func MemoryBytes(points, dims, k int) int64 {
	data := int64(points*dims+k*dims) * 8
	return pointsOff + data + proc.PageSize // header + data + slack page
}

func layout(p *proc.Process) (n, dims, k int, centroidsOff int64, err error) {
	r := p.Registers()
	n, dims, k = int(r.R[0]), int(r.R[1]), int(r.R[2])
	if n <= 0 || dims <= 0 || k <= 0 || k > n {
		return 0, 0, 0, 0, fmt.Errorf("kmeans: bad configuration n=%d dims=%d k=%d", n, dims, k)
	}
	centroidsOff = pointsOff + int64(n*dims)*8
	need := centroidsOff + int64(k*dims)*8
	if need > p.Memory().RealBytes() {
		return 0, 0, 0, 0, fmt.Errorf("kmeans: needs %d bytes, process has %d", need, p.Memory().RealBytes())
	}
	return n, dims, k, centroidsOff, nil
}

// Init implements proc.Program: generate the dataset and the initial
// centroids directly into process memory.
func (Program) Init(p *proc.Process) error {
	n, dims, k, centroidsOff, err := layout(p)
	if err != nil {
		return err
	}
	m := p.Memory()
	rng := sim.NewRNG(int64(p.Registers().R[4]))
	pts := GeneratePoints(rng, n, dims, k)
	for i, pt := range pts {
		for d, v := range pt {
			if err := m.WriteF64(pointsOff+int64(i*dims+d)*8, v); err != nil {
				return err
			}
		}
	}
	for c := 0; c < k; c++ {
		for d := 0; d < dims; d++ {
			if err := m.WriteF64(centroidsOff+int64(c*dims+d)*8, pts[c][d]); err != nil {
				return err
			}
		}
	}
	if err := m.WriteU64(hdrOffIter, 0); err != nil {
		return err
	}
	return m.WriteF64(hdrOffMove, 0)
}

// Step implements proc.Program: one full Lloyd iteration read from and
// written back to process memory.
func (Program) Step(p *proc.Process) (bool, error) {
	n, dims, k, centroidsOff, err := layout(p)
	if err != nil {
		return false, err
	}
	m := p.Memory()
	iter, err := m.ReadU64(hdrOffIter)
	if err != nil {
		return false, err
	}
	maxIters := p.Registers().R[3]
	if maxIters == 0 {
		maxIters = 1
	}

	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, dims)
		for d := range points[i] {
			v, err := m.ReadF64(pointsOff + int64(i*dims+d)*8)
			if err != nil {
				return false, err
			}
			points[i][d] = v
		}
	}
	centroids := make([][]float64, k)
	for c := range centroids {
		centroids[c] = make([]float64, dims)
		for d := range centroids[c] {
			v, err := m.ReadF64(centroidsOff + int64(c*dims+d)*8)
			if err != nil {
				return false, err
			}
			centroids[c][d] = v
		}
	}

	assign := make([]int, n)
	moved := Iterate(points, centroids, assign)

	for c := range centroids {
		for d := range centroids[c] {
			if err := m.WriteF64(centroidsOff+int64(c*dims+d)*8, centroids[c][d]); err != nil {
				return false, err
			}
		}
	}
	if err := m.WriteF64(hdrOffMove, moved); err != nil {
		return false, err
	}
	iter++
	if err := m.WriteU64(hdrOffIter, iter); err != nil {
		return false, err
	}
	return iter >= maxIters, nil
}

// Centroids reads the current centroids out of process memory.
func Centroids(p *proc.Process) ([][]float64, error) {
	_, dims, k, centroidsOff, err := layout(p)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, k)
	for c := range out {
		out[c] = make([]float64, dims)
		for d := range out[c] {
			v, err := p.Memory().ReadF64(centroidsOff + int64(c*dims+d)*8)
			if err != nil {
				return nil, err
			}
			out[c][d] = v
		}
	}
	return out, nil
}

// Iterations reads the completed-iteration counter from process memory.
func Iterations(p *proc.Process) (uint64, error) {
	return p.Memory().ReadU64(hdrOffIter)
}

// LastMovement reads the centroid movement of the last iteration.
func LastMovement(p *proc.Process) (float64, error) {
	return p.Memory().ReadF64(hdrOffMove)
}

// RegisterWith registers the program with a process registry.
func RegisterWith(reg *proc.Registry) {
	reg.Register(ProgramName, func() proc.Program { return Program{} })
}

// NewProcess builds a configured k-means virtual process sized to the
// problem, with logical footprint equal to the real backing. Callers that
// model larger task footprints should use NewProcessScaled.
func NewProcess(id string, points, dims, k int, maxIters uint64, seed int64) (*proc.Process, error) {
	mem := MemoryBytes(points, dims, k)
	return NewProcessScaled(id, points, dims, k, maxIters, seed, mem)
}

// NewProcessScaled builds a configured k-means process that declares
// logicalBytes of footprint for checkpoint time accounting while backing
// only the pages the problem needs.
func NewProcessScaled(id string, points, dims, k int, maxIters uint64, seed int64, logicalBytes int64) (*proc.Process, error) {
	mem := MemoryBytes(points, dims, k)
	if logicalBytes < mem {
		logicalBytes = mem
	}
	return proc.NewWithSetup(id, Program{}, mem, logicalBytes, func(p *proc.Process) {
		Configure(p, uint64(points), uint64(dims), uint64(k), maxIters, seed)
	})
}
