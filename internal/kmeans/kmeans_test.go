package kmeans

import (
	"math"
	"testing"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/proc"
	"preemptsched/internal/sim"
	"preemptsched/internal/storage"
)

func TestRunValidation(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	tests := []struct {
		name string
		pts  [][]float64
		cfg  Config
	}{
		{"zero k", pts, Config{K: 0, MaxIters: 5}},
		{"k over n", pts, Config{K: 4, MaxIters: 5}},
		{"zero iters", pts, Config{K: 2, MaxIters: 0}},
		{"ragged dims", [][]float64{{1, 2}, {3}}, Config{K: 1, MaxIters: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.pts, tt.cfg); err == nil {
				t.Error("invalid input accepted")
			}
		})
	}
}

func TestRunSeparatedBlobs(t *testing.T) {
	// Two obvious blobs around (0,0) and (100,100).
	var pts [][]float64
	for i := 0; i < 50; i++ {
		f := float64(i%10) * 0.1
		pts = append(pts, []float64{f, -f}, []float64{100 + f, 100 - f})
	}
	res, err := Run(pts, Config{K: 2, MaxIters: 50, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Each centroid should land near one blob center.
	near := func(c []float64, x, y float64) bool {
		return math.Abs(c[0]-x) < 2 && math.Abs(c[1]-y) < 2
	}
	a, b := res.Centroids[0], res.Centroids[1]
	if !(near(a, 0, 0) && near(b, 100, 100)) && !(near(a, 100, 100) && near(b, 0, 0)) {
		t.Errorf("centroids missed blobs: %v", res.Centroids)
	}
	// All points in the same blob share an assignment.
	for i := 2; i < len(pts); i += 2 {
		if res.Assignment[i] != res.Assignment[0] || res.Assignment[i+1] != res.Assignment[1] {
			t.Fatal("blob split across clusters")
		}
	}
	if res.Inertia <= 0 || res.Inertia > 100 {
		t.Errorf("inertia = %v", res.Inertia)
	}
}

func TestIterateDecreasesInertia(t *testing.T) {
	rng := sim.NewRNG(11)
	pts := GeneratePoints(rng, 300, 4, 3)
	centroids := [][]float64{
		append([]float64(nil), pts[0]...),
		append([]float64(nil), pts[1]...),
		append([]float64(nil), pts[2]...),
	}
	assign := make([]int, len(pts))
	Iterate(pts, centroids, assign)
	prev := Inertia(pts, centroids, assign)
	for i := 0; i < 10; i++ {
		Iterate(pts, centroids, assign)
		cur := Inertia(pts, centroids, assign)
		if cur > prev+1e-9 {
			t.Fatalf("inertia increased at iter %d: %v -> %v", i, prev, cur)
		}
		prev = cur
	}
}

func TestEmptyClusterKeepsCentroid(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	centroids := [][]float64{{0.3, 0.3}, {1000, 1000}}
	assign := make([]int, 3)
	Iterate(pts, centroids, assign)
	if centroids[1][0] != 1000 || centroids[1][1] != 1000 {
		t.Errorf("empty cluster's centroid moved: %v", centroids[1])
	}
}

func TestGeneratePointsDeterministic(t *testing.T) {
	a := GeneratePoints(sim.NewRNG(5), 100, 3, 4)
	b := GeneratePoints(sim.NewRNG(5), 100, 3, 4)
	for i := range a {
		for d := range a[i] {
			if a[i][d] != b[i][d] {
				t.Fatal("same seed, different dataset")
			}
		}
	}
	if len(a) != 100 || len(a[0]) != 3 {
		t.Errorf("shape %dx%d", len(a), len(a[0]))
	}
}

func TestProgramRunsToCompletion(t *testing.T) {
	p, err := NewProcess("km", 120, 2, 3, 8, 42)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps != 8 {
		t.Errorf("steps = %d, want 8", steps)
	}
	iters, _ := Iterations(p)
	if iters != 8 {
		t.Errorf("iterations in memory = %d", iters)
	}
	cents, err := Centroids(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(cents) != 3 || len(cents[0]) != 2 {
		t.Errorf("centroid shape %dx%d", len(cents), len(cents[0]))
	}
}

func TestProgramMatchesLibrary(t *testing.T) {
	// The in-process program must compute exactly what the library computes
	// on the same dataset.
	const n, dims, k, iters, seed = 90, 3, 3, 5, 7
	p, err := NewProcess("km", n, dims, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := p.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	got, err := Centroids(p)
	if err != nil {
		t.Fatal(err)
	}
	pts := GeneratePoints(sim.NewRNG(seed), n, dims, k)
	want, err := Run(pts, Config{K: k, MaxIters: iters})
	if err != nil {
		t.Fatal(err)
	}
	for c := range want.Centroids {
		for d := range want.Centroids[c] {
			if math.Abs(got[c][d]-want.Centroids[c][d]) > 1e-9 {
				t.Fatalf("centroid[%d][%d] = %v, library says %v", c, d, got[c][d], want.Centroids[c][d])
			}
		}
	}
}

func TestProgramCheckpointTransparency(t *testing.T) {
	const n, dims, k, iters, seed = 100, 2, 4, 10, 3
	ref, err := NewProcess("km", n, dims, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, _ := ref.Step()
		if done {
			break
		}
	}
	want, _ := Centroids(ref)

	p, err := NewProcess("km", n, dims, k, iters, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		p.Step()
	}
	reg := proc.NewRegistry()
	RegisterWith(reg)
	eng := checkpoint.NewEngine(reg)
	store := storage.NewMemStore()
	p.Suspend()
	if _, err := eng.Dump(p, store, "km/0", checkpoint.DumpOpts{}); err != nil {
		t.Fatal(err)
	}
	restored, _, err := eng.Restore(store, "km/0")
	if err != nil {
		t.Fatal(err)
	}
	for {
		done, err := restored.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	got, _ := Centroids(restored)
	for c := range want {
		for d := range want[c] {
			if got[c][d] != want[c][d] {
				t.Fatalf("restored centroid[%d][%d] = %v, uninterrupted %v", c, d, got[c][d], want[c][d])
			}
		}
	}
}

func TestProgramIncrementalDumpIsReadDominant(t *testing.T) {
	// After the first dump, only the header and centroid pages are dirtied
	// per iteration; the points region dominates memory and stays clean.
	p, err := NewProcess("km", 5000, 4, 4, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	p.Memory().ClearSoftDirty()
	p.Step()
	dirty := p.Memory().DirtyCount()
	total := p.Memory().NumPages()
	if dirty*10 > total {
		t.Errorf("dirty %d of %d pages; k-means should be read-dominant", dirty, total)
	}
}

func TestProgramBadConfiguration(t *testing.T) {
	if _, err := NewProcess("km", 0, 2, 2, 5, 1); err == nil {
		t.Error("zero points accepted")
	}
	if _, err := NewProcess("km", 10, 2, 20, 5, 1); err == nil {
		t.Error("k > n accepted")
	}
}

func TestMemoryBytes(t *testing.T) {
	b := MemoryBytes(1000, 4, 8)
	want := int64(proc.PageSize) + (1000*4+8*4)*8 + proc.PageSize
	if b != want {
		t.Errorf("MemoryBytes = %d, want %d", b, want)
	}
}
