package metrics

import (
	"sync"
	"testing"
)

func TestCountersAddN(t *testing.T) {
	c := NewCounters()
	c.Add("a", 1)
	c.AddN(map[string]int64{"a": 2, "b": 5})
	c.AddN(nil) // no-op, must not panic
	if got := c.Get("a"); got != 3 {
		t.Fatalf("a = %d, want 3", got)
	}
	if got := c.Get("b"); got != 5 {
		t.Fatalf("b = %d, want 5", got)
	}
	if got := c.Total(); got != 8 {
		t.Fatalf("Total = %d, want 8", got)
	}
}

func TestCountersConcurrentAddN(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.AddN(map[string]int64{"x": 1, "y": 2})
				_ = c.Total()
			}
		}()
	}
	wg.Wait()
	if got := c.Get("x"); got != 8000 {
		t.Fatalf("x = %d, want 8000", got)
	}
	if got := c.Total(); got != 24000 {
		t.Fatalf("Total = %d, want 24000", got)
	}
}

func TestCountersString(t *testing.T) {
	c := NewCounters()
	c.Add("z", 1)
	c.Add("a", 2)
	if got, want := c.String(), "a=2 z=1"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
