package metrics

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print the rows/series each paper table and figure reports.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Cells are stringified with %v; float64 cells are
// rendered with four significant digits to keep tables readable.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v <= -1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10 || v <= -10:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (no quoting; experiment
// cells never contain commas).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}
