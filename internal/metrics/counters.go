package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counters is a concurrency-safe registry of named monotonic counters. The
// fault-injection layer counts every injected fault in one, and the
// framework counts every degradation fallback, so a chaos run can assert
// "N faults went in, the system absorbed all of them".
//
// Each counter lives in its own atomic slot; Handle exposes the slot so
// hot paths can pre-resolve the name once and increment lock-free.
type Counters struct {
	mu sync.Mutex
	m  map[string]*atomic.Int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]*atomic.Int64)}
}

// Handle returns name's slot, creating it at zero if needed. The pointer
// stays valid for the registry's lifetime; incrementing through it is an
// uncontended atomic add, with no name hashing or registry lock.
func (c *Counters) Handle(name string) *atomic.Int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.m[name]
	if v == nil {
		v = new(atomic.Int64)
		c.m[name] = v
	}
	return v
}

// Add increments name by delta.
func (c *Counters) Add(name string, delta int64) {
	c.Handle(name).Add(delta)
}

// AddN applies a batch of increments under one lock acquisition — much
// cheaper than per-name Add calls when mirroring a whole result set or on
// hot DFS paths that bump several counters per block.
func (c *Counters) AddN(deltas map[string]int64) {
	if len(deltas) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for name, delta := range deltas {
		v := c.m[name]
		if v == nil {
			v = new(atomic.Int64)
			c.m[name] = v
		}
		v.Add(delta)
	}
}

// Get returns name's current value (zero when never incremented).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v := c.m[name]; v != nil {
		return v.Load()
	}
	return 0
}

// Total returns the sum across all counters.
func (c *Counters) Total() int64 {
	var total int64
	for _, v := range c.Snapshot() {
		total += v
	}
	return total
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v.Load()
	}
	return out
}

// String renders the counters as "name=value" pairs in sorted order.
func (c *Counters) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, snap[name]))
	}
	return strings.Join(parts, " ")
}
