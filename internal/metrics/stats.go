// Package metrics provides the measurement plumbing shared by the
// simulator, the mini-YARN framework, and the experiment harness: streaming
// summary statistics, sample distributions with quantiles and CDFs, and
// plain-text table rendering for experiment output.
package metrics

import (
	"math"
	"sort"
)

// Summary accumulates count/mean/variance/min/max in one pass using
// Welford's algorithm, so long simulations do not need to retain samples
// when only moments are reported.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds other into s, preserving exact count and mean and the
// parallel-variance combination of m2.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	s.m2 += other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	s.mean += d * float64(other.n) / float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n = n
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Sum returns n*mean.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// Variance returns the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Dist retains every sample to answer quantile and CDF queries. Experiment
// populations here are at most a few hundred thousand points, so exact
// retention is cheaper than sketching and keeps results deterministic.
type Dist struct {
	xs     []float64
	sorted bool
}

// Add appends one observation.
func (d *Dist) Add(x float64) {
	d.xs = append(d.xs, x)
	d.sorted = false
}

// N returns the number of observations.
func (d *Dist) N() int { return len(d.xs) }

// Mean returns the sample mean, or 0 with no observations.
func (d *Dist) Mean() float64 {
	if len(d.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range d.xs {
		sum += x
	}
	return sum / float64(len(d.xs))
}

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.xs)
		d.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) using linear
// interpolation between closest ranks. It returns 0 with no observations.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sort()
	if q <= 0 {
		return d.xs[0]
	}
	if q >= 1 {
		return d.xs[len(d.xs)-1]
	}
	pos := q * float64(len(d.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return d.xs[lo]
	}
	frac := pos - float64(lo)
	return d.xs[lo]*(1-frac) + d.xs[hi]*frac
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// CDFPoint is one (value, cumulative fraction) pair.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns the empirical CDF sampled at k evenly spaced cumulative
// fractions (1/k, 2/k, ..., 1). k must be positive.
func (d *Dist) CDF(k int) []CDFPoint {
	if len(d.xs) == 0 || k <= 0 {
		return nil
	}
	d.sort()
	pts := make([]CDFPoint, 0, k)
	for i := 1; i <= k; i++ {
		f := float64(i) / float64(k)
		pts = append(pts, CDFPoint{X: d.Quantile(f), F: f})
	}
	return pts
}

// FractionBelow returns the fraction of samples <= x.
func (d *Dist) FractionBelow(x float64) float64 {
	if len(d.xs) == 0 {
		return 0
	}
	d.sort()
	i := sort.SearchFloat64s(d.xs, x)
	// Include equal values.
	for i < len(d.xs) && d.xs[i] <= x {
		i++
	}
	return float64(i) / float64(len(d.xs))
}

// Histogram counts observations into fixed-width buckets over [lo, hi).
// Values outside the range land in the first or last bucket.
type Histogram struct {
	lo, width float64
	counts    []int64
	total     int64
}

// NewHistogram builds a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("metrics: invalid histogram shape")
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(n), counts: make([]int64, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Counts returns the per-bucket counts (not a copy; callers must not
// mutate).
func (h *Histogram) Counts() []int64 { return h.counts }

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// BucketLow returns the inclusive lower bound of bucket i.
func (h *Histogram) BucketLow(i int) float64 { return h.lo + float64(i)*h.width }
