package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if got, want := s.Variance(), 32.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := s.Sum(); got != 40 {
		t.Errorf("Sum = %v", got)
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.Stddev() != 0 || s.N() != 0 {
		t.Error("empty summary should report zeros")
	}
}

// Property: merging two summaries equals summarizing the concatenation.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, all Summary
		for _, x := range a {
			sa.Add(x)
			all.Add(x)
		}
		for _, x := range b {
			sb.Add(x)
			all.Add(x)
		}
		sa.Merge(sb)
		if sa.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		close := func(x, y float64) bool {
			return math.Abs(x-y) <= 1e-6*(1+math.Abs(x)+math.Abs(y))
		}
		return close(sa.Mean(), all.Mean()) && close(sa.Variance(), all.Variance()) &&
			sa.Min() == all.Min() && sa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistQuantiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 100}, {0.5, 50.5}, {0.25, 25.75}, {0.99, 99.01},
	}
	for _, tt := range tests {
		if got := d.Quantile(tt.q); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if d.Median() != d.Quantile(0.5) {
		t.Error("Median != Quantile(0.5)")
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.CDF(4) != nil || d.FractionBelow(3) != 0 {
		t.Error("empty dist should report zeros/nil")
	}
}

func TestDistCDFMonotone(t *testing.T) {
	var d Dist
	for _, x := range []float64{5, 1, 9, 3, 3, 7} {
		d.Add(x)
	}
	pts := d.CDF(10)
	if len(pts) != 10 {
		t.Fatalf("CDF len = %d", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F <= pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v", i, pts)
		}
	}
	if pts[len(pts)-1].X != 9 || pts[len(pts)-1].F != 1 {
		t.Errorf("CDF should end at (max, 1): %+v", pts[len(pts)-1])
	}
}

func TestFractionBelow(t *testing.T) {
	var d Dist
	for _, x := range []float64{1, 2, 2, 3, 10} {
		d.Add(x)
	}
	tests := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {10, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := d.FractionBelow(tt.x); got != tt.want {
			t.Errorf("FractionBelow(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestDistQuantileMonotoneProperty(t *testing.T) {
	f := func(xs []float64, qa, qb float64) bool {
		var d Dist
		n := 0
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				d.Add(x)
				n++
			}
		}
		if n == 0 {
			return true
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		va, vb := d.Quantile(qa), d.Quantile(qb)
		return va <= vb && va >= d.Quantile(0) && vb <= d.Quantile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.9, 10, 100} {
		h.Add(x)
	}
	want := []int64{3, 1, 1, 0, 3}
	for i, w := range want {
		if h.Counts()[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, h.Counts()[i], w, h.Counts())
		}
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.BucketLow(2) != 4 {
		t.Errorf("BucketLow(2) = %v", h.BucketLow(2))
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 12345.678)
	s := tb.String()
	if !strings.Contains(s, "== Demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.5") {
		t.Errorf("missing cells:\n%s", s)
	}
	if !strings.Contains(s, "12346") {
		t.Errorf("large float not rounded to integer form:\n%s", s)
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("bad CSV header: %q", csv)
	}
	if lines := strings.Count(csv, "\n"); lines != 3 {
		t.Errorf("CSV line count = %d, want 3", lines)
	}
}
