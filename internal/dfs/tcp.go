package dfs

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// The TCP transport carries one gob-encoded request/response pair per
// round trip over a persistent connection. It exists so the DFS substrate
// is demonstrably a distributed system (cmd/dfs runs namenode and
// datanodes as separate processes) rather than a map behind interfaces.

// rpcRequest is the union of all request payloads; Method selects the
// operation. A single fat struct keeps the gob stream self-describing
// without per-method type registration.
type rpcRequest struct {
	Method    string
	Path      string
	Preferred string
	Prefix    string
	Size      int64
	DN        DataNodeInfo
	Block     BlockID
	Data      []byte
	Pipeline  []DataNodeInfo
	Blocks    []BlockID
}

// rpcResponse is the union of all response payloads. Err carries the
// flattened error message (empty means success); ErrCode carries the
// sentinel's wire code so the client can rehydrate error identity for
// errors.Is checks.
type rpcResponse struct {
	Err     string
	ErrCode uint8
	Stale   []BlockLocation
	Loc     BlockLocation
	Info    FileInfo
	Names   []string
	Data    []byte
	Blocks  []BlockID
}

// setErr flattens err into the response, preserving sentinel identity via
// the wire code.
func (r *rpcResponse) setErr(err error) {
	if err == nil {
		return
	}
	r.Err = err.Error()
	r.ErrCode = errToCode(err)
}

// asError rehydrates the response's error, or returns nil on success.
func (r *rpcResponse) asError() error {
	if r.Err == "" {
		return nil
	}
	if sentinel := codeToErr(r.ErrCode); sentinel != nil {
		return &rpcError{msg: r.Err, sentinel: sentinel}
	}
	return errors.New(r.Err)
}

// Serve runs an RPC loop for either node role until the listener closes.
// Pass exactly one non-nil API. Closing the listener is a clean shutdown:
// Serve closes every open connection, waits for the per-connection
// goroutines to drain, and returns nil. Any other accept error is
// returned.
func Serve(l net.Listener, nn NameNodeAPI, dn DataNodeAPI) error {
	if (nn == nil) == (dn == nil) {
		return errors.New("dfs: Serve requires exactly one of namenode or datanode")
	}
	var (
		wg    sync.WaitGroup
		mu    sync.Mutex
		conns = make(map[net.Conn]struct{})
	)
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			// Shut down every open connection so the handler goroutines
			// unblock from their pending reads instead of leaking. Snapshot
			// under the lock, close outside it: a Close that blocks must
			// not stall the handlers' own delete(conns, conn) bookkeeping.
			mu.Lock()
			open := make([]net.Conn, 0, len(conns))
			for c := range conns {
				open = append(open, c)
			}
			mu.Unlock()
			for _, c := range open {
				c.Close()
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		mu.Lock()
		conns[conn] = struct{}{}
		mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				conn.Close()
				mu.Lock()
				delete(conns, conn)
				mu.Unlock()
			}()
			serveConn(conn, nn, dn)
		}()
	}
}

func serveConn(conn net.Conn, nn NameNodeAPI, dn DataNodeAPI) {
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req rpcRequest
		if err := dec.Decode(&req); err != nil {
			return // EOF or broken peer: drop the connection
		}
		var resp rpcResponse
		if nn != nil {
			resp = dispatchNameNode(nn, &req)
		} else {
			resp = dispatchDataNode(dn, &req)
		}
		if err := enc.Encode(&resp); err != nil {
			return
		}
	}
}

func dispatchNameNode(nn NameNodeAPI, req *rpcRequest) rpcResponse {
	var resp rpcResponse
	switch req.Method {
	case "Register":
		resp.setErr(nn.Register(req.DN))
	case "Heartbeat":
		resp.setErr(nn.Heartbeat(req.DN))
	case "Create":
		stale, err := nn.Create(req.Path)
		resp.Stale = stale
		resp.setErr(err)
	case "AddBlock":
		loc, err := nn.AddBlock(req.Path, req.Preferred)
		resp.Loc = loc
		resp.setErr(err)
	case "ReportBlock":
		resp.setErr(nn.ReportBlock(req.Path, req.Block, req.Pipeline))
	case "Complete":
		resp.setErr(nn.Complete(req.Path, req.Size))
	case "Stat":
		info, err := nn.Stat(req.Path)
		resp.Info = info
		resp.setErr(err)
	case "Delete":
		info, err := nn.Delete(req.Path)
		resp.Info = info
		resp.setErr(err)
	case "List":
		names, err := nn.List(req.Prefix)
		resp.Names = names
		resp.setErr(err)
	case "ReportBadReplica":
		resp.setErr(nn.ReportBadReplica(req.Block, req.DN))
	case "BlockReport":
		stale, err := nn.BlockReport(req.DN, req.Blocks)
		resp.Blocks = stale
		resp.setErr(err)
	default:
		resp.Err = fmt.Sprintf("dfs: unknown namenode method %q", req.Method)
	}
	return resp
}

func dispatchDataNode(dn DataNodeAPI, req *rpcRequest) rpcResponse {
	var resp rpcResponse
	switch req.Method {
	case "WriteBlock":
		resp.setErr(dn.WriteBlock(req.Block, req.Data, req.Pipeline))
	case "ReadBlock":
		data, err := dn.ReadBlock(req.Block)
		resp.Data = data
		resp.setErr(err)
	case "DeleteBlock":
		resp.setErr(dn.DeleteBlock(req.Block))
	default:
		resp.Err = fmt.Sprintf("dfs: unknown datanode method %q", req.Method)
	}
	return resp
}

// tcpConn is one pooled connection with its codecs.
type tcpConn struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// tcpPeer issues calls to one remote address, serializing requests over a
// lazily dialed, reused connection and redialing after failures. Each RPC
// runs under a read/write deadline so a hung peer fails the call instead
// of wedging the client forever.
type tcpPeer struct {
	addr    string
	timeout time.Duration
	mu      sync.Mutex
	c       *tcpConn
}

// call holds p.mu for the whole exchange: the gob encoder/decoder pair
// is stateful and the connection carries one request at a time, so the
// mutex IS the request pipeline. The I/O itself lives in callLocked,
// which requires the caller to hold p.mu.
func (p *tcpPeer) call(req *rpcRequest) (*rpcResponse, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.callLocked(req)
}

func (p *tcpPeer) callLocked(req *rpcRequest) (*rpcResponse, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if p.c == nil {
			conn, err := net.DialTimeout("tcp", p.addr, p.timeout)
			if err != nil {
				return nil, fmt.Errorf("dfs: dial %s: %w", p.addr, err)
			}
			p.c = &tcpConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
		}
		if p.timeout > 0 {
			p.c.conn.SetDeadline(time.Now().Add(p.timeout))
		}
		var resp rpcResponse
		if err := p.c.enc.Encode(req); err == nil {
			if err = p.c.dec.Decode(&resp); err == nil {
				if p.timeout > 0 {
					p.c.conn.SetDeadline(time.Time{})
				}
				return &resp, resp.asError()
			}
			lastErr = err
		} else {
			lastErr = err
		}
		// Stale, broken, or timed-out connection: drop it and retry once
		// with a fresh dial.
		p.c.conn.Close()
		p.c = nil
	}
	return nil, fmt.Errorf("dfs: rpc to %s: %w", p.addr, lastErr)
}

func (p *tcpPeer) close() {
	// Detach under the lock, close outside it: Close on a connection with
	// an RPC in flight must not deadlock against call's critical section.
	p.mu.Lock()
	c := p.c
	p.c = nil
	p.mu.Unlock()
	if c != nil {
		c.conn.Close()
	}
}

// DefaultRPCTimeout bounds each RPC round trip (dial, write, read). Large
// enough for an 8 MiB block transfer on a slow link, small enough that a
// dead peer is detected promptly.
const DefaultRPCTimeout = 30 * time.Second

// TCPTransport resolves NameNode and DataNode stubs over TCP.
type TCPTransport struct {
	namenodeAddr string
	timeout      time.Duration
	mu           sync.Mutex
	peers        map[string]*tcpPeer
}

// TCPOption configures a TCPTransport.
type TCPOption func(*TCPTransport)

// WithRPCTimeout overrides the per-RPC deadline; zero disables deadlines.
func WithRPCTimeout(d time.Duration) TCPOption {
	return func(t *TCPTransport) { t.timeout = d }
}

// NewTCPTransport returns a transport whose NameNode lives at
// namenodeAddr.
func NewTCPTransport(namenodeAddr string, opts ...TCPOption) *TCPTransport {
	t := &TCPTransport{
		namenodeAddr: namenodeAddr,
		timeout:      DefaultRPCTimeout,
		peers:        make(map[string]*tcpPeer),
	}
	for _, o := range opts {
		o(t)
	}
	return t
}

var _ Transport = (*TCPTransport)(nil)

func (t *TCPTransport) peer(addr string) *tcpPeer {
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.peers[addr]
	if !ok {
		p = &tcpPeer{addr: addr, timeout: t.timeout}
		t.peers[addr] = p
	}
	return p
}

// NameNode implements Transport.
func (t *TCPTransport) NameNode() (NameNodeAPI, error) {
	return &tcpNameNode{peer: t.peer(t.namenodeAddr)}, nil
}

// DataNode implements Transport.
func (t *TCPTransport) DataNode(info DataNodeInfo) (DataNodeAPI, error) {
	if info.Addr == "" {
		return nil, fmt.Errorf("dfs: datanode %q has no address", info.ID)
	}
	return &tcpDataNode{peer: t.peer(info.Addr)}, nil
}

// Close drops all pooled connections.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range t.peers {
		p.close()
	}
	t.peers = make(map[string]*tcpPeer)
}

type tcpNameNode struct{ peer *tcpPeer }

var _ NameNodeAPI = (*tcpNameNode)(nil)

func (n *tcpNameNode) Register(dn DataNodeInfo) error {
	_, err := n.peer.call(&rpcRequest{Method: "Register", DN: dn})
	return err
}

func (n *tcpNameNode) Heartbeat(dn DataNodeInfo) error {
	_, err := n.peer.call(&rpcRequest{Method: "Heartbeat", DN: dn})
	return err
}

func (n *tcpNameNode) Create(path string) ([]BlockLocation, error) {
	resp, err := n.peer.call(&rpcRequest{Method: "Create", Path: path})
	if err != nil {
		return nil, err
	}
	return resp.Stale, nil
}

func (n *tcpNameNode) AddBlock(path, preferred string) (BlockLocation, error) {
	resp, err := n.peer.call(&rpcRequest{Method: "AddBlock", Path: path, Preferred: preferred})
	if err != nil {
		return BlockLocation{}, err
	}
	return resp.Loc, nil
}

func (n *tcpNameNode) ReportBlock(path string, id BlockID, replicas []DataNodeInfo) error {
	_, err := n.peer.call(&rpcRequest{Method: "ReportBlock", Path: path, Block: id, Pipeline: replicas})
	return err
}

func (n *tcpNameNode) Complete(path string, size int64) error {
	_, err := n.peer.call(&rpcRequest{Method: "Complete", Path: path, Size: size})
	return err
}

func (n *tcpNameNode) Stat(path string) (FileInfo, error) {
	resp, err := n.peer.call(&rpcRequest{Method: "Stat", Path: path})
	if err != nil {
		return FileInfo{}, err
	}
	return resp.Info, nil
}

func (n *tcpNameNode) Delete(path string) (FileInfo, error) {
	resp, err := n.peer.call(&rpcRequest{Method: "Delete", Path: path})
	if err != nil {
		return FileInfo{}, err
	}
	return resp.Info, nil
}

func (n *tcpNameNode) List(prefix string) ([]string, error) {
	resp, err := n.peer.call(&rpcRequest{Method: "List", Prefix: prefix})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

func (n *tcpNameNode) ReportBadReplica(id BlockID, bad DataNodeInfo) error {
	_, err := n.peer.call(&rpcRequest{Method: "ReportBadReplica", Block: id, DN: bad})
	return err
}

func (n *tcpNameNode) BlockReport(dn DataNodeInfo, blocks []BlockID) ([]BlockID, error) {
	resp, err := n.peer.call(&rpcRequest{Method: "BlockReport", DN: dn, Blocks: blocks})
	if err != nil {
		return nil, err
	}
	return resp.Blocks, nil
}

type tcpDataNode struct{ peer *tcpPeer }

var _ DataNodeAPI = (*tcpDataNode)(nil)

func (d *tcpDataNode) WriteBlock(id BlockID, data []byte, pipeline []DataNodeInfo) error {
	_, err := d.peer.call(&rpcRequest{Method: "WriteBlock", Block: id, Data: data, Pipeline: pipeline})
	return err
}

func (d *tcpDataNode) ReadBlock(id BlockID) ([]byte, error) {
	resp, err := d.peer.call(&rpcRequest{Method: "ReadBlock", Block: id})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

func (d *tcpDataNode) DeleteBlock(id BlockID) error {
	_, err := d.peer.call(&rpcRequest{Method: "DeleteBlock", Block: id})
	return err
}
