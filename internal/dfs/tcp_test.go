package dfs

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"preemptsched/internal/checkpoint"
	"preemptsched/internal/proc"
)

// startTCPCluster boots a real namenode and n datanodes on localhost
// listeners and returns a TCP transport pointed at them. Servers shut down
// with the test.
func startTCPCluster(t *testing.T, n, replication int) (*TCPTransport, []*DataNode) {
	t.Helper()
	nnListener, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	nn := NewNameNode(replication)
	go Serve(nnListener, nn, nil)
	t.Cleanup(func() { nnListener.Close() })

	transport := NewTCPTransport(nnListener.Addr().String())
	t.Cleanup(transport.Close)

	var datanodes []*DataNode
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		info := DataNodeInfo{ID: fmt.Sprintf("dn-%d", i), Addr: l.Addr().String()}
		dn := NewDataNode(info, transport)
		go Serve(l, nil, dn)
		t.Cleanup(func() { l.Close() })
		api, err := transport.NameNode()
		if err != nil {
			t.Fatal(err)
		}
		if err := api.Register(info); err != nil {
			t.Fatal(err)
		}
		datanodes = append(datanodes, dn)
	}
	return transport, datanodes
}

func TestTCPEndToEnd(t *testing.T) {
	transport, _ := startTCPCluster(t, 3, 2)
	client := NewClient(transport, WithBlockSize(512), WithLocalNode("dn-0"))

	data := randomData(3000)
	writeFile(t, client, "/tcp/file", data)
	if got := readFile(t, client, "/tcp/file"); !bytes.Equal(got, data) {
		t.Error("TCP round trip mismatch")
	}
	if n, err := client.Size("/tcp/file"); err != nil || n != 3000 {
		t.Errorf("Size = %d, %v", n, err)
	}
	names, err := client.List("/tcp/")
	if err != nil || len(names) != 1 {
		t.Errorf("List = %v, %v", names, err)
	}
	if err := client.Remove("/tcp/file"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Open("/tcp/file"); err == nil {
		t.Error("removed file still readable over TCP")
	}
}

func TestTCPPipelineReplicates(t *testing.T) {
	transport, datanodes := startTCPCluster(t, 3, 3)
	client := NewClient(transport, WithBlockSize(256), WithLocalNode("dn-1"))
	writeFile(t, client, "/rep", randomData(700))
	// 3 blocks x 3 replicas: every datanode must hold all 3 blocks.
	for _, dn := range datanodes {
		if dn.BlockCount() != 3 {
			t.Errorf("%s holds %d blocks, want 3", dn.Info().ID, dn.BlockCount())
		}
	}
}

func TestTCPReadFallback(t *testing.T) {
	transport, datanodes := startTCPCluster(t, 3, 2)
	client := NewClient(transport, WithBlockSize(128), WithLocalNode("dn-0"))
	data := randomData(500)
	writeFile(t, client, "/fb", data)
	datanodes[0].SetDown(true)
	if got := readFile(t, client, "/fb"); !bytes.Equal(got, data) {
		t.Error("TCP fallback read mismatch")
	}
}

func TestTCPErrorsCrossTheWire(t *testing.T) {
	transport, _ := startTCPCluster(t, 1, 1)
	client := NewClient(transport)
	if _, err := client.Open("/absent"); err == nil {
		t.Error("missing file opened over TCP")
	}
	nn, _ := transport.NameNode()
	if _, err := nn.Stat("/absent"); !IsNotFound(err) {
		t.Errorf("flattened error lost not-found identity: %v", err)
	}
}

// The paper's remote-resume scenario over a real network: a process is
// checkpointed from one node into the DFS and restored by a different
// node.
func TestTCPRemoteCheckpointRestore(t *testing.T) {
	transport, _ := startTCPCluster(t, 3, 2)
	reg := proc.NewRegistry()
	reg.Register(proc.FillProgramName, func() proc.Program { return proc.FillProgram{} })
	engine := checkpoint.NewEngine(reg)

	// Node A runs and checkpoints the task.
	nodeA := NewClient(transport, WithBlockSize(2048), WithLocalNode("dn-0"))
	p, err := proc.New("task", proc.FillProgram{}, 16*proc.PageSize, 16*proc.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	proc.ConfigureFill(p, 20, 2)
	for i := 0; i < 7; i++ {
		p.Step()
	}
	p.Suspend()
	if _, err := engine.Dump(p, nodeA, "/ckpt/task", checkpoint.DumpOpts{}); err != nil {
		t.Fatal(err)
	}

	// Node B restores it and finishes the run.
	nodeB := NewClient(transport, WithBlockSize(2048), WithLocalNode("dn-2"))
	restored, info, err := engine.Restore(nodeB, "/ckpt/task")
	if err != nil {
		t.Fatal(err)
	}
	if info.Steps != 7 {
		t.Errorf("restored at step %d, want 7", info.Steps)
	}
	for {
		done, err := restored.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if restored.Steps() != 20 {
		t.Errorf("finished at %d steps, want 20", restored.Steps())
	}
}
