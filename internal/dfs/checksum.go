package dfs

import (
	"fmt"
	"hash/crc32"
)

// Block integrity follows HDFS: every stored block carries per-chunk
// CRC32C checksums computed when the bytes land on a DataNode. Reads
// re-verify before returning, so a replica whose bytes rotted at rest is
// detected at the first touch instead of silently resuming wrong state
// upstream (a corrupted checkpoint image would otherwise revive a wrong
// process). HDFS chunks at 512 bytes; the mini-DFS uses 64 KiB chunks,
// which keeps the checksum overhead per 8 MiB block negligible while
// still localizing damage to one chunk.

// ChecksumChunkSize is the granularity block checksums are computed at.
const ChecksumChunkSize = 64 << 10

// castagnoli is the CRC32C polynomial table (the checksum HDFS uses).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// checksumChunks returns the CRC32C of each ChecksumChunkSize chunk of
// data (the final chunk may be short). Empty data has no chunks.
func checksumChunks(data []byte) []uint32 {
	n := (len(data) + ChecksumChunkSize - 1) / ChecksumChunkSize
	sums := make([]uint32, 0, n)
	for off := 0; off < len(data); off += ChecksumChunkSize {
		end := off + ChecksumChunkSize
		if end > len(data) {
			end = len(data)
		}
		sums = append(sums, crc32.Checksum(data[off:end], castagnoli))
	}
	return sums
}

// verifyChunks re-computes data's chunk checksums against sums and
// returns an ErrCorruptBlock-wrapped error naming the first bad chunk,
// or nil when every chunk matches.
func verifyChunks(data []byte, sums []uint32) error {
	want := (len(data) + ChecksumChunkSize - 1) / ChecksumChunkSize
	if len(sums) != want {
		return fmt.Errorf("%w: %d checksum chunks for %d data chunks", ErrCorruptBlock, len(sums), want)
	}
	for i, sum := range sums {
		off := i * ChecksumChunkSize
		end := off + ChecksumChunkSize
		if end > len(data) {
			end = len(data)
		}
		if crc32.Checksum(data[off:end], castagnoli) != sum {
			return fmt.Errorf("%w: chunk %d (bytes %d-%d) failed crc32c", ErrCorruptBlock, i, off, end)
		}
	}
	return nil
}
