package dfs

import (
	"fmt"
	"sync"

	"preemptsched/internal/obs"
)

// DataNode stores blocks and participates in write pipelines. It is safe
// for concurrent use.
type DataNode struct {
	info      DataNodeInfo
	transport Transport
	obs       *obs.Registry

	mu     sync.RWMutex
	blocks map[BlockID][]byte
	down   bool
}

// NewDataNode creates a DataNode that reaches pipeline peers through
// transport.
func NewDataNode(info DataNodeInfo, transport Transport) *DataNode {
	return &DataNode{info: info, transport: transport, blocks: make(map[BlockID][]byte)}
}

// Instrument directs dfs.datanode.* operation counters into reg. A nil
// reg turns instrumentation off. Call before serving traffic.
func (d *DataNode) Instrument(reg *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obs = reg
}

var _ DataNodeAPI = (*DataNode)(nil)

// Info returns the node's identity.
func (d *DataNode) Info() DataNodeInfo { return d.info }

// SetDown simulates a crash (failure injection): a down node fails every
// request until revived.
func (d *DataNode) SetDown(down bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = down
}

func (d *DataNode) checkUp() error {
	if d.down {
		return fmt.Errorf("dfs: datanode %s: %w", d.info.ID, ErrNodeDown)
	}
	return nil
}

// WriteBlock implements DataNodeAPI: store locally, then forward to the
// next pipeline stage. A pipeline failure after the local store leaves the
// block under-replicated but readable, matching HDFS semantics.
func (d *DataNode) WriteBlock(id BlockID, data []byte, pipeline []DataNodeInfo) error {
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	d.blocks[id] = append([]byte(nil), data...)
	reg := d.obs
	d.mu.Unlock()
	reg.Inc("dfs.datanode.block.writes")
	reg.Add("dfs.datanode.bytes.written", int64(len(data)))

	if len(pipeline) == 0 {
		return nil
	}
	next, err := d.transport.DataNode(pipeline[0])
	if err != nil {
		return fmt.Errorf("dfs: datanode %s: dial pipeline peer %s: %w", d.info.ID, pipeline[0].ID, err)
	}
	if err := next.WriteBlock(id, data, pipeline[1:]); err != nil {
		return fmt.Errorf("dfs: datanode %s: forward block %d to %s: %w", d.info.ID, id, pipeline[0].ID, err)
	}
	return nil
}

// ReadBlock implements DataNodeAPI.
func (d *DataNode) ReadBlock(id BlockID) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkUp(); err != nil {
		return nil, err
	}
	data, ok := d.blocks[id]
	if !ok {
		return nil, fmt.Errorf("dfs: datanode %s: block %d: %w", d.info.ID, id, ErrBlockMissing)
	}
	d.obs.Inc("dfs.datanode.block.reads")
	d.obs.Add("dfs.datanode.bytes.read", int64(len(data)))
	return append([]byte(nil), data...), nil
}

// DeleteBlock implements DataNodeAPI.
func (d *DataNode) DeleteBlock(id BlockID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return err
	}
	delete(d.blocks, id)
	return nil
}

// BlockCount returns the number of stored blocks.
func (d *DataNode) BlockCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.blocks)
}

// StoredBytes returns the total bytes stored on this node.
func (d *DataNode) StoredBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, b := range d.blocks {
		n += int64(len(b))
	}
	return n
}
