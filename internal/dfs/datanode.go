package dfs

import (
	"fmt"
	"sort"
	"sync"

	"preemptsched/internal/obs"
)

// storedBlock is one replica at rest: the payload plus the per-chunk
// CRC32C checksums computed when the bytes landed. Reads verify the
// payload against the sums, so at-rest corruption is detected at the
// first touch.
type storedBlock struct {
	data []byte
	sums []uint32
}

// DataNode stores checksummed blocks and participates in write pipelines.
// It is safe for concurrent use.
type DataNode struct {
	info      DataNodeInfo
	transport Transport
	obs       *obs.Registry

	mu     sync.RWMutex
	blocks map[BlockID]storedBlock
	down   bool
}

// NewDataNode creates a DataNode that reaches pipeline peers through
// transport.
func NewDataNode(info DataNodeInfo, transport Transport) *DataNode {
	return &DataNode{info: info, transport: transport, blocks: make(map[BlockID]storedBlock)}
}

// Instrument directs dfs.datanode.* operation counters into reg. A nil
// reg turns instrumentation off. Call before serving traffic.
func (d *DataNode) Instrument(reg *obs.Registry) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.obs = reg
}

var _ DataNodeAPI = (*DataNode)(nil)

// Info returns the node's identity.
func (d *DataNode) Info() DataNodeInfo { return d.info }

// SetDown simulates a crash (failure injection): a down node fails every
// request until revived.
func (d *DataNode) SetDown(down bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.down = down
}

func (d *DataNode) checkUp() error {
	if d.down {
		return fmt.Errorf("dfs: datanode %s: %w", d.info.ID, ErrNodeDown)
	}
	return nil
}

// WriteBlock implements DataNodeAPI: store locally with fresh checksums,
// then forward to the next pipeline stage. A pipeline failure after the
// local store leaves the block under-replicated but readable, matching
// HDFS semantics.
func (d *DataNode) WriteBlock(id BlockID, data []byte, pipeline []DataNodeInfo) error {
	d.mu.Lock()
	if err := d.checkUp(); err != nil {
		d.mu.Unlock()
		return err
	}
	copied := append([]byte(nil), data...)
	d.blocks[id] = storedBlock{data: copied, sums: checksumChunks(copied)}
	reg := d.obs
	d.mu.Unlock()
	reg.Inc("dfs.datanode.block.writes")
	reg.Add("dfs.datanode.bytes.written", int64(len(data)))

	if len(pipeline) == 0 {
		return nil
	}
	next, err := d.transport.DataNode(pipeline[0])
	if err != nil {
		return fmt.Errorf("dfs: datanode %s: dial pipeline peer %s: %w", d.info.ID, pipeline[0].ID, err)
	}
	if err := next.WriteBlock(id, data, pipeline[1:]); err != nil {
		return fmt.Errorf("dfs: datanode %s: forward block %d to %s: %w", d.info.ID, id, pipeline[0].ID, err)
	}
	return nil
}

// ReadBlock implements DataNodeAPI: the stored payload is re-verified
// against its checksums before a single byte leaves the node.
func (d *DataNode) ReadBlock(id BlockID) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkUp(); err != nil {
		return nil, err
	}
	b, ok := d.blocks[id]
	if !ok {
		return nil, fmt.Errorf("dfs: datanode %s: block %d: %w", d.info.ID, id, ErrBlockMissing)
	}
	if err := verifyChunks(b.data, b.sums); err != nil {
		d.obs.Inc("dfs.datanode.corrupt.reads")
		return nil, fmt.Errorf("dfs: datanode %s: block %d: %w", d.info.ID, id, err)
	}
	d.obs.Inc("dfs.datanode.block.reads")
	d.obs.Add("dfs.datanode.bytes.read", int64(len(b.data)))
	return append([]byte(nil), b.data...), nil
}

// DeleteBlock implements DataNodeAPI.
func (d *DataNode) DeleteBlock(id BlockID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.checkUp(); err != nil {
		return err
	}
	delete(d.blocks, id)
	return nil
}

// VerifyBlock re-checks one stored block against its checksums without
// returning the payload: nil for intact, ErrBlockMissing for absent,
// ErrCorruptBlock identity for damaged. The scrubber's unit of work.
func (d *DataNode) VerifyBlock(id BlockID) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if err := d.checkUp(); err != nil {
		return err
	}
	b, ok := d.blocks[id]
	if !ok {
		return fmt.Errorf("dfs: datanode %s: block %d: %w", d.info.ID, id, ErrBlockMissing)
	}
	if err := verifyChunks(b.data, b.sums); err != nil {
		return fmt.Errorf("dfs: datanode %s: block %d: %w", d.info.ID, id, err)
	}
	return nil
}

// BlockIDs returns the IDs of all stored blocks, sorted — the payload of
// a block report.
func (d *DataNode) BlockIDs() []BlockID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := make([]BlockID, 0, len(d.blocks))
	for id := range d.blocks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CorruptStoredBlock flips one bit of a stored block's payload without
// touching its checksums — the at-rest bit-rot the fault injector and the
// integrity tests drive. It reports whether the block existed. bit indexes
// into the payload's bits and is clamped by modulo.
func (d *DataNode) CorruptStoredBlock(id BlockID, bit int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	b, ok := d.blocks[id]
	if !ok || len(b.data) == 0 {
		return false
	}
	if bit < 0 {
		bit = -bit
	}
	bit %= len(b.data) * 8
	b.data[bit/8] ^= 1 << (bit % 8)
	return true
}

// BlockCount returns the number of stored blocks.
func (d *DataNode) BlockCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.blocks)
}

// StoredBytes returns the total bytes stored on this node.
func (d *DataNode) StoredBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var n int64
	for _, b := range d.blocks {
		n += int64(len(b.data))
	}
	return n
}
